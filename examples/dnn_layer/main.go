// dnn_layer runs a fully connected DNN layer forward pass — the workload
// class that motivated tensor cores — comparing the tensor-core datapath
// against the FP32 SIMT cores on the simulated GPU.
//
// The layer computes Y = ReLU(X·W + b) for a batch of 128 activations of
// width 256 and 256 output features. The bias add rides in the GEMM's C
// operand (each row of C is the bias vector), and the ReLU runs on the
// host after readback, as inference runtimes often fuse differently.
package main

import (
	"fmt"
	"log"
	"math/rand"

	tcgpu "repro"
)

const (
	batch    = 128
	inDim    = 256
	outDim   = 256
	seedData = 42
)

func main() {
	cfg := tcgpu.TitanVConfig()
	cfg.NumSMs = 8
	rng := rand.New(rand.NewSource(seedData))

	x := tcgpu.NewMatrix(batch, inDim)
	w := tcgpu.NewMatrix(inDim, outDim)
	bias := make([]float64, outDim)
	x.FillFunc(func(int, int) float64 { return float64(rng.Intn(64)-32) / 32 })
	w.FillFunc(func(int, int) float64 { return float64(rng.Intn(64)-32) / 64 })
	for j := range bias {
		bias[j] = float64(rng.Intn(16)) / 16
	}

	fmt.Printf("layer: Y = ReLU(X·W + b), X %d×%d, W %d×%d\n\n", batch, inDim, inDim, outDim)
	fmt.Printf("%-22s %10s %10s %10s\n", "datapath", "cycles", "TFLOPS", "speedup")

	var baseCycles uint64
	for _, kind := range []struct {
		name string
		k    tcgpu.GemmKind
	}{
		{"FP32 SIMT (no TC)", tcgpu.GemmSimtFP32},
		{"tensor cores (mixed)", tcgpu.GemmTensorMixed},
	} {
		dev, err := tcgpu.NewDevice(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tcgpu.RunGEMM(dev, kind.k, batch, outDim, inDim)
		if err != nil {
			log.Fatal(err)
		}
		speed := "1.00x"
		if baseCycles == 0 {
			baseCycles = res.Stats.Cycles
		} else {
			speed = fmt.Sprintf("%.2fx", float64(baseCycles)/float64(res.Stats.Cycles))
		}
		fmt.Printf("%-22s %10d %10.2f %10s\n", kind.name, res.Stats.Cycles, res.TFLOPS, speed)
	}

	// Full numerics demonstration with the functional model: bias in C,
	// ReLU on the host.
	c := tcgpu.NewMatrix(batch, outDim)
	c.FillFunc(func(_, j int) float64 { return bias[j] })
	y16 := tileGemm(x, w, c)
	relu(y16)
	fmt.Printf("\nY[0][0..4] = %.3f %.3f %.3f %.3f\n",
		y16.At(0, 0), y16.At(0, 1), y16.At(0, 2), y16.At(0, 3))
	fmt.Println("(tensor-core FP16 quantization keeps activations within ~1e-2 of FP64 here)")
}

// tileGemm computes X·W + C with the warp-level functional model, tiling
// the problem into 16×16×16 wmma ops exactly as a kernel would.
func tileGemm(x, w, c *tcgpu.Matrix) *tcgpu.Matrix {
	out := tcgpu.NewMatrix(x.Rows, w.Cols)
	out.FillFunc(c.At)
	for i := 0; i < x.Rows; i += 16 {
		for j := 0; j < w.Cols; j += 16 {
			acc := out.Sub(i, j, 16, 16)
			for k := 0; k < x.Cols; k += 16 {
				var err error
				acc, err = tcgpu.MMA(x.Sub(i, k, 16, 16), w.Sub(k, j, 16, 16), acc)
				if err != nil {
					log.Fatal(err)
				}
			}
			for r := 0; r < 16; r++ {
				for cc := 0; cc < 16; cc++ {
					out.Set(i+r, j+cc, acc.At(r, cc))
				}
			}
		}
	}
	return out
}

func relu(m *tcgpu.Matrix) {
	for i := range m.Data {
		if m.Data[i] < 0 {
			m.Data[i] = 0
		}
	}
}
