// Quickstart: one warp-level tensor-core multiply through the functional
// model, then a full GEMM through the cycle-level simulator.
package main

import (
	"fmt"
	"log"

	tcgpu "repro"
)

func main() {
	// 1. Functional: D = A×B + C on one 16×16×16 tile, exactly as a
	// Volta tensor core computes it (FP16 inputs, FP32 accumulate).
	a := tcgpu.NewMatrix(16, 16)
	b := tcgpu.NewMatrix(16, 16)
	c := tcgpu.NewMatrix(16, 16)
	a.FillSequential()
	b.FillFunc(func(i, j int) float64 {
		if i == j {
			return 2 // 2·I: D should be 2A + 1
		}
		return 0
	})
	c.FillConst(1)
	d, err := tcgpu.MMA(a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tile D[0,0..3] = %.3f %.3f %.3f %.3f (want 2·A + 1)\n",
		d.At(0, 0), d.At(0, 1), d.At(0, 2), d.At(0, 3))

	// 2. Timed: a 256³ mixed-precision GEMM on a simulated Titan V
	// slice. The result is checked against the float64 reference and the
	// simulator reports cycles, IPC and throughput.
	cfg := tcgpu.TitanVConfig()
	cfg.NumSMs = 8 // a slice keeps the example fast
	dev, err := tcgpu.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tcgpu.RunGEMM(dev, tcgpu.GemmTensorMixed, 256, 256, 256)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("256³ GEMM: %d cycles, IPC %.2f, %d wmma.mma ops, %.2f TFLOPS (8-SM slice)\n",
		st.Cycles, st.IPC(), st.TensorOps, res.TFLOPS)
	fmt.Printf("max |error| vs float64 reference: %g\n", res.MaxAbsError)
}
