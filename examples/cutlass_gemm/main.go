// cutlass_gemm sweeps the CUTLASS-style tile policies over one problem
// size on the simulated GPU — the workload family behind the paper's
// Figure 14b IPC-correlation experiment — and prints the policy
// comparison a kernel author would use to pick a tiling.
package main

import (
	"fmt"
	"log"

	tcgpu "repro"
)

func main() {
	const m, n, k = 256, 256, 256
	cfg := tcgpu.TitanVConfig()
	cfg.NumSMs = 8
	fmt.Printf("CUTLASS-style GEMM %d×%d×%d on %d simulated SMs\n\n", m, n, k, cfg.NumSMs)
	fmt.Printf("%-16s %10s %8s %8s %12s\n", "policy", "cycles", "IPC", "TFLOPS", "max|err|")
	for _, pol := range tcgpu.DefaultTilePolicies() {
		if m%pol.BlockM != 0 || n%pol.BlockN != 0 {
			continue
		}
		dev, err := tcgpu.NewDevice(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tcgpu.RunCutlassGEMM(dev, pol, m, n, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %8.2f %8.2f %12g\n",
			pol.String(), res.Stats.Cycles, res.Stats.IPC(), res.TFLOPS, res.MaxAbsError)
	}
	fmt.Println("\nat this small size the smaller block tiles win: they launch more CTAs")
	fmt.Println("and keep all SMs busy. Large tiles amortize staging traffic and pull")
	fmt.Println("ahead once the grid has enough blocks per SM (see fig17).")
}
