// turing_int8 demonstrates the Turing (RTX 2080) integer tensor-core
// modes the paper characterizes in Section III: an INT8 inference GEMM
// tile computed with the functional model, its HMMA decomposition, and
// the Table I latency calibration.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/sass"
	"repro/internal/tcore"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func main() {
	cfg := wmma.Config{
		Arch: wmma.Turing, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.S8, CType: wmma.S32, DType: wmma.S32,
	}
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(16, 16, cfg.ALayout)
	b := tensor.New(16, 16, cfg.BLayout)
	c := tensor.New(16, 16, tensor.RowMajor)
	a.FillRandomInt(rng, -128, 127)
	b.FillRandomInt(rng, -128, 127)
	c.FillRandomInt(rng, -1000, 1000)

	d, err := wmma.MMA(cfg, a, b, c, tensor.RowMajor)
	if err != nil {
		log.Fatal(err)
	}
	want := tensor.Gemm(a, b, c, tensor.RowMajor)
	fmt.Printf("INT8 mma 16×16×16: D[0][0..3] = %.0f %.0f %.0f %.0f  (exact: max|err| = %g)\n",
		d.At(0, 0), d.At(0, 1), d.At(0, 2), d.At(0, 3), tensor.MaxAbsDiff(d, want))

	// The set decomposition differs from Volta: four unannotated HMMAs,
	// each covering the full K depth over one output quadrant.
	sets, err := tcore.TuringSchedule(cfg.Shape, cfg.AType)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHMMA sets (Figure 11b):")
	for _, s := range sets {
		fmt.Printf("  set %d: A%v × B%v → D%v\n", s.Set, s.A, s.B, s.D)
	}

	prog, err := sass.ExpandMMA(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSASS expansion (%d HMMAs, no STEP annotation on Turing):\n%s", len(prog), prog)

	fmt.Println("\nTable I latencies (cumulative cycles to each set):")
	for _, mode := range []struct {
		elem, acc wmma.Precision
		label     string
	}{
		{wmma.F16, wmma.F32, "16-bit, FP32 acc"},
		{wmma.F16, wmma.F16, "16-bit, FP16 acc"},
		{wmma.S8, wmma.S32, "8-bit"},
	} {
		tm, err := tcore.TuringTiming(cfg.Shape, mode.elem, mode.acc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %v (total %d cycles)\n", mode.label, tm.SetCumulative(), tm.Total())
	}
	fmt.Println("\n8-bit mode is the fastest — the reason T4-class parts target INT8 inference.")
}
