// ptx_assembly writes a kernel as PTX-subset text, assembles it with the
// library's parser, and runs it on the cycle-level simulator — the same
// path GPGPU-Sim users take when feeding it PTX emitted by nvcc.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/ptx"
)

// saxpy: y[i] = a*x[i] + y[i] over one thread block, with the scale
// factor in a register-packed immediate (PTX hex-float syntax).
const src = `
.target sm_70
.entry saxpy(.param .u64 x, .param .u64 y, .param .u32 n)
{
  mov.u32      %i, %tid.x;
  setp.ge.u32  %done, %i, %n;
@%done bra out;
  mul.wide.u32 %off, %i, 4;
  add.u64      %xp, %off, %x;
  add.u64      %yp, %off, %y;
  ld.global.32 %xv, [%xp];
  ld.global.32 %yv, [%yp];
  mov.f32      %a, 0f40000000;      // 2.0
  mad.f32      %yv, %a, %xv, %yv;   // y = 2x + y
  st.global.32 [%yp], %yv;
out:
  exit;
}`

func main() {
	kernel, err := ptx.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions, %d virtual registers\n",
		kernel.Name, len(kernel.Instrs), kernel.NumRegs)

	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	dev := cuda.MustNewDevice(cfg)
	const n = 96
	x := dev.Mem.Malloc(4 * n)
	y := dev.Mem.Malloc(4 * n)
	buf := make([]byte, 4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(i)))
		dev.Mem.Write(x+uint64(4*i), buf)
		binary.LittleEndian.PutUint32(buf, math.Float32bits(100))
		dev.Mem.Write(y+uint64(4*i), buf)
	}

	st, err := dev.Launch(kernel, ptx.D1(1), ptx.D1(128), x, y, n)
	if err != nil {
		log.Fatal(err)
	}
	dev.Mem.Read(y+4*10, buf)
	fmt.Printf("y[10] = %.1f (want 2·10 + 100 = 120)\n",
		math.Float32frombits(binary.LittleEndian.Uint32(buf)))
	fmt.Printf("simulated %d cycles, %d warp instructions, IPC %.2f\n",
		st.Cycles, st.WarpInstructions, st.IPC())
}
