// Package tcgpu is a Go reproduction of "Modeling Deep Learning
// Accelerator Enabled GPUs" (Raihan, Goli and Aamodt, ISPASS 2019): a
// functional and cycle-level timing model of the tensor cores in NVIDIA's
// Volta and Turing architectures, embedded in a GPGPU-Sim-style GPU
// simulator, together with the paper's WMMA/CUTLASS workloads and every
// evaluation experiment.
//
// The package is a façade over the internal packages:
//
//   - fragment-to-thread mappings and functional wmma semantics
//     (internal/wmma), HMMA set/step decomposition and calibrated timings
//     (internal/tcore, internal/sass);
//   - a PTX-subset IR with builder and executor (internal/ptx);
//   - the cycle-level SM/memory simulator (internal/gpu, internal/mem)
//     and CUDA-like runtime (internal/cuda); warp scheduling is
//     event-driven (per-sub-core ready sets plus a wake-time heap, so
//     stalled warps are never rescanned) with pluggable policies —
//     greedy-then-oldest, loose round-robin and two-level — selected by
//     GPUConfig.Scheduler;
//   - GEMM kernels and a CUTLASS-style generator (internal/kernels,
//     internal/cutlass);
//   - the experiment registry regenerating every paper table and figure
//     (internal/experiments), backed by a two-level parallel engine: a
//     cross-experiment scheduler (RunAllExperiments) fans the whole
//     registry's data points into one shared worker pool with a global
//     ExperimentOptions.Workers budget (0 = one worker per CPU, 1 =
//     sequential), and single experiments fan their points across a
//     private pool of the same size. Parallel runs emit byte-identical
//     tables whatever the worker count.
//
// The module path is "repro"; import this root package as:
//
//	import tcgpu "repro"
//
// Quick start:
//
//	dev := tcgpu.NewTitanV()
//	res, err := tcgpu.RunGEMM(dev, tcgpu.GemmTensorMixed, 256, 256, 256)
//	fmt.Printf("%.1f TFLOPS in %d cycles\n", res.TFLOPS, res.Stats.Cycles)
//
// Regenerating a paper artifact with the parallel engine:
//
//	tb, err := tcgpu.RunExperiment("fig14b", tcgpu.ExperimentOptions{Quick: true})
//	fmt.Println(tb)
package tcgpu

import (
	"fmt"
	"math/rand"

	"repro/internal/cuda"
	"repro/internal/cutlass"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Re-exported core types, so library users need only this package for the
// common paths.
type (
	// Device is a simulated GPU with device memory.
	Device = cuda.Device
	// GPUConfig configures the simulated GPU.
	GPUConfig = gpu.Config
	// Stats are the timing statistics of one kernel launch.
	Stats = gpu.Stats
	// Matrix is a host-side dense matrix.
	Matrix = tensor.Matrix
	// Experiment is one paper table/figure reproduction.
	Experiment = experiments.Experiment
	// ExperimentOptions tunes experiment cost.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a regenerated table/figure.
	ExperimentTable = experiments.Table
	// TilePolicy is a CUTLASS-style threadblock/warp tiling.
	TilePolicy = cutlass.TilePolicy
	// SchedulerPolicy selects the warp scheduler of GPUConfig.Scheduler.
	SchedulerPolicy = gpu.SchedulerPolicy
)

// Warp scheduling policies for GPUConfig.Scheduler.
const (
	// SchedGTO is greedy-then-oldest, the hardware default.
	SchedGTO = gpu.GTO
	// SchedLRR is loose round-robin.
	SchedLRR = gpu.LRR
	// SchedTwoLevel is two-level scheduling: a small active subset issues
	// while a pending pool hides long latencies.
	SchedTwoLevel = gpu.TwoLevel
)

// ParseSchedulerPolicy maps the CLI spelling ("gto", "lrr", "twolevel")
// to a SchedulerPolicy.
func ParseSchedulerPolicy(s string) (SchedulerPolicy, error) {
	return gpu.ParseSchedulerPolicy(s)
}

// LegacyAccessPath routes warps created afterwards through the per-lane
// memory access path instead of the batched struct-of-arrays pipeline
// (the default). It is a debug/ablation knob: both paths produce
// bit-identical Stats and experiment tables; the batched one is simply
// faster. See DESIGN.md's "Batched memory path".
func LegacyAccessPath(on bool) { ptx.LegacyAccessPath(on) }

// SwapLegacyAccessPath sets the knob and returns a closure restoring the
// previous setting. Tests flip knobs through the Swap form (registered
// with defer or t.Cleanup) so a failure can never leak the legacy path
// into later tests; simlint's globalmut analyzer enforces this.
func SwapLegacyAccessPath(on bool) (restore func()) { return ptx.SwapLegacyAccessPath(on) }

// LegacyFragmentPath routes warps created afterwards through the
// per-element wmma fragment path (gather/scatter and fragment data
// movement one element at a time) instead of the batched slot-vector
// pipeline (the default). Like LegacyAccessPath it is a debug/ablation
// knob: both paths produce bit-identical Stats and experiment tables.
// See DESIGN.md's "Batched fragment path".
func LegacyFragmentPath(on bool) { ptx.LegacyFragmentPath(on) }

// SwapLegacyFragmentPath is the set-and-restore form of
// LegacyFragmentPath; see SwapLegacyAccessPath.
func SwapLegacyFragmentPath(on bool) (restore func()) { return ptx.SwapLegacyFragmentPath(on) }

// ScanScheduler routes simulators constructed afterwards through the
// legacy per-cycle full-scan warp scheduler instead of the event-driven
// incremental issue order (the default). Like the other legacy knobs it
// is a debug/ablation switch: both paths produce bit-identical Stats and
// experiment tables. See DESIGN.md's "O(1) issue selection".
func ScanScheduler(on bool) { gpu.ScanScheduler(on) }

// SwapScanScheduler is the set-and-restore form of ScanScheduler; see
// SwapLegacyAccessPath.
func SwapScanScheduler(on bool) (restore func()) { return gpu.SwapScanScheduler(on) }

// GemmKind selects the datapath of RunGEMM.
type GemmKind int

const (
	// GemmTensorMixed runs on tensor cores with FP32 accumulation.
	GemmTensorMixed GemmKind = iota
	// GemmTensorFP16 runs on tensor cores with FP16 accumulation.
	GemmTensorFP16
	// GemmSimtFP32 runs SGEMM on the FP32 SIMT cores.
	GemmSimtFP32
	// GemmSimtFP16 runs packed-half HGEMM on the SIMT cores.
	GemmSimtFP16
)

// TitanVConfig returns the calibrated Volta (Titan V) configuration.
func TitanVConfig() GPUConfig { return gpu.TitanV() }

// RTX2080Config returns the Turing (RTX 2080) configuration.
func RTX2080Config() GPUConfig { return gpu.RTX2080() }

// NewTitanV builds a simulated Titan V device.
func NewTitanV() *Device { return cuda.MustNewDevice(gpu.TitanV()) }

// NewDevice builds a device for an arbitrary configuration.
func NewDevice(cfg GPUConfig) (*Device, error) { return cuda.NewDevice(cfg) }

// GemmResult bundles the outcome of RunGEMM.
type GemmResult struct {
	Stats  *Stats
	D      *Matrix // result matrix (M×N, row-major)
	TFLOPS float64
	// MaxAbsError is the largest deviation from the float64 reference.
	MaxAbsError float64
}

// RunGEMM generates a GEMM kernel of the given kind, runs D = A×B + C on
// random matrices through the timing simulator, verifies the result
// against the float64 reference, and reports throughput. M, N and K must
// satisfy the kind's tile constraints (multiples of 64/128 for the SIMT
// kinds, 32 for the tensor kinds).
func RunGEMM(dev *Device, kind GemmKind, m, n, k int) (*GemmResult, error) {
	var (
		l   *kernels.Launch
		err error
		ab  = wmma.F16
		cd  = wmma.F32
	)
	switch kind {
	case GemmTensorMixed:
		l, err = kernels.WMMAGemmShared(kernels.TensorMixed, m, n, k)
	case GemmTensorFP16:
		l, err = kernels.WMMAGemmShared(kernels.TensorFP16, m, n, k)
		cd = wmma.F16
	case GemmSimtFP32:
		l, err = kernels.SGEMMSimt(m, n, k)
		ab, cd = wmma.F32, wmma.F32
	case GemmSimtFP16:
		l, err = kernels.HGEMMSimt(m, n, k)
		cd = wmma.F16
	default:
		return nil, fmt.Errorf("tcgpu: unknown GEMM kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(m)*1_000_003 + int64(n)*997 + int64(k)))
	a := tensor.New(m, k, tensor.RowMajor)
	bm := tensor.New(k, n, tensor.RowMajor)
	c := tensor.New(m, n, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	c.FillRandomFP16(rng)
	da := dev.UploadMatrix(a, ab)
	db := dev.UploadMatrix(bm, ab)
	dc := dev.UploadMatrix(c, cd)
	dd := dev.MallocMatrix(m, n, cd)
	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, db, dc, dd)
	if err != nil {
		return nil, err
	}
	d := dev.ReadMatrix(dd, m, n, tensor.RowMajor, cd)
	want := tensor.Gemm(a, bm, c, tensor.RowMajor)
	return &GemmResult{
		Stats:       st,
		D:           d,
		TFLOPS:      l.FLOPs / st.Seconds(dev.Sim.Config()) / 1e12,
		MaxAbsError: tensor.MaxAbsDiff(d, want),
	}, nil
}

// RunCutlassGEMM runs a CUTLASS-style tiled GEMM under the given policy.
func RunCutlassGEMM(dev *Device, policy TilePolicy, m, n, k int) (*GemmResult, error) {
	cfg := cutlass.GemmConfig{Policy: policy, Precision: kernels.TensorMixed, M: m, N: n, K: k}
	l, err := cutlass.Build(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	a := tensor.New(m, k, tensor.RowMajor)
	bm := tensor.New(k, n, tensor.RowMajor)
	c := tensor.New(m, n, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	c.FillRandomFP16(rng)
	da := dev.UploadMatrix(a, wmma.F16)
	db := dev.UploadMatrix(bm, wmma.F16)
	dc := dev.UploadMatrix(c, wmma.F32)
	dd := dev.MallocMatrix(m, n, wmma.F32)
	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, db, dc, dd)
	if err != nil {
		return nil, err
	}
	d := dev.ReadMatrix(dd, m, n, tensor.RowMajor, wmma.F32)
	want := tensor.Gemm(a, bm, c, tensor.RowMajor)
	return &GemmResult{
		Stats:       st,
		D:           d,
		TFLOPS:      l.FLOPs / st.Seconds(dev.Sim.Config()) / 1e12,
		MaxAbsError: tensor.MaxAbsDiff(d, want),
	}, nil
}

// DefaultTilePolicies returns the CUTLASS tile configurations shipped
// with the library.
func DefaultTilePolicies() []TilePolicy { return cutlass.DefaultPolicies() }

// Experiments returns the registry of paper-table/figure reproductions.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one paper artifact by id (e.g. "fig9",
// "tab1", "fig14b"). The experiment's independent data points fan out
// across opt.Workers goroutines (0 = one per CPU); the table is identical
// whatever the worker count.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opt)
}

// RunAllExperiments regenerates the full registry in paper order on the
// two-level scheduler: every experiment's independent data points fan out
// into one shared worker pool bounded by opt.Workers (0 = one worker per
// CPU), so the budget is global rather than per experiment. A failing
// experiment no longer aborts the rest — every successful table is
// returned in registry order, and the returned error aggregates the
// failures (nil when all succeed).
func RunAllExperiments(opt ExperimentOptions) ([]*ExperimentTable, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	results := experiments.RunAll(experiments.All(), opt, nil)
	var out []*ExperimentTable
	for _, r := range results {
		if r.Err == nil {
			out = append(out, r.Table)
		}
	}
	return out, experiments.Errs(results)
}

// NewMatrix returns a zeroed rows×cols row-major host matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols, tensor.RowMajor) }

// MMA computes one warp-level D = A×B + C tile with the tensor core
// functional model (Volta 16×16×16, FP32 accumulate), quantizing inputs
// to FP16 — a convenience for users who only need the arithmetic.
func MMA(a, b, c *Matrix) (*Matrix, error) {
	cfg := wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.RowMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32}
	return wmma.MMA(cfg, a, b, c, tensor.RowMajor)
}
