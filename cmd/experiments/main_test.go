package main

import "testing"

// The -sms and -workers flags must be rejected at the flag boundary:
// negative or absurd values used to panic or silently misbehave deep in
// gpu.New.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		sms, workers int
		sched        string
		ok           bool
	}{
		{0, 0, "", true},
		{16, 4, "", true},
		{16, 4, "gto", true},
		{16, 4, "lrr", true},
		{16, 4, "twolevel", true},
		{maxSMs, maxWorkers, "", true},
		{-1, 0, "", false},
		{0, -1, "", false},
		{maxSMs + 1, 0, "", false},
		{0, maxWorkers + 1, "", false},
		{-80, -80, "", false},
		{0, 0, "fifo", false},
	}
	for _, c := range cases {
		err := validateFlags(c.sms, c.workers, c.sched)
		if (err == nil) != c.ok {
			t.Errorf("validateFlags(%d, %d, %q) = %v, want ok=%v", c.sms, c.workers, c.sched, err, c.ok)
		}
	}
}
