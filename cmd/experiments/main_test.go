package main

import "testing"

// The -sms, -workers and -tlactive flags must be rejected at the flag
// boundary: negative or absurd values used to panic or silently
// misbehave deep in gpu.New.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		sms, workers, tlActive int
		sched                  string
		ok                     bool
	}{
		{0, 0, 0, "", true},
		{16, 4, 0, "", true},
		{16, 4, 0, "gto", true},
		{16, 4, 0, "lrr", true},
		{16, 4, 2, "twolevel", true},
		{maxSMs, maxWorkers, maxTLActive, "", true},
		{-1, 0, 0, "", false},
		{0, -1, 0, "", false},
		{maxSMs + 1, 0, 0, "", false},
		{0, maxWorkers + 1, 0, "", false},
		{0, 0, -1, "", false},
		{0, 0, maxTLActive + 1, "", false},
		{-80, -80, 0, "", false},
		{0, 0, 0, "fifo", false},
	}
	for _, c := range cases {
		err := validateFlags(c.sms, c.workers, c.tlActive, c.sched)
		if (err == nil) != c.ok {
			t.Errorf("validateFlags(%d, %d, %d, %q) = %v, want ok=%v",
				c.sms, c.workers, c.tlActive, c.sched, err, c.ok)
		}
	}
}
