package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ptx"
)

// The -sms, -workers and -tlactive flags must be rejected at the flag
// boundary: negative or absurd values used to panic or silently
// misbehave deep in gpu.New.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		sms, workers, tlActive int
		sched                  string
		ok                     bool
	}{
		{0, 0, 0, "", true},
		{16, 4, 0, "", true},
		{16, 4, 0, "gto", true},
		{16, 4, 0, "lrr", true},
		{16, 4, 2, "twolevel", true},
		{maxSMs, maxWorkers, maxTLActive, "", true},
		{-1, 0, 0, "", false},
		{0, -1, 0, "", false},
		{maxSMs + 1, 0, 0, "", false},
		{0, maxWorkers + 1, 0, "", false},
		{0, 0, -1, "", false},
		{0, 0, maxTLActive + 1, "", false},
		{-80, -80, 0, "", false},
		{0, 0, 0, "fifo", false},
	}
	for _, c := range cases {
		err := validateFlags(c.sms, c.workers, c.tlActive, c.sched)
		if (err == nil) != c.ok {
			t.Errorf("validateFlags(%d, %d, %d, %q) = %v, want ok=%v",
				c.sms, c.workers, c.tlActive, c.sched, err, c.ok)
		}
	}
}

// execRun invokes the CLI in-process, returning (exit code, stdout,
// stderr). The whole exit-code contract is pinned this way — no
// subprocesses, no signals, fully deterministic.
func execRun(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// -h/-help is a successful usage request: flag.ErrHelp must map to
// exit 0 with the usage text, not to the usage-error exit 2.
func TestExitOKOnHelp(t *testing.T) {
	for _, h := range []string{"-h", "-help"} {
		code, _, serr := execRun(t, h)
		if code != exitOK {
			t.Errorf("%s = %d, want %d", h, code, exitOK)
		}
		if !strings.Contains(serr, "-run") {
			t.Errorf("%s did not print usage: %q", h, serr)
		}
	}
}

// Regression: -legacyfrag must restore the process-global fragment
// knob when run returns. A bare set used to leak it across in-process
// invocations — the exact leak the Swap discipline exists to prevent.
func TestLegacyFragRestoredOnReturn(t *testing.T) {
	t.Cleanup(ptx.SwapLegacyFragmentPath(false))
	code, _, _ := execRun(t, "-run", "fig7", "-legacyfrag")
	if code != exitOK {
		t.Fatalf("-run fig7 -legacyfrag = %d, want %d", code, exitOK)
	}
	if ptx.LegacyFragmentPathEnabled() {
		t.Error("-legacyfrag leaked the fragment-path knob past run()")
	}
}

func TestExitOKAndListing(t *testing.T) {
	code, out, _ := execRun(t, "-list")
	if code != exitOK || !strings.Contains(out, "fig12c") {
		t.Fatalf("-list = %d, output %q", code, out)
	}
	code, out, _ = execRun(t, "-run", "fig9")
	if code != exitOK || !strings.Contains(out, "fig9") {
		t.Fatalf("-run fig9 = %d, want %d with a table", code, exitOK)
	}
}

// Flag and infrastructure errors exit 2: undefined flags, out-of-range
// values, unknown experiments, malformed fault specs, -resume without a
// checkpoint, and an unwritable checkpoint path.
func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-run", "fig9", "-sms", "-1"},
		{"-run", "nope"},
		{"-run", "fig9", "-faults", "explode@fig9:0"},
		{"-run", "fig9", "-resume"},
		{"-run", "fig9", "-retries", "-1"},
		{"-run", "fig9", "-checkpoint", "/nonexistent-dir/ckpt"},
	}
	for _, args := range cases {
		if code, _, _ := execRun(t, args...); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}

// An experiment failure exits 1; under -keepgoing the partial table
// still prints with its failed cells marked.
func TestExitFailedAndKeepGoing(t *testing.T) {
	args := []string{"-run", "fig12c", "-quick", "-workers", "1",
		"-faults", "panic@fig12c:2"}
	code, out, _ := execRun(t, args...)
	if code != exitFailed || strings.Contains(out, "fig12c") {
		t.Fatalf("failing run = %d with table %q, want %d and no table", code, out, exitFailed)
	}
	code, out, serr := execRun(t, append(args, "-keepgoing")...)
	if code != exitFailed {
		t.Fatalf("keepgoing failing run = %d, want %d", code, exitFailed)
	}
	if !strings.Contains(out, "ERR!") || !strings.Contains(out, "fig12c") {
		t.Errorf("keepgoing stdout lacks the partial table: %q", out)
	}
	if !strings.Contains(serr, "point 2") {
		t.Errorf("stderr lacks the failed point: %q", serr)
	}
}

// The acceptance path: a run killed mid-sweep exits 130 with its
// completed points checkpointed; rerunning with -resume exits 0 and the
// resumed stdout is byte-identical to an uninterrupted run's.
func TestExitInterruptedAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	base := []string{"-run", "fig12c", "-quick", "-workers", "1"}

	_, ref, _ := execRun(t, base...)

	code, _, serr := execRun(t, append(base,
		"-checkpoint", ckpt, "-faults", "kill@fig12c:3")...)
	if code != exitInterrupted {
		t.Fatalf("killed run = %d, want %d (stderr %q)", code, exitInterrupted, serr)
	}
	if !strings.Contains(serr, "-resume") {
		t.Errorf("interrupted stderr does not point at -resume: %q", serr)
	}

	code, out, serr := execRun(t, append(base, "-checkpoint", ckpt, "-resume")...)
	if code != exitOK {
		t.Fatalf("resumed run = %d, want %d (stderr %q)", code, exitOK, serr)
	}
	if out != ref {
		t.Fatalf("resumed stdout differs from the uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", out, ref)
	}
	if !strings.Contains(serr, "3 replayed") {
		t.Errorf("stderr does not report the 3 replayed points: %q", serr)
	}
}
