// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -quick
//	experiments -run fig17 -sms 16
//	experiments -run all -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
	sms := flag.Int("sms", 0, "override simulated SM count (chip-slice scaling)")
	workers := flag.Int("workers", 0, "worker pool size for an experiment's data points (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opt := experiments.Options{Quick: *quick, SMs: *sms, Workers: *workers}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s (%s) — completed in %v\n", e.Paper, e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Println(tb.String())
	}
}
