// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -quick
//	experiments -run fig17 -sms 16
//	experiments -run all -workers 8
//	experiments -run all -quick -checkpoint sweep.ckpt
//	experiments -run all -quick -checkpoint sweep.ckpt -resume
//
// -run all schedules every experiment on one shared worker pool (the
// -workers budget is global across experiments) and streams each table to
// stdout in registry order as soon as it completes. Tables are
// byte-identical whatever the worker count; per-experiment timing and
// errors go to stderr. A failing experiment no longer suppresses the
// others: everything that succeeded still prints, and the command exits
// non-zero with a failure summary at the end.
//
// Fault tolerance: -checkpoint journals every completed data point so an
// interrupted sweep resumes with -resume, skipping finished points and
// emitting byte-identical tables. SIGINT/SIGTERM drain gracefully —
// in-flight points finish, completed tables still print, the journal
// stays valid. -keepgoing isolates per-point failures into annotated
// table cells; -maxcycles reaps runaway kernels.
//
// Exit codes: 0 success; 1 one or more experiments failed; 2 flag or
// infrastructure errors (bad flags, unknown experiment, unwritable
// checkpoint); 130 interrupted (completed work is in the checkpoint —
// rerun with -resume).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/ptx"
)

// Flag bounds: values beyond these are almost certainly typos (the full
// Titan V has 80 SMs) and would otherwise surface as panics or absurd
// memory use deep inside gpu.New.
const (
	maxSMs     = 1024
	maxWorkers = 4096
	// maxTLActive bounds -tlactive at the architectural warp budget: no
	// sub-core ever holds more warps than the SM-wide maximum.
	maxTLActive = 64
	maxRetries  = 16
)

// Exit codes of the fault-tolerance contract (see the package comment).
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

// validateFlags rejects out-of-range -sms/-workers/-tlactive values and
// unknown -sched spellings at the flag boundary with a clear error
// instead of letting them misbehave deep in the simulator.
func validateFlags(sms, workers, tlActive int, sched string) error {
	if sms < 0 || sms > maxSMs {
		return fmt.Errorf("experiments: -sms %d out of range (want 0 for the default, or 1..%d)", sms, maxSMs)
	}
	if workers < 0 || workers > maxWorkers {
		return fmt.Errorf("experiments: -workers %d out of range (want 0 for one per CPU, or 1..%d)", workers, maxWorkers)
	}
	if tlActive < 0 || tlActive > maxTLActive {
		return fmt.Errorf("experiments: -tlactive %d out of range (want 0 for the config default, or 1..%d)", tlActive, maxTLActive)
	}
	if sched != "" {
		if _, err := gpu.ParseSchedulerPolicy(sched); err != nil {
			return fmt.Errorf("experiments: -sched: %v", err)
		}
	}
	return nil
}

// validateFaultFlags checks the fault-tolerance flag combinations.
func validateFaultFlags(checkpoint string, resume bool, retries int, faults string) error {
	if resume && checkpoint == "" {
		return fmt.Errorf("experiments: -resume requires -checkpoint <file>")
	}
	if retries < 0 || retries > maxRetries {
		return fmt.Errorf("experiments: -retries %d out of range (want 0..%d)", retries, maxRetries)
	}
	if _, err := faultinject.Parse(faults); err != nil {
		return fmt.Errorf("experiments: -faults: %v", err)
	}
	return nil
}

func main() {
	// SIGINT/SIGTERM cancel the run context: workers stop picking up new
	// data points, in-flight points drain, completed tables still print,
	// and the checkpoint journal is closed cleanly. A second signal kills
	// the process the usual way (signal.NotifyContext resets handlers
	// once the context is done — but only after run returns, so we stop
	// listening explicitly when run exits).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is main's body with a normal return path, so the pprof writers'
// defers run before the process exits (os.Exit skips defers). It takes
// its args, streams and context explicitly so CLI tests can pin the
// whole exit-code contract in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available experiments")
	runID := fs.String("run", "", "experiment id to run, or 'all'")
	quick := fs.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
	sms := fs.Int("sms", 0, "override simulated SM count (chip-slice scaling)")
	sched := fs.String("sched", "", "override warp scheduler for every experiment: gto | lrr | twolevel (default: per-experiment; the sched sweep ignores it)")
	tlActive := fs.Int("tlactive", 0, "two-level scheduler active-subset size per sub-core (0 = config default; other policies ignore it)")
	workers := fs.Int("workers", 0, "global worker-pool budget shared by all experiments' data points (0 = one per CPU, 1 = sequential)")
	checkpoint := fs.String("checkpoint", "", "journal completed data points to this file (crash-safe, append-only)")
	resume := fs.Bool("resume", false, "replay completed points from the -checkpoint journal instead of re-simulating them")
	keepGoing := fs.Bool("keepgoing", false, "a failing data point becomes an annotated table cell instead of aborting its experiment")
	maxCycles := fs.Uint64("maxcycles", 0, "per-launch simulated-cycle budget; runaway kernels fail with a cycle-budget error (0 = generous backstop)")
	retries := fs.Int("retries", 0, "retry budget per data point for transient failures (deterministic backoff)")
	faults := fs.String("faults", "", "fault-injection spec, e.g. 'panic@fig9:0,transient@*:*~5' (testing/debug)")
	faultSeed := fs.Uint64("faultseed", 0, "seed for probabilistic fault sampling")
	legacyFrag := fs.Bool("legacyfrag", false, "route wmma fragments through the per-element legacy path (debug/ablation; tables are bit-identical, just slower)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (hot-spot hunts: go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		// -h/-help surfaces as flag.ErrHelp: a successful usage request,
		// not a usage error — it used to exit 2 like a typo.
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}

	if err := validateFlags(*sms, *workers, *tlActive, *sched); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	if err := validateFaultFlags(*checkpoint, *resume, *retries, *faults); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	if *legacyFrag {
		// Swap-and-restore, not a bare set: run() is re-entered
		// in-process by the CLI tests, and leaking the process-global
		// knob across invocations is exactly what the Swap discipline
		// (PR 6) exists to prevent.
		defer ptx.SwapLegacyFragmentPath(true)()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "experiments: -cpuprofile:", err)
			return exitUsage
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "experiments: -cpuprofile:", err)
			return exitUsage
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "experiments: -memprofile:", err)
			return exitUsage
		}
		defer func() {
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "experiments: -memprofile:", err)
			}
			f.Close()
		}()
	}

	if *list || *runID == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "  %-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Fprintln(stdout, "\nuse -run <id> or -run all")
		}
		return exitOK
	}

	// The injected Kill fault cancels the same context a SIGINT does: an
	// in-process stand-in for hard kills that makes the interrupt path
	// deterministically testable.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	plan, err := faultinject.Parse(*faults) // validated above
	if err != nil {
		fmt.Fprintln(stderr, "experiments: -faults:", err)
		return exitUsage
	}
	if plan != nil {
		plan.Seed = *faultSeed
		plan.Kill = cancel
	}

	opt := experiments.Options{Quick: *quick, SMs: *sms, Workers: *workers,
		Scheduler: *sched, TwoLevelActive: *tlActive,
		Ctx: ctx, MaxCycles: *maxCycles, KeepGoing: *keepGoing,
		Retries: *retries, Faults: plan}
	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitUsage
		}
		todo = []experiments.Experiment{e}
	}

	if *checkpoint != "" {
		j, err := experiments.OpenJournal(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "experiments: -checkpoint:", err)
			return exitUsage
		}
		opt.Journal = j
		defer func() {
			points, replayed := j.Stats()
			if err := j.Close(); err != nil {
				fmt.Fprintln(stderr, "experiments: -checkpoint:", err)
			}
			fmt.Fprintf(stderr, "checkpoint %s: %d points journaled, %d replayed\n",
				*checkpoint, points, replayed)
		}()
	}

	// Stream each table in registry order as soon as it completes. Only
	// tables go to stdout — timing and failures go to stderr — so stdout
	// is byte-identical whatever the worker count. Under -keepgoing an
	// experiment can carry both a partial table and an error; the table
	// still prints, with its failed cells marked.
	results := experiments.RunAll(todo, opt, func(r experiments.Result) {
		if r.Err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", r.Experiment.ID, r.Err)
		}
		if r.Table == nil {
			return
		}
		fmt.Fprintf(stdout, "# %s (%s)\n", r.Experiment.Paper, r.Experiment.ID)
		fmt.Fprintln(stdout, r.Table.String())
		fmt.Fprintf(stderr, "%s completed in %v\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	})

	// Interruption wins over per-experiment failures: the run was cut
	// short, so "failed" experiments are mostly just canceled ones.
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "experiments: interrupted")
		if *checkpoint != "" {
			fmt.Fprintf(stderr, "completed points are journaled; rerun with -checkpoint %s -resume\n", *checkpoint)
		}
		return exitInterrupted
	}
	if failed := experiments.Failures(results); len(failed) > 0 {
		fmt.Fprintf(stderr, "%d of %d experiments failed:\n", len(failed), len(results))
		for _, r := range failed {
			fmt.Fprintf(stderr, "  %-8s %v\n", r.Experiment.ID, r.Err)
		}
		return exitFailed
	}
	return exitOK
}
