// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -quick
//	experiments -run fig17 -sms 16
//	experiments -run all -workers 8
//
// -run all schedules every experiment on one shared worker pool (the
// -workers budget is global across experiments) and streams each table to
// stdout in registry order as soon as it completes. Tables are
// byte-identical whatever the worker count; per-experiment timing and
// errors go to stderr. A failing experiment no longer suppresses the
// others: everything that succeeded still prints, and the command exits
// non-zero with a failure summary at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/ptx"
)

// Flag bounds: values beyond these are almost certainly typos (the full
// Titan V has 80 SMs) and would otherwise surface as panics or absurd
// memory use deep inside gpu.New.
const (
	maxSMs     = 1024
	maxWorkers = 4096
	// maxTLActive bounds -tlactive at the architectural warp budget: no
	// sub-core ever holds more warps than the SM-wide maximum.
	maxTLActive = 64
)

// validateFlags rejects out-of-range -sms/-workers/-tlactive values and
// unknown -sched spellings at the flag boundary with a clear error
// instead of letting them misbehave deep in the simulator.
func validateFlags(sms, workers, tlActive int, sched string) error {
	if sms < 0 || sms > maxSMs {
		return fmt.Errorf("experiments: -sms %d out of range (want 0 for the default, or 1..%d)", sms, maxSMs)
	}
	if workers < 0 || workers > maxWorkers {
		return fmt.Errorf("experiments: -workers %d out of range (want 0 for one per CPU, or 1..%d)", workers, maxWorkers)
	}
	if tlActive < 0 || tlActive > maxTLActive {
		return fmt.Errorf("experiments: -tlactive %d out of range (want 0 for the config default, or 1..%d)", tlActive, maxTLActive)
	}
	if sched != "" {
		if _, err := gpu.ParseSchedulerPolicy(sched); err != nil {
			return fmt.Errorf("experiments: -sched: %v", err)
		}
	}
	return nil
}

func main() { os.Exit(run()) }

// run is main's body with a normal return path, so the pprof writers'
// defers run before the process exits (os.Exit skips defers).
func run() int {
	list := flag.Bool("list", false, "list available experiments")
	runID := flag.String("run", "", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
	sms := flag.Int("sms", 0, "override simulated SM count (chip-slice scaling)")
	sched := flag.String("sched", "", "override warp scheduler for every experiment: gto | lrr | twolevel (default: per-experiment; the sched sweep ignores it)")
	tlActive := flag.Int("tlactive", 0, "two-level scheduler active-subset size per sub-core (0 = config default; other policies ignore it)")
	workers := flag.Int("workers", 0, "global worker-pool budget shared by all experiments' data points (0 = one per CPU, 1 = sequential)")
	legacyFrag := flag.Bool("legacyfrag", false, "route wmma fragments through the per-element legacy path (debug/ablation; tables are bit-identical, just slower)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (hot-spot hunts: go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if err := validateFlags(*sms, *workers, *tlActive, *sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *legacyFrag {
		ptx.LegacyFragmentPath(true)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			return 2
		}
		defer func() {
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			}
			f.Close()
		}()
	}

	if *list || *runID == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return 0
	}

	opt := experiments.Options{Quick: *quick, SMs: *sms, Workers: *workers,
		Scheduler: *sched, TwoLevelActive: *tlActive}
	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		todo = []experiments.Experiment{e}
	}

	// Stream each table in registry order as soon as it completes. Only
	// tables go to stdout — timing and failures go to stderr — so stdout
	// is byte-identical whatever the worker count.
	results := experiments.RunAll(todo, opt, func(r experiments.Result) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Experiment.ID, r.Err)
			return
		}
		fmt.Printf("# %s (%s)\n", r.Experiment.Paper, r.Experiment.ID)
		fmt.Println(r.Table.String())
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	})

	if failed := experiments.Failures(results); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d experiments failed:\n", len(failed), len(results))
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "  %-8s %v\n", r.Experiment.ID, r.Err)
		}
		return 1
	}
	return 0
}
