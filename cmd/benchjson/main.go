// Command benchjson serializes `go test -bench` output into a
// benchmark-trajectory JSON artifact, so CI can archive one machine-
// readable file per run and successive BENCH_<n>.json files chart how
// the suite's numbers move across PRs.
//
// Usage:
//
//	go test -run xxx -bench Ablation -benchtime 1x -benchmem . | benchjson
//	go test -bench . -benchmem . | benchjson -out BENCH_5.json
//	benchjson -compare OLD.json NEW.json
//
// Without -out the next free BENCH_<n>.json in the working directory is
// chosen. Lines that are not benchmark results (headers, PASS/ok) are
// ignored, so the raw `go test` stream pipes straight in.
//
// -compare renders a benchstat-style markdown table of NEW against OLD
// on stdout (new/old ns/op and deltas, matched by name and GOMAXPROCS)
// for CI job summaries. The comparison is advisory: unmatched rows are
// listed, nothing fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the line ran under — the `-N` suffix go
	// test appends when it is not 1 (or under -cpu). The suffix is
	// parsed off uniformly so one benchmark keeps one Name whatever the
	// -cpu setting; it used to stay glued to the name, making the same
	// benchmark serialize under different names across machines.
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (cycles, gto_ipc, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the serialized artifact.
type File struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse consumes a `go test -bench` stream.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			f.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitProcs(fields[0])
		res := Result{Name: name, Procs: procs, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// splitProcs splits the `-N` GOMAXPROCS suffix off a benchmark name,
// the benchstat convention: a trailing dash-delimited positive integer
// is the proc count (go test omits it only when GOMAXPROCS is 1).
func splitProcs(name string) (string, int) {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return name[:i], n
		}
	}
	return name, 1
}

// Compare renders a benchstat-style markdown comparison of cur against
// prev: one row per benchmark of cur (matched to prev by name and proc
// count), the ns/op delta, and a closing geomean line over the matched
// rows. Rows only in one file are listed so a renamed or new benchmark
// is visible rather than silently dropped.
func Compare(prev, cur *File) string {
	type key struct {
		name  string
		procs int
	}
	old := make(map[key]Result, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[key{b.Name, b.Procs}] = b
	}
	var sb strings.Builder
	sb.WriteString("| benchmark | old ns/op | new ns/op | delta |\n")
	sb.WriteString("|---|---:|---:|---:|\n")
	logSum, matched := 0.0, 0
	seen := map[key]bool{}
	for _, b := range cur.Benchmarks {
		k := key{b.Name, b.Procs}
		seen[k] = true
		o, ok := old[k]
		if !ok || o.NsPerOp == 0 || b.NsPerOp == 0 {
			fmt.Fprintf(&sb, "| %s | — | %.0f | new |\n", b.Name, b.NsPerOp)
			continue
		}
		ratio := b.NsPerOp / o.NsPerOp
		logSum += math.Log(ratio)
		matched++
		fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %+.1f%% |\n", b.Name, o.NsPerOp, b.NsPerOp, (ratio-1)*100)
	}
	for _, b := range prev.Benchmarks {
		if !seen[key{b.Name, b.Procs}] {
			fmt.Fprintf(&sb, "| %s | %.0f | — | gone |\n", b.Name, b.NsPerOp)
		}
	}
	if matched > 0 {
		fmt.Fprintf(&sb, "\ngeomean over %d matched: %+.1f%%\n", matched, (math.Exp(logSum/float64(matched))-1)*100)
	} else {
		sb.WriteString("\nno matched benchmarks\n")
	}
	return sb.String()
}

// readFile loads a serialized artifact.
func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// nextBenchFile picks BENCH_<n>.json with n one past the largest present.
func nextBenchFile(dir string) string {
	n := 0
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if v, err := strconv.Atoi(base); err == nil && v > n {
			n = v
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n+1))
}

func main() {
	out := flag.String("out", "", "output file (default: next free BENCH_<n>.json)")
	compare := flag.String("compare", "", "previous artifact: print a markdown comparison of the positional new artifact against it")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare OLD.json needs exactly one NEW.json argument")
			os.Exit(1)
		}
		prev, err := readFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		cur, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Print(Compare(prev, cur))
		return
	}

	f, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = nextBenchFile(".")
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), path)
}
