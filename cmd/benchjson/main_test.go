package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationBatchedMem/sgemm/batched         	       1	  47647113 ns/op	 1204 B/op	      11 allocs/op
BenchmarkAblationBatchedMem/sgemm/legacy          	       1	  53800357 ns/op	 1188 B/op	      11 allocs/op
BenchmarkAblationScheduler/gto-8                  	       2	   1234567 ns/op	     51193 cycles
PASS
ok  	repro	0.137s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || f.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q", f.GoOS, f.GoArch, f.Pkg)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	b0 := f.Benchmarks[0]
	if b0.Name != "BenchmarkAblationBatchedMem/sgemm/batched" || b0.Iterations != 1 || b0.Procs != 1 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.NsPerOp != 47647113 {
		t.Errorf("b0.NsPerOp = %v", b0.NsPerOp)
	}
	if b0.BytesPerOp == nil || *b0.BytesPerOp != 1204 || b0.AllocsPerOp == nil || *b0.AllocsPerOp != 11 {
		t.Errorf("b0 memstats = %v %v", b0.BytesPerOp, b0.AllocsPerOp)
	}
	b2 := f.Benchmarks[2]
	if b2.Name != "BenchmarkAblationScheduler/gto" || b2.Procs != 8 {
		t.Errorf("-cpu suffix not split uniformly: %+v", b2)
	}
	if b2.Metrics["cycles"] != 51193 {
		t.Errorf("custom metric lost: %+v", b2.Metrics)
	}
	if b2.BytesPerOp != nil {
		t.Error("b2 has bytes_per_op without -benchmem fields")
	}
}

// The same benchmark run under -cpu 1,2,8 must serialize under one
// uniform name, with the proc count carried separately — lines whose
// names differed only in the -N suffix used to land as three unrelated
// benchmarks in the artifact.
func TestParseCPUSuffixUniform(t *testing.T) {
	const in = `BenchmarkFig17TFLOPS     	       2	  500 ns/op
BenchmarkFig17TFLOPS-2   	       2	  300 ns/op
BenchmarkFig17TFLOPS-8   	       2	  100 ns/op	  12 tc_fp16_tflops
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	for i, wantProcs := range []int{1, 2, 8} {
		b := f.Benchmarks[i]
		if b.Name != "BenchmarkFig17TFLOPS" || b.Procs != wantProcs {
			t.Errorf("line %d: name %q procs %d, want BenchmarkFig17TFLOPS procs %d", i, b.Name, b.Procs, wantProcs)
		}
	}
	if f.Benchmarks[2].Metrics["tc_fp16_tflops"] != 12 {
		t.Errorf("custom metric lost on suffixed line: %+v", f.Benchmarks[2].Metrics)
	}
}

// A sub-benchmark axis value that happens to end in digits keeps its
// name intact when no proc suffix follows it — only the final
// dash-number is the -cpu suffix.
func TestParseSubBenchDigits(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkAblationHMMAII/2-8 	 1	 99 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(f.Benchmarks))
	}
	if b := f.Benchmarks[0]; b.Name != "BenchmarkAblationHMMAII/2" || b.Procs != 8 {
		t.Errorf("got %q procs %d, want BenchmarkAblationHMMAII/2 procs 8", b.Name, b.Procs)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	f, err := Parse(strings.NewReader("random text\nBenchmarkBroken 12\nok repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(f.Benchmarks))
	}
}

func TestCompare(t *testing.T) {
	prev := &File{Benchmarks: []Result{
		{Name: "BenchmarkA", Procs: 8, NsPerOp: 200},
		{Name: "BenchmarkB", Procs: 8, NsPerOp: 100},
		{Name: "BenchmarkGone", Procs: 8, NsPerOp: 50},
	}}
	cur := &File{Benchmarks: []Result{
		{Name: "BenchmarkA", Procs: 8, NsPerOp: 100}, // -50%
		{Name: "BenchmarkB", Procs: 8, NsPerOp: 200}, // +100%
		{Name: "BenchmarkNew", Procs: 8, NsPerOp: 10},
	}}
	out := Compare(prev, cur)
	for _, want := range []string{
		"| BenchmarkA | 200 | 100 | -50.0% |",
		"| BenchmarkB | 100 | 200 | +100.0% |",
		"| BenchmarkNew | — | 10 | new |",
		"| BenchmarkGone | 50 | — | gone |",
		// geomean of 0.5 and 2.0 is 1.0.
		"geomean over 2 matched: +0.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

// A proc-count mismatch is a different machine shape, not the same
// benchmark — it must not pair up.
func TestCompareProcsMismatch(t *testing.T) {
	prev := &File{Benchmarks: []Result{{Name: "BenchmarkA", Procs: 4, NsPerOp: 100}}}
	cur := &File{Benchmarks: []Result{{Name: "BenchmarkA", Procs: 8, NsPerOp: 100}}}
	out := Compare(prev, cur)
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Errorf("procs mismatch paired up:\n%s", out)
	}
	if !strings.Contains(out, "no matched benchmarks") {
		t.Errorf("expected empty match set:\n%s", out)
	}
}

func TestCompareEmptyPrev(t *testing.T) {
	cur := &File{Benchmarks: []Result{{Name: "BenchmarkA", Procs: 1, NsPerOp: 5}}}
	out := Compare(&File{}, cur)
	if !strings.Contains(out, "| BenchmarkA | — | 5 | new |") || !strings.Contains(out, "no matched benchmarks") {
		t.Errorf("first-run comparison wrong:\n%s", out)
	}
}

func TestNextBenchFile(t *testing.T) {
	dir := t.TempDir()
	if got, want := nextBenchFile(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Errorf("empty dir: %q, want %q", got, want)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_4.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := nextBenchFile(dir), filepath.Join(dir, "BENCH_5.json"); got != want {
		t.Errorf("populated dir: %q, want %q", got, want)
	}
}
