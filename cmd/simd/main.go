// Command simd is the simulation server: the batch experiment engine
// exposed as a long-running job service with a content-addressed
// result cache.
//
// Usage:
//
//	simd -addr 127.0.0.1:8080
//	simd -addr :8080 -workers 8 -cachemb 256 -draintimeout 1m
//
// API:
//
//	POST /v1/jobs              submit a job: {"experiment":"fig9","quick":true,
//	                           "sms":0,"sched":"","tlactive":0,"maxcycles":0,
//	                           "wait":true}; "wait" blocks until completion and
//	                           inlines the rendered table in the response
//	GET  /v1/jobs/{id}         job status (queued | running | done | failed)
//	GET  /v1/jobs/{id}/output  the rendered table, byte-identical to what
//	                           cmd/experiments prints for the same knobs
//	                           (long-polls until the job completes)
//	GET  /healthz              liveness (503 while draining)
//	GET  /statsz               job totals + cache hit/miss/eviction counters
//
// Jobs run on one long-lived shared worker pool (the -workers budget
// bounds total simulation concurrency across all in-flight requests),
// and every successful table is memoized by its content address
// (experiment ID + table-affecting knobs): the simulator is
// deterministic, so a repeated submission is served the byte-identical
// cached table without simulating anything.
//
// SIGINT/SIGTERM shut down gracefully: new jobs are rejected with 503,
// in-flight jobs drain to completion (bounded by -draintimeout), then
// the process exits 0.
//
// Exit codes: 0 clean shutdown (including signal-initiated), 1 server
// error, 2 flag errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"
)

const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

// Flag bounds, matching the other CLIs: values beyond these are
// almost certainly typos.
const (
	maxWorkers = 4096
	maxCacheMB = 1 << 20 // a terabyte of cached tables is a typo
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// validateFlags rejects out-of-range serving knobs at the flag
// boundary with a clear error.
func validateFlags(addr string, workers, cacheMB int, drainTimeout time.Duration) error {
	if addr == "" {
		return fmt.Errorf("simd: -addr must not be empty")
	}
	if workers < 0 || workers > maxWorkers {
		return fmt.Errorf("simd: -workers %d out of range (want 0 for one per CPU, or 1..%d)", workers, maxWorkers)
	}
	if cacheMB < 0 || cacheMB > maxCacheMB {
		return fmt.Errorf("simd: -cachemb %d out of range (want 0 to disable caching, or 1..%d)", cacheMB, maxCacheMB)
	}
	if drainTimeout < 0 {
		return fmt.Errorf("simd: -draintimeout must be ≥ 0 (0 = drain forever)")
	}
	return nil
}

// run is main's body with a normal return path so tests can pin the
// exit-code contract in-process. A canceled ctx (the signal path)
// triggers the graceful drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "shared worker-pool budget across all jobs (0 = one per CPU)")
	cacheMB := fs.Int("cachemb", 64, "content-addressed result cache budget in MiB (0 disables caching)")
	drainTimeout := fs.Duration("draintimeout", time.Minute, "bound on the SIGTERM drain; past it remaining jobs are canceled (0 = drain forever)")
	if err := fs.Parse(args); err != nil {
		// -h/-help is a successful usage request, not a usage error.
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	if err := validateFlags(*addr, *workers, *cacheMB, *drainTimeout); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "simd: listen:", err)
		return exitFailed
	}
	s := newServer(*workers, int64(*cacheMB)<<20, *drainTimeout)
	defer s.close()
	fmt.Fprintf(stdout, "simd: serving on http://%s (%d workers, %d MiB cache)\n",
		ln.Addr(), s.pool.Workers(), *cacheMB)
	return s.serve(ctx, ln, stderr)
}
