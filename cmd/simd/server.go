package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/servecache"
)

// The serving core: a job registry over the long-lived shared worker
// pool (experiments.Pool) fronted by the content-addressed result
// cache (internal/servecache). A job is one experiment run under one
// Options signature; its content address (experiments.ExperimentKey)
// memoizes the rendered table, so a repeated submission is served the
// byte-identical bytes with zero simulation. Decoded-kernel programs
// are shared read-only across concurrent jobs — the immutability the
// simlint frozen analyzer enforces is what makes one process safe for
// many tenants without per-request state audits.

// Job lifecycle states.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusFailed  = "failed"
)

// job is one submitted experiment run.
type job struct {
	id    string
	expID string
	key   string
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu sync.Mutex
	//simlint:guardedby mu
	status string
	// output is the rendered table; immutable once set (it is also the
	// cached payload, shared with other requests).
	//simlint:guardedby mu
	output []byte
	//simlint:guardedby mu
	errMsg string
	// cached records whether the job was served from the cache instead
	// of simulating.
	//simlint:guardedby mu
	cached bool
}

func (j *job) setStatus(st string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = st
}

// complete moves the job to its terminal state and wakes every waiter.
func (j *job) complete(out []byte, cached bool, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = statusFailed
		j.errMsg = err.Error()
	} else {
		j.status = statusDone
		j.output = out
		j.cached = cached
	}
	j.mu.Unlock()
	close(j.done)
}

// jobStatus is the wire form of a job. Output rides along only on
// wait-mode responses and the output endpoint.
type jobStatus struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	Status     string `json:"status"`
	Cached     bool   `json:"cached"`
	Error      string `json:"error,omitempty"`
	Output     string `json:"output,omitempty"`
}

func (j *job) snapshot(withOutput bool) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{ID: j.id, Experiment: j.expID, Key: j.key,
		Status: j.status, Cached: j.cached, Error: j.errMsg}
	if withOutput {
		st.Output = string(j.output)
	}
	return st
}

// output returns the terminal payload; call only after done closes.
func (j *job) terminal() (out []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.errMsg
}

// jobRequest is the POST /v1/jobs body: an experiment ID plus the
// table-affecting Options knobs (the same set PointKey hashes, so the
// request *is* its own cache address) and the run-bounding knobs that
// never change a successful table.
type jobRequest struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	SMs        int    `json:"sms"`
	Scheduler  string `json:"sched"`
	TwoLevel   int    `json:"tlactive"`
	MaxCycles  uint64 `json:"maxcycles"`
	// Wait blocks the POST until the job completes and inlines the
	// rendered table in the response.
	Wait bool `json:"wait"`
}

// server is the simd process state.
type server struct {
	pool  *experiments.Pool
	cache *servecache.Cache
	// runExp executes one job — pool.Run in production; tests swap it
	// to control timing and failure modes.
	runExp func(experiments.Experiment, experiments.Options) (*experiments.Table, error)
	// jobCtx is every job's cancellation context: independent of the
	// serve context so a SIGTERM drains in-flight jobs instead of
	// killing them; canceled only when the drain deadline passes.
	jobCtx    context.Context
	cancelJob context.CancelFunc
	// drainTimeout bounds the drain: past it, jobCtx cancels and the
	// still-running jobs abort through the simulator's own
	// cancellation polling (0 = wait forever).
	drainTimeout time.Duration
	// jobWG counts accepted jobs; the drain barrier.
	jobWG sync.WaitGroup

	mu sync.Mutex
	//simlint:guardedby mu
	jobs map[string]*job
	//simlint:guardedby mu
	nextID int
	//simlint:guardedby mu
	draining bool
	//simlint:guardedby mu
	submitted int64
	//simlint:guardedby mu
	finished int64
	//simlint:guardedby mu
	failed int64
}

// newServer wires the serving core. workers and cacheBytes follow the
// CLI knobs; drainTimeout bounds the SIGTERM drain.
func newServer(workers int, cacheBytes int64, drainTimeout time.Duration) *server {
	s := &server{
		pool:         experiments.NewPool(workers),
		cache:        servecache.New(cacheBytes),
		drainTimeout: drainTimeout,
	}
	s.runExp = s.pool.Run
	s.jobCtx, s.cancelJob = context.WithCancel(context.Background())
	s.mu.Lock()
	s.jobs = make(map[string]*job)
	s.mu.Unlock()
	return s
}

// close releases the pool; call after the drain.
func (s *server) close() {
	s.cancelJob()
	s.pool.Close()
}

// renderTable renders one finished experiment exactly as
// cmd/experiments streams it to stdout, so a served table is
// byte-identical to the batch CLI's output for the same knobs.
func renderTable(e experiments.Experiment, tb *experiments.Table) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# %s (%s)\n", e.Paper, e.ID)
	fmt.Fprintln(&b, tb.String())
	return b.Bytes()
}

// startJob registers and launches one job, or reports draining=false
// when the server no longer accepts work.
func (s *server) startJob(e experiments.Experiment, opt experiments.Options, key string) (*job, bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false
	}
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("job-%d", s.nextID),
		expID:  e.ID,
		key:    key,
		status: statusQueued,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.submitted++
	// Inside the lock so the drain cannot slip between the draining
	// check and the Add.
	s.jobWG.Add(1)
	s.mu.Unlock()
	go s.runJob(j, e, opt)
	return j, true
}

// runJob executes one job: cache first, simulation on the shared pool
// otherwise. A successful simulation populates the cache, so the next
// identical submission costs a map lookup.
func (s *server) runJob(j *job, e experiments.Experiment, opt experiments.Options) {
	defer s.jobWG.Done()
	if out, ok := s.cache.Get(j.key); ok {
		j.complete(out, true, nil)
		s.noteFinished(nil)
		return
	}
	j.setStatus(statusRunning)
	tb, err := s.runExp(e, opt)
	if err != nil {
		j.complete(nil, false, err)
		s.noteFinished(err)
		return
	}
	out := renderTable(e, tb)
	s.cache.Put(j.key, out)
	j.complete(out, false, nil)
	s.noteFinished(nil)
}

func (s *server) noteFinished(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished++
	if err != nil {
		s.failed++
	}
}

func (s *server) lookupJob(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handler builds the HTTP surface.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleOutput)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// statszResponse is /statsz's wire form: serving-side job totals plus
// the cache counters.
type statszResponse struct {
	Workers  int         `json:"workers"`
	Draining bool        `json:"draining"`
	Jobs     statszJobs  `json:"jobs"`
	Cache    statszCache `json:"cache"`
}

type statszJobs struct {
	Submitted int64 `json:"submitted"`
	InFlight  int64 `json:"in_flight"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
}

type statszCache struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// handleStatsz is the serving layer's counter surface — the sanctioned
// emitter for every servecache.Stats counter, so a counter added there
// cannot silently vanish from operations (the statcomplete contract).
//
//simlint:emitter
func (s *server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	cs := s.cache.Stats()
	s.mu.Lock()
	resp := statszResponse{
		Workers:  s.pool.Workers(),
		Draining: s.draining,
		Jobs: statszJobs{
			Submitted: s.submitted,
			InFlight:  s.submitted - s.finished,
			Done:      s.finished - s.failed,
			Failed:    s.failed,
		},
	}
	s.mu.Unlock()
	resp.Cache = statszCache{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Evictions: cs.Evictions,
		Entries:   cs.Entries,
		Bytes:     cs.Bytes,
		MaxBytes:  cs.MaxBytes,
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	e, err := experiments.ByID(req.Experiment)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	opt := experiments.Options{
		Quick:          req.Quick,
		SMs:            req.SMs,
		Scheduler:      req.Scheduler,
		TwoLevelActive: req.TwoLevel,
		MaxCycles:      req.MaxCycles,
		Ctx:            s.jobCtx,
	}
	if err := opt.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	key := experiments.ExperimentKey(e.ID, opt)
	j, ok := s.startJob(e, opt, key)
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining: not accepting new jobs"})
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, j.snapshot(false))
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.snapshot(true))
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result will
		// be cached for the retry).
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(false))
}

// handleOutput streams the job's rendered table: it long-polls until
// the job completes, then writes the byte-identical cached payload as
// plain text (exactly what cmd/experiments would print for the same
// knobs).
func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		return
	}
	out, errMsg := j.terminal()
	if errMsg != "" {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: errMsg})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// serve runs the HTTP server on ln until ctx cancels (the SIGINT/
// SIGTERM path), then shuts down gracefully: new jobs are rejected,
// in-flight jobs drain to completion (bounded by drainTimeout, past
// which they abort through the simulator's cancellation polling), and
// only then does the listener close. Returns the process exit code.
func (s *server) serve(ctx context.Context, ln net.Listener, stderr io.Writer) int {
	hs := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "simd: serve:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "simd: signal received; draining in-flight jobs")
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()
	if s.drainTimeout > 0 {
		select {
		case <-drained:
		case <-time.After(s.drainTimeout):
			fmt.Fprintf(stderr, "simd: drain exceeded %v; canceling remaining jobs\n", s.drainTimeout)
			s.cancelJob()
			<-drained
		}
	} else {
		<-drained
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stderr, "simd: drained; bye")
	return 0
}
