package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// newTestServer starts the serving core behind an httptest listener.
func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(2, 1<<20, time.Minute)
	t.Cleanup(s.close)
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postJob submits one job and decodes the response.
func postJob(t *testing.T, baseURL, body string) (int, jobStatus) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job response: %v", err)
	}
	return resp.StatusCode, st
}

func getStatsz(t *testing.T, baseURL string) statszResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The acceptance path: a repeated POST for the same (experiment,
// knobs) is served from the content-addressed cache — byte-identical
// to both the cold response and an out-of-band engine run — with no
// new simulation, as the cache counters and an instrumented executor
// prove.
func TestCacheHitByteEquivalence(t *testing.T) {
	s, hs := newTestServer(t)
	var sims atomic.Int64
	inner := s.runExp
	s.runExp = func(e experiments.Experiment, opt experiments.Options) (*experiments.Table, error) {
		sims.Add(1)
		return inner(e, opt)
	}

	// The out-of-band reference: what the batch engine computes for the
	// same knobs, rendered the same way the CLI streams it.
	e, err := experiments.ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Run(experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	want := string(renderTable(e, tb))

	const body = `{"experiment":"fig9","quick":true,"wait":true}`
	code, cold := postJob(t, hs.URL, body)
	if code != http.StatusOK || cold.Status != statusDone {
		t.Fatalf("cold POST = %d %+v", code, cold)
	}
	if cold.Cached {
		t.Error("cold run claims to be cached")
	}
	if cold.Output != want {
		t.Errorf("cold output differs from the batch engine's table:\n%s\nwant:\n%s", cold.Output, want)
	}

	code, warm := postJob(t, hs.URL, body)
	if code != http.StatusOK || warm.Status != statusDone {
		t.Fatalf("warm POST = %d %+v", code, warm)
	}
	if !warm.Cached {
		t.Error("repeated submission was not served from the cache")
	}
	if warm.Output != cold.Output {
		t.Error("cached output is not byte-identical to the cold run")
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("executor ran %d times, want 1 (the cache hit must not re-simulate)", got)
	}
	st := getStatsz(t, hs.URL)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Errorf("cache counters = %+v, want 1 hit, 1 miss, 1 entry", st.Cache)
	}
	if st.Jobs.Submitted != 2 || st.Jobs.Done != 2 || st.Jobs.Failed != 0 {
		t.Errorf("job counters = %+v, want 2 submitted, 2 done", st.Jobs)
	}

	// The output endpoint serves the same bytes as plain text.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + warm.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != want {
		t.Errorf("output endpoint = %d, %q", resp.StatusCode, raw)
	}

	// Different knobs are a different content address: no false hit.
	code, other := postJob(t, hs.URL, `{"experiment":"fig9","quick":true,"sms":1,"wait":true}`)
	if code != http.StatusOK || other.Cached {
		t.Errorf("distinct knobs served from cache: %d %+v", code, other)
	}
	if other.Key == warm.Key {
		t.Error("distinct knobs share a content address")
	}
}

// Async submission: 202 with a queued/running job, status polling, and
// the long-polling output endpoint.
func TestAsyncJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t)
	code, st := postJob(t, hs.URL, `{"experiment":"tab1","quick":true}`)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("async POST = %d %+v", code, st)
	}
	if st.Output != "" {
		t.Error("async response carries output")
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/output") // long-polls to completion
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(raw) == 0 {
		t.Fatalf("output long-poll = %d, %d bytes", resp.StatusCode, len(raw))
	}
	resp, err = http.Get(hs.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var done jobStatus
	json.NewDecoder(resp.Body).Decode(&done)
	resp.Body.Close()
	if done.Status != statusDone {
		t.Errorf("job status = %+v, want done", done)
	}
}

// Bad requests are rejected at the boundary with 400s; unknown jobs 404.
func TestRequestValidation(t *testing.T) {
	_, hs := newTestServer(t)
	for _, body := range []string{
		`{"experiment":"nope","wait":true}`,
		`{"experiment":"fig9","sched":"fifo","wait":true}`,
		`{"experiment":"fig9","tlactive":-1,"wait":true}`,
		`not json`,
	} {
		if code, _ := postJob(t, hs.URL, body); code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, code)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// Concurrent submissions — identical and distinct keys interleaved —
// must all succeed with per-key byte-identical outputs. Run under
// -race (CI does) this pins the serving layer's locking.
func TestConcurrentRequests(t *testing.T) {
	_, hs := newTestServer(t)
	bodies := []string{
		`{"experiment":"fig9","quick":true,"wait":true}`,
		`{"experiment":"tab1","quick":true,"wait":true}`,
	}
	const perBody = 6
	outputs := make([][]string, len(bodies))
	for i := range outputs {
		outputs[i] = make([]string, perBody)
	}
	var wg sync.WaitGroup
	for bi, body := range bodies {
		for r := 0; r < perBody; r++ {
			wg.Add(1)
			go func(bi, r int, body string) {
				defer wg.Done()
				code, st := postJob(t, hs.URL, body)
				if code != http.StatusOK || st.Status != statusDone {
					t.Errorf("concurrent POST = %d %+v", code, st)
					return
				}
				outputs[bi][r] = st.Output
			}(bi, r, body)
		}
	}
	wg.Wait()
	for bi := range outputs {
		for r := 1; r < perBody; r++ {
			if outputs[bi][r] != outputs[bi][0] {
				t.Errorf("body %d: response %d differs from response 0", bi, r)
			}
		}
	}
}

// The graceful-drain contract: on shutdown (SIGTERM in production; the
// canceled context is the same path) the server stops accepting jobs,
// in-flight jobs run to completion, and only then does serve return 0.
func TestGracefulDrainCompletesInFlightJobs(t *testing.T) {
	s := newServer(1, 1<<20, time.Minute)
	defer s.close()
	release := make(chan struct{})
	s.runExp = func(e experiments.Experiment, opt experiments.Options) (*experiments.Table, error) {
		<-release
		return &experiments.Table{ID: e.ID, Title: "drained", Columns: []string{"ok"}}, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	codec := make(chan int, 1)
	go func() { codec <- s.serve(ctx, ln, io.Discard) }()
	baseURL := "http://" + ln.Addr().String()

	code, st := postJob(t, baseURL, `{"experiment":"fig9","quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	cancel() // the SIGTERM analogue
	// The drain must block on the in-flight job: serve cannot have
	// returned yet because the job is still parked on release.
	select {
	case c := <-codec:
		t.Fatalf("serve returned %d while a job was in flight", c)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case c := <-codec:
		if c != exitOK {
			t.Fatalf("drained serve returned %d, want %d", c, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after the in-flight job completed")
	}

	j, ok := s.lookupJob(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	got := j.snapshot(true)
	if got.Status != statusDone || !strings.Contains(got.Output, "drained") {
		t.Errorf("in-flight job after drain = %+v, want done with output", got)
	}
	// Post-drain, the registry no longer accepts work.
	if _, ok := s.startJob(experiments.Experiment{ID: "x"}, experiments.Options{}, "k"); ok {
		t.Error("draining server accepted a new job")
	}
}

// A drain that exceeds -draintimeout cancels the stuck jobs through
// the engine's cancellation context instead of hanging forever.
func TestDrainTimeoutCancelsStuckJobs(t *testing.T) {
	s := newServer(1, 1<<20, 50*time.Millisecond)
	defer s.close()
	s.runExp = func(e experiments.Experiment, opt experiments.Options) (*experiments.Table, error) {
		<-opt.Ctx.Done() // a wedged job that only cancellation can reap
		return nil, fmt.Errorf("canceled: %w", opt.Ctx.Err())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	codec := make(chan int, 1)
	go func() { codec <- s.serve(ctx, ln, io.Discard) }()

	code, st := postJob(t, "http://"+ln.Addr().String(), `{"experiment":"fig9","quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	cancel()
	select {
	case c := <-codec:
		if c != exitOK {
			t.Fatalf("serve returned %d, want %d", c, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain timeout did not reap the wedged job")
	}
	j, _ := s.lookupJob(st.ID)
	if got := j.snapshot(false); got.Status != statusFailed {
		t.Errorf("wedged job = %+v, want failed", got)
	}
}

// The exit-code contract: -h is a successful usage request (exit 0,
// usage on stderr), bad flags exit 2, an unusable listen address exits
// 1, and a clean signal shutdown exits 0.
func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != exitOK {
		t.Errorf("-h = %d, want %d", code, exitOK)
	}
	if !strings.Contains(stderr.String(), "-addr") {
		t.Errorf("-h did not print usage: %q", stderr.String())
	}
	for _, args := range [][]string{
		{"-bogus"},
		{"-workers", "-1"},
		{"-workers", "999999"},
		{"-cachemb", "-1"},
		{"-addr", ""},
		{"-draintimeout", "-1s"},
	} {
		if code := run(context.Background(), args, io.Discard, io.Discard); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
	if code := run(context.Background(), []string{"-addr", "doesnotresolve.invalid:0"}, io.Discard, io.Discard); code != exitFailed {
		t.Errorf("bad listen address exited %d, want %d", code, exitFailed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	codec := make(chan int, 1)
	go func() { codec <- run(ctx, []string{"-addr", "127.0.0.1:0"}, io.Discard, io.Discard) }()
	time.Sleep(100 * time.Millisecond) // let it bind and serve
	cancel()
	select {
	case c := <-codec:
		if c != exitOK {
			t.Errorf("signal shutdown exited %d, want %d", c, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		addr         string
		workers, mb  int
		drainTimeout time.Duration
		ok           bool
	}{
		{"127.0.0.1:8080", 0, 64, time.Minute, true},
		{":0", maxWorkers, maxCacheMB, 0, true},
		{"", 0, 64, 0, false},
		{":0", -1, 64, 0, false},
		{":0", maxWorkers + 1, 64, 0, false},
		{":0", 0, -1, 0, false},
		{":0", 0, maxCacheMB + 1, 0, false},
		{":0", 0, 64, -time.Second, false},
	}
	for _, c := range cases {
		err := validateFlags(c.addr, c.workers, c.mb, c.drainTimeout)
		if (err == nil) != c.ok {
			t.Errorf("validateFlags(%q, %d, %d, %v) = %v, want ok=%v",
				c.addr, c.workers, c.mb, c.drainTimeout, err, c.ok)
		}
	}
}

// healthz flips to 503 once draining so load balancers stop routing.
func TestHealthz(t *testing.T) {
	s, hs := newTestServer(t)
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
}
