package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{
		"determinism", "hotpath", "knobpair", "statcomplete",
		"globalmut", "frozen", "guardedby",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q does not name the bad analyzer", errb.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	_ = out
}

func TestBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/internal/nosuchpkg"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2 (stderr %q)", code, errb.String())
	}
}

// TestJSONClean pins the machine-readable contract on a clean run: the
// output must be an empty JSON array, not null and not empty output, so
// CI's jq pipeline needs no special cases.
func TestJSONClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "repro/internal/fp16"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if findings == nil || len(findings) != 0 {
		t.Errorf("clean run must emit [], got %q", out.String())
	}
}

// TestJSONFindings runs one analyzer over its own flagged fixture and
// checks every -json object carries the full position and identity.
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-analyzers", "guardedby", "repro/internal/analysis/testdata/src/guardedby"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (fixture has findings)\nstderr:\n%s", code, errb.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("fixture run produced no findings")
	}
	for i, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
		if f.Analyzer != "guardedby" {
			t.Errorf("finding %d from analyzer %q, want guardedby", i, f.Analyzer)
		}
		// The test's cwd is cmd/simlint, so fixture files sit outside
		// it and stay absolute; only the suffix is stable.
		if !strings.HasSuffix(f.File, "guardedby.go") {
			t.Errorf("finding %d file %q: want the guardedby fixture file", i, f.File)
		}
	}
}

// TestCleanPackage runs the full suite over a package with no simulator
// state and no Stats structs: every analyzer must pass without output.
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/internal/fp16"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
