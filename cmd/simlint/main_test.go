package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"determinism", "hotpath", "knobpair", "statcomplete"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q does not name the bad analyzer", errb.String())
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	_ = out
}

func TestBadPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/internal/nosuchpkg"}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2 (stderr %q)", code, errb.String())
	}
}

// TestCleanPackage runs the full suite over a package with no simulator
// state and no Stats structs: every analyzer must pass without output.
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/internal/fp16"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
