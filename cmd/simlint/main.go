// Command simlint runs the repository's static-analysis suite: the
// four analyzers that mechanically enforce the simulator's
// determinism, hot-path and equivalence-knob invariants (see
// internal/analysis and DESIGN.md "Enforced invariants").
//
// Usage:
//
//	simlint [packages]                 # default ./...
//	simlint -analyzers determinism,hotpath ./internal/...
//	simlint -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings
// print as file:line:col: analyzer: message, one per line, so CI can
// lift them straight into the job summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (see simlint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	m, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	diags := analysis.RunSuite(m, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(m.Pkgs))
		return 1
	}
	return 0
}
