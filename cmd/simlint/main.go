// Command simlint runs the repository's static-analysis suite: the
// seven analyzers that mechanically enforce the simulator's
// determinism, hot-path, equivalence-knob and concurrency-safety
// invariants (see internal/analysis and DESIGN.md "Enforced
// invariants").
//
// Usage:
//
//	simlint [packages]                 # default ./...
//	simlint -analyzers determinism,hotpath ./internal/...
//	simlint -json ./...
//	simlint -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings
// print as file:line:col: analyzer: message, one per line, so CI can
// lift them straight into the job summary; -json instead emits one
// JSON array of {file,line,col,analyzer,message} objects (always an
// array, [] when clean) for machine consumers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (see simlint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	m, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	diags := analysis.RunSuite(m, analyzers)
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	if *asJSON {
		// Always an array (never null) so `jq length` and range
		// iteration work on a clean run without special-casing.
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     relName(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(m.Pkgs))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire form of one diagnostic; the CI lint job
// builds its Markdown summary from these objects.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
