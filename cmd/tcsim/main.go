// Command tcsim runs one GEMM kernel on the simulated GPU and prints its
// timing statistics — the front door to the cycle-level model.
//
// Usage:
//
//	tcsim -kernel wmma -m 256 -n 256 -k 256
//	tcsim -kernel cutlass -m 512 -n 512 -k 512 -policy b64x64_w32x32
//	tcsim -kernel sgemm -m 256 -n 256 -k 256 -sms 16 -scheduler lrr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cuda"
	"repro/internal/cutlass"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func main() {
	kernel := flag.String("kernel", "wmma", "wmma | wmma-naive | sgemm | hgemm | cutlass | maxperf")
	m := flag.Int("m", 256, "rows of A and D")
	n := flag.Int("n", 256, "columns of B and D")
	k := flag.Int("k", 256, "inner dimension")
	sms := flag.Int("sms", 0, "simulated SM count (default: full 80)")
	scheduler := flag.String("scheduler", "gto", "warp scheduler: gto | lrr")
	policy := flag.String("policy", "b64x64_w32x32", "cutlass tile policy")
	fp16acc := flag.Bool("fp16acc", false, "accumulate in FP16 instead of FP32")
	verify := flag.Bool("verify", true, "check the result against the float64 reference")
	flag.Parse()

	cfg := gpu.TitanV()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	if *scheduler == "lrr" {
		cfg.Scheduler = gpu.LRR
	}

	prec := kernels.TensorMixed
	cd := wmma.F32
	if *fp16acc {
		prec, cd = kernels.TensorFP16, wmma.F16
	}

	var (
		l   *kernels.Launch
		err error
		ab  = wmma.F16
	)
	switch *kernel {
	case "wmma":
		l, err = kernels.WMMAGemmShared(prec, *m, *n, *k)
	case "wmma-naive":
		l, err = kernels.WMMAGemmNaive(prec, *m, *n, *k)
	case "sgemm":
		l, err = kernels.SGEMMSimt(*m, *n, *k)
		ab, cd = wmma.F32, wmma.F32
	case "hgemm":
		l, err = kernels.HGEMMSimt(*m, *n, *k)
		cd = wmma.F16
	case "cutlass":
		var pol cutlass.TilePolicy
		pol, err = findPolicy(*policy)
		if err == nil {
			l, err = cutlass.Build(cutlass.GemmConfig{Policy: pol, Precision: prec, M: *m, N: *n, K: *k})
		}
	case "maxperf":
		l, err = kernels.MaxPerf(prec, 2*cfg.NumSMs, 4, 100)
	default:
		err = fmt.Errorf("unknown kernel %q", *kernel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dev := cuda.MustNewDevice(cfg)
	var args []uint64
	var want *tensor.Matrix
	if *kernel == "maxperf" {
		args = []uint64{dev.Mem.Malloc(2048)}
		*verify = false
	} else {
		a := tensor.New(*m, *k, tensor.RowMajor)
		b := tensor.New(*k, *n, tensor.RowMajor)
		c := tensor.New(*m, *n, tensor.RowMajor)
		fill(a, 1)
		fill(b, 2)
		fill(c, 3)
		args = []uint64{
			dev.UploadMatrix(a, ab),
			dev.UploadMatrix(b, ab),
			dev.UploadMatrix(c, cd),
			dev.MallocMatrix(*m, *n, cd),
		}
		if *verify {
			want = tensor.Gemm(a, b, c, tensor.RowMajor)
		}
	}

	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("kernel      : %s\n", l.Kernel.Name)
	fmt.Printf("gpu         : %s (%d SMs, %s scheduler)\n", cfg.Name, cfg.NumSMs, cfg.Scheduler)
	fmt.Printf("grid x block: %v x %v (%d CTAs)\n", l.Grid, l.Block, st.CTAsTotal)
	fmt.Printf("cycles      : %d (%.3f ms at %.0f MHz)\n", st.Cycles, st.Seconds(cfg)*1e3, cfg.ClockMHz)
	fmt.Printf("instructions: %d warp (%d thread), IPC %.2f\n",
		st.WarpInstructions, st.ThreadInstructions, st.IPC())
	fmt.Printf("tensor ops  : %d wmma.mma\n", st.TensorOps)
	fmt.Printf("L1 hit rate : %.1f%%   L2 hit rate: %.1f%%   DRAM accesses: %d\n",
		100*st.L1HitRate, 100*st.L2HitRate, st.DRAMAccesses)
	if l.FLOPs > 0 {
		fmt.Printf("throughput  : %.2f TFLOPS\n", l.FLOPs/st.Seconds(cfg)/1e12)
	}
	if *verify && want != nil {
		got := dev.ReadMatrix(args[3], *m, *n, tensor.RowMajor, cd)
		fmt.Printf("max |error| : %g vs float64 reference\n", tensor.MaxAbsDiff(got, want))
	}
}

func findPolicy(name string) (cutlass.TilePolicy, error) {
	for _, p := range cutlass.DefaultPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range cutlass.DefaultPolicies() {
		names = append(names, p.String())
	}
	return cutlass.TilePolicy{}, fmt.Errorf("unknown policy %q (have %v)", name, names)
}

func fill(m *tensor.Matrix, seed int) {
	s := seed
	m.FillFunc(func(int, int) float64 {
		s = (s*1103515245 + 12345) & 0x7fffffff
		return float64(s%16-8) / 8
	})
}
