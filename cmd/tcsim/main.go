// Command tcsim runs one GEMM kernel on the simulated GPU and prints its
// timing statistics — the front door to the cycle-level model.
//
// Usage:
//
//	tcsim -kernel wmma -m 256 -n 256 -k 256
//	tcsim -kernel cutlass -m 512 -n 512 -k 512 -policy b64x64_w32x32
//	tcsim -kernel sgemm -m 256 -n 256 -k 256 -sms 16 -sched lrr
//	tcsim -kernel wmma -sizes 128,256,512 -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cuda"
	"repro/internal/cutlass"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Exit codes: 0 success (including -h), 1 simulation failures, 2 flag
// errors — the same contract as cmd/experiments.
const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main's body with a normal return path, so the -legacyfrag
// restore runs before exit and CLI tests can pin the exit-code
// contract in-process (tables still print to the process stdout).
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "wmma", "wmma | wmma-naive | sgemm | hgemm | cutlass | maxperf")
	m := fs.Int("m", 256, "rows of A and D")
	n := fs.Int("n", 256, "columns of B and D")
	k := fs.Int("k", 256, "inner dimension")
	sms := fs.Int("sms", 0, "simulated SM count (default: full 80)")
	sched := fs.String("sched", "gto", "warp scheduler: gto | lrr | twolevel")
	fs.StringVar(sched, "scheduler", "gto", "alias for -sched")
	policy := fs.String("policy", "b64x64_w32x32", "cutlass tile policy")
	fp16acc := fs.Bool("fp16acc", false, "accumulate in FP16 instead of FP32")
	verify := fs.Bool("verify", true, "check the result against the float64 reference")
	sizes := fs.String("sizes", "", "comma-separated square sizes to sweep (m = n = k); each point runs on its own simulator (timing only, -verify is ignored)")
	workers := fs.Int("workers", 0, "worker pool size for -sizes sweeps (0 = one per CPU)")
	tlActive := fs.Int("tlactive", 0, "two-level scheduler active-subset size per sub-core (0 = config default; other policies ignore it)")
	maxCycles := fs.Uint64("maxcycles", 0, "simulated-cycle budget per launch; a runaway kernel fails with a cycle-budget error instead of spinning (0 = generous backstop)")
	legacyFrag := fs.Bool("legacyfrag", false, "route wmma fragments through the per-element legacy path (debug/ablation; results are bit-identical, just slower)")
	if err := fs.Parse(args); err != nil {
		// -h/-help surfaces as flag.ErrHelp: a successful usage request,
		// not a usage error — it used to exit 2 like a typo.
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}

	if err := validateFlags(*m, *n, *k, *sms, *workers, *tlActive, *sched); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	if *legacyFrag {
		// Swap-and-restore, not a bare set: leaking the process-global
		// knob past run() is the leak PR 6's Swap discipline exists to
		// prevent.
		defer ptx.SwapLegacyFragmentPath(true)()
	}

	cfg := gpu.TitanV()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	cfg.Scheduler, _ = gpu.ParseSchedulerPolicy(*sched) // validated above
	if *tlActive > 0 {
		cfg.TwoLevelActive = *tlActive
	}

	if *sizes != "" {
		if err := runSweep(cfg, *kernel, *policy, *fp16acc, *sizes, *workers, *maxCycles); err != nil {
			fmt.Fprintln(stderr, err)
			return exitFailed
		}
		return exitOK
	}

	prec := kernels.TensorMixed
	cd := wmma.F32
	if *fp16acc {
		prec, cd = kernels.TensorFP16, wmma.F16
	}

	l, ab, abcd, err := buildLaunch(cfg, *kernel, *policy, prec, cd, *m, *n, *k)
	cd = abcd
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFailed
	}

	dev := cuda.MustNewDevice(cfg)
	dev.MaxCycles = *maxCycles
	var args64 []uint64
	var want *tensor.Matrix
	if *kernel == "maxperf" {
		args64 = []uint64{dev.Mem.Malloc(2048)}
		*verify = false
	} else {
		a := tensor.New(*m, *k, tensor.RowMajor)
		b := tensor.New(*k, *n, tensor.RowMajor)
		c := tensor.New(*m, *n, tensor.RowMajor)
		fill(a, 1)
		fill(b, 2)
		fill(c, 3)
		args64 = []uint64{
			dev.UploadMatrix(a, ab),
			dev.UploadMatrix(b, ab),
			dev.UploadMatrix(c, cd),
			dev.MallocMatrix(*m, *n, cd),
		}
		if *verify {
			want = tensor.Gemm(a, b, c, tensor.RowMajor)
		}
	}

	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, args64...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFailed
	}

	fmt.Printf("kernel      : %s\n", l.Kernel.Name)
	fmt.Printf("gpu         : %s (%d SMs, %s scheduler)\n", cfg.Name, cfg.NumSMs, cfg.Scheduler)
	fmt.Printf("grid x block: %v x %v\n", l.Grid, l.Block)
	reportStats(st, cfg, l.FLOPs)
	if *verify && want != nil {
		got := dev.ReadMatrix(args64[3], *m, *n, tensor.RowMajor, cd)
		fmt.Printf("max |error| : %g vs float64 reference\n", tensor.MaxAbsDiff(got, want))
	}
	return exitOK
}

// reportStats prints the post-run statistics block. It is the
// sanctioned surface for every gpu.Stats counter — the statcomplete
// analyzer requires each numeric field to appear here, so a counter
// added to Stats cannot be silently dropped from the report (which is
// how CTAsSimulated and SharedConflicts used to vanish).
//
//simlint:emitter
func reportStats(st *gpu.Stats, cfg gpu.Config, flops float64) {
	fmt.Printf("CTAs        : %d simulated of %d launched\n", st.CTAsSimulated, st.CTAsTotal)
	fmt.Printf("cycles      : %d (%.3f ms at %.0f MHz)\n", st.Cycles, st.Seconds(cfg)*1e3, cfg.ClockMHz)
	fmt.Printf("instructions: %d warp (%d thread), IPC %.2f\n",
		st.WarpInstructions, st.ThreadInstructions, st.IPC())
	fmt.Printf("tensor ops  : %d wmma.mma\n", st.TensorOps)
	fmt.Printf("L1 hit rate : %.1f%%   L2 hit rate: %.1f%%   DRAM accesses: %d\n",
		100*st.L1HitRate, 100*st.L2HitRate, st.DRAMAccesses)
	fmt.Printf("shared mem  : %d bank-conflict replay passes\n", st.SharedConflicts)
	if flops > 0 {
		fmt.Printf("throughput  : %.2f TFLOPS\n", flops/st.Seconds(cfg)/1e12)
	}
}

// Flag bounds: dimensions beyond maxDim (the paper's largest sweep is
// 16384) would allocate absurd operand matrices; SM counts beyond maxSMs
// have no hardware analogue (the full Titan V has 80); active subsets
// beyond maxTLActive exceed the SM-wide warp budget.
const (
	maxDim      = 1 << 17
	maxSMs      = 1024
	maxWorkers  = 4096
	maxTLActive = 64
)

// validateFlags rejects negative or absurd flag values at the boundary:
// they used to panic in the kernel generators or be silently ignored
// (a negative -sms ran the full 80-SM chip without saying so).
func validateFlags(m, n, k, sms, workers, tlActive int, scheduler string) error {
	for _, d := range []struct {
		name string
		v    int
	}{{"-m", m}, {"-n", n}, {"-k", k}} {
		if d.v < 1 || d.v > maxDim {
			return fmt.Errorf("tcsim: %s %d out of range (want 1..%d)", d.name, d.v, maxDim)
		}
	}
	if sms < 0 || sms > maxSMs {
		return fmt.Errorf("tcsim: -sms %d out of range (want 0 for the full chip, or 1..%d)", sms, maxSMs)
	}
	if workers < 0 || workers > maxWorkers {
		return fmt.Errorf("tcsim: -workers %d out of range (want 0 for one per CPU, or 1..%d)", workers, maxWorkers)
	}
	if tlActive < 0 || tlActive > maxTLActive {
		return fmt.Errorf("tcsim: -tlactive %d out of range (want 0 for the config default, or 1..%d)", tlActive, maxTLActive)
	}
	if _, err := gpu.ParseSchedulerPolicy(scheduler); err != nil {
		return fmt.Errorf("tcsim: -sched: %v", err)
	}
	return nil
}

// buildLaunch generates the requested kernel, returning the launch and
// the operand/accumulator precisions.
func buildLaunch(cfg gpu.Config, kernel, policy string, prec kernels.GemmPrecision, cd wmma.Precision,
	m, n, k int) (*kernels.Launch, wmma.Precision, wmma.Precision, error) {
	ab := wmma.F16
	var (
		l   *kernels.Launch
		err error
	)
	switch kernel {
	case "wmma":
		l, err = kernels.WMMAGemmShared(prec, m, n, k)
	case "wmma-naive":
		l, err = kernels.WMMAGemmNaive(prec, m, n, k)
	case "sgemm":
		l, err = kernels.SGEMMSimt(m, n, k)
		ab, cd = wmma.F32, wmma.F32
	case "hgemm":
		l, err = kernels.HGEMMSimt(m, n, k)
		cd = wmma.F16
	case "cutlass":
		var pol cutlass.TilePolicy
		pol, err = findPolicy(policy)
		if err == nil {
			l, err = cutlass.Build(cutlass.GemmConfig{Policy: pol, Precision: prec, M: m, N: n, K: k})
		}
	case "maxperf":
		l, err = kernels.MaxPerf(prec, 2*cfg.NumSMs, 4, 100)
	default:
		err = fmt.Errorf("unknown kernel %q", kernel)
	}
	return l, ab, cd, err
}

// runSweep runs the kernel across the comma-separated square sizes, one
// independent device per point, fanned across the worker pool. Results
// print in size order whatever the completion order.
func runSweep(cfg gpu.Config, kernel, policy string, fp16acc bool, sizesCSV string, workers int, maxCycles uint64) error {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 || v > maxDim {
			return fmt.Errorf("bad -sizes entry %q (want 1..%d)", f, maxDim)
		}
		sizes = append(sizes, v)
	}
	prec := kernels.TensorMixed
	cd := wmma.F32
	if fp16acc {
		prec, cd = kernels.TensorFP16, wmma.F16
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	workers = min(workers, len(sizes))

	lines := make([]string, len(sizes))
	errs := make([]error, len(sizes))
	var next, wg = make(chan int), sync.WaitGroup{}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				n := sizes[i]
				l, pab, pcd, err := buildLaunch(cfg, kernel, policy, prec, cd, n, n, n)
				if err != nil {
					errs[i] = err
					continue
				}
				dev := cuda.MustNewDevice(cfg)
				dev.MaxCycles = maxCycles
				var args []uint64
				if kernel == "maxperf" {
					args = []uint64{dev.Mem.Malloc(2048)}
				} else {
					args = []uint64{
						dev.MallocMatrix(n, n, pab),
						dev.MallocMatrix(n, n, pab),
						dev.MallocMatrix(n, n, pcd),
						dev.MallocMatrix(n, n, pcd),
					}
				}
				st, err := dev.Launch(l.Kernel, l.Grid, l.Block, args...)
				if err != nil {
					errs[i] = err
					continue
				}
				tflops := 0.0
				if l.FLOPs > 0 {
					tflops = l.FLOPs / st.Seconds(cfg) / 1e12
				}
				lines[i] = fmt.Sprintf("%-6d %12d %8.2f %10.2f %8.1f%% %8d",
					n, st.Cycles, st.IPC(), tflops, 100*st.L1HitRate, st.DRAMAccesses)
			}
		}()
	}
	go func() {
		for i := range sizes {
			next <- i
		}
		close(next)
	}()
	wg.Wait()

	fmt.Printf("kernel %s on %s (%d SMs, %d workers); sweeps are timing-only, no result verification\n",
		kernel, cfg.Name, cfg.NumSMs, workers)
	fmt.Printf("%-6s %12s %8s %10s %9s %8s\n", "size", "cycles", "ipc", "tflops", "l1hit", "dram")
	// Print every completed point even when some failed; failures are
	// summarized afterwards so one bad size cannot hide the others.
	var failed []int
	for i, line := range lines {
		if errs[i] != nil {
			failed = append(failed, i)
			continue
		}
		fmt.Println(line)
	}
	if len(failed) > 0 {
		for _, i := range failed {
			fmt.Fprintf(os.Stderr, "size %d: %v\n", sizes[i], errs[i])
		}
		return fmt.Errorf("%d of %d sweep points failed", len(failed), len(sizes))
	}
	return nil
}

func findPolicy(name string) (cutlass.TilePolicy, error) {
	for _, p := range cutlass.DefaultPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range cutlass.DefaultPolicies() {
		names = append(names, p.String())
	}
	return cutlass.TilePolicy{}, fmt.Errorf("unknown policy %q (have %v)", name, names)
}

func fill(m *tensor.Matrix, seed int) {
	s := seed
	m.FillFunc(func(int, int) float64 {
		s = (s*1103515245 + 12345) & 0x7fffffff
		return float64(s%16-8) / 8
	})
}
