package main

import "testing"

// Negative or absurd dimension/SM/worker flags must be rejected at the
// flag boundary instead of panicking inside the kernel generators or
// being silently ignored.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name         string
		m, n, k      int
		sms, workers int
		tlActive     int
		scheduler    string
		ok           bool
	}{
		{"defaults", 256, 256, 256, 0, 0, 0, "gto", true},
		{"lrr", 64, 64, 64, 16, 2, 0, "lrr", true},
		{"twolevel", 64, 64, 64, 16, 2, 0, "twolevel", true},
		{"max bounds", maxDim, maxDim, maxDim, maxSMs, maxWorkers, 0, "gto", true},
		{"negative m", -64, 256, 256, 0, 0, 0, "gto", false},
		{"zero n", 256, 0, 256, 0, 0, 0, "gto", false},
		{"huge k", 256, 256, maxDim + 1, 0, 0, 0, "gto", false},
		{"negative sms", 256, 256, 256, -5, 0, 0, "gto", false},
		{"huge sms", 256, 256, 256, maxSMs + 1, 0, 0, "gto", false},
		{"negative workers", 256, 256, 256, 0, -1, 0, "gto", false},
		{"tlactive", 256, 256, 256, 0, 0, 8, "twolevel", true},
		{"negative tlactive", 256, 256, 256, 0, 0, -1, "gto", false},
		{"huge tlactive", 256, 256, 256, 0, 0, maxTLActive + 1, "gto", false},
		{"bad scheduler", 256, 256, 256, 0, 0, 0, "fifo", false},
	}
	for _, c := range cases {
		err := validateFlags(c.m, c.n, c.k, c.sms, c.workers, c.tlActive, c.scheduler)
		if (err == nil) != c.ok {
			t.Errorf("%s: validateFlags = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
