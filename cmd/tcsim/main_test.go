package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ptx"
)

// The exit-code contract, pinned in-process: -h/-help is a successful
// usage request (exit 0 with usage text — flag.ErrHelp used to exit 2
// like a typo), bad flags exit 2, and a fast runtime failure exits 1.
func TestRunExitCodes(t *testing.T) {
	for _, h := range []string{"-h", "-help"} {
		var stderr bytes.Buffer
		if code := run([]string{h}, &stderr); code != exitOK {
			t.Errorf("%s = %d, want %d", h, code, exitOK)
		}
		if !strings.Contains(stderr.String(), "-kernel") {
			t.Errorf("%s did not print usage: %q", h, stderr.String())
		}
	}
	for _, args := range [][]string{
		{"-bogus"},
		{"-m", "-1"},
		{"-sms", "bogus"},
		{"-sched", "fifo"},
	} {
		if code := run(args, &bytes.Buffer{}); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
	if code := run([]string{"-sizes", "bogus"}, &bytes.Buffer{}); code != exitFailed {
		t.Errorf("bad -sizes entry = %d, want %d", code, exitFailed)
	}
}

// Regression: -legacyfrag must restore the process-global fragment
// knob when run returns instead of leaking it across in-process
// invocations. The bad -sizes entry exits after the knob is set but
// before any simulation, keeping the test instant.
func TestLegacyFragRestoredOnReturn(t *testing.T) {
	t.Cleanup(ptx.SwapLegacyFragmentPath(false))
	if code := run([]string{"-legacyfrag", "-sizes", "bogus"}, &bytes.Buffer{}); code != exitFailed {
		t.Fatalf("run = %d, want %d", code, exitFailed)
	}
	if ptx.LegacyFragmentPathEnabled() {
		t.Error("-legacyfrag leaked the fragment-path knob past run()")
	}
}

// Negative or absurd dimension/SM/worker flags must be rejected at the
// flag boundary instead of panicking inside the kernel generators or
// being silently ignored.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name         string
		m, n, k      int
		sms, workers int
		tlActive     int
		scheduler    string
		ok           bool
	}{
		{"defaults", 256, 256, 256, 0, 0, 0, "gto", true},
		{"lrr", 64, 64, 64, 16, 2, 0, "lrr", true},
		{"twolevel", 64, 64, 64, 16, 2, 0, "twolevel", true},
		{"max bounds", maxDim, maxDim, maxDim, maxSMs, maxWorkers, 0, "gto", true},
		{"negative m", -64, 256, 256, 0, 0, 0, "gto", false},
		{"zero n", 256, 0, 256, 0, 0, 0, "gto", false},
		{"huge k", 256, 256, maxDim + 1, 0, 0, 0, "gto", false},
		{"negative sms", 256, 256, 256, -5, 0, 0, "gto", false},
		{"huge sms", 256, 256, 256, maxSMs + 1, 0, 0, "gto", false},
		{"negative workers", 256, 256, 256, 0, -1, 0, "gto", false},
		{"tlactive", 256, 256, 256, 0, 0, 8, "twolevel", true},
		{"negative tlactive", 256, 256, 256, 0, 0, -1, "gto", false},
		{"huge tlactive", 256, 256, 256, 0, 0, maxTLActive + 1, "gto", false},
		{"bad scheduler", 256, 256, 256, 0, 0, 0, "fifo", false},
	}
	for _, c := range cases {
		err := validateFlags(c.m, c.n, c.k, c.sms, c.workers, c.tlActive, c.scheduler)
		if (err == nil) != c.ok {
			t.Errorf("%s: validateFlags = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
