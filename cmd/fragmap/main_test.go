package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestOwnershipGolden pins the Figure 7 ownership grid for the Volta
// 16x16x16 A operand: four row-bands of four rows, owned by threadgroup
// pairs 0+2, 4+6, 1+3, 5+7 (each element is held by two lanes on Volta).
func TestOwnershipGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-arch", "volta", "-op", "a", "-layout", "row"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	var want strings.Builder
	want.WriteString("volta m16n16k16 a row (16 x 16), threadgroup owners per element:\n")
	for _, band := range []string{"02", "46", "13", "57"} {
		row := strings.Repeat(" "+band, 16) + "\n"
		for i := 0; i < 4; i++ {
			want.WriteString(row)
		}
	}
	want.WriteString("fragment: 16 elements/lane; SASS loads/lane: 2\n")
	if got := out.String(); got != want.String() {
		t.Errorf("ownership grid mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}
}

// TestLaneGolden pins one lane's fragment render for a Turing int8 B
// tile: lane 3 holds a contiguous 8-element column run.
func TestLaneGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-arch", "turing", "-shape", "m8n8k32", "-op", "b", "-elem", "s8", "-lane", "3"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	want := "lane 3 (threadgroup 0): x[0]=(24,0) x[1]=(25,0) x[2]=(26,0) x[3]=(27,0)" +
		" x[4]=(28,0) x[5]=(29,0) x[6]=(30,0) x[7]=(31,0)\n"
	if got := out.String(); got != want {
		t.Errorf("lane render = %q, want %q", got, want)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		err  string
	}{
		{"bad arch", []string{"-arch", "pascal"}, 2, `unknown arch "pascal"`},
		{"bad shape", []string{"-shape", "m1n1k1"}, 2, `unknown shape "m1n1k1"`},
		{"bad operand", []string{"-op", "d"}, 2, `unknown operand "d"`},
		{"bad layout", []string{"-layout", "diag"}, 2, `unknown layout "diag"`},
		{"bad elem", []string{"-elem", "f64"}, 2, `unknown element type "f64"`},
		{"lane out of range", []string{"-lane", "40"}, 2, "lane must be 0..31"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"unsupported combination", []string{"-arch", "volta", "-shape", "m8n8k32", "-elem", "s8"}, 1,
			"volta supports only m16n16k16"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.code {
				t.Fatalf("run(%q) = %d, want %d (stderr %q)", tc.args, code, tc.code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.err) {
				t.Errorf("stderr %q does not mention %q", errb.String(), tc.err)
			}
			if out.Len() != 0 {
				t.Errorf("stdout %q, want empty on failure", out.String())
			}
		})
	}
}
