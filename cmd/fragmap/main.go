// Command fragmap prints the fragment-to-thread mappings the paper's
// Figure 4 microbenchmark decodes (Figures 7 and 8).
//
// Usage:
//
//	fragmap -arch volta -op a -layout row
//	fragmap -arch turing -shape m32n8k16 -op b -elem s8
//	fragmap -arch volta -op a -lane 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

func main() {
	arch := flag.String("arch", "volta", "volta or turing")
	shape := flag.String("shape", "m16n16k16", "tile shape: m16n16k16, m32n8k16, m8n32k16, m8n8k32")
	op := flag.String("op", "a", "operand: a, b or c")
	layout := flag.String("layout", "row", "row or col")
	elem := flag.String("elem", "", "element type (default f16; c defaults to f32)")
	lane := flag.Int("lane", -1, "print one lane's fragment instead of the ownership grid")
	flag.Parse()

	a := wmma.Volta
	if *arch == "turing" {
		a = wmma.Turing
	}
	var sh wmma.Shape
	switch *shape {
	case "m16n16k16":
		sh = wmma.M16N16K16
	case "m32n8k16":
		sh = wmma.M32N8K16
	case "m8n32k16":
		sh = wmma.M8N32K16
	case "m8n8k32":
		sh = wmma.M8N8K32
	default:
		fatal("unknown shape %q", *shape)
	}
	var o wmma.Operand
	switch *op {
	case "a":
		o = wmma.MatrixA
	case "b":
		o = wmma.MatrixB
	case "c":
		o = wmma.MatrixC
	default:
		fatal("unknown operand %q", *op)
	}
	lay := tensor.RowMajor
	if *layout == "col" {
		lay = tensor.ColMajor
	}
	e := wmma.F16
	if o == wmma.MatrixC {
		e = wmma.F32
	}
	switch *elem {
	case "":
	case "f16":
		e = wmma.F16
	case "f32":
		e = wmma.F32
	case "s8":
		e = wmma.S8
	case "u8":
		e = wmma.U8
	case "s4":
		e = wmma.S4
	case "s32":
		e = wmma.S32
	default:
		fatal("unknown element type %q", *elem)
	}

	m, err := wmma.Map(a, sh, o, lay, e)
	if err != nil {
		fatal("%v", err)
	}
	if *lane >= 0 {
		if *lane > 31 {
			fatal("lane must be 0..31")
		}
		fmt.Println(m.RenderLane(*lane))
		return
	}
	fmt.Print(m.RenderOwnership())
	fmt.Printf("fragment: %d elements/lane; SASS loads/lane: %d\n",
		m.FragmentLen(), m.LoadInstructionCount(16))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
