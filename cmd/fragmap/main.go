// Command fragmap prints the fragment-to-thread mappings the paper's
// Figure 4 microbenchmark decodes (Figures 7 and 8).
//
// Usage:
//
//	fragmap -arch volta -op a -layout row
//	fragmap -arch turing -shape m32n8k16 -op b -elem s8
//	fragmap -arch volta -op a -lane 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fragmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	arch := fs.String("arch", "volta", "volta or turing")
	shape := fs.String("shape", "m16n16k16", "tile shape: m16n16k16, m32n8k16, m8n32k16, m8n8k32")
	op := fs.String("op", "a", "operand: a, b or c")
	layout := fs.String("layout", "row", "row or col")
	elem := fs.String("elem", "", "element type (default f16; c defaults to f32)")
	lane := fs.Int("lane", -1, "print one lane's fragment instead of the ownership grid")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var a wmma.Arch
	switch *arch {
	case "volta":
		a = wmma.Volta
	case "turing":
		a = wmma.Turing
	default:
		fmt.Fprintf(stderr, "fragmap: unknown arch %q\n", *arch)
		return 2
	}
	var sh wmma.Shape
	switch *shape {
	case "m16n16k16":
		sh = wmma.M16N16K16
	case "m32n8k16":
		sh = wmma.M32N8K16
	case "m8n32k16":
		sh = wmma.M8N32K16
	case "m8n8k32":
		sh = wmma.M8N8K32
	default:
		fmt.Fprintf(stderr, "fragmap: unknown shape %q\n", *shape)
		return 2
	}
	var o wmma.Operand
	switch *op {
	case "a":
		o = wmma.MatrixA
	case "b":
		o = wmma.MatrixB
	case "c":
		o = wmma.MatrixC
	default:
		fmt.Fprintf(stderr, "fragmap: unknown operand %q\n", *op)
		return 2
	}
	var lay tensor.Layout
	switch *layout {
	case "row":
		lay = tensor.RowMajor
	case "col":
		lay = tensor.ColMajor
	default:
		fmt.Fprintf(stderr, "fragmap: unknown layout %q\n", *layout)
		return 2
	}
	e := wmma.F16
	if o == wmma.MatrixC {
		e = wmma.F32
	}
	switch *elem {
	case "":
	case "f16":
		e = wmma.F16
	case "f32":
		e = wmma.F32
	case "s8":
		e = wmma.S8
	case "u8":
		e = wmma.U8
	case "s4":
		e = wmma.S4
	case "s32":
		e = wmma.S32
	default:
		fmt.Fprintf(stderr, "fragmap: unknown element type %q\n", *elem)
		return 2
	}

	m, err := wmma.Map(a, sh, o, lay, e)
	if err != nil {
		fmt.Fprintf(stderr, "fragmap: %v\n", err)
		return 1
	}
	if *lane >= 0 {
		if *lane > 31 {
			fmt.Fprintln(stderr, "fragmap: lane must be 0..31")
			return 2
		}
		fmt.Fprintln(stdout, m.RenderLane(*lane))
		return 0
	}
	fmt.Fprint(stdout, m.RenderOwnership())
	fmt.Fprintf(stdout, "fragment: %d elements/lane; SASS loads/lane: %d\n",
		m.FragmentLen(), m.LoadInstructionCount(16))
	return 0
}
