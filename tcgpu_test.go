package tcgpu

import "testing"

func smallDevice(t *testing.T) *Device {
	t.Helper()
	cfg := TitanVConfig()
	cfg.NumSMs = 4
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestRunGEMMAllKinds(t *testing.T) {
	cases := []struct {
		kind    GemmKind
		m, n, k int
		tol     float64
	}{
		{GemmTensorMixed, 64, 64, 32, 1e-3},
		{GemmTensorFP16, 64, 64, 32, 1.0},
		{GemmSimtFP32, 64, 64, 32, 1e-3},
		{GemmSimtFP16, 64, 128, 32, 1.0},
	}
	for _, c := range cases {
		res, err := RunGEMM(smallDevice(t), c.kind, c.m, c.n, c.k)
		if err != nil {
			t.Fatalf("kind %d: %v", c.kind, err)
		}
		if res.MaxAbsError > c.tol {
			t.Errorf("kind %d: error %g > %g", c.kind, res.MaxAbsError, c.tol)
		}
		if res.TFLOPS <= 0 || res.Stats.Cycles == 0 {
			t.Errorf("kind %d: empty result %+v", c.kind, res)
		}
	}
}

func TestRunGEMMRejectsBadDims(t *testing.T) {
	if _, err := RunGEMM(smallDevice(t), GemmTensorMixed, 17, 64, 32); err == nil {
		t.Error("bad dims should error")
	}
	if _, err := RunGEMM(smallDevice(t), GemmKind(99), 64, 64, 32); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestRunCutlassGEMM(t *testing.T) {
	res, err := RunCutlassGEMM(smallDevice(t), DefaultTilePolicies()[1], 128, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsError > 1e-3 {
		t.Errorf("cutlass error %g", res.MaxAbsError)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 { // 15 paper artifacts + the scheduler sweep
		t.Fatalf("registry has %d experiments, want 16", len(exps))
	}
	tb, err := RunExperiment("tab2", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("octet table has %d rows, want 4", len(tb.Rows))
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestMMAFacade(t *testing.T) {
	a := newFilled(16, 16, 1)
	b := newFilled(16, 16, 1)
	c := newFilled(16, 16, 0)
	d, err := MMA(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 16 {
		t.Errorf("all-ones MMA gives %v, want 16", d.At(0, 0))
	}
}

func newFilled(rows, cols int, v float64) *Matrix {
	m := NewMatrix(rows, cols)
	m.FillConst(v)
	return m
}

// A misspelled scheduler override must be rejected upfront by the
// library entry points — even for experiments that never simulate.
func TestExperimentOptionsValidated(t *testing.T) {
	if _, err := RunExperiment("tab2", ExperimentOptions{Quick: true, Scheduler: "fifo"}); err == nil {
		t.Error("RunExperiment should reject an unknown scheduler")
	}
	if _, err := RunAllExperiments(ExperimentOptions{Quick: true, Scheduler: "fifo"}); err == nil {
		t.Error("RunAllExperiments should reject an unknown scheduler")
	}
	if _, err := RunExperiment("tab2", ExperimentOptions{Quick: true, Scheduler: "lrr"}); err != nil {
		t.Errorf("valid scheduler rejected: %v", err)
	}
}
