package tcgpu

// The benchmark harness: one testing.B target per paper table and figure
// (run with `go test -bench=. -benchmem`; each regenerates the artifact
// in Quick mode and reports its headline number as a custom metric), plus
// ablation benchmarks for the design choices DESIGN.md calls out.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cutlass"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := RunExperiment(id, ExperimentOptions{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil && i == b.N-1 {
			name, v := metric(tb)
			b.ReportMetric(v, name)
		}
	}
}

// noteNumber extracts the first float from the note containing substr.
func noteNumber(tb *experiments.Table, substr string) float64 {
	for _, n := range tb.Notes {
		if !strings.Contains(n, substr) {
			continue
		}
		for _, f := range strings.Fields(n) {
			f = strings.TrimSuffix(f, "%")
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// lastCell parses the float in the given column of the last row.
func lastCell(tb *experiments.Table, col string) float64 {
	for i, c := range tb.Columns {
		if c == col {
			v, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][i], 64)
			return v
		}
	}
	return 0
}

func BenchmarkFig7VoltaMappings(b *testing.B)  { benchExperiment(b, "fig7", nil) }
func BenchmarkFig8TuringMappings(b *testing.B) { benchExperiment(b, "fig8", nil) }

func BenchmarkFig9HMMACycles(b *testing.B) {
	benchExperiment(b, "fig9", func(tb *experiments.Table) (string, float64) {
		// Total mixed-precision latency: row 16's cumulative value.
		v, _ := strconv.ParseFloat(tb.Rows[15][4], 64)
		return "mixed_total_cycles", v
	})
}

func BenchmarkTableITuringCycles(b *testing.B) { benchExperiment(b, "tab1", nil) }
func BenchmarkTableIIOctets(b *testing.B)      { benchExperiment(b, "tab2", nil) }
func BenchmarkTableIIIOuterProducts(b *testing.B) {
	benchExperiment(b, "tab3", nil)
}
func BenchmarkFig10VoltaSubTiles(b *testing.B)  { benchExperiment(b, "fig10", nil) }
func BenchmarkFig11TuringSubTiles(b *testing.B) { benchExperiment(b, "fig11", nil) }

func BenchmarkFig12cWarpKnee(b *testing.B) {
	benchExperiment(b, "fig12c", func(tb *experiments.Table) (string, float64) {
		return "knee_ratio", noteNumber(tb, "knee at 4 warps")
	})
}

func BenchmarkFig14aCycleAccuracy(b *testing.B) {
	benchExperiment(b, "fig14a", func(tb *experiments.Table) (string, float64) {
		return "stddev_pct", noteNumber(tb, "relative deviation")
	})
}

func BenchmarkFig14bIPCCorrelation(b *testing.B) {
	benchExperiment(b, "fig14b", func(tb *experiments.Table) (string, float64) {
		return "correlation_pct", noteNumber(tb, "IPC correlation")
	})
}

func BenchmarkFig14cIPCvsSize(b *testing.B) {
	benchExperiment(b, "fig14c", func(tb *experiments.Table) (string, float64) {
		return "sim_over_hw", lastCell(tb, "sim/hw")
	})
}

func BenchmarkFig15LatencyDistribution(b *testing.B) {
	benchExperiment(b, "fig15", nil)
}

func BenchmarkFig16LatencyVsSize(b *testing.B) {
	benchExperiment(b, "fig16", func(tb *experiments.Table) (string, float64) {
		return "load_global_cycles", lastCell(tb, "load(gl)")
	})
}

func BenchmarkFig17TFLOPS(b *testing.B) {
	benchExperiment(b, "fig17", func(tb *experiments.Table) (string, float64) {
		return "tc_fp16_tflops", lastCell(tb, "CUBLAS_WITH_TC_FP16")
	})
}

// BenchmarkExperimentEngine quantifies the parallel experiment engine:
// the same fig17 grid sequentially and on the worker pool.
func BenchmarkExperimentEngine(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunExperiment("fig17", ExperimentOptions{Quick: true, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation benchmarks (DESIGN.md) ----

// ablationRun measures cycles of the MMALoop workload under a modified
// configuration.
func ablationRun(b *testing.B, mod func(*gpu.Config)) uint64 {
	b.Helper()
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	if mod != nil {
		mod(&cfg)
	}
	l, err := kernels.MMALoop(kernels.TensorMixed, 4, 64, 2)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := gpu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sim.Run(gpu.LaunchSpec{
		Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
		Args: []uint64{0}, Global: ptx.NewFlatMemory(4096),
	})
	if err != nil {
		b.Fatal(err)
	}
	return st.Cycles
}

// BenchmarkAblationScheduler compares GTO against loose round-robin on a
// memory-plus-tensor workload.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, pol := range []gpu.SchedulerPolicy{gpu.GTO, gpu.LRR} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = ablationRun(b, func(c *gpu.Config) { c.Scheduler = pol })
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationTCPerSubcore quantifies the paper's central inference:
// each warp drives two tensor cores; halving them should roughly halve
// HMMA throughput.
func BenchmarkAblationTCPerSubcore(b *testing.B) {
	for _, tcs := range []int{2, 1} {
		tcs := tcs
		b.Run(strconv.Itoa(tcs), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = ablationRun(b, func(c *gpu.Config) { c.TensorCoresPerSubCore = tcs })
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationReuseCache removes the operand reuse cache the .reuse
// SASS flags reveal.
func BenchmarkAblationReuseCache(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = ablationRun(b, func(c *gpu.Config) { c.ReuseCache = on })
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationHMMAII stretches the HMMA initiation interval.
func BenchmarkAblationHMMAII(b *testing.B) {
	for _, scale := range []int{1, 2} {
		scale := scale
		b.Run(strconv.Itoa(scale), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = ablationRun(b, func(c *gpu.Config) { c.HMMAIIScale = scale })
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationDecodedALU quantifies the decoded-instruction cache:
// the same SIMT GEMM (the fig17 bottleneck workload) with the table-driven
// decoded dispatch versus the per-lane interpreted ALU path.
func BenchmarkAblationDecodedALU(b *testing.B) {
	for _, interp := range []bool{false, true} {
		interp := interp
		name := "decoded"
		if interp {
			name = "interpreted"
		}
		b.Run(name, func(b *testing.B) {
			defer ptx.SwapInterpretALU(interp)()
			for i := 0; i < b.N; i++ {
				l, err := kernels.SGEMMSimt(128, 128, 128)
				if err != nil {
					b.Fatal(err)
				}
				cfg := gpu.TitanV()
				cfg.NumSMs = 2
				sim, err := gpu.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(gpu.LaunchSpec{
					Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
					Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
					Global: ptx.NewFlatMemory(4 << 20),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBatchedMem quantifies the batched struct-of-arrays
// memory pipeline (ptx.LegacyAccessPath; DESIGN.md "Batched memory
// path") on the two memory-staging SIMT GEMMs whose per-lane load/store
// execution and conflict counting dominated the fig17 profile.
func BenchmarkAblationBatchedMem(b *testing.B) {
	workloads := []struct {
		name  string
		build func() (*kernels.Launch, error)
	}{
		{"sgemm", func() (*kernels.Launch, error) { return kernels.SGEMMSimt(128, 128, 128) }},
		{"hgemm", func() (*kernels.Launch, error) { return kernels.HGEMMSimt(64, 128, 128) }},
	}
	for _, w := range workloads {
		for _, legacy := range []bool{false, true} {
			legacy := legacy
			name := w.name + "/batched"
			if legacy {
				name = w.name + "/legacy"
			}
			b.Run(name, func(b *testing.B) {
				defer ptx.SwapLegacyAccessPath(legacy)()
				for i := 0; i < b.N; i++ {
					l, err := w.build()
					if err != nil {
						b.Fatal(err)
					}
					cfg := gpu.TitanV()
					cfg.NumSMs = 2
					sim, err := gpu.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sim.Run(gpu.LaunchSpec{
						Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
						Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
						Global: ptx.NewFlatMemory(4 << 20),
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationBatchedWMMA quantifies the batched wmma fragment
// pipeline (ptx.LegacyFragmentPath; DESIGN.md "Batched fragment path")
// on the tensor-core GEMMs whose per-element gather/scatter and
// fragment data movement dominate once ld/st is batched: the
// shared-memory WMMA kernel in both accumulation modes (hgemm is the
// FP16-accumulate variant of the fig17 tensor series).
func BenchmarkAblationBatchedWMMA(b *testing.B) {
	// Deep-K tiles keep the launch wmma-dominated (every k-step stages
	// fragments through shared memory and issues an mma), so the
	// fragment-path delta is the measured quantity rather than dispatch
	// and drain overhead.
	workloads := []struct {
		name    string
		prec    kernels.GemmPrecision
		m, n, k int
	}{
		{"hgemm", kernels.TensorFP16, 64, 64, 512},
		{"mixed", kernels.TensorMixed, 64, 64, 512},
	}
	for _, w := range workloads {
		for _, legacy := range []bool{false, true} {
			legacy := legacy
			w := w
			name := w.name + "/batched"
			if legacy {
				name = w.name + "/legacy"
			}
			b.Run(name, func(b *testing.B) {
				defer ptx.SwapLegacyFragmentPath(legacy)()
				for i := 0; i < b.N; i++ {
					l, err := kernels.WMMAGemmShared(w.prec, w.m, w.n, w.k)
					if err != nil {
						b.Fatal(err)
					}
					cfg := gpu.TitanV()
					cfg.NumSMs = 2
					sim, err := gpu.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sim.Run(gpu.LaunchSpec{
						Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
						Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
						Global: ptx.NewFlatMemory(4 << 20),
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationReadySet quantifies the event-driven ready-set
// scheduler against the legacy per-cycle full scan (the gpu.ScanScheduler
// knob; DESIGN.md). Two workloads: the fig17 quick grid — whose profile
// motivated the refactor, with Workers pinned to 1 so the comparison
// measures scheduler cost rather than pool occupancy — and a 1-SM
// high-occupancy SIMT GEMM (64 warps, 16 per sub-core) where warp
// scheduling dominates and the bookkeeping win is sharpest.
func BenchmarkAblationReadySet(b *testing.B) {
	workloads := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"fig17", func(b *testing.B) {
			if _, err := RunExperiment("fig17", ExperimentOptions{Quick: true, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}},
		{"simt1sm", func(b *testing.B) {
			l, err := kernels.SGEMMSimt(256, 256, 64)
			if err != nil {
				b.Fatal(err)
			}
			cfg := gpu.TitanV()
			cfg.NumSMs = 1
			sim, err := gpu.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(gpu.LaunchSpec{
				Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
				Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
				Global: ptx.NewFlatMemory(4 << 20),
			}); err != nil {
				b.Fatal(err)
			}
		}},
	}
	for _, w := range workloads {
		for _, scan := range []bool{false, true} {
			scan := scan
			name := w.name + "/readyset"
			if scan {
				name = w.name + "/scan"
			}
			b.Run(name, func(b *testing.B) {
				defer gpu.SwapScanScheduler(scan)()
				for i := 0; i < b.N; i++ {
					w.run(b)
				}
			})
		}
	}
}

// BenchmarkAblationIssueSelect quantifies O(1) issue selection — the
// incrementally maintained issue order plus the proactive scoreboard
// wake — against the legacy per-cycle scan-and-sort (the
// gpu.ScanScheduler knob; DESIGN.md "O(1) issue selection"). The
// workload is deliberately scheduler-bound: a 1-SM SIMT GEMM at maximum
// occupancy (8 CTAs, 64 warps, 16 per sub-core), where per-cycle
// candidate ordering is the dominant cost, run under each policy so the
// per-policy order structures all get a datapoint in the bench
// trajectory.
func BenchmarkAblationIssueSelect(b *testing.B) {
	for _, pol := range []gpu.SchedulerPolicy{gpu.GTO, gpu.LRR, gpu.TwoLevel} {
		for _, scan := range []bool{false, true} {
			pol, scan := pol, scan
			name := pol.String() + "/incremental"
			if scan {
				name = pol.String() + "/scan"
			}
			b.Run(name, func(b *testing.B) {
				defer gpu.SwapScanScheduler(scan)()
				var cycles uint64
				for i := 0; i < b.N; i++ {
					l, err := kernels.SGEMMSimt(256, 256, 64)
					if err != nil {
						b.Fatal(err)
					}
					cfg := gpu.TitanV()
					cfg.NumSMs = 1
					cfg.Scheduler = pol
					sim, err := gpu.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					st, err := sim.Run(gpu.LaunchSpec{
						Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
						Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
						Global: ptx.NewFlatMemory(4 << 20),
					})
					if err != nil {
						b.Fatal(err)
					}
					cycles = st.Cycles
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}

// BenchmarkAblationSchedPolicies runs the scheduler sweep itself — one
// iteration regenerates the sched table across all three policies.
func BenchmarkAblationSchedPolicies(b *testing.B) {
	benchExperiment(b, "sched", func(tb *experiments.Table) (string, float64) {
		return "gto_ipc", lastCell(tb, "gto_ipc")
	})
}

// BenchmarkAblationDoubleBuffer compares single- against double-buffered
// shared-memory staging in the CUTLASS kernel — the software-pipelining
// optimization the paper credits for cuBLAS beating plain WMMA code.
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	for _, db := range []bool{false, true} {
		db := db
		name := "single"
		if db {
			name = "double"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				pol := cutlass.TilePolicy{BlockM: 64, BlockN: 64, WarpM: 32, WarpN: 32, DoubleBuffer: db}
				l, err := cutlass.Build(cutlass.GemmConfig{
					Policy: pol, Precision: kernels.TensorMixed, M: 64, N: 64, K: 512})
				if err != nil {
					b.Fatal(err)
				}
				cfg := gpu.TitanV()
				cfg.NumSMs = 1
				sim, err := gpu.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				st, err := sim.Run(gpu.LaunchSpec{
					Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
					Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
					Global: ptx.NewFlatMemory(4 << 20),
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkGemmThroughput is the end-to-end library benchmark: a 256³
// mixed-precision GEMM through the public API.
func BenchmarkGemmThroughput(b *testing.B) {
	cfg := TitanVConfig()
	cfg.NumSMs = 8
	var tflops float64
	for i := 0; i < b.N; i++ {
		dev, err := NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunGEMM(dev, GemmTensorMixed, 256, 256, 256)
		if err != nil {
			b.Fatal(err)
		}
		tflops = res.TFLOPS
	}
	b.ReportMetric(tflops, "sim_tflops")
}

// BenchmarkMMAFunctional measures the pure functional tensor-core tile
// multiply (no timing model).
func BenchmarkMMAFunctional(b *testing.B) {
	a := newBenchMatrix(16, 16)
	m := newBenchMatrix(16, 16)
	c := newBenchMatrix(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MMA(a, m, c); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchMatrix(r, c int) *Matrix {
	m := NewMatrix(r, c)
	m.FillSequential()
	return m
}
