package cutlass

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func dbPolicy() TilePolicy {
	return TilePolicy{BlockM: 64, BlockN: 64, WarpM: 32, WarpN: 32, DoubleBuffer: true}
}

func TestDoubleBufferCorrectFunctional(t *testing.T) {
	cfgGPU := gpu.TitanV()
	cfgGPU.NumSMs = 1
	rng := rand.New(rand.NewSource(3))
	for _, prec := range []kernels.GemmPrecision{kernels.TensorMixed, kernels.TensorFP16} {
		for _, k := range []int{16, 48, 128} {
			c := GemmConfig{Policy: dbPolicy(), Precision: prec, M: 64, N: 128, K: k}
			dev := cuda.MustNewDevice(cfgGPU)
			runConfig(t, c, dev, rng)
		}
	}
}

func TestDoubleBufferCorrectUnderTiming(t *testing.T) {
	c := GemmConfig{Policy: dbPolicy(), Precision: kernels.TensorMixed, M: 128, N: 128, K: 128}
	l, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 2
	dev := cuda.MustNewDevice(cfg)
	rng := rand.New(rand.NewSource(9))
	a := tensor.New(c.M, c.K, tensor.RowMajor)
	bm := tensor.New(c.K, c.N, tensor.RowMajor)
	cm := tensor.New(c.M, c.N, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	cm.FillRandomFP16(rng)
	da := dev.UploadMatrix(a, wmma.F16)
	db := dev.UploadMatrix(bm, wmma.F16)
	dc := dev.UploadMatrix(cm, wmma.F32)
	dd := dev.MallocMatrix(c.M, c.N, wmma.F32)
	if _, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, db, dc, dd); err != nil {
		t.Fatal(err)
	}
	got := dev.ReadMatrix(dd, c.M, c.N, tensor.RowMajor, wmma.F32)
	want := tensor.Gemm(a, bm, cm, tensor.RowMajor)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("double-buffered timed run diverged: %g", d)
	}
}

// The pipelining ablation: double buffering must beat the single-buffer
// kernel on a deep-K problem where staging stalls dominate.
func TestDoubleBufferFasterOnDeepK(t *testing.T) {
	run := func(db bool) uint64 {
		pol := dbPolicy()
		pol.DoubleBuffer = db
		c := GemmConfig{Policy: pol, Precision: kernels.TensorMixed, M: 64, N: 64, K: 1024}
		l, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		cfg := gpu.TitanV()
		cfg.NumSMs = 1
		dev := cuda.MustNewDevice(cfg)
		da := dev.MallocMatrix(c.M, c.K, wmma.F16)
		dbm := dev.MallocMatrix(c.K, c.N, wmma.F16)
		dc := dev.MallocMatrix(c.M, c.N, wmma.F32)
		dd := dev.MallocMatrix(c.M, c.N, wmma.F32)
		st, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, dbm, dc, dd)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	single := run(false)
	double := run(true)
	if double >= single {
		t.Errorf("double buffering (%d cycles) should beat single buffering (%d)", double, single)
	}
	t.Logf("single=%d double=%d speedup=%.2fx", single, double, float64(single)/float64(double))
}

func TestDoubleBufferPolicyString(t *testing.T) {
	if got := dbPolicy().String(); got != "b64x64_w32x32_db" {
		t.Errorf("String() = %q", got)
	}
}
