// Package cutlass is a CUTLASS-style tiled GEMM generator: the Go analog
// of NVIDIA's CUDA C++ template library whose kernels the paper enabled
// on GPGPU-Sim (Section V-B). A TilePolicy plays the role of CUTLASS's
// threadblock/warp tile template parameters; Build instantiates a kernel
// for one policy, precision and problem size, staging operand panels
// through shared memory and computing each warp's tile grid as an outer
// product of wmma fragments — the same structure as CUTLASS's
// block_task.
package cutlass

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// TilePolicy is the tiling configuration of a CUTLASS-style GEMM.
type TilePolicy struct {
	// BlockM×BlockN is the output tile one thread block computes.
	BlockM, BlockN int
	// WarpM×WarpN is the output tile one warp computes; must divide the
	// block tile and be a multiple of the 16×16 wmma tile.
	WarpM, WarpN int
	// DoubleBuffer enables software pipelining: operand panels are staged
	// into alternating shared buffers so the next K step's global loads
	// overlap the current step's tensor work, and each step needs one
	// barrier instead of two — the optimization the paper credits for
	// cuBLAS outperforming plain WMMA kernels (Section V-C).
	DoubleBuffer bool
}

// Warps returns the number of warps per thread block.
func (p TilePolicy) Warps() int { return (p.BlockM / p.WarpM) * (p.BlockN / p.WarpN) }

func (p TilePolicy) String() string {
	s := fmt.Sprintf("b%dx%d_w%dx%d", p.BlockM, p.BlockN, p.WarpM, p.WarpN)
	if p.DoubleBuffer {
		s += "_db"
	}
	return s
}

// Validate rejects inconsistent policies.
func (p TilePolicy) Validate() error {
	switch {
	case p.WarpM%16 != 0 || p.WarpN%16 != 0:
		return fmt.Errorf("cutlass: warp tile %dx%d not a multiple of 16", p.WarpM, p.WarpN)
	case p.BlockM%p.WarpM != 0 || p.BlockN%p.WarpN != 0:
		return fmt.Errorf("cutlass: block tile %dx%d not divisible by warp tile %dx%d",
			p.BlockM, p.BlockN, p.WarpM, p.WarpN)
	case p.Warps() > 32:
		return fmt.Errorf("cutlass: %d warps per block exceeds 32", p.Warps())
	}
	threads := p.Warps() * 32
	for _, elems := range []int{p.BlockM * 16, 16 * p.BlockN} {
		per := elems / threads
		if per*threads != elems || (per != 2 && per != 4 && per != 8) {
			return fmt.Errorf("cutlass: policy %v stages %d elements per thread; need 2, 4 or 8", p, per)
		}
	}
	return nil
}

// DefaultPolicies are the tile shapes exercised by the test suite and the
// Figure 14b/14c sweeps, mirroring CUTLASS's standard configurations.
func DefaultPolicies() []TilePolicy {
	return []TilePolicy{
		{BlockM: 32, BlockN: 32, WarpM: 16, WarpN: 16},
		{BlockM: 64, BlockN: 64, WarpM: 32, WarpN: 32},
		{BlockM: 64, BlockN: 32, WarpM: 32, WarpN: 16},
		{BlockM: 128, BlockN: 64, WarpM: 32, WarpN: 32},
	}
}

// GemmConfig is one kernel instantiation.
type GemmConfig struct {
	Policy    TilePolicy
	Precision kernels.GemmPrecision // TensorMixed or TensorFP16
	M, N, K   int
}

func (c GemmConfig) String() string {
	return fmt.Sprintf("cutlass_%v_%v_%dx%dx%d", c.Policy, c.Precision, c.M, c.N, c.K)
}

// Validate checks the configuration against the policy and problem size.
func (c GemmConfig) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.Precision != kernels.TensorMixed && c.Precision != kernels.TensorFP16 {
		return fmt.Errorf("cutlass: tensor-core precisions only, got %v", c.Precision)
	}
	if c.M%c.Policy.BlockM != 0 || c.N%c.Policy.BlockN != 0 || c.K%16 != 0 {
		return fmt.Errorf("cutlass: %dx%dx%d not divisible by block tile %dx%d (K by 16)",
			c.M, c.N, c.K, c.Policy.BlockM, c.Policy.BlockN)
	}
	return nil
}

// Build instantiates the kernel for a configuration. Matrices are
// row-major: A is M×K fp16, B is K×N fp16, C and D are M×N in the
// accumulator precision. Args: a, b, c, d.
func Build(c GemmConfig) (*kernels.Launch, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := c.Policy
	wcfg := wmma.Config{
		Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.RowMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32,
	}
	cb := uint64(4)
	if c.Precision == kernels.TensorFP16 {
		wcfg.CType, wcfg.DType = wmma.F16, wmma.F16
		cb = 2
	}
	warpsM := p.BlockM / p.WarpM
	tilesM := p.WarpM / 16
	tilesN := p.WarpN / 16
	threads := p.Warps() * 32

	b := ptx.NewBuilder(c.String())
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)

	sizeA := p.BlockM * 16 * 2
	sizeB := 16 * p.BlockN * 2
	bufs := 1
	if p.DoubleBuffer {
		bufs = 2
	}
	smemA := b.Shared(bufs * sizeA)
	smemB := b.Shared(bufs * sizeB)

	rowBase, colBase := b.Reg(), b.Reg()
	b.Mul(ptx.U32, rowBase, ptx.SR(ptx.SRegCtaIDY), ptx.Imm(uint64(p.BlockM)))
	b.Mul(ptx.U32, colBase, ptx.SR(ptx.SRegCtaIDX), ptx.Imm(uint64(p.BlockN)))

	// Warp position within the block's warp grid (column-major warp id,
	// like CUTLASS): wRow = wid % warpsM, wCol = wid / warpsM.
	wid, wRow, wCol := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, wid, ptx.SR(ptx.SRegWarpID))
	b.Rem(ptx.U32, wRow, ptx.R(wid), ptx.Imm(uint64(warpsM)))
	b.Div(ptx.U32, wCol, ptx.R(wid), ptx.Imm(uint64(warpsM)))

	// Load the warp's accumulator tile grid from C.
	warpRow, warpCol := b.Reg(), b.Reg()
	b.Mad(ptx.U32, warpRow, ptx.R(wRow), ptx.Imm(uint64(p.WarpM)), ptx.R(rowBase))
	b.Mad(ptx.U32, warpCol, ptx.R(wCol), ptx.Imm(uint64(p.WarpN)), ptx.R(colBase))

	accs := make([][]ptx.Reg, tilesM*tilesN)
	cOffs := make([]ptx.Reg, tilesM*tilesN)
	tmp, addr := b.Reg(), b.Reg()
	for tr := 0; tr < tilesM; tr++ {
		for tc := 0; tc < tilesN; tc++ {
			i := tr*tilesN + tc
			cOffs[i] = b.Reg()
			b.Add(ptx.U32, tmp, ptx.R(warpRow), ptx.Imm(uint64(16*tr)))
			b.Mul(ptx.U32, tmp, ptx.R(tmp), ptx.Imm(uint64(c.N)))
			b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(warpCol))
			b.Add(ptx.U32, cOffs[i], ptx.R(tmp), ptx.Imm(uint64(16*tc)))
			b.MulWide(addr, ptx.R(cOffs[i]), ptx.Imm(cb))
			b.Add(ptx.U64, addr, ptx.R(addr), ptx.R(pc))
			accs[i] = b.WmmaLoad(wcfg.Arch, wcfg.Shape, wmma.MatrixC, tensor.RowMajor, wcfg.CType, ptx.R(addr), ptx.Imm(uint64(c.N)))
		}
	}

	// Staging: thread t moves perA halves of A and perB halves of B.
	perA := p.BlockM * 16 / threads
	perB := 16 * p.BlockN / threads
	tid := b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))

	buildCopy := func(per, rowLen int, gBase ptx.Reg, gStride int, rowOff, colOff ptx.Reg, smem uint64) (gcur, sdst ptx.Reg) {
		elem := b.Reg()
		b.Mul(ptx.U32, elem, ptx.R(tid), ptx.Imm(uint64(per)))
		row, col := b.Reg(), b.Reg()
		b.Div(ptx.U32, row, ptx.R(elem), ptx.Imm(uint64(rowLen)))
		b.Rem(ptx.U32, col, ptx.R(elem), ptx.Imm(uint64(rowLen)))
		t := b.Reg()
		if rowOff != (ptx.Reg{}) {
			b.Add(ptx.U32, row, ptx.R(row), ptx.R(rowOff))
		}
		b.Mul(ptx.U32, t, ptx.R(row), ptx.Imm(uint64(gStride)))
		b.Add(ptx.U32, t, ptx.R(t), ptx.R(col))
		if colOff != (ptx.Reg{}) {
			b.Add(ptx.U32, t, ptx.R(t), ptx.R(colOff))
		}
		gcur = b.Reg()
		b.MulWide(gcur, ptx.R(t), ptx.Imm(2))
		b.Add(ptx.U64, gcur, ptx.R(gcur), ptx.R(gBase))
		sdst = b.Reg()
		b.MulWide(sdst, ptx.R(elem), ptx.Imm(2))
		b.Add(ptx.U64, sdst, ptx.R(sdst), ptx.Imm(smem))
		return gcur, sdst
	}
	// A panel rows offset by rowBase; B panel columns offset by colBase.
	aCur, aDst := buildCopy(perA, 16, pa, c.K, rowBase, ptx.Reg{}, smemA)
	bCur, bDst := buildCopy(perB, p.BlockN, pb, c.N, ptx.Reg{}, colBase, smemB)

	copyRegsA, copyRegsB := b.Regs(4), b.Regs(4)
	emitLoad := func(per int, gcur ptx.Reg, regs []ptx.Reg, guard *ptx.Reg) []ptx.Reg {
		width := per * 16
		regs = regs[:width/32]
		if guard != nil {
			b.At(*guard, false)
		}
		b.Ld(ptx.Global, width, regs, ptx.R(gcur))
		return regs
	}
	emitStore := func(per int, sdst ptx.Reg, regs []ptx.Reg, guard *ptx.Reg) {
		width := per * 16
		ops := make([]ptx.Operand, len(regs))
		for i, r := range regs {
			ops[i] = ptx.R(r)
		}
		if guard != nil {
			b.At(*guard, false)
		}
		b.St(ptx.Shared, width, ptx.R(sdst), ops)
	}
	emitCopy := func(per int, gcur, sdst ptx.Reg, regs []ptx.Reg, guard *ptx.Reg) {
		emitStore(per, sdst, emitLoad(per, gcur, regs, guard), guard)
	}

	// Warp fragment offsets within a buffer.
	warpOffA, warpOffB := b.Reg(), b.Reg()
	b.MulWide(warpOffA, ptx.R(wRow), ptx.Imm(uint64(p.WarpM*16*2)))
	b.MulWide(warpOffB, ptx.R(wCol), ptx.Imm(uint64(p.WarpN*2)))

	// Compute-side buffer bases (swapped with the staging side when
	// double buffering).
	saComp, sbComp := b.Reg(), b.Reg()
	b.Mov(ptx.U64, saComp, ptx.Imm(smemA))
	b.Mov(ptx.U64, sbComp, ptx.Imm(smemB))

	advance := func() {
		b.Add(ptx.U64, aCur, ptx.R(aCur), ptx.Imm(16*2))
		b.Add(ptx.U64, bCur, ptx.R(bCur), ptx.Imm(uint64(16*c.N*2)))
	}
	compute := func() {
		fas := make([][]ptx.Reg, tilesM)
		for tr := range fas {
			b.Add(ptx.U64, addr, ptx.R(saComp), ptx.R(warpOffA))
			b.Add(ptx.U64, addr, ptx.R(addr), ptx.Imm(uint64(tr*16*16*2)))
			fas[tr] = b.WmmaLoad(wcfg.Arch, wcfg.Shape, wmma.MatrixA, tensor.RowMajor, wcfg.AType, ptx.R(addr), ptx.Imm(16))
		}
		fbs := make([][]ptx.Reg, tilesN)
		for tc := range fbs {
			b.Add(ptx.U64, addr, ptx.R(sbComp), ptx.R(warpOffB))
			b.Add(ptx.U64, addr, ptx.R(addr), ptx.Imm(uint64(tc*16*2)))
			fbs[tc] = b.WmmaLoad(wcfg.Arch, wcfg.Shape, wmma.MatrixB, tensor.RowMajor, wcfg.AType, ptx.R(addr), ptx.Imm(uint64(p.BlockN)))
		}
		for tr := 0; tr < tilesM; tr++ {
			for tc := 0; tc < tilesN; tc++ {
				idx := tr*tilesN + tc
				accs[idx] = b.WmmaMMA(wcfg, fas[tr], fbs[tc], accs[idx])
			}
		}
	}

	i, pr := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	if !p.DoubleBuffer {
		b.Label("ktop")
		emitCopy(perA, aCur, aDst, copyRegsA, nil)
		emitCopy(perB, bCur, bDst, copyRegsB, nil)
		b.Bar()
		compute()
		b.Bar()
		advance()
		b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
		b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(c.K/16)))
		b.BraIf(pr, false, "ktop")
	} else {
		// Software pipelining: the prologue stages panel 0; each
		// iteration then issues panel i+1's global loads, computes panel
		// i while those loads are in flight, and only afterwards commits
		// the loaded data into the spare buffer — one barrier per step
		// and the global-load latency hidden behind the tensor work.
		aStage, bStage := b.Reg(), b.Reg() // staging-side st.shared bases
		b.Mov(ptx.U64, aStage, ptx.R(aDst))
		b.Mov(ptx.U64, bStage, ptx.R(bDst))
		emitCopy(perA, aCur, aStage, copyRegsA, nil)
		emitCopy(perB, bCur, bStage, copyRegsB, nil)
		advance()
		b.Add(ptx.U64, aStage, ptx.R(aStage), ptx.Imm(uint64(sizeA)))
		b.Add(ptx.U64, bStage, ptx.R(bStage), ptx.Imm(uint64(sizeB)))
		b.Bar()

		saStage, sbStage := b.Reg(), b.Reg() // compute-side alternates
		b.Add(ptx.U64, saStage, ptx.R(saComp), ptx.Imm(uint64(sizeA)))
		b.Add(ptx.U64, sbStage, ptx.R(sbComp), ptx.Imm(uint64(sizeB)))
		last, tmpSwap := b.Reg(), b.Reg()

		b.Label("ktop")
		b.Setp(ptx.U32, ptx.CmpLT, last, ptx.R(i), ptx.Imm(uint64(c.K/16-1)))
		ra := emitLoad(perA, aCur, copyRegsA, &last)
		rb := emitLoad(perB, bCur, copyRegsB, &last)
		compute()
		emitStore(perA, aStage, ra, &last)
		emitStore(perB, bStage, rb, &last)
		b.Bar()
		// Swap staging and compute buffers.
		for _, pair := range [][2]ptx.Reg{{saComp, saStage}, {sbComp, sbStage}, {aStage, aDst}, {bStage, bDst}} {
			b.Mov(ptx.U64, tmpSwap, ptx.R(pair[0]))
			b.Mov(ptx.U64, pair[0], ptx.R(pair[1]))
			b.Mov(ptx.U64, pair[1], ptx.R(tmpSwap))
		}
		advance()
		b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
		b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(c.K/16)))
		b.BraIf(pr, false, "ktop")
	}

	// Epilogue: store every accumulator tile.
	for idx, acc := range accs {
		b.MulWide(addr, ptx.R(cOffs[idx]), ptx.Imm(cb))
		b.Add(ptx.U64, addr, ptx.R(addr), ptx.R(pd))
		b.WmmaStore(wcfg.Arch, wcfg.Shape, tensor.RowMajor, wcfg.DType, ptx.R(addr), acc, ptx.Imm(uint64(c.N)))
	}
	b.Exit()

	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &kernels.Launch{
		Kernel:   kern,
		Grid:     ptx.D2(c.N/p.BlockN, c.M/p.BlockM),
		Block:    ptx.D1(threads),
		ArgNames: []string{"a", "b", "c", "d"},
		FLOPs:    2 * float64(c.M) * float64(c.N) * float64(c.K),
	}, nil
}

// TestSuite enumerates the configuration matrix the package's tests run —
// the analog of the ~680-case CUTLASS unit-test suite the paper verified
// on GPGPU-Sim. Policies × precisions × problem sizes, all functional.
func TestSuite() []GemmConfig {
	var out []GemmConfig
	for _, pol := range DefaultPolicies() {
		for _, prec := range []kernels.GemmPrecision{kernels.TensorMixed, kernels.TensorFP16} {
			for _, mMul := range []int{1, 2, 3} {
				for _, nMul := range []int{1, 2} {
					for _, k := range []int{16, 32, 48} {
						out = append(out, GemmConfig{
							Policy:    pol,
							Precision: prec,
							M:         pol.BlockM * mMul,
							N:         pol.BlockN * nMul,
							K:         k,
						})
					}
				}
			}
		}
	}
	return out
}
