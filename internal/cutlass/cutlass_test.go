package cutlass

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func TestPolicyValidation(t *testing.T) {
	for _, p := range DefaultPolicies() {
		if err := p.Validate(); err != nil {
			t.Errorf("default policy %v invalid: %v", p, err)
		}
	}
	bad := []TilePolicy{
		{BlockM: 60, BlockN: 64, WarpM: 30, WarpN: 32}, // warp tile not ×16
		{BlockM: 64, BlockN: 64, WarpM: 48, WarpN: 32}, // block not divisible
		{BlockM: 512, BlockN: 512, WarpM: 16, WarpN: 16},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %v should be invalid", p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	pol := DefaultPolicies()[1]
	c := GemmConfig{Policy: pol, Precision: kernels.TensorMixed, M: 65, N: 64, K: 16}
	if err := c.Validate(); err == nil {
		t.Error("M not divisible by block tile should fail")
	}
	c = GemmConfig{Policy: pol, Precision: kernels.SimtFP32, M: 64, N: 64, K: 16}
	if err := c.Validate(); err == nil {
		t.Error("SIMT precision should fail")
	}
}

// runConfig executes one configuration functionally and compares against
// the float64 reference.
func runConfig(t *testing.T, c GemmConfig, dev *cuda.Device, rng *rand.Rand) {
	t.Helper()
	l, err := Build(c)
	if err != nil {
		t.Fatalf("%v: %v", c, err)
	}
	a := tensor.New(c.M, c.K, tensor.RowMajor)
	bm := tensor.New(c.K, c.N, tensor.RowMajor)
	cm := tensor.New(c.M, c.N, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	cm.FillRandomFP16(rng)

	cd := wmma.F32
	tol := 1e-3
	if c.Precision == kernels.TensorFP16 {
		cd = wmma.F16
		tol = float64(c.K) * 0.03
	}
	da := dev.UploadMatrix(a, wmma.F16)
	db := dev.UploadMatrix(bm, wmma.F16)
	dc := dev.UploadMatrix(cm, cd)
	dd := dev.MallocMatrix(c.M, c.N, cd)
	if err := dev.RunFunctional(l.Kernel, l.Grid, l.Block, da, db, dc, dd); err != nil {
		t.Fatalf("%v: %v", c, err)
	}
	got := dev.ReadMatrix(dd, c.M, c.N, tensor.RowMajor, cd)
	want := tensor.Gemm(a, bm, cm, tensor.RowMajor)
	if d := tensor.MaxAbsDiff(got, want); d > tol {
		t.Errorf("%v: max abs diff %g > %g", c, d, tol)
	}
}

// TestSuiteFunctional is the repository's analog of the ~680-case CUTLASS
// unit-test suite: every policy × precision × size combination must
// produce correct results through the full load→stage→mma→store path.
func TestSuiteFunctional(t *testing.T) {
	suite := TestSuite()
	if len(suite) < 100 {
		t.Fatalf("test suite has only %d cases", len(suite))
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	rng := rand.New(rand.NewSource(1))
	for _, c := range suite {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			dev := cuda.MustNewDevice(cfg)
			runConfig(t, c, dev, rng)
		})
	}
}

// A CUTLASS kernel must also run to completion, correctly, on the timing
// simulator (this is what Figure 14b measures).
func TestCutlassUnderTimingSimulator(t *testing.T) {
	c := GemmConfig{Policy: DefaultPolicies()[1], Precision: kernels.TensorMixed, M: 128, N: 128, K: 64}
	l, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 4
	dev := cuda.MustNewDevice(cfg)
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(c.M, c.K, tensor.RowMajor)
	bm := tensor.New(c.K, c.N, tensor.RowMajor)
	cm := tensor.New(c.M, c.N, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	cm.FillRandomFP16(rng)
	da := dev.UploadMatrix(a, wmma.F16)
	db := dev.UploadMatrix(bm, wmma.F16)
	dc := dev.UploadMatrix(cm, wmma.F32)
	dd := dev.MallocMatrix(c.M, c.N, wmma.F32)
	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, db, dc, dd)
	if err != nil {
		t.Fatal(err)
	}
	got := dev.ReadMatrix(dd, c.M, c.N, tensor.RowMajor, wmma.F32)
	want := tensor.Gemm(a, bm, cm, tensor.RowMajor)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("timed cutlass diverged: %g", d)
	}
	if st.TensorOps == 0 || st.Cycles == 0 {
		t.Errorf("stats: %+v", st)
	}
	wantMMAs := uint64(c.M / 16 * c.N / 16 * c.K / 16)
	if st.TensorOps != wantMMAs {
		t.Errorf("tensor ops %d, want %d", st.TensorOps, wantMMAs)
	}
}
