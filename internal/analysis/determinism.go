package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism analyzer. The simulator must be a pure function of
// (kernel, Config, knobs): the same inputs must produce byte-identical
// Stats and tables on every run, on every shard, from every cache. In
// the simulator packages it therefore flags:
//
//  1. time.Now / time.Since — wall clocks in a stats or timing path
//     poison the (planned) content-addressed result cache. Sanctioned
//     diagnostic-only uses carry //simlint:wallclock <why>.
//  2. math/rand functions that draw from the process-global source —
//     workload generation must thread an explicitly seeded *rand.Rand.
//  3. Map iteration whose body writes state that outlives the loop, the
//     classic map-order leak. Writes that are provably order-free stay
//     legal: inserts keyed by the ranged key, integer accumulation
//     (+=, ++, |=, &=, ^=), and deletes. Anything else needs a
//     //simlint:ordered <why> justification on the range statement.
//  4. fmt formatting of map-typed values. fmt sorts keys, but only for
//     comparable key orders; mixed-type interface keys and NaN keys
//     still render nondeterministically, so tables never format maps
//     directly.
//
// Test files are exempt: the contract covers what ships in the
// simulator, and the equivalence/fuzz harnesses legitimately use
// clocks and randomness.
var DeterminismAnalyzer = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid wall clocks, unseeded randomness and map-order leaks in simulator packages",
	Scope: simulatorOrFixture,
	Run:   runDeterminism,
}

// globalRandExceptions lists the math/rand package-level functions that
// do not draw from the global source.
var globalRandExceptions = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		dirs := FileDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, dirs, n)
			case *ast.RangeStmt:
				checkMapRange(pass, dirs, n)
			}
			return true
		})
	}
}

func checkDeterminismCall(pass *Pass, dirs map[int][]Directive, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath := selectorPackage(pass, sel)
	name := sel.Sel.Name
	switch {
	case pkgPath == "time" && (name == "Now" || name == "Since"):
		if !suppressed(dirs, pass.Fset, call.Pos(), "wallclock") {
			pass.Reportf(call.Pos(), "time.%s in a simulator package breaks run-to-run reproducibility; justify diagnostic-only use with //simlint:wallclock <why>", name)
		}
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandExceptions[name]:
		pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; thread an explicitly seeded *rand.Rand instead", name)
	case pkgPath == "fmt" && fmtFormats(name):
		for _, arg := range call.Args {
			t := pass.Info.TypeOf(arg)
			if t == nil {
				continue
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				if !suppressed(dirs, pass.Fset, call.Pos(), "ordered") {
					pass.Reportf(arg.Pos(), "fmt.%s of a map renders in unstable order for uncomparable key mixes; format sorted keys explicitly or justify with //simlint:ordered <why>", name)
				}
			}
		}
	}
}

// fmtFormats reports whether the fmt function formats its operands
// (Print*/Sprint*/Fprint*/Errorf/Append*, as opposed to the scanners).
func fmtFormats(name string) bool {
	for _, p := range [...]string{"Print", "Sprint", "Fprint", "Errorf", "Append"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// selectorPackage resolves x in x.Sel to an imported package path, or "".
func selectorPackage(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func checkMapRange(pass *Pass, dirs map[int][]Directive, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if suppressed(dirs, pass.Fset, rs.Pos(), "ordered") {
		return
	}
	keyObj := rangeKeyObject(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkRangeWrite(pass, rs, keyObj, lhs, n.Tok)
			}
		case *ast.IncDecStmt:
			checkRangeWrite(pass, rs, keyObj, n.X, token.INC)
		}
		return true
	})
}

func rangeKeyObject(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// checkRangeWrite flags a write inside a map-range body whose target
// outlives the loop, unless the write is provably iteration-order-free.
func checkRangeWrite(pass *Pass, rs *ast.RangeStmt, keyObj types.Object, lhs ast.Expr, tok token.Token) {
	root, keyedIndex := unwrapWriteTarget(pass, keyObj, lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil {
		return
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return // declared inside the loop; dies with the iteration
	}
	if keyedIndex {
		return // m2[k] = v: keyed by the ranged key, order-free
	}
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.INC, token.DEC:
		if b, ok := pass.Info.TypeOf(lhs).Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return // exact commutative accumulation
		}
	}
	pass.Reportf(lhs.Pos(), "map iteration order leaks into %s, which outlives the loop; iterate sorted keys or justify with //simlint:ordered <why>", root.Name)
}

// unwrapWriteTarget walks selector/index/star wrappers down to the root
// identifier, noting whether any index along the way is exactly the
// ranged key variable.
func unwrapWriteTarget(pass *Pass, keyObj types.Object, e ast.Expr) (*ast.Ident, bool) {
	keyed := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, keyed
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if id, ok := x.Index.(*ast.Ident); ok && keyObj != nil && pass.Info.ObjectOf(id) == keyObj {
				keyed = true
			}
			e = x.X
		default:
			return nil, keyed
		}
	}
}
