package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The hotpath analyzer. Functions annotated //simlint:hotpath are the
// per-cycle issue/execute/coalesce/fragment paths whose alloc-free
// discipline PRs 2-5 paid for; this analyzer keeps those wins from
// regressing silently. Inside an annotated function it flags, within
// loops:
//
//   - &T{...}, slice/map composite literals, make and new — one heap
//     allocation per iteration,
//   - append to a slice that provably starts at zero capacity
//     (var s []T / s := []T{} / make(..., 0)) — reslice a scratch
//     buffer (buf[:0]) or preallocate instead,
//   - implicit or explicit conversions of concrete values to interface
//     types (boxing allocates and devirtualizes),
//
// and anywhere in the function: closures that capture variables (the
// capture forces the variable and the closure onto the heap). A
// finding that is intentional carries //simlint:ok <why> on its line.
//
// The analyzer is syntactic about escape: it does not model the
// compiler's escape analysis, it enforces the stricter house rule that
// per-cycle code simply does not construct these shapes in loops.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid per-iteration allocation shapes in //simlint:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		dirs := FileDirectives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDirective(dirs, pass.Fset, fd, "hotpath") {
				continue
			}
			h := &hotpathWalker{pass: pass, dirs: dirs, fn: fd, sliceInit: localSliceInits(pass, fd)}
			h.walk(fd.Body, 0)
		}
	}
}

// localSliceInits maps each function-local variable to its initializer
// expression (nil for `var s []T`), so the append rule can tell a
// zero-capacity slice from a preallocated or resliced scratch buffer.
func localSliceInits(pass *Pass, fd *ast.FuncDecl) map[types.Object]ast.Expr {
	inits := map[types.Object]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						inits[obj] = n.Rhs[i]
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						var init ast.Expr
						if i < len(vs.Values) {
							init = vs.Values[i]
						}
						inits[obj] = init
					}
				}
			}
		}
		return true
	})
	return inits
}

type hotpathWalker struct {
	pass      *Pass
	dirs      map[int][]Directive
	fn        *ast.FuncDecl
	sliceInit map[types.Object]ast.Expr
}

func (h *hotpathWalker) reportf(pos token.Pos, format string, args ...any) {
	if !suppressed(h.dirs, h.pass.Fset, pos, "ok") {
		h.pass.Reportf(pos, format, args...)
	}
}

// walk descends the annotated function, tracking loop depth. Function
// literals are checked for captures and not descended into: their
// bodies run when invoked, and the closure allocation itself is the
// hot-path violation.
func (h *hotpathWalker) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		loopDepth++
	case *ast.FuncLit:
		h.checkClosure(n)
		return
	case *ast.UnaryExpr:
		if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
			if loopDepth > 0 {
				h.reportf(n.Pos(), "&%s composite literal escapes to the heap each iteration; hoist it out of the loop", typeString(h.pass, lit))
			}
			// The literal is accounted for; visit only its elements.
			for _, e := range lit.Elts {
				h.walk(e, loopDepth)
			}
			return
		}
	case *ast.CompositeLit:
		if loopDepth > 0 {
			switch h.pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				h.reportf(n.Pos(), "%s literal allocates each iteration; reuse a scratch buffer", typeString(h.pass, n))
			}
		}
	case *ast.CallExpr:
		h.checkCall(n, loopDepth)
	}
	for _, c := range children(n) {
		h.walk(c, loopDepth)
	}
}

func (h *hotpathWalker) checkCall(call *ast.CallExpr, loopDepth int) {
	if loopDepth == 0 {
		return
	}
	// Builtins: make/new allocate; append from zero capacity reallocates
	// every growth step.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := h.pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.reportf(call.Pos(), "make inside a loop allocates each iteration; hoist the buffer and reslice it")
			case "new":
				h.reportf(call.Pos(), "new inside a loop allocates each iteration; hoist the allocation")
			case "append":
				h.checkAppend(call)
			}
			return
		}
	}
	tv, ok := h.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterface(h.pass.Info.TypeOf(call.Args[0])) {
			h.reportf(call.Pos(), "conversion to %s boxes its operand each iteration", tv.Type)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call)
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := h.pass.Info.TypeOf(arg)
		if at == nil || isInterface(at) || isUntypedNil(h.pass, arg) {
			continue
		}
		h.reportf(arg.Pos(), "argument boxes %s into %s each iteration", at, pt)
	}
}

// checkAppend flags append whose destination is a local slice that
// provably starts with zero capacity. Appends to parameters, fields,
// reslices (buf[:0]) and sized makes are the sanctioned scratch-buffer
// idiom and stay legal.
func (h *hotpathWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := h.pass.Info.Uses[id]
	init, declaredHere := h.sliceInit[obj]
	if !declaredHere || !zeroCapInit(h.pass, init) {
		return
	}
	h.reportf(call.Pos(), "append grows %s from zero capacity inside a loop; preallocate or reslice a scratch buffer", id.Name)
}

// zeroCapInit reports whether the initializer provably yields a
// zero-capacity slice: no initializer (var s []T), nil, an empty
// literal, or make with literal zero size and no larger capacity.
func zeroCapInit(pass *Pass, init ast.Expr) bool {
	if init == nil {
		return true
	}
	switch e := ast.Unparen(init).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		if _, ok := pass.Info.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) < 2 {
			return false
		}
		cap := e.Args[len(e.Args)-1]
		lit, ok := ast.Unparen(cap).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// checkClosure flags function literals that capture enclosing-function
// variables; the capture heap-allocates both closure and variable.
func (h *hotpathWalker) checkClosure(lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := h.pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal.
		if v.Pos() >= h.fn.Pos() && v.Pos() < h.fn.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			seen[v] = true
			h.reportf(lit.Pos(), "closure captures %s, forcing a heap allocation; pass state explicitly", v.Name())
		}
		return true
	})
}

func typeString(pass *Pass, e ast.Expr) string {
	if t := pass.Info.TypeOf(e); t != nil {
		return t.String()
	}
	return "composite"
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// paramType resolves the static parameter type for argument i,
// expanding the variadic tail (except for f(slice...) pass-through).
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() {
		if i >= n-1 {
			if call.Ellipsis != token.NoPos {
				return sig.Params().At(n - 1).Type()
			}
			return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		}
		return sig.Params().At(i).Type()
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// children returns the immediate AST children of n, letting the walker
// control descent (ast.Inspect cannot stop at FuncLit boundaries while
// tracking loop depth).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}
