package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader: a stdlib-only stand-in for x/tools/go/packages. One
// `go list -export -deps -json` invocation yields compiler export data
// for every dependency (the go build cache does the heavy lifting), the
// matched packages are re-parsed and type-checked from source against
// that export data, and test files ride along syntax-only for the
// analyzers that read them (knobpair).

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // compiled (non-test) files, type-checked
	// TestFiles holds the package's _test.go files — in-package and
	// external — parsed but not type-checked. Knob references are
	// matched syntactically there.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Module is the full set of packages one simlint run analyzes.
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load lists patterns from dir (a directory inside the module), builds
// export data for the dependency closure, and returns the matched
// packages parsed and type-checked.
func Load(dir string, patterns ...string) (*Module, error) {
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, patterns, "-deps", "-export")
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	m := &Module{Fset: fset}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("load %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// LoadModule loads every package of the module containing dir.
func LoadModule(dir string) (*Module, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	return Load(root, "./...")
}

// moduleRoot resolves the root directory of the module containing dir.
func moduleRoot(dir string) (string, error) {
	out, err := runGo(dir, "env", "GOMOD")
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("simlint: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("load %s: cgo packages are not supported", lp.ImportPath)
	}
	parse := func(names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...))
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}, nil
}

func goList(dir string, patterns []string, extra ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, extra...)
	args = append(args, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
