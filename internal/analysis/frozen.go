package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The frozen analyzer. The decoded artifacts — DInstr programs cached on
// the Kernel, fragPlans, wmma.Mapping and its SlotVecs view — are built
// once and then shared by every warp of every simulator instance. The
// ROADMAP's serving frontier shares them across goroutines too, which is
// only sound if "shared read-only" is a property of the code, not a
// comment. Types annotated //simlint:frozen get exactly that: their
// fields may be written only inside same-package functions annotated
// //simlint:ctor (the constructor set that builds the value before it
// escapes). Any other field write — any package, any function — is a
// post-construction mutation and is flagged; an intentional one carries
// //simlint:ok <why> on its line.
//
// The check is module-scoped because frozenness crosses package
// boundaries: a package importing wmma must not write Mapping.Lanes even
// though the field is exported. Writes through an aliased pointer
// (p := &d.srcs[0]; p.reg = 1) are outside the syntactic reach of the
// analyzer — the house rule is that constructor code does not create
// such aliases for callers.
var FrozenAnalyzer = &Analyzer{
	Name:      "frozen",
	Doc:       "forbid field writes to //simlint:frozen types outside their //simlint:ctor constructor set",
	RunModule: runFrozen,
}

func runFrozen(m *Module, report func(Diagnostic)) {
	// frozen[types.TypeName] marks annotated type declarations,
	// module-wide, so cross-package writes resolve to the same object via
	// the export-data importer's path+name identity.
	frozen := map[string]*Package{} // "pkgpath.TypeName" -> defining package
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			dirs := FileDirectives(pkg.Fset, f)
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !typeDirective(dirs, pkg.Fset, gd, ts, "frozen") {
						continue
					}
					frozen[pkg.Path+"."+ts.Name.Name] = pkg
				}
			}
		}
	}
	if len(frozen) == 0 {
		return
	}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			dirs := FileDirectives(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				isCtor := funcDirective(dirs, pkg.Fset, fd, "ctor")
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range n.Lhs {
							checkFrozenWrite(pkg, dirs, frozen, isCtor, fd, lhs, report)
						}
					case *ast.IncDecStmt:
						checkFrozenWrite(pkg, dirs, frozen, isCtor, fd, n.X, report)
					}
					return true
				})
			}
		}
	}
}

// checkFrozenWrite unwraps index/star/paren wrappers on the write target
// and flags it when the innermost selector selects a field of a frozen
// type outside that type's constructor set.
func checkFrozenWrite(pkg *Package, dirs map[int][]Directive, frozen map[string]*Package, isCtor bool, fd *ast.FuncDecl, lhs ast.Expr, report func(Diagnostic)) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		}
		break
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel := pkg.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	recv := sel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	defPkg, isFrozen := frozen[key]
	if !isFrozen {
		return
	}
	if isCtor && defPkg == pkg {
		return // same-package constructor set
	}
	if suppressed(dirs, pkg.Fset, lhs.Pos(), "ok") {
		return
	}
	msg := named.Obj().Name() + "." + se.Sel.Name + " is written outside the //simlint:ctor constructor set; frozen types are shared read-only after construction"
	if isCtor && defPkg != pkg {
		msg = named.Obj().Name() + "." + se.Sel.Name + " is written by a foreign-package constructor; the frozen constructor set is same-package only"
	}
	report(Diagnostic{
		Pos:      pkg.Fset.Position(lhs.Pos()),
		Analyzer: "frozen",
		Message:  msg,
	})
}

// typeDirective reports whether a type declaration carries the
// directive: on the TypeSpec's or GenDecl's doc lines, the line above
// the declaration, or the declaration's own line.
func typeDirective(dirs map[int][]Directive, fset *token.FileSet, gd *ast.GenDecl, ts *ast.TypeSpec, name string) bool {
	first := fset.Position(gd.Pos()).Line - 1
	if gd.Doc != nil {
		first = fset.Position(gd.Doc.Pos()).Line
	}
	if ts.Doc != nil {
		if l := fset.Position(ts.Doc.Pos()).Line; l < first {
			first = l
		}
	}
	last := fset.Position(ts.Name.Pos()).Line
	for line := first; line <= last; line++ {
		for _, d := range dirs[line] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}
