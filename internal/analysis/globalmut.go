package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The globalmut analyzer. The serving frontier (simulation-as-a-service,
// multi-stream replay, distributed sweeps) shares simulator instances
// and decoded artifacts across goroutines, so simulator packages must
// not communicate through package-level state: a global written by one
// request is read by every other. In the simulator packages it flags:
//
//  1. Any write to a package-level variable outside init — plain
//     assignment, op-assignment, IncDec, or taking the variable as a
//     range-assign target. Registration-time population belongs in init
//     or the variable's initializer. A sanctioned exception carries
//     //simlint:ok <why>.
//  2. Store/Swap/Add/CompareAndSwap on a package-level atomic that does
//     not carry //simlint:processknob <why> — the directive is the
//     record that a process-global knob exists deliberately (the
//     Legacy*/Scan*/Interpret* equivalence knobs) and documents why the
//     hazard is acceptable.
//  3. Writes to a //simlint:processknob variable anywhere except its
//     exported setter (func Knob(on bool), the CLI flag plumbing) or
//     its Swap helper (func SwapKnob(on bool) func(), the test-safe
//     set-and-restore path). Knob state must not be togglable from
//     arbitrary code paths.
//  4. A //simlint:processknob variable that is not atomic-typed, or a
//     processknob directive with no justification.
//
// Because every global write outside init is flagged, the
// receiver-reachable-pointer hazard — a gpu.Simulator or mem.System
// method parking receiver state in a global — is covered by the same
// rule: the store site itself is the finding.
//
// The module pass extends the contract to tests: a _test.go file
// calling a knob setter directly (ptx.LegacyAccessPath(true)) leaks the
// knob into every other test of the process; under t.Parallel the
// interleaving is a coin flip. Tests must use the Swap helper and
// register the restore (defer ptx.SwapLegacyAccessPath(true)() or
// t.Cleanup).
var GlobalmutAnalyzer = &Analyzer{
	Name:      "globalmut",
	Doc:       "forbid package-level state writes outside init; gate process-global knobs behind //simlint:processknob setters and Swap helpers",
	Scope:     simulatorOrFixture,
	Run:       runGlobalmut,
	RunModule: runGlobalmutTests,
}

// atomicStoreMethods are the sync/atomic value methods that mutate.
var atomicStoreMethods = map[string]bool{
	"Store": true, "Swap": true, "Add": true, "CompareAndSwap": true, "Or": true, "And": true,
}

func runGlobalmut(pass *Pass) {
	knobs := processKnobVars(pass)
	for _, f := range pass.Files {
		dirs := FileDirectives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // registration time; the package is still single-threaded
			}
			sanctioned := isKnobSetter(fd) || isSwapHelper(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkGlobalWrite(pass, dirs, knobs, sanctioned, lhs)
					}
				case *ast.IncDecStmt:
					checkGlobalWrite(pass, dirs, knobs, sanctioned, n.X)
				case *ast.RangeStmt:
					if n.Key != nil {
						checkGlobalWrite(pass, dirs, knobs, sanctioned, n.Key)
					}
					if n.Value != nil {
						checkGlobalWrite(pass, dirs, knobs, sanctioned, n.Value)
					}
				case *ast.CallExpr:
					checkAtomicStore(pass, dirs, knobs, sanctioned, n)
				}
				return true
			})
		}
	}
}

// processKnobVars collects this package's package-level variables
// annotated //simlint:processknob, validating the directive as it goes:
// the variable must be atomic-typed and the directive justified.
func processKnobVars(pass *Pass) map[types.Object]bool {
	knobs := map[types.Object]bool{}
	for _, f := range pass.Files {
		dirs := FileDirectives(pass.Fset, f)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					d, ok := declDirective(dirs, pass.Fset, gd, vs, name, "processknob")
					if !ok {
						continue
					}
					obj := pass.Info.Defs[name]
					if obj == nil || obj.Parent() != pass.Types.Scope() {
						pass.Reportf(name.Pos(), "//simlint:processknob applies only to package-level variables")
						continue
					}
					if d.Arg == "" {
						pass.Reportf(name.Pos(), "//simlint:processknob on %s needs a justification: why is a process-global knob acceptable here", name.Name)
					}
					if !isAtomicType(obj.Type()) {
						pass.Reportf(name.Pos(), "process-global knob %s must be atomic-typed (sync/atomic); a plain variable races between concurrent simulators", name.Name)
						continue
					}
					knobs[obj] = true
				}
			}
		}
	}
	return knobs
}

// declDirective looks a directive up on the var's own line, the spec's
// doc lines, or the enclosing GenDecl's doc lines.
func declDirective(dirs map[int][]Directive, fset *token.FileSet, gd *ast.GenDecl, vs *ast.ValueSpec, name *ast.Ident, want string) (Directive, bool) {
	first := fset.Position(gd.Pos()).Line - 1
	if gd.Doc != nil {
		first = fset.Position(gd.Doc.Pos()).Line
	}
	if vs.Doc != nil {
		if l := fset.Position(vs.Doc.Pos()).Line; l < first {
			first = l
		}
	}
	last := fset.Position(name.Pos()).Line
	for line := first; line <= last; line++ {
		for _, d := range dirs[line] {
			if d.Name == want {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// checkGlobalWrite flags lhs when its root identifier is a package-level
// variable (of any package) and the write is not sanctioned.
func checkGlobalWrite(pass *Pass, dirs map[int][]Directive, knobs map[types.Object]bool, sanctioned bool, lhs ast.Expr) {
	root, _ := unwrapWriteTarget(pass, nil, lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := pass.Info.ObjectOf(root)
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, parameter, or field
	}
	if knobs[obj] {
		if !sanctioned {
			pass.Reportf(lhs.Pos(), "process-global knob %s may be written only by its exported setter or Swap helper", root.Name)
		}
		return
	}
	if suppressed(dirs, pass.Fset, lhs.Pos(), "ok") {
		return
	}
	pass.Reportf(lhs.Pos(), "writes package-level %s outside init; shared simulator state must be receiver-owned (or justify with //simlint:ok <why>)", root.Name)
}

// checkAtomicStore flags mutating atomic method calls on package-level
// variables: unannotated atomics need the processknob directive,
// annotated ones may only be stored from the setter/Swap helper.
func checkAtomicStore(pass *Pass, dirs map[int][]Directive, knobs map[types.Object]bool, sanctioned bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicStoreMethods[sel.Sel.Name] {
		return
	}
	root, _ := unwrapWriteTarget(pass, nil, sel.X)
	if root == nil {
		return
	}
	obj := pass.Info.ObjectOf(root)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if !isAtomicType(v.Type()) {
		return
	}
	if !knobs[obj] {
		if suppressed(dirs, pass.Fset, call.Pos(), "ok") {
			return
		}
		pass.Reportf(call.Pos(), "%s.%s mutates a package-level atomic with no //simlint:processknob directive; declare the knob deliberately or move the state onto the receiver", root.Name, sel.Sel.Name)
		return
	}
	if !sanctioned {
		pass.Reportf(call.Pos(), "process-global knob %s may be written only by its exported setter or Swap helper", root.Name)
	}
}

// isKnobSetter matches the CLI-flag-plumbing shape: an exported
// top-level func taking a single bool and returning nothing
// (ptx.LegacyAccessPath, ptx.InterpretALU, gpu.ScanScheduler).
func isKnobSetter(fd *ast.FuncDecl) bool {
	return fd.Recv == nil && fd.Name.IsExported() &&
		singleBoolParam(fd.Type) && resultCount(fd.Type) == 0
}

// isSwapHelper matches the test-safe shape: an exported top-level
// func Swap*(on bool) returning exactly a restore func().
func isSwapHelper(fd *ast.FuncDecl) bool {
	if fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Swap") || !singleBoolParam(fd.Type) {
		return false
	}
	if resultCount(fd.Type) != 1 {
		return false
	}
	ft, ok := fd.Type.Results.List[0].Type.(*ast.FuncType)
	return ok && (ft.Params == nil || len(ft.Params.List) == 0) && (ft.Results == nil || len(ft.Results.List) == 0)
}

func singleBoolParam(ft *ast.FuncType) bool {
	if len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) > 1 {
		return false
	}
	id, ok := ft.Params.List[0].Type.(*ast.Ident)
	return ok && id.Name == "bool"
}

func resultCount(ft *ast.FuncType) int {
	if ft.Results == nil {
		return 0
	}
	n := 0
	for _, r := range ft.Results.List {
		if len(r.Names) == 0 {
			n++
		} else {
			n += len(r.Names)
		}
	}
	return n
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// runGlobalmutTests is the module pass: collect the setter names of
// every processknob variable, then flag direct setter calls in test
// files. The setter leaves the knob flipped for the rest of the test
// process; the Swap helper (whose restore the test defers or hands to
// t.Cleanup) is the only call shape that cannot interleave knob states
// across parallel tests.
func runGlobalmutTests(m *Module, report func(Diagnostic)) {
	setters := map[string]bool{}
	for _, pkg := range m.Pkgs {
		if !simulatorOrFixture(pkg.Path) {
			continue
		}
		knobNames := map[string]bool{}
		for _, f := range pkg.Files {
			dirs := FileDirectives(pkg.Fset, f)
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if _, ok := declDirective(dirs, pkg.Fset, gd, vs, name, "processknob"); ok {
							knobNames[name.Name] = true
						}
					}
				}
			}
		}
		if len(knobNames) == 0 {
			continue
		}
		// An exported setter is plumbing for a knob when its body stores
		// to one of the package's processknob variables.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isKnobSetter(fd) {
					continue
				}
				writes := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if ok && atomicStoreMethods[sel.Sel.Name] {
						if id, ok := sel.X.(*ast.Ident); ok && knobNames[id.Name] {
							writes = true
						}
					}
					return true
				})
				if writes {
					setters[fd.Name.Name] = true
				}
			}
		}
	}
	if len(setters) == 0 {
		return
	}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.TestFiles {
			dirs := FileDirectives(pkg.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				var name string
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				case *ast.Ident:
					name = fun.Name
				default:
					return true
				}
				if !setters[name] {
					return true
				}
				if suppressed(dirs, pkg.Fset, call.Pos(), "ok") {
					return true
				}
				report(Diagnostic{
					Pos:      pkg.Fset.Position(call.Pos()),
					Analyzer: "globalmut",
					Message: name + " flips a process-global knob for the rest of the test process; use Swap" + name +
						" and register the restore (defer/t.Cleanup) so parallel tests cannot interleave knob states",
				})
				return true
			})
		}
	}
}
