// Package recoversurface is the simlint recoversurface fixture: every
// recover() shape the analyzer allows and flags.
package recoversurface

import "fmt"

// runPoint surfaces the panic with the point's identity: allowed.
func runPoint(id string, i int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s point %d panicked: %v", id, i, r)
		}
	}()
	return fn()
}

// runSelector carries identity via a selector expression: allowed.
type experiment struct{ ID string }

func runSelector(e experiment, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment %s panicked: %v", e.ID, r)
		}
	}()
	return fn()
}

// swallow drops the recovered value entirely: flagged.
func swallow(fn func()) {
	defer func() {
		recover() // want "recover\(\) must bind its value"
	}()
	fn()
}

// discard binds to blank without the canonical check: flagged.
func discard(fn func()) {
	defer func() {
		_ = recover() // want "recover\(\) must bind its value"
	}()
	fn()
}

// anonymous converts the panic but loses the identity — no argument
// beyond the recovered value and literals: flagged.
func anonymous(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil { // want "non-literal identity argument"
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn()
}

// logged checks the value but never builds an error at all: flagged.
func logged(fn func()) {
	defer func() {
		if r := recover(); r != nil { // want "non-literal identity argument"
			fmt.Println("recovered", r)
		}
	}()
	fn()
}

// sanctioned re-panics after cleanup; no error to build, and the
// directive records why: allowed.
func sanctioned(cleanup, fn func()) {
	defer func() {
		//simlint:ok re-panics after releasing the pool slot; identity is attached upstream
		if r := recover(); r != nil {
			cleanup()
			panic(r)
		}
	}()
	fn()
}
