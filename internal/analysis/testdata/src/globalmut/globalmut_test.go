package globalmut

import "testing"

// TestKnobPlumbing pins the test-file contract: direct setter calls
// leak knob state across the test process; the Swap helper with a
// registered restore is the sanctioned shape.
func TestKnobPlumbing(t *testing.T) {
	LegacyKnob(true) // want "flips a process-global knob for the rest of the test process"
	t.Cleanup(SwapLegacyKnob(true))
	defer SwapLegacyKnob(false)()
	//simlint:ok fixture: demonstrates the justified direct call
	LegacyKnob(false)
}
