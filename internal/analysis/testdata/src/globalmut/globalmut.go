// Package globalmut is the simlint globalmut fixture: package-level
// writes in every sanctioned and flagged position, plus the processknob
// directive's whole lifecycle (declared, set, swapped, backdoored,
// unjustified, non-atomic).
package globalmut

import "sync/atomic"

// state, registry and table are ordinary package-level state.
var (
	state    int
	registry = map[string]int{}
	table    [4]int
)

func init() {
	state = 1         // allowed: registration time
	registry["a"] = 1 // allowed
}

// Mutate writes package-level state outside init in each shape.
func Mutate(n int) {
	state = n         // want "writes package-level state outside init"
	registry["b"] = n // want "writes package-level registry outside init"
	table[0] = n      // want "writes package-level table outside init"
	state++           // want "writes package-level state outside init"
}

// Sanctioned carries a justified suppression.
func Sanctioned(n int) {
	state = n //simlint:ok fixture: demonstrates the justified escape
}

// Local shadows and locals are not package-level state: allowed.
func Local(n int) int {
	state := n
	table := [4]int{}
	table[0] = state
	return table[0]
}

// bareAtomic is a package-level atomic with no processknob directive.
var bareAtomic atomic.Bool

// FlipBare mutates an undeclared process global.
func FlipBare(on bool) {
	bareAtomic.Store(on) // want "package-level atomic with no //simlint:processknob directive"
}

// legacyKnob is a declared process-global equivalence knob.
//
//simlint:processknob fixture knob mirroring ptx.legacyAccessPath; toggled only for equivalence tests
var legacyKnob atomic.Bool

// LegacyKnob is the CLI flag plumbing shape: allowed.
func LegacyKnob(on bool) { legacyKnob.Store(on) }

// SwapLegacyKnob is the test-safe set-and-restore helper: allowed.
func SwapLegacyKnob(on bool) func() {
	prev := legacyKnob.Swap(on)
	return func() { legacyKnob.Store(prev) }
}

// Backdoor writes the knob outside the sanctioned shapes.
func Backdoor() {
	legacyKnob.Store(true) // want "may be written only by its exported setter or Swap helper"
}

// lazyKnob's directive has no justification.
//
//simlint:processknob
var lazyKnob atomic.Bool // want "needs a justification"

// LazyKnob keeps lazyKnob referenced through its sanctioned setter.
func LazyKnob(on bool) { lazyKnob.Store(on) }

// plainKnob is declared as a knob but is not atomic-typed.
//
//simlint:processknob justified but mistyped
var plainKnob bool // want "must be atomic-typed"

// PlainKnob keeps plainKnob referenced; the write is an ordinary global
// write because the mistyped declaration is rejected from the knob set.
func PlainKnob(on bool) {
	plainKnob = on // want "writes package-level plainKnob outside init"
}
