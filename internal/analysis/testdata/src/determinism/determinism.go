// Package determinism is the simlint determinism fixture: every flagged
// form carries a want comment, and the unflagged forms pin the rule's
// allowed idioms so the analyzer cannot silently overreach.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clocks exercises the wall-clock rule.
func Clocks() time.Duration {
	start := time.Now()      // want "time.Now in a simulator package breaks run-to-run reproducibility"
	return time.Since(start) // want "time.Since in a simulator package"
}

// SanctionedClock pins both suppression placements: the line above and
// the same line.
func SanctionedClock() time.Duration {
	//simlint:wallclock stderr timing diagnostic, never reaches Stats
	start := time.Now()
	return time.Since(start) //simlint:wallclock stderr timing diagnostic
}

// GlobalRand draws from the process-global source.
func GlobalRand() int {
	return rand.Intn(8) // want "rand.Intn draws from the process-global source"
}

// SeededRand threads an explicit source: allowed.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

// LeakOrder appends map values in iteration order.
func LeakOrder(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "map iteration order leaks into out"
	}
	return out
}

// FloatAccumulate is order-dependent: float addition does not commute
// under rounding.
func FloatAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "map iteration order leaks into sum"
	}
	return sum
}

// IntAccumulate is exact and commutative: allowed.
func IntAccumulate(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// KeyedInsert writes through the ranged key: order-free, allowed.
func KeyedInsert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Prune deletes while ranging: allowed.
func Prune(m, dead map[int]bool) {
	for k := range m {
		delete(dead, k)
	}
}

// LocalState only writes loop-local and integer state: allowed.
func LocalState(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		s := 0
		for _, v := range vs {
			s += v
		}
		total += s
	}
	return total
}

// Justified collects then sorts, with the ordered justification.
func Justified(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//simlint:ordered values are sorted before emission
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// FormatMap renders a map directly.
func FormatMap(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want "fmt.Sprintf of a map renders in unstable order"
}

// FormatScalar formats plain values: allowed.
func FormatScalar(n int, m map[string]int) string {
	return fmt.Sprintf("%d of %d", n, len(m))
}
