// Package statcomplete is the simlint statcomplete fixture: a Stats
// struct whose counters are all surfaced by the annotated emitter —
// except one, the silently-dropped-counter bug the analyzer exists to
// catch.
package statcomplete

import "fmt"

type trace struct{ n int }

// Stats mirrors gpu.Stats: numeric counters plus a non-counter field.
type Stats struct {
	Cycles  uint64
	Issued  uint64
	Dropped uint64 // want "Stats.Dropped is accumulated but never referenced by a //simlint:emitter function"
	IPC     float64
	Trace   *trace // non-numeric: exempt
	hidden  int    // unexported: exempt
}

// Report is the sanctioned emitter; it surfaces every counter but
// Dropped.
//
//simlint:emitter
func Report(st *Stats) string {
	return fmt.Sprintf("%d cycles, %d issued, IPC %.2f", st.Cycles, st.Issued, st.IPC)
}

// Accumulate shows that reads outside emitters do not count.
func Accumulate(st *Stats) {
	st.Dropped++
	st.hidden++
	_ = st.Trace
}
