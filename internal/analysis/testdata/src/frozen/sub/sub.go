// Package sub pins the cross-package half of the frozen contract: a
// foreign package may not mutate a frozen type even through a function
// it annotates as a constructor — the constructor set is same-package
// only.
package sub

import "repro/internal/analysis/testdata/src/frozen"

// Rewrite claims ctor status from the wrong package.
//
//simlint:ctor
func Rewrite(p *frozen.Plan) {
	p.ID = 3 // want "Plan.ID is written by a foreign-package constructor"
}

// Mutate is a plain foreign mutation.
func Mutate(p *frozen.Plan) {
	p.ID = 4 // want "Plan.ID is written outside the //simlint:ctor constructor set"
}
