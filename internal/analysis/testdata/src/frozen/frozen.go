// Package frozen is the simlint frozen fixture: a frozen decoded
// artifact built by its constructor set, mutated post-construction in
// each flagged shape, and a thawed type pinning that the rule does not
// overreach.
package frozen

// Plan is a frozen decoded artifact, shaped like the real fragPlans
// and DInstr programs: built once, shared read-only afterwards.
//
//simlint:frozen
type Plan struct {
	ID    int
	Elems []int32
}

// NewPlan is in the constructor set: its writes are construction.
//
//simlint:ctor
func NewPlan(n int) *Plan {
	p := &Plan{ID: n}
	p.Elems = make([]int32, n)
	for i := range p.Elems {
		p.Elems[i] = int32(i)
	}
	fill(p, 1)
	return p
}

// fill is a constructor-set helper writing through a parameter, the
// decodeInstr shape.
//
//simlint:ctor
func fill(p *Plan, base int32) {
	for i := range p.Elems {
		p.Elems[i] += base
	}
}

// Mutate writes frozen fields post-construction.
func Mutate(p *Plan) {
	p.ID = 7       // want "Plan.ID is written outside the //simlint:ctor constructor set"
	p.Elems[0] = 1 // want "Plan.Elems is written outside the //simlint:ctor constructor set"
	p.ID++         // want "Plan.ID is written outside the //simlint:ctor constructor set"
}

// Rekey carries a justified escape.
func Rekey(p *Plan) {
	p.ID = 9 //simlint:ok fixture: demonstrates the justified escape
}

// Read-only use and whole-value copies are allowed.
func Sum(p *Plan) int32 {
	var s int32
	for _, e := range p.Elems {
		s += e
	}
	return s + int32(p.ID)
}

// Scratch is not frozen: writes anywhere are allowed.
type Scratch struct{ N int }

// Bump mutates the thawed type freely.
func Bump(s *Scratch) { s.N++ }
