// Package statnoemitter pins the statcomplete misconfiguration
// diagnostic: counters exist but no function is annotated as the
// report surface.
package statnoemitter

type Stats struct {
	Cycles uint64 // want "no //simlint:emitter function exists"
	Issued uint64
}

// Sum reads the counters but is not annotated.
func Sum(st *Stats) uint64 { return st.Cycles + st.Issued }
