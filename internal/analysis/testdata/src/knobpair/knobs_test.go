package knobpair

import "testing"

func TestKnobs(t *testing.T) {
	LegacyGood(true)
	defer LegacyGood(false)
	LegacyHalfTested(true)
	for _, on := range []bool{false, true} {
		LegacySwept(on)
	}
	if !legacyGood || !legacyHalf || scanNever {
		t.Fatal("knob state")
	}
}
