// Package knobpair is the simlint knobpair fixture: equivalence knobs
// in every coverage state, plus name-shaped functions that are not
// knobs.
package knobpair

var legacyGood, legacyHalf, scanNever, legacySwept bool

// LegacyGood is exercised with both positions: allowed.
func LegacyGood(on bool) { legacyGood = on }

// LegacyHalfTested is only ever switched on.
func LegacyHalfTested(on bool) { legacyHalf = on } // want "never tested with false"

// ScanNeverTested has no test references at all.
func ScanNeverTested(on bool) { scanNever = on } // want "never tested with either position"

// LegacySwept is toggled through a sweep variable, which counts as both
// positions: allowed.
func LegacySwept(on bool) { legacySwept = on }

// ScanPolicy has the name shape but not the bool-setter signature: not
// a knob.
func ScanPolicy(name string) string { return name }

// legacyPrivate is unexported: not part of the contract.
func legacyPrivate(on bool) { legacyGood = on }

// Use keeps the unexported knob referenced.
func Use() { legacyPrivate(false) }
