// Package guardedby is the simlint guardedby fixture: annotated fields
// accessed under every lock-scope shape the syntactic tracker models,
// plus the malformed-annotation diagnostics.
package guardedby

import "sync"

// Pool is concurrency-shared state with mu-guarded fields.
type Pool struct {
	mu sync.Mutex
	//simlint:guardedby mu
	items []int
	//simlint:guardedby mu
	next int

	done chan struct{} // unguarded: accessible anywhere
}

// Push locks on every path: allowed.
func (p *Pool) Push(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.items = append(p.items, v)
	p.next++
}

// Pop pairs Lock/Unlock explicitly: held between them, released after.
func (p *Pool) Pop() int {
	p.mu.Lock()
	v := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	p.mu.Unlock()
	_ = v
	return p.next // want "Pool.next is guarded by mu but accessed without p.mu.Lock"
}

// Racy reads without the lock.
func (p *Pool) Racy() int {
	return len(p.items) // want "Pool.items is guarded by mu"
}

// BranchLock acquires the lock on one path only: the join is unlocked.
func (p *Pool) BranchLock(cond bool) int {
	if cond {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.next // allowed: held on this path
	}
	return p.next // want "Pool.next is guarded by mu"
}

// Transfer locks one pool and touches another: the base must match.
func Transfer(a, b *Pool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	b.next++ // want "Pool.next is guarded by mu but accessed without b.mu.Lock"
}

// Leak returns a closure that outlives the critical section: function
// literals start with an empty lock set.
func (p *Pool) Leak() func() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return func() int { return p.next } // want "Pool.next is guarded by mu"
}

// Close touches only unguarded fields without the lock: allowed.
func (p *Pool) Close() { close(p.done) }

// SnapshotLen carries a justified lock-free read.
func (p *Pool) SnapshotLen() int {
	return len(p.items) //simlint:ok fixture: demonstrates the justified escape
}

// RW is guarded by a RWMutex; RLock scopes count as held.
type RW struct {
	mu sync.RWMutex
	//simlint:guardedby mu
	val int
}

// Get reads under RLock: allowed.
func (r *RW) Get() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// Peek skips the lock.
func (r *RW) Peek() int {
	return r.val // want "RW.val is guarded by mu"
}

// Bare has a directive with no mutex name.
type Bare struct {
	//simlint:guardedby
	a int // want "needs the mutex field name"
}

// Odd names a sibling that is not a mutex.
type Odd struct {
	gate int
	//simlint:guardedby gate
	v int // want "does not name a sync.Mutex/RWMutex field of Odd"
}
