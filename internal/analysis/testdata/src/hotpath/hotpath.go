// Package hotpath is the simlint hotpath fixture: annotated functions
// exhibit each flagged allocation shape and each sanctioned scratch
// idiom; unannotated functions show the analyzer keeps out of cold
// paths entirely.
package hotpath

type point struct{ x, y int }

type summer interface{ sum() int }

func (p *point) sum() int { return p.x + p.y }

func consume(s summer) int { return s.sum() }

//simlint:hotpath
func PerIterationAllocs(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		p := &point{i, i}    // want "composite literal escapes to the heap each iteration"
		s := []int{i}        // want "literal allocates each iteration"
		b := make([]byte, 8) // want "make inside a loop allocates each iteration"
		q := new(point)      // want "new inside a loop allocates each iteration"
		total += p.x + s[0] + len(b) + q.y
	}
	return total
}

//simlint:hotpath
func GrowsFromZero(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append grows out from zero capacity inside a loop"
	}
	return out
}

//simlint:hotpath
func Boxes(xs []point) int {
	total := 0
	for i := range xs {
		total += consume(&xs[i]) // want "argument boxes \\*.*point into .*summer"
		s := summer(&xs[i])      // want "conversion to .*summer boxes its operand"
		total += s.sum()
	}
	return total
}

//simlint:hotpath
func Closes(xs []int) func() int {
	total := 0
	f := func() int { return total } // want "closure captures total"
	for _, x := range xs {
		total += x
	}
	return f
}

// ScratchAppend reuses the caller's buffer through a reslice: the
// sanctioned scratch idiom, allowed.
//
//simlint:hotpath
func ScratchAppend(xs, buf []int) []int {
	out := buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Preallocated sizes its slice up front: allowed.
//
//simlint:hotpath
func Preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// JustifiedAlloc carries an explicit ok justification.
//
//simlint:hotpath
func JustifiedAlloc(n int) []*point {
	out := make([]*point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &point{i, i}) //simlint:ok launch boundary, runs once per kernel not per cycle
	}
	return out
}

// subcoreOrder is a miniature incremental issue-order structure; the
// update below shows the flagged shape for order-maintenance code:
// materializing a fresh candidate list every cycle instead of reslicing
// the sub-core's scratch buffer.
type subcoreOrder struct {
	lastIssue []uint64
}

//simlint:hotpath
func (s *subcoreOrder) RebuildEachCycle(cycles int) int {
	issued := 0
	for c := 0; c < cycles; c++ {
		var order []int // the incremental order exists to avoid this
		for slot, last := range s.lastIssue {
			if last == 0 {
				order = append(order, slot) // want "append grows order from zero capacity inside a loop"
			}
		}
		if len(order) > 0 {
			issued++
		}
	}
	return issued
}

// TouchOrder keeps the order fixture referenced.
func TouchOrder() int { return (&subcoreOrder{lastIssue: []uint64{0, 1}}).RebuildEachCycle(2) }

// coldPath is unannotated: the same shapes draw no diagnostics.
func coldPath(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Touch keeps the cold path referenced.
func Touch() []int { return coldPath(3) }
