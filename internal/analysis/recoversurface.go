package analysis

import (
	"go/ast"
	"go/token"
)

// The recoversurface analyzer. The fault-tolerance layer's contract is
// that a panic anywhere in the engine surfaces as an error carrying the
// identity of the failing unit — which experiment, which data point —
// so a keep-going sweep can annotate the right cell and an operator can
// find the culprit in a thousand-point run. A bare recover() that drops
// the value, or wraps it without identity ("panic: %v"), silently
// destroys that trail.
//
// In every non-test file it requires each recover() call to be:
//
//  1. bound and checked in the canonical shape
//
//     if r := recover(); r != nil { ... }
//
//  2. converted, inside that if-body, by a fmt.Errorf call whose
//     arguments include the recovered value AND at least one
//     non-literal identity argument (an experiment ID, a point index —
//     anything beyond string constants).
//
// A sanctioned exception — a recover site that genuinely has no
// identity to carry, or re-panics — carries //simlint:ok <why> on or
// above the recover line. Test files may recover freely; they are the
// crash harnesses.
var RecoversurfaceAnalyzer = &Analyzer{
	Name: "recoversurface",
	Doc:  "every recover() must surface the panic as an error carrying the failing unit's identity",
	Run:  runRecoversurface,
}

func runRecoversurface(pass *Pass) {
	for _, f := range pass.Files {
		dirs := FileDirectives(pass.Fset, f)
		// surfaced maps the positions of recover() calls that sit in the
		// canonical if-shape to whether their body converts properly.
		surfaced := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			r, call, ok := recoverBinding(ifs)
			if !ok {
				return true
			}
			surfaced[call.Pos()] = bodySurfaces(pass, ifs.Body, r)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRecoverCall(call) {
				return true
			}
			if suppressed(dirs, pass.Fset, call.Pos(), "ok") {
				return true
			}
			converted, canonical := surfaced[call.Pos()]
			switch {
			case !canonical:
				pass.Reportf(call.Pos(), "recover() must bind its value in `if r := recover(); r != nil` and surface it as an error (or carry //simlint:ok <why>)")
			case !converted:
				pass.Reportf(call.Pos(), "recovered panic must flow into fmt.Errorf with the recovered value and a non-literal identity argument (experiment ID, point index, ...), or carry //simlint:ok <why>")
			}
			return true
		})
	}
}

// recoverBinding matches `if r := recover(); r != nil` and returns the
// bound identifier and the recover call.
func recoverBinding(ifs *ast.IfStmt) (*ast.Ident, *ast.CallExpr, bool) {
	asg, ok := ifs.Init.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil, nil, false
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isRecoverCall(call) {
		return nil, nil, false
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return nil, nil, false
	}
	x, xok := cond.X.(*ast.Ident)
	y, yok := cond.Y.(*ast.Ident)
	if !xok || !yok {
		return nil, nil, false
	}
	if !(x.Name == id.Name && y.Name == "nil") && !(y.Name == id.Name && x.Name == "nil") {
		return nil, nil, false
	}
	return id, call, true
}

// isRecoverCall reports whether the call is the recover() builtin.
func isRecoverCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "recover" && len(call.Args) == 0
}

// bodySurfaces reports whether the if-body contains a fmt.Errorf call
// whose arguments include the recovered value r and at least one other
// non-literal argument — the identity the error must carry.
func bodySurfaces(pass *Pass, body *ast.BlockStmt, r *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" || selectorPackage(pass, sel) != "fmt" {
			return true
		}
		usesR, hasIdentity := false, false
		for i, arg := range call.Args {
			if i == 0 {
				continue // the format string
			}
			switch a := arg.(type) {
			case *ast.Ident:
				if a.Name == r.Name {
					usesR = true
					continue
				}
				hasIdentity = true
			case *ast.BasicLit:
				// A literal is not identity: it names no failing unit.
			default:
				hasIdentity = true
			}
		}
		if usesR && hasIdentity {
			found = true
		}
		return !found
	})
	return found
}
