package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The guardedby analyzer. A field annotated
//
//	//simlint:guardedby mu
//
// (where mu is a sync.Mutex or sync.RWMutex field of the same struct)
// may be read or written only at points where the matching mutex is
// syntactically held: an earlier x.mu.Lock() in the same or an
// enclosing block, not yet released by x.mu.Unlock(); defer
// x.mu.Unlock() holds to function end. The base expression must match
// textually — s.mu.Lock() guards s.results, not t.results — and
// function literals start with an empty lock set (they run later, on
// some other goroutine's schedule).
//
// The tracking is deliberately syntactic and strict ("every path"):
// a lock acquired inside a branch does not count after the branch
// joins, and a conditional Unlock is assumed to have released. Code
// that is correct for a subtler reason carries //simlint:ok <why> on
// the access line.
var GuardedbyAnalyzer = &Analyzer{
	Name:      "guardedby",
	Doc:       "require //simlint:guardedby fields to be accessed only under the named mutex",
	RunModule: runGuardedby,
}

// guardedField records one annotation: the field and its mutex sibling.
type guardedField struct {
	mu string // mutex field name within the same struct
}

func runGuardedby(m *Module, report func(Diagnostic)) {
	// guarded["pkgpath.Type.field"] -> mutex field name.
	guarded := map[string]guardedField{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			dirs := FileDirectives(pkg.Fset, f)
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectGuarded(pkg, dirs, ts.Name.Name, st, guarded, report)
				}
			}
		}
	}
	if len(guarded) == 0 {
		return
	}

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			dirs := FileDirectives(pkg.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &lockWalker{pkg: pkg, dirs: dirs, guarded: guarded, report: report}
				w.block(fd.Body, map[string]bool{})
			}
		}
	}
}

// collectGuarded records the annotated fields of one struct and
// validates each annotation against its sibling mutex.
func collectGuarded(pkg *Package, dirs map[int][]Directive, typeName string, st *ast.StructType, guarded map[string]guardedField, report func(Diagnostic)) {
	fieldNames := map[string]ast.Expr{}
	for _, fl := range st.Fields.List {
		for _, name := range fl.Names {
			fieldNames[name.Name] = fl.Type
		}
	}
	for _, fl := range st.Fields.List {
		for _, name := range fl.Names {
			d, ok := fieldLineDirective(dirs, pkg.Fset, name, "guardedby")
			if !ok {
				continue
			}
			if d.Arg == "" {
				report(Diagnostic{
					Pos:      pkg.Fset.Position(name.Pos()),
					Analyzer: "guardedby",
					Message:  "//simlint:guardedby needs the mutex field name: //simlint:guardedby mu",
				})
				continue
			}
			muType, ok := fieldNames[d.Arg]
			if !ok || !isMutexType(pkg, muType) {
				report(Diagnostic{
					Pos:      pkg.Fset.Position(name.Pos()),
					Analyzer: "guardedby",
					Message:  "//simlint:guardedby " + d.Arg + " does not name a sync.Mutex/RWMutex field of " + typeName,
				})
				continue
			}
			guarded[pkg.Path+"."+typeName+"."+name.Name] = guardedField{mu: d.Arg}
		}
	}
}

// fieldLineDirective finds a directive on the field's line or the line
// directly above it.
func fieldLineDirective(dirs map[int][]Directive, fset *token.FileSet, name *ast.Ident, want string) (Directive, bool) {
	line := fset.Position(name.Pos()).Line
	for _, d := range dirs[line] {
		if d.Name == want {
			return d, true
		}
	}
	for _, d := range dirs[line-1] {
		if d.Name == want {
			return d, true
		}
	}
	return Directive{}, false
}

func isMutexType(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockWalker tracks the syntactically held lock set through one
// function body. Keys are rendered lock expressions ("s.mu").
type lockWalker struct {
	pkg     *Package
	dirs    map[int][]Directive
	guarded map[string]guardedField
	report  func(Diagnostic)
}

// block processes the statements of a block in order, mutating held;
// nested control-flow bodies get a copy, so locks acquired inside a
// branch do not leak past the join, and a branch's Unlock is modeled by
// conservatively removing the lock at the join as well (handled by the
// copy: release inside a branch only affects the branch — strictness
// comes from accesses being checked against the set in effect at the
// access point).
func (w *lockWalker) block(b *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range b.List {
		w.stmt(stmt, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockCallKey(s.X); ok {
			switch op {
			case "Lock", "RLock":
				w.checkExpr(s.X, held) // the receiver chain itself may touch guarded fields
				held[key] = true
				return
			case "Unlock", "RUnlock":
				delete(held, key)
				return
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if _, op, ok := lockCallKey(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // defer x.mu.Unlock(): held to function end; no change
		}
		w.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.block(s.Body, cloneSet(held))
		if s.Else != nil {
			w.stmt(s.Else, cloneSet(held))
		}
	case *ast.ForStmt:
		inner := cloneSet(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, inner)
		}
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.block(s.Body, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.block(s.Body, cloneSet(held))
	case *ast.BlockStmt:
		w.block(s, cloneSet(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := cloneSet(held)
			for _, e := range cc.List {
				w.checkExpr(e, inner)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := cloneSet(held)
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := cloneSet(held)
			if cc.Comm != nil {
				w.stmt(cc.Comm, inner)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.GoStmt:
		w.checkExpr(s.Call, map[string]bool{})
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// checkExpr scans an expression for guarded-field selections and
// function literals. Literals are checked with an empty lock set: they
// execute later, when the enclosing critical section may be over.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			w.checkSelector(n, held)
		}
		return true
	})
}

func (w *lockWalker) checkSelector(se *ast.SelectorExpr, held map[string]bool) {
	sel := w.pkg.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	recv := sel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + se.Sel.Name
	gf, ok := w.guarded[key]
	if !ok {
		return
	}
	base := exprKey(se.X)
	if base != "" && held[base+"."+gf.mu] {
		return
	}
	if suppressed(w.dirs, w.pkg.Fset, se.Pos(), "ok") {
		return
	}
	w.report(Diagnostic{
		Pos:      w.pkg.Fset.Position(se.Pos()),
		Analyzer: "guardedby",
		Message: named.Obj().Name() + "." + se.Sel.Name + " is guarded by " + gf.mu +
			" but accessed without " + renderBase(base) + gf.mu + ".Lock() held on every path",
	})
}

func renderBase(base string) string {
	if base == "" {
		return ""
	}
	return base + "."
}

// lockCallKey matches x.mu.Lock()/Unlock()/RLock()/RUnlock() and
// returns the rendered lock key ("x.mu") and the operation.
func lockCallKey(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// exprKey renders a simple base expression (ident, selector chain,
// pointer deref) to a comparable string; "" for anything else.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	}
	return ""
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
