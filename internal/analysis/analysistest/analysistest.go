// Package analysistest runs a simlint analyzer over a fixture package
// and checks its diagnostics against the fixture's expectations, in the
// shape of golang.org/x/tools/go/analysis/analysistest: a comment
//
//	// want "regexp"
//
// on a line means the analyzer must report a diagnostic on that line
// whose message matches the regexp; every diagnostic must be wanted and
// every want must be matched. Multiple `want` clauses may share a line.
//
// Fixture packages live under internal/analysis/testdata/src/ — the go
// tool ignores testdata directories during ./... expansion, so fixtures
// stay out of builds and repo-wide sweeps, while explicit paths remain
// listable for the loader.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantClauseRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package at pattern (relative to dir, the module
// root) and checks the analyzer's diagnostics against its want
// comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pattern string) {
	t.Helper()
	m, err := analysis.Load(dir, pattern)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pattern, err)
	}
	wants := collectWants(t, m)
	diags := analysis.RunIgnoringScope(m, a)

	for _, d := range diags {
		if w := matchWant(wants, d); w == nil {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, m *analysis.Module) []*want {
	t.Helper()
	var wants []*want
	addFile := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				match := wantRE.FindStringSubmatch(c.Text)
				if match == nil {
					continue
				}
				clauses := wantClauseRE.FindAllStringSubmatch(match[1], -1)
				if clauses == nil {
					t.Fatalf("%s: malformed want comment %q", m.Fset.Position(c.Pos()), c.Text)
				}
				pos := m.Fset.Position(c.Pos())
				for _, cl := range clauses {
					re, err := regexp.Compile(cl[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			addFile(f)
		}
		for _, f := range pkg.TestFiles {
			addFile(f)
		}
	}
	return wants
}

func matchWant(wants []*want, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return w
		}
	}
	return nil
}

// Diagnose is a debugging aid: it formats the diagnostics a fixture
// run produced, for failure messages.
func Diagnose(diags []analysis.Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += fmt.Sprintf("  %s\n", d)
	}
	return s
}
