package analysis

import (
	"go/ast"
	"regexp"
	"slices"
	"sort"
	"strings"
)

// The knobpair analyzer. Every exported Legacy*/Scan* function taking a
// single bool is an equivalence knob: it swaps a legacy implementation
// back in so tests can assert the optimized path is bit-identical
// (ptx.LegacyAccessPath, ptx.LegacyFragmentPath, gpu.ScanScheduler).
// The 4-level equivalence contract is only honest while both positions
// of every knob stay exercised, so this analyzer requires each knob to
// be called from test files with true and with false.
//
// Matching is intentionally syntactic on the test side: any
// `pkg.Knob(lit)` or in-package `Knob(lit)` call in a _test.go file
// counts, and a non-literal argument (a sweep variable such as
// `for _, legacy := range []bool{false, true}`) counts as both
// positions. Knob definitions are collected from packages under
// internal/ — facade re-exports (tcgpu) delegate to the internal knob
// and are not separate contracts.
var KnobpairAnalyzer = &Analyzer{
	Name:      "knobpair",
	Doc:       "require tests to exercise every Legacy*/Scan* equivalence knob in both positions",
	RunModule: runKnobpair,
}

var knobNameRE = regexp.MustCompile(`^(Legacy|Scan)[A-Z]`)

type knobUse struct{ onTrue, onFalse bool }

func runKnobpair(m *Module, report func(Diagnostic)) {
	type knob struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	knobs := map[string]knob{}
	for _, pkg := range m.Pkgs {
		if !internalPackage(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && isKnobDecl(fd) {
					knobs[fd.Name.Name] = knob{pkg, fd}
				}
			}
		}
	}
	if len(knobs) == 0 {
		return
	}

	uses := map[string]*knobUse{}
	for name := range knobs {
		uses[name] = &knobUse{}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				var name string
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				case *ast.Ident:
					name = fun.Name
				default:
					return true
				}
				// The Swap helper (SwapLegacyAccessPath — globalmut's
				// sanctioned test shape) exercises the knob it wraps.
				name = strings.TrimPrefix(name, "Swap")
				u, ok := uses[name]
				if !ok {
					return true
				}
				switch arg := ast.Unparen(call.Args[0]).(type) {
				case *ast.Ident:
					switch arg.Name {
					case "true":
						u.onTrue = true
					case "false":
						u.onFalse = true
					default:
						// A sweep variable: assumed to take both values.
						u.onTrue, u.onFalse = true, true
					}
				default:
					u.onTrue, u.onFalse = true, true
				}
				return true
			})
		}
	}

	names := make([]string, 0, len(knobs))
	for name := range knobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k, u := knobs[name], uses[name]
		missing := ""
		switch {
		case !u.onTrue && !u.onFalse:
			missing = "either position"
		case !u.onTrue:
			missing = "true"
		case !u.onFalse:
			missing = "false"
		default:
			continue
		}
		report(Diagnostic{
			Pos:      m.Fset.Position(k.decl.Name.Pos()),
			Analyzer: "knobpair",
			Message: "equivalence knob " + name + " is never tested with " + missing +
				"; the legacy/optimized equivalence contract needs both settings exercised",
		})
	}
}

// isKnobDecl matches exported top-level `func (Legacy|Scan)X(on bool)`.
func isKnobDecl(fd *ast.FuncDecl) bool {
	if fd.Recv != nil || !knobNameRE.MatchString(fd.Name.Name) {
		return false
	}
	ft := fd.Type
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	if len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		return false
	}
	id, ok := ft.Params.List[0].Type.(*ast.Ident)
	return ok && id.Name == "bool"
}

// internalPackage reports whether the import path is under internal/
// (or is a fixture package, which has no internal element but is only
// ever loaded explicitly by the tests).
func internalPackage(path string) bool {
	return slices.Contains(strings.Split(path, "/"), "internal") ||
		slices.Contains(strings.Split(path, "/"), "testdata")
}
