package analysis

import (
	"go/ast"
	"go/types"
)

// The statcomplete analyzer. The classic silently-dropped-counter bug:
// a field is added to gpu.Stats, accumulated carefully in the
// simulator, and never surfaces in any report — the number exists and
// nobody can see it. This analyzer requires every exported numeric
// field of a struct named Stats in a simulator package to be selected
// somewhere inside a function annotated //simlint:emitter (the
// sanctioned table/report surface: cmd/tcsim's stats block, the
// experiments table builders). Non-numeric fields (Trace) are not
// counters and are exempt.
var StatcompleteAnalyzer = &Analyzer{
	Name:      "statcomplete",
	Doc:       "require every numeric Stats counter to surface in a //simlint:emitter function",
	RunModule: runStatcomplete,
}

func runStatcomplete(m *Module, report func(Diagnostic)) {
	type statField struct {
		pkgPath string
		name    string
		pos     Diagnostic
	}
	var fields []statField
	for _, pkg := range m.Pkgs {
		if !InSimulatorScope(pkg.Path) && !internalPackage(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Stats" {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fl := range st.Fields.List {
					t := pkg.Info.TypeOf(fl.Type)
					if t == nil {
						continue
					}
					b, ok := t.Underlying().(*types.Basic)
					if !ok || b.Info()&types.IsNumeric == 0 {
						continue
					}
					for _, name := range fl.Names {
						if !name.IsExported() {
							continue
						}
						fields = append(fields, statField{
							pkgPath: pkg.Path,
							name:    name.Name,
							pos: Diagnostic{
								Pos:      m.Fset.Position(name.Pos()),
								Analyzer: "statcomplete",
							},
						})
					}
				}
				return true
			})
		}
	}
	if len(fields) == 0 {
		return
	}

	// Emitted[pkgPath+"."+field] marks fields selected in any
	// //simlint:emitter function, matched by package path and struct
	// name (object identity differs between the source-checked defining
	// package and export-data importers).
	emitted := map[string]bool{}
	sawEmitter := false
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			dirs := FileDirectives(m.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcDirective(dirs, m.Fset, fd, "emitter") {
					continue
				}
				sawEmitter = true
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					se, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					sel := pkg.Info.Selections[se]
					if sel == nil || sel.Kind() != types.FieldVal {
						return true
					}
					recv := sel.Recv()
					if p, ok := recv.(*types.Pointer); ok {
						recv = p.Elem()
					}
					named, ok := recv.(*types.Named)
					if !ok || named.Obj().Name() != "Stats" || named.Obj().Pkg() == nil {
						return true
					}
					emitted[named.Obj().Pkg().Path()+"."+se.Sel.Name] = true
					return true
				})
			}
		}
	}

	for _, f := range fields {
		if !sawEmitter {
			d := f.pos
			d.Message = "Stats has numeric counters but no //simlint:emitter function exists; annotate the report surface"
			report(d)
			return // one diagnostic, not one per field
		}
		if !emitted[f.pkgPath+"."+f.name] {
			d := f.pos
			d.Message = "Stats." + f.name + " is accumulated but never referenced by a //simlint:emitter function; the counter is silently dropped from every report"
			report(d)
		}
	}
}
