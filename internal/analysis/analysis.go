// Package analysis is simlint's static-analysis core: a small,
// stdlib-only framework in the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic), plus the eight analyzers that turn the
// simulator's reproducibility, concurrency and fault-tolerance
// conventions into mechanically enforced invariants:
//
//   - determinism:  no wall clocks, unseeded randomness, map-order leaks
//     or map formatting in simulator packages (the purity the
//     content-addressed result cache and sharded sweeps depend on)
//   - hotpath:      no per-iteration allocations in functions annotated
//     //simlint:hotpath (the per-cycle issue/execute/coalesce/fragment
//     paths of PRs 2-5)
//   - knobpair:     every exported Legacy*/Scan* equivalence knob is
//     exercised by tests in both positions
//   - statcomplete: every numeric gpu.Stats counter reaches a
//     //simlint:emitter report function
//   - globalmut:    simulator packages do not write package-level state
//     outside init; process-global equivalence knobs are atomic,
//     declared with //simlint:processknob, and written only through
//     their setter/Swap helper (tests must use the Swap helper)
//   - frozen:       //simlint:frozen types (decoded DInstr programs,
//     fragPlans, wmma mappings) are field-written only in their
//     same-package //simlint:ctor constructor set — the shared-read-only
//     contract the concurrent serving path depends on
//   - guardedby:    //simlint:guardedby mu fields are accessed only
//     under a syntactic mu.Lock() / defer mu.Unlock() scope
//   - recoversurface: every recover() converts the panic into an error
//     carrying the failing unit's identity (experiment ID, point index)
//     — the trail the keep-going sweep and its operators depend on
//
// The framework is intentionally dependency-free: the container pins the
// module graph, so the x/tools analysis driver is reimplemented here on
// go/ast + go/types, with package loading via `go list -export` (see
// load.go). Directives use the grammar documented in DESIGN.md
// ("Enforced invariants" and "Concurrency invariants"):
//
//	//simlint:hotpath
//	//simlint:emitter
//	//simlint:frozen
//	//simlint:ctor
//	//simlint:guardedby <mutex field>
//	//simlint:processknob <justification>
//	//simlint:ordered <justification>
//	//simlint:wallclock <justification>
//	//simlint:ok <justification>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one simlint check. Run inspects a single package;
// RunModule inspects the whole module at once (for cross-package
// contracts like knobpair and statcomplete). Either may be nil.
type Analyzer struct {
	Name string
	Doc  string

	// Scope, when non-nil, restricts Run to packages it accepts. The
	// fixture harness bypasses it so testdata packages are analyzed
	// regardless of import path.
	Scope func(pkgPath string) bool

	Run       func(*Pass)
	RunModule func(*Module, func(Diagnostic))
}

// Pass carries one package through one analyzer.
type Pass struct {
	*Package
	Analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer, HotpathAnalyzer, KnobpairAnalyzer, StatcompleteAnalyzer,
		GlobalmutAnalyzer, FrozenAnalyzer, GuardedbyAnalyzer, RecoversurfaceAnalyzer,
	}
}

// RunSuite runs the analyzers over every package of the module
// (honouring each analyzer's Scope) and returns the findings sorted by
// position.
func RunSuite(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range m.Pkgs {
				if a.Scope != nil && !a.Scope(pkg.Path) {
					continue
				}
				a.Run(&Pass{Package: pkg, Analyzer: a, report: report})
			}
		}
		if a.RunModule != nil {
			a.RunModule(m, report)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// RunIgnoringScope runs a single analyzer over every package of m,
// bypassing its Scope. The fixture harness uses it so testdata packages
// are analyzed despite their import paths.
func RunIgnoringScope(m *Module, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	if a.Run != nil {
		for _, pkg := range m.Pkgs {
			a.Run(&Pass{Package: pkg, Analyzer: a, report: report})
		}
	}
	if a.RunModule != nil {
		a.RunModule(m, report)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// simulatorPackages is the determinism contract's scope: the packages
// whose outputs feed Stats, tables and the (planned) content-addressed
// result cache, per ISSUE 6.
var simulatorPackages = map[string]bool{
	"repro/internal/gpu":         true,
	"repro/internal/ptx":         true,
	"repro/internal/mem":         true,
	"repro/internal/wmma":        true,
	"repro/internal/stats":       true,
	"repro/internal/experiments": true,
	// The serving cache hands stored bytes straight back to clients, so
	// it carries the same determinism burden as the engine that
	// produced them.
	"repro/internal/servecache": true,
}

// InSimulatorScope reports whether the determinism/statcomplete
// contracts apply to the package.
func InSimulatorScope(pkgPath string) bool { return simulatorPackages[pkgPath] }

// fixturePath reports whether the import path is an analyzer fixture
// package. Fixtures are invisible to ./... sweeps (the go tool skips
// testdata), but the CI fixture-hygiene step runs cmd/simlint over them
// explicitly, so the scoped analyzers must accept them.
func fixturePath(pkgPath string) bool {
	return strings.Contains(pkgPath, "/testdata/src/")
}

// simulatorOrFixture is the scope of the simulator-package contracts
// (determinism, globalmut), extended to explicitly listed fixtures.
func simulatorOrFixture(pkgPath string) bool {
	return InSimulatorScope(pkgPath) || fixturePath(pkgPath)
}

// Directive is one parsed //simlint: comment.
type Directive struct {
	Name string // "hotpath", "ordered", "wallclock", "emitter", "ok"
	Arg  string // justification text, may be empty
	Line int
}

// FileDirectives extracts every //simlint: directive of a file, keyed by
// the line the comment sits on.
func FileDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := map[int][]Directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//simlint:")
			if !ok {
				continue
			}
			name, arg, _ := strings.Cut(text, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], Directive{Name: name, Arg: strings.TrimSpace(arg), Line: line})
		}
	}
	return out
}

// suppressed reports whether a directive of the given name sits on the
// node's line or the line directly above it — the two placements the
// grammar allows for statement-level justification.
func suppressed(dirs map[int][]Directive, fset *token.FileSet, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, d := range dirs[line] {
		if d.Name == name {
			return true
		}
	}
	for _, d := range dirs[line-1] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// funcDirective reports whether a function declaration carries the
// directive, either in its doc comment or on the line above the decl.
func funcDirective(dirs map[int][]Directive, fset *token.FileSet, fd *ast.FuncDecl, name string) bool {
	declLine := fset.Position(fd.Pos()).Line
	first := declLine - 1
	if fd.Doc != nil {
		first = fset.Position(fd.Doc.Pos()).Line
	}
	for line := first; line < declLine; line++ {
		for _, d := range dirs[line] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}
