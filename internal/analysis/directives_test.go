package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

//simlint:hotpath
func Hot() {}

// Warm is documented at length.
//
//simlint:ordered keys are sorted downstream
func Warm() {
	x := 1 //simlint:wallclock trailing justification
	_ = x
}

// plain comment, not a directive
// simlint:ordered (space after // — not a directive either)
func Cold() {}
`

func parseDirectiveSrc(t *testing.T) (*token.FileSet, *ast.File, map[int][]Directive) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, FileDirectives(fset, f)
}

func findFunc(f *ast.File, name string) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestFileDirectives(t *testing.T) {
	_, _, dirs := parseDirectiveSrc(t)

	var got []Directive
	for _, ds := range dirs {
		got = append(got, ds...)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d directives, want 3: %+v", len(got), got)
	}
	byName := map[string]Directive{}
	for _, d := range got {
		byName[d.Name] = d
	}
	if d := byName["ordered"]; d.Arg != "keys are sorted downstream" {
		t.Errorf("ordered arg = %q", d.Arg)
	}
	if d := byName["wallclock"]; d.Arg != "trailing justification" {
		t.Errorf("wallclock arg = %q", d.Arg)
	}
	if d := byName["hotpath"]; d.Arg != "" {
		t.Errorf("hotpath arg = %q", d.Arg)
	}
}

func TestFuncDirective(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	want := map[string]struct {
		directive string
		has       bool
	}{
		"Hot":  {"hotpath", true},  // directly above the decl
		"Warm": {"ordered", true},  // at the end of a multi-line doc comment
		"Cold": {"ordered", false}, // near-miss spellings are not directives
	}
	for name, w := range want {
		fd := findFunc(f, name)
		if fd == nil {
			t.Fatalf("func %s not found", name)
		}
		if got := funcDirective(dirs, fset, fd, w.directive); got != w.has {
			t.Errorf("funcDirective(%s, %q) = %v, want %v", name, w.directive, got, w.has)
		}
	}
}

func TestSuppressed(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	stmt := findFunc(f, "Warm").Body.List[0] // x := 1 with the trailing wallclock comment
	if !suppressed(dirs, fset, stmt.Pos(), "wallclock") {
		t.Error("same-line wallclock directive not recognized")
	}
	if suppressed(dirs, fset, stmt.Pos(), "ordered") {
		t.Error("unrelated directive accepted as suppression")
	}
}
