package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

//simlint:hotpath
func Hot() {}

// Warm is documented at length.
//
//simlint:ordered keys are sorted downstream
func Warm() {
	x := 1 //simlint:wallclock trailing justification
	_ = x
}

// plain comment, not a directive
// simlint:ordered (space after // — not a directive either)
func Cold() {}

// Frozen is documented.
//
//simlint:frozen
type Frozen struct {
	mu int
	//simlint:guardedby mu
	guarded int
	plain   int
}

type Thawed struct{ n int }

//simlint:processknob equivalence knob justification
var knob int

var bare int
`

func parseDirectiveSrc(t *testing.T) (*token.FileSet, *ast.File, map[int][]Directive) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, FileDirectives(fset, f)
}

func findFunc(f *ast.File, name string) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestFileDirectives(t *testing.T) {
	_, _, dirs := parseDirectiveSrc(t)

	var got []Directive
	for _, ds := range dirs {
		got = append(got, ds...)
	}
	if len(got) != 6 {
		t.Fatalf("parsed %d directives, want 6: %+v", len(got), got)
	}
	byName := map[string]Directive{}
	for _, d := range got {
		byName[d.Name] = d
	}
	if d := byName["ordered"]; d.Arg != "keys are sorted downstream" {
		t.Errorf("ordered arg = %q", d.Arg)
	}
	if d := byName["wallclock"]; d.Arg != "trailing justification" {
		t.Errorf("wallclock arg = %q", d.Arg)
	}
	if d := byName["hotpath"]; d.Arg != "" {
		t.Errorf("hotpath arg = %q", d.Arg)
	}
}

func TestFuncDirective(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	want := map[string]struct {
		directive string
		has       bool
	}{
		"Hot":  {"hotpath", true},  // directly above the decl
		"Warm": {"ordered", true},  // at the end of a multi-line doc comment
		"Cold": {"ordered", false}, // near-miss spellings are not directives
	}
	for name, w := range want {
		fd := findFunc(f, name)
		if fd == nil {
			t.Fatalf("func %s not found", name)
		}
		if got := funcDirective(dirs, fset, fd, w.directive); got != w.has {
			t.Errorf("funcDirective(%s, %q) = %v, want %v", name, w.directive, got, w.has)
		}
	}
}

// findType returns the GenDecl/TypeSpec pair of a named type.
func findType(f *ast.File, name string) (*ast.GenDecl, *ast.TypeSpec) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
				return gd, ts
			}
		}
	}
	return nil, nil
}

func TestTypeDirective(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	for name, want := range map[string]bool{"Frozen": true, "Thawed": false} {
		gd, ts := findType(f, name)
		if ts == nil {
			t.Fatalf("type %s not found", name)
		}
		if got := typeDirective(dirs, fset, gd, ts, "frozen"); got != want {
			t.Errorf("typeDirective(%s, frozen) = %v, want %v", name, got, want)
		}
	}
}

func TestDeclDirective(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	found := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				found++
				d, ok := declDirective(dirs, fset, gd, vs, name, "processknob")
				switch name.Name {
				case "knob":
					if !ok || d.Arg != "equivalence knob justification" {
						t.Errorf("knob: directive = %+v, ok = %v", d, ok)
					}
				case "bare":
					if ok {
						t.Errorf("bare: unexpected processknob directive %+v", d)
					}
				}
			}
		}
	}
	if found != 2 {
		t.Fatalf("walked %d var names, want 2", found)
	}
}

func TestFieldLineDirective(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	_, ts := findType(f, "Frozen")
	st := ts.Type.(*ast.StructType)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			d, ok := fieldLineDirective(dirs, fset, name, "guardedby")
			if want := name.Name == "guarded"; ok != want {
				t.Errorf("fieldLineDirective(%s) = %v, want %v", name.Name, ok, want)
			} else if ok && d.Arg != "mu" {
				t.Errorf("guarded: arg = %q, want mu", d.Arg)
			}
		}
	}
}

func TestSuppressed(t *testing.T) {
	fset, f, dirs := parseDirectiveSrc(t)
	stmt := findFunc(f, "Warm").Body.List[0] // x := 1 with the trailing wallclock comment
	if !suppressed(dirs, fset, stmt.Pos(), "wallclock") {
		t.Error("same-line wallclock directive not recognized")
	}
	if suppressed(dirs, fset, stmt.Pos(), "ordered") {
		t.Error("unrelated directive accepted as suppression")
	}
}
