package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// moduleRoot is the repo root relative to this package's test cwd.
const moduleRoot = "../.."

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.DeterminismAnalyzer, "./internal/analysis/testdata/src/determinism")
}

func TestHotpathFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.HotpathAnalyzer, "./internal/analysis/testdata/src/hotpath")
}

func TestKnobpairFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.KnobpairAnalyzer, "./internal/analysis/testdata/src/knobpair")
}

func TestStatcompleteFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.StatcompleteAnalyzer, "./internal/analysis/testdata/src/statcomplete")
}

func TestStatcompleteNoEmitterFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.StatcompleteAnalyzer, "./internal/analysis/testdata/src/statnoemitter")
}

func TestGlobalmutFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.GlobalmutAnalyzer, "./internal/analysis/testdata/src/globalmut")
}

// The frozen fixture is two packages (the /... pattern): the defining
// package plus a foreign package pinning that the constructor set does
// not cross package boundaries.
func TestFrozenFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.FrozenAnalyzer, "./internal/analysis/testdata/src/frozen/...")
}

func TestGuardedbyFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.GuardedbyAnalyzer, "./internal/analysis/testdata/src/guardedby")
}

func TestRecoversurfaceFixture(t *testing.T) {
	analysistest.Run(t, moduleRoot, analysis.RecoversurfaceAnalyzer, "./internal/analysis/testdata/src/recoversurface")
}

// TestRepoSweepClean is the in-tree lint gate: the full suite over the
// whole module must come back empty. CI additionally runs cmd/simlint
// directly so findings land in the job summary with file:line
// positions.
func TestRepoSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; the CI lint job covers short runs")
	}
	m, err := analysis.Load(moduleRoot, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range analysis.RunSuite(m, analysis.Analyzers()) {
		t.Errorf("%s", d)
	}
}
