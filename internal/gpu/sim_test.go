package gpu

import (
	"encoding/binary"
	"testing"

	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// vecAddKernel computes c[i] = a[i] + b[i] over n uint32 elements.
func vecAddKernel() *ptx.Kernel {
	b := ptx.NewBuilder("vecadd")
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	idx, off, ax, bx, va, vb := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mad(ptx.U32, idx, ptx.SR(ptx.SRegCtaIDX), ptx.SR(ptx.SRegNTidX), ptx.SR(ptx.SRegTidX))
	b.MulWide(off, ptx.R(idx), ptx.Imm(4))
	b.Add(ptx.U64, ax, ptx.R(pa), ptx.R(off))
	b.Add(ptx.U64, bx, ptx.R(pb), ptx.R(off))
	b.Ld(ptx.Global, 32, []ptx.Reg{va}, ptx.R(ax))
	b.Ld(ptx.Global, 32, []ptx.Reg{vb}, ptx.R(bx))
	b.Add(ptx.U32, va, ptx.R(va), ptx.R(vb))
	cx := b.Reg()
	b.Add(ptx.U64, cx, ptx.R(pc), ptx.R(off))
	b.St(ptx.Global, 32, ptx.R(cx), []ptx.Operand{ptx.R(va)})
	b.Exit()
	return b.MustBuild()
}

func smallTitanV() Config {
	cfg := TitanV()
	cfg.NumSMs = 4
	return cfg
}

func TestVecAddTimingAndCorrectness(t *testing.T) {
	const n = 1024
	mem := ptx.NewFlatMemory(3 * 4 * n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(mem.Data[4*i:], uint32(i))
		binary.LittleEndian.PutUint32(mem.Data[4*(n+i):], uint32(2*i))
	}
	sim, err := New(smallTitanV())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(LaunchSpec{
		Kernel: vecAddKernel(),
		Grid:   ptx.D1(n / 128),
		Block:  ptx.D1(128),
		Args:   []uint64{0, 4 * n, 8 * n},
		Global: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := binary.LittleEndian.Uint32(mem.Data[4*(2*n+i):]); got != uint32(3*i) {
			t.Fatalf("c[%d] = %d, want %d", i, got, 3*i)
		}
	}
	if st.Cycles == 0 || st.WarpInstructions == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.IPC() <= 0 {
		t.Error("IPC should be positive")
	}
	if st.CTAsSimulated != n/128 || st.CTAsTotal != n/128 {
		t.Errorf("CTAs %d/%d", st.CTAsSimulated, st.CTAsTotal)
	}
	// The kernel is memory-bound and cold: cycles must exceed the DRAM
	// latency but not be absurd.
	if st.Cycles < 300 || st.Cycles > 100_000 {
		t.Errorf("cycles = %d, outside sane range", st.Cycles)
	}
}

func mixedCfg() wmma.Config {
	return wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32}
}

// mmaLoopKernel loads fragments once and runs `iters` loop iterations of
// two independent wmma.mma chains — the independence keeps the tensor
// unit throughput-bound rather than dependency-bound, like the paper's
// "repeatedly executes HMMA operations" microbenchmark.
func mmaLoopKernel(iters int) *ptx.Kernel {
	b := ptx.NewBuilder("mma_loop")
	pa := b.Param("a", ptx.U64)
	cfg := mixedCfg()
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	fc1 := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(pa), ptx.Imm(16))
	fc2 := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(pa), ptx.Imm(16))
	i, p := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("loop")
	fc1 = b.WmmaMMA(cfg, fa, fb, fc1)
	fc2 = b.WmmaMMA(cfg, fa, fb, fc2)
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, p, ptx.R(i), ptx.Imm(uint64(iters)))
	b.BraIf(p, false, "loop")
	b.Exit()
	return b.MustBuild()
}

// runMMAWarps runs the HMMA loop with the given warps per CTA on one SM
// and returns total cycles — the Figure 12c experiment.
func runMMAWarps(t *testing.T, warps, iters int) uint64 {
	t.Helper()
	cfg := TitanV()
	cfg.NumSMs = 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(LaunchSpec{
		Kernel: mmaLoopKernel(iters),
		Grid:   ptx.D1(1),
		Block:  ptx.D1(32 * warps),
		Args:   []uint64{0},
		Global: ptx.NewFlatMemory(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st.Cycles
}

// Figure 12c: cycles stay flat up to 4 warps (one per sub-core, each warp
// using both of its sub-core's tensor cores), then grow once warps share
// a sub-core's tensor cores.
func TestHMMAWarpKnee(t *testing.T) {
	const iters = 16
	base := runMMAWarps(t, 1, iters)
	at4 := runMMAWarps(t, 4, iters)
	at5 := runMMAWarps(t, 5, iters)
	at8 := runMMAWarps(t, 8, iters)
	if float64(at4) > 1.25*float64(base) {
		t.Errorf("4 warps took %d cycles vs %d for 1; should be flat to the knee", at4, base)
	}
	if float64(at5) < 1.4*float64(at4) {
		t.Errorf("5 warps took %d cycles vs %d for 4; expected the knee at 4 warps", at5, at4)
	}
	if at8 < at5 {
		t.Errorf("8 warps (%d cycles) should not beat 5 (%d)", at8, at5)
	}
}

func TestTensorAblationKnobs(t *testing.T) {
	run := func(mod func(*Config)) uint64 {
		cfg := TitanV()
		cfg.NumSMs = 1
		mod(&cfg)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(LaunchSpec{
			Kernel: mmaLoopKernel(32),
			Grid:   ptx.D1(1),
			Block:  ptx.D1(32),
			Args:   []uint64{0},
			Global: ptx.NewFlatMemory(4096),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base := run(func(*Config) {})
	oneTC := run(func(c *Config) { c.TensorCoresPerSubCore = 1 })
	noReuse := run(func(c *Config) { c.ReuseCache = false })
	slowII := run(func(c *Config) { c.HMMAIIScale = 2 })
	if oneTC <= base {
		t.Errorf("1 tensor core/sub-core: %d cycles, want > %d", oneTC, base)
	}
	if noReuse <= base {
		t.Errorf("no reuse cache: %d cycles, want > %d", noReuse, base)
	}
	if slowII <= base {
		t.Errorf("doubled HMMA II: %d cycles, want > %d", slowII, base)
	}
}

func TestSchedulerPoliciesBothComplete(t *testing.T) {
	for _, pol := range Schedulers() {
		cfg := smallTitanV()
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mem := ptx.NewFlatMemory(3 * 4 * 512)
		st, err := sim.Run(LaunchSpec{
			Kernel: vecAddKernel(),
			Grid:   ptx.D1(4),
			Block:  ptx.D1(128),
			Args:   []uint64{0, 4 * 512, 8 * 512},
			Global: mem,
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if st.Cycles == 0 {
			t.Errorf("%v: no cycles simulated", pol)
		}
	}
}

// stagedKernel builds the barrier workload shared by the timing and
// scheduler tests: stage 256 words into shared memory, synchronize, read
// them back reversed.
func stagedKernel() *ptx.Kernel {
	b := ptx.NewBuilder("stage")
	pin := b.Param("in", ptx.U64)
	pout := b.Param("out", ptx.U64)
	smem := b.Shared(256 * 4)
	tid, a, v := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.MulWide(a, ptx.R(tid), ptx.Imm(4))
	srcA := b.Reg()
	b.Add(ptx.U64, srcA, ptx.R(a), ptx.R(pin))
	b.Ld(ptx.Global, 32, []ptx.Reg{v}, ptx.R(srcA))
	dstS := b.Reg()
	b.Add(ptx.U64, dstS, ptx.R(a), ptx.Imm(smem))
	b.St(ptx.Shared, 32, ptx.R(dstS), []ptx.Operand{ptx.R(v)})
	b.Bar()
	// Read reversed from shared.
	rev := b.Reg()
	b.Sub(ptx.U32, rev, ptx.Imm(255), ptx.R(tid))
	revOff := b.Reg()
	b.MulWide(revOff, ptx.R(rev), ptx.Imm(4))
	srcS := b.Reg()
	b.Add(ptx.U64, srcS, ptx.R(revOff), ptx.Imm(smem))
	b.Ld(ptx.Shared, 32, []ptx.Reg{v}, ptx.R(srcS))
	dstG := b.Reg()
	b.Add(ptx.U64, dstG, ptx.R(a), ptx.R(pout))
	b.St(ptx.Global, 32, ptx.R(dstG), []ptx.Operand{ptx.R(v)})
	b.Exit()
	return b.MustBuild()
}

// The timing simulator must preserve functional correctness through
// barriers and shared memory (a staged-copy kernel).
func TestBarrierKernelUnderTiming(t *testing.T) {
	mem := ptx.NewFlatMemory(2 * 4 * 256)
	for i := 0; i < 256; i++ {
		binary.LittleEndian.PutUint32(mem.Data[4*i:], uint32(i*11))
	}
	sim, err := New(smallTitanV())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(LaunchSpec{
		Kernel: stagedKernel(),
		Grid:   ptx.D1(1),
		Block:  ptx.D1(256),
		Args:   []uint64{0, 4 * 256},
		Global: mem,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		want := uint32((255 - i) * 11)
		if got := binary.LittleEndian.Uint32(mem.Data[4*(256+i):]); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSampledRunLimitsCTAs(t *testing.T) {
	mem := ptx.NewFlatMemory(3 * 4 * 4096)
	sim, err := New(smallTitanV())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(LaunchSpec{
		Kernel:  vecAddKernel(),
		Grid:    ptx.D1(32),
		Block:   ptx.D1(128),
		Args:    []uint64{0, 4 * 4096, 8 * 4096},
		Global:  mem,
		MaxCTAs: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.CTAsSimulated != 8 || st.CTAsTotal != 32 {
		t.Errorf("sampled %d/%d CTAs, want 8/32", st.CTAsSimulated, st.CTAsTotal)
	}
}

func TestMultiSMScales(t *testing.T) {
	run := func(sms int) uint64 {
		cfg := TitanV()
		cfg.NumSMs = sms
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mem := ptx.NewFlatMemory(3 * 4 * 8192)
		st, err := sim.Run(LaunchSpec{
			Kernel: vecAddKernel(),
			Grid:   ptx.D1(64),
			Block:  ptx.D1(128),
			Args:   []uint64{0, 4 * 8192, 8 * 8192},
			Global: mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	one := run(1)
	eight := run(8)
	if float64(eight) > 0.8*float64(one) {
		t.Errorf("8 SMs took %d cycles vs %d on 1 SM; expected parallel speedup", eight, one)
	}
}

func TestTraceCollectsWmmaLatencies(t *testing.T) {
	cfg := TitanV()
	cfg.NumSMs = 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(LaunchSpec{
		Kernel: mmaLoopKernel(4),
		Grid:   ptx.D1(1),
		Block:  ptx.D1(32),
		Args:   []uint64{0},
		Global: ptx.NewFlatMemory(4096),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == nil || len(st.Trace.WmmaLoad) != 4 || len(st.Trace.WmmaMMA) != 8 {
		t.Fatalf("trace = %+v", st.Trace)
	}
	// The tensor op latency is at least the calibrated 54-cycle sequence.
	for _, l := range st.Trace.WmmaMMA {
		if l < 54 {
			t.Errorf("wmma.mma latency %v below the calibrated 54-cycle floor", l)
		}
	}
}

func TestPeakTFLOPS(t *testing.T) {
	got := TitanV().PeakTensorTFLOPS()
	if got < 124 || got > 127 {
		t.Errorf("Titan V peak = %.1f TFLOPS, want ≈ 125 (the paper's theoretical limit)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := TitanV()
	cfg.TensorCoresPerSubCore = 3
	if _, err := New(cfg); err == nil {
		t.Error("invalid tensor core count should be rejected")
	}
}
