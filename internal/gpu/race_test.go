package gpu_test

import (
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
)

// Independent Simulator instances must be safe to run concurrently (the
// experiment engine fans data points across goroutines, one simulator
// each). Run with -race; the test also asserts the runs are deterministic
// by comparing every goroutine's stats.
func TestConcurrentSimulators(t *testing.T) {
	const goroutines = 8
	run := func() (*gpu.Stats, error) {
		cfg := gpu.TitanV()
		cfg.NumSMs = 2
		l, err := kernels.MMALoop(kernels.TensorMixed, 4, 16, 2)
		if err != nil {
			return nil, err
		}
		sim, err := gpu.New(cfg)
		if err != nil {
			return nil, err
		}
		return sim.Run(gpu.LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args: []uint64{0}, Global: ptx.NewFlatMemory(4096),
		})
	}

	stats := make([]*gpu.Stats, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stats[g], errs[g] = run()
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	first := stats[0]
	if first.Cycles == 0 || first.TensorOps == 0 {
		t.Fatalf("degenerate run: %+v", first)
	}
	for g, st := range stats[1:] {
		if st.Cycles != first.Cycles || st.WarpInstructions != first.WarpInstructions ||
			st.TensorOps != first.TensorOps {
			t.Errorf("goroutine %d diverged: cycles %d vs %d, instrs %d vs %d",
				g+1, st.Cycles, first.Cycles, st.WarpInstructions, first.WarpInstructions)
		}
	}
}

// A second Run on the same Simulator must fully reset per-run state.
func TestRunReset(t *testing.T) {
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	l, err := kernels.MMALoop(kernels.TensorMixed, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := gpu.LaunchSpec{Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
		Args: []uint64{0}, Global: ptx.NewFlatMemory(4096)}
	st1, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.WarpInstructions != st2.WarpInstructions || st1.TensorOps != st2.TensorOps {
		t.Errorf("second run diverged: instrs %d vs %d", st1.WarpInstructions, st2.WarpInstructions)
	}
}
