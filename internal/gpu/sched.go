package gpu

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The warp-scheduling core: a per-sub-core driver that derives the issue
// candidates either from the event-driven ready set (the default) or from
// the legacy full scan (the ScanScheduler knob), orders them through a
// pluggable schedPolicy, and attempts them until one issues. Both paths
// feed the policies identical candidate sets, so they produce
// bit-identical Stats — asserted by the equivalence tests.

// scanScheduler, when set, makes subsequently constructed Simulators
// rebuild the scheduler's candidate set by scanning every warp each cycle
// instead of consulting the incrementally maintained ready set. It exists
// so tests can assert the event-driven bookkeeping is timing-preserving
// (mirroring ptx.InterpretALU); production code never sets it.
//
//simlint:processknob equivalence knob: CLI plumbing and Swap-helper tests only, never flipped while simulators run
var scanScheduler atomic.Bool

// ScanScheduler switches Simulators constructed afterwards between the
// event-driven ready-set scheduler (the default) and the legacy per-cycle
// full scan. Tests use it to assert both produce identical Stats.
func ScanScheduler(on bool) { scanScheduler.Store(on) }

// SwapScanScheduler sets the knob and returns the restore that puts the
// previous value back; the only sanctioned test shape
// (defer gpu.SwapScanScheduler(true)() or t.Cleanup).
func SwapScanScheduler(on bool) (restore func()) {
	prev := scanScheduler.Swap(on)
	return func() { scanScheduler.Store(prev) }
}

// schedPolicy orders a sub-core's ready warps for issue. Policies are
// stateless singletons; their per-sub-core state (rotation anchor, active
// subset) lives on the subcore and its warps.
type schedPolicy interface {
	// preferred returns the slot the driver should attempt before paying
	// for the full candidate order (-1 when the policy has no sticky
	// preference). GTO's greedy warp issues back to back in the common
	// case, so this keeps the scheduler O(1) on those cycles.
	preferred(sc *subcore) int
	// pick appends the ready slots to buf in issue-priority order — the
	// legacy scan-mode path. ready holds the candidate slots in ascending
	// order; the driver attempts buf in order until one warp issues. The
	// preferred slot may be included — the driver skips it if already
	// attempted.
	pick(sc *subcore, now uint64, ready, buf []int) []int
	// pickEvent is pick's event-mode twin: it derives the same order
	// straight from the sub-core's incrementally maintained structures
	// (readyMask, zeroMask, the age list, tlMask) with no per-cycle sort.
	pickEvent(sc *subcore, now uint64, buf []int) []int
	// issued notes that the warp in slot won this cycle's issue.
	issued(sc *subcore, slot int)
	// retired notes that w left the sub-core's pool.
	retired(sc *subcore, w *simWarp)
}

var (
	gtoSched      = gtoPolicy{}
	lrrSched      = lrrPolicy{}
	twoLevelSched = twoLevelPolicy{}
)

func policyFor(p SchedulerPolicy) schedPolicy {
	switch p {
	case LRR:
		return lrrSched
	case TwoLevel:
		return twoLevelSched
	default:
		return gtoSched
	}
}

// defaultTwoLevelActive sizes the TwoLevel active subset when
// Config.TwoLevelActive is zero.
const defaultTwoLevelActive = 4

// gtoPolicy is greedy-then-oldest: the last issuer first (via preferred),
// then the remaining ready warps by ascending lastIssue, ties broken by
// rotation order after the greedy slot.
type gtoPolicy struct{}

func (gtoPolicy) preferred(sc *subcore) int { return sc.greedy }

// pick is the legacy scan-mode order: the pre-refactor selection sort
// over per-pair gtoLess compares, preserving the legacy scheduler's cost
// profile for the knob's oracle role.
func (gtoPolicy) pick(sc *subcore, _ uint64, ready, buf []int) []int {
	g := sc.greedy
	n := len(sc.warps)
	for _, idx := range ready {
		if idx != g {
			buf = append(buf, idx)
		}
	}
	for i := range buf {
		best := i
		for j := i + 1; j < len(buf); j++ {
			if gtoLess(sc, buf[j], buf[best], g, n) {
				best = j
			}
		}
		buf[i], buf[best] = buf[best], buf[i]
	}
	return buf
}

// pickEvent reads the (lastIssue, rotDist) order off the incremental
// structures with no per-cycle sort: the lastIssue == 0 group is the
// zero-prefix in rotation order from greedy+1 (exactly the legacy
// comparator's tie-break when every key is zero), and the lastIssue ≥ 1
// group is the age list, strictly ascending by construction.
//
//simlint:hotpath
func (gtoPolicy) pickEvent(sc *subcore, _ uint64, buf []int) []int {
	g := sc.greedy
	buf = appendRotatedMask(sc.andMask(sc.zeroMask, sc.readyMask), g, g, buf)
	for w := sc.ageHead; w != nil; w = w.ageNext {
		if w.slot != g && sc.readyBit(w.slot) {
			buf = append(buf, w.slot)
		}
	}
	return buf
}

// gtoLess orders slots a before b: least recently issued first, ties by
// rotation distance from the slot after greedy.
func gtoLess(sc *subcore, a, b, greedy, n int) bool {
	la, lb := sc.warps[a].lastIssue, sc.warps[b].lastIssue
	if la != lb {
		return la < lb
	}
	return rotDist(a, greedy, n) < rotDist(b, greedy, n)
}

// rotDist is the distance of slot from greedy+1, wrapping at n.
func rotDist(slot, greedy, n int) int {
	if slot > greedy {
		return slot - greedy - 1
	}
	return slot + n - greedy - 1
}

func (gtoPolicy) issued(sc *subcore, slot int) { sc.greedy = slot }
func (gtoPolicy) retired(*subcore, *simWarp)   {}

// lrrPolicy is loose round-robin: ready warps in rotation order starting
// one past the last issuer.
type lrrPolicy struct{}

func (lrrPolicy) preferred(*subcore) int { return -1 }

func (lrrPolicy) pick(sc *subcore, _ uint64, ready, buf []int) []int {
	return appendRotated(sc.greedy, ready, buf)
}

//simlint:hotpath
func (lrrPolicy) pickEvent(sc *subcore, _ uint64, buf []int) []int {
	return appendRotatedMask(sc.readyMask, sc.greedy, -1, buf)
}

// appendRotated emits the ascending slots in rotation order from g+1:
// first the slots above g, then the wrap-around tail.
func appendRotated(g int, ready, buf []int) []int {
	for _, idx := range ready {
		if idx > g {
			buf = append(buf, idx)
		}
	}
	for _, idx := range ready {
		if idx <= g {
			buf = append(buf, idx)
		}
	}
	return buf
}

func (lrrPolicy) issued(sc *subcore, slot int) { sc.greedy = slot }
func (lrrPolicy) retired(*subcore, *simWarp)   {}

// twoLevelPolicy issues round-robin within a small active subset of the
// sub-core's warps; the rest wait in a pending pool. When no active warp
// is ready (all stalled on memory, the scoreboard, or a barrier), ready
// pending warps are promoted, demoting non-issuable active warps to make
// room — the classic two-level scheme that concentrates issue bandwidth
// on a few warps to keep their locality while the pool hides long
// latencies.
type twoLevelPolicy struct{}

func (twoLevelPolicy) preferred(*subcore) int { return -1 }

func (twoLevelPolicy) pick(sc *subcore, now uint64, ready, buf []int) []int {
	anyActive := false
	for _, idx := range ready {
		if sc.warps[idx].tlActive {
			anyActive = true
			break
		}
	}
	if !anyActive {
		// The whole active subset is blocked: swap in ready pending warps
		// one for one. Every current member is non-issuable here, so
		// demotion always finds a victim while the subset is full.
		for _, idx := range ready {
			if sc.tlActive >= sc.tlCap && !sc.demoteOne(now) {
				break
			}
			sc.warps[idx].tlActive = true
			sc.tlActive++
		}
	} else if sc.tlActive < sc.tlCap {
		// Spare capacity: fill it from the ready pending warps.
		for _, idx := range ready {
			if sc.tlActive >= sc.tlCap {
				break
			}
			if w := sc.warps[idx]; !w.tlActive {
				w.tlActive = true
				sc.tlActive++
			}
		}
	}
	start := len(buf)
	buf = appendRotated(sc.greedy, ready, buf)
	// Keep only active warps, preserving rotation order.
	out := buf[:start]
	for _, idx := range buf[start:] {
		if sc.warps[idx].tlActive {
			out = append(out, idx)
		}
	}
	return out
}

// pickEvent mirrors pick on the mask structures: promotion decisions
// come from readyMask ∧/∧^ tlMask intersections instead of scanning the
// ready list, and the final order is one rotated-mask enumeration.
//
//simlint:hotpath
func (twoLevelPolicy) pickEvent(sc *subcore, now uint64, buf []int) []int {
	if !maskIntersects(sc.readyMask, sc.tlMask) {
		// The whole active subset is blocked: swap in ready pending warps
		// one for one, ascending — the legacy loop's order. Every current
		// member is non-issuable here, so demotion always finds a victim
		// while the subset is full.
	promote:
		for wi, word := range sc.readyMask {
			for ; word != 0; word &= word - 1 {
				if sc.tlActive >= sc.tlCap && !sc.demoteOne(now) {
					break promote
				}
				idx := wi*64 + bits.TrailingZeros64(word)
				sc.warps[idx].tlActive = true
				sc.setTL(idx)
				sc.tlActive++
			}
		}
	} else if sc.tlActive < sc.tlCap {
		// Spare capacity: fill it from the ready pending warps, ascending.
	fill:
		for wi := range sc.readyMask {
			for word := sc.readyMask[wi] &^ sc.tlMask[wi]; word != 0; word &= word - 1 {
				if sc.tlActive >= sc.tlCap {
					break fill
				}
				idx := wi*64 + bits.TrailingZeros64(word)
				sc.warps[idx].tlActive = true
				sc.setTL(idx)
				sc.tlActive++
			}
		}
	}
	return appendRotatedMask(sc.andMask(sc.readyMask, sc.tlMask), sc.greedy, -1, buf)
}

// demoteOne evicts the lowest-slot non-issuable member of the active
// subset; false when every member is issuable.
func (sc *subcore) demoteOne(now uint64) bool {
	for _, w := range sc.warps {
		if w.tlActive && !w.issuable(now) {
			w.tlActive = false
			if !sc.scan {
				sc.clearTL(w.slot)
			}
			sc.tlActive--
			return true
		}
	}
	return false
}

func (twoLevelPolicy) issued(sc *subcore, slot int) { sc.greedy = slot }

func (twoLevelPolicy) retired(sc *subcore, w *simWarp) {
	if w.tlActive {
		w.tlActive = false
		if !sc.scan {
			sc.clearTL(w.slot)
		}
		sc.tlActive--
	}
}

// stepSubcore lets the sub-core's scheduler issue at most one warp
// instruction. Returns whether one issued and the earliest cycle at which
// a currently blocked warp could become issuable.
//
//simlint:hotpath
func (m *sm) stepSubcore(sc *subcore, now uint64, st *Stats) (issued bool, wake uint64, err error) {
	wake = math.MaxUint64
	if len(sc.warps) == 0 {
		return false, wake, nil
	}
	if sc.greedy >= len(sc.warps) {
		sc.greedy = 0
	}
	if !sc.scan {
		sc.drainWake(now)
	}
	// Sticky fast path: attempt the policy's preferred warp before paying
	// for the candidate set (tryWarp self-screens, so a blocked preferred
	// warp only contributes its wake cycle).
	tried := -1
	if p := sc.policy.preferred(sc); p >= 0 {
		iss, wk, e := m.tryWarp(sc, p, now, st)
		if wk < wake {
			wake = wk
		}
		if e != nil || iss {
			return iss, wake, e
		}
		tried = p
	}
	var order []int
	if sc.scan {
		ready := sc.scanReady(now, &wake)
		if len(ready) == 0 {
			return false, wake, nil
		}
		order = sc.policy.pick(sc, now, ready, sc.orderBuf[:0])
	} else {
		if top := sc.heapTop(); top < wake {
			wake = top
		}
		order = sc.policy.pickEvent(sc, now, sc.orderBuf[:0])
	}
	sc.orderBuf = order[:0]
	for _, idx := range order {
		if idx == tried {
			continue
		}
		iss, wk, e := m.tryWarp(sc, idx, now, st)
		if wk < wake {
			wake = wk
		}
		if e != nil || iss {
			return iss, wake, e
		}
	}
	return false, wake, nil
}

// scanReady rebuilds the candidate set by scanning every warp — the
// legacy pre-ready-set path kept behind the ScanScheduler knob. The stall
// screen is shared by every policy (LRR used to rebuild the full
// candidate order unconditionally); warps still stalled contribute their
// wake cycle so the idle fast-forward matches the event-driven path.
//
//simlint:hotpath
func (sc *subcore) scanReady(now uint64, wake *uint64) []int {
	buf := sc.readyBuf[:0]
	for idx, w := range sc.warps {
		switch {
		case w.state == warpFinished || w.state == warpAtBarrier:
		case w.stallUntil > now:
			if w.stallUntil < *wake {
				*wake = w.stallUntil
			}
		default:
			buf = append(buf, idx)
		}
	}
	sc.readyBuf = buf
	return buf
}

// tryWarp attempts to issue the warp in the given slot. outcome is one
// of: issued (an instruction went out), or blocked with wake holding the
// earliest cycle the warp could become issuable (MaxUint64 when it has
// none). Scoreboard hazards move the warp to Stalled as a side effect.
//
//simlint:hotpath
func (m *sm) tryWarp(sc *subcore, idx int, now uint64, st *Stats) (issued bool, wake uint64, err error) {
	wake = math.MaxUint64
	w := sc.warps[idx]
	if w.state == warpFinished || w.state == warpAtBarrier {
		return false, wake, nil
	}
	if w.stallUntil > now {
		return false, w.stallUntil, nil
	}
	in := w.warp.PeekD()
	if in == nil {
		m.finishWarp(w, now)
		// A finish without an issue still changes scheduler state (active
		// slots free up, CTAs may retire): re-step next cycle rather than
		// letting the fast-forward sleep. Without this, TwoLevel could
		// park a sub-core forever when its whole active subset exhausts
		// its instruction stream in one pass while ready pending warps
		// (filtered out of this pass's order) still hold work.
		return false, now + 1, nil
	}
	if ready, at := w.operandsReady(in, now); !ready {
		sc.stall(w, at)
		return false, at, nil
	}
	if free, at := sc.ports.free(in, now); !free {
		return false, at, nil
	}
	if err := m.issue(sc, w, in, now, st); err != nil {
		return false, wake, err
	}
	sc.policy.issued(sc, idx)
	if !sc.scan {
		sc.noteIssued(w, now)
	}
	return true, wake, nil
}
