package gpu

import (
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/ptx"
)

// wmmaSpec builds a shared-memory WMMA GEMM launch for the fragment
// equivalence tests.
func wmmaSpec(t *testing.T, p kernels.GemmPrecision, m, n, k int) LaunchSpec {
	t.Helper()
	l, err := kernels.WMMAGemmShared(p, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	return LaunchSpec{
		Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
		Args:   []uint64{0, 64 << 10, 128 << 10, 192 << 10},
		Global: ptx.NewFlatMemory(256 << 10),
	}
}

// The batched fragment path must be invisible in the timing model:
// every Stats field must be bit-identical to the per-element legacy
// path on the tensor-core workloads — the wmma GEMMs in both
// accumulation modes plus the scheduler suite's mma loop — and the
// equivalence must hold with the legacy *access* path too, since the
// two knobs compose (a legacy-access warp still batches its fragment
// data movement and vice versa).
func TestFragmentPathMatchesLegacyStats(t *testing.T) {
	cases := map[string]func() LaunchSpec{
		"wmma-mixed": func() LaunchSpec { return wmmaSpec(t, kernels.TensorMixed, 64, 64, 32) },
		"wmma-fp16":  func() LaunchSpec { return wmmaSpec(t, kernels.TensorFP16, 32, 32, 64) },
		"mma-loop":   schedCases()["mma-loop"],
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			for _, legacyAccess := range []bool{false, true} {
				// Cleanup, not an inline reset: a t.Fatal inside
				// runFragPath must not leak the legacy access path
				// into later tests.
				t.Cleanup(ptx.SwapLegacyAccessPath(legacyAccess))
				batched := runFragPath(t, false, build())
				legacy := runFragPath(t, true, build())
				if !reflect.DeepEqual(batched, legacy) {
					t.Errorf("legacyAccess=%v: stats diverge\nbatched: %+v\nlegacy:  %+v",
						legacyAccess, batched, legacy)
				}
				if batched.WarpInstructions == 0 || batched.Cycles == 0 || batched.TensorOps == 0 {
					t.Errorf("degenerate run %+v", batched)
				}
			}
		})
	}
}

func runFragPath(t *testing.T, legacy bool, spec LaunchSpec) *Stats {
	t.Helper()
	defer ptx.SwapLegacyFragmentPath(legacy)()
	cfg := TitanV()
	cfg.NumSMs = 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
