package gpu

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ptx"
)

// spinKernel is an infinite loop: one warp branching to itself forever —
// the malformed workload the cycle-budget watchdog exists to reap.
func spinKernel() *ptx.Kernel {
	b := ptx.NewBuilder("spin")
	b.Label("spin")
	b.Bra("spin")
	b.Exit()
	return b.MustBuild()
}

func spinSpec() LaunchSpec {
	return LaunchSpec{
		Kernel: spinKernel(),
		Grid:   ptx.D1(1),
		Block:  ptx.D1(32),
		Global: ptx.NewFlatMemory(64),
	}
}

// An infinite-loop kernel must fail with ErrCycleBudget once it exceeds
// MaxCycles, instead of spinning until the 4e9-cycle backstop.
func TestCycleBudgetReapsInfiniteLoop(t *testing.T) {
	cfg := TitanV()
	cfg.NumSMs = 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := spinSpec()
	spec.MaxCycles = 10_000
	_, err = sim.Run(spec)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("Run(spin, MaxCycles=10k) = %v, want ErrCycleBudget", err)
	}
}

// A healthy kernel under a generous budget is unaffected: same stats as
// an unbounded run.
func TestCycleBudgetGenerousBudgetUnaffected(t *testing.T) {
	run := func(maxCycles uint64) *Stats {
		sim, err := New(smallTitanV())
		if err != nil {
			t.Fatal(err)
		}
		const n = 1024
		mem := ptx.NewFlatMemory(3 * 4 * n)
		st, err := sim.Run(LaunchSpec{
			Kernel:    vecAddKernel(),
			Grid:      ptx.D1(n / 128),
			Block:     ptx.D1(128),
			Args:      []uint64{0, 4 * n, 8 * n},
			Global:    mem,
			MaxCycles: maxCycles,
		})
		if err != nil {
			t.Fatalf("Run(vecadd, MaxCycles=%d) = %v", maxCycles, err)
		}
		return st
	}
	bounded, unbounded := run(1_000_000), run(0)
	if bounded.Cycles != unbounded.Cycles {
		t.Fatalf("cycle budget changed timing: %d vs %d cycles", bounded.Cycles, unbounded.Cycles)
	}
}

// A canceled context aborts the event loop promptly, even for a kernel
// that would otherwise run forever, and surfaces the cause.
func TestContextCancelAbortsRun(t *testing.T) {
	cfg := TitanV()
	cfg.NumSMs = 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before launch: the poll must catch it early
	spec := spinSpec()
	spec.Ctx = ctx
	_, err = sim.Run(spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run(spin, canceled ctx) = %v, want context.Canceled", err)
	}
}
