package gpu

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/ptx"
)

// The golden-stats regression fixture: a snapshot of quick-grid Stats
// for a small basket of workloads (SIMT and wmma GEMMs, each scheduler
// policy) checked into testdata. The per-PR refactors so far (decoded
// ALU, event-driven scheduling, batched memory, batched fragments) each
// re-derived their own equivalence tests; the fixture catches silent
// timing drift from any future change without new machinery — if the
// drift is intentional, regenerate with
//
//	go test ./internal/gpu -run TestGoldenStats -update
//
// and review the diff like any other golden file.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulator")

const goldenStatsPath = "testdata/golden_stats.json"

// goldenEntry is one (workload, policy) cell of the fixture.
type goldenEntry struct {
	Name  string `json:"name"`
	Stats Stats  `json:"stats"`
}

// goldenWorkloads returns the fixture basket in a fixed order. Sizes
// are the quick-grid scale: big enough to exercise staging, barriers,
// tensor ops and multi-CTA dispatch, small enough to run in
// milliseconds.
func goldenWorkloads(t *testing.T) []struct {
	name string
	spec LaunchSpec
} {
	t.Helper()
	build := func(l *kernels.Launch, err error) LaunchSpec {
		if err != nil {
			t.Fatal(err)
		}
		return LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args:   []uint64{0, 64 << 10, 128 << 10, 192 << 10},
			Global: ptx.NewFlatMemory(256 << 10),
		}
	}
	// The scheduler-pressure cell needs its own layout: 16 CTAs across 2
	// SMs pin every SM at its 64-warp occupancy cap (16 warps per
	// sub-core), so the issue-order structures run at full depth, and the
	// 256×256 C/D matrices outgrow the shared 256KB arena.
	buildPressure := func(l *kernels.Launch, err error) LaunchSpec {
		if err != nil {
			t.Fatal(err)
		}
		return LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args:   []uint64{0, 64 << 10, 128 << 10, 384 << 10},
			Global: ptx.NewFlatMemory(640 << 10),
		}
	}
	return []struct {
		name string
		spec LaunchSpec
	}{
		{"sgemm-simt-64x64x32", build(kernels.SGEMMSimt(64, 64, 32))},
		{"hgemm-simt-64x128x16", build(kernels.HGEMMSimt(64, 128, 16))},
		{"wmma-mixed-64x64x32", build(kernels.WMMAGemmShared(kernels.TensorMixed, 64, 64, 32))},
		{"wmma-fp16-32x32x64", build(kernels.WMMAGemmShared(kernels.TensorFP16, 32, 32, 64))},
		{"sgemm-simt-pressure-256x256x32", buildPressure(kernels.SGEMMSimt(256, 256, 32))},
	}
}

func TestGoldenStats(t *testing.T) {
	var got []goldenEntry
	for _, w := range goldenWorkloads(t) {
		for _, pol := range Schedulers() {
			cfg := TitanV()
			cfg.NumSMs = 2
			cfg.Scheduler = pol
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(w.spec)
			if err != nil {
				t.Fatalf("%s/%v: %v", w.name, pol, err)
			}
			if st.Cycles == 0 || st.WarpInstructions == 0 {
				t.Fatalf("%s/%v: degenerate run %+v", w.name, pol, st)
			}
			got = append(got, goldenEntry{Name: w.name + "/" + pol.String(), Stats: *st})
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenStatsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStatsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenStatsPath)
		return
	}

	data, err := os.ReadFile(goldenStatsPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d entries, run produced %d (regenerate with -update)", len(want), len(got))
	}
	for i := range got {
		if got[i].Name != want[i].Name {
			t.Fatalf("entry %d is %q, fixture has %q (regenerate with -update)", i, got[i].Name, want[i].Name)
		}
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Errorf("%s: stats drifted from the golden fixture\ngot:  %+v\nwant: %+v\n(if intentional, regenerate with -update)",
				got[i].Name, got[i].Stats, want[i].Stats)
		}
	}
}
