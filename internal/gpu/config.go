// Package gpu is the cycle-level GPU timing simulator — the analog of the
// paper's modified GPGPU-Sim. It models Volta-class streaming
// multiprocessors with four sub-cores each (Figure 1): pluggable
// per-sub-core warp schedulers (greedy-then-oldest, loose round-robin,
// two-level) driven by event-driven ready-set bookkeeping, a register
// scoreboard for RAW/WAW hazards, per-unit initiation intervals, the
// two-tensor-cores-per-sub-core arrangement inferred in Section IV, and
// the memory system of internal/mem. Kernels are the PTX-subset programs
// of internal/ptx; functional execution happens at issue
// (execution-driven, timing-directed), exactly the split the paper's
// GPGPU-Sim changes use.
package gpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/tcore"
	"repro/internal/wmma"
)

// SchedulerPolicy selects the warp scheduling policy of each sub-core.
type SchedulerPolicy int

const (
	// GTO is greedy-then-oldest: keep issuing the same warp until it
	// stalls, then switch to the least recently issued ready warp.
	GTO SchedulerPolicy = iota
	// LRR is loose round robin.
	LRR
	// TwoLevel is two-level warp scheduling: only a small active subset
	// of each sub-core's warps competes for issue (round-robin within the
	// subset); warps move between the active subset and the pending pool
	// when the whole subset stalls. Config.TwoLevelActive sizes the
	// subset.
	TwoLevel
)

func (p SchedulerPolicy) String() string {
	switch p {
	case GTO:
		return "gto"
	case LRR:
		return "lrr"
	case TwoLevel:
		return "twolevel"
	}
	return fmt.Sprintf("scheduler(%d)", int(p))
}

// Schedulers returns every scheduling policy, in sweep order.
func Schedulers() []SchedulerPolicy { return []SchedulerPolicy{GTO, LRR, TwoLevel} }

// ParseSchedulerPolicy maps the CLI -sched spelling to a policy.
func ParseSchedulerPolicy(s string) (SchedulerPolicy, error) {
	for _, p := range Schedulers() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("gpu: unknown scheduler %q (want gto, lrr or twolevel)", s)
}

// Config describes the simulated GPU.
type Config struct {
	Name string
	Arch wmma.Arch

	NumSMs        int
	SubCores      int // sub-cores (processing blocks) per SM
	MaxWarpsPerSM int
	MaxCTAsPerSM  int
	SharedPerSM   int // bytes of shared memory per SM
	ClockMHz      float64

	Scheduler SchedulerPolicy

	// TwoLevelActive is the size of the TwoLevel scheduler's active
	// subset per sub-core (0 = default 4). Ignored by GTO and LRR.
	TwoLevelActive int

	// TensorCoresPerSubCore is 2 on Volta (Section IV); setting it to 1
	// is the paper's implicit ablation — each warp then pushes its octets
	// through half the FEDP capacity, doubling HMMA occupancy.
	TensorCoresPerSubCore int

	// HMMAIIScale stretches the HMMA initiation intervals for ablation
	// studies (1 = calibrated behaviour).
	HMMAIIScale int

	// ReuseCache models the operand reuse cache flagged by ".reuse": when
	// disabled, each HMMA set re-fetches its operands, adding
	// ReuseMissPenalty cycles per set boundary.
	ReuseCache       bool
	ReuseMissPenalty int

	// ALU parameters: a 32-thread warp on 16 FP32 lanes has a 2-cycle
	// initiation interval.
	ALULatency int
	ALUII      int
	SFULatency int
	SFUII      int

	// Fixed front-end overheads.
	IssueLatency   int // decode/dispatch depth before results are visible
	BarrierLatency int

	// WmmaMemOverhead is the extra fragment-distribution latency of
	// wmma.load/store beyond the raw memory access (the sync qualifier's
	// warp synchronization plus layout shuffling); calibrated so the
	// minimum observed wmma.load latency approaches the paper's 125
	// cycles.
	WmmaMemOverhead int

	Mem mem.Config
}

// TitanV returns the calibrated Volta (Titan V) configuration: 80 SMs,
// 4 sub-cores each, 2 tensor cores per sub-core, 1530 MHz.
func TitanV() Config {
	return Config{
		Name:                  "Titan V",
		Arch:                  wmma.Volta,
		NumSMs:                80,
		SubCores:              4,
		MaxWarpsPerSM:         64,
		MaxCTAsPerSM:          32,
		SharedPerSM:           96 << 10,
		ClockMHz:              1530,
		Scheduler:             GTO,
		TwoLevelActive:        4,
		TensorCoresPerSubCore: 2,
		HMMAIIScale:           1,
		ReuseCache:            true,
		ReuseMissPenalty:      4,
		ALULatency:            4,
		ALUII:                 2,
		SFULatency:            21,
		SFUII:                 8,
		IssueLatency:          4,
		BarrierLatency:        5,
		WmmaMemOverhead:       36,
		Mem:                   mem.TitanV(),
	}
}

// RTX2080 returns the Turing (RTX 2080) configuration: 46 SMs with the
// Table I tensor core timings.
func RTX2080() Config {
	c := TitanV()
	c.Name = "RTX 2080"
	c.Arch = wmma.Turing
	c.NumSMs = 46
	c.ClockMHz = 1710
	c.SharedPerSM = 64 << 10
	return c
}

// PeakTensorTFLOPS returns the configuration's theoretical tensor-core
// peak: SMs × subcores × tensor cores × 16 FEDPs × 8 FLOPs per FEDP per
// cycle (4 multiplies + 4 adds) × clock.
func (c Config) PeakTensorTFLOPS() float64 {
	flopsPerCycle := float64(c.NumSMs * c.SubCores * c.TensorCoresPerSubCore * tcore.FEDPPerTensorCore * 2 * wmma.FEDPWidth)
	return flopsPerCycle * c.ClockMHz * 1e6 / 1e12
}

// Validate rejects configurations the simulator cannot honour.
func (c Config) Validate() error {
	if c.NumSMs < 1 || c.SubCores < 1 {
		return fmt.Errorf("gpu: need at least one SM and sub-core")
	}
	if c.Scheduler < GTO || c.Scheduler > TwoLevel {
		return fmt.Errorf("gpu: unknown scheduler policy %d", int(c.Scheduler))
	}
	if c.TwoLevelActive < 0 {
		return fmt.Errorf("gpu: TwoLevelActive must be ≥ 0 (0 = default)")
	}
	if c.BarrierLatency < 1 {
		// The schedulers re-arm released warps strictly after the release
		// cycle; a zero-latency barrier would let the legacy scan issue a
		// released warp within the releasing cycle itself.
		return fmt.Errorf("gpu: BarrierLatency must be ≥ 1")
	}
	if c.TensorCoresPerSubCore < 1 || c.TensorCoresPerSubCore > 2 {
		return fmt.Errorf("gpu: tensor cores per sub-core must be 1 or 2")
	}
	if c.HMMAIIScale < 1 {
		return fmt.Errorf("gpu: HMMAIIScale must be ≥ 1")
	}
	return nil
}

// tensorOccupancy returns how many cycles one wmma.mma holds the
// sub-core's tensor-core issue bandwidth — the back-to-back initiation
// interval between mma operations of different warps sharing the unit.
//
// A warp drives 32 FEDPs per cycle through its two tensor cores, so the
// floor is M·N·K/4 FEDP operations / 32 = M·N·K/128 cycles (32 for the
// 16×16×16 tile), plus a small set-transition overhead. The +4 calibrates
// sustained throughput to the paper's measured 109.6 of 125 TFLOPS
// (87.7 %): 8192 FLOP per mma / 36 cycles ≈ 89 % of the 256 FLOP/cycle
// sub-core peak.
func (c Config) tensorOccupancy(w wmma.Config) uint64 {
	fedpCycles := w.Shape.M * w.Shape.N * w.Shape.K / (32 * wmma.FEDPWidth)
	if c.TensorCoresPerSubCore == 1 {
		fedpCycles *= 2
	}
	occ := fedpCycles*c.HMMAIIScale + 4
	if !c.ReuseCache {
		occ += (tcore.NumSets - 1) * c.ReuseMissPenalty
	}
	return uint64(occ)
}

// tensorTiming returns the calibrated HMMA timing for a wmma.mma under
// this configuration, applying the ablation knobs.
func (c Config) tensorTiming(cfg wmma.Config) (tcore.Timing, error) {
	t, err := tcore.TimingFor(cfg)
	if err != nil {
		return t, err
	}
	if c.HMMAIIScale > 1 {
		scaled := append([]int(nil), t.Cumulative...)
		for i := range scaled {
			scaled[i] = t.Cumulative[0] + (t.Cumulative[i]-t.Cumulative[0])*c.HMMAIIScale
		}
		t.Cumulative = scaled
	}
	if !c.ReuseCache {
		// Without the operand reuse cache every set boundary refetches.
		scaled := append([]int(nil), t.Cumulative...)
		sets := (t.NumHMMA() + t.StepsPerSet - 1) / t.StepsPerSet
		for s := 1; s < sets; s++ {
			for i := s * t.StepsPerSet; i < len(scaled); i++ {
				scaled[i] += c.ReuseMissPenalty
			}
		}
		t.Cumulative = scaled
	}
	if c.TensorCoresPerSubCore == 1 {
		// Half the FEDP capacity: the octets of a warp time-share one
		// tensor core, doubling every interval past the first result.
		scaled := append([]int(nil), t.Cumulative...)
		for i := range scaled {
			scaled[i] = t.Cumulative[0] + (t.Cumulative[i]-t.Cumulative[0])*2
		}
		t.Cumulative = scaled
	}
	return t, nil
}
