package gpu_test

import (
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
)

// The decoded-instruction cache must be invisible to the timing model:
// running the same launch with the table-driven decoded dispatch and with
// the per-lane interpreted ALU path must produce identical Stats — cycle
// counts, instruction counts, cache behaviour, everything.
func TestDecodedStatsMatchInterpreted(t *testing.T) {
	builds := map[string]func() (*kernels.Launch, error){
		"sgemm": func() (*kernels.Launch, error) { return kernels.SGEMMSimt(64, 64, 32) },
		"hgemm": func() (*kernels.Launch, error) { return kernels.HGEMMSimt(64, 128, 32) },
		"wmma": func() (*kernels.Launch, error) {
			return kernels.WMMAGemmShared(kernels.TensorMixed, 64, 64, 32)
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			run := func(interpret bool) *gpu.Stats {
				defer ptx.SwapInterpretALU(interpret)()
				l, err := build() // kernels decode at Build, under the mode
				if err != nil {
					t.Fatal(err)
				}
				cfg := gpu.TitanV()
				cfg.NumSMs = 2
				sim, err := gpu.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				st, err := sim.Run(gpu.LaunchSpec{
					Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
					Args:   []uint64{0, 1 << 20, 2 << 20, 3 << 20},
					Global: ptx.NewFlatMemory(4 << 20),
				})
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			decoded := run(false)
			interpreted := run(true)
			if !reflect.DeepEqual(decoded, interpreted) {
				t.Errorf("stats diverge:\ndecoded:     %+v\ninterpreted: %+v", decoded, interpreted)
			}
		})
	}
}
