package gpu

import (
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/ptx"
)

// The batched access path must be invisible in the timing model: every
// Stats field — cycles, hit rates, DRAM traffic, shared conflicts — must
// be bit-identical to the legacy per-lane path. The workloads cover the
// scheduler equivalence cases plus the register-tiled SIMT GEMMs whose
// staging patterns (segmented unit-stride global, mirrored/broadcast
// shared) the batched fast paths dispatch on.
func TestBatchedAccessPathMatchesLegacyStats(t *testing.T) {
	cases := schedCases()
	cases["sgemm-simt"] = func() LaunchSpec {
		l, err := kernels.SGEMMSimt(64, 64, 32)
		if err != nil {
			t.Fatal(err)
		}
		return LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args:   []uint64{0, 64 << 10, 128 << 10, 192 << 10},
			Global: ptx.NewFlatMemory(256 << 10),
		}
	}
	cases["hgemm-simt"] = func() LaunchSpec {
		l, err := kernels.HGEMMSimt(64, 128, 16)
		if err != nil {
			t.Fatal(err)
		}
		return LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args:   []uint64{0, 64 << 10, 128 << 10, 192 << 10},
			Global: ptx.NewFlatMemory(256 << 10),
		}
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			batched := runAccessPath(t, false, build())
			legacy := runAccessPath(t, true, build())
			if !reflect.DeepEqual(batched, legacy) {
				t.Errorf("stats diverge\nbatched: %+v\nlegacy:  %+v", batched, legacy)
			}
			if batched.WarpInstructions == 0 || batched.Cycles == 0 {
				t.Errorf("degenerate run %+v", batched)
			}
		})
	}
}

func runAccessPath(t *testing.T, legacy bool, spec LaunchSpec) *Stats {
	t.Helper()
	defer ptx.SwapLegacyAccessPath(legacy)()
	cfg := TitanV()
	cfg.NumSMs = 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
