package gpu

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/ptx"
)

// divergentBarrierKernel makes the upper half of the block's warps exit
// immediately while the lower half synchronizes at a barrier — the
// "a warp finishes while others wait at the barrier" scenario: the
// barrier must release on the live warps alone.
func divergentBarrierKernel() *ptx.Kernel {
	b := ptx.NewBuilder("diverge")
	pout := b.Param("out", ptx.U64)
	tid, p := b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.Setp(ptx.U32, ptx.CmpGE, p, ptx.R(tid), ptx.Imm(64))
	b.BraIf(p, false, "skip")
	b.Bar()
	off, dst := b.Reg(), b.Reg()
	b.MulWide(off, ptx.R(tid), ptx.Imm(4))
	b.Add(ptx.U64, dst, ptx.R(off), ptx.R(pout))
	b.St(ptx.Global, 32, ptx.R(dst), []ptx.Operand{ptx.R(tid)})
	b.Label("skip")
	b.Exit()
	return b.MustBuild()
}

// schedCases are the launches the equivalence tests drive: a multi-CTA
// SIMT kernel, a barrier-heavy staged copy (multiple warps per sub-core,
// exercising pendingWake), a tensor-unit loop, and the early-finish
// divergent barrier kernel.
func schedCases() map[string]func() LaunchSpec {
	return map[string]func() LaunchSpec{
		"vecadd": func() LaunchSpec {
			return LaunchSpec{
				Kernel: vecAddKernel(),
				Grid:   ptx.D1(8),
				Block:  ptx.D1(128),
				Args:   []uint64{0, 4 * 1024, 8 * 1024},
				Global: ptx.NewFlatMemory(3 * 4 * 1024),
			}
		},
		"staged-barrier": func() LaunchSpec {
			return LaunchSpec{
				Kernel: stagedKernel(),
				Grid:   ptx.D1(2),
				Block:  ptx.D1(256),
				Args:   []uint64{0, 4 * 256},
				Global: ptx.NewFlatMemory(2 * 4 * 256),
			}
		},
		"mma-loop": func() LaunchSpec {
			return LaunchSpec{
				Kernel: mmaLoopKernel(8),
				Grid:   ptx.D1(1),
				Block:  ptx.D1(32 * 6),
				Args:   []uint64{0},
				Global: ptx.NewFlatMemory(4096),
			}
		},
		"finish-at-barrier": func() LaunchSpec {
			return LaunchSpec{
				Kernel: divergentBarrierKernel(),
				Grid:   ptx.D1(2),
				Block:  ptx.D1(128),
				Args:   []uint64{0},
				Global: ptx.NewFlatMemory(4 * 128),
			}
		},
	}
}

func runScheduled(t *testing.T, pol SchedulerPolicy, scan bool, spec LaunchSpec) *Stats {
	t.Helper()
	defer SwapScanScheduler(scan)()
	cfg := TitanV()
	cfg.NumSMs = 2
	cfg.Scheduler = pol
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(spec)
	if err != nil {
		t.Fatalf("%v scan=%v: %v", pol, scan, err)
	}
	return st
}

// The event-driven ready-set scheduler must be invisible to the timing
// model: for every policy and workload, Stats must be bit-identical to
// the legacy full-scan path kept behind the ScanScheduler knob.
func TestEventSchedulerMatchesScan(t *testing.T) {
	for name, build := range schedCases() {
		t.Run(name, func(t *testing.T) {
			for _, pol := range Schedulers() {
				event := runScheduled(t, pol, false, build())
				scan := runScheduled(t, pol, true, build())
				if !reflect.DeepEqual(event, scan) {
					t.Errorf("%v: stats diverge\nevent: %+v\nscan:  %+v", pol, event, scan)
				}
				if event.WarpInstructions == 0 || event.Cycles == 0 {
					t.Errorf("%v: degenerate run %+v", pol, event)
				}
			}
		})
	}
}

// A barrier released while the releasing sub-core's own scan is in
// flight must re-arm warps the scan already passed over (pendingWake).
// Eight warps share four sub-cores, so the last arrival always releases
// a warp its own sub-core skipped earlier in the same cycle; a dropped
// wake-up would surface as the simulator's deadlock error.
func TestBarrierReleaseMidScanRearms(t *testing.T) {
	for _, pol := range Schedulers() {
		mem := ptx.NewFlatMemory(2 * 4 * 256)
		for i := 0; i < 256; i++ {
			binary.LittleEndian.PutUint32(mem.Data[4*i:], uint32(i*3))
		}
		cfg := TitanV()
		cfg.NumSMs = 1
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(LaunchSpec{
			Kernel: stagedKernel(),
			Grid:   ptx.D1(1),
			Block:  ptx.D1(256), // 8 warps on 4 sub-cores
			Args:   []uint64{0, 4 * 256},
			Global: mem,
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for i := 0; i < 256; i++ {
			want := uint32((255 - i) * 3)
			if got := binary.LittleEndian.Uint32(mem.Data[4*(256+i):]); got != want {
				t.Fatalf("%v: out[%d] = %d, want %d", pol, i, got, want)
			}
		}
		if st.Cycles == 0 {
			t.Errorf("%v: no cycles simulated", pol)
		}
	}
}

// A warp that finishes while its CTA siblings wait at the barrier must
// not leave them parked: the barrier releases once every *live* warp has
// arrived, and the survivors complete their stores.
func TestWarpFinishWhileOthersAtBarrier(t *testing.T) {
	for _, pol := range Schedulers() {
		mem := ptx.NewFlatMemory(4 * 128)
		cfg := TitanV()
		cfg.NumSMs = 1
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.Run(LaunchSpec{
			Kernel: divergentBarrierKernel(),
			Grid:   ptx.D1(1),
			Block:  ptx.D1(128),
			Args:   []uint64{0},
			Global: mem,
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		// Lanes 0..63 passed the barrier and stored their tid; 64..127
		// exited before it and stored nothing.
		for i := 0; i < 128; i++ {
			want := uint32(i)
			if i >= 64 {
				want = 0
			}
			if got := binary.LittleEndian.Uint32(mem.Data[4*i:]); got != want {
				t.Fatalf("%v: out[%d] = %d, want %d", pol, i, got, want)
			}
		}
	}
}

// A kernel whose program runs off the end without an exit instruction
// finishes its warps via PeekD() == nil — without an issue. With more
// warps per sub-core than the TwoLevel active subset, the whole subset
// can exhaust its stream in one scheduling pass; the ready pending warps
// (not in that pass's order) must still get scheduled rather than the
// sub-core sleeping forever on a MaxUint64 wake.
func TestTwoLevelSurvivesStreamExhaustion(t *testing.T) {
	// The program must be stores only: the LSU accepts every cycle and
	// immediate stores carry no register dependencies, so no warp ever
	// enters the wake heap, the active warps round-robin to exhaustion in
	// consecutive cycles, and the fatal pass finds every active warp at
	// stream end with an empty heap (an ALU instruction anywhere staggers
	// the warps onto the heap, whose finite wake masks the bug).
	noExit := func() *ptx.Kernel {
		b := ptx.NewBuilder("noexit")
		pout := b.Param("out", ptx.U64)
		for i := 0; i < 4; i++ {
			b.St(ptx.Global, 32, ptx.R(pout), []ptx.Operand{ptx.Imm(7)})
		}
		return b.MustBuild()
	}
	for _, pol := range Schedulers() {
		cfg := TitanV()
		cfg.NumSMs = 1
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(LaunchSpec{
			Kernel: noExit(),
			Grid:   ptx.D1(1),
			Block:  ptx.D1(1024), // 32 warps, 8 per sub-core > the active subset of 4
			Args:   []uint64{0},
			Global: ptx.NewFlatMemory(4096),
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if want := uint64(32 * 4); st.WarpInstructions != want {
			t.Errorf("%v: %d warp instructions, want %d", pol, st.WarpInstructions, want)
		}
	}
}

// All three policies must issue exactly the same work on a multi-CTA
// launch — scheduling changes the order and the cycle count, never the
// instruction stream.
func TestPoliciesAgreeOnWarpInstructions(t *testing.T) {
	var ref *Stats
	for _, pol := range Schedulers() {
		cfg := smallTitanV()
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(LaunchSpec{
			Kernel: vecAddKernel(),
			Grid:   ptx.D1(16),
			Block:  ptx.D1(128),
			Args:   []uint64{0, 4 * 2048, 8 * 2048},
			Global: ptx.NewFlatMemory(3 * 4 * 2048),
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if st.CTAsSimulated != 16 {
			t.Errorf("%v: simulated %d CTAs, want 16", pol, st.CTAsSimulated)
		}
		if ref == nil {
			ref = st
			continue
		}
		if st.WarpInstructions != ref.WarpInstructions || st.ThreadInstructions != ref.ThreadInstructions {
			t.Errorf("%v: instructions %d/%d diverge from %d/%d",
				pol, st.WarpInstructions, st.ThreadInstructions,
				ref.WarpInstructions, ref.ThreadInstructions)
		}
	}
}

// The policies must actually schedule differently: on a sub-core with
// competing warps, GTO keeps reissuing the greedy warp while LRR rotates.
func TestPoliciesDiffer(t *testing.T) {
	cycles := map[SchedulerPolicy]uint64{}
	for _, pol := range Schedulers() {
		cfg := TitanV()
		cfg.NumSMs = 1
		cfg.Scheduler = pol
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(LaunchSpec{
			Kernel: mmaLoopKernel(16),
			Grid:   ptx.D1(1),
			Block:  ptx.D1(32 * 8),
			Args:   []uint64{0},
			Global: ptx.NewFlatMemory(4096),
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		cycles[pol] = st.Cycles
	}
	if cycles[GTO] == cycles[LRR] && cycles[GTO] == cycles[TwoLevel] {
		t.Errorf("all policies produced identical cycle counts (%d); the policy axis is inert", cycles[GTO])
	}
}
