package gpu

import "repro/internal/ptx"

// unitPorts models structural availability of a sub-core's execution
// units: each unit accepts a new instruction once the initiation interval
// of the previous one elapses. It is the single seam between the
// scheduler and the units — tryWarp asks free before issuing, issue
// charges the interval through the reserve methods — so the planned
// operand-collector / issue-port model replaces this struct without
// touching the policies or the scheduler driver.
type unitPorts struct {
	tcFree  uint64 // next cycle the tensor cores accept a wmma.mma
	aluFree uint64 // next cycle the ALU pipe accepts
	sfuFree uint64 // next cycle the SFU pipe accepts
}

// free reports whether the instruction's unit can accept at now,
// dispatching on the decoded execution class; when blocked it returns
// the cycle the unit frees.
//
//simlint:hotpath
func (p *unitPorts) free(in *ptx.DInstr, now uint64) (bool, uint64) {
	switch in.Class {
	case ptx.DClassWmmaMMA:
		if p.tcFree > now {
			return false, p.tcFree
		}
	case ptx.DClassSFU:
		if p.sfuFree > now {
			return false, p.sfuFree
		}
	case ptx.DClassALU:
		if p.aluFree > now {
			return false, p.aluFree
		}
	default:
		// LSU queueing is modeled inside mem.SMPort; control ops always
		// accept.
	}
	return true, now
}

// reserve* charge a unit's initiation interval after an issue.
func (p *unitPorts) reserveTC(until uint64)  { p.tcFree = until }
func (p *unitPorts) reserveALU(until uint64) { p.aluFree = until }
func (p *unitPorts) reserveSFU(until uint64) { p.sfuFree = until }
