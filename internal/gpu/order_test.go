package gpu

import (
	"math"
	"math/rand"
	"testing"
)

// The issue-order property harness: a pair of sub-cores — one event-mode
// (incremental zero prefix + age list + masks), one scan-mode (per-cycle
// rescan and sort) — driven through identical randomized sequences of
// issue / hazard-park / barrier / release / finish / CTA-retire / fresh
// dispatch transitions, asserting after every step that the incremental
// issue order equals the legacy scan order and that the mirrored warp
// state has not drifted. This is the equivalence contract of DESIGN.md's
// "O(1) issue selection" at the data-structure level, independent of the
// full-simulation knob tests.

type orderTwin struct {
	ev  *subcore // event mode: the incremental structures under test
	sc  *subcore // scan mode: the legacy oracle
	now uint64
}

func newOrderTwin(pol SchedulerPolicy, nWarps int) *orderTwin {
	tw := &orderTwin{
		ev: &subcore{policy: policyFor(pol), tlCap: defaultTwoLevelActive},
		sc: &subcore{policy: policyFor(pol), scan: true, tlCap: defaultTwoLevelActive},
	}
	tw.ev.reset()
	tw.sc.reset()
	for i := 0; i < nWarps; i++ {
		tw.enqueue()
	}
	return tw
}

// enqueue dispatches one fresh Ready warp to both twins.
func (tw *orderTwin) enqueue() {
	tw.ev.enqueue(&simWarp{state: warpReady})
	tw.sc.enqueue(&simWarp{state: warpReady})
}

// orders computes this cycle's issue order on both twins, mirroring the
// stepSubcore driver: the event twin drains its wake heap first, the
// scan twin rescans.
func (tw *orderTwin) orders() (ev, legacy []int) {
	if len(tw.ev.warps) == 0 {
		return nil, nil
	}
	if tw.ev.greedy >= len(tw.ev.warps) {
		tw.ev.greedy = 0
	}
	if tw.sc.greedy >= len(tw.sc.warps) {
		tw.sc.greedy = 0
	}
	tw.ev.drainWake(tw.now)
	ev = tw.ev.policy.pickEvent(tw.ev, tw.now, nil)
	wake := uint64(math.MaxUint64)
	ready := tw.sc.scanReady(tw.now, &wake)
	legacy = tw.sc.policy.pick(tw.sc, tw.now, ready, nil)
	return ev, legacy
}

// issue replays the tryWarp/issue flow for the warp in slot on both
// twins: lastIssue, the proactive hazard park (or the legacy next-cycle
// stallUntil), the policy's greedy update, and the incremental-order
// update. hazardUntil ≤ now+1 means the next instruction has no pending
// hazard.
func (tw *orderTwin) issue(slot int, hazardUntil uint64) {
	for _, sub := range []*subcore{tw.ev, tw.sc} {
		w := sub.warps[slot]
		w.lastIssue = tw.now
		if hazardUntil > tw.now+1 {
			sub.stall(w, hazardUntil)
		} else if w.stallUntil <= tw.now {
			w.stallUntil = tw.now + 1
		}
		sub.policy.issued(sub, slot)
		if !sub.scan {
			sub.noteIssued(w, tw.now)
		}
	}
}

// issueBarrier replays issuing a bar instruction: the warp parks at the
// barrier but still updates lastIssue and the issue order.
func (tw *orderTwin) issueBarrier(slot int) {
	for _, sub := range []*subcore{tw.ev, tw.sc} {
		w := sub.warps[slot]
		w.lastIssue = tw.now
		sub.toBarrier(w)
		sub.policy.issued(sub, slot)
		if !sub.scan {
			sub.noteIssued(w, tw.now)
		}
	}
}

// issueExit replays issuing an exit: finishWarp runs inside issue, then
// the driver still notes the slot as this cycle's issuer.
func (tw *orderTwin) issueExit(slot int) {
	for _, sub := range []*subcore{tw.ev, tw.sc} {
		w := sub.warps[slot]
		w.lastIssue = tw.now
		sub.finish(w)
		sub.policy.issued(sub, slot)
		if !sub.scan {
			sub.noteIssued(w, tw.now)
		}
	}
}

// finish replays the stream-exhaustion path (PeekD == nil): the warp
// retires without issuing.
func (tw *orderTwin) finish(slot int) {
	tw.ev.finish(tw.ev.warps[slot])
	tw.sc.finish(tw.sc.warps[slot])
}

// release re-arms a warp waiting at the barrier on both twins.
func (tw *orderTwin) release(slot int, until uint64) {
	tw.ev.release(tw.ev.warps[slot], until)
	tw.sc.release(tw.sc.warps[slot], until)
}

func (tw *orderTwin) removeFinished() {
	tw.ev.removeFinished()
	tw.sc.removeFinished()
}

// check asserts the twins agree on issue order and on every warp's
// scheduling state.
func (tw *orderTwin) check(t *testing.T, step int) {
	t.Helper()
	ev, legacy := tw.orders()
	if !intsEqual(ev, legacy) {
		t.Fatalf("step %d cycle %d: incremental order %v != scan order %v", step, tw.now, ev, legacy)
	}
	if tw.ev.greedy != tw.sc.greedy {
		t.Fatalf("step %d: greedy drifted: event %d scan %d", step, tw.ev.greedy, tw.sc.greedy)
	}
	if len(tw.ev.warps) != len(tw.sc.warps) {
		t.Fatalf("step %d: pool sizes drifted: %d vs %d", step, len(tw.ev.warps), len(tw.sc.warps))
	}
	for i := range tw.ev.warps {
		we, ws := tw.ev.warps[i], tw.sc.warps[i]
		// Ready and Stalled normalize together: scan mode derives
		// readiness from stallUntil and never flips the state back, while
		// the event twin's drainWake does — issuable() is the shared truth.
		if normState(we.state) != normState(ws.state) || we.stallUntil != ws.stallUntil ||
			we.lastIssue != ws.lastIssue || we.tlActive != ws.tlActive {
			t.Fatalf("step %d slot %d: warp state drifted: event %+v scan %+v", step, i, *we, *ws)
		}
	}
}

func normState(s warpState) warpState {
	if s == warpStalled {
		return warpReady
	}
	return s
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candidates is the full attempt order the driver would walk: the
// preferred slot (when issuable) followed by the policy order.
func (tw *orderTwin) candidates() []int {
	var out []int
	if p := tw.ev.policy.preferred(tw.ev); p >= 0 && p < len(tw.ev.warps) && tw.ev.warps[p].issuable(tw.now) {
		out = append(out, p)
	}
	ev, _ := tw.orders()
	return append(out, ev...)
}

// runOrderSequence drives both twins through a seeded random transition
// sequence, checking equivalence after every step. maxWarps caps the
// pool so fresh dispatches keep arriving without unbounded growth.
func runOrderSequence(t *testing.T, pol SchedulerPolicy, nWarps int, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tw := newOrderTwin(pol, nWarps)
	maxWarps := nWarps + 8
	for step := 0; step < steps; step++ {
		tw.check(t, step)
		cand := tw.candidates()
		switch op := rng.Intn(100); {
		case op < 55 && len(cand) > 0:
			// Issue the first candidate; half the time its next
			// instruction has a pending hazard and it parks proactively.
			until := tw.now + 1
			if rng.Intn(2) == 0 {
				until = tw.now + 2 + uint64(rng.Intn(8))
			}
			tw.issue(cand[0], until)
		case op < 65 && len(cand) > 0:
			tw.issueBarrier(cand[0])
		case op < 72 && len(cand) > 0:
			tw.issueExit(cand[0])
		case op < 78 && len(cand) > 0:
			tw.finish(cand[0])
		case op < 88:
			// Release one barrier-parked warp, as a CTA-wide release would.
			for off, n := rng.Intn(len(tw.ev.warps)+1), 0; n < len(tw.ev.warps); n++ {
				i := (off + n) % len(tw.ev.warps)
				if tw.ev.warps[i].state == warpAtBarrier {
					tw.release(i, tw.now+1+uint64(rng.Intn(5)))
					break
				}
			}
		case op < 94:
			tw.removeFinished()
		default:
			if len(tw.ev.warps) < maxWarps {
				tw.enqueue()
			}
		}
		// At most one issue per sub-core per cycle: always advance.
		tw.now += 1 + uint64(rng.Intn(3))
	}
	tw.check(t, steps)
}

// TestIssueOrderEquivalence is the table-driven sweep: every policy,
// pool sizes on both sides of the 64-slot mask-word boundary, several
// seeds.
func TestIssueOrderEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		pol    SchedulerPolicy
		nWarps int
		seed   int64
		steps  int
	}{
		{"gto/small", GTO, 4, 1, 400},
		{"gto/subcore16", GTO, 16, 2, 600},
		{"gto/multiword", GTO, 70, 3, 800},
		{"lrr/small", LRR, 4, 4, 400},
		{"lrr/subcore16", LRR, 16, 5, 600},
		{"lrr/multiword", LRR, 70, 6, 800},
		{"twolevel/small", TwoLevel, 4, 7, 400},
		{"twolevel/subcore16", TwoLevel, 16, 8, 600},
		{"twolevel/multiword", TwoLevel, 70, 9, 800},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runOrderSequence(t, c.pol, c.nWarps, c.seed, c.steps)
		})
	}
}

// TestIssueOrderCycleZeroTie pins the subtlety the zero prefix encodes:
// a warp that issues at cycle 0 keeps lastIssue == 0, so the legacy GTO
// comparator cannot distinguish it from never-issued warps — it must
// stay in the rotation-ordered zero group, not join the age list.
func TestIssueOrderCycleZeroTie(t *testing.T) {
	tw := newOrderTwin(GTO, 4)
	tw.issue(2, 1) // issues at cycle 0; lastIssue stays 0
	tw.now = 1
	ev, legacy := tw.orders()
	want := []int{3, 0, 1} // rotation from greedy+1, greedy (2) excluded
	if !intsEqual(ev, want) || !intsEqual(legacy, want) {
		t.Fatalf("after cycle-0 issue: event %v scan %v, want %v", ev, legacy, want)
	}
	if tw.ev.warps[2].inAge {
		t.Fatal("cycle-0 issuer must stay in the zero prefix, not the age list")
	}
}

// TestIssueOrderReissueAndCompaction pins the age-list splices: re-issue
// moves a warp to the tail, finish unlinks it, and CTA-retire compaction
// renumbers slots without breaking the chain.
func TestIssueOrderReissueAndCompaction(t *testing.T) {
	tw := newOrderTwin(GTO, 5)
	tw.now = 1
	tw.issue(1, 2)
	tw.now = 2
	tw.issue(3, 3)
	tw.now = 4
	tw.issue(1, 5) // re-issue: 1 moves behind 3 in age order
	tw.now = 6
	ev, legacy := tw.orders()
	// greedy is 1; zero group {0,2,4} rotated from slot 2, then ages 3, (1 excluded).
	want := []int{2, 4, 0, 3}
	if !intsEqual(ev, want) || !intsEqual(legacy, want) {
		t.Fatalf("after re-issue: event %v scan %v, want %v", ev, legacy, want)
	}
	tw.issueExit(3)
	tw.removeFinished() // slot 4 renumbers to 3
	tw.now = 7
	tw.check(t, 0)
	if head := tw.ev.ageHead; head == nil || head.slot != 1 || head.ageNext != nil {
		t.Fatalf("age list must hold exactly the re-issued warp after compaction")
	}
}

// FuzzIssueOrder fuzzes the transition sequence. The seed corpus uses
// the fig17 quick occupancy shapes: 8 warps (one CTA per sub-core), 16
// (the max-occupancy SIMT GEMM's per-sub-core load) and 64 (a full SM's
// warp budget landing on one sub-core in the 1-SM ablation).
func FuzzIssueOrder(f *testing.F) {
	f.Add(int64(17), uint8(0), uint8(8), uint16(300))
	f.Add(int64(17), uint8(1), uint8(16), uint16(300))
	f.Add(int64(17), uint8(2), uint8(64), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, pol, nWarps uint8, steps uint16) {
		policies := []SchedulerPolicy{GTO, LRR, TwoLevel}
		n := int(nWarps)%96 + 1
		s := int(steps) % 1000
		runOrderSequence(t, policies[int(pol)%len(policies)], n, seed, s)
	})
}
