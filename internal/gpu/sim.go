package gpu

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/ptx"
)

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *ptx.Kernel
	Grid   ptx.Dim3
	Block  ptx.Dim3
	Args   []uint64
	Global ptx.Memory
	// MaxCTAs, when nonzero, simulates only the first MaxCTAs thread
	// blocks in row-major grid order. Stats report the sampled and total
	// counts so large problems can be extrapolated (see DESIGN.md's scale
	// substitution note).
	MaxCTAs int
	// Trace enables per-instruction latency tracing for the wmma ops.
	Trace bool
}

// Trace holds sampled per-dynamic-instruction latencies (issue to
// writeback), the quantity the paper's clock-bracketing microbenchmarks
// observe in Figures 15 and 16.
type Trace struct {
	WmmaLoad  []float64
	WmmaMMA   []float64
	WmmaStore []float64
}

// Stats summarizes one simulated kernel launch.
type Stats struct {
	Cycles             uint64
	WarpInstructions   uint64
	ThreadInstructions uint64
	TensorOps          uint64 // wmma.mma instructions issued
	CTAsSimulated      int
	CTAsTotal          int

	L1HitRate       float64
	L2HitRate       float64
	DRAMAccesses    uint64
	SharedConflicts uint64

	Trace *Trace
}

// IPC returns warp instructions per cycle across the whole GPU — the
// metric of the paper's Figure 14b correlation.
func (st *Stats) IPC() float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.WarpInstructions) / float64(st.Cycles)
}

// Seconds converts the cycle count to wall time at the configured clock.
func (st *Stats) Seconds(cfg Config) float64 {
	return float64(st.Cycles) / (cfg.ClockMHz * 1e6)
}

// Simulator is a configured GPU. A Simulator is single-use per Run in the
// sense that caches stay warm between runs; construct a fresh one per
// experiment for cold-start behaviour.
type Simulator struct {
	cfg   Config
	sys   *mem.System
	sms   []*sm
	cycle uint64
}

// New builds a simulator for the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, sys: mem.NewSystem(cfg.Mem)}
	for i := 0; i < cfg.NumSMs; i++ {
		m := &sm{id: i, sim: s, port: s.sys.NewSMPort()}
		m.subcores = make([]*subcore, cfg.SubCores)
		for j := range m.subcores {
			m.subcores[j] = &subcore{}
		}
		s.sms = append(s.sms, m)
	}
	return s, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

type sm struct {
	id       int
	sim      *Simulator
	port     *mem.SMPort
	subcores []*subcore
	ctas     []*simCTA
	warps    int // live warps
	shared   int // shared bytes in use
}

type subcore struct {
	warps   []*simWarp
	tcFree  uint64
	aluFree uint64
	sfuFree uint64
	greedy  int // index of the warp GTO sticks with
}

type simCTA struct {
	env       *ptx.Env
	warps     []*simWarp
	live      int
	atBarrier int
}

type simWarp struct {
	warp       *ptx.Warp
	cta        *simCTA
	sc         *subcore
	regReady   []uint64
	stallUntil uint64
	lastIssue  uint64
	barrier    bool
	finished   bool
}

// Run simulates the launch to completion and returns its statistics.
func (s *Simulator) Run(spec LaunchSpec) (*Stats, error) {
	if spec.Kernel == nil || spec.Global == nil {
		return nil, fmt.Errorf("gpu: launch needs a kernel and global memory")
	}
	total := spec.Grid.Count()
	limit := total
	if spec.MaxCTAs > 0 && spec.MaxCTAs < total {
		limit = spec.MaxCTAs
	}
	d := &dispatcher{spec: spec, sim: s, limit: limit}
	st := &Stats{CTAsTotal: total}
	if spec.Trace {
		st.Trace = &Trace{}
	}

	// Reset per-run state.
	s.cycle = 0
	for _, m := range s.sms {
		m.ctas = m.ctas[:0]
		m.warps = 0
		m.shared = 0
		for _, sc := range m.subcores {
			sc.warps = sc.warps[:0]
			sc.tcFree, sc.aluFree, sc.sfuFree, sc.greedy = 0, 0, 0, 0
		}
	}
	// Initial dispatch: round-robin one CTA per SM per pass, so the grid
	// spreads across the chip the way the hardware work distributor does.
	for {
		progress := false
		for _, m := range s.sms {
			added, err := d.fillOne(m)
			if err != nil {
				return nil, err
			}
			progress = progress || added
		}
		if !progress {
			break
		}
	}

	const maxCycles = 4_000_000_000
	for {
		issuedAny := false
		liveAny := false
		var minWake uint64 = math.MaxUint64
		for _, m := range s.sms {
			iss, live, wake, err := m.step(st)
			if err != nil {
				return nil, err
			}
			// Refill a completed CTA slot (one per SM per cycle).
			if _, err := d.fillOne(m); err != nil {
				return nil, err
			}
			issuedAny = issuedAny || iss
			liveAny = liveAny || live || len(m.ctas) > 0
			if wake < minWake {
				minWake = wake
			}
		}
		if !liveAny && d.done() {
			break
		}
		if issuedAny {
			s.cycle++
		} else {
			if minWake == math.MaxUint64 {
				return nil, fmt.Errorf("gpu: deadlock at cycle %d", s.cycle)
			}
			if minWake <= s.cycle {
				s.cycle++
			} else {
				s.cycle = minWake
			}
		}
		if s.cycle > maxCycles {
			return nil, fmt.Errorf("gpu: exceeded %d cycles", uint64(maxCycles))
		}
	}

	st.Cycles = s.cycle
	st.CTAsSimulated = d.started
	var l1h, l1m uint64
	for _, m := range s.sms {
		l1h += m.port.L1Hits
		l1m += m.port.L1Misses
		st.SharedConflicts += m.port.SharedConflicts
	}
	if l1h+l1m > 0 {
		st.L1HitRate = float64(l1h) / float64(l1h+l1m)
	}
	st.L2HitRate = s.sys.L2HitRate()
	st.DRAMAccesses = s.sys.DRAMAccesses
	return st, nil
}

// dispatcher hands grid CTAs to SMs as capacity frees up.
type dispatcher struct {
	spec    LaunchSpec
	sim     *Simulator
	next    int
	limit   int
	started int
}

func (d *dispatcher) done() bool { return d.next >= d.limit }

// fillOne assigns at most one CTA to the SM if occupancy limits allow.
func (d *dispatcher) fillOne(m *sm) (bool, error) {
	cfg := d.sim.cfg
	k := d.spec.Kernel
	warpsPerCTA := (d.spec.Block.Count() + 31) / 32
	if d.done() ||
		len(m.ctas) >= cfg.MaxCTAsPerSM ||
		m.warps+warpsPerCTA > cfg.MaxWarpsPerSM ||
		m.shared+k.SharedBytes > cfg.SharedPerSM {
		return false, nil
	}
	id := d.next
	d.next++
	d.started++
	ctaID := ptx.Dim3{
		X: id % d.spec.Grid.X,
		Y: (id / d.spec.Grid.X) % d.spec.Grid.Y,
		Z: id / (d.spec.Grid.X * d.spec.Grid.Y),
	}
	env := &ptx.Env{
		Global:   d.spec.Global,
		Shared:   make([]byte, k.SharedBytes),
		GridDim:  d.spec.Grid,
		BlockDim: d.spec.Block,
		CtaID:    ctaID,
	}
	sim := d.sim
	env.Clock = func() uint64 { return sim.cycle }
	cta := &simCTA{env: env}
	for wi := 0; wi < warpsPerCTA; wi++ {
		w, err := ptx.NewWarp(k, env, wi, d.spec.Args)
		if err != nil {
			return false, err
		}
		sc := m.subcores[(m.warps+wi)%cfg.SubCores]
		sw := &simWarp{warp: w, cta: cta, sc: sc, regReady: make([]uint64, k.NumRegs)}
		if w.Exited {
			sw.finished = true
		} else {
			cta.live++
		}
		cta.warps = append(cta.warps, sw)
		sc.warps = append(sc.warps, sw)
	}
	m.warps += warpsPerCTA
	m.shared += k.SharedBytes
	m.ctas = append(m.ctas, cta)
	return true, nil
}

// step advances one SM by one cycle: each sub-core scheduler issues at
// most one warp instruction. Returns whether anything issued, whether any
// warp is still live, and the earliest cycle at which a currently stalled
// warp could issue.
func (m *sm) step(st *Stats) (issued, live bool, wake uint64, err error) {
	wake = math.MaxUint64
	now := m.sim.cycle
	for _, sc := range m.subcores {
		iss, lv, wk, e := m.stepSubcore(sc, now, st)
		if e != nil {
			return false, false, 0, e
		}
		issued = issued || iss
		live = live || lv
		if wk < wake {
			wake = wk
		}
	}
	// Retire finished CTAs.
	kept := m.ctas[:0]
	for _, cta := range m.ctas {
		if cta.live > 0 {
			kept = append(kept, cta)
			continue
		}
		m.warps -= len(cta.warps)
		m.shared -= len(cta.env.Shared)
		for _, sc := range m.subcores {
			sc.removeFinished()
		}
	}
	m.ctas = kept
	return issued, live, wake, nil
}

func (sc *subcore) removeFinished() {
	kept := sc.warps[:0]
	for _, w := range sc.warps {
		if !w.finished {
			kept = append(kept, w)
		}
	}
	sc.warps = kept
	if sc.greedy >= len(sc.warps) {
		sc.greedy = 0
	}
}

// candidateOrder yields scheduler-ordered warp indexes.
func (sc *subcore) candidateOrder(policy SchedulerPolicy, buf []int) []int {
	n := len(sc.warps)
	buf = buf[:0]
	if n == 0 {
		return buf
	}
	start := sc.greedy
	if policy == LRR {
		start = (sc.greedy + 1) % n
	}
	for i := 0; i < n; i++ {
		buf = append(buf, (start+i)%n)
	}
	if policy == GTO && n > 2 {
		// After the greedy warp, prefer the oldest (least recently
		// issued): simple selection over the remainder.
		rest := buf[1:]
		for i := 0; i < len(rest); i++ {
			best := i
			for j := i + 1; j < len(rest); j++ {
				if sc.warps[rest[j]].lastIssue < sc.warps[rest[best]].lastIssue {
					best = j
				}
			}
			rest[i], rest[best] = rest[best], rest[i]
		}
	}
	return buf
}

func (m *sm) stepSubcore(sc *subcore, now uint64, st *Stats) (issued, live bool, wake uint64, err error) {
	wake = math.MaxUint64
	var order [64]int
	for _, idx := range sc.candidateOrder(m.sim.cfg.Scheduler, order[:0]) {
		w := sc.warps[idx]
		if w.finished {
			continue
		}
		live = true
		if w.barrier {
			continue
		}
		if w.stallUntil > now {
			if w.stallUntil < wake {
				wake = w.stallUntil
			}
			continue
		}
		in := w.warp.Peek()
		if in == nil {
			m.finishWarp(w, now)
			continue
		}
		if ready, at := w.operandsReady(in, now); !ready {
			w.stallUntil = at
			if at < wake {
				wake = at
			}
			continue
		}
		if free, at := m.unitFree(sc, in, now); !free {
			if at < wake {
				wake = at
			}
			continue
		}
		if err := m.issue(sc, w, in, now, st); err != nil {
			return false, live, wake, err
		}
		sc.greedy = idx
		return true, live, wake, nil
	}
	return false, live, wake, nil
}

func (m *sm) finishWarp(w *simWarp, now uint64) {
	w.finished = true
	w.cta.live--
	m.maybeReleaseBarrier(w.cta, now)
}

// operandsReady checks the scoreboard for RAW and WAW hazards.
func (w *simWarp) operandsReady(in *ptx.Instr, now uint64) (bool, uint64) {
	latest := uint64(0)
	check := func(r ptx.Reg) {
		if t := w.regReady[r.ID]; t > latest {
			latest = t
		}
	}
	for _, o := range in.Src {
		if o.Kind == ptx.OperandReg {
			check(o.Reg)
		}
	}
	for _, r := range in.Dst {
		check(r)
	}
	if in.Pred != nil {
		check(*in.Pred)
	}
	if latest > now {
		return false, latest
	}
	return true, now
}

// unitFree checks structural availability of the instruction's unit.
func (m *sm) unitFree(sc *subcore, in *ptx.Instr, now uint64) (bool, uint64) {
	switch in.Op {
	case ptx.OpWmmaMMA:
		if sc.tcFree > now {
			return false, sc.tcFree
		}
	case ptx.OpDiv, ptx.OpRem:
		if sc.sfuFree > now {
			return false, sc.sfuFree
		}
	case ptx.OpLd, ptx.OpSt, ptx.OpWmmaLoad, ptx.OpWmmaStore, ptx.OpBar, ptx.OpBra, ptx.OpExit:
		// LSU queueing is modeled inside mem.SMPort; control ops always
		// accept.
	default:
		if sc.aluFree > now {
			return false, sc.aluFree
		}
	}
	return true, now
}

// issue executes the instruction functionally and charges its timing.
func (m *sm) issue(sc *subcore, w *simWarp, in *ptx.Instr, now uint64, st *Stats) error {
	cfg := m.sim.cfg
	res, err := w.warp.Step()
	if err != nil {
		return err
	}
	st.WarpInstructions++
	for lane := 0; lane < 32; lane++ {
		if w.warp.Active[lane] {
			st.ThreadInstructions++
		}
	}
	w.lastIssue = now

	done := now + uint64(cfg.IssueLatency)
	switch in.Op {
	case ptx.OpBra:
		done += 1
	case ptx.OpExit:
		m.finishWarp(w, now)
		return nil
	case ptx.OpBar:
		w.barrier = true
		w.cta.atBarrier++
		m.maybeReleaseBarrier(w.cta, now)
		return nil
	case ptx.OpDiv, ptx.OpRem:
		sc.sfuFree = now + uint64(cfg.SFUII)
		done += uint64(cfg.SFULatency)
	case ptx.OpLd, ptx.OpSt:
		done = m.accessMemory(res, now) + uint64(cfg.IssueLatency)
	case ptx.OpWmmaLoad, ptx.OpWmmaStore:
		done = m.accessMemory(res, now) + uint64(cfg.IssueLatency+cfg.WmmaMemOverhead)
		if st.Trace != nil {
			lat := float64(done - now)
			if in.Op == ptx.OpWmmaLoad {
				st.Trace.WmmaLoad = append(st.Trace.WmmaLoad, lat)
			} else {
				st.Trace.WmmaStore = append(st.Trace.WmmaStore, lat)
			}
		}
	case ptx.OpWmmaMMA:
		st.TensorOps++
		timing, err := cfg.tensorTiming(in.WConfig)
		if err != nil {
			return err
		}
		sc.tcFree = now + cfg.tensorOccupancy(in.WConfig)
		done = now + uint64(timing.Total())
		if st.Trace != nil {
			st.Trace.WmmaMMA = append(st.Trace.WmmaMMA, float64(done-now))
		}
	default:
		sc.aluFree = now + uint64(cfg.ALUII)
		done += uint64(cfg.ALULatency)
	}

	for _, r := range in.Dst {
		w.regReady[r.ID] = done
	}
	// The next instruction of this warp issues no earlier than next cycle.
	if w.stallUntil <= now {
		w.stallUntil = now + 1
	}
	return nil
}

// accessMemory routes an instruction's accesses through the SM port.
func (m *sm) accessMemory(res ptx.Result, now uint64) uint64 {
	var shared, global []mem.Request
	for _, a := range res.Accesses {
		r := mem.Request{Addr: a.Addr, Bits: a.Bits, Store: a.Store}
		if a.Space == ptx.Shared {
			shared = append(shared, r)
		} else {
			global = append(global, r)
		}
	}
	done := now
	if len(shared) > 0 {
		if t := m.port.AccessShared(now, shared); t > done {
			done = t
		}
	}
	if len(global) > 0 {
		if t := m.port.AccessGlobal(now, global); t > done {
			done = t
		}
	}
	return done
}

// maybeReleaseBarrier releases the CTA's barrier once every live warp has
// arrived (exited warps do not participate).
func (m *sm) maybeReleaseBarrier(cta *simCTA, now uint64) {
	if cta.live == 0 || cta.atBarrier < cta.live {
		return
	}
	for _, w := range cta.warps {
		if w.barrier {
			w.barrier = false
			w.warp.AtBarrier = false
			w.stallUntil = now + uint64(m.sim.cfg.BarrierLatency)
		}
	}
	cta.atBarrier = 0
}
