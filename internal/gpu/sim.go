package gpu

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/ptx"
)

// LaunchSpec describes one kernel launch.
type LaunchSpec struct {
	Kernel *ptx.Kernel
	Grid   ptx.Dim3
	Block  ptx.Dim3
	Args   []uint64
	Global ptx.Memory
	// MaxCTAs, when nonzero, simulates only the first MaxCTAs thread
	// blocks in row-major grid order. Stats report the sampled and total
	// counts so large problems can be extrapolated (see DESIGN.md's scale
	// substitution note).
	MaxCTAs int
	// Trace enables per-instruction latency tracing for the wmma ops.
	Trace bool
	// MaxCycles caps the simulated cycle count (0 = the defaultMaxCycles
	// backstop). It is the watchdog that reaps a malformed or injected
	// infinite-loop kernel with an ErrCycleBudget error instead of
	// letting it occupy a shared pool worker forever.
	MaxCycles uint64
	// Ctx, when non-nil, is polled periodically by the event loop so a
	// long simulation can be canceled mid-run (SIGINT drain, fault-
	// injected kills). A canceled run returns an error wrapping
	// Ctx.Err(), so errors.Is(err, context.Canceled) identifies it.
	Ctx context.Context
}

// ErrCycleBudget marks a simulation reaped by the LaunchSpec.MaxCycles
// watchdog (or the defaultMaxCycles backstop). Match with errors.Is.
var ErrCycleBudget = errors.New("cycle budget exceeded")

// Trace holds sampled per-dynamic-instruction latencies (issue to
// writeback), the quantity the paper's clock-bracketing microbenchmarks
// observe in Figures 15 and 16.
type Trace struct {
	WmmaLoad  []float64
	WmmaMMA   []float64
	WmmaStore []float64
}

// Stats summarizes one simulated kernel launch.
type Stats struct {
	Cycles             uint64
	WarpInstructions   uint64
	ThreadInstructions uint64
	TensorOps          uint64 // wmma.mma instructions issued
	CTAsSimulated      int
	CTAsTotal          int

	L1HitRate       float64
	L2HitRate       float64
	DRAMAccesses    uint64
	SharedConflicts uint64

	Trace *Trace
}

// IPC returns warp instructions per cycle across the whole GPU — the
// metric of the paper's Figure 14b correlation.
func (st *Stats) IPC() float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.WarpInstructions) / float64(st.Cycles)
}

// Seconds converts the cycle count to wall time at the configured clock.
func (st *Stats) Seconds(cfg Config) float64 {
	if cfg.ClockMHz == 0 {
		return 0
	}
	return float64(st.Cycles) / (cfg.ClockMHz * 1e6)
}

// Simulator is a configured GPU. A Simulator is single-use per Run in the
// sense that caches stay warm between runs; construct a fresh one per
// experiment for cold-start behaviour.
type Simulator struct {
	cfg   Config
	sys   *mem.System
	sms   []*sm
	cycle uint64
}

// New builds a simulator for the configuration. The ScanScheduler debug
// knob is sampled here, like ptx.InterpretALU at decode time.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, sys: mem.NewSystem(cfg.Mem)}
	pol := policyFor(cfg.Scheduler)
	scan := scanScheduler.Load()
	tlCap := cfg.TwoLevelActive
	if tlCap <= 0 {
		tlCap = defaultTwoLevelActive
	}
	for i := 0; i < cfg.NumSMs; i++ {
		m := &sm{id: i, sim: s, port: s.sys.NewSMPort()}
		m.subcores = make([]*subcore, cfg.SubCores)
		for j := range m.subcores {
			m.subcores[j] = &subcore{policy: pol, scan: scan, tlCap: tlCap}
		}
		s.sms = append(s.sms, m)
	}
	return s, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

type sm struct {
	id       int
	sim      *Simulator
	port     *mem.SMPort
	subcores []*subcore
	ctas     []*simCTA
	warps    int // live warps
	shared   int // shared bytes in use
	// nextWake caches the earliest cycle at which this SM can issue again.
	// While the global clock is below it the SM is skipped entirely — the
	// idle-cycle fast-forward that lets Run jump over stall periods without
	// rescanning every scheduler. It resets to the next cycle whenever the
	// SM issues or receives a new CTA.
	nextWake uint64
	// Reusable per-instruction request buffers for accessMemory: the
	// batched vector groups (default) and the per-lane request slices of
	// the legacy access path.
	sharedVecs []mem.AddrVec
	globalVecs []mem.AddrVec
	sharedReqs []mem.Request
	globalReqs []mem.Request
	// releaseWake collects barrier wake-ups triggered while this step's
	// scan is in flight (see step).
	releaseWake uint64
}

// Run simulates the launch to completion and returns its statistics.
func (s *Simulator) Run(spec LaunchSpec) (*Stats, error) {
	if spec.Kernel == nil || spec.Global == nil {
		return nil, fmt.Errorf("gpu: launch needs a kernel and global memory")
	}
	total := spec.Grid.Count()
	limit := total
	if spec.MaxCTAs > 0 && spec.MaxCTAs < total {
		limit = spec.MaxCTAs
	}
	d := &dispatcher{spec: spec, sim: s, limit: limit}
	st := &Stats{CTAsTotal: total}
	if spec.Trace {
		st.Trace = &Trace{}
	}

	// Reset per-run state.
	s.cycle = 0
	for _, m := range s.sms {
		m.ctas = m.ctas[:0]
		m.warps = 0
		m.shared = 0
		m.nextWake = 0
		for _, sc := range m.subcores {
			sc.reset()
		}
	}
	// Initial dispatch: round-robin one CTA per SM per pass, so the grid
	// spreads across the chip the way the hardware work distributor does.
	for {
		progress := false
		for _, m := range s.sms {
			added, err := d.fillOne(m)
			if err != nil {
				return nil, err
			}
			progress = progress || added
		}
		if !progress {
			break
		}
	}

	const defaultMaxCycles = 4_000_000_000
	budget := uint64(defaultMaxCycles)
	if spec.MaxCycles > 0 {
		budget = spec.MaxCycles
	}
	var iters uint64
	for {
		// Cancellation poll, off the per-iteration fast path: checking
		// every 1024 loop passes keeps ctx.Err()'s mutex out of the hot
		// loop while bounding cancellation latency to microseconds.
		iters++
		if spec.Ctx != nil && iters&1023 == 0 {
			if err := spec.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("gpu: canceled at cycle %d: %w", s.cycle, err)
			}
		}
		issuedAny := false
		addedAny := false
		liveAny := false
		var minWake uint64 = math.MaxUint64
		for _, m := range s.sms {
			// An SM whose earliest possible issue is still in the future
			// cannot change state on its own: warp wake-ups, barrier
			// releases and CTA retirement all require an issue in this SM.
			// Skipping it here is what turns stall periods into a single
			// clock jump instead of per-cycle scheduler scans.
			if m.nextWake <= s.cycle {
				iss, wake, err := m.step(st)
				if err != nil {
					return nil, err
				}
				if iss {
					issuedAny = true
					m.nextWake = s.cycle + 1
				} else {
					// wake > cycle whenever nothing issued; clamp
					// defensively so a stale value can never skip work.
					m.nextWake = max(wake, s.cycle+1)
				}
			}
			// Refill a completed CTA slot (one per SM per cycle).
			added, err := d.fillOne(m)
			if err != nil {
				return nil, err
			}
			if added {
				addedAny = true
				m.nextWake = s.cycle + 1
			}
			liveAny = liveAny || len(m.ctas) > 0
			if m.nextWake < minWake {
				minWake = m.nextWake
			}
		}
		if !liveAny && d.done() {
			break
		}
		if issuedAny || addedAny {
			s.cycle++
		} else {
			if minWake == math.MaxUint64 {
				return nil, fmt.Errorf("gpu: deadlock at cycle %d", s.cycle)
			}
			if minWake <= s.cycle {
				s.cycle++
			} else {
				s.cycle = minWake
			}
		}
		if s.cycle > budget {
			return nil, fmt.Errorf("gpu: %w after %d cycles", ErrCycleBudget, budget)
		}
	}

	st.Cycles = s.cycle
	st.CTAsSimulated = d.started
	var l1h, l1m uint64
	for _, m := range s.sms {
		l1h += m.port.L1Hits
		l1m += m.port.L1Misses
		st.SharedConflicts += m.port.SharedConflicts
	}
	if l1h+l1m > 0 {
		st.L1HitRate = float64(l1h) / float64(l1h+l1m)
	}
	st.L2HitRate = s.sys.L2HitRate()
	st.DRAMAccesses = s.sys.DRAMAccesses
	return st, nil
}

// dispatcher hands grid CTAs to SMs as capacity frees up.
type dispatcher struct {
	spec    LaunchSpec
	sim     *Simulator
	next    int
	limit   int
	started int
}

func (d *dispatcher) done() bool { return d.next >= d.limit }

// fillOne assigns at most one CTA to the SM if occupancy limits allow.
func (d *dispatcher) fillOne(m *sm) (bool, error) {
	cfg := d.sim.cfg
	k := d.spec.Kernel
	warpsPerCTA := (d.spec.Block.Count() + 31) / 32
	if d.done() ||
		len(m.ctas) >= cfg.MaxCTAsPerSM ||
		m.warps+warpsPerCTA > cfg.MaxWarpsPerSM ||
		m.shared+k.SharedBytes > cfg.SharedPerSM {
		return false, nil
	}
	id := d.next
	d.next++
	d.started++
	ctaID := ptx.Dim3{
		X: id % d.spec.Grid.X,
		Y: (id / d.spec.Grid.X) % d.spec.Grid.Y,
		Z: id / (d.spec.Grid.X * d.spec.Grid.Y),
	}
	env := &ptx.Env{
		Global:   d.spec.Global,
		Shared:   make([]byte, k.SharedBytes),
		GridDim:  d.spec.Grid,
		BlockDim: d.spec.Block,
		CtaID:    ctaID,
	}
	sim := d.sim
	env.Clock = func() uint64 { return sim.cycle }
	cta := &simCTA{env: env}
	for wi := 0; wi < warpsPerCTA; wi++ {
		w, err := ptx.NewWarp(k, env, wi, d.spec.Args)
		if err != nil {
			return false, err
		}
		sc := m.subcores[(m.warps+wi)%cfg.SubCores]
		sc.nextWake = 0 // new warps can issue immediately
		sw := &simWarp{warp: w, cta: cta, sc: sc, regReady: make([]uint64, k.NumRegs)}
		if w.Exited {
			sw.state = warpFinished
		} else {
			cta.live++
		}
		cta.warps = append(cta.warps, sw)
		sc.enqueue(sw)
	}
	m.warps += warpsPerCTA
	m.shared += k.SharedBytes
	m.ctas = append(m.ctas, cta)
	return true, nil
}

// step advances one SM by one cycle: each sub-core scheduler issues at
// most one warp instruction. Returns whether anything issued and the
// earliest cycle at which a currently stalled warp could issue.
func (m *sm) step(st *Stats) (issued bool, wake uint64, err error) {
	wake = math.MaxUint64
	now := m.sim.cycle
	m.releaseWake = math.MaxUint64
	for _, sc := range m.subcores {
		if sc.nextWake > now {
			// Sub-core granularity of the idle fast-forward: all of this
			// sub-core's warps are stalled, at a barrier, or finished, and
			// none of that can change before nextWake except through a
			// barrier release (handled below via pendingWake) or a CTA
			// dispatch (which resets the wake).
			if sc.nextWake < wake {
				wake = sc.nextWake
			}
			continue
		}
		iss, wk, e := m.stepSubcore(sc, now, st)
		if e != nil {
			return false, 0, e
		}
		if iss {
			sc.nextWake = now + 1
		} else {
			sc.nextWake = max(wk, now+1)
		}
		// A barrier released during this sub-core's own scan re-arms warps
		// the scan had already passed over.
		if sc.pendingWake < sc.nextWake {
			sc.nextWake = sc.pendingWake
		}
		sc.pendingWake = math.MaxUint64
		issued = issued || iss
		if sc.nextWake < wake {
			wake = sc.nextWake
		}
	}
	// A barrier released mid-scan re-arms warps that earlier sub-core
	// scans already skipped; fold their wake-up in so the SM-level
	// fast-forward cannot sleep past them.
	if m.releaseWake < wake {
		wake = m.releaseWake
	}
	// Retire finished CTAs.
	kept := m.ctas[:0]
	for _, cta := range m.ctas {
		if cta.live > 0 {
			kept = append(kept, cta)
			continue
		}
		m.warps -= len(cta.warps)
		m.shared -= len(cta.env.Shared)
		for _, sc := range m.subcores {
			sc.removeFinished()
		}
	}
	m.ctas = kept
	return issued, wake, nil
}

// finishWarp retires a warp and releases its CTA's barrier if it was the
// last straggler the barrier was waiting for.
func (m *sm) finishWarp(w *simWarp, now uint64) {
	w.sc.finish(w)
	w.cta.live--
	m.maybeReleaseBarrier(w.cta, now)
}

// issue executes the instruction functionally and charges its timing.
func (m *sm) issue(sc *subcore, w *simWarp, in *ptx.DInstr, now uint64, st *Stats) error {
	cfg := m.sim.cfg
	var res ptx.Result
	if err := w.warp.StepInto(&res); err != nil {
		return err
	}
	st.WarpInstructions++
	st.ThreadInstructions += uint64(w.warp.NLanes())
	w.lastIssue = now

	done := now + uint64(cfg.IssueLatency)
	switch in.Class {
	case ptx.DClassBra:
		done += 1
	case ptx.DClassExit:
		m.finishWarp(w, now)
		return nil
	case ptx.DClassBar:
		sc.toBarrier(w)
		w.cta.atBarrier++
		m.maybeReleaseBarrier(w.cta, now)
		return nil
	case ptx.DClassSFU:
		sc.ports.reserveSFU(now + uint64(cfg.SFUII))
		done += uint64(cfg.SFULatency)
	case ptx.DClassLd, ptx.DClassSt:
		done = m.accessMemory(&res, now) + uint64(cfg.IssueLatency)
	case ptx.DClassWmmaLoad, ptx.DClassWmmaStore:
		done = m.accessMemory(&res, now) + uint64(cfg.IssueLatency+cfg.WmmaMemOverhead)
		if st.Trace != nil {
			lat := float64(done - now)
			if in.Class == ptx.DClassWmmaLoad {
				st.Trace.WmmaLoad = append(st.Trace.WmmaLoad, lat)
			} else {
				st.Trace.WmmaStore = append(st.Trace.WmmaStore, lat)
			}
		}
	case ptx.DClassWmmaMMA:
		st.TensorOps++
		timing, err := cfg.tensorTiming(in.In.WConfig)
		if err != nil {
			return err
		}
		sc.ports.reserveTC(now + cfg.tensorOccupancy(in.In.WConfig))
		done = now + uint64(timing.Total())
		if st.Trace != nil {
			st.Trace.WmmaMMA = append(st.Trace.WmmaMMA, float64(done-now))
		}
	default:
		sc.ports.reserveALU(now + uint64(cfg.ALUII))
		done += uint64(cfg.ALULatency)
	}

	for _, id := range in.DstRegs() {
		w.regReady[id] = done
	}
	// Proactive scoreboard wake: this warp's regReady only changes when
	// the warp itself issues, so the next instruction's hazard-clear
	// cycle computed right here is exact. When it is beyond the next
	// cycle, park the warp on the wake heap now — it never re-enters the
	// ready set, so the scheduler stops re-screening a warp whose stall
	// outcome is already known. Runs in both knob modes (scan mode reads
	// the same stallUntil through its per-cycle screen) so the policies
	// keep seeing identical candidate sets.
	if next := w.warp.PeekD(); next != nil {
		if at := w.hazardClear(next); at > now+1 {
			sc.stall(w, at)
			return nil
		}
	}
	// The next instruction of this warp issues no earlier than next cycle.
	// The warp stays Ready: its sub-core is guaranteed to step again at
	// now+1, where the scheduler either issues it again or parks it on
	// the scoreboard.
	if w.stallUntil <= now {
		w.stallUntil = now + 1
	}
	return nil
}

// accessMemory routes an instruction's accesses through the SM port. The
// batched path hands the executor's address vectors to the memory system
// directly (mem.AddrVec aliases each group's address array — no per-lane
// copy); the legacy path re-materializes per-lane request slices.
func (m *sm) accessMemory(res *ptx.Result, now uint64) uint64 {
	if len(res.Batch) > 0 {
		shared, global := m.sharedVecs[:0], m.globalVecs[:0]
		for i := range res.Batch {
			g := &res.Batch[i]
			v := mem.AddrVec{Addr: &g.Addr, Mask: g.Mask, Bits: g.Bits, Store: g.Store}
			if g.Space == ptx.Shared {
				shared = append(shared, v)
			} else {
				global = append(global, v)
			}
		}
		m.sharedVecs, m.globalVecs = shared[:0], global[:0]
		done := now
		if len(shared) > 0 {
			if t := m.port.AccessSharedVecs(now, shared); t > done {
				done = t
			}
		}
		if len(global) > 0 {
			if t := m.port.AccessGlobalVecs(now, global); t > done {
				done = t
			}
		}
		return done
	}
	shared, global := m.sharedReqs[:0], m.globalReqs[:0]
	for _, a := range res.Accesses {
		r := mem.Request{Addr: a.Addr, Bits: a.Bits, Store: a.Store}
		if a.Space == ptx.Shared {
			shared = append(shared, r)
		} else {
			global = append(global, r)
		}
	}
	m.sharedReqs, m.globalReqs = shared[:0], global[:0]
	done := now
	if len(shared) > 0 {
		if t := m.port.AccessShared(now, shared); t > done {
			done = t
		}
	}
	if len(global) > 0 {
		if t := m.port.AccessGlobal(now, global); t > done {
			done = t
		}
	}
	return done
}

// maybeReleaseBarrier releases the CTA's barrier once every live warp has
// arrived (exited warps do not participate). Released warps re-arm as
// Stalled until the barrier latency expires; their sub-cores are woken
// directly when their scan already ran this cycle and via pendingWake
// when it is mid-flight.
func (m *sm) maybeReleaseBarrier(cta *simCTA, now uint64) {
	if cta.live == 0 || cta.atBarrier < cta.live {
		return
	}
	until := now + uint64(m.sim.cfg.BarrierLatency)
	for _, w := range cta.warps {
		if w.state != warpAtBarrier {
			continue
		}
		w.warp.AtBarrier = false
		w.sc.release(w, until)
		if until < m.releaseWake {
			m.releaseWake = until
		}
		if until < w.sc.nextWake {
			w.sc.nextWake = until
		}
		if until < w.sc.pendingWake {
			w.sc.pendingWake = until
		}
	}
	cta.atBarrier = 0
}
