package gpu

import (
	"math"
	"math/bits"

	"repro/internal/ptx"
)

// Warp lifecycle and the per-sub-core ready-set bookkeeping. Instead of
// rescanning every warp every cycle, each sub-core keeps (a) a bitmask of
// Ready warps and (b) a min-heap of Stalled warps keyed by their wake
// cycle, both updated at the moments warp state actually changes — issue,
// scoreboard stall, stallUntil expiry, barrier arrival and release, and
// warp finish. The scheduler then consults only the ready set, and the
// idle fast-forward reads the next wake straight off the heap top.
//
// Invariants (event mode, i.e. sc.scan == false):
//   - a warp's state is warpReady  ⇔ its slot bit is set in readyMask
//   - a warp's state is warpStalled ⇔ it has exactly one wakeHeap entry,
//     keyed by its current stallUntil (stallUntil never changes while
//     Stalled, so entries are never stale)
//   - warpAtBarrier / warpFinished warps appear in neither structure.
//
// Under the legacy ScanScheduler knob the same state transitions run but
// the mask and heap are not maintained; readiness is rederived each cycle
// by scanning (see scanReady in sched.go).

// warpState is the scheduling lifecycle state of a simWarp.
type warpState uint8

const (
	// warpReady: offerable to the scheduler — not finished, not at a
	// barrier, stallUntil expired (a busy unit can still block issue).
	warpReady warpState = iota
	// warpStalled: waiting for a known cycle (scoreboard hazard or the
	// post-release barrier latency); parked in the sub-core's wake heap.
	warpStalled
	// warpAtBarrier: waiting for the CTA barrier; only a release wakes it.
	warpAtBarrier
	// warpFinished: executed exit or ran out of instructions.
	warpFinished
)

type simCTA struct {
	env       *ptx.Env
	warps     []*simWarp
	live      int
	atBarrier int
}

type simWarp struct {
	warp       *ptx.Warp
	cta        *simCTA
	sc         *subcore
	slot       int // index in sc.warps, maintained across compaction
	state      warpState
	regReady   []uint64
	stallUntil uint64
	lastIssue  uint64
	// tlActive marks membership in the TwoLevel policy's active subset.
	tlActive bool
}

type subcore struct {
	warps   []*simWarp
	tcFree  uint64
	aluFree uint64
	sfuFree uint64
	greedy  int // index of the warp GTO sticks with; LRR/TwoLevel rotation anchor
	// nextWake mirrors sm.nextWake at sub-core granularity: while the
	// clock is below it this sub-core's scheduler is skipped.
	// pendingWake collects barrier releases that re-arm this sub-core's
	// warps while its own scan is in flight.
	nextWake    uint64
	pendingWake uint64

	policy schedPolicy
	// scan selects the legacy full-scan path (the ScanScheduler knob);
	// the ready mask and wake heap are not maintained when set.
	scan bool
	// tlCap is the TwoLevel active-subset size; tlActive its population.
	tlCap    int
	tlActive int

	readyMask []uint64    // bit per warp slot: state == warpReady
	wakeHeap  []wakeEntry // min-heap over Stalled warps' stallUntil
	readyBuf  []int       // scratch: ready slots, ascending
	orderBuf  []int       // scratch: policy issue order
	keyBuf    []uint64    // scratch: GTO's packed sort keys
}

// wakeEntry parks one Stalled warp in the sub-core's wake min-heap.
type wakeEntry struct {
	at uint64
	w  *simWarp
}

// reset clears all per-run state, keeping allocated capacity.
func (sc *subcore) reset() {
	sc.warps = sc.warps[:0]
	sc.tcFree, sc.aluFree, sc.sfuFree, sc.greedy = 0, 0, 0, 0
	sc.nextWake, sc.pendingWake = 0, math.MaxUint64
	sc.tlActive = 0
	for i := range sc.readyMask {
		sc.readyMask[i] = 0
	}
	sc.wakeHeap = sc.wakeHeap[:0]
}

func (sc *subcore) setBit(slot int)   { sc.readyMask[slot>>6] |= 1 << (slot & 63) }
func (sc *subcore) clearBit(slot int) { sc.readyMask[slot>>6] &^= 1 << (slot & 63) }

// enqueue adds a newly dispatched warp to the sub-core's pool. The warp's
// state must already be set (Ready, or Finished for warps that exited
// during initialization).
func (sc *subcore) enqueue(w *simWarp) {
	w.slot = len(sc.warps)
	sc.warps = append(sc.warps, w)
	for len(sc.readyMask)*64 <= w.slot {
		sc.readyMask = append(sc.readyMask, 0)
	}
	if w.state == warpReady && !sc.scan {
		sc.setBit(w.slot)
	}
}

// setReady wakes a Stalled warp whose stallUntil expired (event mode
// only; the warp was just popped off the wake heap).
func (sc *subcore) setReady(w *simWarp) {
	w.state = warpReady
	sc.setBit(w.slot)
}

// stall moves a Ready warp to Stalled until the given cycle.
func (sc *subcore) stall(w *simWarp, until uint64) {
	w.stallUntil = until
	w.state = warpStalled
	if !sc.scan {
		sc.clearBit(w.slot)
		sc.heapPush(until, w)
	}
}

// toBarrier parks a Ready warp at its CTA barrier.
func (sc *subcore) toBarrier(w *simWarp) {
	w.state = warpAtBarrier
	if !sc.scan {
		sc.clearBit(w.slot)
	}
}

// release re-arms a warp waiting at a barrier: AtBarrier → Stalled until
// the post-release latency expires.
func (sc *subcore) release(w *simWarp, until uint64) {
	w.stallUntil = until
	w.state = warpStalled
	if !sc.scan {
		sc.heapPush(until, w)
	}
}

// finish retires a Ready warp (exit, or no instructions left).
func (sc *subcore) finish(w *simWarp) {
	sc.policy.retired(sc, w)
	w.state = warpFinished
	if !sc.scan {
		sc.clearBit(w.slot)
	}
}

// drainWake moves every Stalled warp whose wake cycle has arrived back to
// the ready set.
//
//simlint:hotpath
func (sc *subcore) drainWake(now uint64) {
	for len(sc.wakeHeap) > 0 && sc.wakeHeap[0].at <= now {
		sc.setReady(sc.heapPop().w)
	}
}

// heapTop returns the earliest Stalled wake cycle, MaxUint64 when none.
func (sc *subcore) heapTop() uint64 {
	if len(sc.wakeHeap) == 0 {
		return math.MaxUint64
	}
	return sc.wakeHeap[0].at
}

//simlint:hotpath
func (sc *subcore) heapPush(at uint64, w *simWarp) {
	h := append(sc.wakeHeap, wakeEntry{at, w})
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	sc.wakeHeap = h
}

//simlint:hotpath
func (sc *subcore) heapPop() wakeEntry {
	h := sc.wakeHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r].at < h[l].at {
			l = r
		}
		if h[i].at <= h[l].at {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	sc.wakeHeap = h
	return top
}

// readySlots lists the ready warps' slots in ascending order.
//
//simlint:hotpath
func (sc *subcore) readySlots() []int {
	buf := sc.readyBuf[:0]
	for wi, word := range sc.readyMask {
		for word != 0 {
			buf = append(buf, wi*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	sc.readyBuf = buf
	return buf
}

// removeFinished compacts the warp pool after a CTA retires, reassigning
// slots and rebuilding the ready mask (heap entries hold pointers and
// survive compaction; Finished warps are never in the heap).
func (sc *subcore) removeFinished() {
	kept := sc.warps[:0]
	for _, w := range sc.warps {
		if w.state == warpFinished {
			continue
		}
		w.slot = len(kept)
		kept = append(kept, w)
	}
	sc.warps = kept
	if sc.greedy >= len(sc.warps) {
		sc.greedy = 0
	}
	if sc.scan {
		return
	}
	for i := range sc.readyMask {
		sc.readyMask[i] = 0
	}
	for _, w := range kept {
		if w.state == warpReady {
			sc.setBit(w.slot)
		}
	}
}

// issuable reports whether the warp can be offered to the scheduler at
// the given cycle. It is mode-independent: it derives readiness from the
// state and stallUntil rather than the (event-mode-only) ready mask, so
// policy decisions based on it are identical under both the event-driven
// and the legacy scan paths.
func (w *simWarp) issuable(now uint64) bool {
	return w.state != warpFinished && w.state != warpAtBarrier && w.stallUntil <= now
}

// operandsReady checks the scoreboard for RAW and WAW hazards, on the
// decoded instruction's precomputed register list.
//
//simlint:hotpath
func (w *simWarp) operandsReady(in *ptx.DInstr, now uint64) (bool, uint64) {
	latest := uint64(0)
	for _, id := range in.ScoreboardRegs() {
		if t := w.regReady[id]; t > latest {
			latest = t
		}
	}
	if latest > now {
		return false, latest
	}
	return true, now
}
