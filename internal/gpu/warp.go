package gpu

import (
	"math"
	"math/bits"

	"repro/internal/ptx"
)

// Warp lifecycle and the per-sub-core ready-set bookkeeping. Instead of
// rescanning every warp every cycle, each sub-core keeps (a) a bitmask of
// Ready warps and (b) a min-heap of Stalled warps keyed by their wake
// cycle, both updated at the moments warp state actually changes — issue,
// scoreboard stall, stallUntil expiry, barrier arrival and release, and
// warp finish. The scheduler then consults only the ready set, and the
// idle fast-forward reads the next wake straight off the heap top.
//
// On top of the ready set, the sub-core maintains the *issue order*
// incrementally, so no policy re-sorts candidates per cycle:
//   - zeroMask marks the warps whose lastIssue is still zero (never
//     issued, or issued only at cycle 0 — the legacy GTO comparator
//     cannot tell those apart, so neither does the mask). They are
//     ordered by enumeration in rotation order from the greedy slot.
//   - the age list (ageHead/ageTail, intrusive in simWarp) chains the
//     warps with lastIssue ≥ 1 in strictly ascending lastIssue — strict
//     because at most one warp issues per sub-core per cycle, so a
//     tail-append at issue time keeps the list sorted with no
//     comparisons. Issue, finish and re-issue are all O(1) list splices.
//   - tlMask mirrors the TwoLevel active subset as a bitmask so its
//     pick is mask intersection instead of list filtering.
//
// Invariants (event mode, i.e. sc.scan == false):
//   - a warp's state is warpReady  ⇔ its slot bit is set in readyMask
//   - a warp's state is warpStalled ⇔ it has exactly one wakeHeap entry,
//     keyed by its current stallUntil (stallUntil never changes while
//     Stalled, so entries are never stale)
//   - warpAtBarrier / warpFinished warps appear in neither structure
//   - a live warp is in zeroMask ⇔ its lastIssue == 0, and in the age
//     list ⇔ its lastIssue ≥ 1; the age list ascends strictly.
//
// Under the legacy ScanScheduler knob the same state transitions run but
// none of the masks, the heap or the age list are maintained; readiness
// and order are rederived each cycle by scanning and sorting (see
// scanReady and the policies' pick methods in sched.go).

// warpState is the scheduling lifecycle state of a simWarp.
type warpState uint8

const (
	// warpReady: offerable to the scheduler — not finished, not at a
	// barrier, stallUntil expired (a busy unit can still block issue).
	warpReady warpState = iota
	// warpStalled: waiting for a known cycle (scoreboard hazard or the
	// post-release barrier latency); parked in the sub-core's wake heap.
	warpStalled
	// warpAtBarrier: waiting for the CTA barrier; only a release wakes it.
	warpAtBarrier
	// warpFinished: executed exit or ran out of instructions.
	warpFinished
)

type simCTA struct {
	env       *ptx.Env
	warps     []*simWarp
	live      int
	atBarrier int
}

type simWarp struct {
	warp       *ptx.Warp
	cta        *simCTA
	sc         *subcore
	slot       int // index in sc.warps, maintained across compaction
	state      warpState
	regReady   []uint64
	stallUntil uint64
	lastIssue  uint64
	// tlActive marks membership in the TwoLevel policy's active subset.
	tlActive bool
	// Intrusive age-list links (event mode): the sub-core chains warps
	// with lastIssue ≥ 1 in ascending issue age. Pointers survive slot
	// compaction, which only renumbers w.slot.
	agePrev, ageNext *simWarp
	inAge            bool
}

type subcore struct {
	warps []*simWarp
	// ports models structural availability of the execution units — the
	// one seam the scheduler consults before issue (see ports.go).
	ports  unitPorts
	greedy int // index of the warp GTO sticks with; LRR/TwoLevel rotation anchor
	// nextWake mirrors sm.nextWake at sub-core granularity: while the
	// clock is below it this sub-core's scheduler is skipped.
	// pendingWake collects barrier releases that re-arm this sub-core's
	// warps while its own scan is in flight.
	nextWake    uint64
	pendingWake uint64

	policy schedPolicy
	// scan selects the legacy full-scan path (the ScanScheduler knob);
	// the ready mask and wake heap are not maintained when set.
	scan bool
	// tlCap is the TwoLevel active-subset size; tlActive its population.
	tlCap    int
	tlActive int

	readyMask []uint64    // bit per warp slot: state == warpReady
	zeroMask  []uint64    // bit per warp slot: live and lastIssue == 0
	tlMask    []uint64    // bit per warp slot: in the TwoLevel active subset
	wakeHeap  []wakeEntry // min-heap over Stalled warps' stallUntil
	// ageHead/ageTail chain the warps with lastIssue ≥ 1, oldest issue
	// first (event mode only).
	ageHead, ageTail *simWarp
	readyBuf         []int    // scratch: scan-mode ready slots, ascending
	orderBuf         []int    // scratch: policy issue order
	maskBuf          []uint64 // scratch: pickEvent mask intersections
}

// wakeEntry parks one Stalled warp in the sub-core's wake min-heap.
type wakeEntry struct {
	at uint64
	w  *simWarp
}

// reset clears all per-run state, keeping allocated capacity.
func (sc *subcore) reset() {
	sc.warps = sc.warps[:0]
	sc.ports = unitPorts{}
	sc.greedy = 0
	sc.nextWake, sc.pendingWake = 0, math.MaxUint64
	sc.tlActive = 0
	for i := range sc.readyMask {
		sc.readyMask[i] = 0
		sc.zeroMask[i] = 0
		sc.tlMask[i] = 0
	}
	sc.wakeHeap = sc.wakeHeap[:0]
	sc.ageHead, sc.ageTail = nil, nil
}

func (sc *subcore) setBit(slot int)   { sc.readyMask[slot>>6] |= 1 << (slot & 63) }
func (sc *subcore) clearBit(slot int) { sc.readyMask[slot>>6] &^= 1 << (slot & 63) }

func (sc *subcore) setZero(slot int)   { sc.zeroMask[slot>>6] |= 1 << (slot & 63) }
func (sc *subcore) clearZero(slot int) { sc.zeroMask[slot>>6] &^= 1 << (slot & 63) }

func (sc *subcore) setTL(slot int)   { sc.tlMask[slot>>6] |= 1 << (slot & 63) }
func (sc *subcore) clearTL(slot int) { sc.tlMask[slot>>6] &^= 1 << (slot & 63) }

func (sc *subcore) readyBit(slot int) bool {
	return sc.readyMask[slot>>6]&(1<<(slot&63)) != 0
}

// enqueue adds a newly dispatched warp to the sub-core's pool. The warp's
// state must already be set (Ready, or Finished for warps that exited
// during initialization).
func (sc *subcore) enqueue(w *simWarp) {
	w.slot = len(sc.warps)
	sc.warps = append(sc.warps, w)
	for len(sc.readyMask)*64 <= w.slot {
		sc.readyMask = append(sc.readyMask, 0)
		sc.zeroMask = append(sc.zeroMask, 0)
		sc.tlMask = append(sc.tlMask, 0)
	}
	if w.state == warpReady && !sc.scan {
		sc.setBit(w.slot)
		sc.setZero(w.slot) // a fresh warp has lastIssue == 0
	}
}

// setReady wakes a Stalled warp whose stallUntil expired (event mode
// only; the warp was just popped off the wake heap).
func (sc *subcore) setReady(w *simWarp) {
	w.state = warpReady
	sc.setBit(w.slot)
}

// stall moves a Ready warp to Stalled until the given cycle.
func (sc *subcore) stall(w *simWarp, until uint64) {
	w.stallUntil = until
	w.state = warpStalled
	if !sc.scan {
		sc.clearBit(w.slot)
		sc.heapPush(until, w)
	}
}

// toBarrier parks a Ready warp at its CTA barrier.
func (sc *subcore) toBarrier(w *simWarp) {
	w.state = warpAtBarrier
	if !sc.scan {
		sc.clearBit(w.slot)
	}
}

// release re-arms a warp waiting at a barrier: AtBarrier → Stalled until
// the post-release latency expires.
func (sc *subcore) release(w *simWarp, until uint64) {
	w.stallUntil = until
	w.state = warpStalled
	if !sc.scan {
		sc.heapPush(until, w)
	}
}

// finish retires a Ready warp (exit, or no instructions left).
func (sc *subcore) finish(w *simWarp) {
	sc.policy.retired(sc, w)
	w.state = warpFinished
	if !sc.scan {
		sc.clearBit(w.slot)
		sc.clearZero(w.slot)
		sc.ageRemove(w)
	}
}

// ageAppend links the warp at the age-list tail. The caller just issued
// it, and at most one warp issues per sub-core per cycle, so the tail
// append keeps the list strictly ascending in lastIssue.
//
//simlint:hotpath
func (sc *subcore) ageAppend(w *simWarp) {
	w.agePrev = sc.ageTail
	w.ageNext = nil
	if sc.ageTail != nil {
		sc.ageTail.ageNext = w
	} else {
		sc.ageHead = w
	}
	sc.ageTail = w
	w.inAge = true
}

// ageRemove unlinks the warp from the age list; no-op when absent.
//
//simlint:hotpath
func (sc *subcore) ageRemove(w *simWarp) {
	if !w.inAge {
		return
	}
	if w.agePrev != nil {
		w.agePrev.ageNext = w.ageNext
	} else {
		sc.ageHead = w.ageNext
	}
	if w.ageNext != nil {
		w.ageNext.agePrev = w.agePrev
	} else {
		sc.ageTail = w.agePrev
	}
	w.agePrev, w.ageNext = nil, nil
	w.inAge = false
}

// noteIssued maintains the incremental issue order after w issued at
// now. Exit-class instructions retire the warp inside issue() — its
// order entry was already dropped by finish, so it is skipped here.
// A cycle-0 issue leaves lastIssue at zero, indistinguishable from
// never-issued under the legacy GTO comparator, so the warp stays in
// the zero prefix rather than joining the age list.
//
//simlint:hotpath
func (sc *subcore) noteIssued(w *simWarp, now uint64) {
	if w.state == warpFinished || now == 0 {
		return
	}
	if w.inAge {
		sc.ageRemove(w)
	} else {
		sc.clearZero(w.slot)
	}
	sc.ageAppend(w)
}

// drainWake moves every Stalled warp whose wake cycle has arrived back to
// the ready set.
//
//simlint:hotpath
func (sc *subcore) drainWake(now uint64) {
	for len(sc.wakeHeap) > 0 && sc.wakeHeap[0].at <= now {
		sc.setReady(sc.heapPop().w)
	}
}

// heapTop returns the earliest Stalled wake cycle, MaxUint64 when none.
func (sc *subcore) heapTop() uint64 {
	if len(sc.wakeHeap) == 0 {
		return math.MaxUint64
	}
	return sc.wakeHeap[0].at
}

//simlint:hotpath
func (sc *subcore) heapPush(at uint64, w *simWarp) {
	h := append(sc.wakeHeap, wakeEntry{at, w})
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	sc.wakeHeap = h
}

//simlint:hotpath
func (sc *subcore) heapPop() wakeEntry {
	h := sc.wakeHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r].at < h[l].at {
			l = r
		}
		if h[i].at <= h[l].at {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	sc.wakeHeap = h
	return top
}

// andMask intersects a and b into the sub-core's mask scratch.
//
//simlint:hotpath
func (sc *subcore) andMask(a, b []uint64) []uint64 {
	out := sc.maskBuf[:0]
	for i := range a {
		out = append(out, a[i]&b[i])
	}
	sc.maskBuf = out
	return out
}

// maskIntersects reports whether a and b share a set bit.
//
//simlint:hotpath
func maskIntersects(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// appendRotatedMask appends the mask's set slots in rotation order from
// g+1 (the slots above g, then the wrap-around from 0 back to g),
// excluding skip (-1 for none) — the bitmask twin of appendRotated.
//
//simlint:hotpath
func appendRotatedMask(mask []uint64, g, skip int, buf []int) []int {
	gw, gb := g>>6, uint(g&63)
	low := uint64(1)<<(gb+1) - 1 // bits 0..g&63 of g's word; all 64 when gb is 63
	for wi, word := gw, mask[gw]&^low; ; {
		for word != 0 {
			slot := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if slot != skip {
				buf = append(buf, slot)
			}
		}
		wi++
		if wi >= len(mask) {
			break
		}
		word = mask[wi]
	}
	for wi := 0; wi < gw; wi++ {
		for word := mask[wi]; word != 0; word &= word - 1 {
			slot := wi*64 + bits.TrailingZeros64(word)
			if slot != skip {
				buf = append(buf, slot)
			}
		}
	}
	for word := mask[gw] & low; word != 0; word &= word - 1 {
		slot := gw*64 + bits.TrailingZeros64(word)
		if slot != skip {
			buf = append(buf, slot)
		}
	}
	return buf
}

// removeFinished compacts the warp pool after a CTA retires, reassigning
// slots and rebuilding the slot-indexed masks (heap entries and age-list
// links hold pointers and survive compaction; Finished warps are in
// neither).
func (sc *subcore) removeFinished() {
	kept := sc.warps[:0]
	for _, w := range sc.warps {
		if w.state == warpFinished {
			continue
		}
		w.slot = len(kept)
		kept = append(kept, w)
	}
	sc.warps = kept
	if sc.greedy >= len(sc.warps) {
		sc.greedy = 0
	}
	if sc.scan {
		return
	}
	for i := range sc.readyMask {
		sc.readyMask[i] = 0
		sc.zeroMask[i] = 0
		sc.tlMask[i] = 0
	}
	for _, w := range kept {
		if w.state == warpReady {
			sc.setBit(w.slot)
		}
		if w.lastIssue == 0 {
			sc.setZero(w.slot)
		}
		if w.tlActive {
			sc.setTL(w.slot)
		}
	}
}

// issuable reports whether the warp can be offered to the scheduler at
// the given cycle. It is mode-independent: it derives readiness from the
// state and stallUntil rather than the (event-mode-only) ready mask, so
// policy decisions based on it are identical under both the event-driven
// and the legacy scan paths.
func (w *simWarp) issuable(now uint64) bool {
	return w.state != warpFinished && w.state != warpAtBarrier && w.stallUntil <= now
}

// hazardClear returns the cycle at which every register the instruction
// scoreboards is written back — zero when none are pending. It walks the
// decode-time packed register set (the ≤64-ID bitmask plus the rare wide
// spill) instead of the id slice.
//
//simlint:hotpath
func (w *simWarp) hazardClear(in *ptx.DInstr) uint64 {
	latest := uint64(0)
	mask, wide := in.ScoreboardSet()
	for mask != 0 {
		id := bits.TrailingZeros64(mask)
		mask &= mask - 1
		if t := w.regReady[id]; t > latest {
			latest = t
		}
	}
	for _, id := range wide {
		if t := w.regReady[id]; t > latest {
			latest = t
		}
	}
	return latest
}

// operandsReady checks the scoreboard for RAW and WAW hazards.
//
//simlint:hotpath
func (w *simWarp) operandsReady(in *ptx.DInstr, now uint64) (bool, uint64) {
	if latest := w.hazardClear(in); latest > now {
		return false, latest
	}
	return true, now
}
