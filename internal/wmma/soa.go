package wmma

// SlotVecs is the struct-of-arrays view of a Mapping: where Lanes lists
// each lane's coordinates in slot order (array-of-structs), SlotVecs
// holds, for each fragment slot, the warp's 32 row and column indices as
// one vector. The batched fragment path of internal/ptx walks slots in
// the outer loop and lanes in a tight inner loop, so the per-element
// coordinate-slice chasing of the per-lane path disappears.
//
// The view is only defined when every lane holds the same number of
// slots (Uniform); the standard Volta and Turing mappings all do, and
// the executor falls back to the per-lane path otherwise.
// Like Mapping the view is shared read-only across simulators, so the
// type is frozen outside its builder.
//
//simlint:frozen
type SlotVecs struct {
	// Slots is the fragment length shared by all lanes.
	Slots int
	// Uniform reports whether every lane holds exactly Slots coordinates.
	// When false, Row and Col are nil and the view is unusable.
	Uniform bool
	// Row[slot][lane] and Col[slot][lane] are the tile coordinates of the
	// element the lane holds in that slot.
	Row, Col [][WarpSize]int16
}

// SlotVecs builds the struct-of-arrays view of the mapping. The result
// is freshly allocated and immutable by convention; callers that need it
// per static instruction (the decoded-instruction cache) build it once
// at decode time.
//
//simlint:ctor
func (m *Mapping) SlotVecs() *SlotVecs {
	v := &SlotVecs{Slots: len(m.Lanes[0]), Uniform: true}
	for lane := range m.Lanes {
		if len(m.Lanes[lane]) != v.Slots {
			v.Uniform = false
			return v
		}
	}
	v.Row = make([][WarpSize]int16, v.Slots)
	v.Col = make([][WarpSize]int16, v.Slots)
	for lane := range m.Lanes {
		for slot, c := range m.Lanes[lane] {
			v.Row[slot][lane] = int16(c.Row)
			v.Col[slot][lane] = int16(c.Col)
		}
	}
	return v
}
