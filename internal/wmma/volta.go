package wmma

import (
	"fmt"

	"repro/internal/tensor"
)

// Volta fragment-to-thread mappings (Figure 7 of the paper).
//
// The warp's eight threadgroups are assigned 4×16 segments of A, 16×4
// segments of B and 4×8 segments of C. Every A and B element is loaded by
// exactly two threadgroups — that redundancy is what lets each *octet*
// (threadgroup pair X, X+4) compute its 8×8 slice of the result without
// communicating with the other octets (Section III-E, Table II).

// voltaARowBase maps a threadgroup to the first of the four A rows its
// segment covers. Figure 7a: rows 0–3 are loaded by threadgroups 0 and 2,
// rows 4–7 by 4 and 6, rows 8–11 by 1 and 3, rows 12–15 by 5 and 7.
var voltaARowBase = [NumThreadgroups]int{
	0: 0, 2: 0,
	4: 4, 6: 4,
	1: 8, 3: 8,
	5: 12, 7: 12,
}

// voltaBColBase maps a threadgroup to the first of the four B columns its
// segment covers, derived from the octet composition of Table II: octet X
// = {X, X+4}; octets 0 and 1 read B columns 0–7 (threadgroups 0,1 take 0–3
// and 4,5 take 4–7) and octets 2 and 3 read columns 8–15.
var voltaBColBase = [NumThreadgroups]int{
	0: 0, 1: 0,
	4: 4, 5: 4,
	2: 8, 3: 8,
	6: 12, 7: 12,
}

// voltaCBase maps a threadgroup to the top-left corner of its 4×8 C
// segment (Figure 7b: row blocks 0,4,8,12 × column halves 0,8).
var voltaCBase = [NumThreadgroups]Coord{
	0: {0, 0}, 2: {0, 8},
	4: {4, 0}, 6: {4, 8},
	1: {8, 0}, 3: {8, 8},
	5: {12, 0}, 7: {12, 8},
}

func voltaMap(shape Shape, op Operand, layout tensor.Layout, elem Precision) (*Mapping, error) {
	if shape != M16N16K16 {
		return nil, fmt.Errorf("wmma: volta supports only %v, got %v", M16N16K16, shape)
	}
	m := &Mapping{Arch: Volta, Shape: shape, Op: op, Layout: layout, Elem: elem}
	switch op {
	case MatrixA:
		if elem != F16 {
			return nil, fmt.Errorf("wmma: volta A must be f16")
		}
		voltaFillAB(m, layout == tensor.RowMajor, func(slice, k int) Coord {
			return Coord{Row: slice, Col: k} // A: the 16-long direction is K, along a row
		}, voltaARowBase)
	case MatrixB:
		if elem != F16 {
			return nil, fmt.Errorf("wmma: volta B must be f16")
		}
		// The paper: the distribution for B in column-major layout equals
		// the distribution for A in row-major layout and vice versa.
		voltaFillAB(m, layout == tensor.ColMajor, func(slice, k int) Coord {
			return Coord{Row: k, Col: slice} // B: the 16-long direction is K, down a column
		}, voltaBColBase)
	case MatrixC:
		switch elem {
		case F16:
			voltaFillC16(m)
		case F32:
			voltaFillC32(m)
		default:
			return nil, fmt.Errorf("wmma: volta C must be f16 or f32, got %v", elem)
		}
	default:
		return nil, fmt.Errorf("wmma: unknown operand %v", op)
	}
	return m.validateCoverage(), nil
}

// voltaFillAB fills the mapping for A or B. Each threadgroup covers four
// "slices" (rows of A / columns of B) starting at base[tg], each 16
// elements long in the K direction.
//
// When the 16-element direction is contiguous in memory (A row-major, B
// column-major), each lane holds one entire slice: 16 consecutive
// elements fetched with two 128-bit loads (Figure 7a ②).
//
// Otherwise (A column-major, B row-major) lane k of the threadgroup holds
// four 4-element blocks at K positions k, k+4, k+8 and k+12; each block
// runs across the segment's four slices, which are the contiguous
// direction in memory, so the blocks are fetched with four 64-bit loads
// spaced 64 elements apart (Figure 7a ③).
//
//simlint:ctor
func voltaFillAB(m *Mapping, contiguous bool, at func(slice, k int) Coord, base [NumThreadgroups]int) {
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		k := lane % ThreadgroupSize
		var frag []Coord
		if contiguous {
			// Lane k holds slice base+k entirely: elements 0..15.
			slice := base[tg] + k
			for e := 0; e < 16; e++ {
				frag = append(frag, at(slice, e))
			}
		} else {
			// Lane k holds, for each block b, the four consecutive
			// elements that run across the segment's four slices at K
			// position k+4b.
			for b := 0; b < 4; b++ {
				kk := k + 4*b
				for s := 0; s < 4; s++ {
					frag = append(frag, at(base[tg]+s, kk))
				}
			}
		}
		m.Lanes[lane] = frag
	}
}

// voltaFillC32 fills the mixed-precision (FP32 accumulator) C mapping.
// Each HMMA step writes one register pair (two fp32 values) per lane; the
// four steps of a set cover the threadgroup's 4×8 segment as four 2×4
// quarters (Figure 10b). Within a step, lane k holds the two rows of
// column k of the quarter, so slots (2s, 2s+1) are rows (+0, +1) of
// column quarterColBase+k.
//
//simlint:ctor
func voltaFillC32(m *Mapping) {
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		k := lane % ThreadgroupSize
		b := voltaCBase[tg]
		var frag []Coord
		for step := 0; step < 4; step++ {
			rowOff := 2 * (step % 2)
			colOff := 4 * (step / 2)
			frag = append(frag,
				Coord{b.Row + rowOff, b.Col + colOff + k},
				Coord{b.Row + rowOff + 1, b.Col + colOff + k},
			)
		}
		m.Lanes[lane] = frag
	}
}

// voltaFillC16 fills the FP16-accumulator C mapping. The two HMMA steps of
// a set each write one register pair (four fp16 values) per lane; lane k
// holds row base+k of the threadgroup's 4×8 segment, split into the two
// 4-element halves the two steps produce (Figure 10c).
//
//simlint:ctor
func voltaFillC16(m *Mapping) {
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		k := lane % ThreadgroupSize
		b := voltaCBase[tg]
		var frag []Coord
		for col := 0; col < 8; col++ {
			frag = append(frag, Coord{b.Row + k, b.Col + col})
		}
		m.Lanes[lane] = frag
	}
}

// Octet is a pair of threadgroups {X, X+4} that cooperates on an 8×8 slice
// of the result; octets work independently of each other (Section III-E).
type Octet struct {
	ID           int
	Threadgroups [2]int
	// Inclusive element ranges of the operand tiles the octet reads,
	// exactly as printed in Table II.
	ARows, ACols [2]int
	BRows, BCols [2]int
	// The 8×8 accumulator slice the octet produces.
	CRows, CCols [2]int
}

// Octets returns the four Volta octets of Table II.
func Octets() [4]Octet {
	var out [4]Octet
	for x := 0; x < 4; x++ {
		o := Octet{
			ID:           x,
			Threadgroups: [2]int{x, x + 4},
			ACols:        [2]int{0, 15},
			BRows:        [2]int{0, 15},
		}
		if x == 0 || x == 2 {
			o.ARows = [2]int{0, 7}
		} else {
			o.ARows = [2]int{8, 15}
		}
		if x == 0 || x == 1 {
			o.BCols = [2]int{0, 7}
		} else {
			o.BCols = [2]int{8, 15}
		}
		o.CRows = o.ARows
		o.CCols = o.BCols
		out[x] = o
	}
	return out
}

// OctetOf returns the octet id of a threadgroup: X for threadgroups X and
// X+4 (octet X = threadgroup X ∪ threadgroup X+4).
func OctetOf(tg int) int { return tg % 4 }
