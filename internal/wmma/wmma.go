// Package wmma models NVIDIA's warp-level matrix multiply-accumulate
// (WMMA) interface as reverse engineered for Volta and Turing by Raihan,
// Goli and Aamodt (ISPASS 2019).
//
// The package covers the functional half of the paper's tensor-core model:
//
//   - the tile shapes and precision modes each architecture supports
//     (Section II-B/C of the paper),
//   - the fragment-to-thread mappings of Figures 7 (Volta) and 8 (Turing),
//     i.e. exactly which elements of the A, B and C operand tiles each of
//     the 32 lanes of a warp holds in its registers,
//   - the arithmetic of mma_sync / wmma.mma for every supported
//     configuration, with the accumulation order implied by the
//     set/step/four-element-dot-product decomposition of Section III.
//
// The cycle-level half (HMMA sequencing, octet scheduling, pipeline timing)
// lives in internal/tcore; the two packages are kept separate so the
// functional model can be validated independently of any timing assumption,
// mirroring how the paper splits its GPGPU-Sim changes into functional and
// timing models.
package wmma

import (
	"fmt"

	"repro/internal/tensor"
)

// Arch identifies the GPU architecture whose tensor-core behaviour is being
// modeled.
type Arch int

const (
	// Volta models the Titan V (compute capability 7.0).
	Volta Arch = iota
	// Turing models the RTX 2080 (compute capability 7.5).
	Turing
)

func (a Arch) String() string {
	switch a {
	case Volta:
		return "volta"
	case Turing:
		return "turing"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Operand names one of the three source tiles of D = A×B + C. D shares the
// C mapping (the accumulator registers are read-modify-written in place).
type Operand int

const (
	MatrixA Operand = iota
	MatrixB
	MatrixC
)

func (o Operand) String() string {
	switch o {
	case MatrixA:
		return "a"
	case MatrixB:
		return "b"
	case MatrixC:
		return "c"
	}
	return fmt.Sprintf("operand(%d)", int(o))
}

// Precision is the element type of an operand tile.
type Precision int

const (
	F16 Precision = iota // IEEE binary16
	F32                  // IEEE binary32 (C/D accumulators only)
	S8                   // signed 8-bit integer (Turing)
	U8                   // unsigned 8-bit integer (Turing)
	S4                   // signed 4-bit integer (Turing, experimental)
	U4                   // unsigned 4-bit integer (Turing, experimental)
	S32                  // signed 32-bit accumulator for integer modes
)

func (p Precision) String() string {
	switch p {
	case F16:
		return "f16"
	case F32:
		return "f32"
	case S8:
		return "s8"
	case U8:
		return "u8"
	case S4:
		return "s4"
	case U4:
		return "u4"
	case S32:
		return "s32"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// Bits returns the storage width of one element.
func (p Precision) Bits() int {
	switch p {
	case F16:
		return 16
	case F32, S32:
		return 32
	case S8, U8:
		return 8
	case S4, U4:
		return 4
	}
	return 0
}

// IsInt reports whether p is one of the Turing integer operand types.
func (p Precision) IsInt() bool {
	switch p {
	case S8, U8, S4, U4, S32:
		return true
	}
	return false
}

// Shape is the M×N×K tile size of a warp-wide mma: A is M×K, B is K×N,
// C and D are M×N.
type Shape struct{ M, N, K int }

// The tile shapes named in the paper. CUDA 9.0 exposed only M16N16K16;
// Turing added the rectangular 8/16-bit shapes and the 4-bit shape.
var (
	M16N16K16 = Shape{16, 16, 16}
	M32N8K16  = Shape{32, 8, 16}
	M8N32K16  = Shape{8, 32, 16}
	M8N8K32   = Shape{8, 8, 32}
)

func (s Shape) String() string { return fmt.Sprintf("m%dn%dk%d", s.M, s.N, s.K) }

// Dims returns the rows×cols of the given operand tile under s.
func (s Shape) Dims(op Operand) (rows, cols int) {
	switch op {
	case MatrixA:
		return s.M, s.K
	case MatrixB:
		return s.K, s.N
	default:
		return s.M, s.N
	}
}

// Config is one complete wmma.mma configuration: tile shape, operand
// layouts, and precisions. Satf requests saturating arithmetic.
//
// On Volta, A and B must be F16 and CType/DType are independently F16 or
// F32; together with the two layout qualifiers and satf this yields the
// 32 configurations the paper's functional model supports. Turing adds the
// integer modes, whose C and D are always S32.
type Config struct {
	Arch    Arch
	Shape   Shape
	ALayout tensor.Layout
	BLayout tensor.Layout
	AType   Precision // element type of A and B
	CType   Precision
	DType   Precision
	Satf    bool
}

func (c Config) String() string {
	satf := ""
	if c.Satf {
		satf = ".satf"
	}
	return fmt.Sprintf("wmma.mma.sync.%s.%s.%s.%s.%s%s",
		c.ALayout, c.BLayout, c.Shape, c.DType, c.CType, satf)
}

// Validate reports whether the configuration is one the modeled hardware
// supports, with a descriptive error otherwise.
func (c Config) Validate() error {
	switch c.Arch {
	case Volta:
		if c.Shape != M16N16K16 {
			return fmt.Errorf("wmma: volta supports only %v, got %v", M16N16K16, c.Shape)
		}
		if c.AType != F16 {
			return fmt.Errorf("wmma: volta A/B must be f16, got %v", c.AType)
		}
		if !isF16F32(c.CType) || !isF16F32(c.DType) {
			return fmt.Errorf("wmma: volta C/D must be f16 or f32, got %v/%v", c.CType, c.DType)
		}
	case Turing:
		switch c.AType {
		case F16:
			if c.Shape != M16N16K16 && c.Shape != M32N8K16 && c.Shape != M8N32K16 {
				return fmt.Errorf("wmma: turing f16 shape %v unsupported", c.Shape)
			}
			if !isF16F32(c.CType) || !isF16F32(c.DType) {
				return fmt.Errorf("wmma: turing f16 C/D must be f16 or f32")
			}
		case S8, U8:
			if c.Shape != M16N16K16 && c.Shape != M32N8K16 && c.Shape != M8N32K16 {
				return fmt.Errorf("wmma: turing 8-bit shape %v unsupported", c.Shape)
			}
			if c.CType != S32 || c.DType != S32 {
				return fmt.Errorf("wmma: integer modes accumulate in s32 to avoid overflow")
			}
		case S4, U4:
			if c.Shape != M8N8K32 {
				return fmt.Errorf("wmma: turing 4-bit supports only %v", M8N8K32)
			}
			if c.CType != S32 || c.DType != S32 {
				return fmt.Errorf("wmma: integer modes accumulate in s32 to avoid overflow")
			}
		default:
			return fmt.Errorf("wmma: unsupported A/B type %v", c.AType)
		}
	default:
		return fmt.Errorf("wmma: unknown arch %v", c.Arch)
	}
	return nil
}

func isF16F32(p Precision) bool { return p == F16 || p == F32 }

// VoltaConfigs enumerates all 32 wmma.mma configurations the Titan V
// supports (2 A layouts × 2 B layouts × 2 C types × 2 D types × satf),
// matching the count validated in Section V-A of the paper.
func VoltaConfigs() []Config {
	var out []Config
	for _, al := range []tensor.Layout{tensor.RowMajor, tensor.ColMajor} {
		for _, bl := range []tensor.Layout{tensor.RowMajor, tensor.ColMajor} {
			for _, ct := range []Precision{F16, F32} {
				for _, dt := range []Precision{F16, F32} {
					for _, satf := range []bool{false, true} {
						out = append(out, Config{
							Arch: Volta, Shape: M16N16K16,
							ALayout: al, BLayout: bl,
							AType: F16, CType: ct, DType: dt, Satf: satf,
						})
					}
				}
			}
		}
	}
	return out
}

// TuringConfigs enumerates the Turing configurations modeled here: the
// three 16-bit shapes with both accumulator types, the three 8-bit shapes
// (signed and unsigned), and the 4-bit shape. Layout and satf variants are
// not expanded; callers that need them set the fields themselves.
func TuringConfigs() []Config {
	var out []Config
	for _, sh := range []Shape{M16N16K16, M32N8K16, M8N32K16} {
		for _, ct := range []Precision{F16, F32} {
			out = append(out, Config{
				Arch: Turing, Shape: sh,
				ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
				AType: F16, CType: ct, DType: ct,
			})
		}
		for _, at := range []Precision{S8, U8} {
			out = append(out, Config{
				Arch: Turing, Shape: sh,
				ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
				AType: at, CType: S32, DType: S32,
			})
		}
	}
	out = append(out, Config{
		Arch: Turing, Shape: M8N8K32,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: S4, CType: S32, DType: S32,
	})
	return out
}
