package wmma

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestRenderOwnershipVoltaC(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixC, tensor.RowMajor, F32)
	s := m.RenderOwnership()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 17 { // header + 16 rows
		t.Fatalf("%d lines, want 17", len(lines))
	}
	// Row 0 starts with threadgroup 0 on the left half and 2 on the right
	// (Figure 7b).
	if !strings.HasPrefix(lines[1], " 0.") {
		t.Errorf("row 0 starts %q", lines[1][:9])
	}
	if !strings.Contains(lines[1], " 2.") {
		t.Errorf("row 0 missing threadgroup 2: %q", lines[1])
	}
	// Bottom-right corner belongs to threadgroup 7.
	if !strings.HasSuffix(lines[16], "7.") {
		t.Errorf("row 15 ends %q", lines[16])
	}
}

func TestRenderOwnershipVoltaADoubleOwners(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	s := m.RenderOwnership()
	// Every A element has two owners: the first data row shows pairs
	// "02" (threadgroups 0 and 2).
	if !strings.Contains(s, " 02") {
		t.Errorf("A rendering missing the 0+2 double ownership:\n%s", s)
	}
	if strings.Contains(s, " ..") {
		t.Error("A rendering has unowned cells")
	}
}

func TestRenderLane(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	s := m.RenderLane(5)
	if !strings.HasPrefix(s, "lane 5 (threadgroup 1):") {
		t.Errorf("lane header: %q", s[:24])
	}
	// Lane 5 = threadgroup 1, lane-in-group 1 → row 9 of A, 16 slots.
	if !strings.Contains(s, "x[0]=(9,0)") || !strings.Contains(s, "x[15]=(9,15)") {
		t.Errorf("lane 5 fragment wrong: %s", s)
	}
}
