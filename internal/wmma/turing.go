package wmma

import (
	"fmt"

	"repro/internal/tensor"
)

// Turing fragment-to-thread mappings (Figure 8 of the paper).
//
// Turing distributes operand elements more simply than Volta: every
// element is loaded exactly once, each "slice" (a row of A and C, a column
// of B) is loaded by a single threadgroup, and consecutive threadgroups
// load consecutive slices. Tiles with more than eight slices wrap around,
// so threadgroup g holds slices g, g+8, g+16, … Within a threadgroup the
// four lanes split each slice into four equal consecutive pieces.
// Both rectangular 16-bit tiles (32×8×16 and 8×32×16) use the same
// distribution rule, as the paper observes.

//simlint:ctor
func turingMap(shape Shape, op Operand, layout tensor.Layout, elem Precision) (*Mapping, error) {
	if err := turingShapeOK(shape); err != nil {
		return nil, err
	}
	rows, cols := shape.Dims(op)

	// A and C distribute by row; B distributes by column.
	slices, sliceLen := rows, cols
	at := func(slice, e int) Coord { return Coord{Row: slice, Col: e} }
	if op == MatrixB {
		slices, sliceLen = cols, rows
		at = func(slice, e int) Coord { return Coord{Row: e, Col: slice} }
	}
	if sliceLen%ThreadgroupSize != 0 {
		return nil, fmt.Errorf("wmma: turing slice length %d not divisible by threadgroup size", sliceLen)
	}
	per := sliceLen / ThreadgroupSize

	m := &Mapping{Arch: Turing, Shape: shape, Op: op, Layout: layout, Elem: elem}
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		k := lane % ThreadgroupSize
		var frag []Coord
		for slice := tg; slice < slices; slice += NumThreadgroups {
			for e := k * per; e < (k+1)*per; e++ {
				frag = append(frag, at(slice, e))
			}
		}
		m.Lanes[lane] = frag
	}
	return m.validateCoverage(), nil
}

func turingShapeOK(shape Shape) error {
	switch shape {
	case M16N16K16, M32N8K16, M8N32K16, M8N8K32:
		return nil
	}
	return fmt.Errorf("wmma: turing does not support shape %v", shape)
}
