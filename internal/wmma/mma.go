package wmma

import (
	"math"

	"repro/internal/fp16"
	"repro/internal/tensor"
)

// Functional model of the wmma.mma PTX instruction.
//
// The arithmetic follows the microarchitecture of Section IV: each output
// element is produced by accumulating four-element dot products (FEDPs).
// Inside a FEDP the four FP16×FP16 products are formed exactly (a product
// of two binary16 values is exact in binary32), summed pairwise in FP32,
// and the FEDP result is added to the accumulator — in FP32 for mixed
// precision, or rounded back to FP16 per step in FP16 mode. The K loop is
// walked in ascending 4-element chunks, matching the set ordering the
// HMMA decomposition uses, so internal/tcore's set/step execution produces
// bit-identical results (a property the tests assert).

// FEDPWidth is the dot-product width of one tensor core lane: four
// multiplies feeding a three-stage adder tree.
const FEDPWidth = 4

// fedp32 computes one four-element dot product: exact FP16 products summed
// pairwise in FP32.
func fedp32(a, b []fp16.Float16) float32 {
	p0 := fp16.MulTo32(a[0], b[0])
	p1 := fp16.MulTo32(a[1], b[1])
	p2 := fp16.MulTo32(a[2], b[2])
	p3 := fp16.MulTo32(a[3], b[3])
	return (p0 + p1) + (p2 + p3)
}

// DotF32 accumulates the length-K dot product of a and b onto acc in FP32,
// one FEDP chunk at a time. len(a) must equal len(b) and be a multiple of
// FEDPWidth.
func DotF32(acc float32, a, b []fp16.Float16) float32 {
	for k := 0; k < len(a); k += FEDPWidth {
		acc += fedp32(a[k:k+FEDPWidth], b[k:k+FEDPWidth])
	}
	return acc
}

// DotF16 accumulates the dot product onto an FP16 accumulator: each FEDP
// result is added in FP32 and rounded back to binary16 before the next
// chunk, modeling the FP16-mode writeback between HMMA sets.
func DotF16(acc fp16.Float16, a, b []fp16.Float16) fp16.Float16 {
	for k := 0; k < len(a); k += FEDPWidth {
		s := fedp32(a[k:k+FEDPWidth], b[k:k+FEDPWidth])
		acc = fp16.FromFloat32(acc.Float32() + s)
	}
	return acc
}

// MMA computes the warp-wide D = A×B + C for one tile under cfg. Inputs
// and output are host matrices holding the logical element values; the
// element values are quantized to cfg's operand precisions on the way in
// (float64 → binary16 for F16 operands, truncation to the integer range
// for integer operands), exactly as a wmma.load of memory holding those
// types would see them.
//
// The returned matrix is M×N in the requested layout.
func MMA(cfg Config, a, b, c *tensor.Matrix, outLayout tensor.Layout) (*tensor.Matrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := tensor.New(cfg.Shape.M, cfg.Shape.N, outLayout)
	if err := MMAInto(cfg, a, b, c, d); err != nil {
		return nil, err
	}
	return d, nil
}

// MMAInto is MMA writing D into a caller-provided M×N matrix, which is
// fully overwritten — the allocation-light path the instruction executor
// runs once per dynamic wmma.mma.
func MMAInto(cfg Config, a, b, c, d *tensor.Matrix) error {
	return MMAIntoBuf(cfg, a, b, c, d, nil)
}

// QuantBufLen returns the fp16 scratch length MMAIntoBuf needs for the
// configuration's operand quantization: one binary16 value per A and B
// element.
func QuantBufLen(cfg Config) int { return (cfg.Shape.M + cfg.Shape.N) * cfg.Shape.K }

// MMAIntoBuf is MMAInto with a caller-provided quantization scratch of
// at least QuantBufLen(cfg) elements (nil or short buffers allocate,
// preserving MMAInto's behaviour). The batched wmma executor reuses one
// buffer per warp so a dynamic wmma.mma allocates nothing.
func MMAIntoBuf(cfg Config, a, b, c, d *tensor.Matrix, buf []fp16.Float16) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.AType.IsInt() {
		mmaInt(cfg, a, b, c, d)
		return nil
	}
	mmaFloat(cfg, a, b, c, d, buf)
	return nil
}

// MustMMA is MMA but panics on configuration errors.
func MustMMA(cfg Config, a, b, c *tensor.Matrix, outLayout tensor.Layout) *tensor.Matrix {
	d, err := MMA(cfg, a, b, c, outLayout)
	if err != nil {
		panic(err)
	}
	return d
}

func mmaFloat(cfg Config, a, b, c, d *tensor.Matrix, buf []fp16.Float16) {
	s := cfg.Shape
	// Quantize A rows and B columns once, into two flat buffers.
	need := (s.M + s.N) * s.K
	if cap(buf) < need {
		buf = make([]fp16.Float16, need)
	}
	flat := buf[:need]
	av, bv := flat[:s.M*s.K], flat[s.M*s.K:]
	for i := 0; i < s.M; i++ {
		for k := 0; k < s.K; k++ {
			av[i*s.K+k] = fp16.FromFloat64(a.At(i, k))
		}
	}
	for j := 0; j < s.N; j++ {
		for k := 0; k < s.K; k++ {
			bv[j*s.K+k] = fp16.FromFloat64(b.At(k, j))
		}
	}
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			ar, bc := av[i*s.K:(i+1)*s.K], bv[j*s.K:(j+1)*s.K]
			var out float64
			if cfg.CType == F32 {
				acc := float32(c.At(i, j))
				acc = DotF32(acc, ar, bc)
				out = float64(acc)
			} else {
				acc := fp16.FromFloat64(c.At(i, j))
				acc = DotF16(acc, ar, bc)
				out = acc.Float64()
			}
			if cfg.DType == F16 {
				out = fp16.FromFloat64(out).Float64()
			}
			if cfg.Satf {
				out = satFloat(out)
			}
			d.Set(i, j, out)
		}
	}
}

// SaturateFloat implements the .satf qualifier for floating point: the
// result is clamped to the maximum finite binary16 magnitude and NaN
// becomes +0, per the PTX specification's "saturate to finite value"
// semantics. Exported so internal/tcore's decomposed execution applies the
// identical final conversion.
func SaturateFloat(v float64) float64 { return satFloat(v) }

// satFloat implements the .satf qualifier for floating point: the result
// is clamped to the maximum finite magnitude and NaN becomes +0, per the
// PTX specification's "saturate to finite value" semantics.
func satFloat(v float64) float64 {
	const maxF16 = 65504
	switch {
	case math.IsNaN(v):
		return 0
	case v > maxF16:
		return maxF16
	case v < -maxF16:
		return -maxF16
	}
	return v
}

func mmaInt(cfg Config, a, b, c, d *tensor.Matrix) {
	s := cfg.Shape
	qa := intQuantizer(cfg.AType)
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			acc := int64(int32(c.At(i, j)))
			for k := 0; k < s.K; k++ {
				acc += int64(qa(a.At(i, k))) * int64(qa(b.At(k, j)))
			}
			if cfg.Satf {
				if acc > math.MaxInt32 {
					acc = math.MaxInt32
				} else if acc < math.MinInt32 {
					acc = math.MinInt32
				}
			} else {
				acc = int64(int32(acc)) // wraparound semantics
			}
			d.Set(i, j, float64(acc))
		}
	}
}

// QuantizeInt truncates a float64 host value into the given integer
// operand range, the way the device memory image would hold it.
func QuantizeInt(p Precision, v float64) int32 { return intQuantizer(p)(v) }

// intQuantizer returns a function truncating a float64 host value into the
// given integer operand range, the way the device memory image would hold
// it.
func intQuantizer(p Precision) func(float64) int32 {
	var lo, hi int32
	switch p {
	case S8:
		lo, hi = -128, 127
	case U8:
		lo, hi = 0, 255
	case S4:
		lo, hi = -8, 7
	case U4:
		lo, hi = 0, 15
	default:
		panic("wmma: not an integer operand type")
	}
	return func(v float64) int32 {
		x := int32(v)
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return x
	}
}

// ReferenceGemm returns the float64 D = A×B + C for comparison with MMA
// results; the expected absolute error of the FP16 datapath against this
// reference is bounded by Tolerance.
func ReferenceGemm(cfg Config, a, b, c *tensor.Matrix) *tensor.Matrix {
	return tensor.Gemm(a, b, c, tensor.RowMajor)
}

// Tolerance returns a conservative bound on |MMA - float64 reference| for
// inputs bounded by maxAbs, accounting for input quantization, FP32 FEDP
// rounding and (in FP16 accumulation mode) per-chunk rounding.
func Tolerance(cfg Config, maxAbs float64) float64 {
	if cfg.AType.IsInt() {
		return 0 // integer arithmetic is exact
	}
	k := float64(cfg.Shape.K)
	// Each input rounds with relative error 2^-11; products of two
	// quantized inputs then carry ~2^-10. Accumulation adds at most
	// k rounding steps of the running sum's magnitude.
	eps := math.Ldexp(1, -11)
	if cfg.CType == F16 || cfg.DType == F16 {
		eps = math.Ldexp(1, -9)
	}
	bound := k * maxAbs * maxAbs * eps * 8
	if bound < 1e-6 {
		bound = 1e-6
	}
	return bound
}
