package wmma

import (
	"fmt"
	"strings"
)

// RenderOwnership draws the operand tile as a character grid showing
// which threadgroup(s) hold each element — a textual rendition of the
// shaded maps in Figures 7 and 8. Volta A/B elements belong to two
// threadgroups and render as a pair like "04"; single-owner elements
// render as one digit padded with '.'.
func (m *Mapping) RenderOwnership() string {
	rows, cols := m.Shape.Dims(m.Op)
	owners := make([][][]int, rows)
	for r := range owners {
		owners[r] = make([][]int, cols)
	}
	for lane := range m.Lanes {
		tg := ThreadgroupOf(lane)
		for _, c := range m.Lanes[lane] {
			cell := owners[c.Row][c.Col]
			dup := false
			for _, t := range cell {
				if t == tg {
					dup = true
				}
			}
			if !dup {
				owners[c.Row][c.Col] = append(cell, tg)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v %v %v %v (%d x %d), threadgroup owners per element:\n",
		m.Arch, m.Shape, m.Op, m.Layout, rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := owners[r][c]
			switch len(cell) {
			case 0:
				b.WriteString(" ..")
			case 1:
				fmt.Fprintf(&b, " %d.", cell[0])
			default:
				fmt.Fprintf(&b, " %d%d", cell[0], cell[1])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLane lists one lane's fragment slots and coordinates, the output
// the Figure 4 microbenchmark decodes.
func (m *Mapping) RenderLane(lane int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lane %d (threadgroup %d):", lane, ThreadgroupOf(lane))
	for slot, c := range m.Lanes[lane] {
		fmt.Fprintf(&b, " x[%d]=(%d,%d)", slot, c.Row, c.Col)
	}
	return b.String()
}
