package wmma

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/tensor"
)

func fillExact(m *tensor.Matrix, rng *rand.Rand) {
	// Multiples of 1/4 in [-2, 2): products are multiples of 1/16 ≤ 4 and
	// 16-term sums stay ≤ 64, exactly representable even in binary16, so
	// MMA must match the float64 reference bit for bit.
	m.FillFunc(func(int, int) float64 { return float64(rng.Intn(16)-8) / 4 })
}

func TestVoltaConfigCount(t *testing.T) {
	cfgs := VoltaConfigs()
	if len(cfgs) != 32 {
		t.Fatalf("VoltaConfigs returned %d configs, want 32 (the paper validates all 32)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("config %v invalid: %v", c, err)
		}
		key := c.String()
		if c.Satf {
			key += ".satf"
		}
		if seen[key] {
			t.Errorf("duplicate config %v", key)
		}
		seen[key] = true
	}
}

func TestTuringConfigsValid(t *testing.T) {
	for _, c := range TuringConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("config %v invalid: %v", c, err)
		}
	}
}

// All 32 Volta configurations must produce exact results on exactly
// representable inputs — the analog of the paper's functional validation.
func TestMMAAllVoltaConfigsExactInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range VoltaConfigs() {
		a := tensor.New(16, 16, cfg.ALayout)
		b := tensor.New(16, 16, cfg.BLayout)
		c := tensor.New(16, 16, tensor.RowMajor)
		fillExact(a, rng)
		fillExact(b, rng)
		fillExact(c, rng)
		got := MustMMA(cfg, a, b, c, tensor.RowMajor)
		want := tensor.Gemm(a, b, c, tensor.RowMajor)
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("%v: max abs diff %g on exact inputs, want 0", cfg, d)
		}
	}
}

func TestMMARandomInputsWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range VoltaConfigs()[:8] {
		a := tensor.New(16, 16, cfg.ALayout)
		b := tensor.New(16, 16, cfg.BLayout)
		c := tensor.New(16, 16, tensor.RowMajor)
		a.FillRandomFP16(rng)
		b.FillRandomFP16(rng)
		c.FillRandomFP16(rng)
		got := MustMMA(cfg, a, b, c, tensor.RowMajor)
		want := tensor.Gemm(a, b, c, tensor.RowMajor)
		tol := Tolerance(cfg, 4)
		if d := tensor.MaxAbsDiff(got, want); d > tol {
			t.Errorf("%v: max abs diff %g exceeds tolerance %g", cfg, d, tol)
		}
	}
}

// Integer modes are exact.
func TestMMAIntegerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range TuringConfigs() {
		if !cfg.AType.IsInt() {
			continue
		}
		a := tensor.New(cfg.Shape.M, cfg.Shape.K, cfg.ALayout)
		b := tensor.New(cfg.Shape.K, cfg.Shape.N, cfg.BLayout)
		c := tensor.New(cfg.Shape.M, cfg.Shape.N, tensor.RowMajor)
		lo, hi := -8, 7
		if cfg.AType == U8 || cfg.AType == U4 {
			lo = 0
		}
		a.FillRandomInt(rng, lo, hi)
		b.FillRandomInt(rng, lo, hi)
		c.FillRandomInt(rng, -100, 100)
		got := MustMMA(cfg, a, b, c, tensor.RowMajor)
		want := tensor.Gemm(a, b, c, tensor.RowMajor)
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("%v: integer mma differs from reference by %g", cfg, d)
		}
	}
}

// Integer saturation: accumulating past int32 max clamps with satf and
// wraps without.
func TestMMAIntSaturation(t *testing.T) {
	cfg := Config{Arch: Turing, Shape: M16N16K16, ALayout: tensor.RowMajor,
		BLayout: tensor.ColMajor, AType: S8, CType: S32, DType: S32, Satf: true}
	a := tensor.New(16, 16, tensor.RowMajor)
	b := tensor.New(16, 16, tensor.ColMajor)
	c := tensor.New(16, 16, tensor.RowMajor)
	a.FillConst(127)
	b.FillConst(127)
	c.FillConst(float64(1<<31 - 1)) // start at int32 max
	got := MustMMA(cfg, a, b, c, tensor.RowMajor)
	if got.At(0, 0) != float64(1<<31-1) {
		t.Errorf("satf result %v, want int32 max", got.At(0, 0))
	}
	cfg.Satf = false
	got = MustMMA(cfg, a, b, c, tensor.RowMajor)
	if got.At(0, 0) == float64(1<<31-1) {
		t.Error("without satf the accumulator should wrap")
	}
}

// Float satf clamps to the maximum finite value.
func TestMMAFloatSaturation(t *testing.T) {
	cfg := Config{Arch: Volta, Shape: M16N16K16, ALayout: tensor.RowMajor,
		BLayout: tensor.ColMajor, AType: F16, CType: F32, DType: F32, Satf: true}
	a := tensor.New(16, 16, tensor.RowMajor)
	b := tensor.New(16, 16, tensor.ColMajor)
	c := tensor.New(16, 16, tensor.RowMajor)
	a.FillConst(200)
	b.FillConst(200)
	c.FillConst(0)
	got := MustMMA(cfg, a, b, c, tensor.RowMajor)
	if got.At(3, 3) != 65504 {
		t.Errorf("satf float result %v, want 65504", got.At(3, 3))
	}
}

// FP16 accumulation loses precision that FP32 accumulation keeps — the
// motivation for mixed-precision mode. With all-ones inputs and a C that
// pushes the accumulator past 2048, fp16 accumulation stalls.
func TestMixedPrecisionBeatsFP16Accumulation(t *testing.T) {
	mk := func(ct, dt Precision) *tensor.Matrix {
		cfg := Config{Arch: Volta, Shape: M16N16K16, ALayout: tensor.RowMajor,
			BLayout: tensor.ColMajor, AType: F16, CType: ct, DType: dt}
		a := tensor.New(16, 16, tensor.RowMajor)
		b := tensor.New(16, 16, tensor.ColMajor)
		c := tensor.New(16, 16, tensor.RowMajor)
		a.FillConst(1)
		b.FillConst(1)
		c.FillConst(2047.5)
		return MustMMA(cfg, a, b, c, tensor.RowMajor)
	}
	f32 := mk(F32, F32)
	f16 := mk(F16, F16)
	if f32.At(0, 0) != 2063.5 {
		t.Errorf("fp32 accumulation = %v, want 2063.5", f32.At(0, 0))
	}
	// binary16 cannot even represent the 0.5 fraction at this magnitude
	// (ULP is 2 above 2048), so the fp16 result must be off the exact value.
	if f16.At(0, 0) == 2063.5 {
		t.Error("fp16 accumulation unexpectedly exact; precision-loss check is vacuous")
	}
}

// DotF32 over a K-length vector must equal chunked FEDP accumulation by
// construction; cross-check against a plain fp32 loop on exact inputs.
func TestDotSemantics(t *testing.T) {
	a := make([]fp16.Float16, 16)
	b := make([]fp16.Float16, 16)
	for i := range a {
		a[i] = fp16.FromFloat64(float64(i%5) - 2)
		b[i] = fp16.FromFloat64(float64(i%3) - 1)
	}
	var plain float32
	for i := range a {
		plain += fp16.MulTo32(a[i], b[i])
	}
	if got := DotF32(0, a, b); got != plain {
		t.Errorf("DotF32 = %v, plain loop = %v (exact inputs should agree)", got, plain)
	}
}

func TestMMAValidates(t *testing.T) {
	bad := Config{Arch: Volta, Shape: M32N8K16, AType: F16, CType: F32, DType: F32}
	if _, err := MMA(bad, nil, nil, nil, tensor.RowMajor); err == nil {
		t.Error("MMA should reject invalid configs")
	}
}
