package wmma

import (
	"testing"

	"repro/internal/tensor"
)

var turingF16Shapes = []Shape{M16N16K16, M32N8K16, M8N32K16}

// Figure 8: on Turing every operand element is loaded exactly once.
func TestTuringLoadMultiplicity(t *testing.T) {
	for _, sh := range turingF16Shapes {
		for _, op := range []Operand{MatrixA, MatrixB, MatrixC} {
			elem := F16
			if op == MatrixC {
				elem = F32
			}
			m := MustMap(Turing, sh, op, tensor.RowMajor, elem)
			for coord, n := range m.LoadCounts() {
				if n != 1 {
					t.Fatalf("%v %v: element %v loaded %d times, want 1", sh, op, coord, n)
				}
			}
			rows, cols := sh.Dims(op)
			if got, want := m.FragmentLen(), rows*cols/WarpSize; got != want {
				t.Errorf("%v %v: fragment length %d, want %d", sh, op, got, want)
			}
		}
	}
}

// Figure 8: each row (A, C) or column (B) is loaded by one threadgroup and
// consecutive threadgroups load consecutive rows/columns.
func TestTuringSliceAssignment(t *testing.T) {
	for _, sh := range turingF16Shapes {
		for _, op := range []Operand{MatrixA, MatrixB, MatrixC} {
			m := MustMap(Turing, sh, op, tensor.RowMajor, F16)
			for lane := 0; lane < WarpSize; lane++ {
				tg := ThreadgroupOf(lane)
				for _, c := range m.Lanes[lane] {
					slice := c.Row
					if op == MatrixB {
						slice = c.Col
					}
					if slice%NumThreadgroups != tg {
						t.Fatalf("%v %v: lane %d (tg %d) holds slice %d", sh, op, lane, tg, slice)
					}
				}
			}
		}
	}
}

// Within a threadgroup each lane holds an equal contiguous quarter of each
// slice, so a 16-long slice yields 4 consecutive 16-bit elements per lane:
// one 64-bit load per slice in the contiguous layout.
func TestTuringLoadWidths(t *testing.T) {
	m := MustMap(Turing, M16N16K16, MatrixA, tensor.RowMajor, F16)
	runs := m.LaneRuns(0, 16)
	if len(runs) != 2 || runs[0] != 4 || runs[1] != 4 {
		t.Errorf("A row-major lane runs %v, want [4 4]", runs)
	}
	widths := m.LoadWidthsBits(16)
	if len(widths) != 1 || widths[0] != 64 {
		t.Errorf("A row-major widths %v, want [64]", widths)
	}
	// 8-bit mode: 4 consecutive bytes per slice quarter = 32-bit loads.
	m8 := MustMap(Turing, M16N16K16, MatrixA, tensor.RowMajor, S8)
	if widths := m8.LoadWidthsBits(16); len(widths) != 1 || widths[0] != 32 {
		t.Errorf("A s8 widths %v, want [32]", widths)
	}
}

// The two rectangular 16-bit shapes use the same distribution rule
// (the paper: "Both tile size 32×8×16 and 8×32×16 employ the same
// distribution").
func TestTuringRectangularShapesShareRule(t *testing.T) {
	a32 := MustMap(Turing, M32N8K16, MatrixA, tensor.RowMajor, F16)
	// A is 32×16: threadgroup g holds rows g, g+8, g+16, g+24.
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		rows := map[int]bool{}
		for _, c := range a32.Lanes[lane] {
			rows[c.Row] = true
		}
		for r := range rows {
			if r%8 != tg {
				t.Fatalf("32x8x16 A: lane %d holds row %d, not ≡ tg %d (mod 8)", lane, r, tg)
			}
		}
		if len(rows) != 4 {
			t.Fatalf("32x8x16 A: lane %d covers %d rows, want 4", lane, len(rows))
		}
	}
	b32 := MustMap(Turing, M32N8K16, MatrixB, tensor.ColMajor, F16)
	// B is 16×8: column g belongs to threadgroup g.
	for lane := 0; lane < WarpSize; lane++ {
		tg := ThreadgroupOf(lane)
		for _, c := range b32.Lanes[lane] {
			if c.Col != tg {
				t.Fatalf("32x8x16 B: lane %d holds col %d, want %d", lane, c.Col, tg)
			}
		}
	}
}

// 4-bit mode tile 8×8×32.
func TestTuring4BitShape(t *testing.T) {
	a := MustMap(Turing, M8N8K32, MatrixA, tensor.RowMajor, S4)
	if got, want := a.FragmentLen(), 8*32/WarpSize; got != want {
		t.Errorf("4-bit A fragment length %d, want %d", got, want)
	}
	for coord, n := range a.LoadCounts() {
		if n != 1 {
			t.Fatalf("4-bit A element %v loaded %d times", coord, n)
		}
	}
	c := MustMap(Turing, M8N8K32, MatrixC, tensor.RowMajor, S32)
	if got, want := c.FragmentLen(), 2; got != want {
		t.Errorf("4-bit C fragment length %d, want %d", got, want)
	}
}

func TestTuringGatherScatterRoundTrip(t *testing.T) {
	for _, sh := range []Shape{M16N16K16, M32N8K16, M8N32K16, M8N8K32} {
		for _, op := range []Operand{MatrixA, MatrixB, MatrixC} {
			m := MustMap(Turing, sh, op, tensor.ColMajor, F16)
			rows, cols := sh.Dims(op)
			tile := tensor.New(rows, cols, tensor.ColMajor)
			tile.FillSequential()
			back := tensor.New(rows, cols, tensor.ColMajor)
			m.Scatter(m.Gather(tile), back)
			if !tensor.Equal(tile, back, 0) {
				t.Errorf("%v %v: gather/scatter did not round-trip", sh, op)
			}
		}
	}
}

func TestTuringRejectsBadShape(t *testing.T) {
	if _, err := Map(Turing, Shape{8, 8, 8}, MatrixA, tensor.RowMajor, F16); err == nil {
		t.Error("Turing should reject 8x8x8")
	}
}
