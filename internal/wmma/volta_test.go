package wmma

import (
	"testing"

	"repro/internal/tensor"
)

var bothLayouts = []tensor.Layout{tensor.RowMajor, tensor.ColMajor}

// Figure 7a: every element of A and B is loaded by exactly two threads in
// the warp; Figure 7b: every element of C by exactly one.
func TestVoltaLoadMultiplicity(t *testing.T) {
	for _, layout := range bothLayouts {
		for _, op := range []Operand{MatrixA, MatrixB} {
			m := MustMap(Volta, M16N16K16, op, layout, F16)
			for coord, n := range m.LoadCounts() {
				if n != 2 {
					t.Fatalf("%v %v: element %v loaded %d times, want 2", op, layout, coord, n)
				}
			}
			if got := m.FragmentLen(); got != 16 {
				t.Errorf("%v %v: fragment length %d, want 16", op, layout, got)
			}
		}
	}
	for _, elem := range []Precision{F16, F32} {
		m := MustMap(Volta, M16N16K16, MatrixC, tensor.RowMajor, elem)
		for coord, n := range m.LoadCounts() {
			if n != 1 {
				t.Fatalf("C %v: element %v loaded %d times, want 1", elem, coord, n)
			}
		}
		if got := m.FragmentLen(); got != 8 {
			t.Errorf("C %v: fragment length %d, want 8", elem, got)
		}
	}
}

// The two threads holding an A/B element must belong to different
// threadgroups ("each element ... loaded by two different threadgroups").
func TestVoltaDuplicatesAcrossThreadgroups(t *testing.T) {
	for _, op := range []Operand{MatrixA, MatrixB} {
		m := MustMap(Volta, M16N16K16, op, tensor.RowMajor, F16)
		for row := 0; row < 16; row++ {
			for col := 0; col < 16; col++ {
				lanes := m.LanesHolding(row, col)
				if len(lanes) != 2 {
					t.Fatalf("%v element (%d,%d) held by %v", op, row, col, lanes)
				}
				if ThreadgroupOf(lanes[0]) == ThreadgroupOf(lanes[1]) {
					t.Fatalf("%v element (%d,%d) held twice by threadgroup %d",
						op, row, col, ThreadgroupOf(lanes[0]))
				}
			}
		}
	}
}

// Figure 7a ①: the first four rows of A are loaded by threadgroups 0 and
// 2; full segment assignment per the figure.
func TestVoltaASegments(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	want := map[int][2]int{ // rowBase → the two threadgroups
		0: {0, 2}, 4: {4, 6}, 8: {1, 3}, 12: {5, 7},
	}
	for base, tgs := range want {
		for _, tg := range tgs {
			rl, rh, cl, ch := m.ThreadgroupRegion(tg)
			if rl != base || rh != base+3 || cl != 0 || ch != 15 {
				t.Errorf("threadgroup %d region rows %d-%d cols %d-%d, want rows %d-%d cols 0-15",
					tg, rl, rh, cl, ch, base, base+3)
			}
		}
	}
}

// B column segments, derived from Table II octet composition.
func TestVoltaBSegments(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixB, tensor.ColMajor, F16)
	want := map[int][2]int{ // colBase → the two threadgroups
		0: {0, 1}, 4: {4, 5}, 8: {2, 3}, 12: {6, 7},
	}
	for base, tgs := range want {
		for _, tg := range tgs {
			rl, rh, cl, ch := m.ThreadgroupRegion(tg)
			if rl != 0 || rh != 15 || cl != base || ch != base+3 {
				t.Errorf("threadgroup %d region rows %d-%d cols %d-%d, want rows 0-15 cols %d-%d",
					tg, rl, rh, cl, ch, base, base+3)
			}
		}
	}
}

// Figure 7b: each threadgroup holds a 4×8 segment of C at the documented
// position, for both accumulator precisions.
func TestVoltaCSegments(t *testing.T) {
	want := map[int]Coord{
		0: {0, 0}, 2: {0, 8}, 4: {4, 0}, 6: {4, 8},
		1: {8, 0}, 3: {8, 8}, 5: {12, 0}, 7: {12, 8},
	}
	for _, elem := range []Precision{F16, F32} {
		m := MustMap(Volta, M16N16K16, MatrixC, tensor.RowMajor, elem)
		for tg, base := range want {
			rl, rh, cl, ch := m.ThreadgroupRegion(tg)
			if rl != base.Row || rh != base.Row+3 || cl != base.Col || ch != base.Col+7 {
				t.Errorf("%v threadgroup %d region rows %d-%d cols %d-%d, want %d-%d/%d-%d",
					elem, tg, rl, rh, cl, ch, base.Row, base.Row+3, base.Col, base.Col+7)
			}
		}
	}
}

// The paper: "The distribution of matrix elements to threads for operand
// matrix A stored in row-major layout is the same as the distribution of
// operand matrix B stored in column-major layout and vice-versa."
func TestVoltaABLayoutDuality(t *testing.T) {
	aRow := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	bCol := MustMap(Volta, M16N16K16, MatrixB, tensor.ColMajor, F16)
	aCol := MustMap(Volta, M16N16K16, MatrixA, tensor.ColMajor, F16)
	bRow := MustMap(Volta, M16N16K16, MatrixB, tensor.RowMajor, F16)
	// A's (slice, k) ↔ B's (k, slice): transposing A's coords must give a
	// warp distribution with the same per-lane *shape* as B's, modulo the
	// segment bases differing between A and B. Verify the per-lane run
	// structure (how elements sit in memory) matches, which is the
	// observable the paper's load-width analysis rests on.
	for lane := 0; lane < WarpSize; lane++ {
		if got, want := len(aRow.Lanes[lane]), len(bCol.Lanes[lane]); got != want {
			t.Fatalf("lane %d: |A row frag| %d != |B col frag| %d", lane, got, want)
		}
	}
	if ar, bc := aRow.LaneRuns(0, 16), bCol.LaneRuns(0, 16); len(ar) != len(bc) || ar[0] != bc[0] {
		t.Errorf("A-row runs %v != B-col runs %v", ar, bc)
	}
	if ac, br := aCol.LaneRuns(0, 16), bRow.LaneRuns(0, 16); len(ac) != len(br) || ac[0] != br[0] {
		t.Errorf("A-col runs %v != B-row runs %v", ac, br)
	}
}

// Section III-C: A/B in the contiguous layout load with two 128-bit
// instructions; in the strided layout with four 64-bit instructions; C
// loads are 32-bit.
func TestVoltaLoadWidths(t *testing.T) {
	cases := []struct {
		op     Operand
		layout tensor.Layout
		elem   Precision
		widths []int
		count  int
	}{
		{MatrixA, tensor.RowMajor, F16, []int{128}, 2},
		{MatrixA, tensor.ColMajor, F16, []int{64}, 4},
		{MatrixB, tensor.ColMajor, F16, []int{128}, 2},
		{MatrixB, tensor.RowMajor, F16, []int{64}, 4},
		{MatrixC, tensor.RowMajor, F32, []int{32}, 8},
	}
	for _, c := range cases {
		m := MustMap(Volta, M16N16K16, c.op, c.layout, c.elem)
		got := m.LoadWidthsBits(16)
		if len(got) != len(c.widths) || got[0] != c.widths[0] {
			t.Errorf("%v %v: widths %v, want %v", c.op, c.layout, got, c.widths)
		}
		if n := m.LoadInstructionCount(16); n != c.count {
			t.Errorf("%v %v: %d load instructions, want %d", c.op, c.layout, n, c.count)
		}
	}
}

// Table II: octet composition and accessed element ranges.
func TestOctetsMatchTableII(t *testing.T) {
	want := []Octet{
		{ID: 0, Threadgroups: [2]int{0, 4}, ARows: [2]int{0, 7}, ACols: [2]int{0, 15}, BRows: [2]int{0, 15}, BCols: [2]int{0, 7}, CRows: [2]int{0, 7}, CCols: [2]int{0, 7}},
		{ID: 1, Threadgroups: [2]int{1, 5}, ARows: [2]int{8, 15}, ACols: [2]int{0, 15}, BRows: [2]int{0, 15}, BCols: [2]int{0, 7}, CRows: [2]int{8, 15}, CCols: [2]int{0, 7}},
		{ID: 2, Threadgroups: [2]int{2, 6}, ARows: [2]int{0, 7}, ACols: [2]int{0, 15}, BRows: [2]int{0, 15}, BCols: [2]int{8, 15}, CRows: [2]int{0, 7}, CCols: [2]int{8, 15}},
		{ID: 3, Threadgroups: [2]int{3, 7}, ARows: [2]int{8, 15}, ACols: [2]int{0, 15}, BRows: [2]int{0, 15}, BCols: [2]int{8, 15}, CRows: [2]int{8, 15}, CCols: [2]int{8, 15}},
	}
	got := Octets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("octet %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

// The mapping must agree with the octet ranges: the union of the two
// threadgroups of octet X covers exactly the Table II ranges.
func TestVoltaMappingConsistentWithOctets(t *testing.T) {
	aMap := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	bMap := MustMap(Volta, M16N16K16, MatrixB, tensor.RowMajor, F16)
	for _, o := range Octets() {
		gotRowLo, gotRowHi := 16, -1
		for _, tg := range o.Threadgroups {
			rl, rh, _, _ := aMap.ThreadgroupRegion(tg)
			if rl < gotRowLo {
				gotRowLo = rl
			}
			if rh > gotRowHi {
				gotRowHi = rh
			}
		}
		if gotRowLo != o.ARows[0] || gotRowHi != o.ARows[1] {
			t.Errorf("octet %d A rows %d-%d, want %d-%d", o.ID, gotRowLo, gotRowHi, o.ARows[0], o.ARows[1])
		}
		gotColLo, gotColHi := 16, -1
		for _, tg := range o.Threadgroups {
			_, _, cl, ch := bMap.ThreadgroupRegion(tg)
			if cl < gotColLo {
				gotColLo = cl
			}
			if ch > gotColHi {
				gotColHi = ch
			}
		}
		if gotColLo != o.BCols[0] || gotColHi != o.BCols[1] {
			t.Errorf("octet %d B cols %d-%d, want %d-%d", o.ID, gotColLo, gotColHi, o.BCols[0], o.BCols[1])
		}
	}
}

// Gather/Scatter must round-trip a tile through fragments.
func TestGatherScatterRoundTrip(t *testing.T) {
	for _, op := range []Operand{MatrixA, MatrixB, MatrixC} {
		elem := F16
		if op == MatrixC {
			elem = F32
		}
		m := MustMap(Volta, M16N16K16, op, tensor.RowMajor, elem)
		rows, cols := M16N16K16.Dims(op)
		tile := tensor.New(rows, cols, tensor.RowMajor)
		tile.FillSequential()
		frags := m.Gather(tile)
		back := tensor.New(rows, cols, tensor.RowMajor)
		m.Scatter(frags, back)
		if !tensor.Equal(tile, back, 0) {
			t.Errorf("%v: gather/scatter did not round-trip", op)
		}
	}
}

func TestOctetOf(t *testing.T) {
	for tg := 0; tg < NumThreadgroups; tg++ {
		want := tg % 4
		if got := OctetOf(tg); got != want {
			t.Errorf("OctetOf(%d) = %d, want %d", tg, got, want)
		}
	}
}

func TestVoltaRejectsBadShapes(t *testing.T) {
	if _, err := Map(Volta, M32N8K16, MatrixA, tensor.RowMajor, F16); err == nil {
		t.Error("Volta should reject 32x8x16")
	}
	if _, err := Map(Volta, M16N16K16, MatrixA, tensor.RowMajor, S8); err == nil {
		t.Error("Volta should reject int8 A")
	}
}
