package wmma

import (
	"testing"

	"repro/internal/tensor"
)

// The SoA view must be a pure transposition of Lanes: same coordinates,
// same slot order, for every supported mapping.
func TestSlotVecsMatchLanes(t *testing.T) {
	type mc struct {
		arch   Arch
		shape  Shape
		op     Operand
		layout tensor.Layout
		elem   Precision
	}
	var cases []mc
	for _, layout := range []tensor.Layout{tensor.RowMajor, tensor.ColMajor} {
		for _, op := range []Operand{MatrixA, MatrixB} {
			cases = append(cases, mc{Volta, M16N16K16, op, layout, F16})
			for _, sh := range []Shape{M16N16K16, M32N8K16, M8N32K16} {
				cases = append(cases, mc{Turing, sh, op, layout, F16})
			}
		}
	}
	for _, elem := range []Precision{F16, F32} {
		cases = append(cases, mc{Volta, M16N16K16, MatrixC, tensor.RowMajor, elem})
		cases = append(cases, mc{Turing, M16N16K16, MatrixC, tensor.RowMajor, elem})
	}
	for _, c := range cases {
		m, err := Map(c.arch, c.shape, c.op, c.layout, c.elem)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		v := m.SlotVecs()
		if !v.Uniform {
			t.Fatalf("%+v: standard mapping reported non-uniform", c)
		}
		if v.Slots != m.FragmentLen() {
			t.Fatalf("%+v: Slots = %d, FragmentLen = %d", c, v.Slots, m.FragmentLen())
		}
		for lane := range m.Lanes {
			for slot, coord := range m.Lanes[lane] {
				if int(v.Row[slot][lane]) != coord.Row || int(v.Col[slot][lane]) != coord.Col {
					t.Fatalf("%+v: lane %d slot %d = (%d,%d), want %v",
						c, lane, slot, v.Row[slot][lane], v.Col[slot][lane], coord)
				}
			}
		}
	}
}

// A mapping whose lanes disagree on fragment length must report
// non-uniform so the executor takes the per-lane fallback.
func TestSlotVecsNonUniform(t *testing.T) {
	m := MustMap(Volta, M16N16K16, MatrixA, tensor.RowMajor, F16)
	ragged := *m
	ragged.Lanes[7] = ragged.Lanes[7][:len(ragged.Lanes[7])-1]
	if v := ragged.SlotVecs(); v.Uniform || v.Row != nil {
		t.Fatalf("ragged mapping reported uniform: %+v", v)
	}
}
