package wmma

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// WarpSize is the number of threads in a warp; all WMMA operations are
// warp-wide.
const WarpSize = 32

// ThreadgroupSize is the number of consecutive threads in a threadgroup,
// the unit Jia et al. and the paper use to describe fragment distribution.
const ThreadgroupSize = 4

// NumThreadgroups is the number of threadgroups in a warp.
const NumThreadgroups = WarpSize / ThreadgroupSize

// ThreadgroupOf returns the threadgroup id of a lane: ⌊lane/4⌋.
func ThreadgroupOf(lane int) int { return lane / ThreadgroupSize }

// Coord addresses one element of an operand tile.
type Coord struct{ Row, Col int }

// Mapping records, for one operand tile under one configuration, exactly
// which tile elements each lane of the warp holds and in what order. The
// slot order is the order of the fragment's storage (a_frag.x[i] in the
// CUDA API), which is also the order wmma.load fills registers.
// Mappings are shared read-only by the decoded-instruction caches of
// concurrent simulators, so the type is frozen: only the per-arch fill
// constructors may write its fields.
//
//simlint:frozen
type Mapping struct {
	Arch   Arch
	Shape  Shape
	Op     Operand
	Layout tensor.Layout
	Elem   Precision
	// Lanes[lane] lists the coordinates held by that lane, in slot order.
	Lanes [WarpSize][]Coord
}

// Map returns the fragment-to-thread mapping for the given operand. The C
// mapping is layout independent (the layout argument is ignored for C on
// Volta, matching the paper's observation); elem selects the precision
// variant where the architecture distinguishes them (Volta C in F16 vs F32
// mode).
func Map(arch Arch, shape Shape, op Operand, layout tensor.Layout, elem Precision) (*Mapping, error) {
	switch arch {
	case Volta:
		return voltaMap(shape, op, layout, elem)
	case Turing:
		return turingMap(shape, op, layout, elem)
	}
	return nil, fmt.Errorf("wmma: unknown arch %v", arch)
}

// MustMap is Map but panics on error; for use with known-valid parameters.
func MustMap(arch Arch, shape Shape, op Operand, layout tensor.Layout, elem Precision) *Mapping {
	m, err := Map(arch, shape, op, layout, elem)
	if err != nil {
		panic(err)
	}
	return m
}

// FragmentLen returns the number of elements each lane holds.
func (m *Mapping) FragmentLen() int { return len(m.Lanes[0]) }

// LoadCounts returns how many lanes hold each tile element. The paper's
// key observations are encoded here: every A/B element is held by exactly
// two lanes on Volta and exactly one lane on Turing; C elements are always
// held by exactly one lane.
func (m *Mapping) LoadCounts() map[Coord]int {
	counts := make(map[Coord]int)
	for lane := range m.Lanes {
		for _, c := range m.Lanes[lane] {
			counts[c]++
		}
	}
	return counts
}

// LanesHolding returns the sorted list of lanes whose fragment contains the
// element at (row, col).
func (m *Mapping) LanesHolding(row, col int) []int {
	var out []int
	for lane := range m.Lanes {
		for _, c := range m.Lanes[lane] {
			if c.Row == row && c.Col == col {
				out = append(out, lane)
				break
			}
		}
	}
	return out
}

// ThreadgroupRegion returns the bounding box [rowLo,rowHi]×[colLo,colHi] of
// the elements held by threadgroup tg.
func (m *Mapping) ThreadgroupRegion(tg int) (rowLo, rowHi, colLo, colHi int) {
	first := true
	for lane := tg * ThreadgroupSize; lane < (tg+1)*ThreadgroupSize; lane++ {
		for _, c := range m.Lanes[lane] {
			if first {
				rowLo, rowHi, colLo, colHi = c.Row, c.Row, c.Col, c.Col
				first = false
				continue
			}
			if c.Row < rowLo {
				rowLo = c.Row
			}
			if c.Row > rowHi {
				rowHi = c.Row
			}
			if c.Col < colLo {
				colLo = c.Col
			}
			if c.Col > colHi {
				colHi = c.Col
			}
		}
	}
	return
}

// memOffset returns the element offset of c in a tile stored with the
// mapping's layout and the given leading dimension.
func (m *Mapping) memOffset(c Coord, ld int) int {
	if m.Layout == tensor.RowMajor {
		return c.Row*ld + c.Col
	}
	return c.Col*ld + c.Row
}

// LaneRuns returns, for the given lane, the maximal runs of slots whose
// memory addresses are consecutive under the mapping's layout with leading
// dimension ld. Each run is reported as its length in elements. This is
// what determines how wmma.load decomposes into SASS loads: a run of 8
// 16-bit elements is one LD.E.128, a run of 4 is one LD.E.64, and single
// 32-bit elements become LD.E.SYS (Section III-C).
func (m *Mapping) LaneRuns(lane, ld int) []int {
	coords := m.Lanes[lane]
	if len(coords) == 0 {
		return nil
	}
	var runs []int
	run := 1
	for i := 1; i < len(coords); i++ {
		if m.memOffset(coords[i], ld) == m.memOffset(coords[i-1], ld)+1 {
			run++
			continue
		}
		runs = append(runs, run)
		run = 1
	}
	return append(runs, run)
}

// LoadWidthsBits returns the sorted distinct SASS load widths (in bits) a
// lane issues for its fragment, assuming maximal-width vectorized loads of
// at most 128 bits.
func (m *Mapping) LoadWidthsBits(ld int) []int {
	seen := make(map[int]bool)
	for _, run := range m.LaneRuns(0, ld) {
		bits := run * m.Elem.Bits()
		for bits > 128 {
			seen[128] = true
			bits -= 128
		}
		seen[bits] = true
	}
	var out []int
	//simlint:ordered set members are sorted below before returning
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// LoadInstructionCount returns how many SASS load instructions one lane
// issues for its fragment (runs split into ≤128-bit pieces).
func (m *Mapping) LoadInstructionCount(ld int) int {
	n := 0
	for _, run := range m.LaneRuns(0, ld) {
		bits := run * m.Elem.Bits()
		n += (bits + 127) / 128
	}
	return n
}

// Gather copies the fragment values for every lane out of the tile m
// describes. The returned slice is indexed [lane][slot].
func (m *Mapping) Gather(tile *tensor.Matrix) [][]float64 {
	out := make([][]float64, WarpSize)
	for lane := range m.Lanes {
		frag := make([]float64, len(m.Lanes[lane]))
		for slot, c := range m.Lanes[lane] {
			frag[slot] = tile.At(c.Row, c.Col)
		}
		out[lane] = frag
	}
	return out
}

// Scatter writes per-lane fragment values back into tile. Lanes that hold
// duplicate copies of an element (Volta A/B) must agree; Scatter writes in
// lane order so the highest lane wins, matching a register writeback where
// all copies carry the same value.
func (m *Mapping) Scatter(frags [][]float64, tile *tensor.Matrix) {
	for lane := range m.Lanes {
		for slot, c := range m.Lanes[lane] {
			tile.Set(c.Row, c.Col, frags[lane][slot])
		}
	}
}

// validateCoverage panics if the mapping does not cover every element of
// the operand tile; used by the constructors as an internal consistency
// check.
func (m *Mapping) validateCoverage() *Mapping {
	rows, cols := m.Shape.Dims(m.Op)
	counts := m.LoadCounts()
	if len(counts) != rows*cols {
		panic(fmt.Sprintf("wmma: %v %v mapping covers %d of %d elements",
			m.Arch, m.Op, len(counts), rows*cols))
	}
	for c := range counts {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("wmma: %v %v mapping has out-of-range coord %v", m.Arch, m.Op, c))
		}
	}
	return m
}
