package kernels

import (
	"fmt"

	"repro/internal/ptx"
)

// SIMT GEMM baselines: the paper's Figure 17 compares tensor-core GEMMs
// against cuBLAS running on the ordinary FP32/FP16 datapaths
// (CUBLAS_WO_TC_FP32/FP16). These kernels are register-tiled,
// shared-memory staged SIMT GEMMs in that spirit: each thread accumulates
// a 4×4 register tile (4×8 in packed-half form), keeping the FMA
// fraction high enough to approach the SIMT datapath's peak.

// SGEMMSimt builds the FP32 SIMT GEMM: CTAs of 256 threads compute 64×64
// blocks of D = A×B + C, staging 64×16 A and 16×64 B panels in shared
// memory; each thread owns a 4×4 accumulator tile. All matrices are
// row-major FP32.
func SGEMMSimt(m, n, k int) (*Launch, error) {
	if err := checkDims(m, n, k, 64); err != nil {
		return nil, err
	}
	b := ptx.NewBuilder(fmt.Sprintf("sgemm_simt_%d_%d_%d", m, n, k))
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)

	smemA := b.Shared(64 * 16 * 4)
	smemB := b.Shared(16 * 64 * 4)

	rowBase, colBase := b.Reg(), b.Reg()
	b.Mul(ptx.U32, rowBase, ptx.SR(ptx.SRegCtaIDY), ptx.Imm(64))
	b.Mul(ptx.U32, colBase, ptx.SR(ptx.SRegCtaIDX), ptx.Imm(64))

	tid, tx, ty := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.And(ptx.U32, tx, ptx.R(tid), ptx.Imm(15))
	b.Shr(ptx.U32, ty, ptx.R(tid), ptx.Imm(4))

	// Staging indices: thread t copies 4 consecutive floats of each panel.
	elem := b.Reg()
	b.Mul(ptx.U32, elem, ptx.R(tid), ptx.Imm(4))
	aRow, aCol, bRow, bCol := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Shr(ptx.U32, aRow, ptx.R(elem), ptx.Imm(4))
	b.And(ptx.U32, aCol, ptx.R(elem), ptx.Imm(15))
	b.Shr(ptx.U32, bRow, ptx.R(elem), ptx.Imm(6))
	b.And(ptx.U32, bCol, ptx.R(elem), ptx.Imm(63))

	tmp := b.Reg()
	aCopy := b.Reg()
	b.Add(ptx.U32, tmp, ptx.R(rowBase), ptx.R(aRow))
	b.Mul(ptx.U32, tmp, ptx.R(tmp), ptx.Imm(uint64(k)))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(aCol))
	b.MulWide(aCopy, ptx.R(tmp), ptx.Imm(4))
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.R(pa))

	bCopy := b.Reg()
	b.Mul(ptx.U32, tmp, ptx.R(bRow), ptx.Imm(uint64(n)))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(colBase))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(bCol))
	b.MulWide(bCopy, ptx.R(tmp), ptx.Imm(4))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.R(pb))

	aDst, bDst, tmp64 := b.Reg(), b.Reg(), b.Reg()
	b.MulWide(tmp64, ptx.R(elem), ptx.Imm(4))
	b.Add(ptx.U64, aDst, ptx.R(tmp64), ptx.Imm(smemA))
	b.Add(ptx.U64, bDst, ptx.R(tmp64), ptx.Imm(smemB))

	// Accumulators.
	acc := b.Regs(16)
	for _, r := range acc {
		b.Mov(ptx.F32, r, ptx.Imm(0))
	}

	// Per-thread fragment base addresses in shared memory, re-derived at
	// the top of each K step (they advance by 4 bytes per unrolled kk for
	// A, 256 bytes for B).
	aFragBase, bFragBase := b.Reg(), b.Reg()
	b.MulWide(aFragBase, ptx.R(ty), ptx.Imm(4*16*4)) // ty*4 rows × 16 floats
	b.Add(ptx.U64, aFragBase, ptx.R(aFragBase), ptx.Imm(smemA))
	b.MulWide(bFragBase, ptx.R(tx), ptx.Imm(4*4)) // tx*4 floats
	b.Add(ptx.U64, bFragBase, ptx.R(bFragBase), ptx.Imm(smemB))

	aAddr, bAddr := b.Reg(), b.Reg()
	aReg, bReg := b.Regs(4), b.Regs(4)
	cp := b.Regs(4)

	i, pr := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("ktop")
	b.Ld(ptx.Global, 128, cp, ptx.R(aCopy))
	b.St(ptx.Shared, 128, ptx.R(aDst), []ptx.Operand{ptx.R(cp[0]), ptx.R(cp[1]), ptx.R(cp[2]), ptx.R(cp[3])})
	b.Ld(ptx.Global, 128, cp, ptx.R(bCopy))
	b.St(ptx.Shared, 128, ptx.R(bDst), []ptx.Operand{ptx.R(cp[0]), ptx.R(cp[1]), ptx.R(cp[2]), ptx.R(cp[3])})
	b.Bar()
	b.Mov(ptx.U64, aAddr, ptx.R(aFragBase))
	b.Mov(ptx.U64, bAddr, ptx.R(bFragBase))
	for kk := 0; kk < 16; kk++ {
		// A column fragment: 4 floats spaced one row (16 floats) apart.
		for r := 0; r < 4; r++ {
			off := uint64(kk*4 + r*16*4)
			b.Add(ptx.U64, tmp64, ptx.R(aAddr), ptx.Imm(off))
			b.Ld(ptx.Shared, 32, []ptx.Reg{aReg[r]}, ptx.R(tmp64))
		}
		// B row fragment: 4 consecutive floats.
		b.Add(ptx.U64, tmp64, ptx.R(bAddr), ptx.Imm(uint64(kk*64*4)))
		b.Ld(ptx.Shared, 128, bReg, ptx.R(tmp64))
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				b.Mad(ptx.F32, acc[r*4+c], ptx.R(aReg[r]), ptx.R(bReg[c]), ptx.R(acc[r*4+c]))
			}
		}
	}
	b.Bar()
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.Imm(16*4))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.Imm(uint64(16*n*4)))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(k/16)))
	b.BraIf(pr, false, "ktop")

	// Epilogue: D = acc + C, one 128-bit row segment at a time.
	dRow, dOff, cAddr, dAddr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	for r := 0; r < 4; r++ {
		b.Mad(ptx.U32, dRow, ptx.R(ty), ptx.Imm(4), ptx.R(rowBase))
		b.Add(ptx.U32, dRow, ptx.R(dRow), ptx.Imm(uint64(r)))
		b.Mul(ptx.U32, dOff, ptx.R(dRow), ptx.Imm(uint64(n)))
		b.Add(ptx.U32, dOff, ptx.R(dOff), ptx.R(colBase))
		b.Mad(ptx.U32, dOff, ptx.R(tx), ptx.Imm(4), ptx.R(dOff))
		b.MulWide(cAddr, ptx.R(dOff), ptx.Imm(4))
		b.Add(ptx.U64, dAddr, ptx.R(cAddr), ptx.R(pd))
		b.Add(ptx.U64, cAddr, ptx.R(cAddr), ptx.R(pc))
		b.Ld(ptx.Global, 128, cp, ptx.R(cAddr))
		for c := 0; c < 4; c++ {
			b.Add(ptx.F32, acc[r*4+c], ptx.R(acc[r*4+c]), ptx.R(cp[c]))
		}
		b.St(ptx.Global, 128, ptx.R(dAddr), []ptx.Operand{
			ptx.R(acc[r*4]), ptx.R(acc[r*4+1]), ptx.R(acc[r*4+2]), ptx.R(acc[r*4+3])})
	}
	b.Exit()

	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D2(n/64, m/64),
		Block:    ptx.D1(256),
		ArgNames: []string{"a", "b", "c", "d"},
		FLOPs:    gemmFLOPs(m, n, k),
	}, nil
}

// HGEMMSimt builds the packed-half SIMT GEMM: the same structure as
// SGEMMSimt but every math instruction operates on f16x2 pairs, doubling
// MACs per issue — CTAs of 256 threads compute 64×128 blocks, each thread
// a 4-row × 8-half-column tile. All matrices are row-major FP16.
func HGEMMSimt(m, n, k int) (*Launch, error) {
	if m%64 != 0 || n%128 != 0 || k%16 != 0 {
		return nil, fmt.Errorf("kernels: HGEMM needs M%%64, N%%128, K%%16, got %dx%dx%d", m, n, k)
	}
	b := ptx.NewBuilder(fmt.Sprintf("hgemm_simt_%d_%d_%d", m, n, k))
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)

	// A is staged pre-duplicated: each half is stored as an f16x2 word
	// with both lanes equal, so the inner loop's multiplicand loads need
	// no unpack/duplicate instructions.
	smemA := b.Shared(64 * 16 * 4)
	smemB := b.Shared(16 * 128 * 2)

	rowBase, colBase := b.Reg(), b.Reg()
	b.Mul(ptx.U32, rowBase, ptx.SR(ptx.SRegCtaIDY), ptx.Imm(64))
	b.Mul(ptx.U32, colBase, ptx.SR(ptx.SRegCtaIDX), ptx.Imm(128))

	tid, tx, ty := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.And(ptx.U32, tx, ptx.R(tid), ptx.Imm(15))
	b.Shr(ptx.U32, ty, ptx.R(tid), ptx.Imm(4))

	// A staging: 4 halves per thread (64-bit copies).
	elemA := b.Reg()
	b.Mul(ptx.U32, elemA, ptx.R(tid), ptx.Imm(4))
	aRow, aCol := b.Reg(), b.Reg()
	b.Shr(ptx.U32, aRow, ptx.R(elemA), ptx.Imm(4))
	b.And(ptx.U32, aCol, ptx.R(elemA), ptx.Imm(15))
	// B staging: 8 halves per thread (128-bit copies).
	elemB := b.Reg()
	b.Mul(ptx.U32, elemB, ptx.R(tid), ptx.Imm(8))
	bRow, bCol := b.Reg(), b.Reg()
	b.Shr(ptx.U32, bRow, ptx.R(elemB), ptx.Imm(7))
	b.And(ptx.U32, bCol, ptx.R(elemB), ptx.Imm(127))

	tmp, tmp64 := b.Reg(), b.Reg()
	aCopy := b.Reg()
	b.Add(ptx.U32, tmp, ptx.R(rowBase), ptx.R(aRow))
	b.Mul(ptx.U32, tmp, ptx.R(tmp), ptx.Imm(uint64(k)))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(aCol))
	b.MulWide(aCopy, ptx.R(tmp), ptx.Imm(2))
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.R(pa))

	bCopy := b.Reg()
	b.Mul(ptx.U32, tmp, ptx.R(bRow), ptx.Imm(uint64(n)))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(colBase))
	b.Add(ptx.U32, tmp, ptx.R(tmp), ptx.R(bCol))
	b.MulWide(bCopy, ptx.R(tmp), ptx.Imm(2))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.R(pb))

	aDst, bDst := b.Reg(), b.Reg()
	b.MulWide(tmp64, ptx.R(elemA), ptx.Imm(4)) // duplicated: 4 bytes per half
	b.Add(ptx.U64, aDst, ptx.R(tmp64), ptx.Imm(smemA))
	b.MulWide(tmp64, ptx.R(elemB), ptx.Imm(2))
	b.Add(ptx.U64, bDst, ptx.R(tmp64), ptx.Imm(smemB))

	// f16x2 accumulators: 4 rows × 4 half2 columns.
	acc := b.Regs(16)
	for _, r := range acc {
		b.Mov(ptx.U32, r, ptx.Imm(0))
	}

	aFragBase, bFragBase := b.Reg(), b.Reg()
	b.MulWide(aFragBase, ptx.R(ty), ptx.Imm(4*16*4))
	b.Add(ptx.U64, aFragBase, ptx.R(aFragBase), ptx.Imm(smemA))
	b.MulWide(bFragBase, ptx.R(tx), ptx.Imm(8*2))
	b.Add(ptx.U64, bFragBase, ptx.R(bFragBase), ptx.Imm(smemB))

	a2 := b.Regs(4)
	bReg := b.Regs(4)
	cp2 := b.Regs(2)
	cp4 := b.Regs(4)
	dup := b.Regs(4)

	i, pr := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("ktop")
	// Stage A with each half duplicated into both f16x2 lanes.
	b.Ld(ptx.Global, 64, cp2, ptx.R(aCopy))
	for h := 0; h < 4; h++ {
		src := cp2[h/2]
		lo, t := dup[h], tmp
		if h%2 == 0 {
			b.And(ptx.U32, lo, ptx.R(src), ptx.Imm(0xffff))
		} else {
			b.Shr(ptx.U32, lo, ptx.R(src), ptx.Imm(16))
		}
		b.Shl(ptx.U32, t, ptx.R(lo), ptx.Imm(16))
		b.Or(ptx.U32, lo, ptx.R(lo), ptx.R(t))
	}
	b.St(ptx.Shared, 128, ptx.R(aDst), []ptx.Operand{ptx.R(dup[0]), ptx.R(dup[1]), ptx.R(dup[2]), ptx.R(dup[3])})
	b.Ld(ptx.Global, 128, cp4, ptx.R(bCopy))
	b.St(ptx.Shared, 128, ptx.R(bDst), []ptx.Operand{ptx.R(cp4[0]), ptx.R(cp4[1]), ptx.R(cp4[2]), ptx.R(cp4[3])})
	b.Bar()
	for kk := 0; kk < 16; kk++ {
		for r := 0; r < 4; r++ {
			b.Add(ptx.U64, tmp64, ptx.R(aFragBase), ptx.Imm(uint64((kk+r*16)*4)))
			b.Ld(ptx.Shared, 32, []ptx.Reg{a2[r]}, ptx.R(tmp64))
		}
		// 8 consecutive halves = 4 f16x2 registers.
		b.Add(ptx.U64, tmp64, ptx.R(bFragBase), ptx.Imm(uint64(kk*128*2)))
		b.Ld(ptx.Shared, 128, bReg, ptx.R(tmp64))
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				b.Mad(ptx.F16X2, acc[r*4+c], ptx.R(a2[r]), ptx.R(bReg[c]), ptx.R(acc[r*4+c]))
			}
		}
	}
	b.Bar()
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.Imm(16*2))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.Imm(uint64(16*n*2)))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(k/16)))
	b.BraIf(pr, false, "ktop")

	// Epilogue: 8 halves per row = one 128-bit access.
	dRow, dOff, cAddr, dAddr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	for r := 0; r < 4; r++ {
		b.Mad(ptx.U32, dRow, ptx.R(ty), ptx.Imm(4), ptx.R(rowBase))
		b.Add(ptx.U32, dRow, ptx.R(dRow), ptx.Imm(uint64(r)))
		b.Mul(ptx.U32, dOff, ptx.R(dRow), ptx.Imm(uint64(n)))
		b.Add(ptx.U32, dOff, ptx.R(dOff), ptx.R(colBase))
		b.Mad(ptx.U32, dOff, ptx.R(tx), ptx.Imm(8), ptx.R(dOff))
		b.MulWide(cAddr, ptx.R(dOff), ptx.Imm(2))
		b.Add(ptx.U64, dAddr, ptx.R(cAddr), ptx.R(pd))
		b.Add(ptx.U64, cAddr, ptx.R(cAddr), ptx.R(pc))
		b.Ld(ptx.Global, 128, cp4, ptx.R(cAddr))
		for c := 0; c < 4; c++ {
			b.Add(ptx.F16X2, acc[r*4+c], ptx.R(acc[r*4+c]), ptx.R(cp4[c]))
		}
		b.St(ptx.Global, 128, ptx.R(dAddr), []ptx.Operand{
			ptx.R(acc[r*4]), ptx.R(acc[r*4+1]), ptx.R(acc[r*4+2]), ptx.R(acc[r*4+3])})
	}
	b.Exit()

	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D2(n/128, m/64),
		Block:    ptx.D1(256),
		ArgNames: []string{"a", "b", "c", "d"},
		FLOPs:    gemmFLOPs(m, n, k),
	}, nil
}
