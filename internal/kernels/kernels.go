// Package kernels generates the PTX-subset kernels the paper's evaluation
// runs: WMMA-based GEMMs with and without shared-memory staging (Figures
// 14a, 15, 16), SIMT SGEMM/HGEMM baselines that use the FP32/FP16 cores
// instead of the tensor cores (the cuBLAS-without-TC series of Figure 17),
// a maximum-throughput HMMA stress kernel (the "MAX PERF KERNEL"), and the
// microbenchmark kernels of Figures 4 and 6.
//
// Kernel generators bake the problem size into the instruction stream —
// the moral equivalent of CUTLASS template instantiation — so the kernels
// contain no runtime division for tile indexing.
package kernels

import (
	"fmt"

	"repro/internal/ptx"
	"repro/internal/tcore"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Launch bundles a generated kernel with its launch geometry. Args are
// device base addresses in the order named by ArgNames.
type Launch struct {
	Kernel   *ptx.Kernel
	Grid     ptx.Dim3
	Block    ptx.Dim3
	ArgNames []string
	// FLOPs is the floating-point work of one launch (2·M·N·K for GEMM),
	// used to convert simulated cycles into TFLOPS.
	FLOPs float64
}

// GemmPrecision selects the datapath of a generated GEMM.
type GemmPrecision int

const (
	// TensorMixed uses tensor cores with FP32 accumulation.
	TensorMixed GemmPrecision = iota
	// TensorFP16 uses tensor cores with FP16 accumulation.
	TensorFP16
	// SimtFP32 uses the FP32 SIMT cores (SGEMM).
	SimtFP32
	// SimtFP16 uses packed-half SIMT math (HGEMM).
	SimtFP16
)

func (p GemmPrecision) String() string {
	switch p {
	case TensorMixed:
		return "tc-fp32acc"
	case TensorFP16:
		return "tc-fp16acc"
	case SimtFP32:
		return "simt-fp32"
	default:
		return "simt-fp16"
	}
}

// voltaGemmConfig returns the wmma configuration a tensor-core GEMM uses.
func voltaGemmConfig(p GemmPrecision) wmma.Config {
	ct := wmma.F32
	if p == TensorFP16 {
		ct = wmma.F16
	}
	return wmma.Config{
		Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.RowMajor,
		AType: wmma.F16, CType: ct, DType: ct,
	}
}

func checkDims(m, n, k, tile int) error {
	if m%tile != 0 || n%tile != 0 || k%16 != 0 {
		return fmt.Errorf("kernels: %dx%dx%d not divisible by tile %d (K by 16)", m, n, k, tile)
	}
	return nil
}

// gemmFLOPs returns 2·M·N·K.
func gemmFLOPs(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// cBytes returns the element size of the C/D matrices for a precision.
func cBytes(p GemmPrecision) uint64 {
	if p == TensorMixed || p == SimtFP32 {
		return 4
	}
	return 2
}

// WMMAGemmNaive builds the no-shared-memory WMMA GEMM: one warp per CTA
// computes one 16×16 tile of D = A×B + C, loading A and B tiles straight
// from global memory each K step. A, B, C and D are row-major; A is M×K,
// B is K×N. This is the "w/o shared" series of Figure 16.
func WMMAGemmNaive(p GemmPrecision, m, n, k int) (*Launch, error) {
	if p != TensorMixed && p != TensorFP16 {
		return nil, fmt.Errorf("kernels: WMMAGemmNaive needs a tensor precision, got %v", p)
	}
	if err := checkDims(m, n, k, 16); err != nil {
		return nil, err
	}
	cfg := voltaGemmConfig(p)
	b := ptx.NewBuilder(fmt.Sprintf("wmma_gemm_naive_%s_%d_%d_%d", tcore.ModeFor(cfg), m, n, k))
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)

	rowBase, colBase := b.Reg(), b.Reg()
	b.Mul(ptx.U32, rowBase, ptx.SR(ptx.SRegCtaIDY), ptx.Imm(16))
	b.Mul(ptx.U32, colBase, ptx.SR(ptx.SRegCtaIDX), ptx.Imm(16))

	// C/D tile offset: rowBase*N + colBase elements, row-major.
	cOff, cAddr := b.Reg(), b.Reg()
	b.Mad(ptx.U32, cOff, ptx.R(rowBase), ptx.Imm(uint64(n)), ptx.R(colBase))
	b.MulWide(cAddr, ptx.R(cOff), ptx.Imm(cBytes(p)))
	b.Add(ptx.U64, cAddr, ptx.R(cAddr), ptx.R(pc))
	fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(cAddr), ptx.Imm(uint64(n)))

	// A walks right along a row block; B walks down a column block.
	aCur, bCur := b.Reg(), b.Reg()
	b.MulWide(aCur, ptx.R(rowBase), ptx.Imm(uint64(k)*2))
	b.Add(ptx.U64, aCur, ptx.R(aCur), ptx.R(pa))
	b.MulWide(bCur, ptx.R(colBase), ptx.Imm(2))
	b.Add(ptx.U64, bCur, ptx.R(bCur), ptx.R(pb))

	i, pr := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("ktop")
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, ptx.R(aCur), ptx.Imm(uint64(k)))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, ptx.R(bCur), ptx.Imm(uint64(n)))
	fc = b.WmmaMMA(cfg, fa, fb, fc)
	b.Add(ptx.U64, aCur, ptx.R(aCur), ptx.Imm(16*2))
	b.Add(ptx.U64, bCur, ptx.R(bCur), ptx.Imm(uint64(16*n*2)))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(k/16)))
	b.BraIf(pr, false, "ktop")

	dAddr := b.Reg()
	b.MulWide(dAddr, ptx.R(cOff), ptx.Imm(cBytes(p)))
	b.Add(ptx.U64, dAddr, ptx.R(dAddr), ptx.R(pd))
	b.WmmaStore(cfg.Arch, cfg.Shape, tensor.RowMajor, cfg.DType, ptx.R(dAddr), fc, ptx.Imm(uint64(n)))
	b.Exit()

	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D2(n/16, m/16),
		Block:    ptx.D1(32),
		ArgNames: []string{"a", "b", "c", "d"},
		FLOPs:    gemmFLOPs(m, n, k),
	}, nil
}

// WMMAGemmShared builds the shared-memory WMMA GEMM of the paper's
// Figures 14a/15/16: each CTA of four warps computes a 32×32 block of D,
// staging 32×16 A and 16×32 B panels in shared memory every K step so the
// wmma.loads hit shared memory instead of global.
func WMMAGemmShared(p GemmPrecision, m, n, k int) (*Launch, error) {
	if p != TensorMixed && p != TensorFP16 {
		return nil, fmt.Errorf("kernels: WMMAGemmShared needs a tensor precision, got %v", p)
	}
	if err := checkDims(m, n, k, 32); err != nil {
		return nil, err
	}
	cfg := voltaGemmConfig(p)
	b := ptx.NewBuilder(fmt.Sprintf("wmma_gemm_shared_%s_%d_%d_%d", tcore.ModeFor(cfg), m, n, k))
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)

	smemA := b.Shared(32 * 16 * 2)
	smemB := b.Shared(16 * 32 * 2)

	rowBase, colBase := b.Reg(), b.Reg()
	b.Mul(ptx.U32, rowBase, ptx.SR(ptx.SRegCtaIDY), ptx.Imm(32))
	b.Mul(ptx.U32, colBase, ptx.SR(ptx.SRegCtaIDX), ptx.Imm(32))

	// Warp tile position: warps 0..3 arranged 2×2.
	wid, wRow, wCol := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, wid, ptx.SR(ptx.SRegWarpID))
	b.Shr(ptx.U32, wRow, ptx.R(wid), ptx.Imm(1))
	b.And(ptx.U32, wCol, ptx.R(wid), ptx.Imm(1))

	// Accumulator: C tile at (rowBase + 16·wRow, colBase + 16·wCol).
	cRow, cCol, cOff, cAddr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mad(ptx.U32, cRow, ptx.R(wRow), ptx.Imm(16), ptx.R(rowBase))
	b.Mad(ptx.U32, cCol, ptx.R(wCol), ptx.Imm(16), ptx.R(colBase))
	b.Mad(ptx.U32, cOff, ptx.R(cRow), ptx.Imm(uint64(n)), ptx.R(cCol))
	b.MulWide(cAddr, ptx.R(cOff), ptx.Imm(cBytes(p)))
	b.Add(ptx.U64, cAddr, ptx.R(cAddr), ptx.R(pc))
	fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(cAddr), ptx.Imm(uint64(n)))

	// Cooperative copy indexing: 128 threads move 4 halves each.
	tid, elem := b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.Mul(ptx.U32, elem, ptx.R(tid), ptx.Imm(4))
	aRow, aCol := b.Reg(), b.Reg()
	b.Shr(ptx.U32, aRow, ptx.R(elem), ptx.Imm(4))
	b.And(ptx.U32, aCol, ptx.R(elem), ptx.Imm(15))
	bRow, bCol := b.Reg(), b.Reg()
	b.Shr(ptx.U32, bRow, ptx.R(elem), ptx.Imm(5))
	b.And(ptx.U32, bCol, ptx.R(elem), ptx.Imm(31))

	// Global copy cursors (advance per K step).
	aCopy, tmp32, tmp64 := b.Reg(), b.Reg(), b.Reg()
	b.Add(ptx.U32, tmp32, ptx.R(rowBase), ptx.R(aRow))
	b.Mul(ptx.U32, tmp32, ptx.R(tmp32), ptx.Imm(uint64(k)))
	b.Add(ptx.U32, tmp32, ptx.R(tmp32), ptx.R(aCol))
	b.MulWide(aCopy, ptx.R(tmp32), ptx.Imm(2))
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.R(pa))

	bCopy := b.Reg()
	b.Mul(ptx.U32, tmp32, ptx.R(bRow), ptx.Imm(uint64(n)))
	b.Add(ptx.U32, tmp32, ptx.R(tmp32), ptx.R(colBase))
	b.Add(ptx.U32, tmp32, ptx.R(tmp32), ptx.R(bCol))
	b.MulWide(bCopy, ptx.R(tmp32), ptx.Imm(2))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.R(pb))

	// Shared destinations (fixed).
	aDst, bDst := b.Reg(), b.Reg()
	b.MulWide(tmp64, ptx.R(elem), ptx.Imm(2))
	b.Add(ptx.U64, aDst, ptx.R(tmp64), ptx.Imm(smemA))
	b.Add(ptx.U64, bDst, ptx.R(tmp64), ptx.Imm(smemB))

	// Warp compute sources in shared.
	saAddr, sbAddr := b.Reg(), b.Reg()
	b.MulWide(saAddr, ptx.R(wRow), ptx.Imm(16*16*2))
	b.Add(ptx.U64, saAddr, ptx.R(saAddr), ptx.Imm(smemA))
	b.MulWide(sbAddr, ptx.R(wCol), ptx.Imm(16*2))
	b.Add(ptx.U64, sbAddr, ptx.R(sbAddr), ptx.Imm(smemB))

	i, pr := b.Reg(), b.Reg()
	cp := b.Regs(2)
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("ktop")
	// Stage A and B panels.
	b.Ld(ptx.Global, 64, cp, ptx.R(aCopy))
	b.St(ptx.Shared, 64, ptx.R(aDst), []ptx.Operand{ptx.R(cp[0]), ptx.R(cp[1])})
	b.Ld(ptx.Global, 64, cp, ptx.R(bCopy))
	b.St(ptx.Shared, 64, ptx.R(bDst), []ptx.Operand{ptx.R(cp[0]), ptx.R(cp[1])})
	b.Bar()
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, tensor.RowMajor, cfg.AType, ptx.R(saAddr), ptx.Imm(16))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, tensor.RowMajor, cfg.AType, ptx.R(sbAddr), ptx.Imm(32))
	fc = b.WmmaMMA(cfg, fa, fb, fc)
	b.Bar()
	b.Add(ptx.U64, aCopy, ptx.R(aCopy), ptx.Imm(16*2))
	b.Add(ptx.U64, bCopy, ptx.R(bCopy), ptx.Imm(uint64(16*n*2)))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(k/16)))
	b.BraIf(pr, false, "ktop")

	dAddr := b.Reg()
	b.MulWide(dAddr, ptx.R(cOff), ptx.Imm(cBytes(p)))
	b.Add(ptx.U64, dAddr, ptx.R(dAddr), ptx.R(pd))
	b.WmmaStore(cfg.Arch, cfg.Shape, tensor.RowMajor, cfg.DType, ptx.R(dAddr), fc, ptx.Imm(uint64(n)))
	b.Exit()

	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D2(n/32, m/32),
		Block:    ptx.D1(128),
		ArgNames: []string{"a", "b", "c", "d"},
		FLOPs:    gemmFLOPs(m, n, k),
	}, nil
}
