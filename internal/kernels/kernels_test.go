package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// gemmElems returns the element precisions (a/b, c/d) of a GEMM flavour.
func gemmElems(p GemmPrecision) (ab, cd wmma.Precision) {
	switch p {
	case TensorMixed:
		return wmma.F16, wmma.F32
	case TensorFP16:
		return wmma.F16, wmma.F16
	case SimtFP32:
		return wmma.F32, wmma.F32
	default:
		return wmma.F16, wmma.F16
	}
}

// runGemm uploads random matrices, runs the launch (functionally or on
// the timing simulator), and returns (got, want).
func runGemm(t *testing.T, l *Launch, p GemmPrecision, m, n, k int, timed bool) (*tensor.Matrix, *tensor.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*31 + n*7 + k)))
	a := tensor.New(m, k, tensor.RowMajor)
	bm := tensor.New(k, n, tensor.RowMajor)
	c := tensor.New(m, n, tensor.RowMajor)
	a.FillRandomFP16(rng)
	bm.FillRandomFP16(rng)
	c.FillRandomFP16(rng)

	cfg := gpu.TitanV()
	cfg.NumSMs = 4
	dev := cuda.MustNewDevice(cfg)
	abP, cdP := gemmElems(p)
	da := dev.UploadMatrix(a, abP)
	db := dev.UploadMatrix(bm, abP)
	dc := dev.UploadMatrix(c, cdP)
	dd := dev.MallocMatrix(m, n, cdP)

	if timed {
		if _, err := dev.Launch(l.Kernel, l.Grid, l.Block, da, db, dc, dd); err != nil {
			t.Fatal(err)
		}
	} else if err := dev.RunFunctional(l.Kernel, l.Grid, l.Block, da, db, dc, dd); err != nil {
		t.Fatal(err)
	}
	got := dev.ReadMatrix(dd, m, n, tensor.RowMajor, cdP)
	want := tensor.Gemm(a, bm, c, tensor.RowMajor)
	return got, want
}

func gemmTol(p GemmPrecision, k int) float64 {
	switch p {
	case TensorMixed, SimtFP32:
		return 1e-3
	default: // fp16 accumulation rounds per step
		return float64(k) * 0.03
	}
}

func TestWMMAGemmNaiveCorrect(t *testing.T) {
	for _, p := range []GemmPrecision{TensorMixed, TensorFP16} {
		for _, sz := range [][3]int{{32, 32, 32}, {64, 48, 32}} {
			m, n, k := sz[0], sz[1], sz[2]
			l, err := WMMAGemmNaive(p, m, n, k)
			if err != nil {
				t.Fatal(err)
			}
			got, want := runGemm(t, l, p, m, n, k, false)
			if d := tensor.MaxAbsDiff(got, want); d > gemmTol(p, k) {
				t.Errorf("%v %dx%dx%d: max diff %g", p, m, n, k, d)
			}
		}
	}
}

func TestWMMAGemmSharedCorrect(t *testing.T) {
	for _, p := range []GemmPrecision{TensorMixed, TensorFP16} {
		m, n, k := 64, 64, 48
		l, err := WMMAGemmShared(p, m, n, k)
		if err != nil {
			t.Fatal(err)
		}
		got, want := runGemm(t, l, p, m, n, k, false)
		if d := tensor.MaxAbsDiff(got, want); d > gemmTol(p, k) {
			t.Errorf("%v: max diff %g", p, d)
		}
	}
}

func TestWMMAGemmSharedUnderTiming(t *testing.T) {
	m, n, k := 64, 64, 32
	l, err := WMMAGemmShared(TensorMixed, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	got, want := runGemm(t, l, TensorMixed, m, n, k, true)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("timed run diverged: %g", d)
	}
}

func TestSGEMMSimtCorrect(t *testing.T) {
	m, n, k := 64, 64, 32
	l, err := SGEMMSimt(m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	got, want := runGemm(t, l, SimtFP32, m, n, k, false)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("sgemm: max diff %g", d)
	}
	if l.FLOPs != 2*64*64*32 {
		t.Errorf("FLOPs = %v", l.FLOPs)
	}
}

func TestHGEMMSimtCorrect(t *testing.T) {
	m, n, k := 64, 128, 32
	l, err := HGEMMSimt(m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	got, want := runGemm(t, l, SimtFP16, m, n, k, false)
	if d := tensor.MaxAbsDiff(got, want); d > gemmTol(SimtFP16, k) {
		t.Errorf("hgemm: max diff %g", d)
	}
}

func TestGemmDimChecks(t *testing.T) {
	if _, err := WMMAGemmNaive(TensorMixed, 17, 16, 16); err == nil {
		t.Error("non-multiple M should fail")
	}
	if _, err := WMMAGemmShared(TensorMixed, 16, 16, 16); err == nil {
		t.Error("shared kernel needs 32-multiples")
	}
	if _, err := WMMAGemmNaive(SimtFP32, 16, 16, 16); err == nil {
		t.Error("naive wmma should reject SIMT precision")
	}
	if _, err := HGEMMSimt(64, 64, 32); err == nil {
		t.Error("hgemm needs N multiple of 128")
	}
}

func TestMMALoopAndMaxPerf(t *testing.T) {
	l, err := MMALoop(TensorMixed, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Block.Count() != 128 {
		t.Errorf("block = %v", l.Block)
	}
	wantFLOPs := float64(4*8*2) * 2 * 4096
	if l.FLOPs != wantFLOPs {
		t.Errorf("FLOPs = %v, want %v", l.FLOPs, wantFLOPs)
	}
	mp, err := MaxPerf(TensorFP16, 10, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Grid.Count() != 10 || mp.FLOPs != 10*wantFLOPs {
		t.Errorf("maxperf grid %v flops %v", mp.Grid, mp.FLOPs)
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 2
	dev := cuda.MustNewDevice(cfg)
	scratch := dev.Mem.Malloc(2048)
	st, err := dev.Launch(mp.Kernel, mp.Grid, mp.Block, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if st.TensorOps != 10*4*8*2 {
		t.Errorf("tensor ops = %d, want %d", st.TensorOps, 10*4*8*2)
	}
}

func TestClockedMMA(t *testing.T) {
	l, err := ClockedMMA(TensorMixed, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	dev := cuda.MustNewDevice(cfg)
	scratch := dev.Mem.Malloc(2048)
	out := dev.Mem.Malloc(64)
	if _, err := dev.Launch(l.Kernel, l.Grid, l.Block, scratch, out); err != nil {
		t.Fatal(err)
	}
	var buf [4]byte
	dev.Mem.Read(out, buf[:])
	delta := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	// Four dependent mma ops: at least 4×54 cycles must elapse.
	if delta < 4*54 {
		t.Errorf("clocked delta = %d, want ≥ %d", delta, 4*54)
	}
}

func TestFragmentDecodeRecoversMapping(t *testing.T) {
	shape := wmma.M16N16K16
	mapping := wmma.MustMap(wmma.Volta, shape, wmma.MatrixA, tensor.RowMajor, wmma.F16)
	l, err := FragmentDecode(wmma.Volta, shape, wmma.MatrixA, tensor.RowMajor, wmma.F16)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(16, 16, tensor.RowMajor)
	in.FillSequential() // distinct values: value decodes the coordinate
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	dev := cuda.MustNewDevice(cfg)
	din := dev.UploadMatrix(in, wmma.F16)
	fragLen := mapping.FragmentLen()
	dout := dev.Mem.Malloc(32 * fragLen * 4)
	if err := dev.RunFunctional(l.Kernel, l.Grid, l.Block, din, dout); err != nil {
		t.Fatal(err)
	}
	out := dev.ReadMatrix(dout, 32, fragLen, tensor.RowMajor, wmma.F32)
	for lane := 0; lane < 32; lane++ {
		for slot := 0; slot < fragLen; slot++ {
			c := mapping.Lanes[lane][slot]
			if got, want := out.At(lane, slot), in.At(c.Row, c.Col); got != want {
				t.Fatalf("lane %d slot %d: decoded %v, mapping says %v at %v", lane, slot, got, want, c)
			}
		}
	}
}

func TestMaxPerfApproachesPeak(t *testing.T) {
	// One SM, 4 warps (one per sub-core), long loop: sustained throughput
	// should approach the paper's ~88 % of peak.
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	l, err := MMALoop(TensorMixed, 4, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	dev := cuda.MustNewDevice(cfg)
	scratch := dev.Mem.Malloc(2048)
	st, err := dev.Launch(l.Kernel, l.Grid, l.Block, scratch)
	if err != nil {
		t.Fatal(err)
	}
	flopPerCycle := l.FLOPs / float64(st.Cycles)
	peak := float64(cfg.SubCores * cfg.TensorCoresPerSubCore * 16 * 8)
	frac := flopPerCycle / peak
	if frac < 0.80 || frac > 0.95 {
		t.Errorf("sustained fraction = %.3f of peak, want ≈ 0.88 (paper: 109.6/125)", frac)
	}
	_ = ptx.D1 // keep ptx imported for geometry helpers used above
}
