package kernels

import (
	"fmt"

	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Microbenchmark and stress kernels.

// MMALoop builds the Figure 12c microbenchmark: every warp loads
// fragments once and then issues `iters` rounds of `chains` independent
// wmma.mma operations. With chains ≥ 2 the kernel is tensor-unit
// throughput bound rather than dependency bound.
//
// Args: one device pointer to a ≥1 KiB scratch region.
func MMALoop(p GemmPrecision, warps, iters, chains int) (*Launch, error) {
	if p != TensorMixed && p != TensorFP16 {
		return nil, fmt.Errorf("kernels: MMALoop needs a tensor precision")
	}
	if chains < 1 {
		return nil, fmt.Errorf("kernels: need at least one mma chain")
	}
	cfg := voltaGemmConfig(p)
	b := ptx.NewBuilder(fmt.Sprintf("mma_loop_%s_w%d_i%d_c%d", p, warps, iters, chains))
	pa := b.Param("a", ptx.U64)
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	accs := make([][]ptx.Reg, chains)
	for c := range accs {
		accs[c] = b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(pa), ptx.Imm(16))
	}
	i, pr := b.Reg(), b.Reg()
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("loop")
	for c := range accs {
		accs[c] = b.WmmaMMA(cfg, fa, fb, accs[c])
	}
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.U32, ptx.CmpLT, pr, ptx.R(i), ptx.Imm(uint64(iters)))
	b.BraIf(pr, false, "loop")
	b.Exit()
	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	mmaFLOPs := 2 * float64(cfg.Shape.M*cfg.Shape.N*cfg.Shape.K)
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D1(1),
		Block:    ptx.D1(32 * warps),
		ArgNames: []string{"scratch"},
		FLOPs:    float64(warps*iters*chains) * mmaFLOPs,
	}, nil
}

// MaxPerf builds the paper's "MAX PERF KERNEL": a grid of CTAs whose
// warps do nothing but issue independent wmma.mma operations, measuring
// the sustainable tensor-core throughput (Section V-C reports 109.6
// TFLOPS in FP16 mode and 108.7 in mixed precision against the 125
// theoretical peak).
func MaxPerf(p GemmPrecision, ctas, warpsPerCTA, iters int) (*Launch, error) {
	l, err := MMALoop(p, warpsPerCTA, iters, 2)
	if err != nil {
		return nil, err
	}
	l.Grid = ptx.D1(ctas)
	l.FLOPs *= float64(ctas)
	return l, nil
}

// ClockedMMA builds the Figure 6 microbenchmark at PTX level: read
// %clock, run n dependent wmma.mma operations, read %clock again, and
// store the delta to out[warpLinearId].
//
// Args: scratch (fragment source), out (u32 per warp).
func ClockedMMA(p GemmPrecision, n int) (*Launch, error) {
	cfg := voltaGemmConfig(p)
	b := ptx.NewBuilder(fmt.Sprintf("clocked_mma_%s_n%d", p, n))
	pa := b.Param("scratch", ptx.U64)
	pout := b.Param("out", ptx.U64)
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, ptx.R(pa), ptx.Imm(16))
	fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, ptx.R(pa), ptx.Imm(16))
	c0, c1 := b.Reg(), b.Reg()
	b.Clock(c0)
	for j := 0; j < n; j++ {
		fc = b.WmmaMMA(cfg, fa, fb, fc)
	}
	b.Clock(c1)
	d, addr := b.Reg(), b.Reg()
	b.Sub(ptx.U32, d, ptx.R(c1), ptx.R(c0))
	b.MulWide(addr, ptx.SR(ptx.SRegWarpID), ptx.Imm(4))
	b.Add(ptx.U64, addr, ptx.R(addr), ptx.R(pout))
	b.St(ptx.Global, 32, ptx.R(addr), []ptx.Operand{ptx.R(d)})
	b.Exit()
	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D1(1),
		Block:    ptx.D1(32),
		ArgNames: []string{"scratch", "out"},
	}, nil
}

// FragmentDecode builds the Figure 4 microbenchmark: each thread loads
// its fragment of the given operand and stores every element, as FP32, to
// out[lane*fragLen + slot]. Running it against a matrix filled with
// distinct values decodes the fragment-to-thread mapping, exactly as the
// paper's CUDA version did.
//
// Args: in (operand matrix), out (f32 array of 32×fragLen).
func FragmentDecode(arch wmma.Arch, shape wmma.Shape, op wmma.Operand,
	layout tensor.Layout, elem wmma.Precision) (*Launch, error) {
	if _, err := wmma.Map(arch, shape, op, layout, elem); err != nil {
		return nil, err
	}
	rows, cols := shape.Dims(op)
	ld := cols
	if layout == tensor.ColMajor {
		ld = rows
	}
	b := ptx.NewBuilder(fmt.Sprintf("frag_decode_%v_%v_%v", arch, shape, op))
	pin := b.Param("in", ptx.U64)
	pout := b.Param("out", ptx.U64)
	frag := b.WmmaLoad(arch, shape, op, layout, elem, ptx.R(pin), ptx.Imm(uint64(ld)))
	base, f32 := b.Reg(), b.Reg()
	b.MulWide(base, ptx.SR(ptx.SRegLaneID), ptx.Imm(uint64(4*len(frag))))
	b.Add(ptx.U64, base, ptx.R(base), ptx.R(pout))
	for slot, r := range frag {
		switch elem {
		case wmma.F16:
			b.Cvt(ptx.F32, ptx.F16, f32, ptx.R(r))
		case wmma.F32:
			b.Mov(ptx.F32, f32, ptx.R(r))
		default:
			b.Cvt(ptx.F32, ptx.S32, f32, ptx.R(r))
		}
		addr := b.Reg()
		b.Add(ptx.U64, addr, ptx.R(base), ptx.Imm(uint64(4*slot)))
		b.St(ptx.Global, 32, ptx.R(addr), []ptx.Operand{ptx.R(f32)})
	}
	b.Exit()
	kern, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Launch{
		Kernel:   kern,
		Grid:     ptx.D1(1),
		Block:    ptx.D1(32),
		ArgNames: []string{"in", "out"},
	}, nil
}
