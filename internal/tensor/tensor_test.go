package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexLayouts(t *testing.T) {
	r := New(3, 5, RowMajor)
	c := New(3, 5, ColMajor)
	if r.Stride != 5 || c.Stride != 3 {
		t.Fatalf("strides: row %d col %d, want 5 and 3", r.Stride, c.Stride)
	}
	if r.Index(1, 2) != 7 {
		t.Errorf("row-major Index(1,2) = %d, want 7", r.Index(1, 2))
	}
	if c.Index(1, 2) != 7 {
		t.Errorf("col-major Index(1,2) = %d, want 7", c.Index(1, 2))
	}
	if c.Index(2, 1) != 5 {
		t.Errorf("col-major Index(2,1) = %d, want 5", c.Index(2, 1))
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	for _, layout := range []Layout{RowMajor, ColMajor} {
		m := New(4, 7, layout)
		m.FillFunc(func(i, j int) float64 { return float64(100*i + j) })
		for i := 0; i < 4; i++ {
			for j := 0; j < 7; j++ {
				if m.At(i, j) != float64(100*i+j) {
					t.Fatalf("layout %v At(%d,%d) = %v", layout, i, j, m.At(i, j))
				}
			}
		}
	}
}

func TestReinterpretPreservesValues(t *testing.T) {
	m := New(5, 3, RowMajor)
	m.FillSequential()
	r := m.Reinterpret(ColMajor)
	if r.Layout != ColMajor || !Equal(m, r, 0) {
		t.Fatal("Reinterpret changed logical contents")
	}
	if m.Data[1] == r.Data[1] {
		t.Fatal("Reinterpret should change the memory order of a non-square fill")
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3, RowMajor)
	m.FillSequential()
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !Equal(m, tr.Transpose(), 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSub(t *testing.T) {
	m := New(8, 8, RowMajor)
	m.FillSequential()
	s := m.Sub(2, 3, 4, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if s.At(i, j) != m.At(2+i, 3+j) {
				t.Fatalf("Sub mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(6, 6, RowMajor)
	a.FillRandomFP16(rng)
	id := New(6, 6, ColMajor)
	id.FillFunc(func(i, j int) float64 {
		if i == j {
			return 1
		}
		return 0
	})
	zero := New(6, 6, RowMajor)
	d := Gemm(a, id, zero, RowMajor)
	if !Equal(a, d, 0) {
		t.Fatal("A × I + 0 != A")
	}
}

func TestGemmKnown(t *testing.T) {
	a := New(2, 3, RowMajor)
	a.FillFunc(func(i, j int) float64 { return float64(i*3 + j + 1) }) // 1..6
	b := New(3, 2, ColMajor)
	b.FillFunc(func(i, j int) float64 { return float64(i*2 + j + 1) }) // 1..6
	c := New(2, 2, RowMajor)
	c.FillConst(10)
	d := Gemm(a, b, c, RowMajor)
	// [1 2 3; 4 5 6] × [1 2; 3 4; 5 6] = [22 28; 49 64]
	want := [][]float64{{32, 38}, {59, 74}}
	for i := range want {
		for j := range want[i] {
			if d.At(i, j) != want[i][j] {
				t.Errorf("D(%d,%d) = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gemm with mismatched shapes should panic")
		}
	}()
	Gemm(New(2, 3, RowMajor), New(2, 3, RowMajor), New(2, 3, RowMajor), RowMajor)
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ for the float64 reference GEMM.
func TestGemmTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(4, 5, RowMajor)
		b := New(5, 3, RowMajor)
		a.FillRandomInt(rng, -3, 3)
		b.FillRandomInt(rng, -3, 3)
		zab := New(4, 3, RowMajor)
		zba := New(3, 4, RowMajor)
		left := Gemm(a, b, zab, RowMajor).Transpose()
		right := Gemm(b.Transpose(), a.Transpose(), zba, RowMajor)
		return Equal(left, right, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(2, 2, RowMajor)
	b := New(2, 2, ColMajor)
	a.FillConst(1)
	b.FillConst(1)
	b.Set(1, 0, 3)
	if d := MaxAbsDiff(a, b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}

func TestFillRandomFP16ExactlyRepresentable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New(16, 16, RowMajor)
	m.FillRandomFP16(rng)
	for _, v := range m.Data {
		if v*32 != float64(int(v*32)) {
			t.Fatalf("value %v is not a multiple of 1/32", v)
		}
		if v < -4 || v >= 4 {
			t.Fatalf("value %v outside [-4,4)", v)
		}
	}
}
