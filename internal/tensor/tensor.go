// Package tensor provides small host-side dense matrices used to build
// workloads for the simulated GPU and to verify results.
//
// Matrices store float64 elements regardless of the device-side precision;
// binary16 and int8 device data are exactly representable in float64, so the
// host copy can serve as the golden reference for every precision mode the
// tensor cores support.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Layout selects the in-memory order of matrix elements, mirroring the
// "row"/"col" layout qualifiers of the wmma PTX instructions.
type Layout int

const (
	// RowMajor stores elements of one row contiguously.
	RowMajor Layout = iota
	// ColMajor stores elements of one column contiguously.
	ColMajor
)

// String returns the PTX qualifier spelling of the layout.
func (l Layout) String() string {
	if l == RowMajor {
		return "row"
	}
	return "col"
}

// Matrix is a dense rows×cols matrix with an explicit layout and leading
// dimension (stride), matching how tiles of larger matrices are addressed by
// wmma.load/wmma.store.
type Matrix struct {
	Rows, Cols int
	Layout     Layout
	// Stride is the leading dimension: the element distance between
	// consecutive rows (RowMajor) or columns (ColMajor).
	Stride int
	Data   []float64
}

// New returns a zeroed rows×cols matrix with a tight stride.
func New(rows, cols int, layout Layout) *Matrix {
	stride := cols
	if layout == ColMajor {
		stride = rows
	}
	return &Matrix{
		Rows:   rows,
		Cols:   cols,
		Layout: layout,
		Stride: stride,
		Data:   make([]float64, rows*cols),
	}
}

// Index returns the linear offset of element (i, j).
func (m *Matrix) Index(i, j int) int {
	if m.Layout == RowMajor {
		return i*m.Stride + j
	}
	return j*m.Stride + i
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[m.Index(i, j)] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[m.Index(i, j)] = v }

// AtLinear returns the element at a linear offset previously computed by
// Index. Batched consumers (the SoA wmma fragment path) precompute the
// offsets once per static instruction and index the storage directly,
// skipping the per-element layout branch.
func (m *Matrix) AtLinear(i int) float64 { return m.Data[i] }

// SetLinear assigns the element at a linear offset previously computed
// by Index.
func (m *Matrix) SetLinear(i int, v float64) { m.Data[i] = v }

// FillFunc sets every element (i, j) to f(i, j).
func (m *Matrix) FillFunc(f func(i, j int) float64) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, f(i, j))
		}
	}
}

// FillConst sets every element to v.
func (m *Matrix) FillConst(v float64) { m.FillFunc(func(int, int) float64 { return v }) }

// FillSequential assigns each element a distinct small value, i*Cols+j+1,
// scaled by 1/64 so products stay exactly representable in binary16 for
// small matrices. Distinct values are what the paper's Figure 4
// microbenchmark relies on to decode fragment-to-thread mappings.
func (m *Matrix) FillSequential() {
	m.FillFunc(func(i, j int) float64 { return float64(i*m.Cols+j+1) / 64 })
}

// FillRandomFP16 fills the matrix with random values that are exactly
// representable in binary16: multiples of 1/32 in [-4, 4).
func (m *Matrix) FillRandomFP16(rng *rand.Rand) {
	m.FillFunc(func(int, int) float64 { return float64(rng.Intn(256)-128) / 32 })
}

// FillRandomInt fills the matrix with random integers in [lo, hi].
func (m *Matrix) FillRandomInt(rng *rand.Rand, lo, hi int) {
	m.FillFunc(func(int, int) float64 { return float64(lo + rng.Intn(hi-lo+1)) })
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := *m
	c.Data = append([]float64(nil), m.Data...)
	return &c
}

// Reinterpret returns a copy of m converted to the given layout (same
// logical element values, different memory order).
func (m *Matrix) Reinterpret(layout Layout) *Matrix {
	out := New(m.Rows, m.Cols, layout)
	out.FillFunc(m.At)
	return out
}

// Transpose returns mᵀ in the same layout as m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows, m.Layout)
	out.FillFunc(func(i, j int) float64 { return m.At(j, i) })
	return out
}

// Sub returns a copy of the rows×cols sub-matrix of m whose upper-left
// corner is (r0, c0).
func (m *Matrix) Sub(r0, c0, rows, cols int) *Matrix {
	out := New(rows, cols, m.Layout)
	out.FillFunc(func(i, j int) float64 { return m.At(r0+i, c0+j) })
	return out
}

// Gemm computes D = A×B + C in float64 and returns D in the given layout.
// Panics if dimensions are inconsistent; this is the golden reference for
// every GEMM in the repository.
func Gemm(a, b, c *Matrix, layout Layout) *Matrix {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch A %dx%d B %dx%d C %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	d := New(a.Rows, b.Cols, layout)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			acc := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				acc += a.At(i, k) * b.At(k, j)
			}
			d.Set(i, j, acc)
		}
	}
	return d
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have identical logical dimensions.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}

// Equal reports whether a and b agree elementwise within tol.
func Equal(a, b *Matrix, tol float64) bool { return MaxAbsDiff(a, b) <= tol }
