package ptx

import (
	"encoding/binary"
	"sync/atomic"
)

// The batched warp access path. The legacy executor reports one Access
// struct per lane per instruction and reads or writes memory one lane at
// a time; for a 32-lane warp that is 32 struct appends, 32 generic-space
// resolutions and up to 32 Memory interface calls per load or store —
// the dominant cost of memory-bound SIMT kernels once ALU dispatch and
// scheduling are decoded (the fig17 profile). The batched path instead
// generates all 32 lane addresses in one pass into a WarpAccess — a
// struct-of-arrays vector with an active-lane bitmask and the shared
// width/space/store attributes — resolves the state space once per
// instruction, and moves contiguous data in bulk: a warp whose lanes
// read one unit-stride range becomes a single Memory.Read, and runs of
// consecutive lanes become one call per run. The timing model consumes
// the vector directly (mem.AddrVec aliases the address array), so no
// per-lane request list is ever materialized.

// WarpAccess is the batched form of one warp instruction's memory access
// group: per-lane addresses (stale in unmasked lanes), the active-lane
// bitmask and the attributes every lane shares. Ordinary ld/st produce
// one group (two when generic addressing splits the warp across spaces);
// wmma.load/store produce one group per fragment piece. Like
// Result.Accesses, the groups alias per-warp scratch valid until the
// warp's next Step.
type WarpAccess struct {
	Addr  [32]uint64
	Mask  uint32
	Bits  int32
	Space Space // Global or Shared after generic resolution
	Store bool
}

// legacyAccessPath, when set, routes warps constructed afterwards
// through the per-lane Access path instead of the batched WarpAccess
// path. It exists so tests can assert the batched path is
// semantics-preserving (bit-identical Stats and experiment tables) and
// so the ablation benchmark can quantify the difference; production
// code never sets it.
//
//simlint:processknob equivalence/ablation knob: CLI plumbing and Swap-helper tests only, never flipped while simulators run
var legacyAccessPath atomic.Bool

// LegacyAccessPath switches subsequently constructed warps between the
// batched struct-of-arrays access path (the default) and the per-lane
// legacy path, mirroring InterpretALU and gpu.ScanScheduler.
func LegacyAccessPath(on bool) { legacyAccessPath.Store(on) }

// SwapLegacyAccessPath sets the knob and returns the restore that puts
// the previous value back. Tests must use this shape — registered with
// defer or t.Cleanup — so a process-global knob can never leak across
// parallel tests:
//
//	defer ptx.SwapLegacyAccessPath(true)()
func SwapLegacyAccessPath(on bool) (restore func()) {
	prev := legacyAccessPath.Swap(on)
	return func() { legacyAccessPath.Store(prev) }
}

// appendBatchSlot extends the batch by one group without zeroing the
// (mask-guarded, stale) lane addresses of a recycled backing array.
func appendBatchSlot(b []WarpAccess) ([]WarpAccess, *WarpAccess) {
	if len(b) < cap(b) {
		b = b[:len(b)+1]
	} else {
		b = append(b, WarpAccess{})
	}
	return b, &b[len(b)-1]
}

// LaneAccesses returns the instruction's memory accesses in per-lane
// form: Result.Accesses when the legacy path produced them, otherwise
// the lane-major expansion of the batched groups — the exact order the
// legacy path would have emitted. Tests and tools use it; the timing
// model consumes the batch directly.
func (r *Result) LaneAccesses() []Access {
	if len(r.Accesses) > 0 || len(r.Batch) == 0 {
		return r.Accesses
	}
	return expandBatch(nil, r.Batch)
}

// expandBatch appends the lane-major expansion of batched groups.
func expandBatch(out []Access, batch []WarpAccess) []Access {
	for lane := 0; lane < 32; lane++ {
		bit := uint32(1) << lane
		for gi := range batch {
			g := &batch[gi]
			if g.Mask&bit == 0 {
				continue
			}
			out = append(out, Access{
				Lane: lane, Addr: g.Addr[lane], Bits: int(g.Bits),
				Space: g.Space, Store: g.Store,
			})
		}
	}
	return out
}

// genLdStAddrs fills the group's address vector and mask for a decoded
// ld/st. The dominant shape — plain register base, fully active
// unguarded warp, classified at decode time — indexes the register file
// directly; everything else goes through the per-lane guard and operand
// resolution.
//
//simlint:hotpath
func (w *Warp) genLdStAddrs(d *DInstr, wa *WarpAccess) {
	nr := w.Kernel.NumRegs
	if ar := int(d.addrReg); ar >= 0 && d.predID < 0 && w.nLanes == 32 {
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			wa.Addr[lane] = w.regs[base+ar]
		}
		wa.Mask = ^uint32(0)
		return
	}
	var mask uint32
	a0 := &d.srcs[0]
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		mask |= 1 << lane
		wa.Addr[lane] = d.val(w, base, lane, a0)
	}
	wa.Mask = mask
}

// resolveBatchSpace resolves the group's state space in place, exactly
// as Env.resolveSpace does per lane. Static spaces resolve once per
// instruction; a generic access that straddles the shared window splits
// into a second group so each group ends up in exactly one space.
func (w *Warp) resolveBatchSpace(res *Result, gi int) {
	wa := &res.Batch[gi]
	switch wa.Space {
	case Global:
		return
	case Shared:
		for lane := 0; lane < 32; lane++ {
			if wa.Mask&(1<<lane) != 0 && wa.Addr[lane] >= SharedBase {
				wa.Addr[lane] -= SharedBase
			}
		}
		return
	}
	// Generic: a lane is shared iff its address falls inside the window.
	limit := SharedBase + uint64(len(w.Env.Shared))
	var sharedMask uint32
	for lane := 0; lane < 32; lane++ {
		if wa.Mask&(1<<lane) == 0 {
			continue
		}
		if a := wa.Addr[lane]; a >= SharedBase && a < limit {
			sharedMask |= 1 << lane
			wa.Addr[lane] = a - SharedBase
		}
	}
	switch sharedMask {
	case 0:
		wa.Space = Global
		return
	case wa.Mask:
		wa.Space = Shared
		return
	}
	// Mixed: keep the global lanes here, split the shared lanes off.
	// (accessMemory partitions by space, so group order is immaterial.)
	var split *WarpAccess
	res.Batch, split = appendBatchSlot(res.Batch)
	wa = &res.Batch[gi] // re-resolve: append may have moved the backing
	*split = *wa
	split.Space = Shared
	split.Mask = sharedMask
	wa.Space = Global
	wa.Mask &^= sharedMask
}

// execLoadBatched is execLoad on the batched path: one address pass, one
// space resolution, then bulk data movement — a single read for a
// uniform broadcast, one read per maximal unit-stride lane run for
// everything else global, and direct slice reads for shared memory.
//
//simlint:hotpath
func (w *Warp) execLoadBatched(d *DInstr, res *Result) {
	var wa *WarpAccess
	res.Batch, wa = appendBatchSlot(res.Batch)
	wa.Bits = int32(d.In.Width)
	wa.Space = d.space
	wa.Store = false
	w.genLdStAddrs(d, wa)
	if wa.Mask == 0 {
		res.Batch = res.Batch[:len(res.Batch)-1]
		return
	}
	w.resolveBatchSpace(res, len(res.Batch)-1)
	for gi := range res.Batch {
		w.loadGroup(d, &res.Batch[gi])
	}
}

// loadGroup moves one group's data from memory into the destination
// registers.
//
//simlint:hotpath
func (w *Warp) loadGroup(d *DInstr, g *WarpAccess) {
	nr := w.Kernel.NumRegs
	nb := uint64(d.membytes)
	if g.Space == Shared {
		shared := w.Env.Shared
		for lane := 0; lane < 32; lane++ {
			if g.Mask&(1<<lane) == 0 {
				continue
			}
			a := g.Addr[lane]
			w.unpackLoad(d, lane*nr, shared[a:a+nb])
		}
		return
	}
	if g.Mask == ^uint32(0) && uniformAddrs(&g.Addr) {
		// Broadcast: all lanes read the same bytes once.
		buf := w.bulk[:nb]
		w.Env.Global.Read(g.Addr[0], buf)
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			w.unpackLoad(d, base, buf)
		}
		return
	}
	// One Memory.Read per maximal run of consecutive masked lanes with
	// contiguous addresses (run length 1 degrades to the per-lane read).
	for lane := 0; lane < 32; {
		if g.Mask&(1<<lane) == 0 {
			lane++
			continue
		}
		end := lane + 1
		for end < 32 && g.Mask&(1<<end) != 0 && g.Addr[end] == g.Addr[end-1]+nb {
			end++
		}
		n := uint64(end - lane)
		buf := w.bulk[: n*nb : n*nb]
		w.Env.Global.Read(g.Addr[lane], buf)
		for i := lane; i < end; i++ {
			w.unpackLoad(d, i*nr, buf[uint64(i-lane)*nb:])
		}
		lane = end
	}
}

// unpackLoad writes one lane's loaded bytes into its destination
// registers (base is the lane's register-file offset).
func (w *Warp) unpackLoad(d *DInstr, base int, src []byte) {
	if d.In.Width == 16 {
		w.regs[base+int(d.dsts[0])] = uint64(binary.LittleEndian.Uint16(src))
		return
	}
	for i := 0; i < int(d.words); i++ {
		w.regs[base+int(d.dsts[i])] = uint64(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// execStoreBatched is execStore on the batched path.
//
//simlint:hotpath
func (w *Warp) execStoreBatched(d *DInstr, res *Result) {
	var wa *WarpAccess
	res.Batch, wa = appendBatchSlot(res.Batch)
	wa.Bits = int32(d.In.Width)
	wa.Space = d.space
	wa.Store = true
	w.genLdStAddrs(d, wa)
	if wa.Mask == 0 {
		res.Batch = res.Batch[:len(res.Batch)-1]
		return
	}
	w.resolveBatchSpace(res, len(res.Batch)-1)
	for gi := range res.Batch {
		w.storeGroup(d, &res.Batch[gi])
	}
}

// storeGroup moves one group's register values into memory. Lane order
// is preserved (within a run addresses are disjoint; runs are emitted in
// lane order), so overlapping stores resolve exactly as the per-lane
// path does: last lane wins.
//
//simlint:hotpath
func (w *Warp) storeGroup(d *DInstr, g *WarpAccess) {
	nr := w.Kernel.NumRegs
	nb := uint64(d.membytes)
	if g.Space == Shared {
		shared := w.Env.Shared
		for lane := 0; lane < 32; lane++ {
			if g.Mask&(1<<lane) == 0 {
				continue
			}
			a := g.Addr[lane]
			w.packStore(d, lane*nr, lane, shared[a:a+nb])
		}
		return
	}
	for lane := 0; lane < 32; {
		if g.Mask&(1<<lane) == 0 {
			lane++
			continue
		}
		end := lane + 1
		for end < 32 && g.Mask&(1<<end) != 0 && g.Addr[end] == g.Addr[end-1]+nb {
			end++
		}
		n := uint64(end - lane)
		buf := w.bulk[: n*nb : n*nb]
		for i := lane; i < end; i++ {
			w.packStore(d, i*nr, i, buf[uint64(i-lane)*nb:uint64(i-lane+1)*nb])
		}
		w.Env.Global.Write(g.Addr[lane], buf)
		lane = end
	}
}

// packStore serializes one lane's source operands into dst.
func (w *Warp) packStore(d *DInstr, base, lane int, dst []byte) {
	if d.In.Width == 16 {
		v := d.val(w, base, lane, &d.srcs[1])
		binary.LittleEndian.PutUint16(dst, uint16(v))
		return
	}
	for i := 0; i < int(d.words); i++ {
		v := d.val(w, base, lane, &d.srcs[1+i])
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// uniformAddrs reports whether all 32 lanes hold one address.
func uniformAddrs(a *[32]uint64) bool {
	a0 := a[0]
	for i := 1; i < 32; i++ {
		if a[i] != a0 {
			return false
		}
	}
	return true
}
