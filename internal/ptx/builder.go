package ptx

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Builder assembles a Kernel instruction by instruction, playing the role
// of nvcc's CUDA→PTX stage for the kernels in internal/kernels.
//
// The zero value is not usable; call NewBuilder.
type Builder struct {
	k    Kernel
	errs []error
	pred *Reg // pending guard for the next instruction
	pneg bool
}

// NewBuilder starts a kernel with the given entry name.
func NewBuilder(name string) *Builder {
	return &Builder{k: Kernel{Name: name, Labels: make(map[string]int)}}
}

// Param declares a kernel parameter and returns the register holding its
// value at launch.
func (b *Builder) Param(name string, t Type) Reg {
	r := b.Reg()
	b.k.Params = append(b.k.Params, Param{Name: name, Type: t})
	b.k.ParamRegs = append(b.k.ParamRegs, r)
	return r
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	r := Reg{ID: b.k.NumRegs}
	b.k.NumRegs++
	return r
}

// Regs allocates n fresh registers.
func (b *Builder) Regs(n int) []Reg {
	out := make([]Reg, n)
	for i := range out {
		out[i] = b.Reg()
	}
	return out
}

// Shared reserves n bytes of static shared memory and returns its byte
// offset within the CTA's shared window.
func (b *Builder) Shared(n int) uint64 {
	// Keep 16-byte alignment for vectorized accesses.
	off := uint64((b.k.SharedBytes + 15) &^ 15)
	b.k.SharedBytes = int(off) + n
	return SharedBase + off
}

// Label marks the next instruction with a branch target name.
func (b *Builder) Label(name string) {
	if _, dup := b.k.Labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("ptx: duplicate label %q", name))
	}
	b.k.Labels[name] = len(b.k.Instrs)
}

// At guards the next emitted instruction with @p (or @!p when neg).
func (b *Builder) At(p Reg, neg bool) *Builder {
	b.pred, b.pneg = &p, neg
	return b
}

func (b *Builder) emit(in Instr) {
	if b.pred != nil {
		in.Pred, in.PNeg = b.pred, b.pneg
		b.pred, b.pneg = nil, false
	}
	b.k.Instrs = append(b.k.Instrs, in)
}

// Mov emits mov.<t> d, a.
func (b *Builder) Mov(t Type, d Reg, a Operand) {
	b.emit(Instr{Op: OpMov, Type: t, Dst: []Reg{d}, Src: []Operand{a}})
}

// Arithmetic emitters. All are d = a <op> b in type t.

func (b *Builder) Add(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpAdd, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Sub(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpSub, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Mul(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpMul, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}

// MulWide emits mul.wide.u32: a 32×32→64-bit multiply for addressing.
func (b *Builder) MulWide(d Reg, a, c Operand) {
	b.emit(Instr{Op: OpMulWide, Type: U64, Dst: []Reg{d}, Src: []Operand{a, c}})
}

// Mad emits d = a*b + c (fused multiply-add for float types).
func (b *Builder) Mad(t Type, d Reg, a, x, c Operand) {
	b.emit(Instr{Op: OpMad, Type: t, Dst: []Reg{d}, Src: []Operand{a, x, c}})
}

func (b *Builder) Div(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpDiv, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Rem(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpRem, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Min(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpMin, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Max(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpMax, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) And(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpAnd, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Or(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpOr, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Xor(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpXor, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Shl(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpShl, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}
func (b *Builder) Shr(t Type, d Reg, a, c Operand) {
	b.emit(Instr{Op: OpShr, Type: t, Dst: []Reg{d}, Src: []Operand{a, c}})
}

// Cvt emits cvt.<dst>.<src> d, a.
func (b *Builder) Cvt(dst, src Type, d Reg, a Operand) {
	b.emit(Instr{Op: OpCvt, Type: dst, SrcType: src, Dst: []Reg{d}, Src: []Operand{a}})
}

// Setp emits setp.<cmp>.<t> p, a, b.
func (b *Builder) Setp(t Type, cmp CmpOp, p Reg, a, c Operand) {
	b.emit(Instr{Op: OpSetp, Type: t, Cmp: cmp, Dst: []Reg{p}, Src: []Operand{a, c}})
}

// Selp emits selp.<t> d, a, b, p.
func (b *Builder) Selp(t Type, d Reg, a, c, p Operand) {
	b.emit(Instr{Op: OpSelp, Type: t, Dst: []Reg{d}, Src: []Operand{a, c, p}})
}

// Ld emits ld.<space>.<width-bits> filling len(dst) registers with
// consecutive 32-bit words (64/128-bit loads are vectorized, like
// ld.global.v2/v4). For Width 16, the low half-word is loaded zero-
// extended.
func (b *Builder) Ld(space Space, width int, dst []Reg, addr Operand) {
	b.emit(Instr{Op: OpLd, Space: space, Width: width, Dst: dst, Src: []Operand{addr}})
}

// St emits st.<space>.<width-bits> from len(src)-1 source registers (the
// first operand is the address).
func (b *Builder) St(space Space, width int, addr Operand, src []Operand) {
	b.emit(Instr{Op: OpSt, Space: space, Width: width, Src: append([]Operand{addr}, src...)})
}

// Bar emits bar.sync 0.
func (b *Builder) Bar() { b.emit(Instr{Op: OpBar}) }

// Bra emits an unconditional branch.
func (b *Builder) Bra(target string) { b.emit(Instr{Op: OpBra, Target: target}) }

// BraIf emits @p bra target (or @!p with neg).
func (b *Builder) BraIf(p Reg, neg bool, target string) {
	b.emit(Instr{Op: OpBra, Target: target, Pred: &p, PNeg: neg})
}

// Exit emits exit.
func (b *Builder) Exit() { b.emit(Instr{Op: OpExit}) }

// Clock reads the SM cycle counter into d (mov.u32 d, %clock).
func (b *Builder) Clock(d Reg) { b.Mov(U32, d, SR(SRegClock)) }

// WmmaLoad emits wmma.load.<op>.sync.<layout>.<shape>.<type> frag, [addr],
// stride. It returns the fragment registers it allocates (one register
// per fragment element).
func (b *Builder) WmmaLoad(arch wmma.Arch, shape wmma.Shape, op wmma.Operand,
	layout tensor.Layout, elem wmma.Precision, addr, stride Operand) []Reg {
	m, err := wmma.Map(arch, shape, op, layout, elem)
	if err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	frag := b.Regs(m.FragmentLen())
	b.emit(Instr{Op: OpWmmaLoad, WMap: m, Dst: frag, Src: []Operand{addr, stride}, Space: Generic})
	return frag
}

// WmmaStore emits wmma.store.d.sync.<layout>.<shape>.<type> [addr], frag,
// stride. The fragment must follow the C-operand mapping.
func (b *Builder) WmmaStore(arch wmma.Arch, shape wmma.Shape,
	layout tensor.Layout, elem wmma.Precision, addr Operand, frag []Reg, stride Operand) {
	m, err := wmma.Map(arch, shape, wmma.MatrixC, layout, elem)
	if err != nil {
		b.errs = append(b.errs, err)
		return
	}
	if len(frag) != m.FragmentLen() {
		b.errs = append(b.errs, fmt.Errorf("ptx: wmma.store fragment has %d regs, mapping needs %d", len(frag), m.FragmentLen()))
		return
	}
	src := []Operand{addr, stride}
	for _, r := range frag {
		src = append(src, R(r))
	}
	b.emit(Instr{Op: OpWmmaStore, WMap: m, Src: src, Space: Generic})
}

// WmmaMMA emits wmma.mma.sync computing fragD = fragA×fragB + fragC under
// cfg. It returns the destination fragment registers (fresh; wmma.mma may
// also accumulate in place by passing dst == fragC — then no new registers
// are allocated).
func (b *Builder) WmmaMMA(cfg wmma.Config, fragA, fragB, fragC []Reg) []Reg {
	cm, err := wmma.Map(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType)
	if err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	if err := cfg.Validate(); err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	am, err := wmma.Map(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType)
	if err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	bm, err := wmma.Map(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType)
	if err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	dm, err := wmma.Map(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.DType)
	if err != nil {
		b.errs = append(b.errs, err)
		return nil
	}
	if len(fragA) != am.FragmentLen() || len(fragB) != bm.FragmentLen() || len(fragC) != cm.FragmentLen() {
		b.errs = append(b.errs, fmt.Errorf("ptx: wmma.mma fragment sizes %d/%d/%d, want %d/%d/%d",
			len(fragA), len(fragB), len(fragC), am.FragmentLen(), bm.FragmentLen(), cm.FragmentLen()))
		return nil
	}
	dst := fragC
	if cfg.DType != cfg.CType {
		dst = b.Regs(dm.FragmentLen())
	}
	var src []Operand
	for _, r := range fragA {
		src = append(src, R(r))
	}
	for _, r := range fragB {
		src = append(src, R(r))
	}
	for _, r := range fragC {
		src = append(src, R(r))
	}
	b.emit(Instr{Op: OpWmmaMMA, WConfig: cfg, WMap: cm, WMapA: am, WMapB: bm, WMapD: dm, Dst: dst, Src: src})
	return dst
}

// Build finalizes the kernel, verifying label targets resolve.
func (b *Builder) Build() (*Kernel, error) {
	for _, err := range b.errs {
		return nil, err
	}
	for i, in := range b.k.Instrs {
		if in.Op == OpBra {
			if _, ok := b.k.Labels[in.Target]; !ok {
				return nil, fmt.Errorf("ptx: instruction %d branches to unknown label %q", i, in.Target)
			}
		}
	}
	k := b.k
	// Decode once per kernel: every warp of every launch shares this
	// read-only program instead of re-classifying operands per execution.
	k.prog = decodeKernel(&k)
	return &k, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
