package ptx

import (
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/tensor"
)

// Memory is the byte-addressable global store the executor reads and
// writes; internal/cuda provides the device-memory implementation.
type Memory interface {
	Read(addr uint64, buf []byte)
	Write(addr uint64, data []byte)
}

// Dim3 is a CUDA-style 3-component dimension.
type Dim3 struct{ X, Y, Z int }

// D1 builds a 1-D Dim3.
func D1(x int) Dim3 { return Dim3{x, 1, 1} }

// D2 builds a 2-D Dim3.
func D2(x, y int) Dim3 { return Dim3{x, y, 1} }

// Count returns the number of threads/blocks the dimension spans.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

// Env is the execution environment of one CTA: the memories it can reach
// and its position in the grid. Clock supplies the value of %clock; the
// timing simulator wires it to the SM cycle counter, and functional runs
// use a step counter.
type Env struct {
	Global   Memory
	Shared   []byte
	Clock    func() uint64
	GridDim  Dim3
	BlockDim Dim3
	CtaID    Dim3
}

// resolveSpace maps a generic address onto the shared window or global
// memory, like PTX generic addressing.
func (e *Env) resolveSpace(space Space, addr uint64) (Space, uint64) {
	if space == Shared {
		// Accept both window-relative offsets and generic addresses
		// (Builder.Shared hands out the latter).
		if addr >= SharedBase {
			addr -= SharedBase
		}
		return Shared, addr
	}
	if space == Generic && addr >= SharedBase && addr < SharedBase+uint64(len(e.Shared)) {
		return Shared, addr - SharedBase
	}
	if space == Generic {
		return Global, addr
	}
	return Global, addr
}

func (e *Env) read(space Space, addr uint64, buf []byte) {
	sp, a := e.resolveSpace(space, addr)
	if sp == Shared {
		copy(buf, e.Shared[a:a+uint64(len(buf))])
		return
	}
	e.Global.Read(a, buf)
}

func (e *Env) write(space Space, addr uint64, data []byte) {
	sp, a := e.resolveSpace(space, addr)
	if sp == Shared {
		copy(e.Shared[a:a+uint64(len(data))], data)
		return
	}
	e.Global.Write(a, data)
}

// Access is one memory access performed by an executed instruction, as the
// timing model's coalescer sees it.
type Access struct {
	Lane  int
	Addr  uint64 // post-resolution address (shared offsets are window-relative)
	Bits  int
	Space Space // Global or Shared after generic resolution
	Store bool
}

// Result reports the architectural effects of one executed instruction
// that the timing model needs. Memory accesses arrive on exactly one of
// two mutually exclusive paths: Batch holds the batched struct-of-arrays
// groups (the default), Accesses the per-lane legacy form (the
// LegacyAccessPath knob, plus wmma warps whose lanes disagree on
// fragment structure). Both alias per-warp scratch buffers: they are
// valid until the warp's next Step call, which is the synchronous
// consumption pattern of the timing model.
type Result struct {
	Instr    *Instr
	Accesses []Access
	Batch    []WarpAccess
	Barrier  bool
	Exited   bool
}

// Warp executes one warp of a CTA instruction by instruction.
type Warp struct {
	Kernel *Kernel
	Env    *Env
	ID     int // warp index within the CTA
	PC     int
	Exited bool
	// AtBarrier is set when the warp executed bar.sync and is waiting for
	// the rest of the CTA; the CTA driver clears it.
	AtBarrier bool
	Active    [32]bool
	nLanes    int
	regs      []uint64 // [lane*NumRegs + reg]
	// prog is the kernel's decoded-instruction cache (shared across all
	// warps of the kernel; see decode.go).
	prog []DInstr

	// legacy routes this warp through the per-lane access path; sampled
	// from the LegacyAccessPath knob at construction, like the decoded
	// ALU dispatch samples InterpretALU at decode time.
	legacy bool
	// legacyFrag routes this warp's wmma instructions through the
	// per-element fragment path; sampled from LegacyFragmentPath at
	// construction.
	legacyFrag bool

	// Scratch buffers reused across Step calls so the hot execution path
	// stays allocation-free: staging buffers for loads/stores (membuf for
	// one lane, bulk for a whole warp's contiguous runs), the
	// Result.Accesses and Result.Batch backing arrays, wmma per-lane
	// address lists, and the wmma piece list of the batched frag path.
	membuf   [16]byte
	bulk     [512]byte // 32 lanes × 16 bytes
	accBuf   []Access
	batchBuf []WarpAccess
	addrBuf  []uint64
	pieceBuf []fragPiece
	tiles    [4]*tensor.Matrix // wmma.mma A/B/C/D tile scratch
	quantBuf []fp16.Float16    // wmma.mma operand quantization scratch
}

// NLanes returns the number of active lanes (fixed at construction:
// branches are warp-uniform, so the active set never changes).
func (w *Warp) NLanes() int { return w.nLanes }

// NewWarp builds warp id of a CTA, loading kernel arguments into the
// parameter registers of every lane. args must match the kernel's
// parameter list.
func NewWarp(k *Kernel, env *Env, id int, args []uint64) (*Warp, error) {
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("ptx: kernel %s takes %d args, got %d", k.Name, len(k.Params), len(args))
	}
	w := &Warp{Kernel: k, Env: env, ID: id}
	w.legacy = legacyAccessPath.Load()
	w.legacyFrag = legacyFragmentPath.Load()
	w.prog = k.prog
	if w.prog == nil {
		// Hand-assembled kernels (no Builder.Build pass) decode a private
		// program; built kernels share the per-kernel cache.
		w.prog = decodeKernel(k)
	}
	w.regs = make([]uint64, 32*k.NumRegs)
	nThreads := env.BlockDim.Count()
	for lane := 0; lane < 32; lane++ {
		linear := id*32 + lane
		if linear >= nThreads {
			continue
		}
		w.Active[lane] = true
		w.nLanes++
		for i, r := range k.ParamRegs {
			w.regs[lane*k.NumRegs+r.ID] = args[i]
		}
	}
	if w.nLanes == 0 {
		w.Exited = true
	}
	return w, nil
}

func (w *Warp) reg(lane int, r Reg) uint64       { return w.regs[lane*w.Kernel.NumRegs+r.ID] }
func (w *Warp) setReg(lane int, r Reg, v uint64) { w.regs[lane*w.Kernel.NumRegs+r.ID] = v }

// tid returns the 3-D thread index of a lane.
func (w *Warp) tid(lane int) Dim3 {
	linear := w.ID*32 + lane
	bd := w.Env.BlockDim
	return Dim3{
		X: linear % bd.X,
		Y: (linear / bd.X) % bd.Y,
		Z: linear / (bd.X * bd.Y),
	}
}

func (w *Warp) sreg(lane int, s SReg) uint64 {
	e := w.Env
	switch s {
	case SRegTidX:
		return uint64(w.tid(lane).X)
	case SRegTidY:
		return uint64(w.tid(lane).Y)
	case SRegTidZ:
		return uint64(w.tid(lane).Z)
	case SRegNTidX:
		return uint64(e.BlockDim.X)
	case SRegNTidY:
		return uint64(e.BlockDim.Y)
	case SRegNTidZ:
		return uint64(e.BlockDim.Z)
	case SRegCtaIDX:
		return uint64(e.CtaID.X)
	case SRegCtaIDY:
		return uint64(e.CtaID.Y)
	case SRegCtaIDZ:
		return uint64(e.CtaID.Z)
	case SRegNCtaIDX:
		return uint64(e.GridDim.X)
	case SRegNCtaIDY:
		return uint64(e.GridDim.Y)
	case SRegNCtaIDZ:
		return uint64(e.GridDim.Z)
	case SRegLaneID:
		return uint64(lane)
	case SRegWarpID:
		return uint64(w.ID)
	case SRegClock:
		return w.Env.Clock()
	}
	return 0
}

func (w *Warp) operand(lane int, o *Operand) uint64 {
	switch o.Kind {
	case OperandReg:
		return w.reg(lane, o.Reg)
	case OperandImm:
		return o.Imm
	default:
		return w.sreg(lane, o.SReg)
	}
}

// laneEnabled reports whether the lane executes the instruction under its
// guard predicate.
func (w *Warp) laneEnabled(lane int, in *Instr) bool {
	if !w.Active[lane] {
		return false
	}
	if in.Pred == nil {
		return true
	}
	p := w.reg(lane, *in.Pred) != 0
	if in.PNeg {
		return !p
	}
	return p
}

// Peek returns the instruction the warp will execute next, or nil if the
// warp has exited.
func (w *Warp) Peek() *Instr {
	if d := w.PeekD(); d != nil {
		return d.In
	}
	return nil
}

// PeekD returns the decoded form of the instruction the warp will execute
// next, or nil if the warp has exited. The timing model schedules on the
// decoded form (unit class, precomputed scoreboard registers) instead of
// re-classifying the Instr every cycle.
func (w *Warp) PeekD() *DInstr {
	if w.Exited || w.PC >= len(w.prog) {
		return nil
	}
	return &w.prog[w.PC]
}

// Step executes the next instruction and advances the PC. Branches must be
// warp-uniform over enabled lanes (the kernels in this repository use
// predication for per-lane conditionals); divergent branches are an error.
func (w *Warp) Step() (Result, error) {
	var res Result
	err := w.StepInto(&res)
	return res, err
}

// StepInto is Step writing into a caller-owned Result, so the hot
// issue loop moves no Result copies (the struct carries two slice
// headers and crosses two call boundaries per instruction otherwise).
// *res is fully overwritten.
func (w *Warp) StepInto(res *Result) error {
	err := w.step(res)
	if cap(res.Accesses) > cap(w.accBuf) {
		w.accBuf = res.Accesses[:0]
	}
	if cap(res.Batch) > cap(w.batchBuf) {
		w.batchBuf = res.Batch[:0]
	}
	return err
}

func (w *Warp) step(res *Result) error {
	d := w.PeekD()
	if d == nil {
		w.Exited = true
		*res = Result{Exited: true}
		return nil
	}
	in := d.In
	*res = Result{Instr: in, Accesses: w.accBuf[:0], Batch: w.batchBuf[:0]}

	switch d.Class {
	case DClassBra:
		taken, uniform := w.branchVote(d)
		if !uniform {
			return fmt.Errorf("ptx: divergent branch at %d in %s", w.PC, w.Kernel.Name)
		}
		if taken {
			if d.target < 0 {
				_, err := w.Kernel.TargetIndex(in.Target)
				return err
			}
			w.PC = int(d.target)
			return nil
		}
		w.PC++
		return nil
	case DClassExit:
		w.Exited = true
		res.Exited = true
		return nil
	case DClassBar:
		w.AtBarrier = true
		res.Barrier = true
		w.PC++
		return nil
	case DClassWmmaLoad:
		if err := w.execWmmaLoad(d, res); err != nil {
			return err
		}
		w.PC++
		return nil
	case DClassWmmaStore:
		if err := w.execWmmaStore(d, res); err != nil {
			return err
		}
		w.PC++
		return nil
	case DClassWmmaMMA:
		if err := w.execWmmaMMA(d); err != nil {
			return err
		}
		w.PC++
		return nil
	case DClassLd:
		if w.legacy {
			w.execLoad(d, res)
		} else {
			w.execLoadBatched(d, res)
		}
		w.PC++
		return nil
	case DClassSt:
		if w.legacy {
			w.execStore(d, res)
		} else {
			w.execStoreBatched(d, res)
		}
		w.PC++
		return nil
	}

	// ALU and SFU classes: direct table-driven dispatch on the decoded
	// kind; aluGeneric is the per-lane interpreted fallback.
	if err := aluTable[d.alu](w, d); err != nil {
		return err
	}
	w.PC++
	return nil
}

// branchVote evaluates the branch guard across enabled lanes.
func (w *Warp) branchVote(d *DInstr) (taken, uniform bool) {
	if d.predID < 0 {
		return true, true
	}
	nr := w.Kernel.NumRegs
	pid := int(d.predID)
	first := true
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !w.Active[lane] {
			continue
		}
		p := (w.regs[base+pid] != 0) != d.pneg
		if first {
			taken, first = p, false
			continue
		}
		if p != taken {
			return false, false
		}
	}
	return taken, true
}

func (w *Warp) execLoad(d *DInstr, res *Result) {
	in := d.In
	words := int(d.words)
	nbytes := uint64(d.membytes)
	buf := w.membuf[:nbytes]
	nr := w.Kernel.NumRegs
	addr0 := &d.srcs[0]
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		addr := d.val(w, base, lane, addr0)
		// Resolve the space once and dispatch directly instead of going
		// through Env.read (which would re-resolve per lane).
		sp, a := w.Env.resolveSpace(in.Space, addr)
		res.Accesses = append(res.Accesses, Access{Lane: lane, Addr: a, Bits: in.Width, Space: sp})
		if sp == Shared {
			copy(buf, w.Env.Shared[a:a+nbytes])
		} else {
			w.Env.Global.Read(a, buf)
		}
		if in.Width == 16 {
			w.regs[base+int(d.dsts[0])] = uint64(buf[0]) | uint64(buf[1])<<8
			continue
		}
		for i := 0; i < words; i++ {
			v := uint64(buf[4*i]) | uint64(buf[4*i+1])<<8 | uint64(buf[4*i+2])<<16 | uint64(buf[4*i+3])<<24
			w.regs[base+int(d.dsts[i])] = v
		}
	}
}

func (w *Warp) execStore(d *DInstr, res *Result) {
	in := d.In
	words := int(d.words)
	nbytes := uint64(d.membytes)
	buf := w.membuf[:nbytes]
	nr := w.Kernel.NumRegs
	addr0 := &d.srcs[0]
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		addr := d.val(w, base, lane, addr0)
		sp, a := w.Env.resolveSpace(in.Space, addr)
		res.Accesses = append(res.Accesses, Access{Lane: lane, Addr: a, Bits: in.Width, Space: sp, Store: true})
		if in.Width == 16 {
			v := d.val(w, base, lane, &d.srcs[1])
			buf[0], buf[1] = byte(v), byte(v>>8)
		} else {
			for i := 0; i < words; i++ {
				v := d.val(w, base, lane, &d.srcs[1+i])
				buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
		}
		if sp == Shared {
			copy(w.Env.Shared[a:a+nbytes], buf)
		} else {
			w.Env.Global.Write(a, buf)
		}
	}
}

// srcVal fetches one source operand with the lane's register base
// precomputed. The register path must stay small enough to inline into
// the ALU lane loops; immediates and special registers take the outlined
// slow path.
func (w *Warp) srcVal(base, lane int, o *Operand) uint64 {
	if o.Kind == OperandReg {
		return w.regs[base+o.Reg.ID]
	}
	return w.srcValSlow(lane, o)
}

//go:noinline
func (w *Warp) srcValSlow(lane int, o *Operand) uint64 {
	if o.Kind == OperandImm {
		return o.Imm
	}
	return w.sreg(lane, o.SReg)
}

func (w *Warp) execALU(lane int, in *Instr) error {
	base := lane * w.Kernel.NumRegs
	get := func(i int) uint64 { return w.srcVal(base, lane, &in.Src[i]) }
	set := func(v uint64) { w.regs[base+in.Dst[0].ID] = v }

	switch in.Op {
	case OpMov:
		set(truncate(get(0), in.Type))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax:
		v, err := arith(in.Op, in.Type, get(0), get(1))
		if err != nil {
			return err
		}
		set(v)
	case OpMulWide:
		set(uint64(uint32(get(0))) * uint64(uint32(get(1))))
	case OpMad:
		v, err := mad(in.Type, get(0), get(1), get(2))
		if err != nil {
			return err
		}
		set(v)
	case OpAnd:
		set(truncate(get(0)&get(1), in.Type))
	case OpOr:
		set(truncate(get(0)|get(1), in.Type))
	case OpXor:
		set(truncate(get(0)^get(1), in.Type))
	case OpShl:
		set(truncate(get(0)<<(get(1)&63), in.Type))
	case OpShr:
		if in.Type == S32 {
			set(uint64(uint32(int32(uint32(get(0))) >> (get(1) & 31))))
		} else {
			set(truncate(get(0)>>(get(1)&63), in.Type))
		}
	case OpCvt:
		v, err := convert(in.Type, in.SrcType, get(0))
		if err != nil {
			return err
		}
		set(v)
	case OpSetp:
		ok, err := compare(in.Type, in.Cmp, get(0), get(1))
		if err != nil {
			return err
		}
		if ok {
			set(1)
		} else {
			set(0)
		}
	case OpSelp:
		if get(2) != 0 {
			set(truncate(get(0), in.Type))
		} else {
			set(truncate(get(1), in.Type))
		}
	default:
		return fmt.Errorf("ptx: unhandled opcode %d", in.Op)
	}
	return nil
}

func truncate(v uint64, t Type) uint64 {
	switch t.Bits() {
	case 16:
		return v & 0xffff
	case 32:
		return v & 0xffffffff
	case 1:
		if v != 0 {
			return 1
		}
		return 0
	}
	return v
}

func f32bits(v uint64) float32      { return math.Float32frombits(uint32(v)) }
func bitsF32(f float32) uint64      { return uint64(math.Float32bits(f)) }
func h16(v uint64) fp16.Float16     { return fp16.FromBits(uint16(v)) }
func bitsH16(h fp16.Float16) uint64 { return uint64(h.Bits()) }

func arith(op Opcode, t Type, a, b uint64) (uint64, error) {
	switch t {
	case U32, U64:
		x, y := a, b
		if t == U32 {
			x, y = a&0xffffffff, b&0xffffffff
		}
		var v uint64
		switch op {
		case OpAdd:
			v = x + y
		case OpSub:
			v = x - y
		case OpMul:
			v = x * y
		case OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("ptx: integer division by zero")
			}
			v = x / y
		case OpRem:
			if y == 0 {
				return 0, fmt.Errorf("ptx: integer remainder by zero")
			}
			v = x % y
		case OpMin:
			v = min(x, y)
		case OpMax:
			v = max(x, y)
		}
		return truncate(v, t), nil
	case S32:
		x, y := int32(uint32(a)), int32(uint32(b))
		var v int32
		switch op {
		case OpAdd:
			v = x + y
		case OpSub:
			v = x - y
		case OpMul:
			v = x * y
		case OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("ptx: integer division by zero")
			}
			v = x / y
		case OpRem:
			if y == 0 {
				return 0, fmt.Errorf("ptx: integer remainder by zero")
			}
			v = x % y
		case OpMin:
			v = min(x, y)
		case OpMax:
			v = max(x, y)
		}
		return uint64(uint32(v)), nil
	case F32:
		x, y := f32bits(a), f32bits(b)
		var v float32
		switch op {
		case OpAdd:
			v = x + y
		case OpSub:
			v = x - y
		case OpMul:
			v = x * y
		case OpDiv:
			v = x / y
		case OpMin:
			v = float32(math.Min(float64(x), float64(y)))
		case OpMax:
			v = float32(math.Max(float64(x), float64(y)))
		}
		return bitsF32(v), nil
	case F16:
		x, y := h16(a), h16(b)
		var v fp16.Float16
		switch op {
		case OpAdd:
			v = x.Add(y)
		case OpSub:
			v = x.Sub(y)
		case OpMul:
			v = x.Mul(y)
		case OpDiv:
			v = x.Div(y)
		case OpMin:
			if x.Less(y) {
				v = x
			} else {
				v = y
			}
		case OpMax:
			if y.Less(x) {
				v = x
			} else {
				v = y
			}
		}
		return bitsH16(v), nil
	case F16X2:
		lo, err := arith(op, F16, a&0xffff, b&0xffff)
		if err != nil {
			return 0, err
		}
		hi, err := arith(op, F16, a>>16&0xffff, b>>16&0xffff)
		if err != nil {
			return 0, err
		}
		return hi<<16 | lo, nil
	}
	return 0, fmt.Errorf("ptx: arithmetic on unsupported type %v", t)
}

func mad(t Type, a, b, c uint64) (uint64, error) {
	switch t {
	case U32:
		return truncate(a*b+c, U32), nil
	case S32:
		return uint64(uint32(int32(uint32(a))*int32(uint32(b)) + int32(uint32(c)))), nil
	case U64:
		return a*b + c, nil
	case F32:
		// fma.rn.f32: a single rounding.
		return bitsF32(float32(math.FMA(float64(f32bits(a)), float64(f32bits(b)), float64(f32bits(c))))), nil
	case F16:
		return bitsH16(fp16.FMA(h16(a), h16(b), h16(c))), nil
	case F16X2:
		lo, _ := mad(F16, a&0xffff, b&0xffff, c&0xffff)
		hi, _ := mad(F16, a>>16&0xffff, b>>16&0xffff, c>>16&0xffff)
		return hi<<16 | lo, nil
	}
	return 0, fmt.Errorf("ptx: mad on unsupported type %v", t)
}

func compare(t Type, cmp CmpOp, a, b uint64) (bool, error) {
	var c int
	switch t {
	case U32:
		c = cmpOrd(a&0xffffffff, b&0xffffffff)
	case U64:
		c = cmpOrd(a, b)
	case S32:
		c = cmpOrd(int32(uint32(a)), int32(uint32(b)))
	case F32:
		x, y := f32bits(a), f32bits(b)
		if x != x || y != y { // NaN: only NE holds
			return cmp == CmpNE, nil
		}
		c = cmpOrd(x, y)
	case F16:
		x, y := h16(a), h16(b)
		if x.IsNaN() || y.IsNaN() {
			return cmp == CmpNE, nil
		}
		c = cmpOrd(x.Float32(), y.Float32())
	default:
		return false, fmt.Errorf("ptx: setp on unsupported type %v", t)
	}
	switch cmp {
	case CmpEQ:
		return c == 0, nil
	case CmpNE:
		return c != 0, nil
	case CmpLT:
		return c < 0, nil
	case CmpLE:
		return c <= 0, nil
	case CmpGT:
		return c > 0, nil
	default:
		return c >= 0, nil
	}
}

func cmpOrd[T int32 | uint64 | float32](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func convert(dst, src Type, v uint64) (uint64, error) {
	switch {
	case dst == src:
		return truncate(v, dst), nil
	case dst == U64 && src == U32:
		return v & 0xffffffff, nil
	case dst == U64 && src == S32:
		return uint64(int64(int32(uint32(v)))), nil
	case (dst == U32 || dst == S32) && src == U64:
		return v & 0xffffffff, nil
	case dst == U32 && src == S32, dst == S32 && src == U32:
		return v & 0xffffffff, nil
	case dst == F32 && src == F16:
		return bitsF32(h16(v).Float32()), nil
	case dst == F16 && src == F32:
		return bitsH16(fp16.FromFloat32(f32bits(v))), nil
	case dst == F32 && (src == U32 || src == S32):
		if src == S32 {
			return bitsF32(float32(int32(uint32(v)))), nil
		}
		return bitsF32(float32(uint32(v))), nil
	case (dst == U32 || dst == S32) && src == F32:
		return uint64(uint32(int32(f32bits(v)))), nil
	case dst == F16 && (src == U32 || src == S32):
		if src == S32 {
			return bitsH16(fp16.FromFloat64(float64(int32(uint32(v))))), nil
		}
		return bitsH16(fp16.FromFloat64(float64(uint32(v)))), nil
	}
	return 0, fmt.Errorf("ptx: unsupported cvt.%v.%v", dst, src)
}
