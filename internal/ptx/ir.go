// Package ptx implements the PTX-level instruction set the paper's
// GPGPU-Sim changes model: a register-based, warp-executed IR with the
// three wmma instructions of Section II-C (wmma.load, wmma.mma,
// wmma.store) alongside the ordinary arithmetic, memory, predicate,
// barrier and clock instructions GEMM kernels and the paper's
// microbenchmarks need.
//
// Kernels are built programmatically with Builder (the analog of writing
// CUDA and compiling to PTX) or parsed from a textual PTX-like syntax (see
// Parse). Execution is warp-granular: internal/gpu drives one Warp per
// simulated warp, calling Execute once per issued instruction, which makes
// the functional model execution-driven and the timing model
// timing-directed, the same split GPGPU-Sim uses.
package ptx

import (
	"fmt"

	"repro/internal/wmma"
)

// Type is a PTX value type. Registers are untyped 64-bit containers; the
// type lives on the instruction, as in PTX.
type Type int

const (
	U32 Type = iota
	S32
	U64
	F16
	F16X2 // two packed binary16 values in the low 32 bits
	F32
	Pred
)

func (t Type) String() string {
	switch t {
	case U32:
		return "u32"
	case S32:
		return "s32"
	case U64:
		return "u64"
	case F16:
		return "f16"
	case F16X2:
		return "f16x2"
	case F32:
		return "f32"
	case Pred:
		return "pred"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Bits returns the value width of the type in bits.
func (t Type) Bits() int {
	switch t {
	case F16:
		return 16
	case U64:
		return 64
	case Pred:
		return 1
	default:
		return 32
	}
}

// Space is a PTX state space for memory operations.
type Space int

const (
	Global Space = iota
	Shared
	// Generic resolves to Shared when the address falls inside the
	// shared-memory window and Global otherwise, like PTX generic
	// addressing. wmma.load/store use it.
	Generic
)

func (s Space) String() string {
	switch s {
	case Global:
		return "global"
	case Shared:
		return "shared"
	}
	return "generic"
}

// SharedBase is the virtual address where the shared-memory window of a
// thread block begins under generic addressing.
const SharedBase uint64 = 0x7fff_0000_0000

// SReg is a special (read-only) register.
type SReg int

const (
	SRegTidX SReg = iota
	SRegTidY
	SRegTidZ
	SRegNTidX
	SRegNTidY
	SRegNTidZ
	SRegCtaIDX
	SRegCtaIDY
	SRegCtaIDZ
	SRegNCtaIDX
	SRegNCtaIDY
	SRegNCtaIDZ
	SRegLaneID
	SRegWarpID
	SRegClock // %clock: the SM cycle counter (CS2R SR_CLOCKLO at SASS level)
)

func (s SReg) String() string {
	names := [...]string{"%tid.x", "%tid.y", "%tid.z", "%ntid.x", "%ntid.y", "%ntid.z",
		"%ctaid.x", "%ctaid.y", "%ctaid.z", "%nctaid.x", "%nctaid.y", "%nctaid.z",
		"%laneid", "%warpid", "%clock"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("%%sreg(%d)", int(s))
}

// Reg is a virtual register id within a kernel.
type Reg struct{ ID int }

func (r Reg) String() string { return fmt.Sprintf("%%r%d", r.ID) }

// Operand is a register, an immediate, or a special register source.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  uint64 // raw bits for immediates (f32 immediates are Float32bits)
	SReg SReg
}

// OperandKind discriminates Operand.
type OperandKind int

const (
	OperandReg OperandKind = iota
	OperandImm
	OperandSReg
)

// R wraps a register as an operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm builds an integer immediate operand.
func Imm(v uint64) Operand { return Operand{Kind: OperandImm, Imm: v} }

// ImmS builds a signed integer immediate operand.
func ImmS(v int64) Operand { return Operand{Kind: OperandImm, Imm: uint64(v)} }

// SR wraps a special register as an operand.
func SR(s SReg) Operand { return Operand{Kind: OperandSReg, SReg: s} }

func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return o.Reg.String()
	case OperandImm:
		return fmt.Sprintf("%d", int64(o.Imm))
	default:
		return o.SReg.String()
	}
}

// CmpOp is a setp comparison operator.
type CmpOp int

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c]
}

// Opcode enumerates the modeled PTX instructions.
type Opcode int

const (
	OpMov Opcode = iota
	OpAdd
	OpSub
	OpMul
	OpMulWide // mul.wide.u32: u32 × u32 → u64
	OpMad     // d = a*b + c (fused for floats)
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpCvt  // convert between types (Type is destination, SrcType source)
	OpSetp // predicate = a <cmp> b
	OpSelp // d = p ? a : b
	OpLd
	OpSt
	OpBar // bar.sync 0
	OpBra // branch to Target (optionally predicated)
	OpExit
	OpWmmaLoad  // wmma.load.{a,b,c}
	OpWmmaStore // wmma.store.d
	OpWmmaMMA   // wmma.mma
)

// Instr is one PTX instruction.
type Instr struct {
	Op      Opcode
	Type    Type // operation type (destination type for cvt)
	SrcType Type // source type for cvt
	Cmp     CmpOp

	Dst  []Reg // most ops have one; wmma.load/mma write whole fragments
	Src  []Operand
	Pred *Reg // optional guard predicate: execute lane only when true...
	PNeg bool // ...or, with PNeg, when false

	// Memory attributes (OpLd/OpSt).
	Space Space
	Width int // access width in bits: 16, 32, 64 or 128

	// wmma attributes, precomputed at build time: WMap is the fragment
	// mapping for load/store and the C-operand mapping for mma; mma
	// additionally carries the A, B and D mappings used to gather its
	// source fragments and scatter its result.
	WMap                *wmma.Mapping
	WMapA, WMapB, WMapD *wmma.Mapping
	WConfig             wmma.Config

	Target  string // branch target label
	Comment string
}

// appendScoreboardRegs collects the deduplicated register IDs an
// instruction reads or writes (register sources, destinations and the
// guard predicate), for RAW/WAW hazard checks. It runs once per static
// instruction, at decode time; the timing model reads the cached copy
// through DInstr.ScoreboardRegs.
func appendScoreboardRegs(ids []int32, in *Instr) []int32 {
	add := func(id int) {
		for _, x := range ids {
			if int(x) == id {
				return
			}
		}
		ids = append(ids, int32(id))
	}
	for _, o := range in.Src {
		if o.Kind == OperandReg {
			add(o.Reg.ID)
		}
	}
	for _, r := range in.Dst {
		add(r.ID)
	}
	if in.Pred != nil {
		add(in.Pred.ID)
	}
	return ids
}

// Kernel is a compiled PTX entry function.
type Kernel struct {
	Name string
	// Params are the kernel parameters in declaration order; at launch
	// each is materialized into the register of the same index before the
	// first instruction.
	Params      []Param
	ParamRegs   []Reg
	Instrs      []Instr
	Labels      map[string]int
	NumRegs     int
	SharedBytes int // static .shared allocation per CTA

	// prog is the kernel's decoded-instruction cache (see decode.go):
	// one decode per kernel, shared read-only by every warp of every
	// launch. Builder.Build populates it; hand-assembled kernels decode
	// privately per warp in NewWarp.
	prog []DInstr
}

// Program returns the kernel's decoded instruction cache, or nil for
// hand-assembled kernels that skipped Builder.Build.
func (k *Kernel) Program() []DInstr { return k.prog }

// Param is one kernel parameter.
type Param struct {
	Name string
	Type Type
}

// TargetIndex resolves a label to an instruction index.
func (k *Kernel) TargetIndex(label string) (int, error) {
	i, ok := k.Labels[label]
	if !ok {
		return 0, fmt.Errorf("ptx: kernel %s has no label %q", k.Name, label)
	}
	return i, nil
}
