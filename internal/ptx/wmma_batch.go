package ptx

import (
	"sync/atomic"

	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// The batched wmma fragment path. After PR 4 the tensor-core
// instructions were the last per-element hot loops: wmma.load/store
// resolved the state space and called the Memory interface once per
// fragment element per lane, and wmma.mma reconstructed its operand
// tiles (and scattered D) one register at a time through per-element
// operand dispatch, layout-branching Matrix indexing and a per-element
// precision switch. The batched path gives fragments the same
// struct-of-arrays treatment ld/st received: the decoded instruction
// carries per-slot lane vectors derived from the wmma.Mapping
// (wmma.SlotVecs), addresses are generated per lane in one pass, data
// moves in bulk over maximal element runs (one Memory call per run),
// and gather/scatter walk slots in the outer loop with the precision
// switch hoisted, indexing the tile storage through precomputed linear
// offsets. The per-lane path remains for warps with guard predicates or
// partial activity, for mappings whose lanes disagree on fragment
// structure, and behind the LegacyFragmentPath knob.

// legacyFragmentPath, when set, routes warps constructed afterwards
// through the per-element wmma fragment path instead of the batched
// slot-vector path. It exists so tests can assert the batched path is
// semantics-preserving (bit-identical registers, memory, Stats and
// experiment tables) and so the ablation benchmark can quantify the
// difference; production code never sets it.
//
//simlint:processknob equivalence/ablation knob: CLI plumbing and Swap-helper tests only, never flipped while simulators run
var legacyFragmentPath atomic.Bool

// LegacyFragmentPath switches subsequently constructed warps between
// the batched wmma fragment path (the default) and the per-element
// legacy path, mirroring LegacyAccessPath.
func LegacyFragmentPath(on bool) { legacyFragmentPath.Store(on) }

// SwapLegacyFragmentPath sets the knob and returns the restore that
// puts the previous value back; the only sanctioned test shape
// (defer ptx.SwapLegacyFragmentPath(true)() or t.Cleanup).
func SwapLegacyFragmentPath(on bool) (restore func()) {
	prev := legacyFragmentPath.Swap(on)
	return func() { legacyFragmentPath.Store(prev) }
}

// LegacyFragmentPathEnabled reports the knob's current setting. CLI
// tests use it to pin that -legacyfrag restores the process-global on
// return instead of leaking across in-process invocations.
func LegacyFragmentPathEnabled() bool { return legacyFragmentPath.Load() }

// fragPlan is the decoded form of one wmma.Mapping: per-slot lane
// vectors of precomputed tile offsets, built once per static
// instruction (decode time) and shared read-only by every warp — so
// the type is frozen outside planFragment.
//
//simlint:frozen
type fragPlan struct {
	slots      int
	rows, cols int
	// idx[slot][lane] is the linear offset of the lane's element in a
	// tight row-major rows×cols tile (the executor's scratch layout).
	idx [][32]int32
	// major/minor[slot][lane] factor the element's memory offset under
	// the mapping's layout: offset = major·ld + minor for leading
	// dimension ld.
	major, minor [][32]int32
}

// planFragment builds the fragment plan, or returns nil when the
// mapping is absent or its lanes disagree on fragment structure — the
// executor then keeps the per-lane path for this instruction.
//
//simlint:ctor
func planFragment(m *wmma.Mapping) *fragPlan {
	if m == nil {
		return nil
	}
	v := m.SlotVecs()
	if !v.Uniform {
		return nil
	}
	rows, cols := m.Shape.Dims(m.Op)
	p := &fragPlan{slots: v.Slots, rows: rows, cols: cols}
	p.idx = make([][32]int32, p.slots)
	p.major = make([][32]int32, p.slots)
	p.minor = make([][32]int32, p.slots)
	for slot := 0; slot < p.slots; slot++ {
		for lane := 0; lane < 32; lane++ {
			r, c := int32(v.Row[slot][lane]), int32(v.Col[slot][lane])
			p.idx[slot][lane] = r*int32(cols) + c
			if m.Layout == tensor.RowMajor {
				p.major[slot][lane], p.minor[slot][lane] = r, c
			} else {
				p.major[slot][lane], p.minor[slot][lane] = c, r
			}
		}
	}
	return p
}

// fragVec reports whether the instruction takes the batched fragment
// path: knob off, no guard predicate, fully populated warp. Callers
// additionally require the relevant plans to exist.
func (w *Warp) fragVec(d *DInstr) bool {
	return !w.legacyFrag && d.predID < 0 && w.nLanes == 32
}

// fragLaneAddrs fills the reusable per-lane address scratch from the
// plan's factored offsets — the same arithmetic as the per-lane path
// (memOffsetFor), so the two paths produce bit-identical addresses for
// any stride, including pathological ones.
//
//simlint:hotpath
func (w *Warp) fragLaneAddrs(p *fragPlan, lane, ld int, base, elemBytes uint64) []uint64 {
	addrs := w.laneAddrs(p.slots)
	for s := 0; s < p.slots; s++ {
		off := int(p.major[s][lane])*ld + int(p.minor[s][lane])
		addrs[s] = base + uint64(off)*elemBytes
	}
	return addrs
}

// execWmmaLoadVec is the batched wmma.load data movement: per lane, one
// address pass through the plan, then one Env read per maximal run of
// byte-consecutive elements, unpacked into the destination registers.
// Access emission is shared with the per-lane path (emitFragAccesses),
// so the timing model sees an identical stream.
func (w *Warp) execWmmaLoadVec(d *DInstr, res *Result, base, stride uint64) {
	in := d.In
	m := in.WMap
	p := d.wplan
	elemBytes := uint64(d.membytes)
	signExt := elemBytes == 1 && (m.Elem == wmma.S8 || m.Elem == wmma.S4)
	batched := !w.legacy
	for lane := 0; lane < 32; lane++ {
		addrs := w.fragLaneAddrs(p, lane, int(stride), base, elemBytes)
		forEachFragRun(addrs, elemBytes, func(i, j int) {
			w.loadFragRun(d, lane, addrs[i:j], i, elemBytes, signExt)
		})
		sp, _ := w.Env.resolveSpace(in.Space, addrs[0])
		batched = w.emitFragAccesses(res, batched, lane, addrs, m.Elem.Bits(), sp, false)
	}
}

// forEachFragRun calls f on each maximal [i,j) run of byte-consecutive
// elements — the data-movement granularity. The access emission
// (fragPieces) derives its own runs deliberately: it works in element
// *bits* (sub-byte s4/u4 elements are byte-stored but 4-bit-shaped, so
// their SASS-level pieces never merge) and splits at 128-bit piece
// boundaries, neither of which constrains how many bytes one Env call
// may move.
func forEachFragRun(addrs []uint64, nb uint64, f func(i, j int)) {
	for i := 0; i < len(addrs); {
		j := i + 1
		for j < len(addrs) && addrs[j] == addrs[j-1]+nb {
			j++
		}
		f(i, j)
		i = j
	}
}

// fragRunUniform reports whether a run's resolved endpoints prove the
// whole run lives in one state space at contiguous addresses — the bulk
// data-movement precondition. Matching endpoints alone are not enough
// under generic addressing: a run can contain the entire shared window
// with both endpoints resolving to Global, so Global endpoints
// additionally require the raw span to miss the window.
func (w *Warp) fragRunUniform(space Space, run []uint64, nb, total uint64, sp Space, a0, aE uint64, spE Space) bool {
	if sp != spE || a0 > aE || aE-a0 != total-nb {
		return false
	}
	if space == Generic && sp == Global {
		lo, hi := run[0], run[len(run)-1]+nb
		limit := SharedBase + uint64(len(w.Env.Shared))
		if lo < limit && hi > SharedBase {
			return false
		}
	}
	return true
}

// loadFragRun moves one lane's run of consecutive fragment elements
// from memory into registers: one bulk read when the whole run resolves
// into a single state space, else the per-element fallback (a run
// straddling or containing the generic shared-window boundary must read
// each element where the per-lane path would).
//
//simlint:hotpath
func (w *Warp) loadFragRun(d *DInstr, lane int, run []uint64, slot0 int, nb uint64, signExt bool) {
	in := d.In
	total := uint64(len(run)) * nb
	sp, a0 := w.Env.resolveSpace(in.Space, run[0])
	spE, aE := w.Env.resolveSpace(in.Space, run[len(run)-1])
	if w.fragRunUniform(in.Space, run, nb, total, sp, a0, aE, spE) {
		buf := w.bulk[:total]
		if sp == Shared {
			copy(buf, w.Env.Shared[a0:a0+total])
		} else {
			w.Env.Global.Read(a0, buf)
		}
		for i := range run {
			w.setReg(lane, in.Dst[slot0+i], w.unpackFragElem(buf[uint64(i)*nb:], nb, signExt))
		}
		return
	}
	buf := w.membuf[:nb]
	for i, a := range run {
		w.Env.read(in.Space, a, buf)
		w.setReg(lane, in.Dst[slot0+i], w.unpackFragElem(buf, nb, signExt))
	}
}

// unpackFragElem assembles one fragment element's register value from
// little-endian bytes, with the signed sub-32-bit extension of the
// per-lane path.
func (w *Warp) unpackFragElem(src []byte, nb uint64, signExt bool) uint64 {
	var v uint64
	for b := int(nb) - 1; b >= 0; b-- {
		v = v<<8 | uint64(src[b])
	}
	if signExt {
		// Signed integer operands live in registers as s32 values.
		v = uint64(uint32(int32(int8(v))))
	}
	return v
}

// execWmmaStoreVec is the batched wmma.store data movement: register
// values are packed per run and written with one Env write per run,
// preserving the per-lane path's lane-major, slot-ascending write order
// (runs are slot-ascending and internally disjoint).
func (w *Warp) execWmmaStoreVec(d *DInstr, res *Result, base, stride uint64) {
	in := d.In
	m := in.WMap
	p := d.wplan
	elemBytes := uint64(d.membytes)
	batched := !w.legacy
	nr := w.Kernel.NumRegs
	for lane := 0; lane < 32; lane++ {
		addrs := w.fragLaneAddrs(p, lane, int(stride), base, elemBytes)
		forEachFragRun(addrs, elemBytes, func(i, j int) {
			w.storeFragRun(d, lane*nr, lane, addrs[i:j], i, elemBytes)
		})
		sp, _ := w.Env.resolveSpace(in.Space, addrs[0])
		batched = w.emitFragAccesses(res, batched, lane, addrs, m.Elem.Bits(), sp, true)
	}
}

// storeFragRun packs one lane's run of consecutive fragment elements
// and writes it with a single Env write when the run resolves into one
// state space, else element by element.
//
//simlint:hotpath
func (w *Warp) storeFragRun(d *DInstr, base, lane int, run []uint64, slot0 int, nb uint64) {
	in := d.In
	total := uint64(len(run)) * nb
	sp, a0 := w.Env.resolveSpace(in.Space, run[0])
	spE, aE := w.Env.resolveSpace(in.Space, run[len(run)-1])
	if w.fragRunUniform(in.Space, run, nb, total, sp, a0, aE, spE) {
		buf := w.bulk[:total]
		for i := range run {
			v := d.val(w, base, lane, &d.srcs[2+slot0+i])
			packFragElem(buf[uint64(i)*nb:], nb, v)
		}
		if sp == Shared {
			copy(w.Env.Shared[a0:a0+total], buf)
		} else {
			w.Env.Global.Write(a0, buf)
		}
		return
	}
	buf := w.membuf[:nb]
	for i, a := range run {
		v := d.val(w, base, lane, &d.srcs[2+slot0+i])
		packFragElem(buf, nb, v)
		w.Env.write(in.Space, a, buf)
	}
}

// packFragElem serializes one fragment element into little-endian bytes.
func packFragElem(dst []byte, nb, v uint64) {
	for b := 0; b < int(nb); b++ {
		dst[b] = byte(v >> (8 * b))
	}
}

// gatherTileVec is the batched gatherTile: slots in the outer loop (the
// fragment register is warp-uniform per slot), lanes in a tight inner
// loop, the precision switch hoisted, and tile elements addressed
// through the plan's precomputed linear offsets. Duplicate fragment
// copies (Volta A/B hold every element in two lanes) must agree — the
// wmma architectural invariant wmma.load establishes — so the write
// order between the two paths is immaterial.
//
//simlint:hotpath
func (w *Warp) gatherTileVec(d *DInstr, p *fragPlan, srcOff int, elem wmma.Precision, slot int) *tensor.Matrix {
	t := w.scratchTile(p.rows, p.cols, slot)
	nr := w.Kernel.NumRegs
	for s := 0; s < p.slots; s++ {
		r := int(d.srcs[srcOff+s].reg)
		idx := &p.idx[s]
		switch elem {
		case wmma.F16:
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				t.SetLinear(int(idx[lane]), fp16.FromBits(uint16(w.regs[base+r])).Float64())
			}
		case wmma.F32:
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				t.SetLinear(int(idx[lane]), float64(f32bits(w.regs[base+r])))
			}
		default: // integer operand types live as s32 values in registers
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				t.SetLinear(int(idx[lane]), float64(int32(uint32(w.regs[base+r]))))
			}
		}
	}
	return t
}

// scatterTileVec is the batched D scatter: the inverse of
// gatherTileVec, writing encoded tile elements into the per-slot
// destination registers.
//
//simlint:hotpath
func (w *Warp) scatterTileVec(d *DInstr, p *fragPlan, elem wmma.Precision, t *tensor.Matrix) {
	nr := w.Kernel.NumRegs
	for s := 0; s < p.slots; s++ {
		r := int(d.dsts[s])
		idx := &p.idx[s]
		switch elem {
		case wmma.F16:
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				w.regs[base+r] = uint64(fp16.FromFloat64(t.AtLinear(int(idx[lane]))).Bits())
			}
		case wmma.F32:
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				w.regs[base+r] = bitsF32(float32(t.AtLinear(int(idx[lane]))))
			}
		default:
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				w.regs[base+r] = uint64(uint32(int32(t.AtLinear(int(idx[lane])))))
			}
		}
	}
}

// execWmmaMMAVec runs wmma.mma through the batched fragment views: SoA
// gathers, the warp's reusable quantization scratch, and the SoA
// scatter. Arithmetic (wmma.MMAIntoBuf) is byte-for-byte the per-lane
// path's MMAInto.
func (w *Warp) execWmmaMMAVec(d *DInstr, nA, nB int) error {
	cfg := d.In.WConfig
	aTile := w.gatherTileVec(d, d.wA, 0, cfg.AType, 0)
	bTile := w.gatherTileVec(d, d.wB, nA, cfg.AType, 1)
	cTile := w.gatherTileVec(d, d.wC, nA+nB, cfg.CType, 2)
	dTile := w.scratchTile(cfg.Shape.M, cfg.Shape.N, 3)
	if !cfg.AType.IsInt() {
		// Integer configs dispatch to the exact int datapath, which
		// never quantizes through fp16 scratch.
		if need := wmma.QuantBufLen(cfg); cap(w.quantBuf) < need {
			w.quantBuf = make([]fp16.Float16, need)
		}
	}
	if err := wmma.MMAIntoBuf(cfg, aTile, bTile, cTile, dTile, w.quantBuf); err != nil {
		return err
	}
	w.scatterTileVec(d, d.wD, cfg.DType, dTile)
	return nil
}
