package ptx

import (
	"fmt"

	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Execution of the three wmma instructions. wmma.load/store move fragment
// elements between memory and registers following the fragment-to-thread
// mapping reverse engineered in Section III-B; wmma.mma reconstructs the
// operand tiles from the fragments, computes D = A×B + C with the tensor
// core arithmetic of internal/wmma, and scatters D back into registers.

// uniformOperand reads the i-th decoded source operand, which must hold
// the same value in every enabled lane (wmma base addresses and strides
// are warp-level values).
func (w *Warp) uniformOperand(d *DInstr, i int) (uint64, error) {
	o := &d.srcs[i]
	var v uint64
	nr := w.Kernel.NumRegs
	first := true
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		lv := d.val(w, base, lane, o)
		if first {
			v, first = lv, false
			continue
		}
		if lv != v {
			return 0, fmt.Errorf("ptx: wmma operand %v not warp-uniform", d.In.Src[i])
		}
	}
	if first {
		return 0, fmt.Errorf("ptx: wmma executed with no enabled lanes")
	}
	return v, nil
}

// fragPiece is one ≤128-bit piece of a lane's fragment access: the
// coalesced SASS-level access shape of Section III-C (maximal
// consecutive element runs split into ≤128-bit pieces). Both the batched
// and per-lane emitters consume the same piece list, so the two access
// paths cannot drift apart.
type fragPiece struct {
	addr uint64
	bits int32
}

// fragPieces computes one lane's pieces into the warp's reusable scratch.
func (w *Warp) fragPieces(addrs []uint64, elemBits int) []fragPiece {
	out := w.pieceBuf[:0]
	i := 0
	for i < len(addrs) {
		j := i + 1
		for j < len(addrs) && addrs[j] == addrs[j-1]+uint64(elemBits/8) {
			j++
		}
		bits := (j - i) * elemBits
		base := addrs[i]
		for bits > 0 {
			b := bits
			if b > 128 {
				b = 128
			}
			out = append(out, fragPiece{addr: base, bits: int32(b)})
			base += uint64(b / 8)
			bits -= b
		}
		i = j
	}
	w.pieceBuf = out
	return out
}

// fragBatch commits one lane's fragment pieces into the slot-aligned
// batched groups: piece k of every lane shares group k, which holds the
// warp's k-th piece addresses as one vector. ok is false — and the batch
// untouched — when this lane's piece structure (width or resolved space
// per slot) deviates from the groups earlier lanes laid down; the caller
// then falls back to the per-lane Access list, whose coalescing order
// the slot alignment exists to preserve.
func fragBatch(batch []WarpAccess, lane int, pieces []fragPiece, space Space, store bool) ([]WarpAccess, bool) {
	for slot := range pieces {
		if slot >= len(batch) {
			break
		}
		g := &batch[slot]
		if g.Bits != pieces[slot].bits || g.Space != space {
			return batch, false
		}
	}
	for slot := range pieces {
		if slot < len(batch) {
			g := &batch[slot]
			g.Mask |= 1 << lane
			g.Addr[lane] = pieces[slot].addr
			continue
		}
		var g *WarpAccess
		batch, g = appendBatchSlot(batch)
		g.Mask = 1 << lane
		g.Addr[lane] = pieces[slot].addr
		g.Bits = pieces[slot].bits
		g.Space = space
		g.Store = store
	}
	return batch, true
}

// emitFragAccesses routes one lane's fragment pieces onto the batched or
// legacy path. batched is carried across the instruction's lanes: once a
// lane's structure forces the legacy fallback, the groups built so far
// are expanded (in the exact lane-major order the legacy path would have
// produced) and every remaining lane appends per-lane Accesses.
func (w *Warp) emitFragAccesses(res *Result, batched bool, lane int, addrs []uint64, elemBits int, space Space, store bool) bool {
	pieces := w.fragPieces(addrs, elemBits)
	if batched {
		var ok bool
		if res.Batch, ok = fragBatch(res.Batch, lane, pieces, space, store); ok {
			return true
		}
		res.Accesses = expandBatch(res.Accesses, res.Batch)
		res.Batch = res.Batch[:0]
	}
	for _, p := range pieces {
		res.Accesses = append(res.Accesses, Access{
			Lane: lane, Addr: p.addr, Bits: int(p.bits), Space: space, Store: store,
		})
	}
	return false
}

// laneAddrs returns the reusable per-lane address scratch, grown to n.
func (w *Warp) laneAddrs(n int) []uint64 {
	if cap(w.addrBuf) < n {
		w.addrBuf = make([]uint64, n)
	}
	return w.addrBuf[:n]
}

func (w *Warp) execWmmaLoad(d *DInstr, res *Result) error {
	in := d.In
	m := in.WMap
	base, err := w.uniformOperand(d, 0)
	if err != nil {
		return err
	}
	stride, err := w.uniformOperand(d, 1)
	if err != nil {
		return err
	}
	elemBytes := uint64(d.membytes)
	if w.fragVec(d) && d.wplan != nil {
		w.execWmmaLoadVec(d, res, base, stride)
		return nil
	}
	buf := w.membuf[:4]
	batched := !w.legacy
	for lane := 0; lane < 32; lane++ {
		if !w.laneEnabled(lane, in) {
			continue
		}
		addrs := w.laneAddrs(len(m.Lanes[lane]))
		for slot, c := range m.Lanes[lane] {
			off := memOffsetFor(m, c, int(stride))
			addr := base + uint64(off)*elemBytes
			addrs[slot] = addr
			w.Env.read(in.Space, addr, buf[:elemBytes])
			var v uint64
			for b := int(elemBytes) - 1; b >= 0; b-- {
				v = v<<8 | uint64(buf[b])
			}
			// Signed integer operands live in registers as s32 values.
			if elemBytes == 1 && (m.Elem == wmma.S8 || m.Elem == wmma.S4) {
				v = uint64(uint32(int32(int8(v))))
			}
			w.setReg(lane, in.Dst[slot], v)
		}
		sp, _ := w.Env.resolveSpace(in.Space, addrs[0])
		batched = w.emitFragAccesses(res, batched, lane, addrs, m.Elem.Bits(), sp, false)
	}
	return nil
}

func (w *Warp) execWmmaStore(d *DInstr, res *Result) error {
	in := d.In
	m := in.WMap
	base, err := w.uniformOperand(d, 0)
	if err != nil {
		return err
	}
	stride, err := w.uniformOperand(d, 1)
	if err != nil {
		return err
	}
	elemBytes := uint64(d.membytes)
	if w.fragVec(d) && d.wplan != nil {
		w.execWmmaStoreVec(d, res, base, stride)
		return nil
	}
	buf := w.membuf[:4]
	batched := !w.legacy
	for lane := 0; lane < 32; lane++ {
		if !w.laneEnabled(lane, in) {
			continue
		}
		addrs := w.laneAddrs(len(m.Lanes[lane]))
		for slot, c := range m.Lanes[lane] {
			off := memOffsetFor(m, c, int(stride))
			addr := base + uint64(off)*elemBytes
			addrs[slot] = addr
			v := w.operand(lane, &in.Src[2+slot])
			for b := 0; b < int(elemBytes); b++ {
				buf[b] = byte(v >> (8 * b))
			}
			w.Env.write(in.Space, addr, buf[:elemBytes])
		}
		sp, _ := w.Env.resolveSpace(in.Space, addrs[0])
		batched = w.emitFragAccesses(res, batched, lane, addrs, m.Elem.Bits(), sp, true)
	}
	return nil
}

// memOffsetFor computes the element offset of coord c in a tile stored
// with the mapping's layout and leading dimension ld.
func memOffsetFor(m *wmma.Mapping, c wmma.Coord, ld int) int {
	if m.Layout == tensor.RowMajor {
		return c.Row*ld + c.Col
	}
	return c.Col*ld + c.Row
}

func (w *Warp) execWmmaMMA(d *DInstr) error {
	in := d.In
	cfg := in.WConfig
	nA := int(d.fragA)
	nB := int(d.fragB)
	if w.fragVec(d) && d.wA != nil && d.wB != nil && d.wC != nil && d.wD != nil {
		return w.execWmmaMMAVec(d, nA, nB)
	}
	aTile := w.gatherTile(in, in.WMapA, 0, cfg.AType, 0)
	bTile := w.gatherTile(in, in.WMapB, nA, cfg.AType, 1)
	cTile := w.gatherTile(in, in.WMap, nA+nB, cfg.CType, 2)
	dTile := w.scratchTile(cfg.Shape.M, cfg.Shape.N, 3)
	if err := wmma.MMAInto(cfg, aTile, bTile, cTile, dTile); err != nil {
		return err
	}
	w.scatterTile(in, in.WMapD, cfg.DType, dTile)
	return nil
}

// scatterTile writes a result tile into the destination fragment
// registers via the mapping — the per-lane reference the batched
// scatterTileVec must match.
func (w *Warp) scatterTile(in *Instr, m *wmma.Mapping, elem wmma.Precision, t *tensor.Matrix) {
	for lane := 0; lane < 32; lane++ {
		if !w.laneEnabled(lane, in) {
			continue
		}
		for slot, c := range m.Lanes[lane] {
			w.setReg(lane, in.Dst[slot], encodeElem(elem, t.At(c.Row, c.Col)))
		}
	}
}

// scratchTile returns the warp's reusable slot-th tile matrix, reallocated
// when the shape changes. Safe only when the caller overwrites every
// element; a partially active warp falls back to a fresh zeroed matrix in
// gatherTile.
func (w *Warp) scratchTile(rows, cols, slot int) *tensor.Matrix {
	t := w.tiles[slot]
	if t == nil || t.Rows != rows || t.Cols != cols {
		t = tensor.New(rows, cols, tensor.RowMajor)
		w.tiles[slot] = t
	}
	return t
}

// gatherTile reconstructs an operand tile from fragment registers. For
// Volta A/B every element exists in two lanes holding identical values;
// either copy serves. A fully active warp covers every tile element, so
// the reusable scratch tile needs no clearing between instructions.
func (w *Warp) gatherTile(in *Instr, m *wmma.Mapping, srcOff int, elem wmma.Precision, slot int) *tensor.Matrix {
	rows, cols := m.Shape.Dims(m.Op)
	var t *tensor.Matrix
	if w.nLanes == 32 && in.Pred == nil {
		t = w.scratchTile(rows, cols, slot)
	} else {
		t = tensor.New(rows, cols, tensor.RowMajor)
	}
	for lane := 0; lane < 32; lane++ {
		if !w.laneEnabled(lane, in) {
			continue
		}
		for slot, c := range m.Lanes[lane] {
			bits := w.operand(lane, &in.Src[srcOff+slot])
			t.Set(c.Row, c.Col, decodeElem(elem, bits))
		}
	}
	return t
}

// decodeElem converts a register's raw bits into the host float64 value of
// an element of the given precision.
func decodeElem(p wmma.Precision, bits uint64) float64 {
	switch p {
	case wmma.F16:
		return fp16.FromBits(uint16(bits)).Float64()
	case wmma.F32:
		return float64(f32bits(bits))
	default: // integer operand types live as s32 values in registers
		return float64(int32(uint32(bits)))
	}
}

// encodeElem converts a host float64 element into register bits of the
// given precision.
func encodeElem(p wmma.Precision, v float64) uint64 {
	switch p {
	case wmma.F16:
		return uint64(fp16.FromFloat64(v).Bits())
	case wmma.F32:
		return bitsF32(float32(v))
	default:
		return uint64(uint32(int32(v)))
	}
}

// cuda4BitBytes returns the device storage bytes of one fragment element:
// sub-byte types (s4/u4) are stored one element per byte in this model.
func cuda4BitBytes(p wmma.Precision) int {
	b := p.Bits() / 8
	if b == 0 {
		b = 1
	}
	return b
}
