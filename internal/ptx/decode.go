package ptx

import (
	"math"
	"sync/atomic"

	"repro/internal/fp16"
)

// The decoded-instruction cache. Interpreting an Instr re-classifies its
// operand kinds, register indices and (op, type) pair on every dynamic
// execution — per warp, per lane — which dominates SIMT GEMM simulation
// (the fig17 bottleneck). Decoding resolves all of that once per static
// instruction into a flat DInstr: operands become pre-resolved register
// indices or immediates, the guard predicate becomes a register index,
// branch targets become instruction indexes, and the ALU (op, type)
// switch chains collapse into an index into a dispatch table of
// specialized warp-wide executors. The decoded program is cached on the
// Kernel — one decode per kernel, shared by every warp of every launch,
// never per warp — and is immutable after construction, which makes the
// cache safe under the parallel experiment engine's worker pools.

// DClass is the coarse execution class of a decoded instruction. The
// timing simulator dispatches its issue/unit decisions on the class
// instead of re-switching on Opcode every scheduler visit.
type DClass uint8

const (
	DClassALU DClass = iota
	DClassSFU        // div/rem: issues on the special-function unit
	DClassLd
	DClassSt
	DClassBar
	DClassBra
	DClassExit
	DClassWmmaLoad
	DClassWmmaStore
	DClassWmmaMMA
)

// srcOp is a pre-resolved source operand: the Operand's discriminated
// union flattened so the hot register path is a single array index.
type srcOp struct {
	kind OperandKind
	reg  int32
	sreg SReg
	imm  uint64
}

// DInstr is the decoded, execution-ready form of one Instr. In points
// back to the source instruction for the attributes execution does not
// need per lane (wmma mappings, timing configuration, diagnostics).
// Decoded programs are cached per kernel and shared by every warp and
// every concurrent simulator, so the type is frozen: after decodeInstr
// returns, nothing may write its fields.
//
//simlint:frozen
type DInstr struct {
	In    *Instr
	Class DClass

	alu    aluKind
	shape  srcShape // two-source operand shape for the dBin fast paths
	cmp    CmpOp    // comparison operator (setp)
	mask   uint64   // destination truncation mask for integer/bitwise ops
	cvtFn  func(uint64) uint64
	dstID  int32 // first destination register, -1 if none
	predID int32 // guard predicate register, -1 = unguarded
	pneg   bool
	srcs   []srcOp
	dsts   []int32 // all destination registers, in Instr.Dst order
	sb     []int32 // deduplicated scoreboard registers
	// The packed scoreboard set: sbMask holds the registers of sb with
	// IDs < 64 as a bitmask, sbWide the (rare) spill of larger IDs. The
	// timing model's hazard screen — and the issue-time hazard-clear
	// computation that parks blocked warps straight into the wake heap —
	// walk the mask's set bits instead of ranging the slice.
	sbMask uint64
	sbWide []int32
	target int32 // pre-resolved branch target index, -1 = unresolved

	membytes int32 // ld/st access bytes (wmma: fragment element bytes)
	words    int32 // ld/st 32-bit word count
	fragA    int32 // wmma.mma A-fragment length
	fragB    int32 // wmma.mma B-fragment length

	// Fragment plans for the batched wmma path (see wmma_batch.go):
	// wplan decodes In.WMap for wmma.load/store; wA/wB/wC/wD decode the
	// four wmma.mma mappings. nil keeps the per-lane path (missing
	// mapping, non-uniform fragment structure, or non-register mma
	// operands).
	wplan          *fragPlan
	wA, wB, wC, wD *fragPlan

	// ld/st address-shape classification for the batched access path:
	// the static state space (Generic resolves per execution) and the
	// address register when the base operand is a plain register
	// (-1 for immediate or special-register bases).
	space   Space
	addrReg int32
}

// ScoreboardRegs returns the deduplicated register IDs the instruction
// reads or writes, precomputed at decode time for the timing model's
// RAW/WAW hazard check.
func (d *DInstr) ScoreboardRegs() []int32 { return d.sb }

// ScoreboardSet returns the packed form of ScoreboardRegs: a bitmask of
// the register IDs below 64 plus the spill slice of larger IDs (nil for
// the kernels this repository generates, which stay under 64 virtual
// registers). Hazard screens iterate the mask's set bits — one
// TrailingZeros per register, no slice header chase.
func (d *DInstr) ScoreboardSet() (mask uint64, wide []int32) { return d.sbMask, d.sbWide }

// DstRegs returns the destination register IDs, in declaration order.
func (d *DInstr) DstRegs() []int32 { return d.dsts }

// interpretALU, when set, decodes every ALU instruction to the per-lane
// interpreted path instead of the table-driven dispatch. It exists so
// tests can verify the decoded cache is semantics-preserving; it affects
// only kernels decoded after the toggle.
//
//simlint:processknob equivalence knob: CLI plumbing and Swap-helper tests only, never flipped while simulators run
var interpretALU atomic.Bool

// InterpretALU switches subsequently decoded kernels between the
// table-driven decoded ALU dispatch (the default) and the per-lane
// interpreted path. Tests use it to assert both executions produce
// identical results; production code never calls it.
func InterpretALU(on bool) { interpretALU.Store(on) }

// SwapInterpretALU sets the knob and returns the restore that puts the
// previous value back; the only sanctioned test shape
// (defer ptx.SwapInterpretALU(true)() or t.Cleanup).
func SwapInterpretALU(on bool) (restore func()) {
	prev := interpretALU.Swap(on)
	return func() { interpretALU.Store(prev) }
}

// decodeKernel builds the decoded program of a kernel.
func decodeKernel(k *Kernel) []DInstr {
	prog := make([]DInstr, len(k.Instrs))
	for i := range k.Instrs {
		decodeInstr(k, &k.Instrs[i], &prog[i])
	}
	return prog
}

// decodeInstr populates one decoded instruction in place; the sole
// member of DInstr's frozen constructor set.
//
//simlint:ctor
func decodeInstr(k *Kernel, in *Instr, d *DInstr) {
	d.In = in
	d.Class = classOf(in.Op)
	d.cmp = in.Cmp
	d.dstID, d.predID, d.target = -1, -1, -1
	if len(in.Dst) > 0 {
		d.dstID = int32(in.Dst[0].ID)
	}
	if in.Pred != nil {
		d.predID = int32(in.Pred.ID)
		d.pneg = in.PNeg
	}
	d.srcs = make([]srcOp, len(in.Src))
	for i, o := range in.Src {
		d.srcs[i] = srcOp{kind: o.Kind, reg: int32(o.Reg.ID), sreg: o.SReg, imm: o.Imm}
	}
	switch len(d.srcs) {
	case 2:
		switch {
		case d.srcs[0].kind == OperandReg && d.srcs[1].kind == OperandReg:
			d.shape = srcRR
		case d.srcs[0].kind == OperandReg && d.srcs[1].kind == OperandImm:
			d.shape = srcRI
		}
	case 3:
		if d.srcs[0].kind == OperandReg && d.srcs[1].kind == OperandReg && d.srcs[2].kind == OperandReg {
			d.shape = srcRRR
		}
	}
	d.dsts = make([]int32, len(in.Dst))
	for i, r := range in.Dst {
		d.dsts[i] = int32(r.ID)
	}
	d.sb = appendScoreboardRegs(nil, in)
	for _, id := range d.sb {
		if id < 64 {
			d.sbMask |= 1 << uint(id)
		} else {
			d.sbWide = append(d.sbWide, id)
		}
	}

	switch in.Op {
	case OpBra:
		if t, ok := k.Labels[in.Target]; ok {
			d.target = int32(t)
		}
	case OpLd, OpSt:
		d.membytes = int32(in.Width / 8)
		w := int32(in.Width / 32)
		if w == 0 {
			w = 1
		}
		d.words = w
		d.space = in.Space
		d.addrReg = -1
		if len(in.Src) > 0 && in.Src[0].Kind == OperandReg {
			d.addrReg = int32(in.Src[0].Reg.ID)
		}
	case OpWmmaLoad, OpWmmaStore:
		d.membytes = int32(cuda4BitBytes(in.WMap.Elem))
		d.wplan = planFragment(in.WMap)
	case OpWmmaMMA:
		d.fragA = int32(in.WMapA.FragmentLen())
		d.fragB = int32(in.WMapB.FragmentLen())
		// The batched gather indexes fragment source registers directly,
		// so it requires the all-register operand shape Builder emits.
		regs := true
		for _, o := range in.Src {
			if o.Kind != OperandReg {
				regs = false
				break
			}
		}
		if regs {
			d.wA = planFragment(in.WMapA)
			d.wB = planFragment(in.WMapB)
			d.wC = planFragment(in.WMap)
			d.wD = planFragment(in.WMapD)
		}
	}

	if d.Class == DClassALU || d.Class == DClassSFU {
		d.alu, d.mask, d.cvtFn = aluKindFor(in)
		if interpretALU.Load() {
			d.alu = aluGeneric
		}
	}
}

func classOf(op Opcode) DClass {
	switch op {
	case OpLd:
		return DClassLd
	case OpSt:
		return DClassSt
	case OpBar:
		return DClassBar
	case OpBra:
		return DClassBra
	case OpExit:
		return DClassExit
	case OpWmmaLoad:
		return DClassWmmaLoad
	case OpWmmaStore:
		return DClassWmmaStore
	case OpWmmaMMA:
		return DClassWmmaMMA
	case OpDiv, OpRem:
		return DClassSFU
	default:
		return DClassALU
	}
}

// aluKind indexes the dispatch table of specialized warp-wide ALU
// executors. aluGeneric falls back to the per-lane interpreted path.
type aluKind uint8

const (
	aluGeneric aluKind = iota
	aluMov
	aluAddU32
	aluAddU64
	aluAddS32
	aluAddF32
	aluSubU32
	aluSubU64
	aluSubS32
	aluSubF32
	aluMulU32
	aluMulU64
	aluMulS32
	aluMulF32
	aluMulWide
	aluMadU32
	aluMadS32
	aluMadU64
	aluMadF32
	aluMadF16X2
	aluBitAnd
	aluBitOr
	aluBitXor
	aluShl
	aluShrU
	aluShrS32
	aluSetpU32
	aluSetpS32
	aluSetpU64
	aluSetpF32
	aluSelp
	aluCvt
	nALUKinds
)

// aluKindFor classifies an ALU instruction once, at decode time. It
// returns the dispatch index plus the precomputed truncation mask and
// conversion function the specialized executors need.
func aluKindFor(in *Instr) (aluKind, uint64, func(uint64) uint64) {
	mask := maskOf(in.Type)
	switch in.Op {
	case OpMov:
		if in.Type != Pred {
			return aluMov, mask, nil
		}
	case OpAdd:
		switch in.Type {
		case U32:
			return aluAddU32, mask, nil
		case U64:
			return aluAddU64, mask, nil
		case S32:
			return aluAddS32, mask, nil
		case F32:
			return aluAddF32, mask, nil
		}
	case OpSub:
		switch in.Type {
		case U32:
			return aluSubU32, mask, nil
		case U64:
			return aluSubU64, mask, nil
		case S32:
			return aluSubS32, mask, nil
		case F32:
			return aluSubF32, mask, nil
		}
	case OpMul:
		switch in.Type {
		case U32:
			return aluMulU32, mask, nil
		case U64:
			return aluMulU64, mask, nil
		case S32:
			return aluMulS32, mask, nil
		case F32:
			return aluMulF32, mask, nil
		}
	case OpMulWide:
		return aluMulWide, mask, nil
	case OpMad:
		switch in.Type {
		case U32:
			return aluMadU32, mask, nil
		case S32:
			return aluMadS32, mask, nil
		case U64:
			return aluMadU64, mask, nil
		case F32:
			return aluMadF32, mask, nil
		case F16X2:
			return aluMadF16X2, mask, nil
		}
	case OpAnd:
		if in.Type != Pred {
			return aluBitAnd, mask, nil
		}
	case OpOr:
		if in.Type != Pred {
			return aluBitOr, mask, nil
		}
	case OpXor:
		if in.Type != Pred {
			return aluBitXor, mask, nil
		}
	case OpShl:
		if in.Type != Pred {
			return aluShl, mask, nil
		}
	case OpShr:
		if in.Type == S32 {
			return aluShrS32, mask, nil
		}
		if in.Type != Pred {
			return aluShrU, mask, nil
		}
	case OpSetp:
		switch in.Type {
		case U32:
			return aluSetpU32, mask, nil
		case S32:
			return aluSetpS32, mask, nil
		case U64:
			return aluSetpU64, mask, nil
		case F32:
			return aluSetpF32, mask, nil
		}
	case OpSelp:
		if in.Type != Pred {
			return aluSelp, mask, nil
		}
	case OpCvt:
		if fn := cvtFnFor(in.Type, in.SrcType); fn != nil {
			return aluCvt, mask, fn
		}
	}
	return aluGeneric, mask, nil
}

// maskOf returns the destination truncation mask of a type; Pred has no
// plain mask (it normalizes to 0/1) and decodes to the generic path.
func maskOf(t Type) uint64 {
	switch t.Bits() {
	case 16:
		return 0xffff
	case 32:
		return 0xffffffff
	default:
		return ^uint64(0)
	}
}

// cvtFnFor resolves the conversion pair of a cvt to a direct function,
// mirroring convert's supported cases; nil falls back to the generic path
// (which also surfaces unsupported-pair errors at execution time).
func cvtFnFor(dst, src Type) func(uint64) uint64 {
	switch {
	case dst == src:
		m := maskOf(dst)
		if dst == Pred {
			return nil
		}
		return func(v uint64) uint64 { return v & m }
	case dst == U64 && src == U32:
		return func(v uint64) uint64 { return v & 0xffffffff }
	case dst == U64 && src == S32:
		return func(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }
	case (dst == U32 || dst == S32) && src == U64,
		dst == U32 && src == S32, dst == S32 && src == U32:
		return func(v uint64) uint64 { return v & 0xffffffff }
	case dst == F32 && src == F16:
		return func(v uint64) uint64 { return bitsF32(h16(v).Float32()) }
	case dst == F16 && src == F32:
		return func(v uint64) uint64 { return bitsH16(fp16.FromFloat32(f32bits(v))) }
	case dst == F32 && src == S32:
		return func(v uint64) uint64 { return bitsF32(float32(int32(uint32(v)))) }
	case dst == F32 && src == U32:
		return func(v uint64) uint64 { return bitsF32(float32(uint32(v))) }
	case (dst == U32 || dst == S32) && src == F32:
		return func(v uint64) uint64 { return uint64(uint32(int32(f32bits(v)))) }
	case dst == F16 && src == S32:
		return func(v uint64) uint64 { return bitsH16(fp16.FromFloat64(float64(int32(uint32(v))))) }
	case dst == F16 && src == U32:
		return func(v uint64) uint64 { return bitsH16(fp16.FromFloat64(float64(uint32(v)))) }
	}
	return nil
}

// laneOn reports whether the lane executes under the decoded guard. base
// is the lane's precomputed register-file offset.
func (d *DInstr) laneOn(w *Warp, base, lane int) bool {
	if !w.Active[lane] {
		return false
	}
	if d.predID < 0 {
		return true
	}
	return (w.regs[base+int(d.predID)] != 0) != d.pneg
}

// val fetches a pre-resolved source operand. The register path must stay
// small enough to inline into the warp-wide executor loops; immediates
// and special registers take the outlined slow path, as in the
// interpreted executor.
func (d *DInstr) val(w *Warp, base, lane int, s *srcOp) uint64 {
	if s.kind == OperandReg {
		return w.regs[base+int(s.reg)]
	}
	return valSlow(w, lane, s)
}

//go:noinline
func valSlow(w *Warp, lane int, s *srcOp) uint64 {
	if s.kind == OperandImm {
		return s.imm
	}
	return w.sreg(lane, s.sreg)
}

// aluTable is the decoded ALU dispatch: one specialized warp-wide
// executor per (op, type) pair the generated kernels use. Entries left
// nil route through dALUGeneric (aluKindFor never returns them).
var aluTable = [nALUKinds]func(*Warp, *DInstr) error{
	aluGeneric: dALUGeneric,
	aluMov:     dMov,
	aluAddU32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return (x + y) & 0xffffffff })
		return nil
	},
	aluAddU64: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return x + y })
		return nil
	},
	aluAddS32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 {
			return uint64(uint32(int32(uint32(x)) + int32(uint32(y))))
		})
		return nil
	},
	aluAddF32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return bitsF32(f32bits(x) + f32bits(y)) })
		return nil
	},
	aluSubU32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return (x - y) & 0xffffffff })
		return nil
	},
	aluSubU64: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return x - y })
		return nil
	},
	aluSubS32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 {
			return uint64(uint32(int32(uint32(x)) - int32(uint32(y))))
		})
		return nil
	},
	aluSubF32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return bitsF32(f32bits(x) - f32bits(y)) })
		return nil
	},
	aluMulU32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return ((x & 0xffffffff) * (y & 0xffffffff)) & 0xffffffff })
		return nil
	},
	aluMulU64: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return x * y })
		return nil
	},
	aluMulS32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 {
			return uint64(uint32(int32(uint32(x)) * int32(uint32(y))))
		})
		return nil
	},
	aluMulF32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return bitsF32(f32bits(x) * f32bits(y)) })
		return nil
	},
	aluMulWide: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 { return uint64(uint32(x)) * uint64(uint32(y)) })
		return nil
	},
	aluMadU32:   dMadU32,
	aluMadS32:   dMadS32,
	aluMadU64:   dMadU64,
	aluMadF32:   dMadF32,
	aluMadF16X2: dMadF16X2,
	aluBitAnd: func(w *Warp, d *DInstr) error {
		m := d.mask
		dBin(w, d, func(x, y uint64) uint64 { return (x & y) & m })
		return nil
	},
	aluBitOr: func(w *Warp, d *DInstr) error {
		m := d.mask
		dBin(w, d, func(x, y uint64) uint64 { return (x | y) & m })
		return nil
	},
	aluBitXor: func(w *Warp, d *DInstr) error {
		m := d.mask
		dBin(w, d, func(x, y uint64) uint64 { return (x ^ y) & m })
		return nil
	},
	aluShl: func(w *Warp, d *DInstr) error {
		m := d.mask
		dBin(w, d, func(x, y uint64) uint64 { return (x << (y & 63)) & m })
		return nil
	},
	aluShrU: func(w *Warp, d *DInstr) error {
		m := d.mask
		dBin(w, d, func(x, y uint64) uint64 { return (x >> (y & 63)) & m })
		return nil
	},
	aluShrS32: func(w *Warp, d *DInstr) error {
		dBin(w, d, func(x, y uint64) uint64 {
			return uint64(uint32(int32(uint32(x)) >> (y & 31)))
		})
		return nil
	},
	aluSetpU32: func(w *Warp, d *DInstr) error {
		dSetp(w, d, func(x, y uint64) int { return cmpOrd(x&0xffffffff, y&0xffffffff) })
		return nil
	},
	aluSetpS32: func(w *Warp, d *DInstr) error {
		dSetp(w, d, func(x, y uint64) int { return cmpOrd(int32(uint32(x)), int32(uint32(y))) })
		return nil
	},
	aluSetpU64: func(w *Warp, d *DInstr) error {
		dSetp(w, d, cmpOrd[uint64])
		return nil
	},
	aluSetpF32: dSetpF32,
	aluSelp:    dSelp,
	aluCvt:     dCvt,
}

// dALUGeneric is the interpreted fallback: the per-lane execALU path for
// opcode/type pairs without a specialized executor.
func dALUGeneric(w *Warp, d *DInstr) error {
	in := d.In
	nr := w.Kernel.NumRegs
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		if err := w.execALU(lane, in); err != nil {
			return err
		}
	}
	return nil
}

func dMov(w *Warp, d *DInstr) error {
	nr := w.Kernel.NumRegs
	s := &d.srcs[0]
	dst, m := int(d.dstID), d.mask
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		w.regs[base+dst] = d.val(w, base, lane, s) & m
	}
	return nil
}

// srcShape classifies a two-source instruction's operand kinds at decode
// time so the hot executors can index the register file directly instead
// of re-dispatching on operand kind per lane per source.
type srcShape uint8

const (
	srcGen srcShape = iota // anything involving special registers, or <2 sources
	srcRR                  // register, register
	srcRI                  // register, immediate
	srcRRR                 // register, register, register (mad)
)

// dBin runs a warp-wide two-source ALU op; f replicates the interpreted
// arithmetic exactly (including destination truncation). The dominant
// operand shapes — reg-reg and reg-imm, classified at decode time — skip
// the per-lane indirect operand resolution of val entirely.
func dBin(w *Warp, d *DInstr, f func(x, y uint64) uint64) {
	nr := w.Kernel.NumRegs
	a, b := &d.srcs[0], &d.srcs[1]
	dst := int(d.dstID)
	full := d.predID < 0 && w.nLanes == 32 // no per-lane guard needed
	switch d.shape {
	case srcRR:
		ra, rb := int(a.reg), int(b.reg)
		if full {
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				w.regs[base+dst] = f(w.regs[base+ra], w.regs[base+rb])
			}
			return
		}
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			if !d.laneOn(w, base, lane) {
				continue
			}
			w.regs[base+dst] = f(w.regs[base+ra], w.regs[base+rb])
		}
	case srcRI:
		ra, imm := int(a.reg), b.imm
		if full {
			for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
				w.regs[base+dst] = f(w.regs[base+ra], imm)
			}
			return
		}
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			if !d.laneOn(w, base, lane) {
				continue
			}
			w.regs[base+dst] = f(w.regs[base+ra], imm)
		}
	default:
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			if !d.laneOn(w, base, lane) {
				continue
			}
			w.regs[base+dst] = f(d.val(w, base, lane, a), d.val(w, base, lane, b))
		}
	}
}

// dTern runs a warp-wide three-source ALU op; f replicates the
// interpreted arithmetic exactly. The dominant operand shape — three
// registers, classified at decode time (srcRRR) — indexes the register
// file directly, which matters most for the mad executors at the core of
// every GEMM inner loop.
func dTern(w *Warp, d *DInstr, f func(x, y, z uint64) uint64) {
	nr := w.Kernel.NumRegs
	a, b, c := &d.srcs[0], &d.srcs[1], &d.srcs[2]
	dst := int(d.dstID)
	if d.shape == srcRRR {
		ra, rb, rc := int(a.reg), int(b.reg), int(c.reg)
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			if !d.laneOn(w, base, lane) {
				continue
			}
			w.regs[base+dst] = f(w.regs[base+ra], w.regs[base+rb], w.regs[base+rc])
		}
		return
	}
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		w.regs[base+dst] = f(d.val(w, base, lane, a), d.val(w, base, lane, b), d.val(w, base, lane, c))
	}
}

func dMadU32(w *Warp, d *DInstr) error {
	dTern(w, d, func(x, y, z uint64) uint64 { return (x*y + z) & 0xffffffff })
	return nil
}

func dMadS32(w *Warp, d *DInstr) error {
	dTern(w, d, func(x, y, z uint64) uint64 {
		return uint64(uint32(int32(uint32(x))*int32(uint32(y)) + int32(uint32(z))))
	})
	return nil
}

func dMadU64(w *Warp, d *DInstr) error {
	dTern(w, d, func(x, y, z uint64) uint64 { return x*y + z })
	return nil
}

// dMadF32 and dMadF16X2 — the inner-loop instruction of the FP32 and
// packed-half SIMT GEMMs — get fully specialized loops: direct register
// indexing for the srcRRR shape and no per-lane guard when the warp is
// fully active and unguarded, with math.FMA compiling to the hardware
// fused multiply-add.
func dMadF32(w *Warp, d *DInstr) error {
	if d.shape != srcRRR {
		dTern(w, d, func(x, y, z uint64) uint64 {
			return bitsF32(float32(math.FMA(float64(f32bits(x)), float64(f32bits(y)), float64(f32bits(z)))))
		})
		return nil
	}
	nr := w.Kernel.NumRegs
	ra, rb, rc := int(d.srcs[0].reg), int(d.srcs[1].reg), int(d.srcs[2].reg)
	dst := int(d.dstID)
	if d.predID < 0 && w.nLanes == 32 {
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			x, y, z := w.regs[base+ra], w.regs[base+rb], w.regs[base+rc]
			// fma.rn.f32: a single rounding.
			w.regs[base+dst] = bitsF32(float32(math.FMA(float64(f32bits(x)), float64(f32bits(y)), float64(f32bits(z)))))
		}
		return nil
	}
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		x, y, z := w.regs[base+ra], w.regs[base+rb], w.regs[base+rc]
		w.regs[base+dst] = bitsF32(float32(math.FMA(float64(f32bits(x)), float64(f32bits(y)), float64(f32bits(z)))))
	}
	return nil
}

func dMadF16X2(w *Warp, d *DInstr) error {
	if d.shape != srcRRR {
		dTern(w, d, madF16X2)
		return nil
	}
	nr := w.Kernel.NumRegs
	ra, rb, rc := int(d.srcs[0].reg), int(d.srcs[1].reg), int(d.srcs[2].reg)
	dst := int(d.dstID)
	if d.predID < 0 && w.nLanes == 32 {
		for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
			w.regs[base+dst] = madF16X2(w.regs[base+ra], w.regs[base+rb], w.regs[base+rc])
		}
		return nil
	}
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		w.regs[base+dst] = madF16X2(w.regs[base+ra], w.regs[base+rb], w.regs[base+rc])
	}
	return nil
}

// madF16X2 is one lane's packed-half fused multiply-add.
func madF16X2(x, y, z uint64) uint64 {
	lo := bitsH16(fp16.FMA(h16(x&0xffff), h16(y&0xffff), h16(z&0xffff)))
	hi := bitsH16(fp16.FMA(h16(x>>16&0xffff), h16(y>>16&0xffff), h16(z>>16&0xffff)))
	return hi<<16 | lo
}

// dSetp runs a warp-wide integer setp; ord returns the three-way
// comparison of the two raw source values.
func dSetp(w *Warp, d *DInstr, ord func(x, y uint64) int) {
	nr := w.Kernel.NumRegs
	a, b := &d.srcs[0], &d.srcs[1]
	dst, cmp := int(d.dstID), d.cmp
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		c := ord(d.val(w, base, lane, a), d.val(w, base, lane, b))
		w.regs[base+dst] = predBit(cmp, c)
	}
}

func dSetpF32(w *Warp, d *DInstr) error {
	nr := w.Kernel.NumRegs
	a, b := &d.srcs[0], &d.srcs[1]
	dst, cmp := int(d.dstID), d.cmp
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		x, y := f32bits(d.val(w, base, lane, a)), f32bits(d.val(w, base, lane, b))
		if x != x || y != y { // NaN: only NE holds
			if cmp == CmpNE {
				w.regs[base+dst] = 1
			} else {
				w.regs[base+dst] = 0
			}
			continue
		}
		w.regs[base+dst] = predBit(cmp, cmpOrd(x, y))
	}
	return nil
}

// predBit converts a three-way comparison into the setp predicate value.
func predBit(cmp CmpOp, c int) uint64 {
	var ok bool
	switch cmp {
	case CmpEQ:
		ok = c == 0
	case CmpNE:
		ok = c != 0
	case CmpLT:
		ok = c < 0
	case CmpLE:
		ok = c <= 0
	case CmpGT:
		ok = c > 0
	default:
		ok = c >= 0
	}
	if ok {
		return 1
	}
	return 0
}

func dSelp(w *Warp, d *DInstr) error {
	nr := w.Kernel.NumRegs
	a, b, p := &d.srcs[0], &d.srcs[1], &d.srcs[2]
	dst, m := int(d.dstID), d.mask
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		if d.val(w, base, lane, p) != 0 {
			w.regs[base+dst] = d.val(w, base, lane, a) & m
		} else {
			w.regs[base+dst] = d.val(w, base, lane, b) & m
		}
	}
	return nil
}

func dCvt(w *Warp, d *DInstr) error {
	nr := w.Kernel.NumRegs
	s := &d.srcs[0]
	dst, fn := int(d.dstID), d.cvtFn
	for lane, base := 0, 0; lane < 32; lane, base = lane+1, base+nr {
		if !d.laneOn(w, base, lane) {
			continue
		}
		w.regs[base+dst] = fn(d.val(w, base, lane, s))
	}
	return nil
}
