package ptx

import (
	"bytes"
	"testing"
)

// opsCoverageKernel builds a kernel exercising every ALU opcode/type pair
// with a specialized decoded executor (plus a few that fall back to the
// generic path), storing every intermediate to global memory so the two
// execution modes can be compared byte for byte.
func opsCoverageKernel(t *testing.T) *Kernel {
	t.Helper()
	b := NewBuilder("ops_coverage")
	out := b.Param("out", U64)
	slot := 0
	store := func(r Reg) {
		addr := b.Reg()
		tid := b.Reg()
		b.Mov(U32, tid, SR(SRegTidX))
		// Each lane writes its own 4-byte slot: out + (slot*32 + tid)*4.
		b.Mad(U32, addr, R(tid), Imm(4), Imm(uint64(slot*32*4)))
		addr64 := b.Reg()
		b.Cvt(U64, U32, addr64, R(addr))
		b.Add(U64, addr64, R(addr64), R(out))
		b.St(Global, 32, R(addr64), []Operand{R(r)})
		slot++
	}

	tid := b.Reg()
	b.Mov(U32, tid, SR(SRegTidX))

	// Integer arithmetic across types.
	r := b.Reg()
	b.Add(U32, r, R(tid), Imm(13))
	store(r)
	b.Sub(S32, r, R(tid), Imm(29))
	store(r)
	b.Mul(U32, r, R(tid), Imm(2654435761))
	store(r)
	b.Mul(S32, r, R(tid), ImmS(-7))
	store(r)
	b.Mad(U32, r, R(tid), Imm(17), Imm(5))
	store(r)
	b.Mad(S32, r, R(tid), ImmS(-3), ImmS(100))
	store(r)
	b.MulWide(r, R(tid), Imm(0x10001))
	store(r)
	b.Min(U32, r, R(tid), Imm(7))
	store(r)
	b.Max(S32, r, R(tid), Imm(11))
	store(r)
	b.Div(U32, r, R(tid), Imm(3))
	store(r)
	b.Rem(S32, r, R(tid), Imm(5))
	store(r)

	// Bitwise and shifts.
	b.And(U32, r, R(tid), Imm(0x55))
	store(r)
	b.Or(U32, r, R(tid), Imm(0xa0))
	store(r)
	b.Xor(U32, r, R(tid), Imm(0xff))
	store(r)
	b.Shl(U32, r, R(tid), Imm(3))
	store(r)
	b.Shr(U32, r, R(tid), Imm(1))
	store(r)
	neg := b.Reg()
	b.Mul(S32, neg, R(tid), ImmS(-1024))
	b.Shr(S32, r, R(neg), Imm(4)) // arithmetic shift keeps the sign
	store(r)

	// Floats: f32 arithmetic, fused mad, conversions.
	f, g := b.Reg(), b.Reg()
	b.Cvt(F32, U32, f, R(tid))
	b.Cvt(F32, S32, g, R(neg))
	b.Add(F32, r, R(f), R(g))
	store(r)
	b.Sub(F32, r, R(f), R(g))
	store(r)
	b.Mul(F32, r, R(f), R(g))
	store(r)
	b.Mad(F32, r, R(f), R(g), R(f))
	store(r)
	b.Div(F32, r, R(g), R(f))
	store(r)
	h := b.Reg()
	b.Cvt(F16, F32, h, R(f))
	store(h)
	b.Cvt(F32, F16, r, R(h))
	store(r)
	b.Cvt(U32, F32, r, R(f))
	store(r)

	// Packed-half mad (the HGEMM inner loop).
	h2 := b.Reg()
	dup := b.Reg()
	b.Shl(U32, dup, R(h), Imm(16))
	b.Or(U32, h2, R(h), R(dup))
	b.Mad(F16X2, r, R(h2), R(h2), R(h2))
	store(r)

	// Predicates: setp across types, selp, predicated execution, and a
	// predicated branch (exercises the pre-resolved branch target).
	p := b.Reg()
	b.Setp(U32, CmpLT, p, R(tid), Imm(16))
	store(p)
	b.Setp(S32, CmpGE, p, R(neg), ImmS(-8192))
	store(p)
	b.Setp(F32, CmpGT, p, R(f), Imm(uint64(0x41000000))) // 8.0f
	store(p)
	b.Selp(U32, r, Imm(111), Imm(222), R(p))
	store(r)
	b.Setp(U32, CmpEQ, p, R(tid), Imm(0))
	b.At(p, false).Mov(U32, r, Imm(777))
	b.At(p, true).Mov(U32, r, Imm(888))
	store(r)

	// Loop with a predicated backward branch.
	i, acc, q := b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, i, Imm(0))
	b.Mov(U32, acc, Imm(0))
	b.Label("top")
	b.Add(U32, acc, R(acc), R(tid))
	b.Add(U32, i, R(i), Imm(1))
	b.Setp(U32, CmpLT, q, R(i), Imm(5))
	b.BraIf(q, false, "top")
	store(acc)

	b.Exit()
	return b.MustBuild()
}

// The decoded table-driven dispatch must produce bit-identical results to
// the per-lane interpreted path for every operation.
func TestDecodedMatchesInterpreted(t *testing.T) {
	run := func(interpret bool) []byte {
		defer SwapInterpretALU(interpret)()
		k := opsCoverageKernel(t) // decode happens at Build under the mode
		mem := NewFlatMemory(64 << 10)
		if err := RunGrid(k, mem, D1(2), D1(64), []uint64{0}); err != nil {
			t.Fatal(err)
		}
		return mem.Data
	}
	decoded := run(false)
	interpreted := run(true)
	if !bytes.Equal(decoded, interpreted) {
		for i := range decoded {
			if decoded[i] != interpreted[i] {
				t.Fatalf("first divergence at byte %d (slot %d): decoded %d, interpreted %d",
					i, i/(32*4), decoded[i], interpreted[i])
			}
		}
	}
}

// InterpretALU must actually route ALU instructions through the generic
// path, otherwise TestDecodedMatchesInterpreted compares the decoded
// executor against itself.
func TestInterpretALUTogglesDecode(t *testing.T) {
	build := func() *Kernel {
		b := NewBuilder("toggle")
		out := b.Param("out", U64)
		r := b.Reg()
		b.Add(U32, r, Imm(1), Imm(2))
		b.St(Global, 32, R(out), []Operand{R(r)})
		b.Exit()
		return b.MustBuild()
	}
	k := build()
	if k.prog[0].alu == aluGeneric {
		t.Fatal("add.u32 should decode to a specialized executor")
	}
	defer SwapInterpretALU(true)()
	k2 := build()
	if k2.prog[0].alu != aluGeneric {
		t.Fatal("InterpretALU(true) should decode to the generic path")
	}
}

// The decoded program must be cached per kernel, not per warp: every warp
// of a kernel shares the same backing array.
func TestDecodedProgramCachedPerKernel(t *testing.T) {
	b := NewBuilder("cache")
	out := b.Param("out", U64)
	r := b.Reg()
	b.Mov(U32, r, Imm(1))
	b.St(Global, 32, R(out), []Operand{R(r)})
	b.Exit()
	k := b.MustBuild()
	env := &Env{Global: NewFlatMemory(64), GridDim: D1(1), BlockDim: D1(64), Clock: func() uint64 { return 0 }}
	w0, err := NewWarp(k, env, 0, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWarp(k, env, 1, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if &w0.prog[0] != &w1.prog[0] {
		t.Error("warps of one kernel should share the decoded program")
	}
	if &w0.prog[0] != &k.Program()[0] {
		t.Error("warp program should alias the kernel's cache")
	}
}

// Branch targets are pre-resolved at decode; a hand-assembled kernel with
// a bad label must still error cleanly at execution.
func TestDecodedBranchTargets(t *testing.T) {
	b := NewBuilder("bra")
	out := b.Param("out", U64)
	r := b.Reg()
	b.Mov(U32, r, Imm(7))
	b.Bra("skip")
	b.Mov(U32, r, Imm(9)) // skipped
	b.Label("skip")
	b.St(Global, 32, R(out), []Operand{R(r)})
	b.Exit()
	k := b.MustBuild()
	mem := NewFlatMemory(256)
	if err := RunGrid(k, mem, D1(1), D1(32), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if got := u32At(mem, 0); got != 7 {
		t.Errorf("branch skipped wrong path: got %d, want 7", got)
	}

	// Hand-assembled kernel branching to a label that does not exist.
	bad := &Kernel{
		Name:    "badbra",
		NumRegs: 1,
		Labels:  map[string]int{},
		Instrs:  []Instr{{Op: OpBra, Target: "nowhere"}},
	}
	env := &Env{Global: NewFlatMemory(64), GridDim: D1(1), BlockDim: D1(32), Clock: func() uint64 { return 0 }}
	w, err := NewWarp(bad, env, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(); err == nil {
		t.Error("branch to unknown label should error")
	}
}
