package ptx

import "fmt"

// Functional (timing-free) execution of whole CTAs and grids, used to
// validate kernels independently of the cycle-level simulator — the same
// role GPGPU-Sim's pure functional mode plays.

// RunCTA executes one CTA to completion, scheduling warps round-robin one
// instruction at a time and releasing barriers when every live warp has
// arrived.
func RunCTA(k *Kernel, env *Env, args []uint64) error {
	nWarps := (env.BlockDim.Count() + 31) / 32
	warps := make([]*Warp, nWarps)
	for i := range warps {
		w, err := NewWarp(k, env, i, args)
		if err != nil {
			return err
		}
		warps[i] = w
	}
	steps := 0
	if env.Clock == nil {
		env.Clock = func() uint64 { return uint64(steps) }
	}
	limit := 500_000_000 // runaway-kernel guard
	for {
		progress := false
		allDone := true
		for _, w := range warps {
			if w.Exited {
				continue
			}
			allDone = false
			if w.AtBarrier {
				continue
			}
			if _, err := w.Step(); err != nil {
				return fmt.Errorf("ptx: warp %d: %w", w.ID, err)
			}
			progress = true
			steps++
			if steps > limit {
				return fmt.Errorf("ptx: kernel %s exceeded %d steps", k.Name, limit)
			}
		}
		if allDone {
			return nil
		}
		if !progress {
			// Everyone alive is at the barrier: release it.
			waiting := 0
			for _, w := range warps {
				if !w.Exited && w.AtBarrier {
					waiting++
				}
			}
			if waiting == 0 {
				return fmt.Errorf("ptx: kernel %s deadlocked", k.Name)
			}
			for _, w := range warps {
				w.AtBarrier = false
			}
		}
	}
}

// RunGrid executes every CTA of a grid sequentially against the same
// global memory, giving each CTA a fresh shared-memory window.
func RunGrid(k *Kernel, global Memory, grid, block Dim3, args []uint64) error {
	for z := 0; z < grid.Z; z++ {
		for y := 0; y < grid.Y; y++ {
			for x := 0; x < grid.X; x++ {
				env := &Env{
					Global:   global,
					Shared:   make([]byte, k.SharedBytes),
					GridDim:  grid,
					BlockDim: block,
					CtaID:    Dim3{x, y, z},
				}
				if err := RunCTA(k, env, args); err != nil {
					return fmt.Errorf("cta (%d,%d,%d): %w", x, y, z, err)
				}
			}
		}
	}
	return nil
}

// FlatMemory is a simple Memory backed by a byte slice, for tests and
// functional runs.
type FlatMemory struct{ Data []byte }

// NewFlatMemory allocates an n-byte flat memory.
func NewFlatMemory(n int) *FlatMemory { return &FlatMemory{Data: make([]byte, n)} }

// Read copies len(buf) bytes at addr into buf.
func (m *FlatMemory) Read(addr uint64, buf []byte) { copy(buf, m.Data[addr:]) }

// Write copies data into memory at addr.
func (m *FlatMemory) Write(addr uint64, data []byte) { copy(m.Data[addr:], data) }
