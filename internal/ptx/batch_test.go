package ptx

import (
	"reflect"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

// The batched access path must be invisible at the architectural level:
// for any kernel, the registers written, the bytes moved, and the
// per-lane access stream the timing model sees must match the legacy
// per-lane path exactly. The torture kernel below exercises the shapes
// the batched fast paths dispatch on — unit-stride, broadcast, scattered,
// mirrored — plus the edges the ISSUE calls out: predicated
// (partially-active) lanes, 16-bit accesses, misaligned and
// sector-spanning addresses, and a partially populated warp.

// buildBatchTorture builds the load/store torture kernel. Every lane
// computes its id-derived addresses; the guard predicate (laneid&1 == 0)
// covers the predicated variants.
func buildBatchTorture() *Kernel {
	b := NewBuilder("batch_torture")
	pbase := b.Param("base", U64)
	smem := b.Shared(4096)

	lane := b.Reg()
	b.Mov(U32, lane, SR(SRegLaneID))
	odd, even := b.Reg(), b.Reg()
	b.And(U32, odd, R(lane), Imm(1))
	p := b.Reg()
	b.Setp(U32, CmpEQ, p, R(odd), Imm(0))
	_ = even

	lane64, tmp64 := b.Reg(), b.Reg()
	b.Cvt(U64, U32, lane64, R(lane))

	// Unit-stride 32-bit global load: base + 4·lane.
	a32 := b.Reg()
	b.MulWide(a32, R(lane), Imm(4))
	b.Add(U64, a32, R(a32), R(pbase))
	v32 := b.Reg()
	b.Ld(Global, 32, []Reg{v32}, R(a32))

	// Misaligned, sector-spanning 64-bit load: base + 30 + 8·lane.
	a64 := b.Reg()
	b.MulWide(a64, R(lane), Imm(8))
	b.Add(U64, a64, R(a64), R(pbase))
	b.Add(U64, a64, R(a64), Imm(30))
	v64 := b.Regs(2)
	b.Ld(Global, 64, v64, R(a64))

	// Predicated 16-bit load at a misaligned address: base + 2·lane + 1.
	a16 := b.Reg()
	b.MulWide(a16, R(lane), Imm(2))
	b.Add(U64, a16, R(a16), R(pbase))
	b.Add(U64, a16, R(a16), Imm(1))
	v16 := b.Reg()
	b.At(p, false).Ld(Global, 16, []Reg{v16}, R(a16))

	// Scattered 32-bit global load: base + 4096 + 128·lane (one sector per
	// lane) — in descending order so the sorted fast path cannot claim it:
	// addr = base + 4096 + 128·(31-lane).
	inv := b.Reg()
	b.Sub(U32, inv, Imm(31), R(lane))
	asc := b.Reg()
	b.MulWide(asc, R(inv), Imm(128))
	b.Add(U64, asc, R(asc), R(pbase))
	b.Add(U64, asc, R(asc), Imm(4096))
	vsc := b.Reg()
	b.Ld(Global, 32, []Reg{vsc}, R(asc))

	// Shared staging: unit-stride 128-bit store, mirrored 32-bit load,
	// broadcast 32-bit load.
	sdst := b.Reg()
	b.MulWide(sdst, R(lane), Imm(16))
	b.Add(U64, sdst, R(sdst), Imm(smem))
	b.St(Shared, 128, R(sdst), []Operand{R(v32), R(vsc), R(v64[0]), R(v64[1])})

	// Mirrored halves: lanes 0-15 and 16-31 read the same 16 words.
	half := b.Reg()
	b.And(U32, half, R(lane), Imm(15))
	smir := b.Reg()
	b.MulWide(smir, R(half), Imm(4))
	b.Add(U64, smir, R(smir), Imm(smem))
	vmir := b.Reg()
	b.Ld(Shared, 32, []Reg{vmir}, R(smir))

	// Broadcast: every lane reads word 5.
	sbc := b.Reg()
	b.Mov(U64, sbc, Imm(smem))
	b.Add(U64, sbc, R(sbc), Imm(20))
	vbc := b.Reg()
	b.Ld(Shared, 32, []Reg{vbc}, R(sbc))

	// Predicated 16-bit shared store (misaligned, odd offset).
	s16 := b.Reg()
	b.MulWide(s16, R(lane), Imm(2))
	b.Add(U64, s16, R(s16), Imm(smem))
	b.Add(U64, s16, R(s16), Imm(2049))
	b.At(p, true).St(Shared, 16, R(s16), []Operand{R(vmir)})

	// Uniform global store: all lanes write the same address (last active
	// lane must win).
	ug := b.Reg()
	b.Mov(U64, ug, R(pbase))
	b.Add(U64, ug, R(ug), Imm(8192))
	b.St(Global, 32, R(ug), []Operand{R(lane)})

	// Strided (non-unit, sorted) 128-bit store: base + 12288 + 32·lane.
	b.MulWide(tmp64, R(lane), Imm(32))
	b.Add(U64, tmp64, R(tmp64), R(pbase))
	b.Add(U64, tmp64, R(tmp64), Imm(12288))
	b.St(Global, 128, R(tmp64), []Operand{R(vmir), R(vbc), R(v32), R(lane)})

	_ = lane64
	b.Exit()
	return b.MustBuild()
}

// batchRun executes the torture kernel on one CTA and records everything
// the two paths must agree on.
type batchRun struct {
	global   []byte
	shared   []byte
	regs     []uint64
	accesses [][]Access
}

func runBatchTorture(t *testing.T, legacy bool, block Dim3) batchRun {
	t.Helper()
	defer SwapLegacyAccessPath(legacy)()
	k := buildBatchTorture()
	mem := NewFlatMemory(1 << 16)
	for i := range mem.Data {
		mem.Data[i] = byte(i*7 + 3)
	}
	env := &Env{
		Global:   mem,
		Shared:   make([]byte, k.SharedBytes),
		GridDim:  D1(1),
		BlockDim: block,
		Clock:    func() uint64 { return 0 },
	}
	run := batchRun{}
	nWarps := (block.Count() + 31) / 32
	for id := 0; id < nWarps; id++ {
		w, err := NewWarp(k, env, id, []uint64{0})
		if err != nil {
			t.Fatal(err)
		}
		for !w.Exited {
			res, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			if acc := res.LaneAccesses(); len(acc) > 0 {
				run.accesses = append(run.accesses, append([]Access(nil), acc...))
			}
		}
		run.regs = append(run.regs, append([]uint64(nil), w.regs...)...)
	}
	run.global = mem.Data
	run.shared = env.Shared
	return run
}

func TestBatchedLoadStoreMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name  string
		block Dim3
	}{
		{"full_warp", D1(32)},
		{"partial_warp", D1(40)}, // second warp has 8 active lanes
	} {
		t.Run(tc.name, func(t *testing.T) {
			legacy := runBatchTorture(t, true, tc.block)
			batched := runBatchTorture(t, false, tc.block)
			if !reflect.DeepEqual(legacy.accesses, batched.accesses) {
				for i := range legacy.accesses {
					if i < len(batched.accesses) && !reflect.DeepEqual(legacy.accesses[i], batched.accesses[i]) {
						t.Fatalf("access stream %d differs:\nlegacy:  %v\nbatched: %v",
							i, legacy.accesses[i], batched.accesses[i])
					}
				}
				t.Fatalf("access stream lengths differ: legacy %d, batched %d",
					len(legacy.accesses), len(batched.accesses))
			}
			if !reflect.DeepEqual(legacy.global, batched.global) {
				t.Error("global memory differs between legacy and batched paths")
			}
			if !reflect.DeepEqual(legacy.shared, batched.shared) {
				t.Error("shared memory differs between legacy and batched paths")
			}
			if !reflect.DeepEqual(legacy.regs, batched.regs) {
				t.Error("register state differs between legacy and batched paths")
			}
		})
	}
}

// The batched ld/st path must produce exactly one group per space with
// the lane addresses the legacy path reported — and resolve generic
// space statically at decode time.
func TestBatchedLdStGroupShapes(t *testing.T) {
	b := NewBuilder("group_shapes")
	pbase := b.Param("base", U64)
	lane := b.Reg()
	b.Mov(U32, lane, SR(SRegLaneID))
	addr := b.Reg()
	b.MulWide(addr, R(lane), Imm(4))
	b.Add(U64, addr, R(addr), R(pbase))
	v := b.Reg()
	b.Ld(Global, 32, []Reg{v}, R(addr))
	b.Exit()
	k := b.MustBuild()

	env := &Env{Global: NewFlatMemory(4096), GridDim: D1(1), BlockDim: D1(32), Clock: func() uint64 { return 0 }}
	w, err := NewWarp(k, env, 0, []uint64{64})
	if err != nil {
		t.Fatal(err)
	}
	w.Step() // mov
	w.Step() // mulwide
	w.Step() // add
	res, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batch) != 1 {
		t.Fatalf("unit-stride load produced %d groups, want 1", len(res.Batch))
	}
	g := res.Batch[0]
	if g.Mask != ^uint32(0) || g.Bits != 32 || g.Space != Global || g.Store {
		t.Fatalf("group = mask %#x bits %d space %v store %v", g.Mask, g.Bits, g.Space, g.Store)
	}
	for i := 0; i < 32; i++ {
		if g.Addr[i] != uint64(64+4*i) {
			t.Fatalf("lane %d addr %d, want %d", i, g.Addr[i], 64+4*i)
		}
	}
}

// wmmaLoadStoreKernel is a full wmma round trip (load A/B/C, mma, store
// D) with mixed row/col-major fragment mappings, so both the batchable
// and structure-divergent per-lane shapes appear.
func wmmaLoadStoreKernel() *Kernel {
	cfg := wmma.Config{
		Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32,
	}
	b := NewBuilder("wmma_batch")
	pa := b.Param("a", U64)
	pd := b.Param("d", U64)
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, R(pa), Imm(16))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, R(pa), Imm(16))
	fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, R(pd), Imm(16))
	fd := b.WmmaMMA(cfg, fa, fb, fc)
	b.WmmaStore(cfg.Arch, cfg.Shape, tensor.RowMajor, cfg.DType, R(pd), fd, Imm(16))
	b.Exit()
	return b.MustBuild()
}

// A wmma load must batch into slot-aligned groups that expand to the
// identical per-lane access list the legacy path emits.
func TestBatchedWmmaMatchesLegacy(t *testing.T) {
	step := func(legacy bool) ([]Access, []byte) {
		defer SwapLegacyAccessPath(legacy)()
		k := wmmaLoadStoreKernel()
		mem := NewFlatMemory(4096)
		for i := range mem.Data {
			mem.Data[i] = byte(i * 5)
		}
		env := &Env{Global: mem, GridDim: D1(1), BlockDim: D1(32), Clock: func() uint64 { return 0 }}
		w, err := NewWarp(k, env, 0, []uint64{0, 2048})
		if err != nil {
			t.Fatal(err)
		}
		var accesses []Access
		for !w.Exited {
			res, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			accesses = append(accesses, res.LaneAccesses()...)
		}
		return accesses, mem.Data
	}
	legacyAcc, legacyMem := step(true)
	batchedAcc, batchedMem := step(false)
	if !reflect.DeepEqual(legacyAcc, batchedAcc) {
		t.Errorf("wmma access streams differ: legacy %d entries, batched %d", len(legacyAcc), len(batchedAcc))
	}
	if !reflect.DeepEqual(legacyMem, batchedMem) {
		t.Error("wmma memory state differs between paths")
	}
}
