package ptx

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Parse assembles a kernel from a PTX-like textual syntax, so kernels can
// be written as source files rather than builder calls. The accepted
// subset mirrors the Builder API:
//
//	.target sm_70                       // sm_70 = Volta (default), sm_75 = Turing
//	.entry saxpy(.param .u64 x, .param .u64 y, .param .u32 n)
//	{
//	  .shared buf 1024                  // named shared allocation
//	  mov.u32   %i, %tid.x;
//	  mul.wide.u32 %off, %i, 4;
//	  add.u64   %xa, %off, %x;
//	  ld.global.32 %v, [%xa];
//	  setp.lt.u32 %p, %i, %n;
//	@%p bra done;
//	  bar.sync;
//	done:
//	  st.global.32 [%xa], %v;
//	  exit;
//	}
//
// Registers (%name) are virtual and allocated on first use; parameters
// are referenced by their declared names. Fragment operands of the wmma
// instructions are register ranges: {%a0:%a15}. Immediates are decimal,
// 0x-hex, or PTX-style 0f######## single-precision hex floats.
func Parse(src string) (*Kernel, error) {
	p := &parser{
		b:      nil,
		regs:   map[string]Reg{},
		shared: map[string]uint64{},
		arch:   wmma.Volta,
	}
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" || line == "{" || line == "}" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ptx: line %d: %w", i+1, err)
		}
	}
	if p.b == nil {
		return nil, fmt.Errorf("ptx: no .entry directive")
	}
	return p.b.Build()
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Kernel {
	k, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return k
}

type parser struct {
	b      *Builder
	regs   map[string]Reg
	shared map[string]uint64
	arch   wmma.Arch
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

func (p *parser) line(line string) error {
	// Directives.
	if strings.HasPrefix(line, ".target") {
		f := strings.Fields(line)
		if len(f) != 2 {
			return fmt.Errorf("malformed .target")
		}
		switch f[1] {
		case "sm_70":
			p.arch = wmma.Volta
		case "sm_75":
			p.arch = wmma.Turing
		default:
			return fmt.Errorf("unknown target %q", f[1])
		}
		return nil
	}
	if strings.HasPrefix(line, ".entry") {
		return p.entry(line)
	}
	if strings.HasPrefix(line, ".shared") {
		if p.b == nil {
			return fmt.Errorf(".shared before .entry")
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return fmt.Errorf("want: .shared <name> <bytes>")
		}
		n, err := strconv.Atoi(f[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad shared size %q", f[2])
		}
		p.shared[f[1]] = p.b.Shared(n)
		return nil
	}
	if p.b == nil {
		return fmt.Errorf("instruction before .entry")
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(line, ":")
		if i < 0 || strings.ContainsAny(line[:i], " \t[],.%") {
			break
		}
		p.b.Label(line[:i])
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	// Guard predicate.
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return fmt.Errorf("guard without instruction")
		}
		g := line[1:sp]
		neg := false
		if strings.HasPrefix(g, "!") {
			neg = true
			g = g[1:]
		}
		r, err := p.reg(g)
		if err != nil {
			return err
		}
		p.b.At(r, neg)
		line = strings.TrimSpace(line[sp:])
	}
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	return p.instr(line)
}

func (p *parser) entry(line string) error {
	if p.b != nil {
		return fmt.Errorf("multiple .entry directives")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, ".entry"))
	name := rest
	params := ""
	if i := strings.Index(rest, "("); i >= 0 {
		name = strings.TrimSpace(rest[:i])
		j := strings.LastIndex(rest, ")")
		if j < i {
			return fmt.Errorf("unclosed parameter list")
		}
		params = rest[i+1 : j]
	}
	if name == "" {
		return fmt.Errorf("missing kernel name")
	}
	p.b = NewBuilder(name)
	for _, decl := range splitTop(params) {
		f := strings.Fields(decl)
		if len(f) != 3 || f[0] != ".param" || !strings.HasPrefix(f[1], ".") {
			return fmt.Errorf("malformed parameter %q (want .param .type name)", decl)
		}
		t, err := parseType(strings.TrimPrefix(f[1], "."))
		if err != nil {
			return err
		}
		p.regs["%"+f[2]] = p.b.Param(f[2], t)
	}
	return nil
}

// splitTop splits on commas that are not inside braces or brackets.
func splitTop(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func parseType(s string) (Type, error) {
	switch s {
	case "u32", "b32":
		return U32, nil
	case "s32":
		return S32, nil
	case "u64", "b64":
		return U64, nil
	case "f16":
		return F16, nil
	case "f16x2":
		return F16X2, nil
	case "f32":
		return F32, nil
	case "pred":
		return Pred, nil
	}
	return 0, fmt.Errorf("unknown type %q", s)
}

var sregNames = map[string]SReg{
	"%tid.x": SRegTidX, "%tid.y": SRegTidY, "%tid.z": SRegTidZ,
	"%ntid.x": SRegNTidX, "%ntid.y": SRegNTidY, "%ntid.z": SRegNTidZ,
	"%ctaid.x": SRegCtaIDX, "%ctaid.y": SRegCtaIDY, "%ctaid.z": SRegCtaIDZ,
	"%nctaid.x": SRegNCtaIDX, "%nctaid.y": SRegNCtaIDY, "%nctaid.z": SRegNCtaIDZ,
	"%laneid": SRegLaneID, "%warpid": SRegWarpID, "%clock": SRegClock,
}

// reg resolves a %name to its (possibly fresh) virtual register.
func (p *parser) reg(name string) (Reg, error) {
	if !strings.HasPrefix(name, "%") {
		return Reg{}, fmt.Errorf("register %q must start with %%", name)
	}
	if _, isS := sregNames[name]; isS {
		return Reg{}, fmt.Errorf("%s is a special register and cannot be written", name)
	}
	if r, ok := p.regs[name]; ok {
		return r, nil
	}
	r := p.b.Reg()
	p.regs[name] = r
	return r, nil
}

// operand resolves a source operand: register, special register, shared
// symbol, or immediate.
func (p *parser) operand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	if s, ok := sregNames[tok]; ok {
		return SR(s), nil
	}
	if strings.HasPrefix(tok, "%") {
		r, err := p.reg(tok)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	}
	if addr, ok := p.shared[tok]; ok {
		return Imm(addr), nil
	}
	// PTX hex-float: 0f3F800000.
	if strings.HasPrefix(tok, "0f") || strings.HasPrefix(tok, "0F") {
		v, err := strconv.ParseUint(tok[2:], 16, 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad hex float %q", tok)
		}
		return Imm(v), nil
	}
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return ImmS(v), nil
	}
	return Operand{}, fmt.Errorf("cannot parse operand %q", tok)
}

// addrOperand strips [..] from an address operand.
func (p *parser) addrOperand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return Operand{}, fmt.Errorf("address operand %q must be bracketed", tok)
	}
	return p.operand(tok[1 : len(tok)-1])
}

// fragment expands a {%a0:%a15} or {%a0,%a1,...} register range.
func (p *parser) fragment(tok string) ([]Reg, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "{") || !strings.HasSuffix(tok, "}") {
		return nil, fmt.Errorf("fragment %q must be braced", tok)
	}
	body := tok[1 : len(tok)-1]
	if i := strings.Index(body, ":"); i >= 0 {
		lo, hi := strings.TrimSpace(body[:i]), strings.TrimSpace(body[i+1:])
		base, loN, err := splitRegNum(lo)
		if err != nil {
			return nil, err
		}
		base2, hiN, err := splitRegNum(hi)
		if err != nil {
			return nil, err
		}
		if base != base2 || hiN < loN {
			return nil, fmt.Errorf("malformed range %q", tok)
		}
		var out []Reg
		for n := loN; n <= hiN; n++ {
			r, err := p.reg(fmt.Sprintf("%s%d", base, n))
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}
	var out []Reg
	for _, f := range splitTop(body) {
		r, err := p.reg(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func splitRegNum(s string) (string, int, error) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) || i == 0 {
		return "", 0, fmt.Errorf("register %q has no numeric suffix for ranging", s)
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return "", 0, err
	}
	return s[:i], n, nil
}

func (p *parser) instr(line string) error {
	sp := strings.IndexAny(line, " \t")
	op := line
	rest := ""
	if sp >= 0 {
		op = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	args := splitTop(rest)
	dots := strings.Split(op, ".")

	switch dots[0] {
	case "wmma":
		return p.wmma(dots, args)
	case "bar":
		p.b.Bar()
		return nil
	case "exit":
		p.b.Exit()
		return nil
	case "bra":
		if len(args) != 1 {
			return fmt.Errorf("bra wants one label")
		}
		// The builder's pending guard (set by the @ prefix) applies.
		p.b.Bra(args[0])
		return nil
	case "clock":
		if len(args) != 1 {
			return fmt.Errorf("clock wants one destination")
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		p.b.Clock(d)
		return nil
	case "ld", "st":
		return p.memory(dots, args)
	}

	// Typed ALU forms: op.type or cvt.dst.src or setp.cmp.type or
	// mul.wide.u32 / mad.wide variants.
	switch dots[0] {
	case "mov", "add", "sub", "mul", "mad", "div", "rem", "min", "max",
		"and", "or", "xor", "shl", "shr", "cvt", "setp", "selp":
	default:
		return fmt.Errorf("unknown instruction %q", op)
	}
	if len(dots) < 2 {
		return fmt.Errorf("%s needs a type suffix", dots[0])
	}
	if len(args) < 2 {
		return fmt.Errorf("%s needs operands", op)
	}
	d, err := p.reg(args[0])
	if err != nil {
		return err
	}
	srcs := make([]Operand, 0, 3)
	for _, a := range args[1:] {
		o, err := p.operand(a)
		if err != nil {
			return err
		}
		srcs = append(srcs, o)
	}
	bin := func(emit func(Type, Reg, Operand, Operand)) error {
		t, err := parseType(dots[1])
		if err != nil {
			return err
		}
		if len(srcs) != 2 {
			return fmt.Errorf("%s wants two sources", op)
		}
		emit(t, d, srcs[0], srcs[1])
		return nil
	}
	switch dots[0] {
	case "mov":
		t, err := parseType(dots[1])
		if err != nil {
			return err
		}
		if len(srcs) != 1 {
			return fmt.Errorf("mov wants one source")
		}
		p.b.Mov(t, d, srcs[0])
		return nil
	case "add":
		return bin(p.b.Add)
	case "sub":
		return bin(p.b.Sub)
	case "mul":
		if dots[1] == "wide" {
			if len(srcs) != 2 {
				return fmt.Errorf("mul.wide wants two sources")
			}
			p.b.MulWide(d, srcs[0], srcs[1])
			return nil
		}
		return bin(p.b.Mul)
	case "div":
		return bin(p.b.Div)
	case "rem":
		return bin(p.b.Rem)
	case "min":
		return bin(p.b.Min)
	case "max":
		return bin(p.b.Max)
	case "and":
		return bin(p.b.And)
	case "or":
		return bin(p.b.Or)
	case "xor":
		return bin(p.b.Xor)
	case "shl":
		return bin(p.b.Shl)
	case "shr":
		return bin(p.b.Shr)
	case "mad":
		t, err := parseType(dots[1])
		if err != nil {
			return err
		}
		if len(srcs) != 3 {
			return fmt.Errorf("mad wants three sources")
		}
		p.b.Mad(t, d, srcs[0], srcs[1], srcs[2])
		return nil
	case "cvt":
		if len(dots) != 3 {
			return fmt.Errorf("cvt wants cvt.<dst>.<src>")
		}
		dt, err := parseType(dots[1])
		if err != nil {
			return err
		}
		st, err := parseType(dots[2])
		if err != nil {
			return err
		}
		if len(srcs) != 1 {
			return fmt.Errorf("cvt wants one source")
		}
		p.b.Cvt(dt, st, d, srcs[0])
		return nil
	case "setp":
		if len(dots) != 3 {
			return fmt.Errorf("setp wants setp.<cmp>.<type>")
		}
		cmp, err := parseCmp(dots[1])
		if err != nil {
			return err
		}
		t, err := parseType(dots[2])
		if err != nil {
			return err
		}
		if len(srcs) != 2 {
			return fmt.Errorf("setp wants two sources")
		}
		p.b.Setp(t, cmp, d, srcs[0], srcs[1])
		return nil
	case "selp":
		t, err := parseType(dots[1])
		if err != nil {
			return err
		}
		if len(srcs) != 3 {
			return fmt.Errorf("selp wants three sources")
		}
		p.b.Selp(t, d, srcs[0], srcs[1], srcs[2])
		return nil
	}
	return fmt.Errorf("unknown instruction %q", op)
}

func parseCmp(s string) (CmpOp, error) {
	switch s {
	case "eq":
		return CmpEQ, nil
	case "ne":
		return CmpNE, nil
	case "lt":
		return CmpLT, nil
	case "le":
		return CmpLE, nil
	case "gt":
		return CmpGT, nil
	case "ge":
		return CmpGE, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func (p *parser) memory(dots []string, args []string) error {
	if len(dots) != 3 {
		return fmt.Errorf("want %s.<space>.<bits>", dots[0])
	}
	var space Space
	switch dots[1] {
	case "global":
		space = Global
	case "shared":
		space = Shared
	case "generic":
		space = Generic
	default:
		return fmt.Errorf("unknown space %q", dots[1])
	}
	width, err := strconv.Atoi(dots[2])
	if err != nil || (width != 16 && width != 32 && width != 64 && width != 128) {
		return fmt.Errorf("bad width %q", dots[2])
	}
	words := width / 32
	if words == 0 {
		words = 1
	}
	if dots[0] == "ld" {
		if len(args) != 2 {
			return fmt.Errorf("ld wants dst(s), [addr]")
		}
		var dst []Reg
		if strings.HasPrefix(args[0], "{") {
			dst, err = p.fragment(args[0])
		} else {
			var r Reg
			r, err = p.reg(args[0])
			dst = []Reg{r}
		}
		if err != nil {
			return err
		}
		if len(dst) != words && width > 32 {
			return fmt.Errorf("%d-bit load needs %d destination registers", width, words)
		}
		addr, err := p.addrOperand(args[1])
		if err != nil {
			return err
		}
		p.b.Ld(space, width, dst, addr)
		return nil
	}
	if len(args) < 2 {
		return fmt.Errorf("st wants [addr], src(s)")
	}
	addr, err := p.addrOperand(args[0])
	if err != nil {
		return err
	}
	var srcs []Operand
	for _, a := range args[1:] {
		if strings.HasPrefix(a, "{") {
			regs, err := p.fragment(a)
			if err != nil {
				return err
			}
			for _, r := range regs {
				srcs = append(srcs, R(r))
			}
			continue
		}
		o, err := p.operand(a)
		if err != nil {
			return err
		}
		srcs = append(srcs, o)
	}
	if len(srcs) != words {
		return fmt.Errorf("%d-bit store needs %d source registers", width, words)
	}
	p.b.St(space, width, addr, srcs)
	return nil
}

// wmma parses the three tensor-core instructions:
//
//	wmma.load.a.sync.row.m16n16k16.f16 {%a0:%a15}, [%ptr], 16;
//	wmma.mma.sync.row.col.m16n16k16.f32.f32 {%d0:%d7}, {%a0:%a15}, {%b0:%b15}, {%c0:%c7};
//	wmma.store.d.sync.row.m16n16k16.f32 [%ptr], {%d0:%d7}, 16;
func (p *parser) wmma(dots []string, args []string) error {
	if len(dots) < 4 {
		return fmt.Errorf("truncated wmma instruction")
	}
	if dots[1] == "mma" {
		if dots[2] != "sync" {
			return fmt.Errorf("wmma instructions require the .sync qualifier")
		}
		// wmma.mma.sync.alayout.blayout.shape.dtype.ctype
		if len(dots) != 8 {
			return fmt.Errorf("want wmma.mma.sync.<alayout>.<blayout>.<shape>.<dtype>.<ctype>")
		}
		al, err := parseLayout(dots[3])
		if err != nil {
			return err
		}
		bl, err := parseLayout(dots[4])
		if err != nil {
			return err
		}
		shape, err := parseShape(dots[5])
		if err != nil {
			return err
		}
		dt, err := parsePrecision(dots[6])
		if err != nil {
			return err
		}
		ct, err := parsePrecision(dots[7])
		if err != nil {
			return err
		}
		if len(args) != 4 {
			return fmt.Errorf("wmma.mma wants d, a, b, c fragments")
		}
		fd, err := p.fragment(args[0])
		if err != nil {
			return err
		}
		fa, err := p.fragment(args[1])
		if err != nil {
			return err
		}
		fb, err := p.fragment(args[2])
		if err != nil {
			return err
		}
		fc, err := p.fragment(args[3])
		if err != nil {
			return err
		}
		cfg := wmma.Config{Arch: p.arch, Shape: shape, ALayout: al, BLayout: bl,
			AType: wmma.F16, CType: ct, DType: dt}
		if ct.IsInt() || dt.IsInt() {
			cfg.AType = wmma.S8
		}
		got := p.b.WmmaMMA(cfg, fa, fb, fc)
		if got == nil {
			return fmt.Errorf("invalid wmma.mma configuration %v", cfg)
		}
		if len(fd) != len(got) {
			return fmt.Errorf("destination fragment has %d registers, mma produces %d", len(fd), len(got))
		}
		// Re-bind the destination names onto the registers the mma
		// actually wrote (the C fragment for in-place accumulation, or a
		// fresh range when dtype differs from ctype).
		return p.alias(fd, got)
	}

	// wmma.load.{a,b,c}.sync.layout.shape.type  /  wmma.store.d.sync...
	isLoad := dots[1] == "load"
	isStore := dots[1] == "store"
	if !isLoad && !isStore {
		return fmt.Errorf("unknown wmma form %q", strings.Join(dots, "."))
	}
	if len(dots) != 7 {
		return fmt.Errorf("want wmma.%s.<op>.sync.<layout>.<shape>.<type>", dots[1])
	}
	var opnd wmma.Operand
	switch dots[2] {
	case "a":
		opnd = wmma.MatrixA
	case "b":
		opnd = wmma.MatrixB
	case "c", "d":
		opnd = wmma.MatrixC
	default:
		return fmt.Errorf("unknown wmma operand %q", dots[2])
	}
	if dots[3] != "sync" {
		return fmt.Errorf("wmma requires .sync")
	}
	layout, err := parseLayout(dots[4])
	if err != nil {
		return err
	}
	shape, err := parseShape(dots[5])
	if err != nil {
		return err
	}
	elem, err := parsePrecision(dots[6])
	if err != nil {
		return err
	}
	if isLoad {
		if len(args) != 3 {
			return fmt.Errorf("wmma.load wants frag, [addr], stride")
		}
		frag, err := p.fragment(args[0])
		if err != nil {
			return err
		}
		addr, err := p.addrOperand(args[1])
		if err != nil {
			return err
		}
		stride, err := p.operand(args[2])
		if err != nil {
			return err
		}
		got := p.b.WmmaLoad(p.arch, shape, opnd, layout, elem, addr, stride)
		if got == nil {
			return fmt.Errorf("invalid wmma.load configuration")
		}
		if len(frag) != len(got) {
			return fmt.Errorf("fragment has %d registers, mapping needs %d", len(frag), len(got))
		}
		// Re-point the user's names at the allocated registers.
		return p.alias(frag, got)
	}
	if len(args) != 3 {
		return fmt.Errorf("wmma.store wants [addr], frag, stride")
	}
	addr, err := p.addrOperand(args[0])
	if err != nil {
		return err
	}
	frag, err := p.fragment(args[1])
	if err != nil {
		return err
	}
	stride, err := p.operand(args[2])
	if err != nil {
		return err
	}
	p.b.WmmaStore(p.arch, shape, layout, elem, addr, frag, stride)
	return nil
}

// alias re-binds parsed fragment register names onto the registers the
// builder allocated, so later references resolve to the loaded values.
func (p *parser) alias(names, actual []Reg) error {
	// Find the textual names bound to `names` and rebind them.
	for nm, r := range p.regs {
		for i := range names {
			if r == names[i] {
				p.regs[nm] = actual[i]
			}
		}
	}
	return nil
}

func parseLayout(s string) (tensor.Layout, error) {
	switch s {
	case "row":
		return tensor.RowMajor, nil
	case "col":
		return tensor.ColMajor, nil
	}
	return 0, fmt.Errorf("unknown layout %q", s)
}

func parseShape(s string) (wmma.Shape, error) {
	switch s {
	case "m16n16k16":
		return wmma.M16N16K16, nil
	case "m32n8k16":
		return wmma.M32N8K16, nil
	case "m8n32k16":
		return wmma.M8N32K16, nil
	case "m8n8k32":
		return wmma.M8N8K32, nil
	}
	return wmma.Shape{}, fmt.Errorf("unknown shape %q", s)
}

func parsePrecision(s string) (wmma.Precision, error) {
	switch s {
	case "f16":
		return wmma.F16, nil
	case "f32":
		return wmma.F32, nil
	case "s8":
		return wmma.S8, nil
	case "u8":
		return wmma.U8, nil
	case "s4":
		return wmma.S4, nil
	case "u4":
		return wmma.U4, nil
	case "s32":
		return wmma.S32, nil
	}
	return 0, fmt.Errorf("unknown precision %q", s)
}
