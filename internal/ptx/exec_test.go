package ptx

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// runKernel executes a single-CTA kernel functionally and returns the
// global memory.
func runKernel(t *testing.T, k *Kernel, block Dim3, memBytes int, args ...uint64) *FlatMemory {
	t.Helper()
	mem := NewFlatMemory(memBytes)
	if err := RunGrid(k, mem, D1(1), block, args); err != nil {
		t.Fatal(err)
	}
	return mem
}

func u32At(m *FlatMemory, addr uint64) uint32 { return binary.LittleEndian.Uint32(m.Data[addr:]) }
func f32At(m *FlatMemory, addr uint64) float32 {
	return math.Float32frombits(u32At(m, addr))
}

func TestALUAndStore(t *testing.T) {
	b := NewBuilder("alu")
	out := b.Param("out", U64)
	r1, r2, r3 := b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, r1, Imm(21))
	b.Add(U32, r2, R(r1), Imm(21)) // 42
	b.Mul(U32, r3, R(r2), Imm(3))  // 126
	b.Sub(U32, r3, R(r3), Imm(26)) // 100
	b.Shl(U32, r3, R(r3), Imm(2))  // 400
	b.Shr(U32, r3, R(r3), Imm(4))  // 25
	b.St(Global, 32, R(out), []Operand{R(r3)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	if got := u32At(mem, 0); got != 25 {
		t.Errorf("result = %d, want 25", got)
	}
}

func TestSignedArithmetic(t *testing.T) {
	b := NewBuilder("signed")
	out := b.Param("out", U64)
	r := b.Reg()
	b.Mov(S32, r, ImmS(-7))
	b.Div(S32, r, R(r), Imm(2)) // -3 (truncating)
	b.St(Global, 32, R(out), []Operand{R(r)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	if got := int32(u32At(mem, 0)); got != -3 {
		t.Errorf("-7/2 = %d, want -3", got)
	}
	// Arithmetic shift right of a negative value keeps the sign.
	b2 := NewBuilder("sar")
	out2 := b2.Param("out", U64)
	r2 := b2.Reg()
	b2.Mov(S32, r2, ImmS(-8))
	b2.Shr(S32, r2, R(r2), Imm(1))
	b2.St(Global, 32, R(out2), []Operand{R(r2)})
	b2.Exit()
	mem2 := runKernel(t, b2.MustBuild(), D1(1), 64, 0)
	if got := int32(u32At(mem2, 0)); got != -4 {
		t.Errorf("-8 >> 1 = %d, want -4", got)
	}
}

func TestFloatOpsAndFMA(t *testing.T) {
	b := NewBuilder("float")
	out := b.Param("out", U64)
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	b.Mov(F32, x, Imm(uint64(math.Float32bits(1.5))))
	b.Mov(F32, y, Imm(uint64(math.Float32bits(2.0))))
	b.Mad(F32, z, R(x), R(y), R(x)) // 1.5*2 + 1.5 = 4.5
	b.St(Global, 32, R(out), []Operand{R(z)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	if got := f32At(mem, 0); got != 4.5 {
		t.Errorf("fma = %v, want 4.5", got)
	}
}

func TestF16X2Packed(t *testing.T) {
	b := NewBuilder("h2")
	out := b.Param("out", U64)
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	pack := func(hi, lo float64) uint64 {
		return uint64(fp16.FromFloat64(hi).Bits())<<16 | uint64(fp16.FromFloat64(lo).Bits())
	}
	b.Mov(U32, x, Imm(pack(2, 3)))
	b.Mov(U32, y, Imm(pack(5, 7)))
	b.Mul(F16X2, z, R(x), R(y)) // (10, 21)
	b.St(Global, 32, R(out), []Operand{R(z)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	v := u32At(mem, 0)
	lo := fp16.FromBits(uint16(v)).Float64()
	hi := fp16.FromBits(uint16(v >> 16)).Float64()
	if lo != 21 || hi != 10 {
		t.Errorf("f16x2 mul = (%v, %v), want (10, 21)", hi, lo)
	}
}

func TestLoopControlFlow(t *testing.T) {
	b := NewBuilder("loop")
	out := b.Param("out", U64)
	i, sum, p := b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, i, Imm(0))
	b.Mov(U32, sum, Imm(0))
	b.Label("top")
	b.Add(U32, i, R(i), Imm(1))
	b.Add(U32, sum, R(sum), R(i))
	b.Setp(U32, CmpLT, p, R(i), Imm(10))
	b.BraIf(p, false, "top")
	b.St(Global, 32, R(out), []Operand{R(sum)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	if got := u32At(mem, 0); got != 55 {
		t.Errorf("sum 1..10 = %d, want 55", got)
	}
}

func TestPredicationPerLane(t *testing.T) {
	// Even lanes write 1, odd lanes write 2, via guarded stores.
	b := NewBuilder("pred")
	out := b.Param("out", U64)
	lane, bit, p, addr, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, lane, SR(SRegLaneID))
	b.And(U32, bit, R(lane), Imm(1))
	b.Setp(U32, CmpEQ, p, R(bit), Imm(0))
	b.Selp(U32, v, Imm(1), Imm(2), R(p))
	b.MulWide(addr, R(lane), Imm(4))
	b.Add(U64, addr, R(addr), R(out))
	b.St(Global, 32, R(addr), []Operand{R(v)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(32), 256, 0)
	for lane := 0; lane < 32; lane++ {
		want := uint32(1)
		if lane%2 == 1 {
			want = 2
		}
		if got := u32At(mem, uint64(4*lane)); got != want {
			t.Fatalf("lane %d wrote %d, want %d", lane, got, want)
		}
	}
}

func TestDivergentBranchErrors(t *testing.T) {
	b := NewBuilder("diverge")
	lane, bit, p := b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, lane, SR(SRegLaneID))
	b.And(U32, bit, R(lane), Imm(1))
	b.Setp(U32, CmpEQ, p, R(bit), Imm(0))
	b.Label("skip")
	b.BraIf(p, false, "skip")
	b.Exit()
	mem := NewFlatMemory(64)
	if err := RunGrid(b.MustBuild(), mem, D1(1), D1(32), nil); err == nil {
		t.Fatal("divergent branch should be rejected")
	}
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	// Each thread writes tid to shared, barrier, then reads neighbour's
	// value (tid+1 mod 64) and stores to global.
	b := NewBuilder("smem")
	out := b.Param("out", U64)
	smem := b.Shared(64 * 4)
	tid, a, v, nb := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, tid, SR(SRegTidX))
	b.MulWide(a, R(tid), Imm(4))
	b.Add(U64, a, R(a), Imm(smem))
	b.St(Shared, 32, R(a), []Operand{R(tid)})
	b.Bar()
	b.Add(U32, nb, R(tid), Imm(1))
	b.And(U32, nb, R(nb), Imm(63))
	b.MulWide(a, R(nb), Imm(4))
	b.Add(U64, a, R(a), Imm(smem))
	b.Ld(Generic, 32, []Reg{v}, R(a))
	b.MulWide(a, R(tid), Imm(4))
	b.Add(U64, a, R(a), R(out))
	b.St(Global, 32, R(a), []Operand{R(v)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(64), 64*4, 0)
	for tid := 0; tid < 64; tid++ {
		want := uint32((tid + 1) % 64)
		if got := u32At(mem, uint64(4*tid)); got != want {
			t.Fatalf("thread %d read %d, want %d", tid, got, want)
		}
	}
}

func TestVectorizedLoadStore(t *testing.T) {
	b := NewBuilder("vec")
	in := b.Param("in", U64)
	out := b.Param("out", U64)
	regs := b.Regs(4)
	b.Ld(Global, 128, regs, R(in))
	b.St(Global, 128, R(out), []Operand{R(regs[0]), R(regs[1]), R(regs[2]), R(regs[3])})
	b.Exit()
	mem := NewFlatMemory(128)
	for i := 0; i < 16; i++ {
		mem.Data[i] = byte(i * 7)
	}
	if err := RunGrid(b.MustBuild(), mem, D1(1), D1(1), []uint64{0, 64}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if mem.Data[64+i] != byte(i*7) {
			t.Fatalf("byte %d: got %d, want %d", i, mem.Data[64+i], byte(i*7))
		}
	}
}

func TestSpecialRegisters(t *testing.T) {
	b := NewBuilder("sregs")
	out := b.Param("out", U64)
	tid, ctaid, a := b.Reg(), b.Reg(), b.Reg()
	b.Mov(U32, tid, SR(SRegTidX))
	b.Mov(U32, ctaid, SR(SRegCtaIDX))
	// out[ctaid*blockDim + tid] = ctaid*1000 + tid
	v := b.Reg()
	b.Mad(U32, v, R(ctaid), Imm(1000), R(tid))
	linear := b.Reg()
	b.Mad(U32, linear, R(ctaid), SR(SRegNTidX), R(tid))
	b.MulWide(a, R(linear), Imm(4))
	b.Add(U64, a, R(a), R(out))
	b.St(Global, 32, R(a), []Operand{R(v)})
	b.Exit()
	mem := NewFlatMemory(4 * 8 * 3)
	if err := RunGrid(b.MustBuild(), mem, D1(3), D1(8), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	for cta := 0; cta < 3; cta++ {
		for tid := 0; tid < 8; tid++ {
			want := uint32(cta*1000 + tid)
			if got := u32At(mem, uint64(4*(cta*8+tid))); got != want {
				t.Fatalf("cta %d tid %d: got %d, want %d", cta, tid, got, want)
			}
		}
	}
}

func TestClockAdvances(t *testing.T) {
	b := NewBuilder("clock")
	out := b.Param("out", U64)
	c0, c1, d := b.Reg(), b.Reg(), b.Reg()
	b.Clock(c0)
	b.Add(U32, d, Imm(0), Imm(0)) // filler work
	b.Add(U32, d, R(d), Imm(1))
	b.Clock(c1)
	b.Sub(U32, d, R(c1), R(c0))
	b.St(Global, 32, R(out), []Operand{R(d)})
	b.Exit()
	mem := runKernel(t, b.MustBuild(), D1(1), 64, 0)
	if got := u32At(mem, 0); got == 0 {
		t.Error("clock did not advance across instructions")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Bra("nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Error("unknown label should fail Build")
	}
	b2 := NewBuilder("dup")
	b2.Label("l")
	b2.Label("l")
	b2.Exit()
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate label should fail Build")
	}
}

// writeF16Matrix lays out a host matrix in memory as binary16 with the
// matrix's own layout and stride.
func writeF16Matrix(mem *FlatMemory, base uint64, m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			bits := fp16.FromFloat64(m.At(i, j)).Bits()
			binary.LittleEndian.PutUint16(mem.Data[base+2*uint64(m.Index(i, j)):], bits)
		}
	}
}

func writeF32Matrix(mem *FlatMemory, base uint64, m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			binary.LittleEndian.PutUint32(mem.Data[base+4*uint64(m.Index(i, j)):], math.Float32bits(float32(m.At(i, j))))
		}
	}
}

func readF32Matrix(mem *FlatMemory, base uint64, rows, cols int, layout tensor.Layout) *tensor.Matrix {
	m := tensor.New(rows, cols, layout)
	m.FillFunc(func(i, j int) float64 {
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(mem.Data[base+4*uint64(m.Index(i, j)):])))
	})
	return m
}

// End to end: wmma.load ×3, wmma.mma, wmma.store through the executor must
// equal the pure functional model.
func TestWmmaEndToEnd(t *testing.T) {
	for _, cfg := range []wmma.Config{
		{Arch: wmma.Volta, Shape: wmma.M16N16K16, ALayout: tensor.RowMajor, BLayout: tensor.ColMajor, AType: wmma.F16, CType: wmma.F32, DType: wmma.F32},
		{Arch: wmma.Volta, Shape: wmma.M16N16K16, ALayout: tensor.ColMajor, BLayout: tensor.RowMajor, AType: wmma.F16, CType: wmma.F32, DType: wmma.F32},
		{Arch: wmma.Volta, Shape: wmma.M16N16K16, ALayout: tensor.RowMajor, BLayout: tensor.RowMajor, AType: wmma.F16, CType: wmma.F16, DType: wmma.F16},
	} {
		const baseA, baseB, baseC, baseD = 0, 1024, 2048, 4096
		b := NewBuilder("wmma_once")
		pa := b.Param("a", U64)
		pb := b.Param("b", U64)
		pc := b.Param("c", U64)
		pd := b.Param("d", U64)
		fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, R(pa), Imm(16))
		fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, R(pb), Imm(16))
		fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, tensor.RowMajor, cfg.CType, R(pc), Imm(16))
		fd := b.WmmaMMA(cfg, fa, fb, fc)
		b.WmmaStore(cfg.Arch, cfg.Shape, tensor.RowMajor, cfg.DType, R(pd), fd, Imm(16))
		b.Exit()
		k := b.MustBuild()

		a := tensor.New(16, 16, cfg.ALayout)
		bm := tensor.New(16, 16, cfg.BLayout)
		c := tensor.New(16, 16, tensor.RowMajor)
		rngFill(a, 3)
		rngFill(bm, 5)
		rngFill(c, 7)

		mem := NewFlatMemory(8192)
		writeF16Matrix(mem, baseA, a)
		writeF16Matrix(mem, baseB, bm)
		if cfg.CType == wmma.F32 {
			writeF32Matrix(mem, baseC, c)
		} else {
			writeF16Matrix(mem, baseC, c)
		}
		if err := RunGrid(k, mem, D1(1), D1(32), []uint64{baseA, baseB, baseC, baseD}); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		want := wmma.MustMMA(cfg, a, bm, c, tensor.RowMajor)
		var got *tensor.Matrix
		if cfg.DType == wmma.F32 {
			got = readF32Matrix(mem, baseD, 16, 16, tensor.RowMajor)
		} else {
			got = tensor.New(16, 16, tensor.RowMajor)
			got.FillFunc(func(i, j int) float64 {
				bits := binary.LittleEndian.Uint16(mem.Data[baseD+2*uint64(got.Index(i, j)):])
				return fp16.FromBits(bits).Float64()
			})
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("%v: executor result differs from functional model by %g", cfg, d)
		}
	}
}

func rngFill(m *tensor.Matrix, seed int) {
	n := seed
	m.FillFunc(func(int, int) float64 {
		n = (n*1103515245 + 12345) & 0x7fffffff
		return float64(n%32-16) / 8
	})
}

// The accesses reported for a row-major wmma.load.a must be the two
// 128-bit loads of Section III-C.
func TestWmmaLoadAccessShapes(t *testing.T) {
	b := NewBuilder("wmma_access")
	pa := b.Param("a", U64)
	b.WmmaLoad(wmma.Volta, wmma.M16N16K16, wmma.MatrixA, tensor.RowMajor, wmma.F16, R(pa), Imm(16))
	b.Exit()
	k := b.MustBuild()
	env := &Env{Global: NewFlatMemory(1024), BlockDim: D1(32), GridDim: D1(1), Clock: func() uint64 { return 0 }}
	w, err := NewWarp(k, env, 0, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Step()
	if err != nil {
		t.Fatal(err)
	}
	perLane := map[int]int{}
	for _, a := range res.LaneAccesses() {
		if a.Bits != 128 {
			t.Fatalf("access of %d bits, want 128", a.Bits)
		}
		perLane[a.Lane]++
	}
	for lane, n := range perLane {
		if n != 2 {
			t.Fatalf("lane %d issued %d accesses, want 2", lane, n)
		}
	}
	if len(perLane) != 32 {
		t.Fatalf("%d lanes accessed memory, want 32", len(perLane))
	}
}
