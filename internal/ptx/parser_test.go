package ptx

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

func TestParseVecAdd(t *testing.T) {
	src := `
.entry vecadd(.param .u64 a, .param .u64 b, .param .u64 c)
{
  mov.u32      %i, %tid.x;
  mul.wide.u32 %off, %i, 4;
  add.u64      %pa, %off, %a;
  add.u64      %pb, %off, %b;
  ld.global.32 %va, [%pa];
  ld.global.32 %vb, [%pb];
  add.u32      %va, %va, %vb;
  add.u64      %pc, %off, %c;
  st.global.32 [%pc], %va;
  exit;
}`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "vecadd" || len(k.Params) != 3 {
		t.Fatalf("kernel header: %s, %d params", k.Name, len(k.Params))
	}
	mem := NewFlatMemory(3 * 4 * 64)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint32(mem.Data[4*i:], uint32(i))
		binary.LittleEndian.PutUint32(mem.Data[4*(64+i):], uint32(100*i))
	}
	if err := RunGrid(k, mem, D1(1), D1(64), []uint64{0, 256, 512}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := binary.LittleEndian.Uint32(mem.Data[4*(128+i):]); got != uint32(101*i) {
			t.Fatalf("c[%d] = %d, want %d", i, got, 101*i)
		}
	}
}

func TestParseControlFlowAndPredicates(t *testing.T) {
	src := `
.entry count(.param .u64 out)
  mov.u32 %i, 0;
  mov.u32 %sum, 0;
top:
  add.u32 %i, %i, 1;
  add.u32 %sum, %sum, %i;
  setp.lt.u32 %p, %i, 10;
@%p bra top;
  selp.u32 %v, %sum, 0, %p;
@!%p st.global.32 [%out], %sum;
  exit;
`
	k := MustParse(src)
	mem := NewFlatMemory(64)
	if err := RunGrid(k, mem, D1(1), D1(1), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(mem.Data[0:]); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestParseSharedAndBarrier(t *testing.T) {
	src := `
.entry flip(.param .u64 out)
  .shared buf 256
  mov.u32      %tid, %tid.x;
  mul.wide.u32 %off, %tid, 4;
  add.u64      %sp, %off, buf;
  st.shared.32 [%sp], %tid;
  bar.sync;
  sub.u32      %rev, 63, %tid;
  mul.wide.u32 %roff, %rev, 4;
  add.u64      %rp, %roff, buf;
  ld.shared.32 %v, [%rp];
  add.u64      %gp, %off, %out;
  st.global.32 [%gp], %v;
  exit;
`
	k := MustParse(src)
	if k.SharedBytes != 256 {
		t.Fatalf("shared bytes = %d", k.SharedBytes)
	}
	mem := NewFlatMemory(256)
	if err := RunGrid(k, mem, D1(1), D1(64), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := binary.LittleEndian.Uint32(mem.Data[4*i:]); got != uint32(63-i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, 63-i)
		}
	}
}

func TestParseHexFloatAndVectorMemory(t *testing.T) {
	src := `
.entry f(.param .u64 out)
  mov.f32 %x, 0f40490FDB;        // π
  mov.f32 %y, 0f3F800000;        // 1.0
  mad.f32 %z, %x, %y, %y;        // π + 1
  mov.f32 %w, %z;
  st.global.128 [%out], {%z, %w, %x, %y};
  exit;
`
	k := MustParse(src)
	mem := NewFlatMemory(64)
	if err := RunGrid(k, mem, D1(1), D1(1), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint32(mem.Data[0:])
	if want := math.Float32bits(float32(math.Pi) + 1); got != want {
		t.Fatalf("π+1 bits = %#08x, want %#08x", got, want)
	}
}

// A full wmma GEMM tile written as PTX text must agree with the
// functional model.
func TestParseWmmaKernel(t *testing.T) {
	src := `
.target sm_70
.entry wmma_tile(.param .u64 a, .param .u64 b, .param .u64 c, .param .u64 d)
  wmma.load.a.sync.row.m16n16k16.f16 {%a0:%a15}, [%a], 16;
  wmma.load.b.sync.row.m16n16k16.f16 {%b0:%b15}, [%b], 16;
  wmma.load.c.sync.row.m16n16k16.f32 {%c0:%c7}, [%c], 16;
  wmma.mma.sync.row.row.m16n16k16.f32.f32 {%c0:%c7}, {%a0:%a15}, {%b0:%b15}, {%c0:%c7};
  wmma.store.d.sync.row.m16n16k16.f32 [%d], {%c0:%c7}, 16;
  exit;
`
	k := MustParse(src)
	a := tensor.New(16, 16, tensor.RowMajor)
	bm := tensor.New(16, 16, tensor.RowMajor)
	c := tensor.New(16, 16, tensor.RowMajor)
	rngFill(a, 11)
	rngFill(bm, 13)
	rngFill(c, 17)
	mem := NewFlatMemory(8192)
	writeF16Matrix(mem, 0, a)
	writeF16Matrix(mem, 1024, bm)
	writeF32Matrix(mem, 2048, c)
	if err := RunGrid(k, mem, D1(1), D1(32), []uint64{0, 1024, 2048, 4096}); err != nil {
		t.Fatal(err)
	}
	cfg := wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.RowMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32}
	want := wmma.MustMMA(cfg, a, bm, c, tensor.RowMajor)
	got := readF32Matrix(mem, 4096, 16, 16, tensor.RowMajor)
	if diff := tensor.MaxAbsDiff(got, want); diff != 0 {
		t.Fatalf("parsed wmma kernel differs from functional model by %g", diff)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no entry":        `mov.u32 %r, 1;`,
		"bad type":        ".entry k()\n mov.q99 %r, 1;",
		"unknown instr":   ".entry k()\n frobnicate.u32 %r, 1;",
		"bad target":      ".target sm_99\n.entry k()\n exit;",
		"bad label":       ".entry k()\n bra nowhere;\n exit;",
		"bad param":       ".entry k(.param u64 x)\n exit;",
		"sreg write":      ".entry k()\n mov.u32 %tid.x, 1;",
		"frag mismatch":   ".entry k(.param .u64 a)\n wmma.load.a.sync.row.m16n16k16.f16 {%a0:%a7}, [%a], 16;",
		"bad store width": ".entry k(.param .u64 a)\n st.global.64 [%a], %r0;",
		"dup entry":       ".entry k()\n exit;\n.entry j()\n exit;",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestParseTuringTarget(t *testing.T) {
	src := `
.target sm_75
.entry t(.param .u64 a)
  wmma.load.a.sync.row.m32n8k16.f16 {%a0:%a15}, [%a], 16;
  exit;
`
	k := MustParse(src)
	var found bool
	for _, in := range k.Instrs {
		if in.Op == OpWmmaLoad {
			found = true
			if in.WMap.Arch != wmma.Turing || in.WMap.Shape != wmma.M32N8K16 {
				t.Errorf("mapping arch/shape = %v/%v", in.WMap.Arch, in.WMap.Shape)
			}
		}
	}
	if !found {
		t.Fatal("no wmma.load parsed")
	}
}

func TestParseCommentsAndFormatting(t *testing.T) {
	src := strings.Join([]string{
		"// leading comment",
		".entry k(.param .u64 out)",
		"{",
		"  mov.u32 %v, 7; // trailing comment",
		"  st.global.32 [%out], %v;",
		"  exit;",
		"}",
	}, "\n")
	k := MustParse(src)
	mem := NewFlatMemory(16)
	if err := RunGrid(k, mem, D1(1), D1(1), []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(mem.Data[0:]); got != 7 {
		t.Fatalf("got %d", got)
	}
}
