package ptx

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

// The batched fragment path must be invisible at the architectural
// level: for any wmma kernel, the registers written, the bytes moved
// (global and shared), and the per-lane access stream the timing model
// sees must match the per-element legacy path exactly. The round-trip
// kernels below cover every mapping family the batched plans encode —
// both Volta layouts and precisions, the three Turing shapes, the
// integer datapath — plus the edges that force the per-element
// fallback: shared-window straddling runs and partially populated
// warps.

// wmmaRoundTrip builds a load A/B/C → mma → store D kernel for cfg,
// with C loaded from cAddr and D stored to dAddr (operands so tests can
// point them at shared memory or window-straddling bases).
func wmmaRoundTrip(t *testing.T, cfg wmma.Config, cLayout tensor.Layout, shared int) *Kernel {
	t.Helper()
	b := NewBuilder("wmma_frag")
	pa := b.Param("a", U64)
	pc := b.Param("c", U64)
	pd := b.Param("d", U64)
	var smem uint64
	if shared > 0 {
		smem = b.Shared(shared)
		// Fill the shared window deterministically: each lane stores a
		// few id-derived words before the wmma ops read them back.
		lane := b.Reg()
		b.Mov(U32, lane, SR(SRegLaneID))
		v := b.Reg()
		b.Mad(U32, v, R(lane), Imm(2654435761), Imm(97))
		addr := b.Reg()
		b.MulWide(addr, R(lane), Imm(4))
		b.Add(U64, addr, R(addr), Imm(smem))
		for i := 0; i < shared/(32*4); i++ {
			b.St(Shared, 32, R(addr), []Operand{R(v)})
			b.Add(U64, addr, R(addr), Imm(128))
			b.Add(U32, v, R(v), Imm(31))
		}
	}
	fa := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixA, cfg.ALayout, cfg.AType, R(pa), Imm(uint64(cfg.Shape.K)))
	fb := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixB, cfg.BLayout, cfg.AType, R(pa), Imm(uint64(cfg.Shape.K)))
	fc := b.WmmaLoad(cfg.Arch, cfg.Shape, wmma.MatrixC, cLayout, cfg.CType, R(pc), Imm(uint64(cfg.Shape.N)))
	fd := b.WmmaMMA(cfg, fa, fb, fc)
	b.WmmaStore(cfg.Arch, cfg.Shape, cLayout, cfg.DType, R(pd), fd, Imm(uint64(cfg.Shape.N)))
	b.Exit()
	return b.MustBuild()
}

// fragTestMem is a sparse global memory with deterministic background
// content: reads of untouched bytes derive from the address, writes
// land in a map. It accepts any address, so runs that resolve just
// below the generic shared window (huge global addresses) execute on
// both paths instead of overrunning a flat buffer.
type fragTestMem struct{ writes map[uint64]byte }

func newFragTestMem() *fragTestMem { return &fragTestMem{writes: make(map[uint64]byte)} }

func (m *fragTestMem) Read(addr uint64, buf []byte) {
	for i := range buf {
		a := addr + uint64(i)
		if v, ok := m.writes[a]; ok {
			buf[i] = v
		} else {
			buf[i] = byte(a*13 + 5)
		}
	}
}

func (m *fragTestMem) Write(addr uint64, data []byte) {
	for i, b := range data {
		m.writes[addr+uint64(i)] = b
	}
}

// fragRun captures everything the two fragment paths must agree on.
type fragRun struct {
	global   map[uint64]byte
	shared   []byte
	regs     []uint64
	accesses [][]Access
}

// runFragKernel executes the kernel on every warp of one CTA with the
// fragment path selected by legacy.
func runFragKernel(t *testing.T, k *Kernel, legacy bool, block Dim3, args []uint64) fragRun {
	t.Helper()
	defer SwapLegacyFragmentPath(legacy)()
	mem := newFragTestMem()
	env := &Env{
		Global:   mem,
		Shared:   make([]byte, k.SharedBytes),
		GridDim:  D1(1),
		BlockDim: block,
		Clock:    func() uint64 { return 0 },
	}
	run := fragRun{}
	nWarps := (block.Count() + 31) / 32
	for id := 0; id < nWarps; id++ {
		// Fresh warps per path: the knob is sampled at construction.
		w, err := NewWarp(k, env, id, args)
		if err != nil {
			t.Fatal(err)
		}
		for !w.Exited {
			res, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			if acc := res.LaneAccesses(); len(acc) > 0 {
				run.accesses = append(run.accesses, append([]Access(nil), acc...))
			}
		}
		run.regs = append(run.regs, append([]uint64(nil), w.regs...)...)
	}
	run.global = mem.writes
	run.shared = env.Shared
	return run
}

func compareFragRuns(t *testing.T, legacy, batched fragRun) {
	t.Helper()
	if !reflect.DeepEqual(legacy.accesses, batched.accesses) {
		for i := range legacy.accesses {
			if i < len(batched.accesses) && !reflect.DeepEqual(legacy.accesses[i], batched.accesses[i]) {
				t.Fatalf("access stream %d differs:\nlegacy:  %v\nbatched: %v",
					i, legacy.accesses[i], batched.accesses[i])
			}
		}
		t.Fatalf("access stream lengths differ: legacy %d, batched %d",
			len(legacy.accesses), len(batched.accesses))
	}
	if !reflect.DeepEqual(legacy.global, batched.global) {
		t.Error("global memory differs between fragment paths")
	}
	if !reflect.DeepEqual(legacy.shared, batched.shared) {
		t.Error("shared memory differs between fragment paths")
	}
	if !reflect.DeepEqual(legacy.regs, batched.regs) {
		t.Error("register state differs between fragment paths")
	}
}

func TestFragmentPathMatchesLegacy(t *testing.T) {
	volta := func(cd wmma.Precision, al, bl tensor.Layout) wmma.Config {
		return wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
			ALayout: al, BLayout: bl, AType: wmma.F16, CType: cd, DType: cd}
	}
	turing := func(sh wmma.Shape) wmma.Config {
		return wmma.Config{Arch: wmma.Turing, Shape: sh,
			ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
			AType: wmma.F16, CType: wmma.F32, DType: wmma.F32}
	}
	cases := []struct {
		name    string
		cfg     wmma.Config
		cLayout tensor.Layout
		shared  int
		block   Dim3
		args    []uint64
	}{
		{"volta_mixed_rowrow", volta(wmma.F32, tensor.RowMajor, tensor.RowMajor),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"volta_mixed_rowcol", volta(wmma.F32, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"volta_mixed_colcol", volta(wmma.F32, tensor.ColMajor, tensor.ColMajor),
			tensor.ColMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"volta_fp16acc", volta(wmma.F16, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"turing_16x16x16", turing(wmma.M16N16K16),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"turing_32x8x16", turing(wmma.M32N8K16),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"turing_8x32x16", turing(wmma.M8N32K16),
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		{"turing_s8", wmma.Config{Arch: wmma.Turing, Shape: wmma.M16N16K16,
			ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
			AType: wmma.S8, CType: wmma.S32, DType: wmma.S32},
			tensor.RowMajor, 0, D1(32), []uint64{0, 2048, 4096}},
		// C in shared memory, D stored back to shared: the batched
		// fragment movement must unpack from and pack into the window.
		{"volta_shared_cd", volta(wmma.F32, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 4096, D1(32), []uint64{0, SharedBase, SharedBase + 2048}},
		// C loads straddle the generic shared-window boundary: elements
		// below SharedBase resolve to global, the rest into the window,
		// so whole-run bulk moves must fall back per element.
		{"volta_window_straddle", volta(wmma.F32, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 4096, D1(32), []uint64{0, SharedBase - 16, SharedBase + 2048}},
		// A tiny window fully contained inside one fragment run: both
		// run endpoints resolve to global, but interior elements resolve
		// into the window, so the endpoint check alone must not claim
		// the bulk path. Load side: A/B's 32-byte f16 runs over a
		// 16-byte window; store side: D's 16-byte f16 runs over a
		// 4-byte window.
		{"volta_window_contained_load", volta(wmma.F32, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 16, D1(32), []uint64{SharedBase - 8, 2048, 4096}},
		{"volta_window_contained_store", volta(wmma.F16, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 4, D1(32), []uint64{0, 2048, SharedBase - 8}},
		// Partially populated warps (8 and 16 active lanes in warp 1/2)
		// take the per-lane fallback on both paths.
		{"partial_warps", volta(wmma.F32, tensor.RowMajor, tensor.ColMajor),
			tensor.RowMajor, 0, D1(32 + 16), []uint64{0, 2048, 4096}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := wmmaRoundTrip(t, tc.cfg, tc.cLayout, tc.shared)
			legacy := runFragKernel(t, k, true, tc.block, tc.args)
			batched := runFragKernel(t, k, false, tc.block, tc.args)
			compareFragRuns(t, legacy, batched)
		})
	}
}

// fragFuzzWarp builds a bare full-warp executor plus the decoded
// all-register operand shape the batched gather/scatter consumes.
func fragFuzzWarp(nslots int) (*Warp, *DInstr) {
	k := &Kernel{Name: "fragfuzz", NumRegs: nslots}
	w := &Warp{Kernel: k, Env: &Env{}}
	w.nLanes = 32
	for i := range w.Active {
		w.Active[i] = true
	}
	w.regs = make([]uint64, 32*nslots)
	in := &Instr{Op: OpWmmaMMA}
	d := &DInstr{In: in, predID: -1}
	for s := 0; s < nslots; s++ {
		in.Src = append(in.Src, R(Reg{ID: s}))
		in.Dst = append(in.Dst, Reg{ID: s})
		d.srcs = append(d.srcs, srcOp{kind: OperandReg, reg: int32(s)})
		d.dsts = append(d.dsts, int32(s))
	}
	return w, d
}

// coordBits derives a deterministic register value for a tile
// coordinate. Duplicate fragment copies (Volta A/B) receive identical
// bits, matching the architectural invariant wmma.load establishes —
// the property that makes the gather write order immaterial.
func coordBits(seed uint64, c wmma.Coord) uint64 {
	h := seed ^ (uint64(c.Row)*0x9E3779B97F4A7C15 + uint64(c.Col)*0xC2B2AE3D27D4EB4F + 1)
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// FuzzFragGatherMatchesReference drives the batched fragment machinery
// against the per-element reference across random mappings, layouts,
// precisions, strides and register images: the gathered tile, the
// scattered registers, and the per-lane memory addresses must all be
// bit-identical.
func FuzzFragGatherMatchesReference(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint64(1), int64(16))
	f.Add(uint8(0), uint8(0), uint8(1), uint8(1), uint8(0), uint64(2), int64(256))
	f.Add(uint8(0), uint8(0), uint8(2), uint8(0), uint8(1), uint64(3), int64(1))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), uint64(4), int64(8))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(1), uint8(0), uint64(5), int64(-16))
	f.Add(uint8(1), uint8(0), uint8(0), uint8(0), uint8(2), uint64(6), int64(3))
	f.Add(uint8(1), uint8(0), uint8(2), uint8(0), uint8(6), uint64(7), int64(17))
	f.Fuzz(func(t *testing.T, archSel, shapeSel, opSel, layoutSel, elemSel uint8, seed uint64, stride int64) {
		arch := wmma.Arch(archSel % 2)
		shape := []wmma.Shape{wmma.M16N16K16, wmma.M32N8K16, wmma.M8N32K16}[shapeSel%3]
		op := wmma.Operand(opSel % 3)
		layout := tensor.Layout(layoutSel % 2)
		elem := []wmma.Precision{wmma.F16, wmma.F32, wmma.S8, wmma.U8, wmma.S4, wmma.U4, wmma.S32}[elemSel%7]
		m, err := wmma.Map(arch, shape, op, layout, elem)
		if err != nil {
			t.Skip() // unsupported combination: nothing to compare
		}
		p := planFragment(m)
		if p == nil {
			t.Fatalf("standard mapping %v/%v/%v produced no plan", arch, shape, op)
		}
		w, d := fragFuzzWarp(p.slots)
		in := d.In
		in.WMap = m

		// Gather: consistent per-coordinate register bits, compared
		// bitwise (NaN payloads included).
		for lane := range m.Lanes {
			for slot, c := range m.Lanes[lane] {
				w.regs[lane*p.slots+slot] = coordBits(seed, c)
			}
		}
		ref := w.gatherTile(in, m, 0, elem, 0)
		vec := w.gatherTileVec(d, p, 0, elem, 1)
		if ref.Rows != vec.Rows || ref.Cols != vec.Cols {
			t.Fatalf("tile dims differ: %dx%d vs %dx%d", ref.Rows, ref.Cols, vec.Rows, vec.Cols)
		}
		for i := range ref.Data {
			if math.Float64bits(ref.Data[i]) != math.Float64bits(vec.Data[i]) {
				t.Fatalf("gather element %d differs: %v vs %v (mapping %v/%v/%v %v %v)",
					i, ref.Data[i], vec.Data[i], arch, shape, op, layout, elem)
			}
		}

		// Scatter: arbitrary tile values through both encode paths.
		rows, cols := m.Shape.Dims(m.Op)
		tile := tensor.New(rows, cols, tensor.RowMajor)
		for i := range tile.Data {
			tile.Data[i] = math.Float64frombits(coordBits(seed^0xABCD, wmma.Coord{Row: i, Col: 7}))
		}
		clear(w.regs)
		w.scatterTile(in, m, elem, tile)
		refRegs := append([]uint64(nil), w.regs...)
		clear(w.regs)
		w.scatterTileVec(d, p, elem, tile)
		if !reflect.DeepEqual(refRegs, w.regs) {
			t.Fatalf("scatter registers differ (mapping %v/%v/%v %v %v)", arch, shape, op, layout, elem)
		}

		// Addresses: the plan's factored offsets must reproduce
		// memOffsetFor for any stride, including negative and tiny ones.
		elemBytes := uint64(cuda4BitBytes(elem))
		base := seed&0xffff + 1
		for lane := 0; lane < 32; lane++ {
			addrs := w.fragLaneAddrs(p, lane, int(stride), base, elemBytes)
			for slot, c := range m.Lanes[lane] {
				want := base + uint64(memOffsetFor(m, c, int(stride)))*elemBytes
				if addrs[slot] != want {
					t.Fatalf("lane %d slot %d addr %#x, want %#x (stride %d)",
						lane, slot, addrs[slot], want, stride)
				}
			}
		}
	})
}
