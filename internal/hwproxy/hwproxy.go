// Package hwproxy is the calibrated analytical stand-in for the real
// GPUs the paper measured (Titan V, RTX 2080). We have no silicon, so the
// correlation experiments of Section V compare the cycle-level simulator
// against this closed-form roofline model, whose constants are the
// numbers the paper itself publishes: 80 SMs at 1530 MHz, 125 TFLOPS
// tensor peak, ~87.7 % sustainable tensor throughput (109.6/125), 652.8
// GB/s HBM2, the Figure 9 HMMA latencies, and the minimum wmma
// instruction latencies of Figure 15. The proxy predicts execution
// *time*; instruction counts are taken from the actual kernel (as they
// are when profiling hardware), so IPC correlations compare a detailed
// execution against an independent first-principles estimate.
//
// DESIGN.md documents this substitution: paper = real GPU → here =
// calibrated analytical model; the experiment shape (correlation across a
// workload sweep) is preserved.
package hwproxy

import "math"

// Model is an analytical GPU performance model.
type Model struct {
	Name     string
	SMs      int
	SubCores int
	ClockMHz float64

	// MMAOccupancy is the sustained tensor-unit cycles consumed per
	// wmma.mma per sub-core (≈36 on Volta: 8192 FLOP / 36 cycles / 256
	// peak FLOP per cycle ≈ the paper's measured 87.7 % of peak).
	MMAOccupancy float64
	// MMALatency is the dependent-chain latency of one wmma.mma
	// (Figure 9a: 54 cycles in mixed precision).
	MMALatency float64

	// DRAMBytesPerCycle is the chip DRAM bandwidth per core clock.
	DRAMBytesPerCycle float64
	// L2BytesPerCycle is the chip L2 bandwidth per core clock; panel
	// re-reads across thread blocks are served here rather than DRAM.
	L2BytesPerCycle float64

	// LaunchOverhead covers driver/launch/drain fixed cycles.
	LaunchOverhead float64

	// ChainPerKStep is the serial critical path one thread block spends
	// per 16-deep K step of a tensor-core GEMM (stage panels → barrier →
	// fragment loads → mma): this chain cannot overlap within a block, so
	// the last wave's chain adds to the throughput-bound time.
	ChainPerKStep float64

	// SimtFMAPerCycle is the per-SM SIMT FP32 FMA throughput (64 on
	// Volta); packed-half doubles it.
	SimtFMAPerCycle float64

	// LoadMinLatency/StoreMinLatency are the floor instruction latencies
	// of wmma.load/store (125/120 cycles, Figure 15).
	LoadMinLatency, StoreMinLatency float64
}

// TitanV returns the Volta proxy with the paper's published constants.
func TitanV() Model {
	return Model{
		Name:              "Titan V (proxy)",
		SMs:               80,
		SubCores:          4,
		ClockMHz:          1530,
		MMAOccupancy:      36,
		MMALatency:        54,
		DRAMBytesPerCycle: 427,  // 652.8 GB/s at 1.53 GHz
		L2BytesPerCycle:   1024, // 32 banks × 32 B/cycle
		LaunchOverhead:    1800,
		ChainPerKStep:     290, // stage + barrier + fragment loads + 54-cycle mma
		SimtFMAPerCycle:   64,
		LoadMinLatency:    125,
		StoreMinLatency:   120,
	}
}

// GemmKind selects which datapath a proxied GEMM uses.
type GemmKind int

const (
	TensorCore GemmKind = iota
	SimtFP32
	SimtFP16
)

// GemmSpec describes a GEMM workload for the proxy.
type GemmSpec struct {
	M, N, K int
	Kind    GemmKind
	// BlockM/BlockN are the threadblock tile dimensions (reuse factors
	// for the traffic model); CBytes the accumulator element size.
	BlockM, BlockN int
	CBytes         int
}

// Cycles predicts the execution time of the GEMM in core clock cycles as
// a roofline: max(compute, memory) plus fixed overhead and pipeline ramp.
func (h Model) Cycles(s GemmSpec) float64 {
	ctas := float64((s.M / s.BlockM) * (s.N / s.BlockN))
	effSMs := math.Min(ctas, float64(h.SMs))
	if effSMs < 1 {
		effSMs = 1
	}

	var compute float64
	switch s.Kind {
	case TensorCore:
		mmas := float64(s.M/16) * float64(s.N/16) * float64(s.K/16)
		perSM := mmas / effSMs
		compute = perSM * h.MMAOccupancy / float64(h.SubCores)
		// A K-chain of dependent mmas cannot beat the latency chain.
		chain := float64(s.K/16) * h.MMALatency
		if compute < chain {
			compute = chain
		}
	case SimtFP32, SimtFP16:
		fma := float64(s.M) * float64(s.N) * float64(s.K)
		per := h.SimtFMAPerCycle
		if s.Kind == SimtFP16 {
			per *= 2
		}
		// Issue-slot ceiling: SIMT GEMMs spend ~38 % of issues on
		// non-FMA work (loads, addressing, control).
		compute = fma / (per * 0.62 * effSMs)
	}

	// Memory traffic with block reuse: every A panel is read once per
	// block column and every B panel once per block row, but only the
	// first read of each element misses to DRAM — panel re-reads across
	// thread blocks are served from the L2.
	elemAB := 2.0
	if s.Kind == SimtFP32 {
		elemAB = 4
	}
	total := elemAB*float64(s.M)*float64(s.K)*float64(s.N/s.BlockN) +
		elemAB*float64(s.K)*float64(s.N)*float64(s.M/s.BlockM) +
		2*float64(s.CBytes)*float64(s.M)*float64(s.N)
	compulsory := elemAB*(float64(s.M)*float64(s.K)+float64(s.K)*float64(s.N)) +
		2*float64(s.CBytes)*float64(s.M)*float64(s.N)
	reuse := total - compulsory
	if reuse < 0 {
		reuse = 0
	}
	memory := math.Max(compulsory/h.DRAMBytesPerCycle, (compulsory+reuse)/h.L2BytesPerCycle)

	cycles := math.Max(compute, memory) + h.LaunchOverhead
	if s.Kind == TensorCore {
		// The final wave's per-block K chain is exposed, not overlapped.
		cycles += float64(s.K) / 16 * h.ChainPerKStep
	}
	return cycles
}

// Scale returns a copy of the model reduced to a chip slice of sms SMs,
// with bandwidth scaled proportionally — the counterpart of the
// simulator-side chip-slice substitution, so slice comparisons stay
// apples to apples.
func (h Model) Scale(sms int) Model {
	if sms <= 0 || sms >= h.SMs {
		return h
	}
	frac := float64(sms) / float64(h.SMs)
	h.SMs = sms
	h.DRAMBytesPerCycle *= frac
	h.L2BytesPerCycle *= frac
	return h
}

// Seconds converts proxy cycles to wall time.
func (h Model) Seconds(cycles float64) float64 { return cycles / (h.ClockMHz * 1e6) }

// TFLOPS returns the proxied throughput for a GEMM.
func (h Model) TFLOPS(s GemmSpec) float64 {
	fl := 2 * float64(s.M) * float64(s.N) * float64(s.K)
	return fl / h.Seconds(h.Cycles(s)) / 1e12
}

// IPC returns the proxy's instructions-per-cycle estimate given the
// workload's dynamic warp-instruction count (taken from the actual
// kernel, as a hardware profiler would).
func (h Model) IPC(warpInstructions uint64, s GemmSpec) float64 {
	return float64(warpInstructions) / h.Cycles(s)
}

// PeakTensorTFLOPS is the theoretical limit line of Figure 17.
func (h Model) PeakTensorTFLOPS() float64 {
	flopsPerCycle := float64(h.SMs*h.SubCores) * 2 * 16 * 8
	return flopsPerCycle * h.ClockMHz * 1e6 / 1e12
}

// MaxSustainedTensorTFLOPS is the throughput the MMAOccupancy calibration
// implies — matching the paper's measured 109.6 TFLOPS.
func (h Model) MaxSustainedTensorTFLOPS() float64 {
	perSubcore := 8192 / h.MMAOccupancy // FLOP per cycle
	return perSubcore * float64(h.SMs*h.SubCores) * h.ClockMHz * 1e6 / 1e12
}
