package hwproxy

import (
	"math"
	"testing"
)

func TestPeakMatchesPaper(t *testing.T) {
	h := TitanV()
	if p := h.PeakTensorTFLOPS(); math.Abs(p-125.3) > 1 {
		t.Errorf("peak = %.1f TFLOPS, want ≈ 125", p)
	}
	if s := h.MaxSustainedTensorTFLOPS(); math.Abs(s-109.5) > 3 {
		t.Errorf("sustained = %.1f TFLOPS, want ≈ 109.6 (paper Section V-C)", s)
	}
}

func tcSpec(n int) GemmSpec {
	return GemmSpec{M: n, N: n, K: n, Kind: TensorCore, BlockM: 64, BlockN: 64, CBytes: 4}
}

func TestCyclesMonotonicInSize(t *testing.T) {
	h := TitanV()
	prev := 0.0
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		c := h.Cycles(tcSpec(n))
		if c <= prev {
			t.Errorf("cycles(%d) = %v not increasing", n, c)
		}
		prev = c
	}
}

func TestTensorBeatsSimt(t *testing.T) {
	h := TitanV()
	n := 4096
	tc := h.TFLOPS(tcSpec(n))
	sg := h.TFLOPS(GemmSpec{M: n, N: n, K: n, Kind: SimtFP32, BlockM: 64, BlockN: 64, CBytes: 4})
	hg := h.TFLOPS(GemmSpec{M: n, N: n, K: n, Kind: SimtFP16, BlockM: 64, BlockN: 128, CBytes: 2})
	// The paper: tensor cores give ≈3–6× SGEMM and ≈3× HGEMM.
	if r := tc / sg; r < 3 || r > 12 {
		t.Errorf("TC/SGEMM ratio = %.2f, want within the paper's 3–6× ballpark", r)
	}
	if r := tc / hg; r < 2 || r > 6 {
		t.Errorf("TC/HGEMM ratio = %.2f, want ≈ 3×", r)
	}
	if hg <= sg {
		t.Errorf("HGEMM (%.1f) should beat SGEMM (%.1f)", hg, sg)
	}
}

func TestSmallSizesLaunchBound(t *testing.T) {
	h := TitanV()
	c := h.Cycles(tcSpec(64))
	if c < h.LaunchOverhead {
		t.Errorf("small GEMM %v cycles below launch overhead", c)
	}
	// Doubling a tiny problem should barely move the total.
	c2 := h.Cycles(tcSpec(128))
	if c2 > 3*c {
		t.Errorf("launch-bound region scaling too steep: %v → %v", c, c2)
	}
}

func TestTFLOPSSaturates(t *testing.T) {
	h := TitanV()
	big := h.TFLOPS(tcSpec(8192))
	peak := h.PeakTensorTFLOPS()
	if big > peak {
		t.Errorf("proxied %.1f TFLOPS exceeds theoretical %.1f", big, peak)
	}
	if big < 0.35*peak {
		t.Errorf("proxied %.1f TFLOPS too far below peak for 8192³ (64×64 tiles are L2-bound)", big)
	}
	// Paper: maximum GEMM throughput observed ≈ 96 TFLOPS at 8192², with
	// cuBLAS-class (large) tiles.
	cublas := h.TFLOPS(GemmSpec{M: 8192, N: 8192, K: 8192, Kind: TensorCore,
		BlockM: 128, BlockN: 128, CBytes: 4})
	if cublas < 85 || cublas > 112 {
		t.Errorf("8192³ large-tile GEMM = %.1f TFLOPS, paper measured ≈ 96", cublas)
	}
	if cublas <= big {
		t.Errorf("large tiles (%.1f) should beat 64×64 (%.1f) — the cuBLAS-vs-WMMA gap of Figure 17", cublas, big)
	}
}

func TestIPCUsesWorkloadInstructions(t *testing.T) {
	h := TitanV()
	s := tcSpec(512)
	if got := h.IPC(1000, s); got <= 0 {
		t.Error("IPC should be positive")
	}
	if h.IPC(2000, s) != 2*h.IPC(1000, s) {
		t.Error("IPC must scale with instruction count")
	}
}
