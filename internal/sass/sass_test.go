package sass

import (
	"strings"
	"testing"

	"repro/internal/tcore"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func mixedCfg() wmma.Config {
	return wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.F16, CType: wmma.F32, DType: wmma.F32}
}

func fp16Cfg() wmma.Config {
	c := mixedCfg()
	c.CType, c.DType = wmma.F16, wmma.F16
	return c
}

func TestExpandMMACounts(t *testing.T) {
	mixed, err := ExpandMMA(mixedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 16 {
		t.Errorf("mixed expands to %d instrs, want 16", len(mixed))
	}
	f16, err := ExpandMMA(fp16Cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f16) != 8 {
		t.Errorf("fp16 expands to %d instrs, want 8", len(f16))
	}
}

// The first lines of Figure 9a and 9b, verbatim.
func TestExpandMMAMatchesFigure9Listing(t *testing.T) {
	mixed, err := ExpandMMA(mixedCfg())
	if err != nil {
		t.Fatal(err)
	}
	wantMixed := []string{
		"HMMA.884.F32.F32.STEP0 R8, R24.reuse.COL, R22.reuse.ROW, R8;",
		"HMMA.884.F32.F32.STEP1 R10, R24.reuse.COL, R22.reuse.ROW, R10;",
		"HMMA.884.F32.F32.STEP2 R4, R24.reuse.COL, R22.reuse.ROW, R4;",
		"HMMA.884.F32.F32.STEP3 R6, R24.COL, R22.ROW, R6;",
		"HMMA.884.F32.F32.STEP0 R8, R20.reuse.COL, R18.reuse.ROW, R8;",
	}
	for i, want := range wantMixed {
		if got := mixed[i].String(); got != want {
			t.Errorf("mixed line %d:\n got  %s\n want %s", i, got, want)
		}
	}
	f16, err := ExpandMMA(fp16Cfg())
	if err != nil {
		t.Fatal(err)
	}
	wantF16 := []string{
		"HMMA.884.F16.F16.STEP0 R4, R22.reuse.T, R12.reuse.T, R4;",
		"HMMA.884.F16.F16.STEP1 R6, R22.T, R12.T, R6;",
		"HMMA.884.F16.F16.STEP0 R4, R16.reuse.T, R14.reuse.T, R4;",
	}
	for i, want := range wantF16 {
		if got := f16[i].String(); got != want {
			t.Errorf("fp16 line %d:\n got  %s\n want %s", i, got, want)
		}
	}
}

// Section III-C: the higher register identifier encodes the pair.
func TestRegisterPairEncoding(t *testing.T) {
	p := RegPair{8}
	if p.Low() != 7 {
		t.Errorf("pair <R8,R7>: Low() = R%d", p.Low())
	}
	mixed, _ := ExpandMMA(mixedCfg())
	// The destination register is also the accumulator source.
	for _, in := range mixed {
		if in.Dst.Reg != in.SrcC.Reg {
			t.Errorf("HMMA set %d step %d: dst %v != srcC %v", in.Set, in.Step, in.Dst.Reg, in.SrcC.Reg)
		}
	}
}

// The reuse flag appears on A/B of every step but the last of each set.
func TestReuseFlags(t *testing.T) {
	mixed, _ := ExpandMMA(mixedCfg())
	for _, in := range mixed {
		wantReuse := in.Step < 3
		if in.SrcA.Reuse != wantReuse || in.SrcB.Reuse != wantReuse {
			t.Errorf("set %d step %d: reuse A=%v B=%v, want %v", in.Set, in.Step, in.SrcA.Reuse, in.SrcB.Reuse, wantReuse)
		}
		if in.Dst.Reuse || in.SrcC.Reuse {
			t.Errorf("set %d step %d: accumulator operands must not carry reuse", in.Set, in.Step)
		}
	}
}

func TestExpandTuring(t *testing.T) {
	cfg := wmma.Config{Arch: wmma.Turing, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.S8, CType: wmma.S32, DType: wmma.S32}
	p, err := ExpandMMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Errorf("turing 8-bit expands to %d HMMAs, want 4", len(p))
	}
	for _, in := range p {
		if in.Step != -1 {
			t.Errorf("turing HMMA carries STEP annotation %d; Turing drops it", in.Step)
		}
	}
	cfg4 := wmma.Config{Arch: wmma.Turing, Shape: wmma.M8N8K32,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.S4, CType: wmma.S32, DType: wmma.S32}
	p4, err := ExpandMMA(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p4) != 1 {
		t.Errorf("turing 4-bit expands to %d HMMAs, want 1", len(p4))
	}
}

func TestExpandLoadWidths(t *testing.T) {
	aRow := wmma.MustMap(wmma.Volta, wmma.M16N16K16, wmma.MatrixA, tensor.RowMajor, wmma.F16)
	p := ExpandLoad(aRow, 16)
	if len(p) != 2 || p[0].Op != OpLD128 || p[1].Op != OpLD128 {
		t.Errorf("A row-major load = %v, want two LD.E.128", p)
	}
	aCol := wmma.MustMap(wmma.Volta, wmma.M16N16K16, wmma.MatrixA, tensor.ColMajor, wmma.F16)
	p = ExpandLoad(aCol, 16)
	if len(p) != 4 {
		t.Fatalf("A col-major load has %d instrs, want 4", len(p))
	}
	for _, in := range p {
		if in.Op != OpLD64 {
			t.Errorf("A col-major load uses %v, want LD.E.64", in.Op)
		}
	}
	c32 := wmma.MustMap(wmma.Volta, wmma.M16N16K16, wmma.MatrixC, tensor.RowMajor, wmma.F32)
	p = ExpandLoad(c32, 16)
	if len(p) != 8 {
		t.Fatalf("C load has %d instrs, want 8", len(p))
	}
	for _, in := range p {
		if in.Op != OpLDSYS {
			t.Errorf("C load uses %v, want LD.E.SYS", in.Op)
		}
	}
}

func TestExpandStore(t *testing.T) {
	c32 := wmma.MustMap(wmma.Volta, wmma.M16N16K16, wmma.MatrixC, tensor.RowMajor, wmma.F32)
	if p := ExpandStore(c32); len(p) != 8 {
		t.Errorf("fp32 store has %d instrs, want 8", len(p))
	}
	c16 := wmma.MustMap(wmma.Volta, wmma.M16N16K16, wmma.MatrixC, tensor.RowMajor, wmma.F16)
	if p := ExpandStore(c16); len(p) != 4 {
		t.Errorf("fp16 store has %d instrs, want 4 (8 halves = 4 words)", len(p))
	}
}

func TestNopAllHMMAButOne(t *testing.T) {
	p, _ := ExpandMMA(mixedCfg())
	patched, err := NopAllHMMAButOne(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	hmma := patched.HMMAIndices()
	if len(hmma) != 1 {
		t.Fatalf("patched program has %d HMMAs, want 1", len(hmma))
	}
	if patched[hmma[0]].Set != 2 || patched[hmma[0]].Step != 1 {
		t.Errorf("kept HMMA is set %d step %d, want set 2 step 1", patched[hmma[0]].Set, patched[hmma[0]].Step)
	}
	nops := 0
	for _, in := range patched {
		if in.Op == OpNOP {
			nops++
		}
	}
	if nops != 15 {
		t.Errorf("%d NOPs, want 15", nops)
	}
	if _, err := NopAllHMMAButOne(p, 16); err == nil {
		t.Error("out-of-range keep index should fail")
	}
}

func TestInsertClockReadsAndMeasure(t *testing.T) {
	p, _ := ExpandMMA(mixedCfg())
	timing := tcore.VoltaTiming(tcore.MixedPrecision)
	patched, err := InsertClockReads(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if patched[0].Op != OpCS2R || patched[len(patched)-1].Op != OpCS2R {
		t.Error("clock reads should bracket the HMMA sequence")
	}
	got, err := MeasureClock(patched, timing)
	if err != nil {
		t.Fatal(err)
	}
	if got != 54 {
		t.Errorf("full sweep measured %d cycles, want 54 (Figure 9a)", got)
	}
}

// Running the Figure 6 sweep over the model regenerates the cumulative
// column of Figure 9 exactly.
func TestCumulativeSweepMatchesFigure9(t *testing.T) {
	p, _ := ExpandMMA(mixedCfg())
	got, err := CumulativeSweep(p, tcore.VoltaTiming(tcore.MixedPrecision))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44, 54}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	pf, _ := ExpandMMA(fp16Cfg())
	gotF, err := CumulativeSweep(pf, tcore.VoltaTiming(tcore.FP16))
	if err != nil {
		t.Fatal(err)
	}
	wantF := []int{12, 21, 25, 34, 38, 47, 51, 64}
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("fp16 sweep = %v, want %v", gotF, wantF)
		}
	}
}

func TestProgramString(t *testing.T) {
	p, _ := ExpandMMA(mixedCfg())
	s := p.String()
	if !strings.Contains(s, "HMMA.884.F32.F32.STEP3 R6, R16.COL, R2.ROW, R6;") {
		t.Errorf("listing missing final set 4 line:\n%s", s)
	}
	if got := strings.Count(s, "\n"); got != 16 {
		t.Errorf("listing has %d lines, want 16", got)
	}
}
