package sass

import (
	"fmt"

	"repro/internal/tcore"
)

// The paper's reverse-engineering instruments, reimplemented against the
// model. Figure 5: "We use radare2 to replace all HMMA operations except
// one with NOP instructions" — isolating which data a single HMMA touches.
// Figure 6: "we used radare2 to add code that reads the clock register
// before the 1st and after the nth HMMA instruction" — measuring the
// cumulative latency of an HMMA prefix.

// NopAllHMMAButOne returns a copy of p with every HMMA except the keep-th
// (0-based, counted over HMMAs only) replaced by NOP, per Figure 5.
func NopAllHMMAButOne(p Program, keep int) (Program, error) {
	idx := p.HMMAIndices()
	if keep < 0 || keep >= len(idx) {
		return nil, fmt.Errorf("sass: keep index %d out of range (%d HMMAs)", keep, len(idx))
	}
	out := append(Program(nil), p...)
	for n, i := range idx {
		if n != keep {
			out[i] = Instr{Op: OpNOP}
		}
	}
	return out, nil
}

// InsertClockReads returns a copy of p with CS2R clock reads inserted
// before the first HMMA and immediately after the n-th HMMA (1-based),
// per Figure 6. The destination registers R0 and R1 match the figure.
func InsertClockReads(p Program, n int) (Program, error) {
	idx := p.HMMAIndices()
	if n < 1 || n > len(idx) {
		return nil, fmt.Errorf("sass: clock read after HMMA %d out of range (%d HMMAs)", n, len(idx))
	}
	var out Program
	r0 := Instr{Op: OpCS2R, Dst: Operand{Reg: RegPair{0}}}
	r1 := Instr{Op: OpCS2R, Dst: Operand{Reg: RegPair{1}}}
	for i, in := range p {
		if i == idx[0] {
			out = append(out, r0)
		}
		out = append(out, in)
		if i == idx[n-1] {
			out = append(out, r1)
		}
	}
	return out, nil
}

// MeasureClock evaluates a clock-patched listing against a calibrated HMMA
// timing: it returns the difference between the two CS2R reads, i.e. the
// cumulative cycles from just before the first remaining HMMA to just
// after the last HMMA preceding the second read. This is the model-side
// equivalent of running the Figure 6 microbenchmark on hardware.
func MeasureClock(p Program, timing tcore.Timing) (int, error) {
	clockReads := 0
	hmmaSeen := 0
	first, second := -1, -1
	for _, in := range p {
		switch in.Op {
		case OpCS2R:
			if clockReads == 0 {
				first = hmmaSeen
			} else {
				second = hmmaSeen
			}
			clockReads++
		case OpHMMA:
			hmmaSeen++
		}
	}
	if clockReads != 2 {
		return 0, fmt.Errorf("sass: program has %d clock reads, want 2", clockReads)
	}
	if second <= first {
		return 0, fmt.Errorf("sass: no HMMA between the clock reads")
	}
	if second > timing.NumHMMA() {
		return 0, fmt.Errorf("sass: %d HMMAs but timing covers %d", second, timing.NumHMMA())
	}
	start := 0
	if first > 0 {
		start = timing.Cumulative[first-1]
	}
	return timing.Cumulative[second-1] - start, nil
}

// CumulativeSweep runs the Figure 6 methodology for every prefix length:
// element n-1 is the measured cycles from before HMMA 1 to after HMMA n.
// Applied to an unpatched expansion it regenerates the cumulative columns
// of Figure 9 and Table I.
func CumulativeSweep(p Program, timing tcore.Timing) ([]int, error) {
	n := len(p.HMMAIndices())
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		patched, err := InsertClockReads(p, i)
		if err != nil {
			return nil, err
		}
		c, err := MeasureClock(patched, timing)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
