// Package sass models the machine-ISA (SASS) view of the tensor core
// instructions described in Section III-C of the paper: how wmma.load,
// wmma.mma and wmma.store PTX instructions expand into LD.E.64 / LD.E.128
// / LD.E.SYS / ST.E.SYS and HMMA.884 machine instructions, including the
// register-pair encoding and the "reuse" operand-cache annotations visible
// in the disassembly of Figure 9.
//
// It also implements the paper's reverse-engineering methodology as code:
// a radare2-style binary patcher that replaces all but one HMMA with NOPs
// (Figure 5) or brackets an HMMA prefix with clock reads (Figure 6), and a
// small evaluator that "runs" a patched listing against the calibrated
// timings of internal/tcore, reproducing the measurements those
// microbenchmarks produced on silicon.
package sass

import (
	"fmt"
	"strings"

	"repro/internal/tcore"
	"repro/internal/wmma"
)

// Opcode enumerates the SASS instructions the tensor-core expansions use.
type Opcode int

const (
	OpHMMA  Opcode = iota // HMMA.884.<dtype>.<ctype>[.STEP<n>]
	OpLD64                // LD.E.64
	OpLD128               // LD.E.128
	OpLDSYS               // LD.E.SYS (32-bit)
	OpSTSYS               // ST.E.SYS (32-bit)
	OpNOP                 // NOP
	OpCS2R                // CS2R.32 Rd, SR_CLOCKLO — read the clock register
	OpBAR                 // BAR.SYNC
)

func (o Opcode) String() string {
	switch o {
	case OpHMMA:
		return "HMMA.884"
	case OpLD64:
		return "LD.E.64"
	case OpLD128:
		return "LD.E.128"
	case OpLDSYS:
		return "LD.E.SYS"
	case OpSTSYS:
		return "ST.E.SYS"
	case OpNOP:
		return "NOP"
	case OpCS2R:
		return "CS2R.32"
	case OpBAR:
		return "BAR.SYNC"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// RegPair is a pair of adjacent 32-bit registers encoded by its higher
// register identifier, as inferred in Section III-C: "R8 ... appears from
// our analysis to represent the register pair <R8,R7>".
type RegPair struct {
	High int
}

// Low returns the lower register of the pair.
func (r RegPair) Low() int { return r.High - 1 }

func (r RegPair) String() string { return fmt.Sprintf("R%d", r.High) }

// Operand is one HMMA source/destination operand: a register pair with the
// optional .reuse operand-cache flag and a .COL/.ROW/.T layout annotation.
type Operand struct {
	Reg    RegPair
	Reuse  bool
	Layout string // "COL", "ROW", "T" or ""
}

func (o Operand) String() string {
	s := o.Reg.String()
	if o.Reuse {
		s += ".reuse"
	}
	if o.Layout != "" {
		s += "." + o.Layout
	}
	return s
}

// Instr is one SASS instruction of a tensor-core expansion.
type Instr struct {
	Op    Opcode
	DType string // HMMA destination type: F16 or F32
	CType string // HMMA accumulator type
	Set   int    // 1-based HMMA set
	Step  int    // 0-based HMMA step; -1 when unannotated (Turing)
	Dst   Operand
	SrcA  Operand
	SrcB  Operand
	SrcC  Operand
}

// String renders the instruction in the style of Figure 9's disassembly.
func (in Instr) String() string {
	switch in.Op {
	case OpHMMA:
		step := ""
		if in.Step >= 0 {
			step = fmt.Sprintf(".STEP%d", in.Step)
		}
		return fmt.Sprintf("HMMA.884.%s.%s%s %s, %s, %s, %s;",
			in.DType, in.CType, step, in.Dst, in.SrcA, in.SrcB, in.SrcC)
	case OpCS2R:
		return fmt.Sprintf("CS2R.32 %s, SR_CLOCKLO;", in.Dst.Reg)
	case OpNOP:
		return "NOP;"
	default:
		return in.Op.String() + ";"
	}
}

// Program is an ordered SASS listing.
type Program []Instr

// String renders the whole listing, one instruction per line.
func (p Program) String() string {
	var b strings.Builder
	for _, in := range p {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// HMMAIndices returns the positions of the HMMA instructions in p.
func (p Program) HMMAIndices() []int {
	var out []int
	for i, in := range p {
		if in.Op == OpHMMA {
			out = append(out, i)
		}
	}
	return out
}

// Register allocation of Figure 9: the A and B register pairs cycle per
// set and the destination/accumulator pairs cycle per step.
var (
	mixedAPairs = []int{24, 20, 14, 16}
	mixedBPairs = []int{22, 18, 12, 2}
	mixedDPairs = []int{8, 10, 4, 6}

	fp16APairs = []int{22, 16, 18, 2}
	fp16BPairs = []int{12, 14, 8, 10}
	fp16DPairs = []int{4, 6}
)

// ExpandMMA expands one Volta wmma.mma of the given configuration into its
// HMMA sequence, reproducing the register allocation, STEP annotations and
// reuse flags of Figure 9. The reuse flag is set on the A and B operands
// of every step but the last of each set, matching the disassembly: the
// same register pairs feed all steps of a set, so the operand reuse cache
// (Section III-C, citing Gray's Maxwell analysis) holds them between
// steps.
func ExpandMMA(cfg wmma.Config) (Program, error) {
	if cfg.Arch != wmma.Volta {
		return expandTuringMMA(cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mode := tcore.ModeFor(cfg)
	dt, ct := "F16", "F16"
	if cfg.DType == wmma.F32 {
		dt = "F32"
	}
	if cfg.CType == wmma.F32 {
		ct = "F32"
	}
	aLay, bLay := "COL", "ROW"
	if mode == tcore.FP16 {
		// Figure 9b annotates FP16-mode operands with .T.
		aLay, bLay = "T", "T"
	}
	var aPairs, bPairs, dPairs []int
	if mode == tcore.MixedPrecision {
		aPairs, bPairs, dPairs = mixedAPairs, mixedBPairs, mixedDPairs
	} else {
		aPairs, bPairs, dPairs = fp16APairs, fp16BPairs, fp16DPairs
	}
	var prog Program
	steps := mode.Steps()
	for set := 0; set < tcore.NumSets; set++ {
		for step := 0; step < steps; step++ {
			reuse := step < steps-1
			d := Operand{Reg: RegPair{dPairs[step]}}
			prog = append(prog, Instr{
				Op: OpHMMA, DType: dt, CType: ct, Set: set + 1, Step: step,
				Dst:  d,
				SrcA: Operand{Reg: RegPair{aPairs[set]}, Reuse: reuse, Layout: aLay},
				SrcB: Operand{Reg: RegPair{bPairs[set]}, Reuse: reuse, Layout: bLay},
				SrcC: d,
			})
		}
	}
	return prog, nil
}

// expandTuringMMA expands a Turing wmma.mma: four unannotated HMMAs (one
// per set), or a single HMMA in 4-bit mode (Section III-C-2).
func expandTuringMMA(cfg wmma.Config) (Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := tcore.TuringHMMACount(cfg.AType)
	dt := strings.ToUpper(cfg.DType.String())
	ct := strings.ToUpper(cfg.CType.String())
	var prog Program
	for set := 0; set < n; set++ {
		d := Operand{Reg: RegPair{4 + 2*set}}
		prog = append(prog, Instr{
			Op: OpHMMA, DType: dt, CType: ct, Set: set + 1, Step: -1,
			Dst:  d,
			SrcA: Operand{Reg: RegPair{12 + 2*set}},
			SrcB: Operand{Reg: RegPair{20 + 2*set}},
			SrcC: d,
		})
	}
	return prog, nil
}

// ExpandLoad expands a wmma.load into its SASS load sequence for the given
// fragment mapping and leading dimension: wmma.load.a/b become two
// LD.E.128 (contiguous layout) or four LD.E.64 (strided layout);
// wmma.load.c becomes 32-bit LD.E.SYS instructions (Section III-C).
func ExpandLoad(m *wmma.Mapping, ld int) Program {
	var prog Program
	for _, run := range m.LaneRuns(0, ld) {
		bits := run * m.Elem.Bits()
		for bits >= 128 {
			prog = append(prog, Instr{Op: OpLD128})
			bits -= 128
		}
		for bits >= 64 {
			prog = append(prog, Instr{Op: OpLD64})
			bits -= 64
		}
		for bits > 0 {
			prog = append(prog, Instr{Op: OpLDSYS})
			bits -= 32
		}
	}
	return prog
}

// ExpandStore expands a wmma.store.d into ST.E.SYS instructions, one per
// 32 bits of the fragment.
func ExpandStore(m *wmma.Mapping) Program {
	bits := m.FragmentLen() * m.Elem.Bits()
	n := (bits + 31) / 32
	prog := make(Program, n)
	for i := range prog {
		prog[i] = Instr{Op: OpSTSYS}
	}
	return prog
}
