package experiments

import (
	"sync"
	"testing"
)

// Pool.Run is the serving seam: concurrent jobs on one long-lived pool
// must produce tables byte-identical to private-pool runs (content
// addressing is meaningless otherwise), and a panicking experiment
// must surface as its own job's error, never as a crash of the shared
// workers the other jobs depend on.
func TestPoolConcurrentRunsByteIdentical(t *testing.T) {
	ids := []string{"fig12c", "fig9", "tab1"}
	refs := make(map[string]string, len(ids))
	for _, id := range ids {
		refs[id] = runQuick(t, id).String()
	}

	p := NewPool(4)
	defer p.Close()
	const rounds = 3
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				e, err := ByID(id)
				if err != nil {
					t.Error(err)
					return
				}
				tb, err := p.Run(e, Options{Quick: true})
				if err != nil {
					t.Errorf("%s on shared pool: %v", id, err)
					return
				}
				if tb.String() != refs[id] {
					t.Errorf("%s table on shared pool differs from private-pool run", id)
				}
			}(id)
		}
	}
	wg.Wait()
}

// A job that panics is isolated to its own Run call; the pool keeps
// serving subsequent jobs.
func TestPoolIsolatesPanickingJob(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := Experiment{ID: "boom", Paper: "none", Title: "panics",
		Run: func(Options) (*Table, error) { panic("injected") }}
	if _, err := p.Run(boom, Options{}); err == nil {
		t.Fatal("panicking job returned nil error")
	}
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := p.Run(e, Options{Quick: true})
	if err != nil || tb == nil {
		t.Fatalf("pool unusable after a panicking job: %v", err)
	}
}
