package experiments

import (
	"testing"

	"repro/internal/ptx"
)

// The batched warp access path must be invisible at the artifact level:
// regenerating an experiment with the legacy per-lane access path must
// render the exact table the batched path renders — cycles, IPC, hit
// rates, every formatted cell.
//
// The batched side reuses the per-process memoized quick tables
// (runQuick), so the comparison adds only the legacy re-simulation.
// fig16 is the ld/st latency microbenchmark — the experiment most
// directly downstream of the access path — and fig17, the workload the
// batching exists to accelerate, joins outside -short.
func TestBatchedMatchesLegacyTables(t *testing.T) {
	ids := []string{"fig12c", "fig16"}
	if !testing.Short() {
		ids = append(ids, "fig17")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			batched := runQuick(t, id)

			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			defer ptx.SwapLegacyAccessPath(true)()
			legacy, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if batched.String() != legacy.String() {
				t.Errorf("batched and legacy tables differ:\n--- batched ---\n%s\n--- legacy ---\n%s",
					batched.String(), legacy.String())
			}
		})
	}
}
