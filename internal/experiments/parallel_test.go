package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

// forEach must visit every index exactly once, whatever the pool size.
func TestForEachCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 53
		var visits [53]atomic.Int32
		err := forEach(Options{Workers: workers}, n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// forEach must surface the lowest-indexed error, like a sequential run.
func TestForEachError(t *testing.T) {
	boom3 := errors.New("boom 3")
	boom7 := errors.New("boom 7")
	err := forEach(Options{Workers: 4}, 10, func(i int) error {
		switch i {
		case 3:
			return boom3
		case 7:
			return boom7
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	// With a pool, index 7 may or may not run before the stop flag is
	// seen; whichever errors were recorded, the lowest index wins.
	if err != boom3 && err != boom7 {
		t.Fatalf("unexpected error %v", err)
	}
	if err := forEach(Options{Workers: 1}, 10, func(i int) error {
		if i == 3 {
			return boom3
		}
		if i > 3 {
			t.Fatalf("sequential run continued past the error (i=%d)", i)
		}
		return nil
	}); err != boom3 {
		t.Fatalf("sequential error = %v, want boom 3", err)
	}
}

// Parallel experiment runs must emit byte-identical tables whatever the
// worker count: every data point simulates on its own Simulator and the
// table is assembled in point order, so completion order must not leak
// into the output. The reference table comes from the per-process
// memoized quick run (runQuick) — the same simulation the other tests
// assert against — so each id here costs one extra simulation, not two.
func TestParallelDeterminism(t *testing.T) {
	ids := []string{"fig12c", "fig14a", "fig16", "fig14b"}
	if testing.Short() {
		ids = []string{"fig12c", "fig14a"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			ref := runQuick(t, id)
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			workers := 4
			par, err := e.Run(Options{Quick: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if ref.String() != par.String() {
				t.Errorf("parallel table differs from memoized reference:\n--- reference ---\n%s\n--- workers=%d ---\n%s",
					ref.String(), workers, par.String())
			}
		})
	}
}
