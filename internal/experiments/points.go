package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/ptx"
)

// The fault-tolerant data-point engine. runPoints wraps forEach with
// the per-point concerns the plain index loop cannot express:
//
//   - checkpoint replay/record against the Options.Journal (points.go
//     never re-simulates a journaled point; see checkpoint.go)
//   - per-point panic isolation and, under Options.KeepGoing, failure
//     isolation: a failing point becomes an annotated table cell
//     instead of discarding the experiment's remaining points
//   - bounded retry with deterministic backoff for the typed Transient
//     error class (the seam the multi-node coordinator will reuse)
//   - deterministic fault injection (internal/faultinject), gated
//     entirely by Options.Faults — a nil plan costs one predicate
//
// Every simulating experiment routes its point loop through runPoints,
// so the whole registry inherits the layer at once.

// errMark is the cell marker rendered for a failed data point when
// Options.KeepGoing preserves the rest of the table.
const errMark = "ERR!"

// PointError is one data point's failure, carrying the identity the
// checkpoint and retry machinery key on.
type PointError struct {
	Exp   string
	Index int
	Err   error
}

func (e PointError) Error() string {
	return fmt.Sprintf("%s point %d: %v", e.Exp, e.Index, e.Err)
}

func (e PointError) Unwrap() error { return e.Err }

// PointFailures aggregates the failed points of one experiment run
// under Options.KeepGoing. It is returned alongside the (partial)
// table, so RunAll's Result carries both.
type PointFailures struct {
	Points []PointError
}

func (e *PointFailures) Error() string {
	first := e.Points[0]
	if len(e.Points) == 1 {
		return fmt.Sprintf("1 data point failed: %v", first)
	}
	return fmt.Sprintf("%d data points failed (first: %v)", len(e.Points), first)
}

// AsPointFailures unwraps an experiment error into its per-point
// failures, if that is what it is.
func AsPointFailures(err error) (*PointFailures, bool) {
	var pf *PointFailures
	ok := errors.As(err, &pf)
	return pf, ok
}

// transienter is the typed transient-error class: any error exposing
// Transient() bool true is safe to retry (faultinject.TransientError
// implements it; real transient failures — a lost shard, a flaky
// remote worker — will too).
type transienter interface{ Transient() bool }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// retries resolves the bounded-retry knob: how many times a transient
// point failure is retried (0 = no retry).
func (o Options) retries() int {
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

// retryDelay is the deterministic backoff schedule: base << attempt,
// with no jitter — run-to-run reproducibility extends to the retry
// path. The unexported base lets tests collapse the schedule. The
// shift is clamped to the last exact doubling that fits in a
// time.Duration: a programmatic Retries beyond the CLI's cap used to
// shift the base past 63 bits and overflow into a negative — i.e.
// instant — backoff, the opposite of backing off. Past the clamp the
// schedule stays flat.
func (o Options) retryDelay(attempt int) time.Duration {
	base := o.retryBase
	if base == 0 {
		base = 10 * time.Millisecond
	}
	if base < 0 {
		return 0
	}
	maxShift := bits.LeadingZeros64(uint64(base)) - 1
	if attempt > maxShift {
		attempt = maxShift
	}
	return base << uint(attempt)
}

// runPoints runs one experiment's n data points through the
// fault-tolerance layer and returns their payloads in index order.
//
// The second return value is nil when every point succeeded; under
// Options.KeepGoing it holds per-point errors (indexed like vals, nil
// entries for successes). The third is the experiment-fatal error:
// without KeepGoing the lowest-indexed point failure, and in every mode
// cancellation, checkpoint I/O failures and corrupt replays.
//
// T must round-trip through encoding/json byte-exactly for checkpoint
// replay to preserve table bytes: exported fields of float64, integers
// below 2^53, strings, arrays and slices thereof all qualify.
func runPoints[T any](opt Options, expID string, n int, compute func(i int) (T, error)) ([]T, []error, error) {
	vals := make([]T, n)
	perr := make([]error, n)
	var failed atomic.Bool
	err := forEach(opt, n, func(i int) error {
		if err := opt.ctx().Err(); err != nil {
			return PointError{Exp: expID, Index: i,
				Err: fmt.Errorf("not started: %w", err)}
		}
		key := PointKey(expID, i, opt)
		if opt.Journal != nil {
			if raw, ok := opt.Journal.Lookup(key); ok {
				if err := json.Unmarshal(raw, &vals[i]); err != nil {
					return PointError{Exp: expID, Index: i,
						Err: fmt.Errorf("corrupt checkpoint payload: %w", err)}
				}
				return nil
			}
		}
		v, err := computePoint(opt, expID, i, compute)
		if err != nil {
			if cerr := opt.ctx().Err(); cerr != nil {
				// Cancellation trumps keep-going: an interrupted point
				// is not a bad cell, it is the run shutting down.
				return PointError{Exp: expID, Index: i, Err: err}
			}
			if opt.KeepGoing {
				perr[i] = err
				failed.Store(true)
				return nil
			}
			return PointError{Exp: expID, Index: i, Err: err}
		}
		vals[i] = v
		if opt.Journal != nil {
			if err := opt.Journal.Record(key, expID, i, v); err != nil {
				return PointError{Exp: expID, Index: i, Err: err}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if failed.Load() {
		return vals, perr, nil
	}
	return vals, nil, nil
}

// computePoint runs one point with fault injection and bounded retry.
func computePoint[T any](opt Options, expID string, i int, compute func(i int) (T, error)) (T, error) {
	var zero T
	for attempt := 0; ; attempt++ {
		v, err := runPointOnce(opt, expID, i, attempt, compute)
		if err == nil {
			return v, nil
		}
		if attempt >= opt.retries() || !IsTransient(err) || opt.ctx().Err() != nil {
			return zero, err
		}
		time.Sleep(opt.retryDelay(attempt))
	}
}

// runPointOnce runs a single attempt: injected faults first, then the
// real computation with panic isolation.
func runPointOnce[T any](opt Options, expID string, i, attempt int, compute func(i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s point %d panicked: %v", expID, i, r)
		}
	}()
	switch opt.Faults.At(expID, i, attempt) {
	case faultinject.Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s point %d", expID, i))
	case faultinject.Hang:
		return v, opt.runHang()
	case faultinject.Transient:
		return v, &faultinject.TransientError{Attempt: attempt,
			Msg: fmt.Sprintf("injected at %s point %d", expID, i)}
	case faultinject.Kill:
		opt.Faults.InvokeKill()
		return v, fmt.Errorf("faultinject: killed at %s point %d: %w", expID, i, context.Canceled)
	}
	return compute(i)
}

// hangKernel builds the injected infinite-loop kernel: a single warp
// spinning on an unconditional branch, the malformed workload the
// cycle-budget watchdog exists to reap.
func hangKernel() (*ptx.Kernel, error) {
	b := ptx.NewBuilder("faultinject_hang")
	b.Label("spin")
	b.Bra("spin")
	b.Exit()
	return b.Build()
}

// runHang simulates the infinite-loop kernel on a one-SM slice under
// the run's cycle budget and cancellation context. With the watchdog
// off it spins until the 4e9-cycle backstop — exactly the hang the
// MaxCycles option exists to bound — so tests always set MaxCycles.
func (o Options) runHang() error {
	k, err := hangKernel()
	if err != nil {
		return err
	}
	cfg := gpu.TitanV()
	cfg.NumSMs = 1
	sim, err := gpu.New(cfg)
	if err != nil {
		return err
	}
	_, err = sim.Run(gpu.LaunchSpec{
		Kernel:    k,
		Grid:      ptx.Dim3{X: 1, Y: 1, Z: 1},
		Block:     ptx.Dim3{X: 32, Y: 1, Z: 1},
		Global:    newZeroMemory(),
		MaxCycles: o.MaxCycles,
		Ctx:       o.Ctx,
	})
	if err == nil {
		return fmt.Errorf("faultinject: hang kernel finished, which should be impossible")
	}
	return err
}

// pointFailures folds per-point errors into the experiment's aggregate
// error and annotates the table with one note per failed cell, so a
// keep-going table documents its own holes. Returns nil when perr is
// nil or empty of failures.
func pointFailures(t *Table, expID string, perr []error) error {
	if perr == nil {
		return nil
	}
	var pf PointFailures
	for i, err := range perr {
		if err != nil {
			pf.Points = append(pf.Points, PointError{Exp: expID, Index: i, Err: err})
		}
	}
	if len(pf.Points) == 0 {
		return nil
	}
	for _, p := range pf.Points {
		t.Note("%s cell: point %d failed: %v", errMark, p.Index, p.Err)
	}
	return &pf
}

// pointOK reports whether point i completed (perr nil or no entry).
func pointOK(perr []error, i int) bool {
	return perr == nil || perr[i] == nil
}

// errRow returns a row of errMark cells for a failed point, after the
// given label cells.
func errRow(labels []string, width int) []string {
	row := append([]string{}, labels...)
	for len(row) < width {
		row = append(row, errMark)
	}
	return row
}
