package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// PointKey must separate every identity axis that changes a point's
// payload, and nothing else: Workers and the fault-tolerance knobs must
// not perturb it, or a resumed run would re-simulate everything.
func TestPointKeyIdentity(t *testing.T) {
	base := Options{Quick: true}
	k := PointKey("fig12c", 3, base)
	distinct := map[string]string{
		"experiment": PointKey("fig14a", 3, base),
		"index":      PointKey("fig12c", 4, base),
		"quick":      PointKey("fig12c", 3, Options{}),
		"sms":        PointKey("fig12c", 3, Options{Quick: true, SMs: 8}),
		"sched":      PointKey("fig12c", 3, Options{Quick: true, Scheduler: "lrr"}),
		"tlactive":   PointKey("fig12c", 3, Options{Quick: true, TwoLevelActive: 4}),
	}
	for axis, other := range distinct {
		if other == k {
			t.Errorf("PointKey ignores the %s axis", axis)
		}
	}
	same := base
	same.Workers = 7
	same.KeepGoing = true
	same.Retries = 3
	same.MaxCycles = 1 << 20
	if PointKey("fig12c", 3, same) != k {
		t.Error("PointKey depends on Workers or fault-tolerance knobs; resume would re-simulate everything")
	}
}

func TestJournalRecordAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ V float64 }
	if err := j.Record("k1", "fig12c", 0, payload{1.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k2", "fig12c", 1, payload{2.5}); err != nil {
		t.Fatal(err)
	}
	// Duplicate keys are idempotent.
	if err := j.Record("k1", "fig12c", 0, payload{9}); err != nil {
		t.Fatal(err)
	}
	if points, _ := j.Stats(); points != 2 {
		t.Fatalf("Stats points = %d, want 2", points)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	raw, ok := j2.Lookup("k1")
	if !ok || string(raw) != `{"V":1.5}` {
		t.Fatalf("Lookup(k1) = %q, %v; want the first payload", raw, ok)
	}
	if _, ok := j2.Lookup("k3"); ok {
		t.Fatal("Lookup(k3) found a record that was never journaled")
	}
	if points, replayed := j2.Stats(); points != 2 || replayed != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", points, replayed)
	}
}

// Opening without resume starts from scratch even over an existing file.
func TestJournalTruncatesWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k1", "e", 0, 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("k1"); ok {
		t.Fatal("truncating open replayed an old record")
	}
}

// A torn trailing line — the artifact of dying mid-write — must not
// poison the journal: intact records load, the torn one re-simulates,
// and appending after resume does not concatenate onto the torn bytes.
func TestJournalTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k1", "e", 0, 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k2","exp":"e","po`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.Lookup("k1"); !ok {
		t.Fatal("intact record lost behind a torn line")
	}
	if _, ok := j2.Lookup("k2"); ok {
		t.Fatal("torn record replayed")
	}
	if err := j2.Record("k3", "e", 2, 3); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	for _, k := range []string{"k1", "k3"} {
		if _, ok := j3.Lookup(k); !ok {
			t.Errorf("record %s lost after appending past a torn line", k)
		}
	}
}

// Pool workers record concurrently; run with -race this pins the
// journal's locking. Every record must survive a resume round-trip.
func TestJournalConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				if err := j.Record(key, "e", i, i); err != nil {
					t.Errorf("Record(%s): %v", key, err)
				}
				j.Lookup(key)
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if points, _ := j2.Stats(); points != workers*per {
		t.Fatalf("resume found %d records, want %d", points, workers*per)
	}
}

// Two runs sharing one checkpoint file used to interleave their
// journals silently; the advisory lock makes the second opener fail
// fast with a clear error, and closing the holder releases the lock.
func TestJournalLockExcludesSecondOpener(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k1", "e", 0, 1); err != nil {
		t.Fatal(err)
	}
	for _, resume := range []bool{false, true} {
		if _, err := OpenJournal(path, resume); err == nil {
			t.Fatalf("second OpenJournal(resume=%t) on a locked journal succeeded", resume)
		} else if !strings.Contains(err.Error(), "locked") {
			t.Errorf("second OpenJournal(resume=%t) error does not name the lock: %v", resume, err)
		}
	}
	// The failed resume attempt must not have clobbered the journal.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("k1"); !ok {
		t.Fatal("record lost across a rejected second opener")
	}
}

// ExperimentKey is the whole-table content address: it must share
// PointKey's knob sensitivity (the serving cache serves stale bytes
// otherwise) while never colliding with any real point's key.
func TestExperimentKeyIdentity(t *testing.T) {
	base := Options{Quick: true}
	k := ExperimentKey("fig12c", base)
	if k == ExperimentKey("fig14a", base) {
		t.Error("ExperimentKey ignores the experiment ID")
	}
	if k == ExperimentKey("fig12c", Options{}) {
		t.Error("ExperimentKey ignores Quick")
	}
	if k == ExperimentKey("fig12c", Options{Quick: true, SMs: 16}) {
		t.Error("ExperimentKey ignores SMs")
	}
	if k != ExperimentKey("fig12c", Options{Quick: true, Workers: 7, MaxCycles: 99, KeepGoing: true, Retries: 3}) {
		t.Error("ExperimentKey is perturbed by non-table-affecting knobs")
	}
	for i := 0; i < 64; i++ {
		if k == PointKey("fig12c", i, base) {
			t.Fatalf("ExperimentKey collides with PointKey index %d", i)
		}
	}
}
