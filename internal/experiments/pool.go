package experiments

// The job-submission seam over the shared worker pool. RunAll owns a
// pool for the span of one batch invocation (the CLI shape); a serving
// process (cmd/simd) instead keeps one Pool alive for its whole
// lifetime and submits experiments as jobs arrive, so the Workers
// budget bounds total simulation concurrency across every in-flight
// request exactly like it bounds a batch sweep.

// Pool is a long-lived shared worker pool accepting experiment jobs.
// It is safe for concurrent use: any number of goroutines may call Run
// at once, and their data points interleave on the same fixed worker
// set. Close drains the workers; it must not race with Run.
type Pool struct {
	p       *sharedPool
	workers int
}

// NewPool starts a pool of the given size (0 = one worker per CPU,
// matching Options.Workers semantics).
func NewPool(workers int) *Pool {
	w := Options{Workers: workers}.workers()
	return &Pool{p: newSharedPool(w), workers: w}
}

// Workers reports the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down after in-flight jobs drain. Run must not
// be called after (or concurrently with) Close.
func (p *Pool) Close() { p.p.close() }

// Run runs one experiment with its data points fanned onto the pool,
// with the same panic isolation as RunAll: a panicking experiment
// surfaces as that job's error, never a crash of the serving process.
// The result is byte-identical whatever the pool size or the number of
// concurrent Run calls — each data point simulates on its own
// Simulator and tables are assembled in point order (the PR 1/2
// contract that makes results content-addressable, see ExperimentKey).
func (p *Pool) Run(e Experiment, opt Options) (*Table, error) {
	opt.pool = p.p
	return runSafely(e, opt)
}
