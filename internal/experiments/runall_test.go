package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeExp builds a registry entry with a synthetic Run function, so the
// cross-experiment scheduler can be tested without simulating anything.
func fakeExp(id string, run func(Options) (*Table, error)) Experiment {
	return Experiment{ID: id, Paper: id, Title: "fake " + id, Run: run}
}

func fakeTable(id string) *Table {
	t := &Table{ID: id, Title: id, Columns: []string{"v"}}
	t.AddRow(id)
	return t
}

// RunAll must emit results in registry order even when later experiments
// finish first. Experiment a0 deliberately blocks until a2 has completed;
// the emit sequence must still be a0, a1, a2.
func TestRunAllStreamsInRegistryOrder(t *testing.T) {
	a2done := make(chan struct{})
	exps := []Experiment{
		fakeExp("a0", func(Options) (*Table, error) {
			<-a2done
			return fakeTable("a0"), nil
		}),
		fakeExp("a1", func(Options) (*Table, error) { return fakeTable("a1"), nil }),
		fakeExp("a2", func(Options) (*Table, error) {
			defer close(a2done)
			return fakeTable("a2"), nil
		}),
	}
	var order []string
	results := RunAll(exps, Options{Workers: 2}, func(r Result) {
		order = append(order, r.Experiment.ID)
	})
	if got, want := strings.Join(order, ","), "a0,a1,a2"; got != want {
		t.Errorf("emit order %s, want %s", got, want)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Table == nil || r.Table.ID != exps[i].ID {
			t.Errorf("result %d = %+v, want table %s", i, r, exps[i].ID)
		}
	}
	if err := Errs(results); err != nil {
		t.Errorf("unexpected aggregate error: %v", err)
	}
}

// A failing experiment must not suppress the others: every other table is
// still produced and the aggregate error names the failure.
func TestRunAllContinuesPastFailure(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		fakeExp("ok0", func(Options) (*Table, error) { return fakeTable("ok0"), nil }),
		fakeExp("bad", func(Options) (*Table, error) { return nil, boom }),
		fakeExp("panics", func(Options) (*Table, error) { panic("kaboom") }),
		fakeExp("ok1", func(Options) (*Table, error) { return fakeTable("ok1"), nil }),
	}
	emitted := 0
	results := RunAll(exps, Options{Workers: 2}, func(Result) { emitted++ })
	if emitted != len(exps) {
		t.Errorf("emit called %d times, want %d (failures must stream too)", emitted, len(exps))
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("healthy experiments failed: %v / %v", results[0].Err, results[3].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("result[1].Err = %v, want boom", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "panic") {
		t.Errorf("panicking experiment should surface as an error, got %v", results[2].Err)
	}
	err := Errs(results)
	if err == nil || !strings.Contains(err.Error(), "bad:") || !strings.Contains(err.Error(), "panics:") {
		t.Errorf("aggregate error %v should name both failures", err)
	}
	if got := Failures(results); len(got) != 2 || got[0].Experiment.ID != "bad" || got[1].Experiment.ID != "panics" {
		t.Errorf("Failures = %v, want [bad panics]", got)
	}
}

// The Workers budget must be global: with N experiments all fanning
// points through forEach concurrently, no more than Workers points may
// ever run at once.
func TestRunAllGlobalWorkerBudget(t *testing.T) {
	const workers = 2
	var running, peak atomic.Int32
	point := func(int) error {
		cur := running.Add(1)
		defer running.Add(-1)
		for p := peak.Load(); cur > p; p = peak.Load() {
			if peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Give other points a chance to overlap if the budget were leaky.
		for i := 0; i < 1000; i++ {
			_ = i
		}
		return nil
	}
	var exps []Experiment
	for i := 0; i < 6; i++ {
		exps = append(exps, fakeExp(fmt.Sprintf("e%d", i), func(opt Options) (*Table, error) {
			if err := forEach(opt, 40, point); err != nil {
				return nil, err
			}
			return fakeTable("e"), nil
		}))
	}
	results := RunAll(exps, Options{Workers: workers}, nil)
	if err := Errs(results); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrent points = %d, exceeds the global budget %d", got, workers)
	}
}

// A point failure inside one experiment stops that experiment (lowest-
// indexed error, like a sequential run) without disturbing the others
// sharing the pool.
func TestRunAllPointErrorIsolation(t *testing.T) {
	boom := errors.New("point 3 failed")
	exps := []Experiment{
		fakeExp("failing", func(opt Options) (*Table, error) {
			if err := forEach(opt, 10, func(i int) error {
				if i == 3 {
					return boom
				}
				return nil
			}); err != nil {
				return nil, err
			}
			return fakeTable("failing"), nil
		}),
		fakeExp("healthy", func(opt Options) (*Table, error) {
			var sum atomic.Int64
			if err := forEach(opt, 100, func(i int) error {
				sum.Add(int64(i))
				return nil
			}); err != nil {
				return nil, err
			}
			if sum.Load() != 4950 {
				return nil, fmt.Errorf("lost points: sum %d", sum.Load())
			}
			return fakeTable("healthy"), nil
		}),
	}
	results := RunAll(exps, Options{Workers: 3}, nil)
	if !errors.Is(results[0].Err, boom) {
		t.Errorf("failing experiment error = %v, want boom", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("healthy experiment failed: %v", results[1].Err)
	}
}

// Stress the shared pool under the race detector: many experiments, many
// points, all hammering per-experiment slot slices concurrently.
func TestRunAllSharedPoolStress(t *testing.T) {
	var exps []Experiment
	for e := 0; e < 8; e++ {
		exps = append(exps, fakeExp(fmt.Sprintf("s%d", e), func(opt Options) (*Table, error) {
			slots := make([]int, 64)
			if err := forEach(opt, len(slots), func(i int) error {
				slots[i] = i * i
				return nil
			}); err != nil {
				return nil, err
			}
			tb := fakeTable("s")
			for i, v := range slots {
				if v != i*i {
					return nil, fmt.Errorf("slot %d = %d", i, v)
				}
			}
			return tb, nil
		}))
	}
	var mu sync.Mutex
	var emitted []string
	results := RunAll(exps, Options{Workers: 8}, func(r Result) {
		mu.Lock()
		emitted = append(emitted, r.Experiment.ID)
		mu.Unlock()
	})
	if err := Errs(results); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(exps) {
		t.Errorf("emitted %d, want %d", len(emitted), len(exps))
	}
}

// Real experiments through the cross-experiment scheduler: the streamed
// tables must be byte-identical between a 1-worker and an N-worker pool,
// and identical to standalone runs.
func TestRunAllDeterminism(t *testing.T) {
	ids := []string{"fig12c", "fig14a"}
	var exps []Experiment
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	render := func(workers int) string {
		var b strings.Builder
		results := RunAll(exps, Options{Quick: true, Workers: workers}, func(r Result) {
			if r.Err != nil {
				t.Errorf("%s: %v", r.Experiment.ID, r.Err)
				return
			}
			b.WriteString(r.Table.String())
		})
		if err := Errs(results); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Errorf("cross-experiment output differs between worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	// And the shared-pool tables match the standalone engine's.
	var solo strings.Builder
	for _, id := range ids {
		solo.WriteString(runQuick(t, id).String())
	}
	if solo.String() != par {
		t.Errorf("shared-pool tables differ from standalone runs")
	}
}
