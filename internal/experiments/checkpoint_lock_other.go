//go:build !unix

package experiments

import "os"

// lockJournal is a no-op where flock-style advisory locks are
// unavailable: the journal still works, it just cannot detect a second
// run sharing the same checkpoint file. Every supported CI and serving
// platform is unix; this stub only keeps exotic builds compiling.
func lockJournal(*os.File) error { return nil }
