package experiments

import (
	"fmt"

	"repro/internal/cutlass"
	"repro/internal/gpu"
	"repro/internal/hwproxy"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/wmma"
)

// GEMM-scale experiments: Section V's evaluation (Figures 14–17).

// gemmDims returns the operand allocation dims for an m×n×k GEMM launch
// with args (a, b, c, d).
func gemmDims(m, n, k int) [][2]int {
	return [][2]int{{m, k}, {k, n}, {m, n}, {m, n}}
}

func gemmElems(cd wmma.Precision) []wmma.Precision {
	return []wmma.Precision{wmma.F16, wmma.F16, cd, cd}
}

// Fig14a compares simulated cycles of the shared-memory WMMA GEMM against
// the hardware proxy as matrix size varies, reporting the relative
// deviation the paper quotes as "a standard deviation of less than 5%".
func Fig14a(opt Options) (*Table, error) {
	sizes := []int{32, 64, 128, 160, 192, 224, 256, 288, 320, 384, 480, 512}
	sms := 80
	if opt.Quick {
		sizes = []int{32, 64, 128}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)

	t := &Table{ID: "fig14a", Title: "WMMA GEMM kernel cycles vs matrix size (simulator vs hardware proxy)",
		Columns: []string{"size", "sim_cycles", "hw_cycles", "sim/hw"}}
	type point struct {
		cycles uint64
		hw     float64
	}
	pts := make([]point, len(sizes))
	err = forEach(opt, len(sizes), func(i int) error {
		n := sizes[i]
		l, err := kernels.WMMAGemmShared(kernels.TensorMixed, n, n, n)
		if err != nil {
			return err
		}
		st, err := launchOn(cfg, l, gemmElems(wmma.F32), gemmDims(n, n, n), 0, false)
		if err != nil {
			return err
		}
		pts[i] = point{st.Cycles, proxy.Cycles(hwproxy.GemmSpec{M: n, N: n, K: n, Kind: hwproxy.TensorCore,
			BlockM: 32, BlockN: 32, CBytes: 4})}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ratios, simSeries, hwSeries []float64
	for i, p := range pts {
		ratio := float64(p.cycles) / p.hw
		ratios = append(ratios, ratio)
		simSeries = append(simSeries, float64(p.cycles))
		hwSeries = append(hwSeries, p.hw)
		t.AddRow(fmtI(uint64(sizes[i])), fmtI(p.cycles), fmtF(p.hw), fmtF(ratio))
	}
	t.Note("relative deviation stddev = %.1f%% (paper: < 5%%)", 100*stats.StdDev(ratios)/stats.Mean(ratios))
	t.Note("cycle-count correlation = %.2f%%", 100*stats.Correlation(simSeries, hwSeries))
	return t, nil
}

// cutlassPoint runs one CUTLASS configuration on the simulator and the
// proxy, returning (hwIPC, simIPC).
func cutlassPoint(cfg gpu.Config, proxy hwproxy.Model, c cutlass.GemmConfig, maxCTAs int) (float64, float64, error) {
	l, err := cutlass.Build(c)
	if err != nil {
		return 0, 0, err
	}
	cd := wmma.F32
	cb := 4
	if c.Precision == kernels.TensorFP16 {
		cd = wmma.F16
		cb = 2
	}
	st, err := launchOn(cfg, l, gemmElems(cd), gemmDims(c.M, c.N, c.K), maxCTAs, false)
	if err != nil {
		return 0, 0, err
	}
	// Scale sampled instruction counts back to the full problem.
	scale := float64(st.CTAsTotal) / float64(st.CTAsSimulated)
	totalInstr := uint64(float64(st.WarpInstructions) * scale)
	hwIPC := proxy.IPC(totalInstr, hwproxy.GemmSpec{
		M: c.M, N: c.N, K: c.K, Kind: hwproxy.TensorCore,
		BlockM: c.Policy.BlockM, BlockN: c.Policy.BlockN, CBytes: cb,
	})
	return hwIPC, st.IPC(), nil
}

// Fig14b sweeps CUTLASS configurations and reports the IPC correlation —
// the paper's 99.6 % headline.
func Fig14b(opt Options) (*Table, error) {
	type point struct {
		c cutlass.GemmConfig
	}
	policies := cutlass.DefaultPolicies()
	sizes := []int{128, 256, 384, 512, 640}
	sms := 80
	if opt.Quick {
		sizes = []int{128, 256}
		policies = policies[:2]
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)

	var pts []point
	for _, pol := range policies {
		for _, prec := range []kernels.GemmPrecision{kernels.TensorMixed, kernels.TensorFP16} {
			for _, n := range sizes {
				if n%pol.BlockM != 0 || n%pol.BlockN != 0 {
					continue
				}
				pts = append(pts, point{cutlass.GemmConfig{Policy: pol, Precision: prec, M: n, N: n, K: n}})
			}
		}
	}
	t := &Table{ID: "fig14b", Title: "CUTLASS GEMM IPC: simulator vs hardware proxy",
		Columns: []string{"config", "hw_ipc", "sim_ipc"}}
	type ipcPoint struct{ hw, sim float64 }
	res := make([]ipcPoint, len(pts))
	err = forEach(opt, len(pts), func(i int) error {
		hw, sim, err := cutlassPoint(cfg, proxy, pts[i].c, 0)
		if err != nil {
			return err
		}
		res[i] = ipcPoint{hw, sim}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var hws, sims []float64
	for i, r := range res {
		hws = append(hws, r.hw)
		sims = append(sims, r.sim)
		t.AddRow(pts[i].c.String(), fmtF(r.hw), fmtF(r.sim))
	}
	corr := stats.Correlation(hws, sims)
	t.Note("IPC correlation = %.2f%% over %d kernels (paper: 99.6%%)", 100*corr, len(pts))
	return t, nil
}

// Fig14c plots CUTLASS IPC against matrix size for the simulator and the
// proxy, reproducing the trend that the simulator's relative performance
// rises with matrix size.
func Fig14c(opt Options) (*Table, error) {
	sizes := []int{128, 256, 512, 768, 1024, 2048}
	sms := 80
	maxCTAs := 0
	if opt.Quick {
		sizes = []int{128, 256}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)
	pol := cutlass.DefaultPolicies()[1] // 64×64 block, 32×32 warp

	t := &Table{ID: "fig14c", Title: "CUTLASS GEMM IPC vs matrix size",
		Columns: []string{"size", "hw_ipc", "sim_ipc", "sim/hw"}}
	type ipcPoint struct{ hw, sim float64 }
	res := make([]ipcPoint, len(sizes))
	err = forEach(opt, len(sizes), func(i int) error {
		n := sizes[i]
		cap := maxCTAs
		if n >= 1024 {
			cap = cfg.NumSMs * 12 // sample ~a wave of CTAs for the largest sizes
		}
		hw, sim, err := cutlassPoint(cfg, proxy, cutlass.GemmConfig{
			Policy: pol, Precision: kernels.TensorMixed, M: n, N: n, K: n}, cap)
		if err != nil {
			return err
		}
		res[i] = ipcPoint{hw, sim}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		t.AddRow(fmtI(uint64(sizes[i])), fmtF(r.hw), fmtF(r.sim), fmtF(r.sim/r.hw))
	}
	t.Note("the paper's Figure 14c shows GPGPU-Sim trending above hardware as size grows")
	return t, nil
}

// Fig15 profiles the latency distribution of the three wmma instructions
// during a shared-memory WMMA GEMM.
func Fig15(opt Options) (*Table, error) {
	n := 1024
	sms := 80
	if opt.Quick {
		n = 256
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	l, err := cutlass.Build(cutlass.GemmConfig{
		Policy:    cutlass.DefaultPolicies()[1], // 64×64 block, 32×32 warp
		Precision: kernels.TensorMixed, M: n, N: n, K: n,
	})
	if err != nil {
		return nil, err
	}
	maxCTAs := cfg.NumSMs * 8
	// A single simulation, but still routed through forEach so RunAll's
	// shared pool budget covers it like every other data point.
	var st *gpu.Stats
	err = forEach(opt, 1, func(int) error {
		st, err = launchOn(cfg, l, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs, true)
		return err
	})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig15", Title: fmt.Sprintf("wmma latency distribution, %d×%d shared-memory GEMM", n, n),
		Columns: []string{"op", "count", "min", "median", "p95", "max"}}
	rows := []struct {
		name string
		xs   []float64
	}{
		{"wmma.load", st.Trace.WmmaLoad},
		{"wmma.mma", st.Trace.WmmaMMA},
		{"wmma.store", st.Trace.WmmaStore},
	}
	for _, r := range rows {
		t.AddRow(r.name, fmtI(uint64(len(r.xs))), fmtF(stats.Min(r.xs)),
			fmtF(stats.Median(r.xs)), fmtF(stats.Percentile(r.xs, 95)), fmtF(stats.Max(r.xs)))
	}
	t.Note("paper minimums: load 125, mma 70, store 120 cycles; occasional high outliers from scheduling and memory traffic")
	return t, nil
}

// Fig16 plots median wmma latencies against matrix size for the
// shared-memory and global-memory (naive) WMMA GEMMs.
func Fig16(opt Options) (*Table, error) {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	sms := 80
	if opt.Quick {
		sizes = []int{64, 128, 256}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig16", Title: "Median wmma latency vs matrix size (shared vs global operands)",
		Columns: []string{"size", "load(sh)", "load(gl)", "mma(sh)", "mma(gl)", "store(sh)", "store(gl)"}}
	rows := make([][6]float64, len(sizes))
	err = forEach(opt, len(sizes), func(i int) error {
		n := sizes[i]
		maxCTAs := cfg.NumSMs * 8
		shared, err := cutlass.Build(cutlass.GemmConfig{
			Policy:    cutlass.DefaultPolicies()[1],
			Precision: kernels.TensorMixed, M: n, N: n, K: n,
		})
		if err != nil {
			return err
		}
		stSh, err := launchOn(cfg, shared, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs, true)
		if err != nil {
			return err
		}
		naive, err := kernels.WMMAGemmNaive(kernels.TensorMixed, n, n, n)
		if err != nil {
			return err
		}
		stGl, err := launchOn(cfg, naive, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs*4, true)
		if err != nil {
			return err
		}
		rows[i] = [6]float64{
			stats.Median(stSh.Trace.WmmaLoad), stats.Median(stGl.Trace.WmmaLoad),
			stats.Median(stSh.Trace.WmmaMMA), stats.Median(stGl.Trace.WmmaMMA),
			stats.Median(stSh.Trace.WmmaStore), stats.Median(stGl.Trace.WmmaStore),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(fmtI(uint64(sizes[i])),
			fmtF(r[0]), fmtF(r[1]), fmtF(r[2]), fmtF(r[3]), fmtF(r[4]), fmtF(r[5]))
	}
	t.Note("shared-memory loads stay flat while global-operand loads grow with size — the paper reports >100× at large sizes")
	return t, nil
}

// fig17Series describes one line of Figure 17.
type fig17Series struct {
	name  string
	build func(m, n, k int) (*kernels.Launch, error)
	cd    wmma.Precision
	// kCap limits the simulated K depth (steady-state throughput
	// sampling); 0 = full depth.
	kCap int
}

// Fig17 measures TFLOPS for every GEMM implementation across sizes.
func Fig17(opt Options) (*Table, error) {
	sizes := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	sms := 16 // chip-slice substitution; throughput is per-SM intensive
	if opt.Quick {
		sizes = []int{256, 512}
		sms = 8
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	scale := float64(gpu.TitanV().NumSMs) / float64(cfg.NumSMs)

	cublasLike := func(prec kernels.GemmPrecision) func(m, n, k int) (*kernels.Launch, error) {
		return func(m, n, k int) (*kernels.Launch, error) {
			return cutlass.Build(cutlass.GemmConfig{
				Policy:    cutlass.TilePolicy{BlockM: 128, BlockN: 64, WarpM: 32, WarpN: 32, DoubleBuffer: true},
				Precision: prec, M: m, N: n, K: k,
			})
		}
	}
	series := []fig17Series{
		{"CUBLAS_WO_TC_FP32", func(m, n, k int) (*kernels.Launch, error) { return kernels.SGEMMSimt(m, n, k) }, wmma.F32, 256},
		{"CUBLAS_WO_TC_FP16", func(m, n, k int) (*kernels.Launch, error) { return kernels.HGEMMSimt(m, n, k) }, wmma.F16, 256},
		{"WMMA_OPTIMIZED", func(m, n, k int) (*kernels.Launch, error) {
			return kernels.WMMAGemmShared(kernels.TensorFP16, m, n, k)
		}, wmma.F16, 512},
		{"CUBLAS_WITH_TC_FP32", cublasLike(kernels.TensorMixed), wmma.F32, 512},
		{"CUBLAS_WITH_TC_FP16", cublasLike(kernels.TensorFP16), wmma.F16, 512},
	}

	cols := []string{"size"}
	for _, s := range series {
		cols = append(cols, s.name)
	}
	cols = append(cols, "MAX_PERF_FP16", "THEORETICAL")
	t := &Table{ID: "fig17", Title: "Tensor core performance on the simulated Titan V (TFLOPS)",
		Columns: cols}

	peak := gpu.TitanV().PeakTensorTFLOPS()

	// One job per (size, series) cell, plus a final job for the MAX PERF
	// microbenchmark — every cell is an independent launch on its own
	// simulator, so the whole grid fans out across the worker pool.
	cells := make([]float64, len(sizes)*len(series))
	var maxPerfTFLOPS float64
	err = forEach(opt, len(cells)+1, func(i int) error {
		if i == len(cells) {
			v, err := fig17MaxPerf(cfg, scale, opt)
			if err != nil {
				return err
			}
			maxPerfTFLOPS = v
			return nil
		}
		n := sizes[i/len(series)]
		s := series[i%len(series)]
		k := n
		if s.kCap > 0 && k > s.kCap && !opt.Quick {
			k = s.kCap
		} else if opt.Quick && k > 256 {
			k = 256
		}
		l, err := s.build(n, n, k)
		if err != nil {
			return err
		}
		maxCTAs := cfg.NumSMs * 8
		st, err := launchOn(cfg, l, gemmElems(s.cd), gemmDims(n, n, k), maxCTAs, false)
		if err != nil {
			return err
		}
		sampled := l.FLOPs * float64(st.CTAsSimulated) / float64(st.CTAsTotal)
		cells[i] = sampled / st.Seconds(cfg) / 1e12 * scale
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, n := range sizes {
		row := []string{fmtI(uint64(n))}
		for ci := range series {
			row = append(row, fmtF(cells[si*len(series)+ci]))
		}
		row = append(row, fmtF(maxPerfTFLOPS), fmtF(peak))
		t.AddRow(row...)
	}
	t.Note("simulated on a %d-SM slice with proportional bandwidth, scaled ×%.1f to the 80-SM chip", cfg.NumSMs, scale)
	t.Note("paper: TC ≈ 3–6× SGEMM and ≈3× HGEMM; max sustained 109.6 TFLOPS (FP16) vs 125 theoretical")
	return t, nil
}

func fig17MaxPerf(cfg gpu.Config, scale float64, opt Options) (float64, error) {
	iters := 200
	if opt.Quick {
		iters = 40
	}
	l, err := kernels.MaxPerf(kernels.TensorFP16, 2*cfg.NumSMs, 4, iters)
	if err != nil {
		return 0, err
	}
	st, err := launchOn(cfg, l, []wmma.Precision{wmma.F16}, [][2]int{{64, 64}}, 0, false)
	if err != nil {
		return 0, err
	}
	return l.FLOPs / st.Seconds(cfg) / 1e12 * scale, nil
}
