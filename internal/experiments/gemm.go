package experiments

import (
	"fmt"

	"repro/internal/cutlass"
	"repro/internal/gpu"
	"repro/internal/hwproxy"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/wmma"
)

// GEMM-scale experiments: Section V's evaluation (Figures 14–17).
//
// Every point loop routes through runPoints (points.go), so the whole
// section inherits checkpoint/resume, keep-going failure isolation,
// bounded retry and fault injection. Point payload types carry exported
// fields only: they are journaled as JSON and must replay byte-exactly.

// gemmDims returns the operand allocation dims for an m×n×k GEMM launch
// with args (a, b, c, d).
func gemmDims(m, n, k int) [][2]int {
	return [][2]int{{m, k}, {k, n}, {m, n}, {m, n}}
}

func gemmElems(cd wmma.Precision) []wmma.Precision {
	return []wmma.Precision{wmma.F16, wmma.F16, cd, cd}
}

// Fig14a compares simulated cycles of the shared-memory WMMA GEMM against
// the hardware proxy as matrix size varies, reporting the relative
// deviation the paper quotes as "a standard deviation of less than 5%".
func Fig14a(opt Options) (*Table, error) {
	sizes := []int{32, 64, 128, 160, 192, 224, 256, 288, 320, 384, 480, 512}
	sms := 80
	if opt.Quick {
		sizes = []int{32, 64, 128}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)

	t := &Table{ID: "fig14a", Title: "WMMA GEMM kernel cycles vs matrix size (simulator vs hardware proxy)",
		Columns: []string{"size", "sim_cycles", "hw_cycles", "sim/hw"}}
	type point struct {
		Cycles uint64
		HW     float64
	}
	pts, perr, err := runPoints(opt, "fig14a", len(sizes), func(i int) (point, error) {
		n := sizes[i]
		l, err := kernels.WMMAGemmShared(kernels.TensorMixed, n, n, n)
		if err != nil {
			return point{}, err
		}
		st, err := opt.launchOn(cfg, l, gemmElems(wmma.F32), gemmDims(n, n, n), 0, false)
		if err != nil {
			return point{}, err
		}
		return point{st.Cycles, proxy.Cycles(hwproxy.GemmSpec{M: n, N: n, K: n, Kind: hwproxy.TensorCore,
			BlockM: 32, BlockN: 32, CBytes: 4})}, nil
	})
	if err != nil {
		return nil, err
	}
	var ratios, simSeries, hwSeries []float64
	for i, p := range pts {
		if !pointOK(perr, i) {
			t.AddRow(errRow([]string{fmtI(uint64(sizes[i]))}, len(t.Columns))...)
			continue
		}
		ratio := float64(p.Cycles) / p.HW
		ratios = append(ratios, ratio)
		simSeries = append(simSeries, float64(p.Cycles))
		hwSeries = append(hwSeries, p.HW)
		t.AddRow(fmtI(uint64(sizes[i])), fmtI(p.Cycles), fmtF(p.HW), fmtF(ratio))
	}
	if len(ratios) > 0 {
		t.Note("relative deviation stddev = %.1f%% (paper: < 5%%)", 100*stats.StdDev(ratios)/stats.Mean(ratios))
		t.Note("cycle-count correlation = %.2f%%", 100*stats.Correlation(simSeries, hwSeries))
	}
	return t, pointFailures(t, "fig14a", perr)
}

// cutlassPoint runs one CUTLASS configuration on the simulator and the
// proxy, returning (hwIPC, simIPC).
func cutlassPoint(opt Options, cfg gpu.Config, proxy hwproxy.Model, c cutlass.GemmConfig, maxCTAs int) (float64, float64, error) {
	l, err := cutlass.Build(c)
	if err != nil {
		return 0, 0, err
	}
	cd := wmma.F32
	cb := 4
	if c.Precision == kernels.TensorFP16 {
		cd = wmma.F16
		cb = 2
	}
	st, err := opt.launchOn(cfg, l, gemmElems(cd), gemmDims(c.M, c.N, c.K), maxCTAs, false)
	if err != nil {
		return 0, 0, err
	}
	// Scale sampled instruction counts back to the full problem.
	scale := float64(st.CTAsTotal) / float64(st.CTAsSimulated)
	totalInstr := uint64(float64(st.WarpInstructions) * scale)
	hwIPC := proxy.IPC(totalInstr, hwproxy.GemmSpec{
		M: c.M, N: c.N, K: c.K, Kind: hwproxy.TensorCore,
		BlockM: c.Policy.BlockM, BlockN: c.Policy.BlockN, CBytes: cb,
	})
	return hwIPC, st.IPC(), nil
}

// Fig14b sweeps CUTLASS configurations and reports the IPC correlation —
// the paper's 99.6 % headline.
func Fig14b(opt Options) (*Table, error) {
	type point struct {
		c cutlass.GemmConfig
	}
	policies := cutlass.DefaultPolicies()
	sizes := []int{128, 256, 384, 512, 640}
	sms := 80
	if opt.Quick {
		sizes = []int{128, 256}
		policies = policies[:2]
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)

	var pts []point
	for _, pol := range policies {
		for _, prec := range []kernels.GemmPrecision{kernels.TensorMixed, kernels.TensorFP16} {
			for _, n := range sizes {
				if n%pol.BlockM != 0 || n%pol.BlockN != 0 {
					continue
				}
				pts = append(pts, point{cutlass.GemmConfig{Policy: pol, Precision: prec, M: n, N: n, K: n}})
			}
		}
	}
	t := &Table{ID: "fig14b", Title: "CUTLASS GEMM IPC: simulator vs hardware proxy",
		Columns: []string{"config", "hw_ipc", "sim_ipc"}}
	type ipcPoint struct{ HW, Sim float64 }
	res, perr, err := runPoints(opt, "fig14b", len(pts), func(i int) (ipcPoint, error) {
		hw, sim, err := cutlassPoint(opt, cfg, proxy, pts[i].c, 0)
		if err != nil {
			return ipcPoint{}, err
		}
		return ipcPoint{hw, sim}, nil
	})
	if err != nil {
		return nil, err
	}
	var hws, sims []float64
	for i, r := range res {
		if !pointOK(perr, i) {
			t.AddRow(errRow([]string{pts[i].c.String()}, len(t.Columns))...)
			continue
		}
		hws = append(hws, r.HW)
		sims = append(sims, r.Sim)
		t.AddRow(pts[i].c.String(), fmtF(r.HW), fmtF(r.Sim))
	}
	if len(hws) > 0 {
		corr := stats.Correlation(hws, sims)
		t.Note("IPC correlation = %.2f%% over %d kernels (paper: 99.6%%)", 100*corr, len(hws))
	}
	return t, pointFailures(t, "fig14b", perr)
}

// Fig14c plots CUTLASS IPC against matrix size for the simulator and the
// proxy, reproducing the trend that the simulator's relative performance
// rises with matrix size.
func Fig14c(opt Options) (*Table, error) {
	sizes := []int{128, 256, 512, 768, 1024, 2048}
	sms := 80
	maxCTAs := 0
	if opt.Quick {
		sizes = []int{128, 256}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	proxy := hwproxy.TitanV().Scale(cfg.NumSMs)
	pol := cutlass.DefaultPolicies()[1] // 64×64 block, 32×32 warp

	t := &Table{ID: "fig14c", Title: "CUTLASS GEMM IPC vs matrix size",
		Columns: []string{"size", "hw_ipc", "sim_ipc", "sim/hw"}}
	type ipcPoint struct{ HW, Sim float64 }
	res, perr, err := runPoints(opt, "fig14c", len(sizes), func(i int) (ipcPoint, error) {
		n := sizes[i]
		cap := maxCTAs
		if n >= 1024 {
			cap = cfg.NumSMs * 12 // sample ~a wave of CTAs for the largest sizes
		}
		hw, sim, err := cutlassPoint(opt, cfg, proxy, cutlass.GemmConfig{
			Policy: pol, Precision: kernels.TensorMixed, M: n, N: n, K: n}, cap)
		if err != nil {
			return ipcPoint{}, err
		}
		return ipcPoint{hw, sim}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		if !pointOK(perr, i) {
			t.AddRow(errRow([]string{fmtI(uint64(sizes[i]))}, len(t.Columns))...)
			continue
		}
		t.AddRow(fmtI(uint64(sizes[i])), fmtF(r.HW), fmtF(r.Sim), fmtF(r.Sim/r.HW))
	}
	t.Note("the paper's Figure 14c shows GPGPU-Sim trending above hardware as size grows")
	return t, pointFailures(t, "fig14c", perr)
}

// fig15Row is one op's latency summary — the journaled payload, derived
// from the (large) trace inside the point so the checkpoint stays small.
type fig15Row struct {
	Count              int
	Min, Med, P95, Max float64
}

// Fig15 profiles the latency distribution of the three wmma instructions
// during a shared-memory WMMA GEMM.
func Fig15(opt Options) (*Table, error) {
	n := 1024
	sms := 80
	if opt.Quick {
		n = 256
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	l, err := cutlass.Build(cutlass.GemmConfig{
		Policy:    cutlass.DefaultPolicies()[1], // 64×64 block, 32×32 warp
		Precision: kernels.TensorMixed, M: n, N: n, K: n,
	})
	if err != nil {
		return nil, err
	}
	maxCTAs := cfg.NumSMs * 8
	// A single simulation, but still routed through runPoints so RunAll's
	// shared pool budget, the checkpoint journal and fault injection all
	// cover it like every other data point.
	rows, perr, err := runPoints(opt, "fig15", 1, func(int) ([3]fig15Row, error) {
		st, err := opt.launchOn(cfg, l, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs, true)
		if err != nil {
			return [3]fig15Row{}, err
		}
		var out [3]fig15Row
		for k, xs := range [][]float64{st.Trace.WmmaLoad, st.Trace.WmmaMMA, st.Trace.WmmaStore} {
			out[k] = fig15Row{len(xs), stats.Min(xs), stats.Median(xs),
				stats.Percentile(xs, 95), stats.Max(xs)}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig15", Title: fmt.Sprintf("wmma latency distribution, %d×%d shared-memory GEMM", n, n),
		Columns: []string{"op", "count", "min", "median", "p95", "max"}}
	names := []string{"wmma.load", "wmma.mma", "wmma.store"}
	for k, name := range names {
		if !pointOK(perr, 0) {
			t.AddRow(errRow([]string{name}, len(t.Columns))...)
			continue
		}
		r := rows[0][k]
		t.AddRow(name, fmtI(uint64(r.Count)), fmtF(r.Min), fmtF(r.Med), fmtF(r.P95), fmtF(r.Max))
	}
	t.Note("paper minimums: load 125, mma 70, store 120 cycles; occasional high outliers from scheduling and memory traffic")
	return t, pointFailures(t, "fig15", perr)
}

// Fig16 plots median wmma latencies against matrix size for the
// shared-memory and global-memory (naive) WMMA GEMMs.
func Fig16(opt Options) (*Table, error) {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	sms := 80
	if opt.Quick {
		sizes = []int{64, 128, 256}
		sms = 16
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig16", Title: "Median wmma latency vs matrix size (shared vs global operands)",
		Columns: []string{"size", "load(sh)", "load(gl)", "mma(sh)", "mma(gl)", "store(sh)", "store(gl)"}}
	rows, perr, err := runPoints(opt, "fig16", len(sizes), func(i int) ([6]float64, error) {
		n := sizes[i]
		maxCTAs := cfg.NumSMs * 8
		shared, err := cutlass.Build(cutlass.GemmConfig{
			Policy:    cutlass.DefaultPolicies()[1],
			Precision: kernels.TensorMixed, M: n, N: n, K: n,
		})
		if err != nil {
			return [6]float64{}, err
		}
		stSh, err := opt.launchOn(cfg, shared, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs, true)
		if err != nil {
			return [6]float64{}, err
		}
		naive, err := kernels.WMMAGemmNaive(kernels.TensorMixed, n, n, n)
		if err != nil {
			return [6]float64{}, err
		}
		stGl, err := opt.launchOn(cfg, naive, gemmElems(wmma.F32), gemmDims(n, n, n), maxCTAs*4, true)
		if err != nil {
			return [6]float64{}, err
		}
		return [6]float64{
			stats.Median(stSh.Trace.WmmaLoad), stats.Median(stGl.Trace.WmmaLoad),
			stats.Median(stSh.Trace.WmmaMMA), stats.Median(stGl.Trace.WmmaMMA),
			stats.Median(stSh.Trace.WmmaStore), stats.Median(stGl.Trace.WmmaStore),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if !pointOK(perr, i) {
			t.AddRow(errRow([]string{fmtI(uint64(sizes[i]))}, len(t.Columns))...)
			continue
		}
		t.AddRow(fmtI(uint64(sizes[i])),
			fmtF(r[0]), fmtF(r[1]), fmtF(r[2]), fmtF(r[3]), fmtF(r[4]), fmtF(r[5]))
	}
	t.Note("shared-memory loads stay flat while global-operand loads grow with size — the paper reports >100× at large sizes")
	return t, pointFailures(t, "fig16", perr)
}

// fig17Series describes one line of Figure 17.
type fig17Series struct {
	name  string
	build func(m, n, k int) (*kernels.Launch, error)
	cd    wmma.Precision
	// kCap limits the simulated K depth (steady-state throughput
	// sampling); 0 = full depth.
	kCap int
}

// Fig17 measures TFLOPS for every GEMM implementation across sizes.
func Fig17(opt Options) (*Table, error) {
	sizes := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	sms := 16 // chip-slice substitution; throughput is per-SM intensive
	if opt.Quick {
		sizes = []int{256, 512}
		sms = 8
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	cfg, err := opt.titanV(sms)
	if err != nil {
		return nil, err
	}
	scale := float64(gpu.TitanV().NumSMs) / float64(cfg.NumSMs)

	cublasLike := func(prec kernels.GemmPrecision) func(m, n, k int) (*kernels.Launch, error) {
		return func(m, n, k int) (*kernels.Launch, error) {
			return cutlass.Build(cutlass.GemmConfig{
				Policy:    cutlass.TilePolicy{BlockM: 128, BlockN: 64, WarpM: 32, WarpN: 32, DoubleBuffer: true},
				Precision: prec, M: m, N: n, K: k,
			})
		}
	}
	series := []fig17Series{
		{"CUBLAS_WO_TC_FP32", func(m, n, k int) (*kernels.Launch, error) { return kernels.SGEMMSimt(m, n, k) }, wmma.F32, 256},
		{"CUBLAS_WO_TC_FP16", func(m, n, k int) (*kernels.Launch, error) { return kernels.HGEMMSimt(m, n, k) }, wmma.F16, 256},
		{"WMMA_OPTIMIZED", func(m, n, k int) (*kernels.Launch, error) {
			return kernels.WMMAGemmShared(kernels.TensorFP16, m, n, k)
		}, wmma.F16, 512},
		{"CUBLAS_WITH_TC_FP32", cublasLike(kernels.TensorMixed), wmma.F32, 512},
		{"CUBLAS_WITH_TC_FP16", cublasLike(kernels.TensorFP16), wmma.F16, 512},
	}

	cols := []string{"size"}
	for _, s := range series {
		cols = append(cols, s.name)
	}
	cols = append(cols, "MAX_PERF_FP16", "THEORETICAL")
	t := &Table{ID: "fig17", Title: "Tensor core performance on the simulated Titan V (TFLOPS)",
		Columns: cols}

	peak := gpu.TitanV().PeakTensorTFLOPS()

	// One job per (size, series) cell, plus a final job for the MAX PERF
	// microbenchmark — every cell is an independent launch on its own
	// simulator, so the whole grid fans out across the worker pool.
	nCells := len(sizes) * len(series)
	cells, perr, err := runPoints(opt, "fig17", nCells+1, func(i int) (float64, error) {
		if i == nCells {
			return fig17MaxPerf(cfg, scale, opt)
		}
		n := sizes[i/len(series)]
		s := series[i%len(series)]
		k := n
		if s.kCap > 0 && k > s.kCap && !opt.Quick {
			k = s.kCap
		} else if opt.Quick && k > 256 {
			k = 256
		}
		l, err := s.build(n, n, k)
		if err != nil {
			return 0, err
		}
		maxCTAs := cfg.NumSMs * 8
		st, err := opt.launchOn(cfg, l, gemmElems(s.cd), gemmDims(n, n, k), maxCTAs, false)
		if err != nil {
			return 0, err
		}
		sampled := l.FLOPs * float64(st.CTAsSimulated) / float64(st.CTAsTotal)
		return sampled / st.Seconds(cfg) / 1e12 * scale, nil
	})
	if err != nil {
		return nil, err
	}
	cell := func(i int) string {
		if !pointOK(perr, i) {
			return errMark
		}
		return fmtF(cells[i])
	}
	for si, n := range sizes {
		row := []string{fmtI(uint64(n))}
		for ci := range series {
			row = append(row, cell(si*len(series)+ci))
		}
		row = append(row, cell(nCells), fmtF(peak))
		t.AddRow(row...)
	}
	t.Note("simulated on a %d-SM slice with proportional bandwidth, scaled ×%.1f to the 80-SM chip", cfg.NumSMs, scale)
	t.Note("paper: TC ≈ 3–6× SGEMM and ≈3× HGEMM; max sustained 109.6 TFLOPS (FP16) vs 125 theoretical")
	return t, pointFailures(t, "fig17", perr)
}

func fig17MaxPerf(cfg gpu.Config, scale float64, opt Options) (float64, error) {
	iters := 200
	if opt.Quick {
		iters = 40
	}
	l, err := kernels.MaxPerf(kernels.TensorFP16, 2*cfg.NumSMs, 4, iters)
	if err != nil {
		return 0, err
	}
	st, err := opt.launchOn(cfg, l, []wmma.Precision{wmma.F16}, [][2]int{{64, 64}}, 0, false)
	if err != nil {
		return 0, err
	}
	return l.FLOPs / st.Seconds(cfg) / 1e12 * scale, nil
}
