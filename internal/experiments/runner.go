package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel experiment engine. Every experiment is a set of independent
// data points (GEMM sizes, latency sweeps, warp counts) that each build
// their own kernel, gpu.Simulator, mem.System and zeroMemory — nothing is
// shared between points, so they fan out across a worker pool. Results are
// written into index-addressed slots and tables are assembled in index
// order afterwards, which makes the parallel output byte-identical to a
// sequential run regardless of completion order.
//
// The engine is two-level (see runall.go): RunAll fans the whole
// registry's data points into one sharedPool bounded by Options.Workers,
// while a single-experiment Run without a pool spins a private pool of
// the same size. Either way fn(i) runs at most Workers at a time.
//
// Fault tolerance (points.go, checkpoint.go) layers on top: every path
// below — sequential, private pool and shared pool — routes fn through
// callSafely so a panicking data point surfaces as that point's error
// instead of crashing the process, and every path stops handing out new
// indexes once the run's context is canceled so a SIGINT drains
// gracefully.

// workers resolves the Options.Workers knob: 0 means one worker per CPU,
// 1 forces the sequential path.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// forEach runs fn(i) for every i in [0, n) on the option's worker pool.
// fn must confine its writes to the i-th slot of result slices sized
// before the call. On error the pool stops handing out new indexes and
// the lowest-indexed error is returned, matching what a sequential run
// would surface. When the options carry a shared cross-experiment pool,
// the indexes are submitted there so the global worker budget bounds all
// experiments together.
func forEach(opt Options, n int, fn func(i int) error) error {
	ctx := opt.ctx()
	if opt.pool != nil {
		return opt.pool.forEach(ctx, n, fn)
	}
	w := min(opt.workers(), n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("experiments: canceled before data point %d: %w", i, err)
			}
			if err := callSafely(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("experiments: canceled before data point %d: %w", i, err)
					failed.Store(true)
					return
				}
				if err := callSafely(fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// callSafely invokes one data-point function, converting a panic into an
// error. Every engine path routes through it, so a panicking point in a
// sequential run or a private pool surfaces exactly like one on the
// shared pool: as that point's error, never a process crash.
func callSafely(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: data point %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// sharedPool is the cross-experiment worker pool: a fixed set of workers
// draining one job queue. Jobs are leaves — they never block on the pool
// themselves — so a fixed worker count cannot deadlock, and the pool's
// size is the global simulation-concurrency budget however many
// experiments are in flight.
type sharedPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// newSharedPool starts a pool of the given size.
func newSharedPool(workers int) *sharedPool {
	p := &sharedPool{jobs: make(chan func(), 4*workers)}
	p.wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// close drains the pool and waits for its workers to exit.
func (p *sharedPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// forEach submits n point jobs and waits for them. Error semantics match
// the private-pool forEach: after the first failure (or cancellation)
// remaining points of this experiment no-op (other experiments sharing
// the pool are unaffected), and the lowest-indexed error is returned.
func (p *sharedPool) forEach(ctx context.Context, n int, fn func(i int) error) error {
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
		errs   = make([]error, n)
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.jobs <- func() {
			defer wg.Done()
			if failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("experiments: canceled before data point %d: %w", i, err)
				failed.Store(true)
				return
			}
			// A panicking point must not take down the shared workers the
			// other experiments depend on; surface it as this experiment's
			// error instead.
			if err := callSafely(fn, i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
