package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel experiment engine. Every experiment is a set of independent
// data points (GEMM sizes, latency sweeps, warp counts) that each build
// their own kernel, gpu.Simulator, mem.System and zeroMemory — nothing is
// shared between points, so they fan out across a worker pool. Results are
// written into index-addressed slots and tables are assembled in index
// order afterwards, which makes the parallel output byte-identical to a
// sequential run regardless of completion order.

// workers resolves the Options.Workers knob: 0 means one worker per CPU,
// 1 forces the sequential path.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// forEach runs fn(i) for every i in [0, n) on the option's worker pool.
// fn must confine its writes to the i-th slot of result slices sized
// before the call. On error the pool stops handing out new indexes and
// the lowest-indexed error is returned, matching what a sequential run
// would surface.
func forEach(opt Options, n int, fn func(i int) error) error {
	w := min(opt.workers(), n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
