package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/sass"
	"repro/internal/tcore"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Microarchitecture experiments: the reverse-engineering artifacts of
// Section III (Figures 7–12, Tables I–III).

// Fig7 tabulates the Volta fragment-to-thread mappings of Figure 7:
// per-threadgroup regions, fragment sizes and SASS load decompositions.
func Fig7(Options) (*Table, error) {
	t := &Table{ID: "fig7", Title: "Volta fragment-to-thread mapping (16x16x16)",
		Columns: []string{"operand", "layout", "elem", "tg", "region", "frag", "loads/lane", "copies/elem"}}
	cases := []struct {
		op     wmma.Operand
		layout tensor.Layout
		elem   wmma.Precision
	}{
		{wmma.MatrixA, tensor.RowMajor, wmma.F16},
		{wmma.MatrixA, tensor.ColMajor, wmma.F16},
		{wmma.MatrixB, tensor.RowMajor, wmma.F16},
		{wmma.MatrixB, tensor.ColMajor, wmma.F16},
		{wmma.MatrixC, tensor.RowMajor, wmma.F32},
		{wmma.MatrixC, tensor.RowMajor, wmma.F16},
	}
	for _, c := range cases {
		m, err := wmma.Map(wmma.Volta, wmma.M16N16K16, c.op, c.layout, c.elem)
		if err != nil {
			return nil, err
		}
		// Replication count of the lane-0 anchor element. This used to
		// take the first value out of map iteration order — well-defined
		// only by the accident that the paper's mappings replicate every
		// element equally (simlint determinism finding, PR 6).
		copies := m.LoadCounts()[m.Lanes[0][0]]
		prog := sass.ExpandLoad(m, 16)
		var ops []string
		for _, in := range prog {
			ops = append(ops, in.Op.String())
		}
		for tg := 0; tg < wmma.NumThreadgroups; tg++ {
			rl, rh, cl, ch := m.ThreadgroupRegion(tg)
			t.AddRow(c.op.String(), c.layout.String(), c.elem.String(), fmtI(uint64(tg)),
				fmt.Sprintf("[%d:%d,%d:%d]", rl, rh, cl, ch),
				fmtI(uint64(m.FragmentLen())),
				strings.Join(dedupe(ops), "+"),
				fmtI(uint64(copies)))
		}
	}
	t.Note("every A/B element is held by exactly two threads of different threadgroups; C by one (paper Section III-B)")
	return t, nil
}

// Fig8 tabulates the Turing mappings of Figure 8.
func Fig8(Options) (*Table, error) {
	t := &Table{ID: "fig8", Title: "Turing fragment-to-thread mapping",
		Columns: []string{"shape", "operand", "elem", "frag", "slices/tg", "copies/elem"}}
	for _, sh := range []wmma.Shape{wmma.M16N16K16, wmma.M32N8K16, wmma.M8N32K16, wmma.M8N8K32} {
		elems := []wmma.Precision{wmma.F16, wmma.S8}
		if sh == wmma.M8N8K32 {
			elems = []wmma.Precision{wmma.S4}
		}
		for _, elem := range elems {
			for _, op := range []wmma.Operand{wmma.MatrixA, wmma.MatrixB, wmma.MatrixC} {
				e := elem
				if op == wmma.MatrixC {
					if elem == wmma.F16 {
						e = wmma.F32
					} else {
						e = wmma.S32
					}
				}
				m, err := wmma.Map(wmma.Turing, sh, op, tensor.RowMajor, e)
				if err != nil {
					return nil, err
				}
				slices := map[int]bool{}
				for _, c := range m.Lanes[0] {
					s := c.Row
					if op == wmma.MatrixB {
						s = c.Col
					}
					slices[s] = true
				}
				// Anchor-element replication count, not map-iteration
				// order (see the Volta table above).
				copies := m.LoadCounts()[m.Lanes[0][0]]
				t.AddRow(sh.String(), op.String(), e.String(),
					fmtI(uint64(m.FragmentLen())), fmtI(uint64(len(slices))), fmtI(uint64(copies)))
			}
		}
	}
	t.Note("every element loaded exactly once; consecutive threadgroups hold consecutive rows/columns (paper Section III-B-2)")
	return t, nil
}

func dedupe(xs []string) []string {
	var out []string
	for _, x := range xs {
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// Fig9 regenerates the cumulative clock cycles of Figure 9 by running the
// clock-patching methodology of Figure 6 over the SASS expansion.
func Fig9(Options) (*Table, error) {
	t := &Table{ID: "fig9", Title: "Volta HMMA cumulative clock cycles (Figure 6 sweep)",
		Columns: []string{"mode", "hmma", "set", "step", "cum_cycles"}}
	for _, mode := range []tcore.Mode{tcore.MixedPrecision, tcore.FP16} {
		cfg := wmma.Config{Arch: wmma.Volta, Shape: wmma.M16N16K16,
			ALayout: tensor.RowMajor, BLayout: tensor.ColMajor, AType: wmma.F16,
			CType: wmma.F32, DType: wmma.F32}
		if mode == tcore.FP16 {
			cfg.CType, cfg.DType = wmma.F16, wmma.F16
		}
		prog, err := sass.ExpandMMA(cfg)
		if err != nil {
			return nil, err
		}
		sweep, err := sass.CumulativeSweep(prog, tcore.VoltaTiming(mode))
		if err != nil {
			return nil, err
		}
		for i, c := range sweep {
			t.AddRow(mode.String(), fmtI(uint64(i+1)), fmtI(uint64(prog[i].Set)),
				fmtI(uint64(prog[i].Step)), fmtI(uint64(c)))
		}
	}
	t.Note("mixed precision totals 54 cycles over 16 HMMAs; FP16 mode 64 over 8 — ten cycles slower, as the paper reports")
	return t, nil
}

// TableI regenerates the Turing per-set cumulative cycles.
func TableI(Options) (*Table, error) {
	t := &Table{ID: "tab1", Title: "Average cumulative cycles to execute HMMAs up to set n (Turing)",
		Columns: []string{"tile", "precision", "set1", "set2", "set3", "set4"}}
	rows := []struct {
		shape wmma.Shape
		elem  wmma.Precision
		acc   wmma.Precision
		label string
	}{
		{wmma.M16N16K16, wmma.F16, wmma.F32, "16Bit (FP32 Acc)"},
		{wmma.M16N16K16, wmma.F16, wmma.F16, "16Bit (FP16 Acc)"},
		{wmma.M16N16K16, wmma.S8, wmma.S32, "8Bit"},
		{wmma.M32N8K16, wmma.F16, wmma.F32, "16Bit (FP32 Acc)"},
		{wmma.M32N8K16, wmma.F16, wmma.F16, "16Bit (FP16 Acc)"},
		{wmma.M32N8K16, wmma.S8, wmma.S32, "8Bit"},
		{wmma.M8N32K16, wmma.F16, wmma.F32, "16Bit (FP32 Acc)"},
		{wmma.M8N32K16, wmma.F16, wmma.F16, "16Bit (FP16 Acc)"},
		{wmma.M8N32K16, wmma.S8, wmma.S32, "8Bit"},
		{wmma.M8N8K32, wmma.S4, wmma.S32, "4Bit"},
	}
	for _, r := range rows {
		tm, err := tcore.TuringTiming(r.shape, r.elem, r.acc)
		if err != nil {
			return nil, err
		}
		cells := []string{r.shape.String(), r.label}
		for _, c := range tm.SetCumulative() {
			cells = append(cells, fmtI(uint64(c)))
		}
		for len(cells) < 6 {
			cells = append(cells, "-")
		}
		t.AddRow(cells...)
	}
	t.Note("8-bit is fastest, mixed precision slower than FP16 accumulation, 4-bit highest (experimental), matching Table I")
	return t, nil
}

// TableII regenerates the octet composition table.
func TableII(Options) (*Table, error) {
	t := &Table{ID: "tab2", Title: "Octet composition and elements accessed",
		Columns: []string{"octet", "threadgroups", "matrix A", "matrix B"}}
	for _, o := range wmma.Octets() {
		t.AddRow(fmtI(uint64(o.ID)),
			fmt.Sprintf("%d and %d", o.Threadgroups[0], o.Threadgroups[1]),
			fmt.Sprintf("[%d:%d,%d:%d]", o.ARows[0], o.ARows[1], o.ACols[0], o.ACols[1]),
			fmt.Sprintf("[%d:%d,%d:%d]", o.BRows[0], o.BRows[1], o.BCols[0], o.BCols[1]))
	}
	return t, nil
}

// TableIII regenerates the per-set/per-step outer-product table.
func TableIII(Options) (*Table, error) {
	t := &Table{ID: "tab3", Title: "Octet computation details",
		Columns: []string{"set", "step", "threadgroup X", "threadgroup X+4"}}
	for _, r := range tcore.TableIII() {
		t.AddRow(fmtI(uint64(r.Set)), fmtI(uint64(r.Step)), r.TGX, r.TGX4)
	}
	return t, nil
}

// Fig10 tabulates the Volta set/step extents of Figure 10 for
// threadgroup 0.
func Fig10(Options) (*Table, error) {
	t := &Table{ID: "fig10", Title: "Volta HMMA sub-tile extents (threadgroup 0)",
		Columns: []string{"mode", "set", "step", "A", "B", "D"}}
	for _, mode := range []tcore.Mode{tcore.MixedPrecision, tcore.FP16} {
		for _, h := range tcore.VoltaSchedule(mode) {
			w := h.TG[0]
			t.AddRow(mode.String(), fmtI(uint64(h.Set)), fmtI(uint64(h.Step)),
				w.A.String(), w.B.String(), w.D.String())
		}
	}
	t.Note("mixed: 2x4 A × 4x4 B per step; fp16: 4x4 × 4x4 — Figures 10b and 10c")
	return t, nil
}

// Fig11 tabulates the Turing per-set extents of Figure 11.
func Fig11(Options) (*Table, error) {
	t := &Table{ID: "fig11", Title: "Turing HMMA per-set sub-tile extents",
		Columns: []string{"shape", "elem", "set", "A", "B", "D"}}
	for _, c := range []struct {
		shape wmma.Shape
		elem  wmma.Precision
	}{
		{wmma.M16N16K16, wmma.F16}, {wmma.M16N16K16, wmma.S8},
		{wmma.M32N8K16, wmma.F16}, {wmma.M32N8K16, wmma.S8},
		{wmma.M8N32K16, wmma.F16}, {wmma.M8N32K16, wmma.S8},
		{wmma.M8N8K32, wmma.S4},
	} {
		sets, err := tcore.TuringSchedule(c.shape, c.elem)
		if err != nil {
			return nil, err
		}
		for _, s := range sets {
			t.AddRow(c.shape.String(), c.elem.String(), fmtI(uint64(s.Set)),
				s.A.String(), s.B.String(), s.D.String())
		}
	}
	return t, nil
}

// Fig12c sweeps warps per CTA over the repeated-HMMA microbenchmark on
// one SM, reproducing the knee at four warps.
func Fig12c(opt Options) (*Table, error) {
	iters := 64
	if opt.Quick {
		iters = 16
	}
	t := &Table{ID: "fig12c", Title: "Cycles to execute parallel HMMA vs warps per CTA (1 SM)",
		Columns: []string{"warps", "cycles", "cycles/warp-mma"}}
	cfg, err := opt.applySched(gpu.TitanV())
	if err != nil {
		return nil, err
	}
	cfg.NumSMs = 1
	cycles, perr, err := runPoints(opt, "fig12c", 8, func(i int) (uint64, error) {
		warps := i + 1
		l, err := kernels.MMALoop(kernels.TensorMixed, warps, iters, 2)
		if err != nil {
			return 0, err
		}
		st, err := opt.launchOn(cfg, l, []wmma.Precision{wmma.F16}, [][2]int{{64, 64}}, 0, false)
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var series []float64
	for i, c := range cycles {
		warps := i + 1
		if !pointOK(perr, i) {
			series = append(series, 0)
			t.AddRow(errRow([]string{fmtI(uint64(warps))}, len(t.Columns))...)
			continue
		}
		series = append(series, float64(c))
		t.AddRow(fmtI(uint64(warps)), fmtI(c), fmtF(float64(c)/float64(warps*iters*2)))
	}
	if pointOK(perr, 3) && pointOK(perr, 4) {
		knee := series[4] / series[3]
		t.Note("knee at 4 warps: cycles(5)/cycles(4) = %.2f (flat before, rising after — only 4 warps issue HMMA concurrently per SM)", knee)
		t.Note("paper Figure 12c shows the same flat-then-rising shape with the knee at 4 warps")
	}
	return t, pointFailures(t, "fig12c", perr)
}
