package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// The cross-experiment scheduler: the second level of the parallel
// engine. RunAll fans the data points of every experiment in the registry
// into one shared worker pool (runner.go) so the Options.Workers budget
// bounds the whole run, streams each experiment's table in registry order
// as soon as it — and all its predecessors — completes, and aggregates
// per-experiment failures instead of dying on the first one.

// Result is one experiment's outcome under RunAll.
type Result struct {
	Experiment Experiment
	// Table is the regenerated artifact. It is nil when the experiment
	// failed outright; under Options.KeepGoing both fields can be set —
	// a partial table with errMark cells alongside the aggregated
	// *PointFailures error (use AsPointFailures to unwrap).
	Table *Table
	// Err is the experiment's failure; other experiments keep running.
	Err error
	// Elapsed is the experiment's wall time inside the shared pool.
	Elapsed time.Duration
}

// RunAll runs the experiments on one shared worker pool with a global
// Options.Workers budget (0 = one worker per CPU). Every experiment's
// independent data points are submitted to the same pool, so the budget
// bounds total simulation concurrency, not per-experiment concurrency.
//
// emit, when non-nil, is called exactly once per experiment, in registry
// order, as soon as that experiment and all its predecessors have
// completed — tables stream out while later experiments are still
// simulating. The returned slice holds every result in registry order;
// the tables are byte-identical whatever the worker count, because each
// data point simulates on its own Simulator and tables are assembled in
// point order.
func RunAll(exps []Experiment, opt Options, emit func(Result)) []Result {
	pool := newSharedPool(opt.workers())
	defer pool.close()
	opt.pool = pool

	st := newTableStreamer(len(exps), emit)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		// One lightweight driver goroutine per experiment: it assembles
		// tables and blocks while its points run on the shared pool.
		go func(i int, e Experiment) {
			defer wg.Done()
			//simlint:wallclock Elapsed is stderr progress diagnostics only; it never reaches Stats or tables
			start := time.Now()
			tb, err := runSafely(e, opt)
			st.record(i, Result{Experiment: e, Table: tb, Err: err, Elapsed: time.Since(start)}) //simlint:wallclock same diagnostic timing
		}(i, e)
	}
	wg.Wait()
	return st.results //simlint:ok wg.Wait() above joined every driver goroutine; no concurrent writers remain
}

// tableStreamer collects per-experiment results from the driver
// goroutines and replays them to emit in registry order: a table is
// emitted as soon as it and all its predecessors have completed. The
// simlint guardedby analyzer pins every field access to the mutex.
type tableStreamer struct {
	mu   sync.Mutex
	emit func(Result) // called with mu held, in registry order; may be nil

	//simlint:guardedby mu
	results []Result
	//simlint:guardedby mu
	done []bool
	// next is the first experiment index not yet emitted.
	//simlint:guardedby mu
	next int
}

func newTableStreamer(n int, emit func(Result)) *tableStreamer {
	return &tableStreamer{
		emit:    emit,
		results: make([]Result, n),
		done:    make([]bool, n),
	}
}

// record stores one experiment's result and emits every consecutive
// completed table starting at the replay cursor.
func (s *tableStreamer) record(i int, r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[i] = r
	s.done[i] = true
	for s.next < len(s.results) && s.done[s.next] {
		if s.emit != nil {
			s.emit(s.results[s.next])
		}
		s.next++
	}
}

// runSafely runs one experiment, converting a panic into an error so a
// bad experiment cannot take down the rest of the registry. The error
// carries the experiment's identity — the recoversurface contract every
// recover() site in the engine honours.
func runSafely(e Experiment, opt Options) (tb *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			tb, err = nil, fmt.Errorf("experiment %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(opt)
}

// Errs aggregates the failures of a RunAll pass into one error (nil when
// every experiment succeeded). Each failure is prefixed with its
// experiment id.
func Errs(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Experiment.ID, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Failures returns the subset of results that failed, in registry order.
func Failures(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
