package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// The cross-experiment scheduler: the second level of the parallel
// engine. RunAll fans the data points of every experiment in the registry
// into one shared worker pool (runner.go) so the Options.Workers budget
// bounds the whole run, streams each experiment's table in registry order
// as soon as it — and all its predecessors — completes, and aggregates
// per-experiment failures instead of dying on the first one.

// Result is one experiment's outcome under RunAll.
type Result struct {
	Experiment Experiment
	// Table is the regenerated artifact; nil when Err is set.
	Table *Table
	// Err is the experiment's failure; other experiments keep running.
	Err error
	// Elapsed is the experiment's wall time inside the shared pool.
	Elapsed time.Duration
}

// RunAll runs the experiments on one shared worker pool with a global
// Options.Workers budget (0 = one worker per CPU). Every experiment's
// independent data points are submitted to the same pool, so the budget
// bounds total simulation concurrency, not per-experiment concurrency.
//
// emit, when non-nil, is called exactly once per experiment, in registry
// order, as soon as that experiment and all its predecessors have
// completed — tables stream out while later experiments are still
// simulating. The returned slice holds every result in registry order;
// the tables are byte-identical whatever the worker count, because each
// data point simulates on its own Simulator and tables are assembled in
// point order.
func RunAll(exps []Experiment, opt Options, emit func(Result)) []Result {
	pool := newSharedPool(opt.workers())
	defer pool.close()
	opt.pool = pool

	results := make([]Result, len(exps))
	done := make([]bool, len(exps))
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for i, e := range exps {
		wg.Add(1)
		// One lightweight driver goroutine per experiment: it assembles
		// tables and blocks while its points run on the shared pool.
		go func(i int, e Experiment) {
			defer wg.Done()
			//simlint:wallclock Elapsed is stderr progress diagnostics only; it never reaches Stats or tables
			start := time.Now()
			tb, err := runSafely(e, opt)
			r := Result{Experiment: e, Table: tb, Err: err, Elapsed: time.Since(start)} //simlint:wallclock same diagnostic timing
			mu.Lock()
			defer mu.Unlock()
			results[i] = r
			done[i] = true
			for next < len(exps) && done[next] {
				if emit != nil {
					emit(results[next])
				}
				next++
			}
		}(i, e)
	}
	wg.Wait()
	return results
}

// runSafely runs one experiment, converting a panic into an error so a
// bad experiment cannot take down the rest of the registry.
func runSafely(e Experiment, opt Options) (tb *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			tb, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(opt)
}

// Errs aggregates the failures of a RunAll pass into one error (nil when
// every experiment succeeded). Each failure is prefixed with its
// experiment id.
func Errs(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Experiment.ID, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Failures returns the subset of results that failed, in registry order.
func Failures(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
