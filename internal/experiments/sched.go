package experiments

import (
	"repro/internal/cutlass"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/wmma"
)

// SchedSweep tables IPC per warp-scheduler policy across the CUTLASS GEMM
// grid — the scenario axis opened by the pluggable-scheduler refactor
// (DESIGN.md). Unlike the paper reproductions it has no figure
// counterpart; it documents how sensitive the simulated GEMMs are to the
// scheduling policy. Every (size, policy) cell is an independent launch
// on its own simulator, so the grid fans out across the worker pool like
// any other experiment. Options.Scheduler is deliberately ignored: the
// sweep is the policy axis itself.
func SchedSweep(opt Options) (*Table, error) {
	sizes := []int{256, 512, 1024}
	sms := 16
	kCap := 256 // steady-state throughput sampling, like fig17's kCap
	if opt.Quick {
		sizes = []int{128, 256}
		sms = 8
		kCap = 128
	}
	if opt.SMs > 0 {
		sms = opt.SMs
	}
	pols := gpu.Schedulers()
	base := opt.applyKnobs(scaledTitanV(sms))

	cols := []string{"size"}
	for _, p := range pols {
		cols = append(cols, p.String()+"_ipc")
	}
	t := &Table{ID: "sched", Title: "CUTLASS GEMM IPC by warp scheduler policy",
		Columns: cols}

	cells, perr, err := runPoints(opt, "sched", len(sizes)*len(pols), func(i int) (float64, error) {
		n := sizes[i/len(pols)]
		cfg := base
		cfg.Scheduler = pols[i%len(pols)]
		k := min(n, kCap)
		l, err := cutlass.Build(cutlass.GemmConfig{
			Policy:    cutlass.TilePolicy{BlockM: 64, BlockN: 64, WarpM: 32, WarpN: 32, DoubleBuffer: true},
			Precision: kernels.TensorMixed, M: n, N: n, K: k,
		})
		if err != nil {
			return 0, err
		}
		st, err := opt.launchOn(cfg, l, gemmElems(wmma.F32), gemmDims(n, n, k), cfg.NumSMs*8, false)
		if err != nil {
			return 0, err
		}
		return st.IPC(), nil
	})
	if err != nil {
		return nil, err
	}
	for si, n := range sizes {
		row := []string{fmtI(uint64(n))}
		for pi := range pols {
			if i := si*len(pols) + pi; pointOK(perr, i) {
				row = append(row, fmtF(cells[i]))
			} else {
				row = append(row, errMark)
			}
		}
		t.AddRow(row...)
	}
	t.Note("gto (greedy-then-oldest) is the hardware default; twolevel keeps %d warps per sub-core active", base.TwoLevelActive)
	return t, pointFailures(t, "sched", perr)
}
