package experiments

import (
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
)

// TestConcurrentSimulatorsRace is the race-detector witness for the
// frozen-state contract: N simulators execute the SAME kernel — and
// therefore share one decoded program, its fragment plans and the wmma
// mappings behind them — concurrently. internal/gpu's concurrency test
// builds a kernel per goroutine, so only this test would catch a write
// slipping into the shared decoded artifacts (the exact class of bug
// simlint's frozen analyzer rejects statically). Run with -race; the
// stats comparison additionally pins determinism.
func TestConcurrentSimulatorsRace(t *testing.T) {
	const goroutines = 8
	l, err := kernels.MMALoop(kernels.TensorMixed, 4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}

	run := func() (*gpu.Stats, error) {
		cfg := gpu.TitanV()
		cfg.NumSMs = 2
		sim, err := gpu.New(cfg)
		if err != nil {
			return nil, err
		}
		// The launch spec shares l.Kernel (and its decoded program);
		// only the memory image is per-goroutine.
		return sim.Run(gpu.LaunchSpec{
			Kernel: l.Kernel, Grid: l.Grid, Block: l.Block,
			Args: []uint64{0}, Global: ptx.NewFlatMemory(4096),
		})
	}

	stats := make([]*gpu.Stats, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stats[g], errs[g] = run()
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	first := stats[0]
	if first.Cycles == 0 || first.TensorOps == 0 {
		t.Fatalf("degenerate run: %+v", first)
	}
	for g, st := range stats[1:] {
		if st.Cycles != first.Cycles || st.WarpInstructions != first.WarpInstructions ||
			st.TensorOps != first.TensorOps {
			t.Errorf("goroutine %d diverged: cycles %d vs %d, instrs %d vs %d",
				g+1, st.Cycles, first.Cycles, st.WarpInstructions, first.WarpInstructions)
		}
	}
}

// TestRunAllWorkersRace drives the same contract through the production
// path: RunAll fans real registry experiments over a shared worker pool,
// so concurrent simulators inside one experiment and across experiments
// all draw on the shared decoded caches at once.
func TestRunAllWorkersRace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two registry experiments")
	}
	byID := map[string]Experiment{}
	for _, e := range All() {
		byID[e.ID] = e
	}
	exps := []Experiment{byID["fig9"], byID["tab1"]}
	results := RunAll(exps, Options{Quick: true, Workers: 4}, nil)
	if err := Errs(results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", r.Experiment.ID)
		}
	}
}
