package experiments

import (
	"strings"
	"testing"

	"repro/internal/gpu"
)

// The event-driven ready-set scheduler must be invisible at the artifact
// level: regenerating an experiment with the legacy full-scan scheduler
// (the gpu.ScanScheduler knob) must render the exact table the
// event-driven bookkeeping renders — for every policy, since the sched
// sweep runs all three in one table.
func TestScanSchedulerMatchesEventTables(t *testing.T) {
	ids := []string{"sched", "fig12c"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			event := runQuick(t, id)

			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			defer gpu.SwapScanScheduler(true)()
			scan, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if event.String() != scan.String() {
				t.Errorf("event-driven and scan tables differ:\n--- event ---\n%s\n--- scan ---\n%s",
					event.String(), scan.String())
			}
		})
	}
}

// Options.Scheduler must override the policy of every simulated launch:
// a bad spelling errors at the boundary, and a non-default policy
// changes the simulated timing of a scheduler-sensitive experiment.
func TestSchedulerOverride(t *testing.T) {
	if _, err := Fig12c(Options{Quick: true, Scheduler: "fifo"}); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("bad scheduler spelling should error, got %v", err)
	}
	def := runQuick(t, "fig12c")
	lrr, err := Fig12c(Options{Quick: true, Scheduler: "lrr"})
	if err != nil {
		t.Fatal(err)
	}
	if def.String() == lrr.String() {
		t.Errorf("lrr override produced the gto table verbatim; the override is inert")
	}
	gto, err := Fig12c(Options{Quick: true, Scheduler: "gto"})
	if err != nil {
		t.Fatal(err)
	}
	if def.String() != gto.String() {
		t.Errorf("explicit gto differs from the default:\n%s\nvs\n%s", def.String(), gto.String())
	}
}
