package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// Checkpoint/resume: an append-only, crash-safe JSONL journal of
// completed data points. Every point is keyed by a deterministic hash
// of (experiment ID, point index, table-affecting knobs), so a resumed
// run replays exactly the points an interrupted run completed and
// simulates only the remainder. Because tables are assembled in point
// index order (the PR 1/2 contract), a resumed run's tables are
// byte-identical to an uninterrupted run's. The same keying is the seed
// of the content-addressed result cache the serving roadmap item needs:
// the key is the cache address, the payload the cached value.

// pointKeyVersion is bumped whenever the key derivation or any payload
// encoding changes shape, invalidating old journals wholesale instead
// of replaying stale payloads into new table layouts.
const pointKeyVersion = "tcgpu-point-v1"

// PointKey returns the deterministic identity of one data point: a
// 128-bit hex digest of the experiment ID, the point index and every
// Options knob that can change the point's payload (Quick, SMs,
// Scheduler, TwoLevelActive). Workers is excluded — tables are
// byte-identical at any pool size — as are the fault-tolerance knobs
// themselves (checkpointing, retry and keep-going never change what a
// *successful* point computes, and only successes are journaled).
func PointKey(expID string, index int, opt Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00quick=%t sms=%d sched=%s tla=%d",
		pointKeyVersion, expID, index, opt.Quick, opt.SMs, opt.Scheduler, opt.TwoLevelActive)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ExperimentKey returns the deterministic identity of one experiment's
// whole table under the given options: the content address the serving
// cache (internal/servecache, cmd/simd) stores rendered tables under.
// It is the PointKey derivation applied to the reserved whole-table
// index -1 (real data points are numbered from 0), so the two key
// spaces can never collide and a cache entry inherits PointKey's
// invalidation story — bumping pointKeyVersion invalidates both.
// Like PointKey it hashes only the table-affecting knobs: the
// fault-tolerance options (MaxCycles, Retries, KeepGoing, …) bound how
// a run can fail, never what a *successful* table contains, and only
// successes are cached.
func ExperimentKey(expID string, opt Options) string {
	return PointKey(expID, -1, opt)
}

// journalRecord is one JSONL line of the checkpoint file.
type journalRecord struct {
	Key     string          `json:"key"`
	Exp     string          `json:"exp"`
	Point   int             `json:"point"`
	Payload json.RawMessage `json:"payload"`
}

// Journal is the crash-safe checkpoint store. Records append as single
// O_APPEND writes — a record either lands whole or, if the process dies
// mid-write (power loss; a plain kill leaves completed writes in the
// page cache), as a torn trailing line that the loader skips. Pool
// workers record concurrently; every field access is mutex-guarded.
type Journal struct {
	mu sync.Mutex
	//simlint:guardedby mu
	f *os.File
	//simlint:guardedby mu
	seen map[string]json.RawMessage
	//simlint:guardedby mu
	replayed int
}

// OpenJournal opens the checkpoint file at path. With resume true, any
// existing records are loaded for replay and new records append after
// them; otherwise the file is truncated and the run journals from
// scratch.
//
// The file is held under an exclusive advisory lock (flock) for the
// journal's lifetime: two processes pointing -checkpoint at the same
// file used to interleave their records silently, corrupting both
// runs' resume state. The second opener now fails fast with a clear
// error instead. The lock is advisory — it serializes journal users,
// not arbitrary writers — and releases automatically when the journal
// (or the process) closes.
func OpenJournal(path string, resume bool) (*Journal, error) {
	// Open before truncating: the truncation must only happen once the
	// lock is held, or a fresh run could clobber a live journal it then
	// fails to lock.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
	}
	if err := lockJournal(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
	}
	seen := make(map[string]json.RawMessage)
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			f.Close()
			return nil, fmt.Errorf("experiments: resume checkpoint %s: %w", path, err)
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A torn trailing line is the expected crash artifact;
				// it is simply not replayed (the point re-simulates).
				continue
			}
			seen[rec.Key] = rec.Payload
		}
	} else if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
	}
	if resume {
		// Terminate a torn trailing line so the first appended record
		// does not concatenate onto the crash artifact.
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			var last [1]byte
			if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
				if _, err := f.Write([]byte("\n")); err != nil {
					f.Close()
					return nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
				}
			}
		}
	}
	j := &Journal{}
	j.mu.Lock()
	j.f = f
	j.seen = seen
	j.mu.Unlock()
	return j, nil
}

// Lookup returns the journaled payload for key, if any.
func (j *Journal) Lookup(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.seen[key]
	if ok {
		j.replayed++
	}
	return raw, ok
}

// Record journals one completed point. Duplicate keys (a replayed point
// re-recorded, or two options signatures colliding on the same work)
// are ignored, keeping the file append-only and replay idempotent.
func (j *Journal) Record(key, exp string, point int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s point %d: %w", exp, point, err)
	}
	line, err := json.Marshal(journalRecord{Key: key, Exp: exp, Point: point, Payload: raw})
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s point %d: %w", exp, point, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.seen[key]; dup {
		return nil
	}
	if j.f != nil {
		if _, err := j.f.Write(line); err != nil {
			return fmt.Errorf("experiments: checkpoint write: %w", err)
		}
	}
	j.seen[key] = raw
	return nil
}

// Stats reports the journal's totals: completed points on record and
// how many of them this run replayed instead of simulating.
func (j *Journal) Stats() (points, replayed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen), j.replayed
}

// Close syncs and closes the journal file. Safe to call once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
