package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// quickCache memoizes Quick-mode tables per test process: the artifacts
// are deterministic, several tests assert different properties of the
// same table, and the largest (fig17) takes seconds to simulate. The
// fig17 grid in particular is simulated exactly once per process and
// shared by TestAllExperimentsQuick, TestFig17Ordering and
// TestDecodedMatchesInterpretedTables; TestParallelDeterminism and
// TestRunAllDeterminism reuse the cache as their reference side too.
var quickCache = struct {
	sync.Mutex
	m map[string]*Table
}{m: map[string]*Table{}}

// runQuick regenerates experiment id in Quick mode, at most once per
// test process.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	quickCache.Lock()
	defer quickCache.Unlock()
	if tb, ok := quickCache.m[id]; ok {
		return tb
	}
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	quickCache.m[id] = tb
	return tb
}

// All experiments must run in Quick mode and produce well-formed tables.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && e.ID == "fig17" {
				t.Skip("fig17 simulates the SIMT GEMM series; skipped in -short (CI) mode")
			}
			tb := runQuick(t, e.ID)
			if tb.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, r := range tb.Rows {
				if len(r) != len(tb.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(r), len(tb.Columns))
				}
			}
			if s := tb.String(); !strings.Contains(s, e.ID) {
				t.Errorf("rendering lacks the table id")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

// The Figure 9 table must contain the paper's exact cumulative numbers.
func TestFig9Exact(t *testing.T) {
	tb, err := Fig9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44, 54,
		12, 21, 25, 34, 38, 47, 51, 64}
	if len(tb.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(tb.Rows), len(want))
	}
	for i, r := range tb.Rows {
		got, err := strconv.Atoi(r[len(r)-1])
		if err != nil || got != want[i] {
			t.Errorf("row %d cumulative = %s, want %d", i, r[len(r)-1], want[i])
		}
	}
}

// Figure 12c must show the knee at four warps.
func TestFig12cKnee(t *testing.T) {
	tb := runQuick(t, "fig12c")
	cyc := make([]float64, 0, 8)
	for _, r := range tb.Rows {
		v, err := strconv.ParseUint(r[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		cyc = append(cyc, float64(v))
	}
	if len(cyc) != 8 {
		t.Fatalf("%d rows, want 8", len(cyc))
	}
	if cyc[3] > 1.25*cyc[0] {
		t.Errorf("cycles flat region violated: 1 warp %v vs 4 warps %v", cyc[0], cyc[3])
	}
	if cyc[4] < 1.4*cyc[3] {
		t.Errorf("no knee at 4 warps: %v → %v", cyc[3], cyc[4])
	}
}

// Figure 14b's Quick-mode correlation should still be very high.
func TestFig14bCorrelation(t *testing.T) {
	tb := runQuick(t, "fig14b")
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "IPC correlation") {
			found = true
			var corr float64
			if _, err := fmtSscan(n, &corr); err != nil {
				t.Fatalf("cannot parse correlation from %q", n)
			}
			if corr < 90 {
				t.Errorf("IPC correlation %.2f%% too low", corr)
			}
		}
	}
	if !found {
		t.Fatal("missing correlation note")
	}
}

// fmtSscan pulls the first float out of a note string.
func fmtSscan(s string, out *float64) (int, error) {
	for _, f := range strings.Fields(s) {
		f = strings.TrimSuffix(f, "%")
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			*out = v
			return 1, nil
		}
	}
	return 0, strconv.ErrSyntax
}

// Figure 16's shape: global-operand load latency grows with size while
// shared-memory load latency stays flat.
func TestFig16Shape(t *testing.T) {
	tb := runQuick(t, "fig16")
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	shFirst, _ := strconv.ParseFloat(first[1], 64)
	shLast, _ := strconv.ParseFloat(last[1], 64)
	glFirst, _ := strconv.ParseFloat(first[2], 64)
	glLast, _ := strconv.ParseFloat(last[2], 64)
	if shLast > 2.5*shFirst {
		t.Errorf("shared-memory load latency not flat: %v → %v", shFirst, shLast)
	}
	if glLast < glFirst {
		t.Errorf("global load latency should not shrink with size: %v → %v", glFirst, glLast)
	}
	if glLast < 1.5*shLast {
		t.Errorf("global loads (%v) should be well above shared loads (%v) at the largest size", glLast, shLast)
	}
}

// Figure 17's ordering: tensor-core GEMMs beat the SIMT baselines, and
// nothing exceeds the theoretical limit.
func TestFig17Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig17 simulates the SIMT GEMM series; skipped in -short (CI) mode")
	}
	tb := runQuick(t, "fig17")
	last := tb.Rows[len(tb.Rows)-1]
	get := func(col string) float64 {
		for i, c := range tb.Columns {
			if c == col {
				v, _ := strconv.ParseFloat(last[i], 64)
				return v
			}
		}
		t.Fatalf("missing column %s", col)
		return 0
	}
	sgemm := get("CUBLAS_WO_TC_FP32")
	hgemm := get("CUBLAS_WO_TC_FP16")
	tc := get("CUBLAS_WITH_TC_FP16")
	maxPerf := get("MAX_PERF_FP16")
	theo := get("THEORETICAL")
	if tc <= sgemm || tc <= hgemm {
		t.Errorf("tensor cores (%v) should beat SGEMM (%v) and HGEMM (%v)", tc, sgemm, hgemm)
	}
	if hgemm <= sgemm {
		t.Errorf("HGEMM (%v) should beat SGEMM (%v)", hgemm, sgemm)
	}
	if maxPerf > theo || tc > theo {
		t.Errorf("nothing may exceed the theoretical limit %v (maxperf %v, tc %v)", theo, maxPerf, tc)
	}
	if maxPerf < 0.6*theo {
		t.Errorf("max-perf kernel (%v) too far below peak (%v)", maxPerf, theo)
	}
}

func TestZeroMemory(t *testing.T) {
	m := newZeroMemory()
	buf := make([]byte, 8)
	m.Read(1<<30, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh memory should read zero")
		}
	}
	m.Write(1<<30+3, []byte{7, 8})
	m.Read(1<<30, buf)
	if buf[3] != 7 || buf[4] != 8 || buf[0] != 0 {
		t.Fatalf("read back %v", buf)
	}
	a := m.alloc(100)
	b := m.alloc(100)
	if b <= a {
		t.Error("allocations should advance")
	}
}

func TestScaledTitanV(t *testing.T) {
	full := scaledTitanV(0)
	if full.NumSMs != 80 {
		t.Errorf("default should keep 80 SMs")
	}
	slice := scaledTitanV(8)
	if slice.NumSMs != 8 {
		t.Errorf("slice SMs = %d", slice.NumSMs)
	}
	if slice.Mem.DRAMBytesPerCycle >= full.Mem.DRAMBytesPerCycle {
		t.Error("slice must scale DRAM bandwidth down")
	}
}
