package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gpu"
)

// The fault-tolerance integration suite. fig12c in Quick mode is the
// workhorse grid: 8 cheap one-SM points, so an every-boundary resume
// sweep stays in the tens of milliseconds.

func mustPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A panicking data point must surface as that point's error — never a
// process crash — on the sequential path and on private pool workers
// alike (the shared-pool path is covered by TestWatchdogSharedPool and
// runall_test.go).
func TestPanicPointSurfacesAsError(t *testing.T) {
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opt := Options{Quick: true, Workers: workers,
			Faults: mustPlan(t, "panic@fig12c:2")}
		tb, err := e.Run(opt)
		if err == nil || tb != nil {
			t.Fatalf("workers=%d: Run = (%v, %v), want a point-2 panic error", workers, tb, err)
		}
		if !strings.Contains(err.Error(), "point 2 panicked") {
			t.Errorf("workers=%d: error %q does not carry the point identity", workers, err)
		}
	}
}

// Under KeepGoing a failing point becomes an annotated errMark cell;
// the other points' rows match an uninterrupted run and the aggregated
// error names exactly the failed point.
func TestKeepGoingIsolatesFailedPoint(t *testing.T) {
	ref := runQuick(t, "fig12c")
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Run(Options{Quick: true, Workers: 1, KeepGoing: true,
		Faults: mustPlan(t, "panic@fig12c:2")})
	if tb == nil {
		t.Fatalf("KeepGoing discarded the table: %v", err)
	}
	pf, ok := AsPointFailures(err)
	if !ok || len(pf.Points) != 1 || pf.Points[0].Index != 2 {
		t.Fatalf("error %v, want PointFailures{point 2}", err)
	}
	for i, row := range tb.Rows {
		if i == 2 {
			if row[1] != errMark {
				t.Errorf("failed point's row = %v, want %s cells", row, errMark)
			}
			continue
		}
		for c := range row {
			if row[c] != ref.Rows[i][c] {
				t.Errorf("row %d cell %d = %q, want %q (healthy points must match)", i, c, row[c], ref.Rows[i][c])
			}
		}
	}
	if !strings.Contains(tb.String(), errMark) {
		t.Error("rendered table does not mark the failed cell")
	}
}

// A transient failure retries within the budget and the healed run's
// table is byte-identical to a fault-free run; an exhausted budget
// surfaces the typed error.
func TestTransientRetry(t *testing.T) {
	ref := runQuick(t, "fig12c")
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Quick: true, Workers: 1, Retries: 2, retryBase: -1,
		Faults: mustPlan(t, "transient@fig12c:1*2")}
	tb, err := e.Run(opt)
	if err != nil {
		t.Fatalf("retry within budget still failed: %v", err)
	}
	if tb.String() != ref.String() {
		t.Error("retried run's table differs from a fault-free run")
	}

	opt.Retries = 1 // two injected failures, one retry: exhausted
	if _, err := e.Run(opt); !IsTransient(err) {
		t.Fatalf("exhausted retry budget returned %v, want the typed transient error", err)
	}
}

// The deterministic backoff schedule: base << attempt, no jitter.
func TestRetryDelaySchedule(t *testing.T) {
	o := Options{retryBase: 4}
	for attempt, want := range []int64{4, 8, 16} {
		if got := o.retryDelay(attempt); int64(got) != want {
			t.Errorf("retryDelay(%d) = %d, want %d", attempt, got, want)
		}
	}
	if got := (Options{retryBase: -1}).retryDelay(3); got != 0 {
		t.Errorf("negative base retryDelay = %d, want 0 (test mode)", got)
	}
	if got := (Options{}).retryDelay(0); got <= 0 {
		t.Errorf("default retryDelay = %d, want a positive base", got)
	}
}

// Regression: the doubling is clamped, never overflowed. A
// programmatic Retries beyond the CLI's cap used to shift the base
// past 63 bits, turning the backoff negative — time.Sleep treats that
// as zero, so an exhausted-budget retry loop span instantly.
func TestRetryDelayClamped(t *testing.T) {
	for _, o := range []Options{{}, {retryBase: 4}, {retryBase: time.Hour}} {
		prev := time.Duration(0)
		for attempt := 0; attempt <= 200; attempt++ {
			d := o.retryDelay(attempt)
			if d <= 0 {
				t.Fatalf("retryBase %d: retryDelay(%d) = %d, want positive (overflow)",
					o.retryBase, attempt, d)
			}
			if d < prev {
				t.Fatalf("retryBase %d: retryDelay(%d) = %d shrank below %d",
					o.retryBase, attempt, d, prev)
			}
			prev = d
		}
		// Past the clamp the schedule is flat, still deterministic.
		if a, b := o.retryDelay(150), o.retryDelay(200); a != b {
			t.Errorf("retryBase %d: clamped schedule not flat: %d vs %d", o.retryBase, a, b)
		}
	}
}

// An injected infinite-loop kernel is reaped by the cycle-budget
// watchdog and, under KeepGoing, costs exactly its own cell.
func TestHangReapedByWatchdog(t *testing.T) {
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Run(Options{Quick: true, Workers: 1, KeepGoing: true, MaxCycles: 10_000,
		Faults: mustPlan(t, "hang@fig12c:0")})
	if tb == nil {
		t.Fatalf("KeepGoing discarded the table: %v", err)
	}
	pf, ok := AsPointFailures(err)
	if !ok || len(pf.Points) != 1 || pf.Points[0].Index != 0 {
		t.Fatalf("error %v, want PointFailures{point 0}", err)
	}
	if !errors.Is(pf.Points[0], gpu.ErrCycleBudget) {
		t.Fatalf("hang point failed with %v, want gpu.ErrCycleBudget", pf.Points[0].Err)
	}
}

// A hanging experiment on the shared pool must not stall the others:
// fig12c's injected hang is reaped by the watchdog while fig9 (sharing
// the pool) still produces its table.
func TestWatchdogSharedPool(t *testing.T) {
	hang, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Quick: true, Workers: 2, MaxCycles: 10_000,
		Faults: mustPlan(t, "hang@fig12c:0")}
	results := RunAll([]Experiment{hang, healthy}, opt, nil)
	if !errors.Is(results[0].Err, gpu.ErrCycleBudget) {
		t.Errorf("hanging experiment: %v, want gpu.ErrCycleBudget", results[0].Err)
	}
	if results[1].Err != nil || results[1].Table == nil {
		t.Errorf("healthy experiment was dragged down: %v", results[1].Err)
	}
}

// The acceptance test: kill the run at EVERY point boundary of the
// fig12c grid, resume from the checkpoint, and require the resumed
// table to be byte-identical to an uninterrupted run — with exactly the
// pre-kill points replayed rather than re-simulated.
func TestResumeEquivalenceEveryBoundary(t *testing.T) {
	ref := runQuick(t, "fig12c")
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8 // fig12c's quick grid
	for b := 0; b <= n; b++ {
		path := filepath.Join(t.TempDir(), "ckpt")

		// Interrupted run: the injected kill cancels the run context at
		// point b, exactly like a signal would.
		j, err := OpenJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := mustPlan(t, "kill@fig12c:"+strconv.Itoa(b))
		plan.Kill = cancel
		_, runErr := e.Run(Options{Quick: true, Workers: 1, Ctx: ctx,
			Journal: j, Faults: plan})
		cancel()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if b < n && runErr == nil {
			t.Fatalf("boundary %d: killed run reported success", b)
		}

		// Resumed run: no faults, same identity knobs.
		j2, err := OpenJournal(path, true)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(Options{Quick: true, Workers: 1, Journal: j2})
		if err != nil {
			t.Fatalf("boundary %d: resume failed: %v", b, err)
		}
		if tb.String() != ref.String() {
			t.Fatalf("boundary %d: resumed table differs from the uninterrupted run", b)
		}
		if _, replayed := j2.Stats(); replayed != b {
			t.Errorf("boundary %d: replayed %d points, want %d", b, replayed, b)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// Resume is worker-count independent: a checkpoint written sequentially
// replays byte-identically on a parallel pool, and pool workers writing
// the journal concurrently (run with -race) produce a checkpoint that
// replays byte-identically too.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	ref := runQuick(t, "fig12c")
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Options{Quick: true, Workers: 4, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tb, err := e.Run(Options{Quick: true, Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != ref.String() {
		t.Error("table resumed from a parallel-written checkpoint differs")
	}
	if points, replayed := j2.Stats(); points != 8 || replayed != 8 {
		t.Errorf("Stats = (%d, %d), want every point replayed (8, 8)", points, replayed)
	}
}

// Cancellation beats KeepGoing: an interrupted point is the run
// shutting down, not a bad cell to annotate.
func TestCancellationTrumpsKeepGoing(t *testing.T) {
	e, err := ByID("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tb, err := e.Run(Options{Quick: true, Workers: 1, KeepGoing: true, Ctx: ctx})
	if err == nil || tb != nil {
		t.Fatalf("canceled run = (%v, %v), want an error and no table", tb, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run error = %v, want context.Canceled in the chain", err)
	}
}
