//go:build unix

package experiments

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockJournal takes an exclusive, non-blocking advisory lock on the
// journal file. A second process (or a second Journal in this process)
// pointing at the same path fails fast instead of silently
// interleaving its records with the holder's. The lock belongs to the
// open file description, so closing the file — or the process dying —
// releases it; a crashed run never wedges its checkpoint.
func lockJournal(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return nil
		}
		if errors.Is(err, syscall.EINTR) {
			continue
		}
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return fmt.Errorf("journal is locked by another run; two sweeps sharing one -checkpoint file would interleave records")
		}
		return fmt.Errorf("lock journal: %w", err)
	}
}
