package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// colCells extracts one named column of a table.
func colCells(t *testing.T, tb *Table, col string) []string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			var out []string
			for _, r := range tb.Rows {
				out = append(out, r[i])
			}
			return out
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tb.ID, col, tb.Columns)
	return nil
}

// The TwoLevelActive knob sweep (ROADMAP "per-policy knob sweeps", test
// half). Three properties pin the knob's contract on the quick grid:
//
//  1. Isolation — the knob reaches only the twolevel column; the gto
//     and lrr cells are bit-identical for every subset size.
//  2. Insensitivity — any subset size that can hold at least two warps
//     produces cells bit-identical to the default: the quick grid's
//     sub-cores never have enough concurrently ready warps for a larger
//     active set to change an issue decision.
//  3. Liveness — a degenerate single-warp subset does change the
//     twolevel column (size 256's IPC drops), so the plumbing
//     (Options.TwoLevelActive → gpu.Config → the scheduler) is
//     end-to-end live, and the table note records the size in effect.
func TestTwoLevelActiveSweepTables(t *testing.T) {
	base, err := SchedSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 8, 16, 64} {
		n := n
		t.Run(fmt.Sprintf("active=%d", n), func(t *testing.T) {
			tb, err := SchedSweep(Options{Quick: true, TwoLevelActive: n})
			if err != nil {
				t.Fatal(err)
			}
			for _, col := range []string{"gto_ipc", "lrr_ipc"} {
				if got, want := colCells(t, tb, col), colCells(t, base, col); !reflect.DeepEqual(got, want) {
					t.Errorf("%s leaked into the %s column: %v, want %v", "TwoLevelActive", col, got, want)
				}
			}
			if n >= 2 {
				if !reflect.DeepEqual(tb.Rows, base.Rows) {
					t.Errorf("active=%d cells differ from the default:\n%v\nvs\n%v", n, tb.Rows, base.Rows)
				}
			} else if reflect.DeepEqual(colCells(t, tb, "twolevel_ipc"), colCells(t, base, "twolevel_ipc")) {
				t.Errorf("single-warp active subset left the twolevel column unchanged; the knob is inert")
			}
			wantNote := fmt.Sprintf("keeps %d warps per sub-core active", n)
			if !strings.Contains(strings.Join(tb.Notes, "\n"), wantNote) {
				t.Errorf("table note does not record the active size: %v", tb.Notes)
			}
		})
	}
	// A negative size must be rejected at the options boundary.
	if err := (Options{TwoLevelActive: -1}).Validate(); err == nil {
		t.Error("negative TwoLevelActive validated")
	}
}
