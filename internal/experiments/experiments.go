// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment produces a Table whose rows are the same
// series the paper plots; EXPERIMENTS.md records the paper-vs-measured
// comparison for each. cmd/experiments runs them from the command line
// and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/ptx"
	"repro/internal/wmma"
)

// Options tunes experiment cost.
type Options struct {
	// Quick shrinks problem sizes and sweep points so the experiment
	// finishes in seconds — used by tests and benchmarks. The full
	// configuration reproduces the paper's sweep ranges.
	Quick bool
	// SMs overrides the number of simulated SMs for the chip-slice
	// scaling substitution (0 = experiment default). DRAM and L2
	// bandwidth scale proportionally so per-SM behaviour is preserved.
	SMs int
	// Scheduler overrides the warp scheduling policy of every simulated
	// launch ("gto", "lrr" or "twolevel"; "" = experiment default). The
	// scheduler sweep experiment ignores it — the sweep is the policy
	// axis itself.
	Scheduler string
	// TwoLevelActive overrides the two-level scheduler's active-subset
	// size per sub-core for every simulated launch (0 = config default).
	// GTO and LRR launches ignore it; the scheduler sweep honours it for
	// its twolevel column.
	TwoLevelActive int
	// Workers bounds the worker pool that fans an experiment's
	// independent data points across CPUs: 0 uses one worker per CPU,
	// 1 forces a sequential run. Parallel runs produce byte-identical
	// tables to sequential ones — each point simulates on its own
	// Simulator and results are assembled in point order. Under RunAll
	// the same value is the global budget shared by every experiment.
	Workers int

	// Ctx, when non-nil, cancels the run: the pool stops handing out
	// data points and in-flight simulations abort at their next
	// cancellation poll, so a SIGINT drains gracefully — completed
	// tables still stream and journaled points survive for -resume.
	Ctx context.Context
	// MaxCycles is the per-simulation cycle-budget watchdog (0 = off,
	// i.e. the simulator's 4e9 backstop): a malformed or injected
	// infinite-loop kernel is reaped with gpu.ErrCycleBudget instead of
	// occupying a shared pool worker forever.
	MaxCycles uint64
	// KeepGoing isolates point failures: a failing data point renders
	// as an annotated error cell and is aggregated into the
	// experiment's PointFailures error, instead of discarding the
	// experiment's remaining points.
	KeepGoing bool
	// Retries bounds retry of the typed Transient error class per data
	// point (0 = no retry), with the deterministic backoff schedule
	// retryDelay documents.
	Retries int
	// Journal, when non-nil, checkpoints every completed data point and
	// replays journaled points instead of re-simulating them (see
	// checkpoint.go).
	Journal *Journal
	// Faults, when non-nil, is the deterministic fault-injection plan
	// (internal/faultinject) the tests use to prove isolation, retry,
	// watchdog and resume behavior.
	Faults *faultinject.Plan

	// retryBase overrides the backoff base (tests collapse the
	// schedule; <0 means no sleep at all).
	retryBase time.Duration
	// pool, when set by RunAll, routes every data point of every
	// experiment through one shared cross-experiment worker pool so the
	// Workers budget is global rather than per experiment.
	pool *sharedPool
}

// ctx resolves the cancellation context (Background when unset).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Table is one regenerated artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a summary line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	line(dashes(widths))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Paper string // the artifact in the paper, e.g. "Figure 9"
	Title string
	Run   func(Options) (*Table, error)
}

// All returns the registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig7", "Figure 7", "Volta fragment-to-thread mappings", Fig7},
		{"fig8", "Figure 8", "Turing fragment-to-thread mappings", Fig8},
		{"fig9", "Figure 9", "Volta HMMA cumulative clock cycles", Fig9},
		{"tab1", "Table I", "Turing cumulative cycles per HMMA set", TableI},
		{"tab2", "Table II", "Octet composition and accessed elements", TableII},
		{"tab3", "Table III", "Octet outer-product computation by set and step", TableIII},
		{"fig10", "Figure 10", "Volta per-set/per-step sub-tile extents", Fig10},
		{"fig11", "Figure 11", "Turing per-set sub-tile extents", Fig11},
		{"fig12c", "Figure 12c", "Cycles vs warps per CTA for parallel HMMA", Fig12c},
		{"fig14a", "Figure 14a", "WMMA GEMM cycles vs matrix size, sim vs hardware proxy", Fig14a},
		{"fig14b", "Figure 14b", "CUTLASS GEMM IPC correlation", Fig14b},
		{"fig14c", "Figure 14c", "CUTLASS GEMM IPC vs matrix size", Fig14c},
		{"fig15", "Figure 15", "wmma instruction latency distributions", Fig15},
		{"fig16", "Figure 16", "wmma latency vs matrix size, with/without shared memory", Fig16},
		{"fig17", "Figure 17", "GEMM TFLOPS by implementation and size", Fig17},
		{"sched", "Extension", "CUTLASS GEMM IPC by warp scheduler policy", SchedSweep},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// fmtI formats an integer cell.
func fmtI(v uint64) string { return fmt.Sprintf("%d", v) }

// fmtF formats a float cell.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// scaledTitanV returns a Titan V slice with sms SMs and proportionally
// scaled chip resources, so that per-SM behaviour (and therefore
// throughput per SM) matches the full 80-SM part. This is the scale
// substitution DESIGN.md documents for the paper's largest problems.
func scaledTitanV(sms int) gpu.Config {
	cfg := gpu.TitanV()
	if sms <= 0 || sms >= cfg.NumSMs {
		return cfg
	}
	frac := float64(sms) / float64(cfg.NumSMs)
	cfg.NumSMs = sms
	cfg.Mem.DRAMBytesPerCycle = max(8, int(float64(cfg.Mem.DRAMBytesPerCycle)*frac))
	cfg.Mem.DRAMChannels = max(1, int(float64(cfg.Mem.DRAMChannels)*frac))
	cfg.Mem.L2SizeBytes = max(64<<10, int(float64(cfg.Mem.L2SizeBytes)*frac))
	cfg.Mem.L2Banks = max(1, int(float64(cfg.Mem.L2Banks)*frac))
	cfg.Mem.L2BytesPerCycle = max(8, cfg.Mem.L2BytesPerCycle)
	return cfg
}

// Validate rejects malformed options upfront — in particular a
// misspelled Scheduler, which would otherwise be accepted silently by
// experiments that never simulate (the analytic tables) and reported
// once per simulating experiment under RunAll.
func (o Options) Validate() error {
	if o.Scheduler != "" {
		if _, err := gpu.ParseSchedulerPolicy(o.Scheduler); err != nil {
			return err
		}
	}
	if o.TwoLevelActive < 0 {
		return fmt.Errorf("experiments: TwoLevelActive must be ≥ 0 (0 = config default)")
	}
	return nil
}

// applyKnobs applies the policy-independent config overrides — the
// per-policy knob sweep axis (currently TwoLevelActive). The scheduler
// sweep applies it too, so the knob reaches its twolevel column.
func (o Options) applyKnobs(cfg gpu.Config) gpu.Config {
	if o.TwoLevelActive > 0 {
		cfg.TwoLevelActive = o.TwoLevelActive
	}
	return cfg
}

// applySched applies the Options.Scheduler override (and the knob
// overrides) to a config.
func (o Options) applySched(cfg gpu.Config) (gpu.Config, error) {
	cfg = o.applyKnobs(cfg)
	if o.Scheduler == "" {
		return cfg, nil
	}
	p, err := gpu.ParseSchedulerPolicy(o.Scheduler)
	if err != nil {
		return cfg, err
	}
	cfg.Scheduler = p
	return cfg, nil
}

// titanV returns the chip-slice configuration (scaledTitanV) with the
// option overrides applied.
func (o Options) titanV(sms int) (gpu.Config, error) {
	return o.applySched(scaledTitanV(sms))
}

// launchOn runs a generated kernel on a fresh device of the given config,
// with zero-filled operands (timing experiments are data independent) and
// optional CTA sampling / tracing. The receiver threads the run's
// cancellation context and cycle-budget watchdog into the simulation,
// so every experiment's per-point launch is interruptible and bounded.
func (o Options) launchOn(cfg gpu.Config, l *kernels.Launch, elems []wmma.Precision, dims [][2]int,
	maxCTAs int, trace bool) (*gpu.Stats, error) {
	sim, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	mem := newZeroMemory()
	args := make([]uint64, len(elems))
	for i := range elems {
		n := dims[i][0] * dims[i][1] * bytesOf(elems[i])
		args[i] = mem.alloc(n)
	}
	return sim.Run(gpu.LaunchSpec{
		Kernel:    l.Kernel,
		Grid:      l.Grid,
		Block:     l.Block,
		Args:      args,
		Global:    mem,
		MaxCTAs:   maxCTAs,
		Trace:     trace,
		MaxCycles: o.MaxCycles,
		Ctx:       o.Ctx,
	})
}

func bytesOf(p wmma.Precision) int {
	b := p.Bits() / 8
	if b == 0 {
		b = 1
	}
	return b
}

// zeroMemory is an allocation-tracking memory that stays zero-filled but
// sparse: reads return zeros, writes land in a page map. It keeps the
// largest sampled GEMMs (16384² matrices would be 0.5 GiB each) cheap.
type zeroMemory struct {
	pages map[uint64][]byte
	brk   uint64
}

const zpageBits = 16

func newZeroMemory() *zeroMemory { return &zeroMemory{pages: make(map[uint64][]byte)} }

func (m *zeroMemory) alloc(n int) uint64 {
	addr := (m.brk + 255) &^ 255
	m.brk = addr + uint64(n)
	return addr
}

func (m *zeroMemory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & (1<<zpageBits - 1)
		n := min(len(buf), 1<<zpageBits-int(off))
		if p, ok := m.pages[addr>>zpageBits]; ok {
			copy(buf[:n], p[off:])
		} else {
			clear(buf[:n])
		}
		addr += uint64(n)
		buf = buf[n:]
	}
}

func (m *zeroMemory) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		page := addr >> zpageBits
		off := addr & (1<<zpageBits - 1)
		n := min(len(data), 1<<zpageBits-int(off))
		p, ok := m.pages[page]
		if !ok {
			p = make([]byte, 1<<zpageBits)
			m.pages[page] = p
		}
		copy(p[off:], data[:n])
		addr += uint64(n)
		data = data[n:]
	}
}

var _ ptx.Memory = (*zeroMemory)(nil)
