package experiments

import (
	"testing"

	"repro/internal/ptx"
)

// The decoded-instruction cache must be invisible at the artifact level:
// regenerating an experiment with the per-lane interpreted ALU path must
// render the exact table the decoded table-driven dispatch renders —
// cycles, IPC, TFLOPS, every formatted cell.
//
// The decoded side reuses the per-process memoized quick tables
// (runQuick), so the comparison adds only the interpreted re-simulation;
// fig17 — the experiment the cache exists to accelerate — joins the grid
// outside -short, sharing the one memoized run with TestAllExperimentsQuick
// and TestFig17Ordering.
func TestDecodedMatchesInterpretedTables(t *testing.T) {
	ids := []string{"fig12c", "fig14a"}
	if !testing.Short() {
		ids = append(ids, "fig17")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			decoded := runQuick(t, id)

			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			defer ptx.SwapInterpretALU(true)()
			interpreted, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if decoded.String() != interpreted.String() {
				t.Errorf("decoded and interpreted tables differ:\n--- decoded ---\n%s\n--- interpreted ---\n%s",
					decoded.String(), interpreted.String())
			}
		})
	}
}
