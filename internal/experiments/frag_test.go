package experiments

import (
	"testing"

	"repro/internal/ptx"
)

// The batched wmma fragment path must be invisible at the artifact
// level: regenerating an experiment with the per-element legacy
// fragment path must render the exact table the batched path renders.
// fig14a and fig15 are the experiments most directly downstream of the
// fragment pipeline (WMMA GEMM cycles and the wmma latency
// distributions); fig17 — the GEMM sweep whose tensor-core series the
// batching exists to accelerate — joins outside -short.
//
// The batched side reuses the per-process memoized quick tables
// (runQuick), so the comparison adds only the legacy re-simulation.
func TestFragmentPathMatchesLegacyTables(t *testing.T) {
	ids := []string{"fig14a", "fig15"}
	if !testing.Short() {
		ids = append(ids, "fig17")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			batched := runQuick(t, id)

			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			defer ptx.SwapLegacyFragmentPath(true)()
			legacy, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if batched.String() != legacy.String() {
				t.Errorf("batched and legacy fragment tables differ:\n--- batched ---\n%s\n--- legacy ---\n%s",
					batched.String(), legacy.String())
			}
		})
	}
}
