// Package fp16 implements IEEE 754-2008 binary16 ("half precision")
// floating point in software.
//
// The Volta and Turing tensor cores operate on FP16 operands; the paper's
// GPGPU-Sim extension used a C++ header-only half-precision library for the
// same purpose. This package is that substrate: conversions to and from
// float32/float64 with round-to-nearest-even, arithmetic, comparisons, and
// the two accumulation flavours the tensor cores expose (FP16 accumulate and
// FP32 "mixed precision" accumulate).
//
// Arithmetic is computed exactly in float64 and rounded once to binary16.
// Products of two binary16 values need 22 significand bits and sums of two
// binary16 values need at most 51, so Add, Sub and Mul are correctly rounded.
// Div and FMA are rounded from the float64 result and may double-round in a
// handful of borderline cases; real tensor cores are themselves not
// bit-exact IEEE here, so this matches the fidelity of the original model.
package fp16

import (
	"math"
	"strconv"
)

// Float16 is an IEEE 754 binary16 value stored in its raw bit pattern:
// 1 sign bit, 5 exponent bits (bias 15), 10 significand bits.
type Float16 uint16

// Useful constants, expressed as bit patterns.
const (
	PositiveZero     Float16 = 0x0000
	NegativeZero     Float16 = 0x8000
	PositiveInfinity Float16 = 0x7c00
	NegativeInfinity Float16 = 0xfc00
	QuietNaN         Float16 = 0x7e00 // canonical quiet NaN
	One              Float16 = 0x3c00
	NegOne           Float16 = 0xbc00
	Max              Float16 = 0x7bff // 65504
	SmallestNormal   Float16 = 0x0400 // 2^-14
	SmallestSubnorm  Float16 = 0x0001 // 2^-24
	Epsilon          Float16 = 0x1400 // 2^-10, gap between 1 and the next value
)

const (
	signMask     = 0x8000
	expMask      = 0x7c00
	manMask      = 0x03ff
	expBias      = 15
	manBits      = 10
	maxExpField  = 0x1f
	maxFiniteF64 = 65504.0
)

// FromBits returns the Float16 with the given raw bit representation.
func FromBits(b uint16) Float16 { return Float16(b) }

// Bits returns the raw IEEE 754 binary16 bit representation of x.
func (x Float16) Bits() uint16 { return uint16(x) }

// FromFloat32 converts f to binary16 using round-to-nearest-even.
// Values too large in magnitude become infinities; NaN payload top bits are
// preserved where possible.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	if exp == 0xff { // Inf or NaN
		if man != 0 {
			m := uint16(man >> 13)
			if m == 0 {
				m = 1 // keep it a NaN after truncation
			}
			return Float16(sign | expMask | m)
		}
		return Float16(sign | expMask)
	}

	e := exp - 127 + expBias
	if e >= maxExpField {
		return Float16(sign | expMask) // overflow to infinity
	}
	if e <= 0 {
		// Result is subnormal (or rounds to zero / smallest subnormal).
		if e < -10 {
			// Magnitude strictly below 2^-25, half the smallest subnormal:
			// rounds to zero. The e == -10 case below handles the midpoint.
			return Float16(sign)
		}
		man |= 0x800000 // make the implicit leading 1 explicit
		shift := uint32(14 - e)
		m := man >> shift
		rem := man & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++ // may carry into the normal range; the encoding works out
		}
		return Float16(sign | uint16(m))
	}
	// Normal number: shift 23-bit mantissa down to 10 bits with RNE.
	m := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
		m++
		if m == 0x400 { // mantissa carry-out bumps the exponent
			m = 0
			e++
			if e >= maxExpField {
				return Float16(sign | expMask)
			}
		}
	}
	return Float16(sign | uint16(e)<<manBits | uint16(m))
}

// FromFloat64 converts f to binary16 using round-to-nearest-even. It rounds
// directly from the float64 value, avoiding the double rounding that a
// float64→float32→float16 chain could introduce.
func FromFloat64(f float64) Float16 {
	b := math.Float64bits(f)
	sign := uint16(b>>48) & signMask
	exp := int64(b>>52) & 0x7ff
	man := b & 0xfffffffffffff

	if exp == 0x7ff { // Inf or NaN
		if man != 0 {
			m := uint16(man >> 42)
			if m == 0 {
				m = 1
			}
			return Float16(sign | expMask | m)
		}
		return Float16(sign | expMask)
	}

	e := exp - 1023 + expBias
	if e >= maxExpField {
		return Float16(sign | expMask)
	}
	if e <= 0 {
		if e < -10 {
			return Float16(sign)
		}
		man |= 1 << 52
		shift := uint64(43 - e)
		m := man >> shift
		rem := man & ((1 << shift) - 1)
		half := uint64(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return Float16(sign | uint16(m))
	}
	m := man >> 42
	rem := man & ((1 << 42) - 1)
	const half42 = uint64(1) << 41
	if rem > half42 || (rem == half42 && m&1 == 1) {
		m++
		if m == 0x400 {
			m = 0
			e++
			if e >= maxExpField {
				return Float16(sign | expMask)
			}
		}
	}
	return Float16(sign | uint16(e)<<manBits | uint16(m))
}

// f32Table holds the exact binary32 image of every binary16 value. The
// conversion sits on the simulator's hottest path (every FEDP multiply
// widens its inputs), so the 256 KiB table replaces the bit-twiddling
// decode. It is filled once by init and read-only afterwards, which keeps
// concurrent simulator instances race-free.
var f32Table [1 << 16]float32

func init() {
	for i := range f32Table {
		f32Table[i] = Float16(i).float32Slow()
	}
}

// Float32 returns x converted exactly to float32 (every binary16 value is
// exactly representable in binary32).
func (x Float16) Float32() float32 { return f32Table[x] }

func (x Float16) float32Slow() float32 {
	sign := uint32(x&signMask) << 16
	exp := uint32(x>>manBits) & maxExpField
	man := uint32(x & manMask)

	switch {
	case exp == maxExpField:
		if man != 0 {
			return math.Float32frombits(sign | 0x7f800000 | 0x400000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into the binary32 format.
		e := uint32(127 - expBias + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= manMask
		return math.Float32frombits(sign | e<<23 | man<<13)
	}
	return math.Float32frombits(sign | (exp+127-expBias)<<23 | man<<13)
}

// Float64 returns x converted exactly to float64.
func (x Float16) Float64() float64 { return float64(x.Float32()) }

// IsNaN reports whether x is a NaN.
func (x Float16) IsNaN() bool { return x&expMask == expMask && x&manMask != 0 }

// IsInf reports whether x is an infinity with the given sign: +1 for
// positive, -1 for negative, 0 for either.
func (x Float16) IsInf(sign int) bool {
	if x&expMask != expMask || x&manMask != 0 {
		return false
	}
	switch {
	case sign > 0:
		return x&signMask == 0
	case sign < 0:
		return x&signMask != 0
	}
	return true
}

// IsZero reports whether x is positive or negative zero.
func (x Float16) IsZero() bool { return x&^Float16(signMask) == 0 }

// IsSubnormal reports whether x is a nonzero subnormal value.
func (x Float16) IsSubnormal() bool { return x&expMask == 0 && x&manMask != 0 }

// Signbit reports whether x's sign bit is set (true for negative values and
// negative zero).
func (x Float16) Signbit() bool { return x&signMask != 0 }

// Neg returns -x (flips the sign bit, including for NaN and zero).
func (x Float16) Neg() Float16 { return x ^ signMask }

// Abs returns |x| (clears the sign bit).
func (x Float16) Abs() Float16 { return x &^ signMask }

// Add returns the correctly rounded sum x + y.
func (x Float16) Add(y Float16) Float16 { return FromFloat64(x.Float64() + y.Float64()) }

// Sub returns the correctly rounded difference x - y.
func (x Float16) Sub(y Float16) Float16 { return FromFloat64(x.Float64() - y.Float64()) }

// Mul returns the correctly rounded product x * y.
func (x Float16) Mul(y Float16) Float16 { return FromFloat64(x.Float64() * y.Float64()) }

// Div returns the quotient x / y rounded from the float64 result.
func (x Float16) Div(y Float16) Float16 { return FromFloat64(x.Float64() / y.Float64()) }

// FMA returns a*b + c computed with a single rounding from the float64
// result (the product a*b is exact in float64).
func FMA(a, b, c Float16) Float16 {
	return FromFloat64(a.Float64()*b.Float64() + c.Float64())
}

// MulTo32 returns the exact product a*b as a float32. Every product of two
// binary16 values is exactly representable in binary32; this is the first
// stage of a mixed-precision tensor core dot product.
func MulTo32(a, b Float16) float32 { return a.Float32() * b.Float32() }

// MAC32 performs one mixed-precision multiply-accumulate step: the exact
// FP16×FP16 product is added to the FP32 accumulator with FP32 rounding,
// mirroring the tensor core mixed-precision datapath.
func MAC32(acc float32, a, b Float16) float32 { return acc + MulTo32(a, b) }

// Less reports whether x < y under IEEE ordering (false if either is NaN).
func (x Float16) Less(y Float16) bool {
	if x.IsNaN() || y.IsNaN() {
		return false
	}
	return x.Float32() < y.Float32()
}

// Eq reports IEEE equality (false if either is NaN; -0 == +0).
func (x Float16) Eq(y Float16) bool {
	if x.IsNaN() || y.IsNaN() {
		return false
	}
	return x.Float32() == y.Float32()
}

// String formats x like strconv.FormatFloat with the shortest representation
// that round-trips through float32.
func (x Float16) String() string {
	return strconv.FormatFloat(x.Float64(), 'g', -1, 32)
}
