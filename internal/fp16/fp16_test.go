package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// decodeRef decodes a binary16 bit pattern into an exact float64 using only
// math.Ldexp, as an independent reference for the conversion code.
func decodeRef(b uint16) float64 {
	sign := 1.0
	if b&0x8000 != 0 {
		sign = -1.0
	}
	exp := int(b>>10) & 0x1f
	man := int(b & 0x3ff)
	switch exp {
	case 0x1f:
		if man != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	case 0:
		return sign * math.Ldexp(float64(man), -24)
	}
	return sign * math.Ldexp(float64(man+1024), exp-25)
}

func TestFloat32Exhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		x := FromBits(uint16(i))
		got := float64(x.Float32())
		want := decodeRef(uint16(i))
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("bits %#04x: got %v, want NaN", i, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("bits %#04x: Float32 = %v, want %v", i, got, want)
		}
		// Signed zero must be preserved.
		if want == 0 && math.Signbit(want) != math.Signbit(got) {
			t.Fatalf("bits %#04x: zero sign mismatch", i)
		}
	}
}

func TestRoundTripExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		x := FromBits(uint16(i))
		back32 := FromFloat32(x.Float32())
		back64 := FromFloat64(x.Float64())
		if x.IsNaN() {
			if !back32.IsNaN() || !back64.IsNaN() {
				t.Fatalf("bits %#04x: NaN not preserved (%#04x, %#04x)", i, back32, back64)
			}
			continue
		}
		if back32 != x {
			t.Fatalf("bits %#04x: float32 round trip gave %#04x", i, back32)
		}
		if back64 != x {
			t.Fatalf("bits %#04x: float64 round trip gave %#04x", i, back64)
		}
	}
}

func TestFromFloat64MatchesFromFloat32(t *testing.T) {
	// float64(x) is exact for any float32 x, so rounding the float64 to
	// half must agree with rounding the float32 directly.
	f := func(bits uint32) bool {
		x := math.Float32frombits(bits)
		a, b := FromFloat32(x), FromFloat64(float64(x))
		if a.IsNaN() && b.IsNaN() {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	ulp := math.Ldexp(1, -10) // spacing just above 1.0
	cases := []struct {
		in   float64
		want Float16
	}{
		{1 + ulp/2, One},                           // midpoint ties to even (mantissa 0)
		{1 + ulp + ulp/2, FromBits(0x3c02)},        // ties to even (mantissa 2)
		{1 + ulp/2 + ulp/1024, FromBits(0x3c01)},   // just above midpoint rounds up
		{1 - ulp/4, One},                           // ulp shrinks below 1.0: midpoint ties to even
		{65504, Max},                               // max finite
		{65519.5, Max},                             // below overflow midpoint
		{65520, PositiveInfinity},                  // overflow midpoint rounds away to Inf
		{65536, PositiveInfinity},                  // beyond max
		{-65520, NegativeInfinity},                 //
		{math.Ldexp(1, -24), SmallestSubnorm},      // exact smallest subnormal
		{math.Ldexp(1, -25), PositiveZero},         // midpoint between 0 and 2^-24 ties to zero
		{math.Ldexp(1.0001, -25), SmallestSubnorm}, // just above midpoint rounds up
		{math.Ldexp(1, -26), PositiveZero},         // below midpoint
		{math.Ldexp(3, -25), FromBits(0x0002)},     // midpoint between 2^-24 and 2^-23 ties to even
		{math.Ldexp(1, -14), SmallestNormal},       // smallest normal
		{0, PositiveZero},
		{math.Copysign(0, -1), NegativeZero},
	}
	for _, c := range cases {
		if got := FromFloat64(c.in); got != c.want {
			t.Errorf("FromFloat64(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
		if got := FromFloat32(float32(c.in)); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	if !QuietNaN.IsNaN() {
		t.Error("QuietNaN is not NaN")
	}
	if !PositiveInfinity.IsInf(1) || !PositiveInfinity.IsInf(0) || PositiveInfinity.IsInf(-1) {
		t.Error("PositiveInfinity IsInf misreports")
	}
	if !NegativeInfinity.IsInf(-1) || NegativeInfinity.IsInf(1) {
		t.Error("NegativeInfinity IsInf misreports")
	}
	if !PositiveZero.IsZero() || !NegativeZero.IsZero() || One.IsZero() {
		t.Error("IsZero misreports")
	}
	if !SmallestSubnorm.IsSubnormal() || SmallestNormal.IsSubnormal() || PositiveZero.IsSubnormal() {
		t.Error("IsSubnormal misreports")
	}
	if One.Float32() != 1 || NegOne.Float32() != -1 || Max.Float32() != 65504 {
		t.Error("constant decode mismatch")
	}
	if FromFloat32(float32(math.NaN())).IsNaN() != true {
		t.Error("NaN conversion lost NaN-ness")
	}
	if got := math.Float32bits(QuietNaN.Neg().Float32()); got&0x80000000 == 0 {
		t.Error("Neg did not flip NaN sign bit")
	}
}

func TestArithmeticProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20000}
	finite := func(b uint16) Float16 {
		x := FromBits(b)
		if x.IsNaN() || x.IsInf(0) {
			return One
		}
		return x
	}
	if err := quick.Check(func(a, b uint16) bool {
		x, y := finite(a), finite(b)
		return x.Add(y) == y.Add(x)
	}, cfg); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	if err := quick.Check(func(a, b uint16) bool {
		x, y := finite(a), finite(b)
		return x.Mul(y) == y.Mul(x)
	}, cfg); err != nil {
		t.Errorf("Mul not commutative: %v", err)
	}
	if err := quick.Check(func(a uint16) bool {
		x := finite(a)
		return x.Mul(One).Eq(x) || x.IsZero()
	}, cfg); err != nil {
		t.Errorf("x*1 != x: %v", err)
	}
	if err := quick.Check(func(a uint16) bool {
		x := finite(a)
		if x.IsZero() {
			return true
		}
		return x.Sub(x).IsZero()
	}, cfg); err != nil {
		t.Errorf("x-x != 0: %v", err)
	}
	if err := quick.Check(func(a uint16) bool {
		x := finite(a)
		return x.Neg().Neg() == x && x.Abs().Signbit() == false
	}, cfg); err != nil {
		t.Errorf("Neg/Abs: %v", err)
	}
}

func TestArithmeticExactness(t *testing.T) {
	// Add and Mul must be correctly rounded: verify against exact float64
	// computation for random operand pairs (products need 22 bits, sums at
	// most 51 bits, so float64 is exact for both).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		x, y := FromBits(uint16(rng.Intn(1<<16))), FromBits(uint16(rng.Intn(1<<16)))
		if x.IsNaN() || y.IsNaN() {
			continue
		}
		if got, want := x.Add(y), FromFloat64(x.Float64()+y.Float64()); got != want && !(got.IsNaN() && want.IsNaN()) {
			t.Fatalf("Add(%v, %v) = %#04x, want %#04x", x, y, got, want)
		}
		if got, want := x.Mul(y), FromFloat64(x.Float64()*y.Float64()); got != want && !(got.IsNaN() && want.IsNaN()) {
			t.Fatalf("Mul(%v, %v) = %#04x, want %#04x", x, y, got, want)
		}
	}
}

func TestNaNAndInfArithmetic(t *testing.T) {
	if !PositiveInfinity.Add(NegativeInfinity).IsNaN() {
		t.Error("Inf + -Inf should be NaN")
	}
	if !PositiveInfinity.Mul(PositiveZero).IsNaN() {
		t.Error("Inf * 0 should be NaN")
	}
	if !QuietNaN.Add(One).IsNaN() || !One.Mul(QuietNaN).IsNaN() {
		t.Error("NaN must propagate")
	}
	if got := PositiveInfinity.Add(One); !got.IsInf(1) {
		t.Errorf("Inf + 1 = %v, want +Inf", got)
	}
	if got := Max.Add(Max); !got.IsInf(1) {
		t.Errorf("Max + Max = %v, want +Inf", got)
	}
	if !One.Div(PositiveZero).IsInf(1) || !NegOne.Div(PositiveZero).IsInf(-1) {
		t.Error("division by zero should give signed infinity")
	}
}

func TestFMAAndMAC32(t *testing.T) {
	a, b, c := FromFloat64(3), FromFloat64(5), FromFloat64(7)
	if got := FMA(a, b, c); got.Float64() != 22 {
		t.Errorf("FMA(3,5,7) = %v, want 22", got)
	}
	// Mixed-precision MAC: the fp16 product is exact in fp32.
	acc := float32(0)
	for i := 0; i < 2048; i++ {
		acc = MAC32(acc, One, One)
	}
	if acc != 2048 {
		t.Errorf("2048 × MAC32(1,1) accumulated %v, want 2048 (fp32 keeps exact integers here)", acc)
	}
	// The same loop in pure fp16 saturates at 2048 because 2048+1 rounds
	// back to 2048 in binary16 — a classic motivation for mixed precision.
	h := PositiveZero
	for i := 0; i < 4096; i++ {
		h = FMA(One, One, h)
	}
	if h.Float64() != 2048 {
		t.Errorf("fp16 accumulation reached %v, want to stall at 2048", h)
	}
}

func TestComparisons(t *testing.T) {
	if !NegOne.Less(One) || One.Less(NegOne) {
		t.Error("ordering of -1 and 1 wrong")
	}
	if QuietNaN.Less(One) || One.Less(QuietNaN) || QuietNaN.Eq(QuietNaN) {
		t.Error("NaN comparisons must be false")
	}
	if !PositiveZero.Eq(NegativeZero) {
		t.Error("+0 must equal -0")
	}
	if err := quick.Check(func(a, b uint16) bool {
		x, y := FromBits(a), FromBits(b)
		if x.IsNaN() || y.IsNaN() {
			return !x.Less(y) && !x.Eq(y)
		}
		return x.Less(y) == (x.Float32() < y.Float32())
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := map[Float16]string{
		One:              "1",
		NegOne:           "-1",
		FromFloat64(0.5): "0.5",
		Max:              "65504",
	}
	for x, want := range cases {
		if got := x.String(); got != want {
			t.Errorf("String(%#04x) = %q, want %q", x, got, want)
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.25)
	}
	_ = sink
}

func BenchmarkMAC32(b *testing.B) {
	x, y := FromFloat64(1.5), FromFloat64(2.5)
	acc := float32(0)
	for i := 0; i < b.N; i++ {
		acc = MAC32(acc, x, y)
	}
	_ = acc
}
