// Package mem models the GPU memory system the paper's GPGPU-Sim
// extension runs against: per-lane access coalescing into 32-byte sectors,
// a sectored per-SM L1 cache, a banked chip-wide L2, a bandwidth-limited
// DRAM (HBM2 on the Titan V), and the 32-bank shared memory with conflict
// serialization. The model is latency/bandwidth-accurate rather than
// protocol-accurate: caches fill instantly on miss and contention appears
// as queueing delay on the L2 banks and DRAM channels, which is the level
// of detail the paper's experiments exercise (Figures 14–17).
package mem

// Request is one lane's memory access as the coalescer sees it.
type Request struct {
	Addr  uint64
	Bits  int
	Store bool
}

// Config sets the hierarchy's geometry and timing. Defaults follow the
// Titan V numbers the paper and its companion characterization (Jia et
// al.) report.
type Config struct {
	SectorBytes int // coalescing and cache-fill granularity

	L1SizeBytes   int
	L1LineBytes   int
	L1Ways        int
	L1HitLatency  int
	SharedLatency int
	SharedBanks   int
	BankWidth     int // bytes per shared-memory bank word

	L2SizeBytes  int
	L2LineBytes  int
	L2Ways       int
	L2HitLatency int
	L2Banks      int
	// L2BytesPerCycle is the per-bank service bandwidth.
	L2BytesPerCycle int

	DRAMLatency int
	// DRAMBytesPerCycle is the aggregate DRAM bandwidth per core cycle:
	// 652.8 GB/s at 1.53 GHz ≈ 427 B/cycle for the whole chip.
	DRAMBytesPerCycle int
	DRAMChannels      int
}

// TitanV returns the Volta-class default configuration.
func TitanV() Config {
	return Config{
		SectorBytes:       32,
		L1SizeBytes:       128 << 10,
		L1LineBytes:       128,
		L1Ways:            4,
		L1HitLatency:      28,
		SharedLatency:     19,
		SharedBanks:       32,
		BankWidth:         4,
		L2SizeBytes:       4608 << 10,
		L2LineBytes:       128,
		L2Ways:            16,
		L2HitLatency:      193,
		L2Banks:           32,
		L2BytesPerCycle:   32,
		DRAMLatency:       290,
		DRAMBytesPerCycle: 427,
		DRAMChannels:      24,
	}
}

// Coalesce merges the per-lane requests of one warp instruction into the
// distinct memory sectors they touch, in first-touch order — the number of
// memory transactions the instruction generates. Requests wider than a
// sector span several sectors.
func Coalesce(cfg Config, reqs []Request) []uint64 {
	return coalesceInto(nil, cfg, reqs)
}

// coalesceInto is Coalesce appending into a reusable buffer. A warp
// touches at most a few dozen sectors per instruction, so linear
// first-touch dedup beats a map both in time and allocation.
func coalesceInto(out []uint64, cfg Config, reqs []Request) []uint64 {
	sec := uint64(cfg.SectorBytes)
	for _, r := range reqs {
		bytes := uint64(r.Bits+7) / 8
		if bytes == 0 {
			bytes = 1
		}
		first := r.Addr / sec
		last := (r.Addr + bytes - 1) / sec
	sectors:
		for s := first; s <= last; s++ {
			addr := s * sec
			for _, seen := range out {
				if seen == addr {
					continue sectors
				}
			}
			out = append(out, addr)
		}
	}
	return out
}

// SharedConflictPasses returns how many serialized passes the shared
// memory needs for one warp access: the maximum, over banks, of distinct
// bank words addressed (identical words broadcast in one pass).
func SharedConflictPasses(cfg Config, reqs []Request) int {
	return sharedConflictPasses(&bankScratch{}, cfg, reqs)
}

// bankScratch holds per-bank distinct-word lists, reused across accesses.
type bankScratch struct {
	words [][]uint64
}

func sharedConflictPasses(scratch *bankScratch, cfg Config, reqs []Request) int {
	if len(scratch.words) < cfg.SharedBanks {
		scratch.words = make([][]uint64, cfg.SharedBanks)
	}
	banks := scratch.words[:cfg.SharedBanks]
	for i := range banks {
		banks[i] = banks[i][:0]
	}
	// Shift/mask fast path for the universal 4-byte × 32-bank geometry.
	pow2 := cfg.BankWidth == 4 && cfg.SharedBanks == 32
	passes := 0
	for _, r := range reqs {
		bytes := uint64(r.Bits+7) / 8
		for off := uint64(0); off < bytes; off += uint64(cfg.BankWidth) {
			var word uint64
			var b int
			if pow2 {
				word = (r.Addr + off) >> 2
				b = int(word & 31)
			} else {
				word = (r.Addr + off) / uint64(cfg.BankWidth)
				b = int(word % uint64(cfg.SharedBanks))
			}
			dup := false
			for _, seen := range banks[b] {
				if seen == word {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			banks[b] = append(banks[b], word)
			if len(banks[b]) > passes {
				passes = len(banks[b])
			}
		}
	}
	if passes == 0 {
		passes = 1
	}
	return passes
}
