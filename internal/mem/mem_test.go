package mem

import (
	"testing"
	"testing/quick"
)

func reqs32(addrs ...uint64) []Request {
	out := make([]Request, len(addrs))
	for i, a := range addrs {
		out[i] = Request{Addr: a, Bits: 32}
	}
	return out
}

func TestCoalesceFullyCoalesced(t *testing.T) {
	cfg := TitanV()
	// 32 lanes × 4 bytes consecutive = 128 bytes = 4 sectors.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(4 * lane), Bits: 32})
	}
	if got := Coalesce(cfg, rs); len(got) != 4 {
		t.Errorf("consecutive warp access coalesces to %d sectors, want 4", len(got))
	}
}

func TestCoalesceScattered(t *testing.T) {
	cfg := TitanV()
	// Each lane hits its own sector: 32 transactions.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(128 * lane), Bits: 32})
	}
	if got := Coalesce(cfg, rs); len(got) != 32 {
		t.Errorf("scattered warp access coalesces to %d sectors, want 32", len(got))
	}
}

func TestCoalesceWideAccessSpansSectors(t *testing.T) {
	cfg := TitanV()
	// A 128-bit access crossing a sector boundary touches two sectors.
	got := Coalesce(cfg, []Request{{Addr: 24, Bits: 128}})
	if len(got) != 2 {
		t.Errorf("boundary-crossing 128-bit access = %d sectors, want 2", len(got))
	}
	// Aligned it stays within one.
	got = Coalesce(cfg, []Request{{Addr: 32, Bits: 128}})
	if len(got) != 1 {
		t.Errorf("aligned 128-bit access = %d sectors, want 1", len(got))
	}
}

func TestCoalesceDuplicatesMerge(t *testing.T) {
	cfg := TitanV()
	got := Coalesce(cfg, reqs32(0, 4, 8, 0, 4))
	if len(got) != 1 {
		t.Errorf("same-sector accesses = %d sectors, want 1", len(got))
	}
}

// Property: sector count never exceeds request count × ceil(width/sector)
// and sectors are unique.
func TestCoalesceProperties(t *testing.T) {
	cfg := TitanV()
	f := func(seed []uint16) bool {
		var rs []Request
		for _, s := range seed {
			rs = append(rs, Request{Addr: uint64(s) * 4, Bits: 32})
		}
		secs := Coalesce(cfg, rs)
		if len(secs) > len(rs) {
			return false
		}
		seen := map[uint64]bool{}
		for _, s := range secs {
			if s%uint64(cfg.SectorBytes) != 0 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedConflictFree(t *testing.T) {
	cfg := TitanV()
	// Stride-4-bytes: each lane its own bank → 1 pass.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(4 * lane), Bits: 32})
	}
	if got := SharedConflictPasses(cfg, rs); got != 1 {
		t.Errorf("conflict-free access takes %d passes, want 1", got)
	}
}

func TestSharedBroadcast(t *testing.T) {
	cfg := TitanV()
	// All lanes read the same word: broadcast, 1 pass.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: 64, Bits: 32})
	}
	if got := SharedConflictPasses(cfg, rs); got != 1 {
		t.Errorf("broadcast takes %d passes, want 1", got)
	}
}

func TestSharedWorstCaseConflict(t *testing.T) {
	cfg := TitanV()
	// Stride 128 bytes: every lane lands in bank 0 → 32 passes.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(128 * lane), Bits: 32})
	}
	if got := SharedConflictPasses(cfg, rs); got != 32 {
		t.Errorf("stride-128 access takes %d passes, want 32", got)
	}
}

func TestSharedTwoWayConflict(t *testing.T) {
	cfg := TitanV()
	// Stride 8 bytes over 32 lanes wraps the 32 banks twice: two distinct
	// words per bank → 2 passes.
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(8 * lane), Bits: 32})
	}
	if got := SharedConflictPasses(cfg, rs); got != 2 {
		t.Errorf("stride-8 access takes %d passes, want 2", got)
	}
	// Stride 64 bytes lands on banks 0 and 16 only: 16-way conflict.
	rs = rs[:0]
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(64 * lane), Bits: 32})
	}
	if got := SharedConflictPasses(cfg, rs); got != 16 {
		t.Errorf("stride-64 access takes %d passes, want 16", got)
	}
}

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(2*128, 128, 2, 32) // 2 lines, fully associative (1 set × 2 ways)
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("second access should hit")
	}
	if c.Access(128) {
		t.Error("new line should miss")
	}
	c.Access(0)   // touch line 0 so line 128 is LRU
	c.Access(256) // evicts line 128
	if c.Access(128) {
		t.Error("evicted line should miss")
	}
	if got := c.HitRate(); got <= 0 || got >= 1 {
		t.Errorf("hit rate %v should be in (0,1)", got)
	}
}

func TestCacheSectoredFill(t *testing.T) {
	c := NewCache(1024, 128, 4, 32)
	c.Access(0)
	if c.Access(32) {
		t.Error("different sector of the same line should still miss")
	}
	if !c.Access(0) || !c.Access(32) {
		t.Error("both sectors should now hit")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1024, 128, 4, 32)
	c.Access(0)
	c.Invalidate(0)
	if c.Access(0) {
		t.Error("invalidated line should miss")
	}
}

func TestSMPortGlobalLatencies(t *testing.T) {
	cfg := TitanV()
	sys := NewSystem(cfg)
	p := sys.NewSMPort()
	// Cold access: L1 miss → L2 miss → DRAM.
	cold := p.AccessGlobal(0, reqs32(0))
	wantCold := uint64(1 + cfg.L1HitLatency + cfg.L2HitLatency + cfg.DRAMLatency)
	if cold < wantCold {
		t.Errorf("cold access done at %d, want ≥ %d", cold, wantCold)
	}
	// Warm access hits L1.
	warm := p.AccessGlobal(1000, reqs32(0))
	if warm-1000 > uint64(cfg.L1HitLatency+2) {
		t.Errorf("warm access took %d cycles, want ≈ L1 hit %d", warm-1000, cfg.L1HitLatency)
	}
	if p.L1Hits != 1 || p.L1Misses != 1 {
		t.Errorf("L1 hits/misses = %d/%d, want 1/1", p.L1Hits, p.L1Misses)
	}
}

func TestSMPortStoreInvalidatesL1(t *testing.T) {
	cfg := TitanV()
	sys := NewSystem(cfg)
	p := sys.NewSMPort()
	p.AccessGlobal(0, reqs32(0))                                     // fill (miss)
	p.AccessGlobal(500, []Request{{Addr: 0, Bits: 32, Store: true}}) // write-evict
	p.AccessGlobal(1500, reqs32(0))                                  // must miss again
	if p.L1Hits != 0 || p.L1Misses != 2 {
		t.Errorf("write-evict: hits=%d misses=%d, want 0/2", p.L1Hits, p.L1Misses)
	}
	p.AccessGlobal(3000, reqs32(0)) // now resident again
	if p.L1Hits != 1 {
		t.Errorf("refill did not hit: hits=%d misses=%d", p.L1Hits, p.L1Misses)
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	cfg := TitanV()
	cfg.DRAMChannels = 1
	cfg.DRAMBytesPerCycle = 32 // one sector per cycle
	cfg.L2SizeBytes = 4 << 10  // tiny L2 to force misses
	cfg.L2Banks = 1
	sys := NewSystem(cfg)
	p := sys.NewSMPort()
	// Stream far-apart sectors so everything misses to one DRAM channel.
	var last uint64
	for i := 0; i < 64; i++ {
		last = p.AccessGlobal(uint64(i), reqs32(uint64(i)*4096))
	}
	// With 1 sector/cycle service the 64th access cannot complete before
	// ~64 cycles of serialized service plus fixed latency.
	min := uint64(64 + cfg.DRAMLatency)
	if last < min {
		t.Errorf("64 streamed misses done at %d, want ≥ %d (bandwidth queueing)", last, min)
	}
	if sys.DRAMAccesses == 0 || sys.L2Accesses == 0 {
		t.Error("expected DRAM and L2 traffic")
	}
}

func TestSMPortShared(t *testing.T) {
	cfg := TitanV()
	sys := NewSystem(cfg)
	p := sys.NewSMPort()
	var rs []Request
	for lane := 0; lane < 32; lane++ {
		rs = append(rs, Request{Addr: uint64(128 * lane), Bits: 32})
	}
	done := p.AccessShared(0, rs)
	want := uint64(cfg.SharedLatency + 31)
	if done < want {
		t.Errorf("32-way conflicted shared access done at %d, want ≥ %d", done, want)
	}
	if p.SharedConflicts != 31 {
		t.Errorf("recorded %d conflicts, want 31", p.SharedConflicts)
	}
}

func TestL2SharedAcrossPorts(t *testing.T) {
	cfg := TitanV()
	sys := NewSystem(cfg)
	p1 := sys.NewSMPort()
	p2 := sys.NewSMPort()
	p1.AccessGlobal(0, reqs32(4096)) // warms L2
	t2 := p2.AccessGlobal(5000, reqs32(4096))
	// p2 misses its own L1 but must hit L2 (no DRAM latency).
	if t2-5000 >= uint64(cfg.DRAMLatency) {
		t.Errorf("second SM's access took %d cycles; expected an L2 hit", t2-5000)
	}
	if p2.L1Hits != 0 || p2.L1Misses != 1 {
		t.Errorf("p2 L1 stats %d/%d, want 0/1", p2.L1Hits, p2.L1Misses)
	}
}
