package mem

import (
	"reflect"
	"testing"
)

// vecOf builds an AddrVec over a fresh address array.
func vecOf(addrs [32]uint64, mask uint32, bits int32, store bool) AddrVec {
	a := addrs
	return AddrVec{Addr: &a, Mask: mask, Bits: bits, Store: store}
}

// expand converts vectors to the lane-major Request slice the legacy
// reference implementations consume — the defined equivalence order.
func expand(vecs []AddrVec) []Request {
	var reqs []Request
	for lane := 0; lane < 32; lane++ {
		for _, v := range vecs {
			if v.Mask&(1<<lane) == 0 {
				continue
			}
			reqs = append(reqs, Request{Addr: v.Addr[lane], Bits: int(v.Bits), Store: v.Store})
		}
	}
	return reqs
}

// checkAgainstReference asserts both vectorized consumers agree with the
// legacy per-lane implementations.
func checkAgainstReference(t *testing.T, cfg Config, vecs []AddrVec) {
	t.Helper()
	reqs := expand(vecs)
	gotSec := CoalesceVecs(cfg, vecs)
	wantSec := Coalesce(cfg, reqs)
	if !reflect.DeepEqual(gotSec, wantSec) && !(len(gotSec) == 0 && len(wantSec) == 0) {
		t.Errorf("CoalesceVecs = %v, want %v", gotSec, wantSec)
	}
	gotP := SharedConflictPassesVecs(cfg, vecs)
	wantP := SharedConflictPasses(cfg, reqs)
	if gotP != wantP {
		t.Errorf("SharedConflictPassesVecs = %d, want %d", gotP, wantP)
	}
}

// The shapes the fast paths dispatch on, each checked against the legacy
// reference: uniform, unit-stride (aligned and misaligned), mirrored
// halves, few-distinct broadcast, sorted-with-gaps, partial masks, and
// multi-group batches.
func TestVecFastPathsMatchReference(t *testing.T) {
	cfg := TitanV()
	var uniform, unit, unitMis, mirror, distinct2, gaps, desc [32]uint64
	for i := 0; i < 32; i++ {
		uniform[i] = 420
		unit[i] = 1024 + uint64(i)*16
		unitMis[i] = 1 + uint64(i)*16 // misaligned base
		mirror[i] = 2048 + uint64(i%16)*16
		distinct2[i] = 256 + uint64(i/16)*256 // bank-conflicting pair
		gaps[i] = uint64(i) * 100             // sorted, gapped, sector-sharing
		desc[i] = uint64(31-i) * 128          // descending: scattered path
	}
	// wmma-shaped geometries from the batched fragment path: mirrored
	// fragment halves (Volta A/B hold every element in two lanes, so
	// piece groups repeat across half-warps) with sorted, gapped and
	// descending first halves, and slot-aligned piece groups (one group
	// per fragment slot, lanes strided by the tile's leading dimension).
	var mirGap, mirDesc [32]uint64
	for i := 0; i < 16; i++ {
		mirGap[i] = 4096 + uint64(i)*96
		mirDesc[i] = 8192 + uint64(15-i)*96
		mirGap[i+16], mirDesc[i+16] = mirGap[i], mirDesc[i]
	}
	slotGroups := func(base uint64) []AddrVec {
		var vecs []AddrVec
		for slot := 0; slot < 4; slot++ {
			var a [32]uint64
			for lane := 0; lane < 32; lane++ {
				a[lane] = base + uint64(lane%16)*64 + uint64(slot)*16
			}
			vecs = append(vecs, vecOf(a, ^uint32(0), 128, false))
		}
		return vecs
	}
	cases := []struct {
		name string
		vecs []AddrVec
	}{
		{"uniform32", []AddrVec{vecOf(uniform, ^uint32(0), 32, false)}},
		{"uniform128", []AddrVec{vecOf(uniform, ^uint32(0), 128, false)}},
		// Wider than any ld/st: exported-API only, wraps the banks.
		{"uniform1024", []AddrVec{vecOf(uniform, ^uint32(0), 1024, false)}},
		{"uniform_partial", []AddrVec{vecOf(uniform, 0x0000ffff, 32, false)}},
		{"unit32", []AddrVec{vecOf(unit, ^uint32(0), 32, false)}},
		{"unit64", []AddrVec{vecOf(unit, ^uint32(0), 64, false)}},
		{"unit128_wide", []AddrVec{vecOf(unit, ^uint32(0), 128, true)}},
		{"unit16", []AddrVec{vecOf(unit, ^uint32(0), 16, false)}},
		{"unit_misaligned", []AddrVec{vecOf(unitMis, ^uint32(0), 128, false)}},
		{"mirrored_halves", []AddrVec{vecOf(mirror, ^uint32(0), 128, false)}},
		{"two_distinct", []AddrVec{vecOf(distinct2, ^uint32(0), 32, false)}},
		{"sorted_gaps", []AddrVec{vecOf(gaps, ^uint32(0), 64, false)}},
		{"descending", []AddrVec{vecOf(desc, ^uint32(0), 32, false)}},
		{"partial_scattered", []AddrVec{vecOf(desc, 0xf0f0f0f0, 32, false)}},
		{"empty_mask", []AddrVec{vecOf(unit, 0, 32, false)}},
		{"multi_group", []AddrVec{
			vecOf(unit, ^uint32(0), 128, false),
			vecOf(mirror, 0x0000ffff, 32, false),
		}},
		{"mirrored_gapped", []AddrVec{vecOf(mirGap, ^uint32(0), 64, false)}},
		{"mirrored_descending", []AddrVec{vecOf(mirDesc, ^uint32(0), 32, false)}},
		{"mirrored_partial_mask", []AddrVec{vecOf(mirGap, 0x00ff00ff, 64, false)}},
		{"wmma_slot_groups", slotGroups(1 << 16)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstReference(t, cfg, tc.vecs)
		})
	}
}

// A unit-stride vector whose byte range wraps the address space must
// fall back to the per-lane-equivalent general path rather than claim
// the contiguous-cover fast paths (unreachable from PTX, reachable via
// the exported API).
func TestVecUnitStrideWrapAround(t *testing.T) {
	cfg := TitanV()
	var wrap [32]uint64
	for i := 0; i < 32; i++ {
		wrap[i] = ^uint64(0) - 255 + uint64(i)*16 // lanes 16.. wrap past zero
	}
	checkAgainstReference(t, cfg, []AddrVec{vecOf(wrap, ^uint32(0), 128, false)})
}

// Unit-stride warps must not claim the stride fast path on a non-pow2
// geometry, and the general vec path must match the reference there too.
func TestVecNonPow2Geometry(t *testing.T) {
	cfg := TitanV()
	cfg.SharedBanks = 24
	cfg.BankWidth = 8
	var unit, scatter [32]uint64
	for i := 0; i < 32; i++ {
		unit[i] = uint64(i) * 8
		scatter[i] = uint64((i*7)%32) * 192
	}
	checkAgainstReference(t, cfg, []AddrVec{vecOf(unit, ^uint32(0), 64, false)})
	checkAgainstReference(t, cfg, []AddrVec{vecOf(scatter, ^uint32(0), 32, false)})
}

// Regression for the legacy coalescer's O(sectors²) dedup pathology: a
// fully scattered warp (every lane its own sector, emitted in descending
// order so neither the sorted nor the arithmetic fast paths apply) must
// still produce the exact 32-sector first-touch list, and wide scattered
// accesses (two sectors per lane) must dedup correctly through the hash
// set.
func TestVecScatteredRegression(t *testing.T) {
	cfg := TitanV()
	var desc [32]uint64
	for i := 0; i < 32; i++ {
		desc[i] = uint64(31-i) * 128
	}
	vecs := []AddrVec{vecOf(desc, ^uint32(0), 32, false)}
	got := CoalesceVecs(cfg, vecs)
	if len(got) != 32 {
		t.Fatalf("scattered warp coalesced to %d sectors, want 32", len(got))
	}
	for i, s := range got {
		if want := uint64(31-i) * 128; s != want {
			t.Fatalf("sector %d = %d, want %d (first-touch order)", i, s, want)
		}
	}
	// Sector-spanning scattered: 128-bit accesses straddling boundaries.
	var span [32]uint64
	for i := 0; i < 32; i++ {
		span[i] = uint64((31-i)*96) + 24
	}
	checkAgainstReference(t, cfg, []AddrVec{vecOf(span, ^uint32(0), 128, false)})
}

// The hash set must degrade to linear dedup, not fail, past its overflow
// threshold.
func TestSectorSetOverflowDegrades(t *testing.T) {
	cfg := TitanV()
	// 32 groups × 32 lanes of distinct sectors = 1024 sectors, beyond the
	// 768-entry overflow threshold.
	var vecs []AddrVec
	for g := 0; g < 32; g++ {
		var a [32]uint64
		for i := 0; i < 32; i++ {
			// Descending so no fast path applies inside groups.
			a[i] = uint64(g*32+(31-i)) * 128
		}
		vecs = append(vecs, vecOf(a, ^uint32(0), 32, false))
	}
	got := CoalesceVecs(cfg, vecs)
	want := Coalesce(cfg, expand(vecs))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overflowed coalesce diverges: %d vs %d sectors", len(got), len(want))
	}
	if len(got) != 1024 {
		t.Fatalf("got %d sectors, want 1024", len(got))
	}
}

// FuzzVecMatchesReference is the equivalence fuzz: random geometries,
// masks, widths and address vectors must coalesce and conflict-count
// identically on the vectorized and per-lane reference paths. The
// mirror input folds lanes 16..31 onto 0..15, the wmma fragment shape
// (Volta A/B piece groups repeat across half-warps) the mirrored-halves
// fast paths dispatch on.
func FuzzVecMatchesReference(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint32(0xffffffff), uint8(2), uint8(0), false, false)
	f.Add([]byte{0, 0, 0, 0, 255, 255}, uint32(0x0000ffff), uint8(4), uint8(1), true, false)
	f.Add([]byte{7, 13, 255, 0, 1, 1, 2, 2}, uint32(0xdeadbeef), uint8(0), uint8(2), false, false)
	f.Add([]byte{9}, uint32(1), uint8(3), uint8(3), true, false)
	// wmma-shaped seeds: mirrored fragment halves (128- and 32-bit
	// pieces), a mirrored partial mask, and slot-aligned two-group runs.
	f.Add([]byte{16, 32, 48, 64, 80, 96, 112, 128}, uint32(0xffffffff), uint8(4), uint8(0), false, true)
	f.Add([]byte{8, 8, 8, 8, 40, 40, 40, 40}, uint32(0xffffffff), uint8(2), uint8(0), false, true)
	f.Add([]byte{64, 1, 191, 17}, uint32(0x0f0f0f0f), uint8(4), uint8(1), true, true)
	f.Add([]byte{12, 24, 36, 48, 60, 72}, uint32(0xffffffff), uint8(3), uint8(0), true, true)
	f.Fuzz(func(t *testing.T, seed []byte, mask uint32, widthSel, geoSel uint8, store, mirror bool) {
		widths := []int32{8, 16, 32, 64, 128}
		bits := widths[int(widthSel)%len(widths)]
		cfg := TitanV()
		switch geoSel % 4 {
		case 1:
			cfg.SectorBytes = 64
		case 2:
			cfg.SharedBanks = 16
		case 3:
			cfg.BankWidth = 8
			cfg.SectorBytes = 16
		}
		if len(seed) == 0 {
			return
		}
		// Derive a 32-lane address vector from the seed: small strides and
		// modular wraps so duplicates, sector sharing and bank conflicts
		// all actually occur.
		var a [32]uint64
		for i := 0; i < 32; i++ {
			b := seed[i%len(seed)]
			a[i] = uint64(b)*uint64(seed[0]%8+1)*4 + uint64(i%(int(b%5)+1))*64
		}
		if mirror {
			for i := 16; i < 32; i++ {
				a[i] = a[i-16]
			}
		}
		vecs := []AddrVec{vecOf(a, mask, bits, store)}
		if len(seed) > 4 { // second group from the reversed vector
			var rev [32]uint64
			for i := range rev {
				rev[i] = a[31-i] + uint64(seed[1])
			}
			vecs = append(vecs, vecOf(rev, mask>>3|mask<<7, bits, store))
		}
		reqs := expand(vecs)
		gotSec := CoalesceVecs(cfg, vecs)
		wantSec := Coalesce(cfg, reqs)
		if !reflect.DeepEqual(gotSec, wantSec) && !(len(gotSec) == 0 && len(wantSec) == 0) {
			t.Fatalf("CoalesceVecs = %v, want %v (vecs %+v)", gotSec, wantSec, vecs)
		}
		gotP := SharedConflictPassesVecs(cfg, vecs)
		wantP := SharedConflictPasses(cfg, reqs)
		if gotP != wantP {
			t.Fatalf("SharedConflictPassesVecs = %d, want %d (vecs %+v)", gotP, wantP, vecs)
		}
	})
}
