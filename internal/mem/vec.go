package mem

// The batched (struct-of-arrays) warp access path. The per-lane Request
// slice forces the coalescer and the shared-memory conflict counter to
// re-discover warp structure — uniform broadcasts, unit-stride streams —
// one lane at a time, with a linear dedup scan per touched sector that
// degenerates to O(sectors²) for scattered warps. AddrVec keeps the whole
// warp's addresses in one fixed vector with an active-lane bitmask, so
// both consumers can classify the access shape once and take an
// arithmetic fast path (uniform, unit-stride) or a hash/sorted-run dedup
// that stays O(sectors) even for fully scattered warps.
//
// Equivalence contract (asserted by FuzzVecMatchesReference and the
// ptx/gpu-level LegacyAccessPath tests): for any address vector, mask and
// geometry, CoalesceVecs returns exactly the sector list Coalesce returns
// for the lane-major expansion of the vectors, and SharedConflictPassesVecs
// returns exactly SharedConflictPasses' pass count.

// AddrVec is the struct-of-arrays form of one warp access group: 32 lane
// addresses (stale in unmasked lanes), an active-lane bitmask and the
// shared width/store attributes. Addr points at the producer's vector —
// typically ptx.WarpAccess scratch — so building an AddrVec copies no
// lane data; it is valid for the synchronous duration of the access call.
type AddrVec struct {
	Addr  *[32]uint64
	Mask  uint32
	Bits  int32
	Store bool
}

const fullMask = ^uint32(0)

// vecShape classifies the masked address pattern of one AddrVec.
type vecShape uint8

const (
	vecScattered  vecShape = iota
	vecSorted              // non-decreasing over masked lanes
	vecUniform             // every masked lane holds the same address
	vecUnitStride          // full warp, addr[i+1] = addr[i] + bytes
)

// classifyVec inspects the masked lanes once. Uniform holds for any mask;
// unit-stride is only claimed for fully active warps (a mask gap breaks
// byte-range contiguity); sorted is the weakest useful property.
//
//simlint:hotpath
func classifyVec(v *AddrVec, bytes uint64) vecShape {
	a := v.Addr
	if v.Mask == fullMask {
		uniform, unit, sorted := true, true, true
		prev := a[0]
		for i := 1; i < 32; i++ {
			cur := a[i]
			if cur != prev {
				uniform = false
			}
			if cur != prev+bytes {
				unit = false
			}
			if cur < prev {
				sorted = false
			}
			prev = a[i]
		}
		switch {
		case uniform:
			return vecUniform
		case unit:
			return vecUnitStride
		case sorted:
			return vecSorted
		}
		return vecScattered
	}
	uniform, sorted, first := true, true, true
	var prev uint64
	for lane := 0; lane < 32; lane++ {
		if v.Mask&(1<<lane) == 0 {
			continue
		}
		cur := a[lane]
		if first {
			prev, first = cur, false
			continue
		}
		if cur != prev {
			uniform = false
		}
		if cur < prev {
			sorted = false
		}
		prev = cur
	}
	switch {
	case uniform:
		return vecUniform
	case sorted:
		return vecSorted
	}
	return vecScattered
}

// vecBytes mirrors coalesceInto's width handling (zero-width clamps to
// one byte).
func vecBytes(bits int32) uint64 {
	b := uint64(bits+7) / 8
	if b == 0 {
		b = 1
	}
	return b
}

// CoalesceVecs is the batched Coalesce: the distinct sectors touched by
// the access groups, in the first-touch order of their lane-major
// expansion (so it matches Coalesce on the equivalent Request slice).
func CoalesceVecs(cfg Config, vecs []AddrVec) []uint64 {
	return coalesceVecsInto(nil, &sectorSet{}, cfg, vecs)
}

// coalesceVecsInto is CoalesceVecs appending into a reusable buffer with
// a reusable dedup set.
//
//simlint:hotpath
func coalesceVecsInto(out []uint64, set *sectorSet, cfg Config, vecs []AddrVec) []uint64 {
	sec := uint64(cfg.SectorBytes)
	if len(vecs) == 1 {
		v := &vecs[0]
		if v.Mask == 0 {
			return out
		}
		if v.Mask == fullMask && mirroredHalves(v.Addr) {
			// wmma fragment groups (Volta A/B hold every element in two
			// lanes) and GEMM staging both produce half-warp mirrors:
			// lanes 16..31 repeat lanes 0..15 exactly, so in the
			// lane-major expansion they touch only already-seen sectors
			// and cannot perturb first-touch order. Coalesce the first
			// half alone — its (often unit-stride) shape then classifies
			// as sorted instead of scattered.
			half := AddrVec{Addr: v.Addr, Mask: 0xffff, Bits: v.Bits, Store: v.Store}
			return coalesceOneVec(out, set, sec, &half)
		}
		return coalesceOneVec(out, set, sec, v)
	}
	return coalesceHash(out, set, sec, vecs)
}

// coalesceOneVec dispatches a single non-empty group on its classified
// shape.
//
//simlint:hotpath
func coalesceOneVec(out []uint64, set *sectorSet, sec uint64, v *AddrVec) []uint64 {
	bytes := vecBytes(v.Bits)
	switch classifyVec(v, bytes) {
	case vecUniform:
		// One lane's span; every other masked lane duplicates it.
		a := v.Addr[firstLane(v.Mask)]
		for s := a / sec; s <= (a+bytes-1)/sec; s++ {
			out = append(out, s*sec)
		}
		return out
	case vecUnitStride:
		// The warp reads one contiguous byte range: the sector list is
		// the ascending aligned cover, no dedup needed. A range that
		// wraps the address space (unreachable from PTX, but possible
		// through the exported API) keeps per-lane legacy semantics via
		// the general path.
		if a := v.Addr[0]; a <= a+32*bytes-1 {
			for s := a / sec; s <= (a+32*bytes-1)/sec; s++ {
				out = append(out, s*sec)
			}
			return out
		}
	case vecSorted:
		return coalesceSorted(out, sec, v, bytes)
	}
	one := [1]AddrVec{*v}
	return coalesceHash(out, set, sec, one[:])
}

// firstLane returns the lowest set lane of a non-zero mask.
func firstLane(mask uint32) int {
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) != 0 {
			return lane
		}
	}
	return 0
}

// coalesceSorted dedups a non-decreasing address vector in one pass.
// With non-decreasing lane starts and contiguous per-lane spans, a sector
// is previously seen iff it does not exceed the maximum sector seen — so
// first-touch dedup needs only that running maximum.
func coalesceSorted(out []uint64, sec uint64, v *AddrVec, bytes uint64) []uint64 {
	var maxSeen uint64
	have := false
	for lane := 0; lane < 32; lane++ {
		if v.Mask&(1<<lane) == 0 {
			continue
		}
		a := v.Addr[lane]
		for s := a / sec; s <= (a+bytes-1)/sec; s++ {
			if !have || s > maxSeen {
				out = append(out, s*sec)
				maxSeen, have = s, true
			}
		}
	}
	return out
}

// coalesceHash is the general path: lane-major first-touch dedup through
// an open-addressing set, O(1) per sector instead of the legacy linear
// rescan of everything emitted so far. If an instruction somehow touches
// more sectors than the set's capacity the tail degrades to the legacy
// linear scan rather than failing.
func coalesceHash(out []uint64, set *sectorSet, sec uint64, vecs []AddrVec) []uint64 {
	set.reset()
	linear := false
	for lane := 0; lane < 32; lane++ {
		bit := uint32(1) << lane
		for vi := range vecs {
			v := &vecs[vi]
			if v.Mask&bit == 0 {
				continue
			}
			bytes := vecBytes(v.Bits)
			a := v.Addr[lane]
		sectors:
			for s := a / sec; s <= (a+bytes-1)/sec; s++ {
				addr := s * sec
				if !linear {
					added, full := set.insert(addr)
					if !full {
						if added {
							out = append(out, addr)
						}
						continue
					}
					linear = true
				}
				for _, seen := range out {
					if seen == addr {
						continue sectors
					}
				}
				out = append(out, addr)
			}
		}
	}
	return out
}

// sectorSet is a reusable open-addressing membership set for sector
// addresses, cleared in O(1) by a generation counter. Sized so that a
// warp's worst realistic sector count (a few hundred for scattered
// sub-byte wmma fragments) stays under the overflow threshold.
type sectorSet struct {
	key [sectorSetSlots]uint64
	gen [sectorSetSlots]uint32
	cur uint32
	n   int
}

const (
	sectorSetSlots    = 1024 // power of two
	sectorSetOverflow = sectorSetSlots * 3 / 4
)

func (s *sectorSet) reset() {
	s.cur++
	s.n = 0
	if s.cur == 0 { // generation wrap: invalidate everything once
		s.gen = [sectorSetSlots]uint32{}
		s.cur = 1
	}
}

// insert reports whether k was newly added, and whether the set refused
// it because it is full (the caller then falls back to linear dedup).
func (s *sectorSet) insert(k uint64) (added, full bool) {
	if s.n >= sectorSetOverflow {
		return false, true
	}
	h := int(k*0x9E3779B97F4A7C15>>54) & (sectorSetSlots - 1)
	for {
		if s.gen[h] != s.cur {
			s.gen[h] = s.cur
			s.key[h] = k
			s.n++
			return true, false
		}
		if s.key[h] == k {
			return false, false
		}
		h = (h + 1) & (sectorSetSlots - 1)
	}
}

// SharedConflictPassesVecs is the batched SharedConflictPasses: the
// serialized bank passes of the access groups, matching the per-lane
// Request path exactly.
func SharedConflictPassesVecs(cfg Config, vecs []AddrVec) int {
	return sharedConflictPassesVecs(&conflictScratch{}, &bankScratch{}, cfg, vecs)
}

// conflictScratch holds the pass-simulation state of the pow-2 fallback,
// reused across accesses.
type conflictScratch struct {
	words   []uint64
	served  []uint64
	claimed [32]uint64
}

func sharedConflictPassesVecs(cs *conflictScratch, bs *bankScratch, cfg Config, vecs []AddrVec) int {
	pow2 := cfg.BankWidth == 4 && cfg.SharedBanks == 32
	if !pow2 {
		return conflictGeneralVecs(bs, cfg, vecs)
	}
	if len(vecs) == 1 {
		v := &vecs[0]
		bytes := uint64(v.Bits+7) / 8 // no zero clamp: mirrors the Request path
		if v.Mask != 0 && bytes > 0 {
			switch classifyVec(v, bytes) {
			case vecUniform:
				// Every masked lane addresses the same ≤4 consecutive bank
				// words (any ld/st width is ≤16 bytes); duplicates
				// broadcast, distinct words land in distinct banks — one
				// pass. Wider vectors (exported API only) wrap the banks
				// and take the pass simulation.
				if bytes <= 16 {
					return 1
				}
			case vecUnitStride:
				if a := v.Addr[0]; a%4 == 0 && bytes%4 == 0 && a <= a+32*bytes-1 {
					// The warp touches 32·bytes/4 consecutive aligned words:
					// each bank serves exactly bytes/4 distinct words.
					return int(bytes) / 4
				}
			default:
				if v.Mask == fullMask {
					if p := conflictFullWarpFast(v, bytes); p > 0 {
						return p
					}
				}
			}
		}
	}
	return conflictPassSim(cs, vecs)
}

// conflictFullWarpFast recognizes the two warp shapes GEMM inner loops
// produce beyond uniform/unit-stride — a handful of distinct broadcast
// addresses (operand rows shared by half-warps) and mirrored half-warps
// whose first half is unit-stride (row fragments read twice) — and
// computes their pass count arithmetically. Returns 0 when the shape is
// not recognized.
//
//simlint:hotpath
func conflictFullWarpFast(v *AddrVec, bytes uint64) int {
	a := v.Addr
	// Mirrored halves: lanes 16..31 repeat lanes 0..15, so the second
	// half broadcasts and only the first half's words count.
	if mirroredHalves(a) {
		unit := true
		for i := 1; i < 16; i++ {
			if a[i] != a[i-1]+bytes {
				unit = false
				break
			}
		}
		if unit && a[0]%4 == 0 && bytes%4 == 0 && a[0] <= a[0]+16*bytes-1 {
			// 16·bytes/4 consecutive aligned words.
			return (int(bytes)*4 + 31) / 32
		}
	}
	// A few distinct broadcast addresses: compute the pass count exactly
	// over the deduplicated word set.
	var distinct [4]uint64
	nd := 0
lanes:
	for lane := 0; lane < 32; lane++ {
		aa := a[lane]
		for i := 0; i < nd; i++ {
			if distinct[i] == aa {
				continue lanes
			}
		}
		if nd == len(distinct) {
			return 0
		}
		distinct[nd] = aa
		nd++
	}
	var words [16]uint64
	nw := 0
	for i := 0; i < nd; i++ {
		for off := uint64(0); off < bytes; off += 4 {
			w := (distinct[i] + off) >> 2
			dup := false
			for j := 0; j < nw; j++ {
				if words[j] == w {
					dup = true
					break
				}
			}
			if !dup {
				if nw == len(words) {
					return 0 // bytes > 16: beyond any ld/st width
				}
				words[nw] = w
				nw++
			}
		}
	}
	var cnt [32]uint8
	passes := 1
	for i := 0; i < nw; i++ {
		b := words[i] & 31
		cnt[b]++
		if int(cnt[b]) > passes {
			passes = int(cnt[b])
		}
	}
	return passes
}

// mirroredHalves reports whether lanes 16..31 repeat lanes 0..15.
func mirroredHalves(a *[32]uint64) bool {
	for i := 16; i < 32; i++ {
		if a[i] != a[i-16] {
			return false
		}
	}
	return true
}

// conflictPassSim simulates the serialized passes directly with a 32-bit
// bank-occupancy bitmask: each pass claims at most one distinct word per
// bank and broadcasts its duplicates, so the pass count equals the
// maximum number of distinct words any bank must serve — the quantity the
// per-bank distinct-word lists compute — without maintaining the lists.
// Only valid for the universal 4-byte × 32-bank geometry.
func conflictPassSim(cs *conflictScratch, vecs []AddrVec) int {
	items := cs.words[:0]
	for vi := range vecs {
		v := &vecs[vi]
		bytes := uint64(v.Bits+7) / 8
		for lane := 0; lane < 32; lane++ {
			if v.Mask&(1<<lane) == 0 {
				continue
			}
			a := v.Addr[lane]
			for off := uint64(0); off < bytes; off += 4 {
				items = append(items, (a+off)>>2)
			}
		}
	}
	cs.words = items
	n := len(items)
	if n == 0 {
		return 1
	}
	nw := (n + 63) / 64
	if cap(cs.served) < nw {
		cs.served = make([]uint64, nw)
	}
	served := cs.served[:nw]
	for i := range served {
		served[i] = 0
	}
	remaining := n
	passes := 0
	for remaining > 0 {
		passes++
		var occ uint32
		for i, wd := range items {
			if served[i>>6]&(1<<(i&63)) != 0 {
				continue
			}
			b := uint32(wd) & 31
			if occ&(1<<b) != 0 {
				if cs.claimed[b] != wd {
					continue // bank busy with another word this pass
				}
			} else {
				occ |= 1 << b
				cs.claimed[b] = wd
			}
			served[i>>6] |= 1 << (i & 63)
			remaining--
		}
	}
	return passes
}

// conflictGeneralVecs mirrors sharedConflictPasses for arbitrary bank
// geometry, iterating the vectors' masked lanes instead of a Request
// slice.
func conflictGeneralVecs(bs *bankScratch, cfg Config, vecs []AddrVec) int {
	if len(bs.words) < cfg.SharedBanks {
		bs.words = make([][]uint64, cfg.SharedBanks)
	}
	banks := bs.words[:cfg.SharedBanks]
	for i := range banks {
		banks[i] = banks[i][:0]
	}
	passes := 0
	for vi := range vecs {
		v := &vecs[vi]
		bytes := uint64(v.Bits+7) / 8
		for lane := 0; lane < 32; lane++ {
			if v.Mask&(1<<lane) == 0 {
				continue
			}
			a := v.Addr[lane]
			for off := uint64(0); off < bytes; off += uint64(cfg.BankWidth) {
				word := (a + off) / uint64(cfg.BankWidth)
				b := int(word % uint64(cfg.SharedBanks))
				dup := false
				for _, seen := range banks[b] {
					if seen == word {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				banks[b] = append(banks[b], word)
				if len(banks[b]) > passes {
					passes = len(banks[b])
				}
			}
		}
	}
	if passes == 0 {
		passes = 1
	}
	return passes
}
