package mem

// System is the chip-wide memory system: banked L2 and bandwidth-limited
// DRAM shared by every SM. SMs attach through SMPort, which adds the
// private L1 and shared memory. All methods are single-threaded, driven by
// the simulator's global cycle loop.
type System struct {
	cfg      Config
	l2       []*Cache
	l2Free   []uint64 // next free cycle per L2 bank port
	dramFree []uint64 // next free cycle per DRAM channel

	L2Accesses   uint64
	DRAMAccesses uint64
}

// NewSystem builds the shared memory system for a chip.
func NewSystem(cfg Config) *System {
	s := &System{cfg: cfg}
	s.l2 = make([]*Cache, cfg.L2Banks)
	s.l2Free = make([]uint64, cfg.L2Banks)
	for i := range s.l2 {
		s.l2[i] = NewCache(cfg.L2SizeBytes/cfg.L2Banks, cfg.L2LineBytes, cfg.L2Ways, cfg.SectorBytes)
	}
	s.dramFree = make([]uint64, cfg.DRAMChannels)
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// L2HitRate returns the aggregate L2 hit rate.
func (s *System) L2HitRate() float64 {
	var h, m uint64
	for _, c := range s.l2 {
		h += c.Hits
		m += c.Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// accessL2 serves one sector at the L2/DRAM level, returning the cycle the
// data is available.
func (s *System) accessL2(now uint64, sector uint64) uint64 {
	s.L2Accesses++
	bank := int(sector / uint64(s.cfg.SectorBytes) % uint64(s.cfg.L2Banks))
	// Queue on the bank port.
	start := now
	if s.l2Free[bank] > start {
		start = s.l2Free[bank]
	}
	service := uint64(s.cfg.SectorBytes / s.cfg.L2BytesPerCycle)
	if service == 0 {
		service = 1
	}
	s.l2Free[bank] = start + service
	if s.l2[bank].Access(sector) {
		return start + uint64(s.cfg.L2HitLatency)
	}
	// L2 miss: go to DRAM.
	return s.accessDRAM(start+uint64(s.cfg.L2HitLatency), sector)
}

func (s *System) accessDRAM(now uint64, sector uint64) uint64 {
	s.DRAMAccesses++
	ch := int(sector / uint64(s.cfg.SectorBytes) % uint64(s.cfg.DRAMChannels))
	start := now
	if s.dramFree[ch] > start {
		start = s.dramFree[ch]
	}
	perChannel := s.cfg.DRAMBytesPerCycle / s.cfg.DRAMChannels
	if perChannel < 1 {
		perChannel = 1
	}
	service := uint64((s.cfg.SectorBytes + perChannel - 1) / perChannel)
	s.dramFree[ch] = start + service
	return start + service + uint64(s.cfg.DRAMLatency)
}

// SMPort is one SM's window into the memory system: a private L1, the
// SM-local shared memory timing, and an LSU issue port able to start one
// coalesced transaction per cycle.
type SMPort struct {
	sys *System
	l1  *Cache
	// lsuFree gates global transactions (one per cycle); sharedFree gates
	// the shared-memory pipeline (one bank pass per cycle). The two
	// datapaths are separate in Volta's MIO.
	lsuFree    uint64
	sharedFree uint64

	// Reusable per-instruction scratch: coalesced sector list, the
	// shared-memory bank conflict counters (per-lane lists and the
	// batched pass simulation), and the batched coalescer's dedup set. An
	// SMPort belongs to exactly one SM of one Simulator, so the scratch
	// is never shared.
	sectors  []uint64
	banks    bankScratch
	conflict conflictScratch
	secSet   sectorSet

	L1Hits, L1Misses   uint64
	GlobalTransactions uint64
	SharedAccesses     uint64
	SharedConflicts    uint64
}

// NewSMPort attaches a new SM to the system.
func (s *System) NewSMPort() *SMPort {
	cfg := s.cfg
	return &SMPort{
		sys: s,
		l1:  NewCache(cfg.L1SizeBytes, cfg.L1LineBytes, cfg.L1Ways, cfg.SectorBytes),
	}
}

// AccessGlobal serves one warp instruction's global accesses: coalesce
// into sectors, issue one transaction per cycle through the LSU, look up
// the L1, and descend the hierarchy on misses. It returns the cycle the
// last sector arrives (loads) or is accepted by the write buffer
// (stores, which retire once handed to the LSU — the L2/DRAM traversal
// still consumes downstream bandwidth but the warp does not wait on it).
func (p *SMPort) AccessGlobal(now uint64, reqs []Request) uint64 {
	p.sectors = coalesceInto(p.sectors[:0], p.sys.cfg, reqs)
	return p.globalTiming(now, len(reqs) > 0 && reqs[0].Store)
}

// AccessGlobalVecs is AccessGlobal for batched warp access groups: same
// LSU/L1/L2 timing over the sector list of the vectorized coalescer.
func (p *SMPort) AccessGlobalVecs(now uint64, vecs []AddrVec) uint64 {
	p.sectors = coalesceVecsInto(p.sectors[:0], &p.secSet, p.sys.cfg, vecs)
	return p.globalTiming(now, len(vecs) > 0 && vecs[0].Store)
}

// globalTiming issues the coalesced sectors in p.sectors through the LSU
// and memory hierarchy, returning the completion cycle.
func (p *SMPort) globalTiming(now uint64, store bool) uint64 {
	cfg := p.sys.cfg
	done := now
	for _, sec := range p.sectors {
		p.GlobalTransactions++
		// LSU issues one transaction per cycle.
		issue := now
		if p.lsuFree > issue {
			issue = p.lsuFree
		}
		p.lsuFree = issue + 1
		var t uint64
		if store {
			// Write-through, write-evict L1 (GPGPU-Sim's Volta policy);
			// the store retires at the write buffer while the write
			// drains through L2 in the background.
			p.l1.Invalidate(sec)
			p.sys.accessL2(issue, sec)
			t = issue + 1
		} else if p.l1.Access(sec) {
			p.L1Hits++
			t = issue + uint64(cfg.L1HitLatency)
		} else {
			p.L1Misses++
			t = p.sys.accessL2(issue+uint64(cfg.L1HitLatency), sec)
		}
		if t > done {
			done = t
		}
	}
	return done
}

// AccessShared serves one warp instruction's shared-memory accesses,
// serializing bank conflicts.
func (p *SMPort) AccessShared(now uint64, reqs []Request) uint64 {
	return p.sharedTiming(now, sharedConflictPasses(&p.banks, p.sys.cfg, reqs))
}

// AccessSharedVecs is AccessShared for batched warp access groups.
func (p *SMPort) AccessSharedVecs(now uint64, vecs []AddrVec) uint64 {
	return p.sharedTiming(now, sharedConflictPassesVecs(&p.conflict, &p.banks, p.sys.cfg, vecs))
}

// sharedTiming charges one shared-memory access of the given pass count.
func (p *SMPort) sharedTiming(now uint64, passes int) uint64 {
	cfg := p.sys.cfg
	p.SharedAccesses++
	p.SharedConflicts += uint64(passes - 1)
	issue := now
	if p.sharedFree > issue {
		issue = p.sharedFree
	}
	p.sharedFree = issue + uint64(passes)
	return issue + uint64(cfg.SharedLatency) + uint64(passes-1)
}

// L1HitRate returns this SM's L1 hit rate.
func (p *SMPort) L1HitRate() float64 {
	t := p.L1Hits + p.L1Misses
	if t == 0 {
		return 0
	}
	return float64(p.L1Hits) / float64(t)
}
