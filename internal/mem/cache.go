package mem

// Cache is a sectored set-associative cache with LRU replacement. Tags are
// tracked per line; validity per 32-byte sector within the line, matching
// Volta's sectored caches. Lookups fill immediately (latency is charged by
// the caller), so the model captures hit rates and bandwidth, not MSHR
// protocol detail.
type Cache struct {
	lineBytes   int
	sectorBytes int
	ways        int
	nSets       uint64
	sets        []cacheSet
	tick        uint64

	Hits, Misses uint64
}

type cacheSet struct {
	lines []cacheLine
}

type cacheLine struct {
	tag     uint64
	valid   bool
	sectors uint32 // bitmask of valid sectors
	lastUse uint64
}

// NewCache builds a cache of size bytes with the given line size,
// associativity and sector granularity.
func NewCache(size, lineBytes, ways, sectorBytes int) *Cache {
	nSets := size / (lineBytes * ways)
	if nSets < 1 {
		nSets = 1
	}
	c := &Cache{
		lineBytes:   lineBytes,
		sectorBytes: sectorBytes,
		ways:        ways,
		nSets:       uint64(nSets),
		sets:        make([]cacheSet, nSets),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]cacheLine, ways)
	}
	return c
}

// Access looks up the sector containing addr, filling it on a miss, and
// reports whether it hit. Stores allocate too (write-allocate), keeping
// the model simple and symmetric.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	lineAddr := addr / uint64(c.lineBytes)
	set := &c.sets[lineAddr%c.nSets]
	tag := lineAddr / c.nSets
	sector := uint32(1) << ((addr % uint64(c.lineBytes)) / uint64(c.sectorBytes))

	for i := range set.lines {
		l := &set.lines[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.tick
			if l.sectors&sector != 0 {
				c.Hits++
				return true
			}
			l.sectors |= sector // sector miss within a present line
			c.Misses++
			return false
		}
	}
	// Miss without a matching line: fill an invalid way, else evict LRU.
	victim := &set.lines[0]
	for i := range set.lines {
		l := &set.lines[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.sectors = sector
	victim.lastUse = c.tick
	c.Misses++
	return false
}

// Invalidate drops the line containing addr if present (used for
// write-evict policies).
func (c *Cache) Invalidate(addr uint64) {
	lineAddr := addr / uint64(c.lineBytes)
	set := &c.sets[lineAddr%c.nSets]
	tag := lineAddr / c.nSets
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == tag {
			set.lines[i].valid = false
			set.lines[i].sectors = 0
			return
		}
	}
}

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
