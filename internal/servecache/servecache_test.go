package servecache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetPutCounters(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	if !c.Put("a", []byte("table a")) {
		t.Fatal("Put rejected a fitting payload")
	}
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("table a")) {
		t.Fatalf("Get(a) = %q, %t", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 || st.Bytes != 7 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry, 7 bytes", st)
	}
	if st.MaxBytes != 1<<20 {
		t.Errorf("MaxBytes = %d, want %d", st.MaxBytes, 1<<20)
	}
}

// The stored payload is the cache's own copy: mutating the caller's
// buffer after Put must not reach readers — cached bytes are immutable
// and shared across requests.
func TestPutCopies(t *testing.T) {
	c := New(1 << 20)
	buf := []byte("original")
	c.Put("k", buf)
	copy(buf, "CLOBBER!")
	got, _ := c.Get("k")
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("cached payload aliased the caller's buffer: %q", got)
	}
}

// Re-storing an existing key is a no-op: same content address, same
// bytes by determinism.
func TestPutDuplicateKey(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", []byte("first"))
	if !c.Put("k", []byte("first")) {
		t.Fatal("duplicate Put reported not cached")
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("duplicate Put changed accounting: %+v", st)
	}
}

// Eviction is LRU over the byte budget: the least-recently-used entry
// goes first, a Get refreshes recency, and the counters record it.
func TestLRUEviction(t *testing.T) {
	c := New(30)
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 10))
	c.Put("c", make([]byte, 10))
	c.Get("a") // refresh: b is now the eviction candidate
	c.Put("d", make([]byte, 10))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; want it evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted; want b only", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 30 {
		t.Errorf("stats = %+v, want 1 eviction, 3 entries, 30 bytes", st)
	}
}

// A payload larger than the whole budget is rejected outright instead
// of flushing every other entry for a value that cannot fit.
func TestOversizePayloadRejected(t *testing.T) {
	c := New(10)
	c.Put("small", make([]byte, 4))
	if c.Put("huge", make([]byte, 11)) {
		t.Fatal("oversize Put reported cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversize Put evicted the resident entry")
	}
}

// MaxBytes 0 disables storage without disabling the API.
func TestZeroBudgetDisables(t *testing.T) {
	c := New(0)
	if c.Put("k", nil) || c.Put("k", []byte("x")) {
		t.Fatal("zero-budget cache accepted a payload")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-budget cache hit")
	}
}

// Request goroutines hammer one cache concurrently; run under -race
// this pins the locking, and the byte budget must hold throughout.
func TestConcurrentAccess(t *testing.T) {
	const budget = 1 << 12
	c := New(budget)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				if val, ok := c.Get(key); ok {
					if string(val) != key {
						t.Errorf("Get(%s) = %q", key, val)
					}
					continue
				}
				c.Put(key, []byte(key))
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > budget {
		t.Errorf("bytes %d exceed budget %d", st.Bytes, budget)
	}
}
