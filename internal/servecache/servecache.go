// Package servecache is the serving layer's bounded, content-addressed
// result cache. The simulator is deterministic end-to-end, so a
// rendered experiment table is fully determined by its content address
// (experiments.ExperimentKey: experiment ID + the table-affecting
// Options knobs) — a repeated request can be served the byte-identical
// cached table without re-simulating anything. Entries are immutable
// byte slices shared read-only across requests, the same discipline
// the simlint frozen analyzer pins for decoded-kernel programs; the
// cache itself is mutex-guarded (guardedby-annotated) so any number of
// request goroutines may hit it concurrently.
package servecache

import (
	"container/list"
	"sync"
)

// Stats is the cache's counter snapshot, surfaced on cmd/simd's
// /statsz endpoint (the //simlint:emitter contract: every counter
// below must appear there, so none can be silently dropped).
type Stats struct {
	// Hits counts Get calls served from the cache — requests that cost
	// zero simulation.
	Hits int64
	// Misses counts Get calls that found nothing.
	Misses int64
	// Evictions counts entries dropped to keep the cache within its
	// byte budget.
	Evictions int64
	// Entries is the current entry count.
	Entries int64
	// Bytes is the current payload total; at most MaxBytes.
	Bytes int64
	// MaxBytes is the configured budget (0 = caching disabled).
	MaxBytes int64
}

// Cache is a bounded content-addressed byte cache with LRU eviction.
// The zero value is not usable; call New.
type Cache struct {
	mu sync.Mutex
	//simlint:guardedby mu
	entries map[string]*list.Element
	// lru orders entries most-recently-used first; evictions pop the
	// back.
	//simlint:guardedby mu
	lru *list.List
	//simlint:guardedby mu
	bytes int64
	//simlint:guardedby mu
	hits int64
	//simlint:guardedby mu
	misses int64
	//simlint:guardedby mu
	evictions int64

	// maxBytes is immutable after New; 0 disables storage so a serving
	// process without a cache budget still runs, it just always misses.
	maxBytes int64
}

// entry is one cached payload; val is immutable once stored.
type entry struct {
	key string
	val []byte
}

// New returns a cache bounded at maxBytes of payload (metadata
// overhead is not counted). maxBytes <= 0 disables caching: every Get
// misses and Put is a no-op, so callers need no nil checks.
func New(maxBytes int64) *Cache {
	c := &Cache{maxBytes: max(maxBytes, 0)}
	c.mu.Lock()
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.mu.Unlock()
	return c
}

// Get returns the payload stored under key. The returned slice is the
// cache's own immutable copy, shared with every other requester —
// callers must treat it as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores a copy of val under key and reports whether it was
// cached. Payloads larger than the whole budget are rejected rather
// than evicting everything else; storing under an existing key is a
// no-op (content addressing: same key, same bytes — re-storing could
// only churn the copy).
func (c *Cache) Put(key string, val []byte) bool {
	if c.maxBytes == 0 || int64(len(val)) > c.maxBytes {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return true
	}
	e := &entry{key: key, val: append([]byte(nil), val...)}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(len(e.val))
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= int64(len(victim.val))
		c.evictions++
	}
	return true
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   int64(c.lru.Len()),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
