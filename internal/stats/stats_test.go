package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice mean/variance should be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	in := []float64{5, 1, 9}
	Median(in)
	if in[0] != 5 {
		t.Error("Median must not mutate its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); !approx(c, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !approx(c, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", c)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if c := Correlation(xs, flat); c != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", c)
	}
}

// Property: correlation is invariant under positive affine transforms.
func TestCorrelationAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		zs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + 0.3*rng.NormFloat64()
			zs[i] = 5*ys[i] + 11
		}
		return approx(Correlation(xs, ys), Correlation(xs, zs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	slope, intercept := LinearFit(xs, ys)
	if !approx(slope, 2, 1e-12) || !approx(intercept, 5, 1e-12) {
		t.Errorf("LinearFit = %v, %v; want 2, 5", slope, intercept)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	want := []float64{100, 200, 0}
	got := []float64{110, 180, 5}
	// |10|/100 = .1, |20|/200 = .1, zero entry skipped → mean .1
	if e := MeanAbsPctError(want, got); !approx(e, 0.1, 1e-12) {
		t.Errorf("MeanAbsPctError = %v, want 0.1", e)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, -3, 99}
	h := NewHistogram(xs, 0, 3, 3)
	if h.Total != 6 {
		t.Fatalf("Total = %d", h.Total)
	}
	// -3 clamps to bucket 0, 99 clamps to bucket 2.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if c := h.BucketCenter(1); !approx(c, 1.5, 1e-12) {
		t.Errorf("BucketCenter(1) = %v", c)
	}
}

func TestCorrelationPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Correlation([]float64{1}, []float64{1, 2})
}
