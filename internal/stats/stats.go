// Package stats provides the small statistical toolkit the paper's
// evaluation methodology needs: Pearson correlation (the 99.6 % IPC
// correlation headline), standard deviation (the "< 5 %" cycle-accuracy
// claim for Figure 14a), medians (Figure 16 plots median latencies) and
// histograms (Figure 15 latency distributions).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (the mean of the two central elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using nearest-
// rank interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Correlation returns the Pearson correlation coefficient between xs and ys,
// which must have equal nonzero length. Returns 0 when either series has
// zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: Correlation needs equal-length nonempty series")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of ys against xs.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: LinearFit needs equal-length nonempty series")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// MeanAbsPctError returns the mean of |got-want|/|want| over the paired
// series, skipping entries where want is zero. It is the per-point error
// metric EXPERIMENTS.md reports next to each correlation.
func MeanAbsPctError(want, got []float64) float64 {
	if len(want) != len(got) {
		panic("stats: MeanAbsPctError needs equal-length series")
	}
	var s float64
	var n int
	for i := range want {
		if want[i] == 0 {
			continue
		}
		s += math.Abs(got[i]-want[i]) / math.Abs(want[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Histogram counts xs into nbuckets equal-width buckets spanning [lo, hi).
// Values outside the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of xs with nbuckets buckets over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbuckets int) *Histogram {
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbuckets)}
	if hi <= lo || nbuckets == 0 {
		return h
	}
	w := (hi - lo) / float64(nbuckets)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbuckets {
			b = nbuckets - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
