package cuda

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	cfg := gpu.TitanV()
	cfg.NumSMs = 2
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMallocAlignmentAndGrowth(t *testing.T) {
	m := NewDeviceMemory()
	a := m.Malloc(10)
	b := m.Malloc(10)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations not 256-aligned: %d, %d", a, b)
	}
	if b <= a {
		t.Errorf("allocator did not advance: %d then %d", a, b)
	}
	// Writing far beyond current size must grow transparently.
	m.Write(1<<20, []byte{42})
	buf := make([]byte, 1)
	m.Read(1<<20, buf)
	if buf[0] != 42 {
		t.Errorf("read back %d", buf[0])
	}
	// Reads beyond written extent return zeros.
	m.Read(1<<21, buf)
	if buf[0] != 0 {
		t.Error("unwritten memory should read zero")
	}
}

func TestMatrixRoundTripAllPrecisions(t *testing.T) {
	d := testDevice(t)
	for _, p := range []wmma.Precision{wmma.F16, wmma.F32, wmma.S32, wmma.S8, wmma.U8} {
		src := tensor.New(5, 7, tensor.RowMajor)
		switch {
		case p == wmma.U8:
			src.FillFunc(func(i, j int) float64 { return float64((i*7 + j) % 200) })
		case p.IsInt():
			src.FillFunc(func(i, j int) float64 { return float64((i*7+j)%200 - 100) })
		default:
			src.FillFunc(func(i, j int) float64 { return float64(i*7+j) / 8 })
		}
		addr := d.UploadMatrix(src, p)
		got := d.ReadMatrix(addr, 5, 7, tensor.RowMajor, p)
		if diff := tensor.MaxAbsDiff(src, got); diff != 0 {
			t.Errorf("%v: round trip differs by %g", p, diff)
		}
	}
}

func TestMatrixLayoutsPreserved(t *testing.T) {
	d := testDevice(t)
	src := tensor.New(4, 6, tensor.ColMajor)
	src.FillSequential()
	addr := d.UploadMatrix(src, wmma.F32)
	got := d.ReadMatrix(addr, 4, 6, tensor.ColMajor, wmma.F32)
	if !tensor.Equal(src, got, 0) {
		t.Error("column-major round trip failed")
	}
	// Reading with the other layout must still see the same logical
	// values only if re-encoded; reading raw col-major data as row-major
	// gives transposed-ish garbage — verify they differ to catch layout
	// bugs that would silently alias.
	rowView := d.ReadMatrix(addr, 4, 6, tensor.RowMajor, wmma.F32)
	if tensor.Equal(src, rowView, 0) {
		t.Error("layout mismatch should change element positions for a non-symmetric fill")
	}
}

func TestElemBytes(t *testing.T) {
	cases := map[wmma.Precision]int{
		wmma.F16: 2, wmma.F32: 4, wmma.S32: 4, wmma.S8: 1, wmma.U8: 1,
		wmma.S4: 1, wmma.U4: 1, // sub-byte stored one per byte
	}
	for p, want := range cases {
		if got := ElemBytes(p); got != want {
			t.Errorf("ElemBytes(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestLaunchAndFunctionalAgree(t *testing.T) {
	// The same kernel must produce identical memory through the timed
	// and functional paths.
	b := ptx.NewBuilder("square")
	out := b.Param("out", ptx.U64)
	tid, v, addr := b.Reg(), b.Reg(), b.Reg()
	b.Mov(ptx.U32, tid, ptx.SR(ptx.SRegTidX))
	b.Mul(ptx.U32, v, ptx.R(tid), ptx.R(tid))
	b.MulWide(addr, ptx.R(tid), ptx.Imm(4))
	b.Add(ptx.U64, addr, ptx.R(addr), ptx.R(out))
	b.St(ptx.Global, 32, ptx.R(addr), []ptx.Operand{ptx.R(v)})
	b.Exit()
	k := b.MustBuild()

	dTimed := testDevice(t)
	a1 := dTimed.Mem.Malloc(256)
	if _, err := dTimed.Launch(k, ptx.D1(1), ptx.D1(64), a1); err != nil {
		t.Fatal(err)
	}
	dFunc := testDevice(t)
	a2 := dFunc.Mem.Malloc(256)
	if err := dFunc.RunFunctional(k, ptx.D1(1), ptx.D1(64), a2); err != nil {
		t.Fatal(err)
	}
	g1 := dTimed.ReadMatrix(a1, 1, 64, tensor.RowMajor, wmma.S32)
	g2 := dFunc.ReadMatrix(a2, 1, 64, tensor.RowMajor, wmma.S32)
	if !tensor.Equal(g1, g2, 0) {
		t.Error("timed and functional executions disagree")
	}
	if g1.At(0, 9) != 81 {
		t.Errorf("square(9) = %v", g1.At(0, 9))
	}
}

// A Turing INT8 mma kernel must run end to end on the RTX 2080 timing
// configuration.
func TestTuringInt8UnderTiming(t *testing.T) {
	cfgW := wmma.Config{Arch: wmma.Turing, Shape: wmma.M16N16K16,
		ALayout: tensor.RowMajor, BLayout: tensor.ColMajor,
		AType: wmma.S8, CType: wmma.S32, DType: wmma.S32}
	b := ptx.NewBuilder("turing_int8")
	pa := b.Param("a", ptx.U64)
	pb := b.Param("b", ptx.U64)
	pc := b.Param("c", ptx.U64)
	pd := b.Param("d", ptx.U64)
	fa := b.WmmaLoad(cfgW.Arch, cfgW.Shape, wmma.MatrixA, cfgW.ALayout, cfgW.AType, ptx.R(pa), ptx.Imm(16))
	fb := b.WmmaLoad(cfgW.Arch, cfgW.Shape, wmma.MatrixB, cfgW.BLayout, cfgW.AType, ptx.R(pb), ptx.Imm(16))
	fc := b.WmmaLoad(cfgW.Arch, cfgW.Shape, wmma.MatrixC, tensor.RowMajor, cfgW.CType, ptx.R(pc), ptx.Imm(16))
	fd := b.WmmaMMA(cfgW, fa, fb, fc)
	b.WmmaStore(cfgW.Arch, cfgW.Shape, tensor.RowMajor, cfgW.DType, ptx.R(pd), fd, ptx.Imm(16))
	b.Exit()
	k := b.MustBuild()

	cfg := gpu.RTX2080()
	cfg.NumSMs = 1
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(16, 16, tensor.RowMajor)
	bm := tensor.New(16, 16, tensor.ColMajor)
	c := tensor.New(16, 16, tensor.RowMajor)
	a.FillFunc(func(i, j int) float64 { return float64((i+j)%16 - 8) })
	bm.FillFunc(func(i, j int) float64 { return float64((i*j)%16 - 8) })
	c.FillConst(5)
	da := dev.UploadMatrix(a, wmma.S8)
	db := dev.UploadMatrix(bm, wmma.S8)
	dc := dev.UploadMatrix(c, wmma.S32)
	dd := dev.MallocMatrix(16, 16, wmma.S32)
	st, err := dev.Launch(k, ptx.D1(1), ptx.D1(32), da, db, dc, dd)
	if err != nil {
		t.Fatal(err)
	}
	got := dev.ReadMatrix(dd, 16, 16, tensor.RowMajor, wmma.S32)
	want := tensor.Gemm(a, bm, c, tensor.RowMajor)
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Errorf("turing int8 mma differs by %g", d)
	}
	// Table I: the 8-bit 16×16×16 sequence totals 59 cycles; the end to
	// end latency must be at least that.
	if st.Cycles < 59 {
		t.Errorf("cycles = %d, below the Table I floor", st.Cycles)
	}
	if st.TensorOps != 1 {
		t.Errorf("tensor ops = %d", st.TensorOps)
	}
}
