// Package cuda is the thin runtime layer between host code and the
// simulated GPU — the analog of the CUDA runtime API calls the paper had
// to add to GPGPU-Sim to run CUTLASS. It provides device-memory
// allocation, host↔device transfers of typed matrices, and kernel launch
// onto the timing simulator (or a fast functional run).
package cuda

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/gpu"
	"repro/internal/ptx"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// DeviceMemory is a growable flat device memory.
type DeviceMemory struct {
	data []byte
	brk  uint64
}

// NewDeviceMemory allocates an empty device memory.
func NewDeviceMemory() *DeviceMemory { return &DeviceMemory{} }

// Read implements ptx.Memory.
func (m *DeviceMemory) Read(addr uint64, buf []byte) {
	m.ensure(addr + uint64(len(buf)))
	copy(buf, m.data[addr:])
}

// Write implements ptx.Memory.
func (m *DeviceMemory) Write(addr uint64, data []byte) {
	m.ensure(addr + uint64(len(data)))
	copy(m.data[addr:], data)
}

func (m *DeviceMemory) ensure(n uint64) {
	if uint64(len(m.data)) >= n {
		return
	}
	grown := make([]byte, max(n, uint64(len(m.data))*2+4096))
	copy(grown, m.data)
	m.data = grown
}

// Malloc reserves n bytes and returns the (256-byte aligned) device
// address, like cudaMalloc.
func (m *DeviceMemory) Malloc(n int) uint64 {
	addr := (m.brk + 255) &^ 255
	m.brk = addr + uint64(n)
	m.ensure(m.brk)
	return addr
}

// Device couples a simulator with a device memory.
type Device struct {
	Sim *gpu.Simulator
	Mem *DeviceMemory
	// MaxCycles bounds every Launch on this device (0 = the simulator's
	// generous backstop) — the watchdog that reaps runaway kernels.
	MaxCycles uint64
}

// NewDevice builds a device for the GPU configuration.
func NewDevice(cfg gpu.Config) (*Device, error) {
	sim, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Device{Sim: sim, Mem: NewDeviceMemory()}, nil
}

// MustNewDevice is NewDevice but panics on error.
func MustNewDevice(cfg gpu.Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// ElemBytes returns the device storage size of one element. Sub-byte
// types (s4/u4) are stored one element per byte in this model; the timing
// side still charges their architectural bit width.
func ElemBytes(p wmma.Precision) int {
	b := p.Bits() / 8
	if b == 0 {
		b = 1
	}
	return b
}

// MallocMatrix reserves device space for a rows×cols matrix of the given
// precision (tight stride).
func (d *Device) MallocMatrix(rows, cols int, p wmma.Precision) uint64 {
	return d.Mem.Malloc(rows * cols * ElemBytes(p))
}

// WriteMatrix encodes a host matrix into device memory at addr using the
// matrix's layout and stride.
func (d *Device) WriteMatrix(addr uint64, m *tensor.Matrix, p wmma.Precision) {
	eb := uint64(ElemBytes(p))
	var buf [4]byte
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			encodeInto(buf[:eb], p, m.At(i, j))
			d.Mem.Write(addr+eb*uint64(m.Index(i, j)), buf[:eb])
		}
	}
}

// UploadMatrix allocates device space for m and writes it; returns the
// device address.
func (d *Device) UploadMatrix(m *tensor.Matrix, p wmma.Precision) uint64 {
	addr := d.MallocMatrix(m.Rows, m.Cols, p)
	d.WriteMatrix(addr, m, p)
	return addr
}

// ReadMatrix decodes a rows×cols device matrix at addr into a host matrix
// with the given layout (tight stride).
func (d *Device) ReadMatrix(addr uint64, rows, cols int, layout tensor.Layout, p wmma.Precision) *tensor.Matrix {
	m := tensor.New(rows, cols, layout)
	eb := uint64(ElemBytes(p))
	var buf [4]byte
	m.FillFunc(func(i, j int) float64 {
		d.Mem.Read(addr+eb*uint64(m.Index(i, j)), buf[:eb])
		return decodeFrom(buf[:eb], p)
	})
	return m
}

func encodeInto(buf []byte, p wmma.Precision, v float64) {
	switch p {
	case wmma.F16:
		binary.LittleEndian.PutUint16(buf, fp16.FromFloat64(v).Bits())
	case wmma.F32:
		binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(v)))
	case wmma.S32:
		binary.LittleEndian.PutUint32(buf, uint32(int32(v)))
	case wmma.S8, wmma.U8, wmma.S4, wmma.U4:
		buf[0] = byte(wmma.QuantizeInt(p, v))
	default:
		panic(fmt.Sprintf("cuda: unsupported element type %v", p))
	}
}

func decodeFrom(buf []byte, p wmma.Precision) float64 {
	switch p {
	case wmma.F16:
		return fp16.FromBits(binary.LittleEndian.Uint16(buf)).Float64()
	case wmma.F32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
	case wmma.S32:
		return float64(int32(binary.LittleEndian.Uint32(buf)))
	case wmma.S8, wmma.S4:
		return float64(int8(buf[0]))
	case wmma.U8, wmma.U4:
		return float64(buf[0])
	default:
		panic(fmt.Sprintf("cuda: unsupported element type %v", p))
	}
}

// Launch runs a kernel on the timing simulator.
func (d *Device) Launch(k *ptx.Kernel, grid, block ptx.Dim3, args ...uint64) (*gpu.Stats, error) {
	return d.Sim.Run(gpu.LaunchSpec{Kernel: k, Grid: grid, Block: block, Args: args, Global: d.Mem,
		MaxCycles: d.MaxCycles})
}

// LaunchSpec runs a fully specified launch (sampling, tracing) on the
// timing simulator.
func (d *Device) LaunchSpec(spec gpu.LaunchSpec) (*gpu.Stats, error) {
	spec.Global = d.Mem
	return d.Sim.Run(spec)
}

// RunFunctional executes the kernel functionally (no timing) — fast path
// for correctness tests of large kernel sweeps.
func (d *Device) RunFunctional(k *ptx.Kernel, grid, block ptx.Dim3, args ...uint64) error {
	return ptx.RunGrid(k, d.Mem, grid, block, args)
}
