package tcore

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wmma"
)

// The decomposition property at the heart of the model: executing the HMMA
// schedule micro-op by micro-op must produce exactly the same bits as the
// monolithic wmma.mma functional model, for every configuration, on
// arbitrary (not merely exactly-representable) inputs.
func TestExecuteVoltaMatchesMMABitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for _, cfg := range wmma.VoltaConfigs() {
		for trial := 0; trial < 4; trial++ {
			a := tensor.New(16, 16, cfg.ALayout)
			b := tensor.New(16, 16, cfg.BLayout)
			c := tensor.New(16, 16, tensor.RowMajor)
			a.FillFunc(func(int, int) float64 { return rng.NormFloat64() })
			b.FillFunc(func(int, int) float64 { return rng.NormFloat64() })
			c.FillFunc(func(int, int) float64 { return rng.NormFloat64() * 10 })
			want := wmma.MustMMA(cfg, a, b, c, tensor.RowMajor)
			got, err := ExecuteVolta(cfg, a, b, c, tensor.RowMajor)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			if d := tensor.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("%v trial %d: decomposed execution differs by %g", cfg, trial, d)
			}
		}
	}
}

func TestExecuteTuringMatchesMMABitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, cfg := range wmma.TuringConfigs() {
		for trial := 0; trial < 3; trial++ {
			a := tensor.New(cfg.Shape.M, cfg.Shape.K, cfg.ALayout)
			b := tensor.New(cfg.Shape.K, cfg.Shape.N, cfg.BLayout)
			c := tensor.New(cfg.Shape.M, cfg.Shape.N, tensor.RowMajor)
			if cfg.AType.IsInt() {
				a.FillRandomInt(rng, -8, 7)
				b.FillRandomInt(rng, -8, 7)
				c.FillRandomInt(rng, -1000, 1000)
			} else {
				a.FillFunc(func(int, int) float64 { return rng.NormFloat64() })
				b.FillFunc(func(int, int) float64 { return rng.NormFloat64() })
				c.FillFunc(func(int, int) float64 { return rng.NormFloat64() * 10 })
			}
			want := wmma.MustMMA(cfg, a, b, c, tensor.RowMajor)
			got, err := ExecuteTuring(cfg, a, b, c, tensor.RowMajor)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			if d := tensor.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("%v trial %d: decomposed execution differs by %g", cfg, trial, d)
			}
		}
	}
}

func TestExecuteRejectsWrongArch(t *testing.T) {
	volta := wmma.VoltaConfigs()[0]
	turing := wmma.TuringConfigs()[0]
	if _, err := ExecuteVolta(turing, nil, nil, nil, tensor.RowMajor); err == nil {
		t.Error("ExecuteVolta accepted a Turing config")
	}
	if _, err := ExecuteTuring(volta, nil, nil, nil, tensor.RowMajor); err == nil {
		t.Error("ExecuteTuring accepted a Volta config")
	}
}

func TestModeFor(t *testing.T) {
	cfg := wmma.VoltaConfigs()[0]
	cfg.CType = wmma.F32
	if ModeFor(cfg) != MixedPrecision {
		t.Error("F32 accumulator should select mixed precision")
	}
	cfg.CType = wmma.F16
	if ModeFor(cfg) != FP16 {
		t.Error("F16 accumulator should select FP16 mode")
	}
}
