// Package tcore models the tensor core microarchitecture of Section IV of
// the paper: how a warp-level wmma.mma decomposes into HMMA machine
// instructions organized as "sets" and "steps", which operand sub-tiles
// each threadgroup touches in each of them (Figures 10 and 11, Table III),
// and how long the HMMA sequence takes (Figure 9 and Table I).
//
// The decomposition here is functional and bit-exact with respect to
// internal/wmma's MMA: executing the HMMA micro-ops in issue order with
// four-element-dot-product arithmetic produces the same result as the
// monolithic instruction, which the tests assert for every configuration.
package tcore

import (
	"fmt"

	"repro/internal/wmma"
)

// Mode selects the Volta tensor core operating mode.
type Mode int

const (
	// MixedPrecision reads FP16 A/B and an FP32 accumulator; wmma.mma
	// becomes 16 HMMA instructions (4 sets × 4 steps, Figure 9a).
	MixedPrecision Mode = iota
	// FP16 reads FP16 for all three operands; wmma.mma becomes 8 HMMA
	// instructions (4 sets × 2 steps, Figure 9b).
	FP16
)

func (m Mode) String() string {
	if m == MixedPrecision {
		return "mixed"
	}
	return "fp16"
}

// Steps returns the number of HMMA steps per set in this mode.
func (m Mode) Steps() int {
	if m == MixedPrecision {
		return 4
	}
	return 2
}

// NumSets is the number of HMMA sets per wmma.mma on Volta; each set
// consumes one 4-element chunk of the K dimension.
const NumSets = 4

// SubTile is an inclusive element range [RowLo:RowHi, ColLo:ColHi] of an
// operand tile, in the [Row_Start : Row_End, Col_Start : Col_End] notation
// of Table II.
type SubTile struct{ RowLo, RowHi, ColLo, ColHi int }

func (s SubTile) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", s.RowLo, s.RowHi, s.ColLo, s.ColHi)
}

// Rows and Cols return the extent sizes.
func (s SubTile) Rows() int { return s.RowHi - s.RowLo + 1 }
func (s SubTile) Cols() int { return s.ColHi - s.ColLo + 1 }

// TGWork is the work one threadgroup performs during one HMMA instruction:
// the A sub-tile it multiplies, the B sub-tile, and the C/D sub-tile it
// accumulates into.
type TGWork struct {
	A, B, D SubTile
}

// HMMA describes one warp-wide HMMA instruction: its set and step
// annotation and the per-threadgroup sub-tiles it touches.
type HMMA struct {
	Index int // issue-order position, 0-based
	Set   int // 1-based, as in the SASS disassembly
	Step  int // 0-based STEP<n> annotation
	TG    [wmma.NumThreadgroups]TGWork
}

// VoltaSchedule returns the HMMA decomposition of one Volta wmma.mma in
// the given mode, in issue order.
//
// Derivation (Sections III-D/E): threadgroup t owns four A rows starting
// at aBase(t) and a 4×8 slice of the accumulator at cBase(t). Set n
// consumes K chunk [4(n-1), 4n-1]. In mixed precision, step 0 and 1 cover
// accumulator columns cBase.Col..+3 (the B columns loaded by the octet's
// lower threadgroup) with A row pairs 0-1 and 2-3; steps 2 and 3 repeat
// for columns +4..+7 (the upper threadgroup's B columns). In FP16 mode the
// two steps each cover all four A rows and one 4-column half.
func VoltaSchedule(mode Mode) []HMMA {
	var out []HMMA
	steps := mode.Steps()
	for set := 1; set <= NumSets; set++ {
		kLo := 4 * (set - 1)
		for step := 0; step < steps; step++ {
			h := HMMA{Index: len(out), Set: set, Step: step}
			for tg := 0; tg < wmma.NumThreadgroups; tg++ {
				h.TG[tg] = voltaTGWork(mode, tg, kLo, step)
			}
			out = append(out, h)
		}
	}
	return out
}

func voltaTGWork(mode Mode, tg, kLo, step int) TGWork {
	aBase := voltaARowBase(tg)
	cBase := voltaCBase(tg)
	var rowLo, rowN, colOff int
	if mode == MixedPrecision {
		rowLo = aBase + 2*(step%2)
		rowN = 2
		colOff = 4 * (step / 2)
	} else {
		rowLo = aBase
		rowN = 4
		colOff = 4 * step
	}
	return TGWork{
		A: SubTile{rowLo, rowLo + rowN - 1, kLo, kLo + 3},
		B: SubTile{kLo, kLo + 3, cBase.col + colOff, cBase.col + colOff + 3},
		D: SubTile{rowLo, rowLo + rowN - 1, cBase.col + colOff, cBase.col + colOff + 3},
	}
}

// voltaARowBase mirrors the A segment assignment of internal/wmma
// (Figure 7a): threadgroups 0/2 → rows 0-3, 4/6 → 4-7, 1/3 → 8-11,
// 5/7 → 12-15.
func voltaARowBase(tg int) int {
	switch tg {
	case 0, 2:
		return 0
	case 4, 6:
		return 4
	case 1, 3:
		return 8
	default:
		return 12
	}
}

type rc struct{ row, col int }

// voltaCBase mirrors the C segment corners of Figure 7b.
func voltaCBase(tg int) rc {
	switch tg {
	case 0:
		return rc{0, 0}
	case 2:
		return rc{0, 8}
	case 4:
		return rc{4, 0}
	case 6:
		return rc{4, 8}
	case 1:
		return rc{8, 0}
	case 3:
		return rc{8, 8}
	case 5:
		return rc{12, 0}
	default:
		return rc{12, 8}
	}
}

// SetExtents returns, for each set, the union over all threadgroups of the
// A, B and accumulator sub-tiles that set touches — the shaded regions of
// Figure 10a: set n multiplies A[:, 4(n-1):4n-1] by B[4(n-1):4n-1, :] into
// the whole 16×16 accumulator.
func SetExtents(mode Mode) [NumSets]TGWork {
	var out [NumSets]TGWork
	var seen [NumSets]bool
	for _, h := range VoltaSchedule(mode) {
		s := h.Set - 1
		for tg := range h.TG {
			w := h.TG[tg]
			if !seen[s] {
				out[s], seen[s] = w, true
				continue
			}
			out[s].A = unionSub(out[s].A, w.A)
			out[s].B = unionSub(out[s].B, w.B)
			out[s].D = unionSub(out[s].D, w.D)
		}
	}
	return out
}

func unionSub(a, b SubTile) SubTile {
	if b.RowLo < a.RowLo {
		a.RowLo = b.RowLo
	}
	if b.RowHi > a.RowHi {
		a.RowHi = b.RowHi
	}
	if b.ColLo < a.ColLo {
		a.ColLo = b.ColLo
	}
	if b.ColHi > a.ColHi {
		a.ColHi = b.ColHi
	}
	return a
}

// OuterProductCell is one row of Table III: the symbolic outer-product
// computation each half-octet performs in a given set and step. Lowercase
// letters a–d (and e–h) name threadgroup X's (and X+4's) four 4×4 A
// blocks in K order; uppercase A–D (and E–H) name the B blocks loaded by
// threadgroup X (and X+4).
type OuterProductCell struct {
	Set, Step int
	TGX       string // computation of threadgroup X
	TGX4      string // computation of threadgroup X+4
}

// TableIII reproduces Table III of the paper symbolically.
func TableIII() []OuterProductCell {
	var out []OuterProductCell
	for set := 1; set <= NumSets; set++ {
		low := string(rune('a' + set - 1))
		high := string(rune('e' + set - 1))
		capLow := string(rune('A' + set - 1))
		capHigh := string(rune('E' + set - 1))
		for step := 0; step < 4; step++ {
			rows := "[0:1]"
			if step%2 == 1 {
				rows = "[2:3]"
			}
			bBlock := capLow
			if step >= 2 {
				bBlock = capHigh
			}
			out = append(out, OuterProductCell{
				Set:  set,
				Step: step,
				TGX:  low + rows + "×" + bBlock,
				TGX4: high + rows + "×" + bBlock,
			})
		}
	}
	return out
}
