package tcore

import (
	"fmt"

	"repro/internal/wmma"
)

// Timing models of the HMMA sequences, calibrated against the cumulative
// clock-cycle measurements the paper reports (Figure 9 for Volta, Table I
// for Turing, collected with the clock-patching microbenchmark of
// Figure 6: read %clock before the first and after the n-th HMMA).

// Timing is the measured/derived cycle behaviour of one wmma.mma's HMMA
// expansion.
type Timing struct {
	Arch        wmma.Arch
	Name        string
	StepsPerSet int
	// Cumulative[i] is the clock delta from just before HMMA 0 to just
	// after HMMA i completes.
	Cumulative []int
}

// NumHMMA returns the number of HMMA instructions in the sequence.
func (t Timing) NumHMMA() int { return len(t.Cumulative) }

// Total returns the cycles for the complete sequence — the latency the
// simulator charges a wmma.mma instruction in the tensor core unit.
func (t Timing) Total() int { return t.Cumulative[len(t.Cumulative)-1] }

// Delta returns the incremental cycles of HMMA i (Cumulative[i] -
// Cumulative[i-1]; Delta(0) is Cumulative[0]).
func (t Timing) Delta(i int) int {
	if i == 0 {
		return t.Cumulative[0]
	}
	return t.Cumulative[i] - t.Cumulative[i-1]
}

// SetCumulative returns the cumulative cycles at the end of each set —
// the quantity Table I tabulates for Turing.
func (t Timing) SetCumulative() []int {
	var out []int
	for i := t.StepsPerSet - 1; i < len(t.Cumulative); i += t.StepsPerSet {
		out = append(out, t.Cumulative[i])
	}
	return out
}

// IssueOccupancy returns how many cycles the tensor core's issue stage is
// held by this sequence — the back-to-back initiation interval between two
// wmma.mma operations of different warps sharing the unit. It is the span
// from the first HMMA's issue to the last HMMA's issue plus one steady-
// state slot.
func (t Timing) IssueOccupancy() int {
	if len(t.Cumulative) == 1 {
		return t.Cumulative[0]
	}
	return t.Total() - t.Cumulative[0] + t.Delta(1)
}

// PipeModel is the parametric HMMA sequencing model of Section IV: a
// four-deep FEDP pipeline issuing HMMAs back to back, with a longer delta
// on the last step of each set (the operand buffers refill with the next
// set's register pairs) and a drain when the final result becomes
// architecturally visible.
type PipeModel struct {
	First  int // cycles until HMMA 0's completion is observable
	Within int // delta between consecutive HMMAs in the middle of a set
	Tail   int // delta of the last step of a non-final set
	Cross  int // delta of the first step of sets 2..n
	Final  int // delta of the very last HMMA (pipeline drain)
	Sets   int
	Steps  int // steps per set
}

// Cumulative generates the cumulative cycle sequence of the model.
func (p PipeModel) Cumulative() []int {
	var out []int
	c := p.First
	n := p.Sets * p.Steps
	for i := 0; i < n; i++ {
		if i > 0 {
			switch {
			case i == n-1:
				c += p.Final
			case i%p.Steps == p.Steps-1:
				c += p.Tail
			case i%p.Steps == 0:
				c += p.Cross
			default:
				c += p.Within
			}
		}
		out = append(out, c)
	}
	return out
}

// VoltaMixedPipe is the parametric model whose output matches Figure 9a
// exactly: a 2-cycle initiation interval, 4 cycles into the last step of
// each set, a 10-cycle first-result latency and a 10-cycle final drain.
func VoltaMixedPipe() PipeModel {
	return PipeModel{First: 10, Within: 2, Tail: 4, Cross: 2, Final: 10, Sets: NumSets, Steps: 4}
}

// VoltaFP16Pipe matches Figure 9b: FP16 mode issues half as many HMMAs
// but each set's second step lands 9 cycles after the first, ending 10
// cycles later than mixed precision overall — the paper's observation
// that FP16 mode is the slower of the two.
func VoltaFP16Pipe() PipeModel {
	return PipeModel{First: 12, Within: 9, Tail: 9, Cross: 4, Final: 13, Sets: NumSets, Steps: 2}
}

// fig9aMixed and fig9bFP16 are the cumulative clock cycles printed beside
// the SASS listings of Figure 9.
var (
	fig9aMixed = []int{10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44, 54}
	fig9bFP16  = []int{12, 21, 25, 34, 38, 47, 51, 64}
)

// VoltaTiming returns the calibrated Volta timing for the given mode.
func VoltaTiming(mode Mode) Timing {
	if mode == MixedPrecision {
		return Timing{Arch: wmma.Volta, Name: "volta-mixed", StepsPerSet: 4,
			Cumulative: append([]int(nil), fig9aMixed...)}
	}
	return Timing{Arch: wmma.Volta, Name: "volta-fp16", StepsPerSet: 2,
		Cumulative: append([]int(nil), fig9bFP16...)}
}

// turingKey identifies a Table I row.
type turingKey struct {
	shape wmma.Shape
	prec  string
}

// tableI holds the average cumulative clock cycles to execute all HMMA
// instructions up to set n on the RTX 2080, verbatim from Table I.
var tableI = map[turingKey][]int{
	{wmma.M16N16K16, "16bit-fp32acc"}: {42, 56, 78, 99},
	{wmma.M16N16K16, "16bit-fp16acc"}: {44, 52, 60, 74},
	{wmma.M16N16K16, "8bit"}:          {40, 44, 47, 59},
	{wmma.M32N8K16, "16bit-fp32acc"}:  {48, 60, 81, 104},
	{wmma.M32N8K16, "16bit-fp16acc"}:  {44, 52, 60, 74},
	{wmma.M32N8K16, "8bit"}:           {52, 55, 59, 73},
	{wmma.M8N32K16, "16bit-fp32acc"}:  {42, 56, 77, 99},
	{wmma.M8N32K16, "16bit-fp16acc"}:  {42, 50, 58, 72},
	{wmma.M8N32K16, "8bit"}:           {38, 42, 46, 56},
	{wmma.M8N8K32, "4bit"}:            {230},
}

// turingPrecKey maps an operand/accumulator pair onto a Table I row label.
func turingPrecKey(elem, acc wmma.Precision) (string, error) {
	switch elem {
	case wmma.F16:
		if acc == wmma.F32 {
			return "16bit-fp32acc", nil
		}
		return "16bit-fp16acc", nil
	case wmma.S8, wmma.U8:
		return "8bit", nil
	case wmma.S4, wmma.U4:
		return "4bit", nil
	}
	return "", fmt.Errorf("tcore: no Turing timing for %v", elem)
}

// TuringTiming returns the calibrated Turing timing for a tile shape and
// operand/accumulator precision pair, per Table I.
func TuringTiming(shape wmma.Shape, elem, acc wmma.Precision) (Timing, error) {
	prec, err := turingPrecKey(elem, acc)
	if err != nil {
		return Timing{}, err
	}
	cum, ok := tableI[turingKey{shape, prec}]
	if !ok {
		return Timing{}, fmt.Errorf("tcore: no Table I row for %v %s", shape, prec)
	}
	return Timing{Arch: wmma.Turing, Name: fmt.Sprintf("turing-%v-%s", shape, prec),
		StepsPerSet: 1, Cumulative: append([]int(nil), cum...)}, nil
}

// TimingFor returns the calibrated timing for any supported configuration.
func TimingFor(cfg wmma.Config) (Timing, error) {
	if cfg.Arch == wmma.Volta {
		return VoltaTiming(ModeFor(cfg)), nil
	}
	return TuringTiming(cfg.Shape, cfg.AType, cfg.CType)
}

// TensorCoresPerSubCore is the paper's inferred count: a warp's HMMA
// executes 32 four-element dot products per cycle while one tensor core
// completes 16, so each warp drives two tensor cores (Section IV).
const TensorCoresPerSubCore = 2

// FEDPPerTensorCore is the number of four-element dot product units in one
// tensor core: one 4×4 MACC per cycle needs 16 FEDPs.
const FEDPPerTensorCore = 16

// FEDPPipelineDepth is the FEDP pipeline depth: parallel multiply in stage
// one, a three-stage accumulation tree behind it.
const FEDPPipelineDepth = 4

// MaxConcurrentHMMAWarps is how many warps can execute HMMA concurrently
// on one SM — the knee of Figure 12c: 8 tensor cores per SM at 2 per warp.
const MaxConcurrentHMMAWarps = 4
