package tcore

import (
	"testing"

	"repro/internal/wmma"
)

func TestVoltaScheduleShape(t *testing.T) {
	mixed := VoltaSchedule(MixedPrecision)
	if len(mixed) != 16 {
		t.Fatalf("mixed precision expands to %d HMMAs, want 16 (Figure 9a)", len(mixed))
	}
	f16 := VoltaSchedule(FP16)
	if len(f16) != 8 {
		t.Fatalf("fp16 mode expands to %d HMMAs, want 8 (Figure 9b)", len(f16))
	}
	for i, h := range mixed {
		if h.Index != i || h.Set != i/4+1 || h.Step != i%4 {
			t.Errorf("mixed HMMA %d has set %d step %d", i, h.Set, h.Step)
		}
	}
	for i, h := range f16 {
		if h.Set != i/2+1 || h.Step != i%2 {
			t.Errorf("fp16 HMMA %d has set %d step %d", i, h.Set, h.Step)
		}
	}
}

// Figure 10a: in each set a threadgroup multiplies a 4×4 sub-tile of A
// with a 4×8 sub-tile of B, accumulating into a 4×8 sub-tile of D. For
// threadgroup 0, set 1 uses the first four rows and columns of A and the
// first four rows / first eight columns of B.
func TestVoltaPerSetExtentsPerThreadgroup(t *testing.T) {
	for _, mode := range []Mode{MixedPrecision, FP16} {
		sched := VoltaSchedule(mode)
		// Union the work of threadgroup 0 over set 1's steps.
		var a, b, d SubTile
		first := true
		for _, h := range sched {
			if h.Set != 1 {
				continue
			}
			w := h.TG[0]
			if first {
				a, b, d, first = w.A, w.B, w.D, false
				continue
			}
			a, b, d = unionSub(a, w.A), unionSub(b, w.B), unionSub(d, w.D)
		}
		if (a != SubTile{0, 3, 0, 3}) {
			t.Errorf("%v: TG0 set1 A extent %v, want [0:3,0:3]", mode, a)
		}
		if (b != SubTile{0, 3, 0, 7}) {
			t.Errorf("%v: TG0 set1 B extent %v, want [0:3,0:7]", mode, b)
		}
		if (d != SubTile{0, 3, 0, 7}) {
			t.Errorf("%v: TG0 set1 D extent %v, want [0:3,0:7]", mode, d)
		}
	}
}

// Figure 10b: each mixed-precision step is a 2×4 A sub-tile times a 4×4 B
// sub-tile into a 2×4 accumulator slice. Figure 10c: each FP16 step is
// 4×4 × 4×4 into 4×4.
func TestVoltaPerStepShapes(t *testing.T) {
	for _, h := range VoltaSchedule(MixedPrecision) {
		for tg, w := range h.TG {
			if w.A.Rows() != 2 || w.A.Cols() != 4 {
				t.Fatalf("mixed HMMA %d tg %d A %v, want 2×4", h.Index, tg, w.A)
			}
			if w.B.Rows() != 4 || w.B.Cols() != 4 {
				t.Fatalf("mixed HMMA %d tg %d B %v, want 4×4", h.Index, tg, w.B)
			}
			if w.D.Rows() != 2 || w.D.Cols() != 4 {
				t.Fatalf("mixed HMMA %d tg %d D %v, want 2×4", h.Index, tg, w.D)
			}
		}
	}
	for _, h := range VoltaSchedule(FP16) {
		for tg, w := range h.TG {
			if w.A.Rows() != 4 || w.A.Cols() != 4 || w.B.Rows() != 4 || w.B.Cols() != 4 || w.D.Rows() != 4 || w.D.Cols() != 4 {
				t.Fatalf("fp16 HMMA %d tg %d A %v B %v D %v, want all 4×4", h.Index, tg, w.A, w.B, w.D)
			}
		}
	}
}

// Every output element must be accumulated exactly once per set, and the
// K chunks ascend with the set number.
func TestVoltaScheduleCoverage(t *testing.T) {
	for _, mode := range []Mode{MixedPrecision, FP16} {
		for set := 1; set <= NumSets; set++ {
			var hits [16][16]int
			for _, h := range VoltaSchedule(mode) {
				if h.Set != set {
					continue
				}
				for _, w := range h.TG {
					if w.A.ColLo != 4*(set-1) || w.A.ColHi != 4*set-1 {
						t.Fatalf("%v set %d uses K %d:%d", mode, set, w.A.ColLo, w.A.ColHi)
					}
					for i := w.D.RowLo; i <= w.D.RowHi; i++ {
						for j := w.D.ColLo; j <= w.D.ColHi; j++ {
							hits[i][j]++
						}
					}
				}
			}
			for i := range hits {
				for j := range hits[i] {
					if hits[i][j] != 1 {
						t.Fatalf("%v set %d: element (%d,%d) accumulated %d times", mode, set, i, j, hits[i][j])
					}
				}
			}
		}
	}
}

// The octet invariant of Section III-E: threadgroup X's steps 2–3 consume
// B columns loaded only by threadgroup X+4, and vice versa.
func TestVoltaOctetCrossUse(t *testing.T) {
	sched := VoltaSchedule(MixedPrecision)
	// Threadgroup 0 loads B columns 0–3, threadgroup 4 loads 4–7.
	for _, h := range sched {
		w0, w4 := h.TG[0], h.TG[4]
		switch {
		case h.Step < 2:
			if w0.B.ColLo != 0 || w4.B.ColLo != 0 {
				t.Fatalf("step %d should use TG0's B columns, got TG0 %v TG4 %v", h.Step, w0.B, w4.B)
			}
		default:
			if w0.B.ColLo != 4 || w4.B.ColLo != 4 {
				t.Fatalf("step %d should use TG4's B columns, got TG0 %v TG4 %v", h.Step, w0.B, w4.B)
			}
		}
	}
}

func TestSetExtents(t *testing.T) {
	for _, mode := range []Mode{MixedPrecision, FP16} {
		ext := SetExtents(mode)
		for s, w := range ext {
			if (w.A != SubTile{0, 15, 4 * s, 4*s + 3}) {
				t.Errorf("%v set %d A extent %v", mode, s+1, w.A)
			}
			if (w.B != SubTile{4 * s, 4*s + 3, 0, 15}) {
				t.Errorf("%v set %d B extent %v", mode, s+1, w.B)
			}
			if (w.D != SubTile{0, 15, 0, 15}) {
				t.Errorf("%v set %d D extent %v", mode, s+1, w.D)
			}
		}
	}
}

// Table III, spot-checked against the paper row by row.
func TestTableIII(t *testing.T) {
	rows := TableIII()
	if len(rows) != 16 {
		t.Fatalf("TableIII has %d rows, want 16", len(rows))
	}
	want := map[[2]int][2]string{
		{1, 0}: {"a[0:1]×A", "e[0:1]×A"},
		{1, 1}: {"a[2:3]×A", "e[2:3]×A"},
		{1, 2}: {"a[0:1]×E", "e[0:1]×E"},
		{1, 3}: {"a[2:3]×E", "e[2:3]×E"},
		{2, 0}: {"b[0:1]×B", "f[0:1]×B"},
		{2, 3}: {"b[2:3]×F", "f[2:3]×F"},
		{3, 1}: {"c[2:3]×C", "g[2:3]×C"},
		{3, 2}: {"c[0:1]×G", "g[0:1]×G"},
		{4, 0}: {"d[0:1]×D", "h[0:1]×D"},
		{4, 3}: {"d[2:3]×H", "h[2:3]×H"},
	}
	for _, r := range rows {
		if w, ok := want[[2]int{r.Set, r.Step}]; ok {
			if r.TGX != w[0] || r.TGX4 != w[1] {
				t.Errorf("set %d step %d: got %q/%q, want %q/%q", r.Set, r.Step, r.TGX, r.TGX4, w[0], w[1])
			}
		}
	}
}

func TestTuringScheduleShapes(t *testing.T) {
	cases := []struct {
		shape wmma.Shape
		elem  wmma.Precision
		nSets int
	}{
		{wmma.M16N16K16, wmma.F16, 4},
		{wmma.M32N8K16, wmma.F16, 4},
		{wmma.M8N32K16, wmma.F16, 4},
		{wmma.M16N16K16, wmma.S8, 4},
		{wmma.M32N8K16, wmma.S8, 4},
		{wmma.M8N32K16, wmma.S8, 4},
		{wmma.M8N8K32, wmma.S4, 1},
	}
	for _, c := range cases {
		sets, err := TuringSchedule(c.shape, c.elem)
		if err != nil {
			t.Fatalf("%v %v: %v", c.shape, c.elem, err)
		}
		if len(sets) != c.nSets {
			t.Errorf("%v %v: %d sets, want %d", c.shape, c.elem, len(sets), c.nSets)
		}
		if got := TuringHMMACount(c.elem); got != c.nSets {
			t.Errorf("%v: HMMA count %d, want %d", c.elem, got, c.nSets)
		}
	}
}

// Figure 11's patterns: 16-bit sets pair an 8-deep K half with one half of
// the output; 8-bit sets keep full K and cover an output quarter. Checked
// via total K coverage per output element.
func TestTuringScheduleCoverage(t *testing.T) {
	for _, c := range []struct {
		shape wmma.Shape
		elem  wmma.Precision
	}{
		{wmma.M16N16K16, wmma.F16}, {wmma.M32N8K16, wmma.F16}, {wmma.M8N32K16, wmma.F16},
		{wmma.M16N16K16, wmma.S8}, {wmma.M32N8K16, wmma.S8}, {wmma.M8N32K16, wmma.S8},
		{wmma.M8N8K32, wmma.S4},
	} {
		sets, err := TuringSchedule(c.shape, c.elem)
		if err != nil {
			t.Fatal(err)
		}
		kCover := make([][]int, c.shape.M)
		for i := range kCover {
			kCover[i] = make([]int, c.shape.N)
		}
		for _, s := range sets {
			if s.A.RowLo != s.D.RowLo || s.A.RowHi != s.D.RowHi {
				t.Fatalf("%v %v set %d: A rows %v disagree with D rows %v", c.shape, c.elem, s.Set, s.A, s.D)
			}
			if s.B.ColLo != s.D.ColLo || s.B.ColHi != s.D.ColHi {
				t.Fatalf("%v %v set %d: B cols %v disagree with D cols %v", c.shape, c.elem, s.Set, s.B, s.D)
			}
			if s.A.ColLo != s.B.RowLo || s.A.ColHi != s.B.RowHi {
				t.Fatalf("%v %v set %d: A K %v disagrees with B K %v", c.shape, c.elem, s.Set, s.A, s.B)
			}
			for i := s.D.RowLo; i <= s.D.RowHi; i++ {
				for j := s.D.ColLo; j <= s.D.ColHi; j++ {
					kCover[i][j] += s.A.Cols()
				}
			}
		}
		for i := range kCover {
			for j := range kCover[i] {
				if kCover[i][j] != c.shape.K {
					t.Fatalf("%v %v: element (%d,%d) accumulates %d of %d K", c.shape, c.elem, i, j, kCover[i][j], c.shape.K)
				}
			}
		}
	}
}
