package tcore

import (
	"fmt"

	"repro/internal/wmma"
)

// Turing HMMA decomposition (Section III-D-2, Figure 11).
//
// On Turing each wmma.mma becomes four HMMA instructions — one per set,
// with no STEP annotation ("one possibility is similar steps are sequenced
// by the microarchitecture using a state-machine") — except 4-bit mode,
// which is a single HMMA. The paper's observations, encoded here:
//
//   - 16-bit modes multiply one 8-deep K half against one half of the
//     output columns (16×16×16, 8×32×16) or rows (32×8×16) per set, so
//     every output element is touched by exactly two sets;
//   - 8-bit modes keep the full K=16 depth and cover one quarter of the
//     output per set (halves of M × halves of N for 16×16×16, quarters of
//     M for 32×8×16, quarters of N for 8×32×16);
//   - 4-bit mode computes the whole 8×8×32 tile at once.
//
// Sets are ordered so that the K chunks seen by any single output element
// ascend, keeping the accumulation order identical to wmma.MMA.

// TuringSet is the warp-wide extent of one Turing HMMA instruction.
type TuringSet struct {
	Set     int // 1-based
	A, B, D SubTile
}

// TuringSchedule returns the per-set extents for the given shape and
// operand precision.
func TuringSchedule(shape wmma.Shape, elem wmma.Precision) ([]TuringSet, error) {
	mk := func(a, b, d SubTile) TuringSet { return TuringSet{A: a, B: b, D: d} }
	var sets []TuringSet
	switch {
	case elem == wmma.F16:
		switch shape {
		case wmma.M16N16K16, wmma.M8N32K16:
			// Column halves within a K half; K halves ascend last so each
			// element sees k chunks in order.
			nHalf := shape.N / 2
			for _, k := range []int{0, 8} {
				for _, c := range []int{0, nHalf} {
					sets = append(sets, mk(
						SubTile{0, shape.M - 1, k, k + 7},
						SubTile{k, k + 7, c, c + nHalf - 1},
						SubTile{0, shape.M - 1, c, c + nHalf - 1},
					))
				}
			}
		case wmma.M32N8K16:
			// Row halves within a K half.
			for _, k := range []int{0, 8} {
				for _, r := range []int{0, 16} {
					sets = append(sets, mk(
						SubTile{r, r + 15, k, k + 7},
						SubTile{k, k + 7, 0, shape.N - 1},
						SubTile{r, r + 15, 0, shape.N - 1},
					))
				}
			}
		default:
			return nil, fmt.Errorf("tcore: turing f16 shape %v unsupported", shape)
		}
	case elem == wmma.S8 || elem == wmma.U8:
		switch shape {
		case wmma.M16N16K16:
			for _, r := range []int{0, 8} {
				for _, c := range []int{0, 8} {
					sets = append(sets, mk(
						SubTile{r, r + 7, 0, 15},
						SubTile{0, 15, c, c + 7},
						SubTile{r, r + 7, c, c + 7},
					))
				}
			}
		case wmma.M32N8K16:
			for r := 0; r < 32; r += 8 {
				sets = append(sets, mk(
					SubTile{r, r + 7, 0, 15},
					SubTile{0, 15, 0, 7},
					SubTile{r, r + 7, 0, 7},
				))
			}
		case wmma.M8N32K16:
			for c := 0; c < 32; c += 8 {
				sets = append(sets, mk(
					SubTile{0, 7, 0, 15},
					SubTile{0, 15, c, c + 7},
					SubTile{0, 7, c, c + 7},
				))
			}
		default:
			return nil, fmt.Errorf("tcore: turing 8-bit shape %v unsupported", shape)
		}
	case elem == wmma.S4 || elem == wmma.U4:
		if shape != wmma.M8N8K32 {
			return nil, fmt.Errorf("tcore: turing 4-bit shape %v unsupported", shape)
		}
		sets = append(sets, mk(
			SubTile{0, 7, 0, 31},
			SubTile{0, 31, 0, 7},
			SubTile{0, 7, 0, 7},
		))
	default:
		return nil, fmt.Errorf("tcore: turing precision %v unsupported", elem)
	}
	for i := range sets {
		sets[i].Set = i + 1
	}
	return sets, nil
}

// TuringHMMACount returns the number of HMMA instructions one wmma.mma
// expands to on Turing: 4 for every mode except 4-bit, which is 1.
func TuringHMMACount(elem wmma.Precision) int {
	if elem == wmma.S4 || elem == wmma.U4 {
		return 1
	}
	return 4
}
