package tcore

import (
	"testing"

	"repro/internal/wmma"
)

// The exact cumulative cycle sequences printed in Figure 9.
var (
	wantMixed = []int{10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44, 54}
	wantFP16  = []int{12, 21, 25, 34, 38, 47, 51, 64}
)

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestVoltaTimingMatchesFigure9(t *testing.T) {
	if got := VoltaTiming(MixedPrecision).Cumulative; !eqInts(got, wantMixed) {
		t.Errorf("mixed cumulative %v, want %v", got, wantMixed)
	}
	if got := VoltaTiming(FP16).Cumulative; !eqInts(got, wantFP16) {
		t.Errorf("fp16 cumulative %v, want %v", got, wantFP16)
	}
}

// The parametric pipe models must regenerate Figure 9 exactly — this is
// the calibration check that licenses using them for ablations.
func TestPipeModelsReproduceFigure9(t *testing.T) {
	if got := VoltaMixedPipe().Cumulative(); !eqInts(got, wantMixed) {
		t.Errorf("mixed pipe model %v, want %v", got, wantMixed)
	}
	if got := VoltaFP16Pipe().Cumulative(); !eqInts(got, wantFP16) {
		t.Errorf("fp16 pipe model %v, want %v", got, wantFP16)
	}
}

// Section III-C: "The latency of wmma.mma API in mixed precision mode is
// ten cycles lower than in FP16 mode."
func TestMixedTenCyclesFasterThanFP16(t *testing.T) {
	mixed := VoltaTiming(MixedPrecision).Total()
	f16 := VoltaTiming(FP16).Total()
	if f16-mixed != 10 {
		t.Errorf("fp16 %d - mixed %d = %d, want 10", f16, mixed, f16-mixed)
	}
}

func TestTuringTimingTableI(t *testing.T) {
	tm, err := TuringTiming(wmma.M16N16K16, wmma.F16, wmma.F32)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(tm.Cumulative, []int{42, 56, 78, 99}) {
		t.Errorf("16x16x16 fp32acc = %v", tm.Cumulative)
	}
	if !eqInts(tm.SetCumulative(), tm.Cumulative) {
		t.Errorf("SetCumulative should equal Cumulative for one HMMA per set")
	}
	// Paper: Turing 16×16×16 mixed (99) is slower than Volta (54).
	if volta := VoltaTiming(MixedPrecision).Total(); tm.Total() <= volta {
		t.Errorf("turing mixed %d should exceed volta mixed %d", tm.Total(), volta)
	}
	// Paper: mixed precision is slower than FP16 accumulation on Turing.
	f16acc, err := TuringTiming(wmma.M16N16K16, wmma.F16, wmma.F16)
	if err != nil {
		t.Fatal(err)
	}
	if f16acc.Total() >= tm.Total() {
		t.Errorf("fp16-acc %d should beat fp32-acc %d on Turing", f16acc.Total(), tm.Total())
	}
	// Paper: 8-bit is fastest; 4-bit is highest latency of all.
	i8, err := TuringTiming(wmma.M16N16K16, wmma.S8, wmma.S32)
	if err != nil {
		t.Fatal(err)
	}
	if i8.Total() >= f16acc.Total() {
		t.Errorf("8-bit %d should beat fp16 %d", i8.Total(), f16acc.Total())
	}
	i4, err := TuringTiming(wmma.M8N8K32, wmma.S4, wmma.S32)
	if err != nil {
		t.Fatal(err)
	}
	if i4.Total() != 230 || i4.NumHMMA() != 1 {
		t.Errorf("4-bit timing %v", i4)
	}
	for key := range tableI {
		tm, err := TuringTiming(key.shape, precForKey(key.prec), accForKey(key.prec))
		if err != nil {
			t.Errorf("TuringTiming(%v, %s): %v", key.shape, key.prec, err)
			continue
		}
		for i := 1; i < tm.NumHMMA(); i++ {
			if tm.Delta(i) <= 0 {
				t.Errorf("%v %s: non-increasing cumulative cycles at %d", key.shape, key.prec, i)
			}
		}
	}
}

func precForKey(k string) wmma.Precision {
	switch k {
	case "8bit":
		return wmma.S8
	case "4bit":
		return wmma.S4
	}
	return wmma.F16
}

func accForKey(k string) wmma.Precision {
	switch k {
	case "16bit-fp32acc":
		return wmma.F32
	case "16bit-fp16acc":
		return wmma.F16
	}
	return wmma.S32
}

func TestTimingFor(t *testing.T) {
	for _, cfg := range wmma.VoltaConfigs() {
		tm, err := TimingFor(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		wantSteps := 4
		if ModeFor(cfg) == FP16 {
			wantSteps = 2
		}
		if tm.StepsPerSet != wantSteps {
			t.Errorf("%v: steps per set %d, want %d", cfg, tm.StepsPerSet, wantSteps)
		}
	}
	for _, cfg := range wmma.TuringConfigs() {
		if _, err := TimingFor(cfg); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
}

func TestTimingAccessors(t *testing.T) {
	tm := VoltaTiming(MixedPrecision)
	if tm.NumHMMA() != 16 || tm.Total() != 54 || tm.Delta(0) != 10 || tm.Delta(15) != 10 {
		t.Errorf("accessors: n=%d total=%d d0=%d d15=%d", tm.NumHMMA(), tm.Total(), tm.Delta(0), tm.Delta(15))
	}
	sc := tm.SetCumulative()
	if !eqInts(sc, []int{18, 28, 38, 54}) {
		t.Errorf("SetCumulative = %v", sc)
	}
	if occ := tm.IssueOccupancy(); occ != 54-10+2 {
		t.Errorf("IssueOccupancy = %d", occ)
	}
}

func TestMicroarchConstants(t *testing.T) {
	// Section IV's arithmetic: a warp's HMMA rate is 32 FEDP/cycle; one
	// tensor core provides 16, hence two per warp and a four-warp knee on
	// an SM with eight tensor cores.
	if TensorCoresPerSubCore*FEDPPerTensorCore != 32 {
		t.Error("two tensor cores must provide 32 FEDPs per cycle per warp")
	}
	if MaxConcurrentHMMAWarps != 8/TensorCoresPerSubCore {
		t.Error("knee should be 8 tensor cores / 2 per warp = 4 warps")
	}
}
