package tcore

import (
	"fmt"

	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wmma"
)

// Functional execution of the HMMA decomposition. Executing the micro-ops
// in issue order must produce results bit-identical to wmma.MMA — the K
// chunks any output element sees ascend across sets, and the per-chunk
// arithmetic (exact FP16 products, pairwise FP32 sums, per-chunk FP16
// rounding in FP16 accumulation mode) matches wmma.DotF32/DotF16.

// ModeFor returns the Volta operating mode a configuration selects: mixed
// precision when the accumulator is FP32, FP16 mode otherwise.
func ModeFor(cfg wmma.Config) Mode {
	if cfg.CType == wmma.F32 {
		return MixedPrecision
	}
	return FP16
}

// ExecuteVolta computes D = A×B + C by running the Volta HMMA schedule in
// issue order. The result is bit-identical to wmma.MMA(cfg, ...).
func ExecuteVolta(cfg wmma.Config, a, b, c *tensor.Matrix, outLayout tensor.Layout) (*tensor.Matrix, error) {
	if cfg.Arch != wmma.Volta {
		return nil, fmt.Errorf("tcore: ExecuteVolta requires a Volta config, got %v", cfg.Arch)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mode := ModeFor(cfg)
	ex := newFloatExec(cfg, a, b, c)
	for _, h := range VoltaSchedule(mode) {
		for tg := range h.TG {
			ex.applyChunk(h.TG[tg].D, h.TG[tg].A.ColLo)
		}
	}
	return ex.result(outLayout), nil
}

// ExecuteTuring computes D = A×B + C by running the Turing per-set
// schedule in order. Bit-identical to wmma.MMA(cfg, ...).
func ExecuteTuring(cfg wmma.Config, a, b, c *tensor.Matrix, outLayout tensor.Layout) (*tensor.Matrix, error) {
	if cfg.Arch != wmma.Turing {
		return nil, fmt.Errorf("tcore: ExecuteTuring requires a Turing config, got %v", cfg.Arch)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets, err := TuringSchedule(cfg.Shape, cfg.AType)
	if err != nil {
		return nil, err
	}
	if cfg.AType.IsInt() {
		return execTuringInt(cfg, sets, a, b, c, outLayout), nil
	}
	ex := newFloatExec(cfg, a, b, c)
	for _, s := range sets {
		// Walk the set's K extent in FEDP-width chunks, ascending.
		for k := s.A.ColLo; k <= s.A.ColHi; k += wmma.FEDPWidth {
			ex.applyChunk(s.D, k)
		}
	}
	return ex.result(outLayout), nil
}

// floatExec holds quantized operands and the running accumulator for the
// floating-point modes.
type floatExec struct {
	cfg   wmma.Config
	av    [][]fp16.Float16 // [m][k]
	bv    [][]fp16.Float16 // [n][k]
	acc32 [][]float32      // mixed precision accumulator
	acc16 [][]fp16.Float16 // fp16-mode accumulator
}

func newFloatExec(cfg wmma.Config, a, b, c *tensor.Matrix) *floatExec {
	s := cfg.Shape
	ex := &floatExec{cfg: cfg}
	ex.av = make([][]fp16.Float16, s.M)
	for i := range ex.av {
		ex.av[i] = make([]fp16.Float16, s.K)
		for k := 0; k < s.K; k++ {
			ex.av[i][k] = fp16.FromFloat64(a.At(i, k))
		}
	}
	ex.bv = make([][]fp16.Float16, s.N)
	for j := range ex.bv {
		ex.bv[j] = make([]fp16.Float16, s.K)
		for k := 0; k < s.K; k++ {
			ex.bv[j][k] = fp16.FromFloat64(b.At(k, j))
		}
	}
	if cfg.CType == wmma.F32 {
		ex.acc32 = make([][]float32, s.M)
		for i := range ex.acc32 {
			ex.acc32[i] = make([]float32, s.N)
			for j := 0; j < s.N; j++ {
				ex.acc32[i][j] = float32(c.At(i, j))
			}
		}
	} else {
		ex.acc16 = make([][]fp16.Float16, s.M)
		for i := range ex.acc16 {
			ex.acc16[i] = make([]fp16.Float16, s.N)
			for j := 0; j < s.N; j++ {
				ex.acc16[i][j] = fp16.FromFloat64(c.At(i, j))
			}
		}
	}
	return ex
}

// applyChunk accumulates one FEDP-width K chunk starting at kLo into every
// accumulator element of the d sub-tile.
func (ex *floatExec) applyChunk(d SubTile, kLo int) {
	for i := d.RowLo; i <= d.RowHi; i++ {
		for j := d.ColLo; j <= d.ColHi; j++ {
			a := ex.av[i][kLo : kLo+wmma.FEDPWidth]
			b := ex.bv[j][kLo : kLo+wmma.FEDPWidth]
			if ex.acc32 != nil {
				ex.acc32[i][j] = wmma.DotF32(ex.acc32[i][j], a, b)
			} else {
				ex.acc16[i][j] = wmma.DotF16(ex.acc16[i][j], a, b)
			}
		}
	}
}

func (ex *floatExec) result(outLayout tensor.Layout) *tensor.Matrix {
	s := ex.cfg.Shape
	d := tensor.New(s.M, s.N, outLayout)
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			var out float64
			if ex.acc32 != nil {
				out = float64(ex.acc32[i][j])
			} else {
				out = ex.acc16[i][j].Float64()
			}
			if ex.cfg.DType == wmma.F16 {
				out = fp16.FromFloat64(out).Float64()
			}
			if ex.cfg.Satf {
				out = wmma.SaturateFloat(out)
			}
			d.Set(i, j, out)
		}
	}
	return d
}

func execTuringInt(cfg wmma.Config, sets []TuringSet, a, b, c *tensor.Matrix, outLayout tensor.Layout) *tensor.Matrix {
	s := cfg.Shape
	acc := make([][]int64, s.M)
	for i := range acc {
		acc[i] = make([]int64, s.N)
		for j := 0; j < s.N; j++ {
			acc[i][j] = int64(int32(c.At(i, j)))
		}
	}
	for _, set := range sets {
		for i := set.D.RowLo; i <= set.D.RowHi; i++ {
			for j := set.D.ColLo; j <= set.D.ColHi; j++ {
				for k := set.A.ColLo; k <= set.A.ColHi; k++ {
					acc[i][j] += int64(wmma.QuantizeInt(cfg.AType, a.At(i, k))) *
						int64(wmma.QuantizeInt(cfg.AType, b.At(k, j)))
				}
			}
		}
	}
	d := tensor.New(s.M, s.N, outLayout)
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			v := acc[i][j]
			if cfg.Satf {
				if v > 1<<31-1 {
					v = 1<<31 - 1
				} else if v < -(1 << 31) {
					v = -(1 << 31)
				}
			} else {
				v = int64(int32(v))
			}
			d.Set(i, j, float64(v))
		}
	}
	return d
}
