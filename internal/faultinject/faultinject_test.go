package faultinject

import (
	"errors"
	"testing"
)

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"panic",                     // no target
		"explode@fig9:0",            // unknown kind
		"panic@fig9",                // no index
		"panic@:0",                  // empty exp
		"panic@fig9:x",              // non-numeric index
		"transient@fig9:0*x",        // malformed count
		"transient@fig9:0~x",        // malformed permille
		"transient@fig9:0~1001",     // permille out of range
		"panic@fig9:0,panic@fig9:0", // duplicate clause
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmptyYieldsNilPlan(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	// A nil plan answers None everywhere and a nil kill is a no-op.
	var p *Plan
	if a := p.At("fig9", 0, 0); a != None {
		t.Fatalf("nil plan At = %v, want None", a)
	}
	p.InvokeKill()
}

func TestAtMatchesExactAndWildcardTargets(t *testing.T) {
	p, err := Parse("panic@fig17:3,hang@sched:*,kill@*:2,transient@*:*")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		exp   string
		index int
		want  Action
	}{
		{"fig17", 3, Panic},     // exact
		{"sched", 9, Hang},      // exp wildcard index
		{"fig17", 2, Kill},      // index-only wildcard
		{"fig17", 0, Transient}, // full wildcard fallback
		{"sched", 2, Hang},      // exp:* beats *:index
	}
	for _, c := range cases {
		if got := p.At(c.exp, c.index, 0); got != c.want {
			t.Errorf("At(%s, %d) = %v, want %v", c.exp, c.index, got, c.want)
		}
	}
}

// A transient clause fails exactly count attempts, then the point runs.
func TestTransientCountBudget(t *testing.T) {
	p, err := Parse("transient@fig14a:1*2")
	if err != nil {
		t.Fatal(err)
	}
	for attempt, want := range []Action{Transient, Transient, None, None} {
		if got := p.At("fig14a", 1, attempt); got != want {
			t.Errorf("At(fig14a, 1, attempt=%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := p.At("fig14a", 0, 0); got != None {
		t.Errorf("At(fig14a, 0) = %v, want None (different point)", got)
	}
}

// ~permille sampling is a pure function of (seed, exp, index): the same
// plan answers identically across calls, and the sampled subset is
// neither empty nor everything at p=0.5 over enough points.
func TestPermilleSamplingDeterministic(t *testing.T) {
	parse := func(seed uint64) *Plan {
		p, err := Parse("transient@*:*~500")
		if err != nil {
			t.Fatal(err)
		}
		p.Seed = seed
		return p
	}
	a, b := parse(7), parse(7)
	hit := 0
	for i := 0; i < 200; i++ {
		av, bv := a.At("fig14a", i, 0), b.At("fig14a", i, 0)
		if av != bv {
			t.Fatalf("sampling not deterministic at point %d: %v vs %v", i, av, bv)
		}
		if av == Transient {
			hit++
		}
	}
	if hit == 0 || hit == 200 {
		t.Fatalf("p=0.5 sampling hit %d of 200 points, want a proper subset", hit)
	}
	// A different seed selects a different subset (overwhelmingly likely
	// over 200 points).
	c := parse(8)
	same := true
	for i := 0; i < 200; i++ {
		if a.At("fig14a", i, 0) != c.At("fig14a", i, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 sampled identical subsets")
	}
}

func TestTransientErrorIsTyped(t *testing.T) {
	err := error(&TransientError{Attempt: 1, Msg: "injected"})
	var te interface{ Transient() bool }
	if !errors.As(err, &te) || !te.Transient() {
		t.Fatalf("TransientError does not satisfy the Transient() contract: %v", err)
	}
}

func TestKillInvokesCallback(t *testing.T) {
	p, err := Parse("kill@fig9:0")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	p.Kill = func() { fired++ }
	if got := p.At("fig9", 0, 0); got != Kill {
		t.Fatalf("At = %v, want Kill", got)
	}
	p.InvokeKill()
	if fired != 1 {
		t.Fatalf("kill callback fired %d times, want 1", fired)
	}
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[Action]string{
		None: "none", Panic: "panic", Hang: "hang",
		Transient: "transient", Kill: "kill", Action(99): "faultinject.Action(99)",
	} {
		if got := a.String(); got != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(a), got, want)
		}
	}
}
