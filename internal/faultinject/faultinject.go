// Package faultinject deterministically injects faults at data-point
// granularity into the experiment engine, so the fault-tolerance layer
// (per-point isolation, bounded retry, the cycle-budget watchdog and
// checkpoint/resume) is proven by tests rather than assumed.
//
// A Plan is parsed from a compact spec and is immutable afterwards, so
// concurrent pool workers can consult it without locking. Every
// decision is a pure function of (experiment ID, point index, attempt,
// plan seed): there is no global math/rand and no wall clock, so a
// faulty run is exactly reproducible — the property the resume
// byte-equivalence tests depend on.
//
// Spec grammar (comma-separated clauses):
//
//	kind@exp:index[*count][~permille]
//
//	kind     panic | hang | transient | kill
//	exp      experiment ID, or * for every experiment
//	index    data-point index, or * for every point
//	*count   transient only: number of failing attempts before the
//	         point succeeds (default 1) — the retry seam's test dial
//	~permille sample the point deterministically with probability
//	         permille/1000, seeded by hash(seed, exp, index)
//
// Examples:
//
//	panic@fig17:3                 point 3 of fig17 panics
//	transient@fig14a:1*2          point 1 fails its first two attempts
//	hang@sched:0                  point 0 simulates an infinite kernel
//	kill@fig12c:5                 the run is canceled at point 5's start
//	transient@*:*~250             every point fails once with p=0.25
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// Action is the fault injected at one data point.
type Action int

const (
	// None leaves the point alone.
	None Action = iota
	// Panic makes the point panic, proving per-point panic isolation.
	Panic
	// Hang substitutes an infinite-loop kernel for the point's
	// simulation, proving the cycle-budget watchdog reaps it.
	Hang
	// Transient fails the point with a retryable error for the clause's
	// first count attempts, proving the bounded-retry path.
	Transient
	// Kill cancels the whole run at the point boundary — the in-process
	// stand-in for SIGKILL that the resume-equivalence tests sweep
	// across every boundary of a grid.
	Kill
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Transient:
		return "transient"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("faultinject.Action(%d)", int(a))
}

// clause is one parsed spec entry.
type clause struct {
	kind     Action
	count    int   // Transient: failing attempts before success
	permille int64 // 0 = always; else deterministic sampling threshold
}

// Plan is an immutable fault schedule plus the one callback the harness
// wires in: Kill, invoked when a kill point fires (the cmd/experiments
// harness and the tests point it at the run context's cancel func).
type Plan struct {
	// Kill is called when a Kill action fires. Nil-safe; set it before
	// the run starts — the Plan itself is never mutated afterwards.
	Kill func()
	// Seed keys the deterministic ~permille sampling. Set it before the
	// run starts; zero is a valid seed.
	Seed uint64

	clauses map[string]clause // keyed "exp:index", with * wildcards
}

// Parse builds a Plan from the spec grammar above. An empty spec yields
// a nil Plan, on which At always answers None.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{clauses: make(map[string]clause)}
	for _, part := range strings.Split(spec, ",") {
		kindStr, rest, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q lacks kind@target", part)
		}
		var c clause
		switch kindStr {
		case "panic":
			c.kind = Panic
		case "hang":
			c.kind = Hang
		case "transient":
			c.kind = Transient
		case "kill":
			c.kind = Kill
		default:
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (want panic|hang|transient|kill)", kindStr)
		}
		if rest, c.permille, ok = cutSuffixInt(rest, "~"); !ok {
			return nil, fmt.Errorf("faultinject: clause %q has a malformed ~permille", part)
		}
		if c.permille < 0 || c.permille > 1000 {
			return nil, fmt.Errorf("faultinject: clause %q permille out of range 0..1000", part)
		}
		var count int64
		if rest, count, ok = cutSuffixInt(rest, "*"); !ok {
			return nil, fmt.Errorf("faultinject: clause %q has a malformed *count", part)
		}
		c.count = int(count)
		if c.count == 0 {
			c.count = 1
		}
		exp, index, ok := strings.Cut(rest, ":")
		if !ok || exp == "" || index == "" {
			return nil, fmt.Errorf("faultinject: clause %q lacks exp:index", part)
		}
		if index != "*" {
			if _, err := strconv.Atoi(index); err != nil {
				return nil, fmt.Errorf("faultinject: clause %q has a non-numeric index", part)
			}
		}
		key := exp + ":" + index
		if _, dup := p.clauses[key]; dup {
			return nil, fmt.Errorf("faultinject: duplicate clause for %s", key)
		}
		p.clauses[key] = c
	}
	return p, nil
}

// cutSuffixInt splits "body<sep>digits" into (body, value). When the
// separator is absent — or what follows the last one is not a number,
// as when the * separator is really a trailing *-wildcard index — s is
// returned untouched and the malformed text is left for the stricter
// exp:index parse to reject. Negative values report false.
func cutSuffixInt(s, sep string) (string, int64, bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, 0, true
	}
	v, err := strconv.ParseInt(s[i+len(sep):], 10, 32)
	if err != nil {
		return s, 0, true
	}
	if v < 0 {
		return s, 0, false
	}
	return s[:i], v, true
}

// At answers the fault for attempt number attempt (0-based) of the data
// point (exp, index). Nil-safe; pure apart from the receiver's
// immutable state, so concurrent workers need no lock.
func (p *Plan) At(exp string, index, attempt int) Action {
	if p == nil || len(p.clauses) == 0 {
		return None
	}
	idx := strconv.Itoa(index)
	c, ok := p.clauses[exp+":"+idx]
	if !ok {
		c, ok = p.clauses[exp+":*"]
	}
	if !ok {
		c, ok = p.clauses["*:"+idx]
	}
	if !ok {
		c, ok = p.clauses["*:*"]
	}
	if !ok {
		return None
	}
	if c.permille > 0 && int64(pointHash(p.Seed, exp, index)%1000) >= c.permille {
		return None
	}
	if c.kind == Transient && attempt >= c.count {
		return None
	}
	return c.kind
}

// kill invokes the harness's Kill callback, if any.
func (p *Plan) InvokeKill() {
	if p != nil && p.Kill != nil {
		p.Kill()
	}
}

// pointHash is FNV-1a over (seed, exp, index): the deterministic
// per-point randomness source for ~permille sampling. No global
// math/rand is involved, so a sampled plan replays identically.
func pointHash(seed uint64, exp string, index int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(exp); i++ {
		mix(exp[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(index) >> (8 * i)))
	}
	return h
}

// TransientError is the retryable error class the engine's bounded
// retry recognizes (via the Transient() bool interface) — both the
// injected kind and the seam real transient failures (a lost shard, a
// flaky remote worker) will use.
type TransientError struct {
	// Attempt is the 0-based attempt that failed.
	Attempt int
	// Msg describes the failure.
	Msg string
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("transient fault (attempt %d): %s", e.Attempt, e.Msg)
}

// Transient marks the error as safe to retry.
func (e *TransientError) Transient() bool { return true }
